file(REMOVE_RECURSE
  "CMakeFiles/tcq_common.dir/logging.cc.o"
  "CMakeFiles/tcq_common.dir/logging.cc.o.d"
  "CMakeFiles/tcq_common.dir/rng.cc.o"
  "CMakeFiles/tcq_common.dir/rng.cc.o.d"
  "CMakeFiles/tcq_common.dir/status.cc.o"
  "CMakeFiles/tcq_common.dir/status.cc.o.d"
  "libtcq_common.a"
  "libtcq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
