# Empty dependencies file for tcq_common.
# This may be replaced when dependencies are built.
