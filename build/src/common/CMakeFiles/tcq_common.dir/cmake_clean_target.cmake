file(REMOVE_RECURSE
  "libtcq_common.a"
)
