# Empty dependencies file for tcq_tuple.
# This may be replaced when dependencies are built.
