file(REMOVE_RECURSE
  "libtcq_tuple.a"
)
