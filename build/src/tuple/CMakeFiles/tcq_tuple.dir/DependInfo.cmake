
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuple/catalog.cc" "src/tuple/CMakeFiles/tcq_tuple.dir/catalog.cc.o" "gcc" "src/tuple/CMakeFiles/tcq_tuple.dir/catalog.cc.o.d"
  "/root/repo/src/tuple/schema.cc" "src/tuple/CMakeFiles/tcq_tuple.dir/schema.cc.o" "gcc" "src/tuple/CMakeFiles/tcq_tuple.dir/schema.cc.o.d"
  "/root/repo/src/tuple/tuple.cc" "src/tuple/CMakeFiles/tcq_tuple.dir/tuple.cc.o" "gcc" "src/tuple/CMakeFiles/tcq_tuple.dir/tuple.cc.o.d"
  "/root/repo/src/tuple/value.cc" "src/tuple/CMakeFiles/tcq_tuple.dir/value.cc.o" "gcc" "src/tuple/CMakeFiles/tcq_tuple.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
