file(REMOVE_RECURSE
  "CMakeFiles/tcq_tuple.dir/catalog.cc.o"
  "CMakeFiles/tcq_tuple.dir/catalog.cc.o.d"
  "CMakeFiles/tcq_tuple.dir/schema.cc.o"
  "CMakeFiles/tcq_tuple.dir/schema.cc.o.d"
  "CMakeFiles/tcq_tuple.dir/tuple.cc.o"
  "CMakeFiles/tcq_tuple.dir/tuple.cc.o.d"
  "CMakeFiles/tcq_tuple.dir/value.cc.o"
  "CMakeFiles/tcq_tuple.dir/value.cc.o.d"
  "libtcq_tuple.a"
  "libtcq_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
