# Empty compiler generated dependencies file for tcq_psoup.
# This may be replaced when dependencies are built.
