file(REMOVE_RECURSE
  "libtcq_psoup.a"
)
