file(REMOVE_RECURSE
  "CMakeFiles/tcq_psoup.dir/psoup.cc.o"
  "CMakeFiles/tcq_psoup.dir/psoup.cc.o.d"
  "libtcq_psoup.a"
  "libtcq_psoup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_psoup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
