
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modules/aggregate.cc" "src/modules/CMakeFiles/tcq_modules.dir/aggregate.cc.o" "gcc" "src/modules/CMakeFiles/tcq_modules.dir/aggregate.cc.o.d"
  "/root/repo/src/modules/grouped_filter.cc" "src/modules/CMakeFiles/tcq_modules.dir/grouped_filter.cc.o" "gcc" "src/modules/CMakeFiles/tcq_modules.dir/grouped_filter.cc.o.d"
  "/root/repo/src/modules/juggle.cc" "src/modules/CMakeFiles/tcq_modules.dir/juggle.cc.o" "gcc" "src/modules/CMakeFiles/tcq_modules.dir/juggle.cc.o.d"
  "/root/repo/src/modules/relational.cc" "src/modules/CMakeFiles/tcq_modules.dir/relational.cc.o" "gcc" "src/modules/CMakeFiles/tcq_modules.dir/relational.cc.o.d"
  "/root/repo/src/modules/sort_tc.cc" "src/modules/CMakeFiles/tcq_modules.dir/sort_tc.cc.o" "gcc" "src/modules/CMakeFiles/tcq_modules.dir/sort_tc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fjords/CMakeFiles/tcq_fjords.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/tcq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/tcq_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
