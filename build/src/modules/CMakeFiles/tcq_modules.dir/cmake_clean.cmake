file(REMOVE_RECURSE
  "CMakeFiles/tcq_modules.dir/aggregate.cc.o"
  "CMakeFiles/tcq_modules.dir/aggregate.cc.o.d"
  "CMakeFiles/tcq_modules.dir/grouped_filter.cc.o"
  "CMakeFiles/tcq_modules.dir/grouped_filter.cc.o.d"
  "CMakeFiles/tcq_modules.dir/juggle.cc.o"
  "CMakeFiles/tcq_modules.dir/juggle.cc.o.d"
  "CMakeFiles/tcq_modules.dir/relational.cc.o"
  "CMakeFiles/tcq_modules.dir/relational.cc.o.d"
  "CMakeFiles/tcq_modules.dir/sort_tc.cc.o"
  "CMakeFiles/tcq_modules.dir/sort_tc.cc.o.d"
  "libtcq_modules.a"
  "libtcq_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
