file(REMOVE_RECURSE
  "libtcq_modules.a"
)
