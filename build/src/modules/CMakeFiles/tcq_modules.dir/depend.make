# Empty dependencies file for tcq_modules.
# This may be replaced when dependencies are built.
