file(REMOVE_RECURSE
  "libtcq_parser.a"
)
