file(REMOVE_RECURSE
  "CMakeFiles/tcq_parser.dir/lexer.cc.o"
  "CMakeFiles/tcq_parser.dir/lexer.cc.o.d"
  "CMakeFiles/tcq_parser.dir/parser.cc.o"
  "CMakeFiles/tcq_parser.dir/parser.cc.o.d"
  "libtcq_parser.a"
  "libtcq_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
