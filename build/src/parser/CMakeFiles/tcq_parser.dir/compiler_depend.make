# Empty compiler generated dependencies file for tcq_parser.
# This may be replaced when dependencies are built.
