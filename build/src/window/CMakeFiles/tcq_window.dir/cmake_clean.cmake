file(REMOVE_RECURSE
  "CMakeFiles/tcq_window.dir/window.cc.o"
  "CMakeFiles/tcq_window.dir/window.cc.o.d"
  "libtcq_window.a"
  "libtcq_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
