# Empty dependencies file for tcq_window.
# This may be replaced when dependencies are built.
