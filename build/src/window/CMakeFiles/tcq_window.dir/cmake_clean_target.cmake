file(REMOVE_RECURSE
  "libtcq_window.a"
)
