file(REMOVE_RECURSE
  "CMakeFiles/tcq_flux.dir/flux.cc.o"
  "CMakeFiles/tcq_flux.dir/flux.cc.o.d"
  "libtcq_flux.a"
  "libtcq_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
