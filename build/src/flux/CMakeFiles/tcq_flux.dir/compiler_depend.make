# Empty compiler generated dependencies file for tcq_flux.
# This may be replaced when dependencies are built.
