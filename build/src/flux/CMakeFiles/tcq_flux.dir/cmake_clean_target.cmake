file(REMOVE_RECURSE
  "libtcq_flux.a"
)
