
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eddy/eddy.cc" "src/eddy/CMakeFiles/tcq_eddy.dir/eddy.cc.o" "gcc" "src/eddy/CMakeFiles/tcq_eddy.dir/eddy.cc.o.d"
  "/root/repo/src/eddy/knob_controller.cc" "src/eddy/CMakeFiles/tcq_eddy.dir/knob_controller.cc.o" "gcc" "src/eddy/CMakeFiles/tcq_eddy.dir/knob_controller.cc.o.d"
  "/root/repo/src/eddy/operators.cc" "src/eddy/CMakeFiles/tcq_eddy.dir/operators.cc.o" "gcc" "src/eddy/CMakeFiles/tcq_eddy.dir/operators.cc.o.d"
  "/root/repo/src/eddy/policy.cc" "src/eddy/CMakeFiles/tcq_eddy.dir/policy.cc.o" "gcc" "src/eddy/CMakeFiles/tcq_eddy.dir/policy.cc.o.d"
  "/root/repo/src/eddy/routed_tuple.cc" "src/eddy/CMakeFiles/tcq_eddy.dir/routed_tuple.cc.o" "gcc" "src/eddy/CMakeFiles/tcq_eddy.dir/routed_tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stem/CMakeFiles/tcq_stem.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/tcq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/tcq_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
