file(REMOVE_RECURSE
  "CMakeFiles/tcq_eddy.dir/eddy.cc.o"
  "CMakeFiles/tcq_eddy.dir/eddy.cc.o.d"
  "CMakeFiles/tcq_eddy.dir/knob_controller.cc.o"
  "CMakeFiles/tcq_eddy.dir/knob_controller.cc.o.d"
  "CMakeFiles/tcq_eddy.dir/operators.cc.o"
  "CMakeFiles/tcq_eddy.dir/operators.cc.o.d"
  "CMakeFiles/tcq_eddy.dir/policy.cc.o"
  "CMakeFiles/tcq_eddy.dir/policy.cc.o.d"
  "CMakeFiles/tcq_eddy.dir/routed_tuple.cc.o"
  "CMakeFiles/tcq_eddy.dir/routed_tuple.cc.o.d"
  "libtcq_eddy.a"
  "libtcq_eddy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_eddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
