file(REMOVE_RECURSE
  "libtcq_eddy.a"
)
