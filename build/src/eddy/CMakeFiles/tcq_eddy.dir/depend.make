# Empty dependencies file for tcq_eddy.
# This may be replaced when dependencies are built.
