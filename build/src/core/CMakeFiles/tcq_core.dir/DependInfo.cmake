
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cc" "src/core/CMakeFiles/tcq_core.dir/analyzer.cc.o" "gcc" "src/core/CMakeFiles/tcq_core.dir/analyzer.cc.o.d"
  "/root/repo/src/core/egress.cc" "src/core/CMakeFiles/tcq_core.dir/egress.cc.o" "gcc" "src/core/CMakeFiles/tcq_core.dir/egress.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/tcq_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/tcq_core.dir/runner.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/tcq_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/tcq_core.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/tcq_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/cacq/CMakeFiles/tcq_cacq.dir/DependInfo.cmake"
  "/root/repo/build/src/psoup/CMakeFiles/tcq_psoup.dir/DependInfo.cmake"
  "/root/repo/build/src/eddy/CMakeFiles/tcq_eddy.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/tcq_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/tcq_window.dir/DependInfo.cmake"
  "/root/repo/build/src/ingress/CMakeFiles/tcq_ingress.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/tcq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/tcq_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stem/CMakeFiles/tcq_stem.dir/DependInfo.cmake"
  "/root/repo/build/src/fjords/CMakeFiles/tcq_fjords.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
