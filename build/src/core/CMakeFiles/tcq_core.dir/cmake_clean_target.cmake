file(REMOVE_RECURSE
  "libtcq_core.a"
)
