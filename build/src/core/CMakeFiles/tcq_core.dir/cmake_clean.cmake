file(REMOVE_RECURSE
  "CMakeFiles/tcq_core.dir/analyzer.cc.o"
  "CMakeFiles/tcq_core.dir/analyzer.cc.o.d"
  "CMakeFiles/tcq_core.dir/egress.cc.o"
  "CMakeFiles/tcq_core.dir/egress.cc.o.d"
  "CMakeFiles/tcq_core.dir/runner.cc.o"
  "CMakeFiles/tcq_core.dir/runner.cc.o.d"
  "CMakeFiles/tcq_core.dir/server.cc.o"
  "CMakeFiles/tcq_core.dir/server.cc.o.d"
  "libtcq_core.a"
  "libtcq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
