# Empty dependencies file for tcq_core.
# This may be replaced when dependencies are built.
