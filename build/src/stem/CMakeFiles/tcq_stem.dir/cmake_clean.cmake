file(REMOVE_RECURSE
  "CMakeFiles/tcq_stem.dir/remote_index.cc.o"
  "CMakeFiles/tcq_stem.dir/remote_index.cc.o.d"
  "CMakeFiles/tcq_stem.dir/stem.cc.o"
  "CMakeFiles/tcq_stem.dir/stem.cc.o.d"
  "libtcq_stem.a"
  "libtcq_stem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_stem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
