file(REMOVE_RECURSE
  "libtcq_stem.a"
)
