# Empty dependencies file for tcq_stem.
# This may be replaced when dependencies are built.
