file(REMOVE_RECURSE
  "CMakeFiles/tcq_cacq.dir/engine.cc.o"
  "CMakeFiles/tcq_cacq.dir/engine.cc.o.d"
  "CMakeFiles/tcq_cacq.dir/shared_ops.cc.o"
  "CMakeFiles/tcq_cacq.dir/shared_ops.cc.o.d"
  "CMakeFiles/tcq_cacq.dir/shared_stem.cc.o"
  "CMakeFiles/tcq_cacq.dir/shared_stem.cc.o.d"
  "libtcq_cacq.a"
  "libtcq_cacq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_cacq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
