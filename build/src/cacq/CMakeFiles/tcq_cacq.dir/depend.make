# Empty dependencies file for tcq_cacq.
# This may be replaced when dependencies are built.
