file(REMOVE_RECURSE
  "libtcq_cacq.a"
)
