# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tuple")
subdirs("fjords")
subdirs("expr")
subdirs("parser")
subdirs("window")
subdirs("stem")
subdirs("modules")
subdirs("eddy")
subdirs("cacq")
subdirs("psoup")
subdirs("flux")
subdirs("ingress")
subdirs("core")
