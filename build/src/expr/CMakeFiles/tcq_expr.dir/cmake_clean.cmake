file(REMOVE_RECURSE
  "CMakeFiles/tcq_expr.dir/ast.cc.o"
  "CMakeFiles/tcq_expr.dir/ast.cc.o.d"
  "CMakeFiles/tcq_expr.dir/predicates.cc.o"
  "CMakeFiles/tcq_expr.dir/predicates.cc.o.d"
  "libtcq_expr.a"
  "libtcq_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
