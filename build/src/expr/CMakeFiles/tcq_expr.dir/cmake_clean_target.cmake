file(REMOVE_RECURSE
  "libtcq_expr.a"
)
