# Empty compiler generated dependencies file for tcq_expr.
# This may be replaced when dependencies are built.
