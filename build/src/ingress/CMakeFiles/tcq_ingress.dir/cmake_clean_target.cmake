file(REMOVE_RECURSE
  "libtcq_ingress.a"
)
