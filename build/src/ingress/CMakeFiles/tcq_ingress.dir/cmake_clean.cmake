file(REMOVE_RECURSE
  "CMakeFiles/tcq_ingress.dir/sources.cc.o"
  "CMakeFiles/tcq_ingress.dir/sources.cc.o.d"
  "CMakeFiles/tcq_ingress.dir/wrapper.cc.o"
  "CMakeFiles/tcq_ingress.dir/wrapper.cc.o.d"
  "libtcq_ingress.a"
  "libtcq_ingress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_ingress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
