# Empty compiler generated dependencies file for tcq_ingress.
# This may be replaced when dependencies are built.
