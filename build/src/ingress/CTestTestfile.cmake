# CMake generated Testfile for 
# Source directory: /root/repo/src/ingress
# Build directory: /root/repo/build/src/ingress
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
