# Empty dependencies file for tcq_fjords.
# This may be replaced when dependencies are built.
