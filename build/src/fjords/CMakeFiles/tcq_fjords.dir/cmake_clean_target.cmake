file(REMOVE_RECURSE
  "libtcq_fjords.a"
)
