file(REMOVE_RECURSE
  "CMakeFiles/tcq_fjords.dir/scheduler.cc.o"
  "CMakeFiles/tcq_fjords.dir/scheduler.cc.o.d"
  "libtcq_fjords.a"
  "libtcq_fjords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_fjords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
