file(REMOVE_RECURSE
  "CMakeFiles/cluster_flux.dir/cluster_flux.cc.o"
  "CMakeFiles/cluster_flux.dir/cluster_flux.cc.o.d"
  "cluster_flux"
  "cluster_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
