# Empty dependencies file for cluster_flux.
# This may be replaced when dependencies are built.
