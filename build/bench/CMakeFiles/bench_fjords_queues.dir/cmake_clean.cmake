file(REMOVE_RECURSE
  "CMakeFiles/bench_fjords_queues.dir/bench_fjords_queues.cc.o"
  "CMakeFiles/bench_fjords_queues.dir/bench_fjords_queues.cc.o.d"
  "bench_fjords_queues"
  "bench_fjords_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fjords_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
