# Empty dependencies file for bench_fjords_queues.
# This may be replaced when dependencies are built.
