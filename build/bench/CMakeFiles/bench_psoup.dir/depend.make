# Empty dependencies file for bench_psoup.
# This may be replaced when dependencies are built.
