file(REMOVE_RECURSE
  "CMakeFiles/bench_psoup.dir/bench_psoup.cc.o"
  "CMakeFiles/bench_psoup.dir/bench_psoup.cc.o.d"
  "bench_psoup"
  "bench_psoup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psoup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
