file(REMOVE_RECURSE
  "CMakeFiles/bench_juggle.dir/bench_juggle.cc.o"
  "CMakeFiles/bench_juggle.dir/bench_juggle.cc.o.d"
  "bench_juggle"
  "bench_juggle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_juggle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
