# Empty compiler generated dependencies file for bench_juggle.
# This may be replaced when dependencies are built.
