# Empty compiler generated dependencies file for bench_grouped_filter.
# This may be replaced when dependencies are built.
