# Empty dependencies file for bench_flux.
# This may be replaced when dependencies are built.
