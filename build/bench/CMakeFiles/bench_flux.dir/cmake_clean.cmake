file(REMOVE_RECURSE
  "CMakeFiles/bench_flux.dir/bench_flux.cc.o"
  "CMakeFiles/bench_flux.dir/bench_flux.cc.o.d"
  "bench_flux"
  "bench_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
