# Empty compiler generated dependencies file for bench_cacq_sharing.
# This may be replaced when dependencies are built.
