file(REMOVE_RECURSE
  "CMakeFiles/bench_cacq_sharing.dir/bench_cacq_sharing.cc.o"
  "CMakeFiles/bench_cacq_sharing.dir/bench_cacq_sharing.cc.o.d"
  "bench_cacq_sharing"
  "bench_cacq_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cacq_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
