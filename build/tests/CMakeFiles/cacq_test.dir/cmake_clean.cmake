file(REMOVE_RECURSE
  "CMakeFiles/cacq_test.dir/cacq_test.cc.o"
  "CMakeFiles/cacq_test.dir/cacq_test.cc.o.d"
  "cacq_test"
  "cacq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
