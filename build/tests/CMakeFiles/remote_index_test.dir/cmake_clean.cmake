file(REMOVE_RECURSE
  "CMakeFiles/remote_index_test.dir/remote_index_test.cc.o"
  "CMakeFiles/remote_index_test.dir/remote_index_test.cc.o.d"
  "remote_index_test"
  "remote_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
