# Empty dependencies file for shared_stem_test.
# This may be replaced when dependencies are built.
