file(REMOVE_RECURSE
  "CMakeFiles/shared_stem_test.dir/shared_stem_test.cc.o"
  "CMakeFiles/shared_stem_test.dir/shared_stem_test.cc.o.d"
  "shared_stem_test"
  "shared_stem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_stem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
