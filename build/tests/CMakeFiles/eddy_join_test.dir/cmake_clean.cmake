file(REMOVE_RECURSE
  "CMakeFiles/eddy_join_test.dir/eddy_join_test.cc.o"
  "CMakeFiles/eddy_join_test.dir/eddy_join_test.cc.o.d"
  "eddy_join_test"
  "eddy_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddy_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
