# Empty compiler generated dependencies file for eddy_join_test.
# This may be replaced when dependencies are built.
