file(REMOVE_RECURSE
  "CMakeFiles/flux_test.dir/flux_test.cc.o"
  "CMakeFiles/flux_test.dir/flux_test.cc.o.d"
  "flux_test"
  "flux_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
