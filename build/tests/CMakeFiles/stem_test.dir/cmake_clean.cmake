file(REMOVE_RECURSE
  "CMakeFiles/stem_test.dir/stem_test.cc.o"
  "CMakeFiles/stem_test.dir/stem_test.cc.o.d"
  "stem_test"
  "stem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
