file(REMOVE_RECURSE
  "CMakeFiles/eddy_test.dir/eddy_test.cc.o"
  "CMakeFiles/eddy_test.dir/eddy_test.cc.o.d"
  "eddy_test"
  "eddy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
