# Empty compiler generated dependencies file for eddy_test.
# This may be replaced when dependencies are built.
