file(REMOVE_RECURSE
  "CMakeFiles/psoup_test.dir/psoup_test.cc.o"
  "CMakeFiles/psoup_test.dir/psoup_test.cc.o.d"
  "psoup_test"
  "psoup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psoup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
