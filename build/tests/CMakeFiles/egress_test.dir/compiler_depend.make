# Empty compiler generated dependencies file for egress_test.
# This may be replaced when dependencies are built.
