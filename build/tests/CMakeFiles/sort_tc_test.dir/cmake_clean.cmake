file(REMOVE_RECURSE
  "CMakeFiles/sort_tc_test.dir/sort_tc_test.cc.o"
  "CMakeFiles/sort_tc_test.dir/sort_tc_test.cc.o.d"
  "sort_tc_test"
  "sort_tc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_tc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
