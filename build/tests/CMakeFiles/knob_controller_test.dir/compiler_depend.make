# Empty compiler generated dependencies file for knob_controller_test.
# This may be replaced when dependencies are built.
