file(REMOVE_RECURSE
  "CMakeFiles/knob_controller_test.dir/knob_controller_test.cc.o"
  "CMakeFiles/knob_controller_test.dir/knob_controller_test.cc.o.d"
  "knob_controller_test"
  "knob_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knob_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
