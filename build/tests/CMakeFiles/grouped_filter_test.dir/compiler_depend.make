# Empty compiler generated dependencies file for grouped_filter_test.
# This may be replaced when dependencies are built.
