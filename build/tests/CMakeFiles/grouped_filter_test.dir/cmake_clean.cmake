file(REMOVE_RECURSE
  "CMakeFiles/grouped_filter_test.dir/grouped_filter_test.cc.o"
  "CMakeFiles/grouped_filter_test.dir/grouped_filter_test.cc.o.d"
  "grouped_filter_test"
  "grouped_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
