// E6 — Grouped filter vs. per-query predicate evaluation (§3.1).
//
// Workload: N single-column boolean factors over one attribute (a mix of
// equality over a 64-value pool and range bounds). For each probe value:
//
//   grouped — one GroupedFilter::Apply (hash hit + sorted-prefix walks);
//   naive   — evaluate each of the N predicates individually.
//
// Reported: time per probe as N grows. Expected shape: naive is O(N) per
// tuple; grouped is O(log N + matches) — the curves cross immediately and
// diverge by orders of magnitude at N in the thousands. This is the
// index the paper's Query SteM generalizes.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "modules/grouped_filter.h"

namespace tcq {
namespace {

struct Pred {
  BinaryOp op;
  int64_t constant;
};

std::vector<Pred> MakePredicates(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Pred> preds;
  preds.reserve(n);
  const BinaryOp ops[] = {BinaryOp::kEq, BinaryOp::kEq, BinaryOp::kEq,
                          BinaryOp::kGt, BinaryOp::kLt};
  for (size_t i = 0; i < n; ++i) {
    preds.push_back(
        {ops[rng.NextBounded(5)], rng.NextInt(0, 63)});
  }
  return preds;
}

void BM_GroupedFilterProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto preds = MakePredicates(n, 5);
  GroupedFilter gf;
  for (size_t i = 0; i < n; ++i) {
    gf.AddPredicate(static_cast<QueryId>(i), preds[i].op,
                    Value::Int64(preds[i].constant));
  }
  Rng rng(9);
  SmallBitset candidates(n);
  uint64_t matches = 0;
  for (auto _ : state) {
    candidates.SetAll();
    gf.Apply(Value::Int64(rng.NextInt(0, 63)), &candidates);
    matches += candidates.Count();
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["avg_matches"] = static_cast<double>(matches) /
                                  static_cast<double>(state.iterations());
  state.counters["probes_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GroupedFilterProbe)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kNanosecond);

void BM_NaivePredicateScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto preds = MakePredicates(n, 5);
  Rng rng(9);
  SmallBitset candidates(n);
  uint64_t matches = 0;
  for (auto _ : state) {
    const int64_t v = rng.NextInt(0, 63);
    candidates.SetAll();
    for (size_t i = 0; i < n; ++i) {
      bool pass = false;
      switch (preds[i].op) {
        case BinaryOp::kEq:
          pass = v == preds[i].constant;
          break;
        case BinaryOp::kGt:
          pass = v > preds[i].constant;
          break;
        default:
          pass = v < preds[i].constant;
          break;
      }
      if (!pass) candidates.Clear(i);
    }
    matches += candidates.Count();
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["avg_matches"] = static_cast<double>(matches) /
                                  static_cast<double>(state.iterations());
  state.counters["probes_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NaivePredicateScan)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kNanosecond);

// Equality-only workload: the grouped filter's best case (pure hash).
void BM_GroupedFilterEqualityOnly(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  GroupedFilter gf;
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    gf.AddPredicate(static_cast<QueryId>(i), BinaryOp::kEq,
                    Value::Int64(rng.NextInt(0, 1023)));
  }
  Rng probe_rng(9);
  SmallBitset candidates(n);
  for (auto _ : state) {
    candidates.SetAll();
    gf.Apply(Value::Int64(probe_rng.NextInt(0, 1023)), &candidates);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_GroupedFilterEqualityOnly)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace tcq
