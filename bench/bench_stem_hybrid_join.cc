// E3 — SteMs and hybrid joins (§2.2, [RDH02], [HN96]).
//
// Workload: stream S (Zipf-skewed keys) joins source T. T is available
// two ways: as a stream feeding a SteM (symmetric hash) and as an
// expensive remote index (each Lookup costs `kRemoteCost` abstract units;
// a hash probe costs ~1).
//
// Plans compared:
//   sym_hash     — SteM build/probe both sides (needs T streamed);
//   index_only   — every S tuple pays a remote lookup;
//   index_cached — remote index behind a cache SteM [HN96];
//   hybrid       — SteM probe AND cached index probe into T registered as
//                  one operator group: the Eddy runs both plans at once,
//                  sharing fetched state, with no duplicate results (§2.2).
//
// Reported: remote_cost_per_tuple and wall time, across key skews.
// Expected shape: index_only pays kRemoteCost per tuple regardless of
// skew; the cache collapses that once keys repeat (more with skew);
// hybrid matches sym_hash when T data is present and cached-index
// otherwise.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "eddy/eddy.h"
#include "eddy/operators.h"

namespace tcq {
namespace {

constexpr int64_t kStreamTuples = 8000;
constexpr uint64_t kKeySpace = 512;
constexpr uint64_t kRemoteCost = 200;

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

TupleVector MakeTRows() {
  TupleVector rows;
  for (uint64_t k = 0; k < kKeySpace; ++k) {
    rows.push_back(Tuple::Make({Value::Int64(static_cast<int64_t>(k)),
                                Value::Int64(static_cast<int64_t>(k * 10))},
                               0));
  }
  return rows;
}

struct Fixture {
  SourceLayout layout;
  size_t s, t;
  Fixture() {
    s = layout.AddSource("S", KV());
    t = layout.AddSource("T", KV());
  }
  SmallBitset Only(size_t src) {
    SmallBitset b(layout.num_sources());
    b.Set(src);
    return b;
  }
};

enum class Plan { kSymHash, kIndexOnly, kIndexCached, kHybrid };

void RunJoin(benchmark::State& state, Plan plan, double skew) {
  uint64_t remote_cost = 0;
  uint64_t emitted = 0;
  uint64_t tuples = 0;
  for (auto _ : state) {
    Fixture fx;
    Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(11));

    auto index = std::make_shared<RemoteIndex>(
        "T_idx", KV(), 0, MakeTRows(),
        RemoteIndex::Options{kRemoteCost, std::chrono::microseconds(0)});

    SteM::Options so;
    so.key_field = static_cast<int>(fx.layout.offset(fx.t));
    auto stem_t =
        std::make_shared<SteM>("SteM_T", fx.layout.full_schema(), so);
    SteM::Options ss;
    ss.key_field = static_cast<int>(fx.layout.offset(fx.s));
    auto stem_s =
        std::make_shared<SteM>("SteM_S", fx.layout.full_schema(), ss);
    auto cache =
        std::make_shared<SteM>("T_cache", fx.layout.full_schema(), so);

    const int s_key = static_cast<int>(fx.layout.offset(fx.s));
    const int t_key = static_cast<int>(fx.layout.offset(fx.t));
    const bool use_stems = plan == Plan::kSymHash || plan == Plan::kHybrid;
    if (use_stems) {
      eddy.AddOperator(
          std::make_shared<StemBuildOp>("build_S", fx.s, stem_s));
      eddy.AddOperator(
          std::make_shared<StemBuildOp>("build_T", fx.t, stem_t));
      eddy.AddOperator(std::make_shared<StemProbeOp>(
                           "probe_T", &fx.layout, fx.t, stem_t,
                           fx.Only(fx.s), s_key, nullptr),
                       /*group=*/1);
      eddy.AddOperator(std::make_shared<StemProbeOp>(
                           "probe_S", &fx.layout, fx.s, stem_s,
                           fx.Only(fx.t), t_key, nullptr),
                       /*group=*/0);
    }
    if (plan != Plan::kSymHash) {
      eddy.AddOperator(
          std::make_shared<RemoteIndexProbeOp>(
              "idx_T", &fx.layout, fx.t, index, fx.Only(fx.s), s_key,
              nullptr,
              plan == Plan::kIndexOnly ? nullptr : cache),
          /*group=*/1);
    }
    eddy.SetSink([&](RoutedTuple&&) { ++emitted; });

    // Stream S with skewed keys; in plans with T streamed, T rows arrive
    // interleaved up-front (so the SteM path has data to hit).
    Rng rng(99);
    if (use_stems) {
      for (const Tuple& row : MakeTRows()) eddy.Inject(fx.t, row);
      eddy.Drain();
    }
    for (int64_t i = 0; i < kStreamTuples; ++i) {
      const int64_t k =
          static_cast<int64_t>(rng.NextZipf(kKeySpace, skew));
      eddy.Inject(fx.s, Tuple::Make({Value::Int64(k), Value::Int64(i)}, i));
      if (i % 128 == 0) eddy.Drain();
    }
    eddy.Drain();
    remote_cost += index->total_cost();
    tuples += kStreamTuples;
  }
  state.counters["remote_cost_per_tuple"] =
      static_cast<double>(remote_cost) / static_cast<double>(tuples);
  state.counters["results_per_run"] =
      static_cast<double>(emitted) /
      static_cast<double>(state.iterations());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_SymHash(benchmark::State& state) {
  RunJoin(state, Plan::kSymHash, static_cast<double>(state.range(0)) / 10);
}
void BM_IndexOnly(benchmark::State& state) {
  RunJoin(state, Plan::kIndexOnly, static_cast<double>(state.range(0)) / 10);
}
void BM_IndexCached(benchmark::State& state) {
  RunJoin(state, Plan::kIndexCached,
          static_cast<double>(state.range(0)) / 10);
}
void BM_Hybrid(benchmark::State& state) {
  RunJoin(state, Plan::kHybrid, static_cast<double>(state.range(0)) / 10);
}

// Arg = skew * 10 (0 = uniform, 12 = strong zipf).
BENCHMARK(BM_SymHash)->Arg(0)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexOnly)->Arg(0)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexCached)->Arg(0)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hybrid)->Arg(0)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
