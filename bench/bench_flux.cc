// E9 — Flux: online repartitioning and process-pair fault tolerance
// (§2.4, [SHCF03]) on the simulated shared-nothing cluster.
//
// Experiments:
//
//  1. drain_under_bad_partitioning — the operator's partitions all start
//     on node 0 (data characteristics shifted since deployment). Time
//     (ticks) to drain a fixed workload with repartitioning off vs on.
//     Expected: repartitioning cuts drain time by ~num_nodes/2 or better.
//
//  2. replication_overhead — steady-state throughput with and without
//     mirrored standby updates: the reliability-for-performance QoS knob.
//
//  3. failover — kill a node mid-run; with replication the standby is
//     promoted, in-flight tuples replay, and lost_updates == 0; without
//     it the node's state is gone (lost_updates > 0). Recovery happens
//     without human intervention either way.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "flux/flux.h"

namespace tcq {
namespace {

TupleVector MakeBatch(size_t n, uint64_t keys, uint64_t seed) {
  Rng rng(seed);
  TupleVector batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(Tuple::Make(
        {Value::Int64(static_cast<int64_t>(rng.NextBounded(keys))),
         Value::Double(1.0)},
        0));
  }
  return batch;
}

void BM_DrainBadPartitioning(benchmark::State& state) {
  const bool repartition = state.range(0) != 0;
  uint64_t ticks = 0;
  for (auto _ : state) {
    FluxCluster::Options opts;
    opts.num_nodes = 8;
    opts.capacity_per_tick = 64;
    opts.enable_repartitioning = repartition;
    opts.min_backlog_for_move = 32;
    opts.move_cooldown_ticks = 2;
    opts.initial_owner.assign(opts.num_partitions, 0);  // All on node 0.
    FluxCluster cluster(opts);
    cluster.Feed(MakeBatch(40000, 64, 3));
    ticks += cluster.Run();
  }
  state.counters["drain_ticks"] = static_cast<double>(ticks) /
                                  static_cast<double>(state.iterations());
}
BENCHMARK(BM_DrainBadPartitioning)
    ->Arg(0)  // repartitioning off
    ->Arg(1)  // repartitioning on
    ->Unit(benchmark::kMillisecond);

void BM_ReplicationOverhead(benchmark::State& state) {
  const bool replicate = state.range(0) != 0;
  uint64_t ticks = 0;
  for (auto _ : state) {
    FluxCluster::Options opts;
    opts.num_nodes = 4;
    opts.capacity_per_tick = 128;
    opts.enable_repartitioning = false;
    opts.enable_replication = replicate;
    FluxCluster cluster(opts);
    cluster.Feed(MakeBatch(50000, 256, 5));
    ticks += cluster.Run();
  }
  state.counters["drain_ticks"] = static_cast<double>(ticks) /
                                  static_cast<double>(state.iterations());
}
BENCHMARK(BM_ReplicationOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_FailoverRecovery(benchmark::State& state) {
  const bool replicate = state.range(0) != 0;
  uint64_t lost = 0;
  uint64_t replayed = 0;
  uint64_t ticks = 0;
  for (auto _ : state) {
    FluxCluster::Options opts;
    opts.num_nodes = 4;
    opts.capacity_per_tick = 64;
    opts.enable_repartitioning = false;
    opts.enable_replication = replicate;
    FluxCluster cluster(opts);
    TupleVector batch = MakeBatch(30000, 128, 7);
    cluster.Feed(TupleVector(batch.begin(), batch.begin() + 15000));
    for (int i = 0; i < 20; ++i) cluster.Tick();
    benchmark::DoNotOptimize(cluster.KillNode(1));
    cluster.Feed(TupleVector(batch.begin() + 15000, batch.end()));
    ticks += cluster.Run();
    lost += cluster.lost_updates();
    replayed += cluster.replayed();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["lost_updates"] = static_cast<double>(lost) / iters;
  state.counters["replayed_in_flight"] =
      static_cast<double>(replayed) / iters;
  state.counters["drain_ticks"] = static_cast<double>(ticks) / iters;
}
BENCHMARK(BM_FailoverRecovery)
    ->Arg(0)  // no replication: state lost
    ->Arg(1)  // process-pair: zero loss
    ->Unit(benchmark::kMillisecond);

// Skewed live stream: repartitioning reacts to drift in key popularity
// (the hotspot migrates every quarter of the run).
void BM_SkewDriftThroughput(benchmark::State& state) {
  const bool repartition = state.range(0) != 0;
  uint64_t ticks = 0;
  for (auto _ : state) {
    FluxCluster::Options opts;
    opts.num_nodes = 8;
    opts.capacity_per_tick = 64;
    opts.enable_repartitioning = repartition;
    opts.min_backlog_for_move = 32;
    opts.move_cooldown_ticks = 4;
    FluxCluster cluster(opts);
    Rng rng(11);
    for (int phase = 0; phase < 4; ++phase) {
      for (int step = 0; step < 25; ++step) {
        TupleVector batch;
        for (int i = 0; i < 400; ++i) {
          // 70% of traffic hits one drifting hot key.
          const int64_t key =
              rng.NextBool(0.7)
                  ? phase * 13 + 1
                  : static_cast<int64_t>(rng.NextBounded(128));
          batch.push_back(
              Tuple::Make({Value::Int64(key), Value::Double(1.0)}, 0));
        }
        cluster.Feed(batch);
        cluster.Tick();
      }
    }
    ticks += cluster.Run();
  }
  state.counters["total_ticks"] = static_cast<double>(ticks) /
                                  static_cast<double>(state.iterations());
}
BENCHMARK(BM_SkewDriftThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
