// E5 — CACQ shared processing (§3.1, [MSHR02]).
//
// Workload: N standing selection queries over one stock stream, with
// overlapping predicates (symbol equality over a small symbol pool plus a
// price range). Execution strategies:
//
//   shared      — one CacqEngine: a single Eddy, grouped filters indexing
//                 all N predicates, tuple lineage fan-out;
//   independent — N separate single-query Eddies, each evaluating its own
//                 predicate on every tuple (the query-per-plan baseline).
//
// Reported: wall time for a fixed stream as N grows (N = 1..256), plus
// deliveries (identical for both strategies — checked).
// Expected shape: independent cost grows ~linearly with N; shared grows
// sub-linearly (index probe + bitmap ops per tuple), with the gap widening
// to an order of magnitude by N in the hundreds — CACQ's headline result.

#include <benchmark/benchmark.h>

#include "cacq/engine.h"
#include "common/rng.h"
#include "eddy/operators.h"
#include "ingress/sources.h"

namespace tcq {
namespace {

constexpr int64_t kDays = 400;
constexpr size_t kSymbols = 16;

TupleVector MakeStream() {
  StockTickerSource::Options opts;
  opts.num_symbols = kSymbols;
  opts.num_days = kDays;
  opts.seed = 2003;
  StockTickerSource src(opts);
  TupleVector out;
  while (auto t = src.Next()) out.push_back(std::move(*t));
  return out;
}

/// Query i: stockSymbol = S_i AND closingPrice > c_i (overlapping pool).
ExprPtr QueryPredicate(size_t i, Rng* rng) {
  ExprPtr sym = Expr::Binary(
      BinaryOp::kEq, Expr::Column("stockSymbol"),
      Expr::Literal(
          Value::String(StockTickerSource::SymbolName(i % kSymbols))));
  ExprPtr price = Expr::Binary(
      BinaryOp::kGt, Expr::Column("closingPrice"),
      Expr::Literal(Value::Double(30.0 + static_cast<double>(
                                             rng->NextBounded(40)))));
  return Expr::Binary(BinaryOp::kAnd, sym, price);
}

void BM_SharedCacq(benchmark::State& state) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  const TupleVector stream = MakeStream();
  uint64_t deliveries = 0;
  for (auto _ : state) {
    Rng rng(7);
    CacqEngine engine;
    benchmark::DoNotOptimize(
        engine.AddStream("Stocks", StockTickerSource::MakeSchema()));
    engine.SetSink([&](QueryId, const Tuple&) { ++deliveries; });
    for (size_t i = 0; i < num_queries; ++i) {
      CacqQuerySpec spec;
      spec.sources = {"Stocks"};
      spec.where = QueryPredicate(i, &rng);
      benchmark::DoNotOptimize(engine.AddQuery(spec));
    }
    for (const Tuple& t : stream) {
      benchmark::DoNotOptimize(engine.Inject("Stocks", t));
    }
  }
  state.counters["deliveries"] = static_cast<double>(deliveries) /
                                 static_cast<double>(state.iterations());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(stream.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SharedCacq)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_IndependentQueries(benchmark::State& state) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  const TupleVector stream = MakeStream();
  uint64_t deliveries = 0;
  for (auto _ : state) {
    Rng rng(7);
    // One Eddy per query, each with a single FilterOp.
    SchemaPtr schema = StockTickerSource::MakeSchema();
    std::vector<std::unique_ptr<SourceLayout>> layouts;
    std::vector<std::unique_ptr<Eddy>> eddies;
    for (size_t i = 0; i < num_queries; ++i) {
      auto layout = std::make_unique<SourceLayout>();
      const size_t s = layout->AddSource("Stocks", schema);
      auto eddy = std::make_unique<Eddy>(
          layout.get(), std::make_unique<LotteryPolicy>(7));
      auto bound = QueryPredicate(i, &rng)->Bind(*layout->full_schema());
      SmallBitset req(1);
      req.Set(s);
      eddy->AddOperator(
          std::make_shared<FilterOp>("pred", *bound, req));
      eddy->SetSink([&](RoutedTuple&&) { ++deliveries; });
      layouts.push_back(std::move(layout));
      eddies.push_back(std::move(eddy));
    }
    for (const Tuple& t : stream) {
      for (auto& eddy : eddies) {
        eddy->Inject(0, t);
        eddy->Drain();
      }
    }
  }
  state.counters["deliveries"] = static_cast<double>(deliveries) /
                                 static_cast<double>(state.iterations());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(stream.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndependentQueries)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Query churn: fold-in/remove latency on a live shared engine (§4.2.2's
// dynamic query add/remove without stalling the dataflow).
void BM_SharedQueryChurn(benchmark::State& state) {
  const TupleVector stream = MakeStream();
  Rng rng(7);
  CacqEngine engine;
  benchmark::DoNotOptimize(
      engine.AddStream("Stocks", StockTickerSource::MakeSchema()));
  engine.SetSink([](QueryId, const Tuple&) {});
  // Warm engine with 64 standing queries and some data.
  std::vector<QueryId> ids;
  for (size_t i = 0; i < 64; ++i) {
    CacqQuerySpec spec;
    spec.sources = {"Stocks"};
    spec.where = QueryPredicate(i, &rng);
    ids.push_back(*engine.AddQuery(spec));
  }
  size_t pos = 0;
  for (auto _ : state) {
    CacqQuerySpec spec;
    spec.sources = {"Stocks"};
    spec.where = QueryPredicate(pos, &rng);
    QueryId q = *engine.AddQuery(spec);
    benchmark::DoNotOptimize(engine.Inject("Stocks", stream[pos]));
    benchmark::DoNotOptimize(engine.RemoveQuery(q));
    pos = (pos + 1) % stream.size();
  }
}
BENCHMARK(BM_SharedQueryChurn)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tcq
