// E2 — "Adapting adaptivity" (§4.3): the batching and operator-fixing
// knobs trade routing overhead against reaction speed.
//
// Two sweeps over the same 5-filter pipeline:
//   * batch sweep — tuples per routing decision in {1..256};
//   * sequence sweep — operators fixed per decision in {1..5}.
//
// Reported per configuration: decisions_per_tuple (the overhead being
// amortized), visits_per_tuple under mid-stream selectivity drift (the
// adaptivity being lost: larger batches react later, so more wasted
// operator evaluations), and wall time.
// Expected shape: decisions/tuple falls ~1/knob; time/tuple falls with it;
// visits/tuple (drift waste) creeps up — the paper's overhead/flexibility
// trade-off.

#include <benchmark/benchmark.h>

#include "eddy/eddy.h"
#include "eddy/knob_controller.h"
#include "eddy/operators.h"

namespace tcq {
namespace {

constexpr int64_t kTuples = 30000;
constexpr size_t kFilters = 5;

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

void RunKnobs(benchmark::State& state, size_t batch, size_t seq_len) {
  uint64_t visits = 0, decisions = 0, tuples = 0;
  for (auto _ : state) {
    SourceLayout layout;
    const size_t s = layout.AddSource("s", KV());
    SmallBitset req(1);
    req.Set(s);
    Eddy::Options opts;
    opts.batch_size = batch;
    opts.fixed_sequence_length = seq_len;
    Eddy eddy(&layout, std::make_unique<LotteryPolicy>(42), opts);
    // Five filters; which one is selective rotates every kTuples/5 of the
    // global stream, forcing continual re-adaptation.
    auto pos = std::make_shared<uint64_t>(0);
    for (size_t f = 0; f < kFilters; ++f) {
      eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
          "f" + std::to_string(f), req,
          [f, pos](uint64_t) {
            const size_t hot = (*pos / (kTuples / kFilters)) % kFilters;
            return hot == f ? 0.1 : 0.95;
          },
          1.0, 100 + f));
    }
    for (int64_t i = 0; i < kTuples; ++i) {
      *pos = static_cast<uint64_t>(i);
      eddy.Inject(s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
      eddy.Drain();
    }
    visits += eddy.visits();
    decisions += eddy.decisions();
    tuples += kTuples;
  }
  state.counters["decisions_per_tuple"] =
      static_cast<double>(decisions) / static_cast<double>(tuples);
  state.counters["visits_per_tuple"] =
      static_cast<double>(visits) / static_cast<double>(tuples);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_BatchKnob(benchmark::State& state) {
  RunKnobs(state, static_cast<size_t>(state.range(0)), 1);
}
BENCHMARK(BM_BatchKnob)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SequenceKnob(benchmark::State& state) {
  RunKnobs(state, 1, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_SequenceKnob)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_BothKnobs(benchmark::State& state) {
  RunKnobs(state, static_cast<size_t>(state.range(0)),
           static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_BothKnobs)
    ->Args({64, 5})
    ->Args({256, 5})
    ->Unit(benchmark::kMillisecond);

// Ablation: the automatic knob controller (§4.3 "policies for
// automatically turning knobs"). The workload alternates long stable
// phases with drift bursts; the controller should approach small-batch
// adaptivity (low wasted visits) at large-batch decision counts.
void BM_AutoKnob(benchmark::State& state) {
  uint64_t visits = 0, decisions = 0, tuples = 0;
  uint64_t final_batch = 0;
  for (auto _ : state) {
    SourceLayout layout;
    const size_t s = layout.AddSource("s", KV());
    SmallBitset req(1);
    req.Set(s);
    Eddy eddy(&layout, std::make_unique<LotteryPolicy>(42));
    auto pos = std::make_shared<uint64_t>(0);
    for (size_t f = 0; f < kFilters; ++f) {
      eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
          "f" + std::to_string(f), req,
          [f, pos](uint64_t) {
            const size_t hot = (*pos / (kTuples / kFilters)) % kFilters;
            return hot == f ? 0.1 : 0.95;
          },
          1.0, 100 + f));
    }
    KnobController::Options copts;
    copts.sample_interval = 256;
    copts.max_batch = 256;
    KnobController controller(&eddy, copts);
    for (int64_t i = 0; i < kTuples; ++i) {
      *pos = static_cast<uint64_t>(i);
      eddy.Inject(s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
      eddy.Drain();
      controller.OnTuple();
    }
    visits += eddy.visits();
    decisions += eddy.decisions();
    tuples += kTuples;
    final_batch = eddy.batch_size();
  }
  state.counters["decisions_per_tuple"] =
      static_cast<double>(decisions) / static_cast<double>(tuples);
  state.counters["visits_per_tuple"] =
      static_cast<double>(visits) / static_cast<double>(tuples);
  state.counters["final_batch"] = static_cast<double>(final_batch);
}
BENCHMARK(BM_AutoKnob)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
