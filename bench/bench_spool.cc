// Disk-backed history spool (DESIGN.md §16): what demoting aged state to
// disk costs, and what reading it back costs under a bounded page cache.
//
// Experiments:
//
//  1. demotion_throughput — straight-line Append of in-order records,
//     swept over segment size. This is the archive's steady-state
//     overflow path: every tuple beyond the resident tail pays one
//     record encode plus an occasional rotation.
//
//  2. probe_cold / probe_warm — range scans over a fixed on-disk history
//     with a cache far smaller than the data (cold: every scan faults
//     pages in and evicts others) versus a cache that fits it all (warm:
//     faults only on the first pass). The spread is the page cache's
//     contribution — the knob Server::Options::spool_cache_pages turns.
//
//  3. replay_rate — chunked ScanChunk walks over the full history (the
//     Server::ReplayStream access pattern), swept over segment size.
//
//  4. server_landmark_spooled — end-to-end: a landmark window re-scanning
//     ALL archived history each fire, with the archive bounded to a
//     256-tuple resident tail (spool on) versus unbounded RAM (spool
//     off). The gap is the end-to-end price of bounded-RAM history.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/server.h"
#include "spool/spool.h"
#include "tuple/tuple.h"

namespace tcq {
namespace {

struct TempDir {
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "tcq-spool-bench-XXXXXX")
                           .string();
    char* made = mkdtemp(tmpl.data());
    if (made == nullptr) std::abort();
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

Tuple Row(int64_t ts) {
  return Tuple::Make({Value::Int64(ts), Value::Int64(ts % 97)}, ts);
}

void BM_SpoolDemotionThroughput(benchmark::State& state) {
  const uint64_t segment_bytes = static_cast<uint64_t>(state.range(0));
  TempDir dir;
  Spool::Options o;
  o.dir = dir.path;
  o.cache_pages = 64;
  o.segment_bytes = segment_bytes;
  auto spool = Spool::Open(std::move(o));
  if (!spool.ok()) std::abort();
  int64_t ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*spool)->Append("s", Row(++ts)));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["disk_bytes"] =
      static_cast<double>((*spool)->bytes());
}
BENCHMARK(BM_SpoolDemotionThroughput)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20);

/// One on-disk history, scanned repeatedly. cache_pages decides cold vs
/// warm: the history below is ~90 pages of records.
void RunProbe(benchmark::State& state, size_t cache_pages) {
  constexpr int64_t kRecords = 10000;
  TempDir dir;
  Spool::Options o;
  o.dir = dir.path;
  o.cache_pages = cache_pages;
  o.segment_bytes = 64 << 10;
  auto spool = Spool::Open(std::move(o));
  if (!spool.ok()) std::abort();
  for (int64_t ts = 1; ts <= kRecords; ++ts) {
    if (!(*spool)->Append("s", Row(ts)).ok()) std::abort();
  }
  // Probe a sliding 1000-record range so successive iterations touch
  // different pages (a warm cache still serves them; a cold one churns).
  int64_t lo = 1;
  size_t total = 0;
  for (auto _ : state) {
    size_t n = 0;
    const Status st = (*spool)->Scan(
        "s", lo, lo + 999, [&](const Tuple& t) {
          benchmark::DoNotOptimize(t.timestamp());
          ++n;
          return true;
        });
    if (!st.ok()) std::abort();
    total += n;
    lo = (lo + 1000 > kRecords) ? 1 : lo + 1000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  const auto cs = (*spool)->cache_stats();
  state.counters["hit_rate"] =
      cs.hits + cs.misses == 0
          ? 0.0
          : static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses);
}

void BM_SpoolProbeCold(benchmark::State& state) { RunProbe(state, 8); }
BENCHMARK(BM_SpoolProbeCold);

void BM_SpoolProbeWarm(benchmark::State& state) { RunProbe(state, 256); }
BENCHMARK(BM_SpoolProbeWarm);

void BM_SpoolReplayRate(benchmark::State& state) {
  const uint64_t segment_bytes = static_cast<uint64_t>(state.range(0));
  constexpr int64_t kRecords = 20000;
  TempDir dir;
  Spool::Options o;
  o.dir = dir.path;
  o.cache_pages = 64;
  o.segment_bytes = segment_bytes;
  auto spool = Spool::Open(std::move(o));
  if (!spool.ok()) std::abort();
  for (int64_t ts = 1; ts <= kRecords; ++ts) {
    if (!(*spool)->Append("s", Row(ts)).ok()) std::abort();
  }
  size_t total = 0;
  for (auto _ : state) {
    Timestamp lo = kMinTimestamp;
    while (lo != kMaxTimestamp) {
      TupleVector chunk;
      auto next = (*spool)->ScanChunk("s", lo, kMaxTimestamp, 1024, &chunk);
      if (!next.ok()) std::abort();
      total += chunk.size();
      lo = *next;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SpoolReplayRate)->Arg(64 << 10)->Arg(4 << 20);

void RunServerLandmark(benchmark::State& state, bool spooled) {
  TempDir dir;
  Server::Options o;
  if (spooled) {
    o.spool_dir = dir.path;
    o.spool_cache_pages = 64;
    o.spool_resident_tuples = 256;
    o.spool_segment_bytes = 256 << 10;
  }
  Server server(std::move(o));
  SchemaPtr schema = Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
  benchmark::DoNotOptimize(server.DefineStream("S", schema, 0, 1));
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 256; true; t += 256) { WindowIs(S, 1, t); }");
  if (!q.ok()) std::abort();
  benchmark::DoNotOptimize(server.SetCallback(*q, [](const ResultSet&) {}));

  constexpr size_t kBatch = 64;
  int64_t ts = 0;
  std::vector<Tuple> batch;
  while (state.KeepRunningBatch(kBatch)) {
    batch.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) batch.push_back(Row(++ts));
    benchmark::DoNotOptimize(server.PushBatch("S", std::move(batch)));
    batch.clear();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ServerLandmarkSpooled(benchmark::State& state) {
  RunServerLandmark(state, true);
}
BENCHMARK(BM_ServerLandmarkSpooled);

void BM_ServerLandmarkResident(benchmark::State& state) {
  RunServerLandmark(state, false);
}
BENCHMARK(BM_ServerLandmarkResident);

}  // namespace
}  // namespace tcq
