// E7 — PSoup's materialized Results Structure (§3.2, [CF02]).
//
// Workload: standing selection queries over a sensor stream; disconnected
// clients reconnect and invoke. Strategies compared for invocation cost:
//
//   psoup_invoke — results were materialized on arrival; Invoke() imposes
//                  the window on the Results Structure (binary search +
//                  copy of the answer);
//   recompute    — no materialization; every invocation rescans retained
//                  history applying the predicate (the NiagaraCQ-ish
//                  query-at-poll-time baseline).
//
// Reported: invocation latency vs. history length, plus the per-tuple
// upkeep PSoup pays on the data path and new-query backfill latency.
// Expected shape: invocation is O(answer) for PSoup vs O(history) for
// recompute — crossing over as soon as the predicate is selective; PSoup
// pays instead a small constant per arriving tuple.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ingress/sources.h"
#include "psoup/psoup.h"

namespace tcq {
namespace {

SchemaPtr SensorSchema() { return SensorSource::MakeSchema(); }

TupleVector MakeReadings(int64_t n) {
  SensorSource::Options opts;
  opts.num_sensors = 32;
  opts.num_readings = n * 2;  // Dropouts shrink output; oversample.
  opts.dropout = 0.0;
  SensorSource src(opts);
  TupleVector out;
  while (auto t = src.Next()) {
    out.push_back(std::move(*t));
    if (out.size() == static_cast<size_t>(n)) break;
  }
  return out;
}

ExprPtr SensorPredicate(int64_t sensor) {
  return Expr::Binary(BinaryOp::kEq, Expr::Column("sensorId"),
                      Expr::Literal(Value::Int64(sensor)));
}

void BM_PSoupInvoke(benchmark::State& state) {
  const int64_t history = state.range(0);
  const TupleVector readings = MakeReadings(history);
  PSoup psoup(SensorSchema());
  auto q = psoup.Register(SensorPredicate(3), /*window_width=*/history);
  for (const Tuple& t : readings) psoup.OnData(t);
  const Timestamp now = readings.back().timestamp();
  size_t answer = 0;
  for (auto _ : state) {
    auto results = psoup.Invoke(*q, now);
    answer = results->size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["answer_size"] = static_cast<double>(answer);
  state.counters["invokes_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PSoupInvoke)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_RecomputeInvoke(benchmark::State& state) {
  const int64_t history = state.range(0);
  const TupleVector readings = MakeReadings(history);
  SchemaPtr schema = SensorSchema();
  ExprPtr bound = *SensorPredicate(3)->Bind(*schema);
  const Timestamp now = readings.back().timestamp();
  const Timestamp lo = now - history + 1;
  size_t answer = 0;
  for (auto _ : state) {
    TupleVector results;
    for (const Tuple& t : readings) {
      if (t.timestamp() < lo || t.timestamp() > now) continue;
      const Value keep = bound->Eval(t);
      if (!keep.is_null() && keep.bool_value()) results.push_back(t);
    }
    answer = results.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["answer_size"] = static_cast<double>(answer);
  state.counters["invokes_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecomputeInvoke)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Data-path upkeep: cost per arriving tuple with N standing queries
// (the price of continuous materialization).
void BM_PSoupDataPath(benchmark::State& state) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  PSoup::Options opts;
  opts.history_span = 4096;  // Bound memory during the run.
  PSoup psoup(SensorSchema(), opts);
  for (size_t i = 0; i < num_queries; ++i) {
    benchmark::DoNotOptimize(
        psoup.Register(SensorPredicate(static_cast<int64_t>(i % 32)), 512));
  }
  const TupleVector readings = MakeReadings(20000);
  size_t pos = 0;
  for (auto _ : state) {
    Tuple t = readings[pos % readings.size()];
    t.set_timestamp(static_cast<Timestamp>(pos + 1));  // Keep time moving.
    psoup.OnData(t);
    ++pos;
  }
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PSoupDataPath)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kNanosecond);

// New query over old data: backfill latency vs. retained history (the
// "queries over history" capability CACQ lacks).
void BM_PSoupNewQueryBackfill(benchmark::State& state) {
  const int64_t history = state.range(0);
  const TupleVector readings = MakeReadings(history);
  for (auto _ : state) {
    state.PauseTiming();
    PSoup psoup(SensorSchema());
    for (const Tuple& t : readings) psoup.OnData(t);
    state.ResumeTiming();
    benchmark::DoNotOptimize(psoup.Register(SensorPredicate(3), history));
  }
  state.counters["registrations_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PSoupNewQueryBackfill)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tcq
