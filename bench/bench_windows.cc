// E8 — Window semantics and their state/recompute costs (§4.1).
//
// Three experiments on the ClosingStockPrices stream:
//
//  1. landmark_max vs sliding_max — §4.1.2's observation made concrete:
//     a landmark MAX runs with O(1) accumulator state; a sliding MAX must
//     retain the window and recompute on retirement. Reported per window
//     size: time and buffered tuples.
//
//  2. sliding_sum_subtractable — COUNT/SUM/AVG retire in O(1) even for
//     sliding windows (subtractable accumulators; recomputes stays 0).
//
//  3. hop_size sweep — end-to-end QueryRunner cost of the paper's sliding
//     AVG (example 3) as the hop grows: larger hops execute fewer windows
//     over the same stream (and when hop > width, skip data entirely).

#include <benchmark/benchmark.h>

#include "core/server.h"
#include "ingress/sources.h"

namespace tcq {
namespace {

Tuple Stock(int64_t day, double price) {
  return Tuple::Make(
      {Value::Int64(day), Value::String("MSFT"), Value::Double(price)}, day);
}

std::vector<AggregateSpec> MaxSpec() {
  SchemaPtr schema = StockTickerSource::MakeSchema();
  AggregateSpec spec;
  spec.kind = AggKind::kMax;
  spec.arg = *Expr::Column("closingPrice")->Bind(*schema);
  spec.output_name = "max_price";
  return {spec};
}

std::vector<AggregateSpec> SumSpec() {
  SchemaPtr schema = StockTickerSource::MakeSchema();
  AggregateSpec spec;
  spec.kind = AggKind::kSum;
  spec.arg = *Expr::Column("closingPrice")->Bind(*schema);
  spec.output_name = "sum_price";
  return {spec};
}

constexpr int64_t kDays = 20000;

void BM_LandmarkMax(benchmark::State& state) {
  uint64_t buffered = 0;
  for (auto _ : state) {
    WindowAggregator agg(MaxSpec(), {}, /*retain_tuples=*/false);
    for (int64_t d = 1; d <= kDays; ++d) {
      agg.Add(Stock(d, 50.0 + (d % 100)));
      if (d % 100 == 0) benchmark::DoNotOptimize(agg.Emit(d));
    }
    buffered = agg.buffered_tuples();
  }
  state.counters["buffered_tuples"] = static_cast<double>(buffered);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(kDays) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LandmarkMax)->Unit(benchmark::kMillisecond);

void BM_SlidingMax(benchmark::State& state) {
  const int64_t width = state.range(0);
  uint64_t recomputes = 0;
  uint64_t buffered = 0;
  for (auto _ : state) {
    WindowAggregator agg(MaxSpec(), {}, /*retain_tuples=*/true);
    for (int64_t d = 1; d <= kDays; ++d) {
      agg.Add(Stock(d, 50.0 + (d % 100)));
      if (d % 100 == 0) {
        agg.SetWindow(d - width + 1, d);  // Retire the old edge.
        benchmark::DoNotOptimize(agg.Emit(d));
      }
    }
    recomputes = agg.recomputes();
    buffered = agg.buffered_tuples();
  }
  state.counters["recomputes"] = static_cast<double>(recomputes);
  state.counters["buffered_tuples"] = static_cast<double>(buffered);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(kDays) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SlidingMax)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SlidingSumSubtractable(benchmark::State& state) {
  const int64_t width = state.range(0);
  uint64_t recomputes = 0;
  for (auto _ : state) {
    WindowAggregator agg(SumSpec(), {}, /*retain_tuples=*/true);
    for (int64_t d = 1; d <= kDays; ++d) {
      agg.Add(Stock(d, 50.0 + (d % 100)));
      if (d % 100 == 0) {
        agg.SetWindow(d - width + 1, d);
        benchmark::DoNotOptimize(agg.Emit(d));
      }
    }
    recomputes = agg.recomputes();
  }
  state.counters["recomputes"] = static_cast<double>(recomputes);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(kDays) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SlidingSumSubtractable)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// End-to-end: the paper's example-3 sliding AVG through the full server,
// sweeping the hop. Stream length fixed; the number of fired windows is
// inversely proportional to the hop.
void BM_ServerSlidingAvgHop(benchmark::State& state) {
  const int64_t hop = state.range(0);
  constexpr int64_t kStreamDays = 2000;
  uint64_t windows_fired = 0;
  for (auto _ : state) {
    Server server;
    benchmark::DoNotOptimize(server.DefineStream(
        "ClosingStockPrices", StockTickerSource::MakeSchema(), 0));
    auto q = server.Submit(
        "Select AVG(closingPrice) From ClosingStockPrices "
        "Where stockSymbol = 'MSFT' "
        "for (t = ST; true; t += " + std::to_string(hop) + ") { "
        "WindowIs(ClosingStockPrices, t - 9, t); }");
    for (int64_t d = 1; d <= kStreamDays; ++d) {
      benchmark::DoNotOptimize(
          server.Push("ClosingStockPrices", Stock(d, 50.0 + (d % 10))));
    }
    windows_fired += server.PollAll(*q).size();
  }
  state.counters["windows_fired"] =
      static_cast<double>(windows_fired) /
      static_cast<double>(state.iterations());
  state.counters["days_per_sec"] = benchmark::Counter(
      2000.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerSlidingAvgHop)
    ->Arg(1)
    ->Arg(5)
    ->Arg(20)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
