// E11 — Juggle online reordering ([RRH99], §2.1/§4.3): prioritize the
// records the user cares about so they surface early in a long-running
// dataflow.
//
// Workload: a stream where "interesting" tuples (large v) are uniformly
// scattered; the consumer wants the top decile as soon as possible.
//
//   fifo   — tuples delivered in arrival order: the k-th interesting
//            tuple arrives at its stream position (~k × 10 on average);
//   juggle — a bounded reorder buffer delivers high-priority tuples
//            first whenever the consumer outpaces the producer.
//
// Reported: mean delivery position of the top-decile tuples (how many
// tuples the consumer processed before seeing them), and wall time.
// Expected shape: juggle pulls interesting tuples far forward at equal
// total cost — better "time to insight" with the same throughput.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "modules/juggle.h"

namespace tcq {
namespace {

constexpr int64_t kTuples = 20000;
constexpr int64_t kInterestingCut = 900;  // v >= cut is "interesting".

Tuple Row(int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(v)}, ts);
}

TupleVector MakeStream() {
  Rng rng(31);
  TupleVector out;
  out.reserve(kTuples);
  for (int64_t i = 0; i < kTuples; ++i) {
    out.push_back(Row(rng.NextInt(0, 999), i));
  }
  return out;
}

double MeanInterestingPosition(const TupleVector& delivered) {
  double sum = 0;
  int64_t n = 0;
  for (size_t pos = 0; pos < delivered.size(); ++pos) {
    if (delivered[pos].cell(0).int64_value() >= kInterestingCut) {
      sum += static_cast<double>(pos);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void BM_FifoDelivery(benchmark::State& state) {
  const TupleVector stream = MakeStream();
  double mean_pos = 0;
  for (auto _ : state) {
    // FIFO: delivery order == arrival order.
    mean_pos = MeanInterestingPosition(stream);
    benchmark::DoNotOptimize(mean_pos);
  }
  state.counters["mean_interesting_pos"] = mean_pos;
}
BENCHMARK(BM_FifoDelivery)->Unit(benchmark::kMillisecond);

void BM_JuggleDelivery(benchmark::State& state) {
  const size_t buffer = static_cast<size_t>(state.range(0));
  const TupleVector stream = MakeStream();
  double mean_pos = 0;
  for (auto _ : state) {
    auto in = std::make_shared<TupleQueue>(PushQueueOptions(1 << 16));
    auto out = std::make_shared<TupleQueue>(PushQueueOptions(1 << 16));
    JuggleModule juggle(
        "juggle", in, out,
        [](const Tuple& t) {
          return static_cast<double>(t.cell(0).int64_value());
        },
        buffer);
    // Producer is "bursty": the consumer sees a dry input between chunks,
    // which is exactly when Juggle releases the current best.
    size_t fed = 0;
    TupleVector delivered;
    delivered.reserve(stream.size());
    while (delivered.size() < stream.size()) {
      if (fed < stream.size()) {
        const size_t chunk = std::min<size_t>(64, stream.size() - fed);
        for (size_t i = 0; i < chunk; ++i) {
          in->Enqueue(stream[fed++]);
        }
        if (fed == stream.size()) in->Close();
      }
      juggle.Step(256);
      while (auto t = out->Dequeue()) delivered.push_back(std::move(*t));
    }
    mean_pos = MeanInterestingPosition(delivered);
  }
  state.counters["mean_interesting_pos"] = mean_pos;
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(kTuples) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JuggleDelivery)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
