// E10 — Shared executor behaviour (§4.2.2): scaling with concurrent
// queries of mixed footprints, and dynamic query fold-in on a live system.
//
// Experiments:
//
//  1. push_throughput — ingest rate of the server as the number of
//     concurrent queries grows, for two populations:
//       filters  — standing CACQ filters (shared eddy; sub-linear cost),
//       windowed — sliding-window aggregates (per-query runners; linear).
//
//  2. submit_latency — time to parse/analyze/fold in a new query while
//     data flows (the paper's dynamic query addition — no stalls).
//
//  3. sharded_push — the filters workload with the CACQ engine sharded
//     across N worker threads behind the Flux exchange
//     (Server::Options::cacq_shards), swept over 1/2/4/8 shards.
//
//  4. sharded_skewed — zipfian partition keys against 4 shards, with the
//     online rebalance controller off (Arg 0) vs on (Arg 1): Flux §2.4's
//     claim that moving hot buckets recovers throughput a static hash
//     mapping loses to skew (DESIGN.md §12).
//
//  5. sharded_failover — the process-pair HA tax and recovery speed
//     (DESIGN.md §13): replication off (Arg 0) vs changelog+checkpoints
//     on (Arg 1) vs on with kill/promote cycles mid-run (Arg 2).

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "cacq/sharded_engine.h"
#include "common/rng.h"
#include "core/server.h"
#include "ingress/sources.h"
#include "telemetry/metrics.h"

namespace tcq {
namespace {

Tuple Stock(int64_t day, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(day), Value::String(sym), Value::Double(price)}, day);
}

/// Snapshots one registry counter so a benchmark can report the delta it
/// caused — routing telemetry rides along in BENCH_<sha>.json baselines.
class CounterDelta {
 public:
  explicit CounterDelta(const char* name)
#ifndef TCQ_METRICS_DISABLED
      : counter_(MetricRegistry::Global().GetCounter(name)),
        start_(counter_->value())
#endif
  {
    (void)name;
  }
  double value() const {
#ifndef TCQ_METRICS_DISABLED
    return static_cast<double>(counter_->value() - start_);
#else
    return 0.0;
#endif
  }

 private:
#ifndef TCQ_METRICS_DISABLED
  Counter* counter_;
  uint64_t start_;
#endif
};

void BM_PushThroughputFilters(benchmark::State& state) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  Server server;
  benchmark::DoNotOptimize(server.DefineStream(
      "ClosingStockPrices", StockTickerSource::MakeSchema(), 0));
  for (size_t i = 0; i < num_queries; ++i) {
    auto q = server.Submit(
        "SELECT closingPrice FROM ClosingStockPrices WHERE stockSymbol = '" +
        StockTickerSource::SymbolName(i % 16) + "' AND closingPrice > " +
        std::to_string(30 + (i % 40)));
    benchmark::DoNotOptimize(q);
    // Drop results as they appear so memory stays flat.
    benchmark::DoNotOptimize(
        server.SetCallback(*q, [](const ResultSet&) {}));
  }
  // Ingest through the batch fast path: one lock acquisition, one shared
  // eddy drain and one windowed advance per kIngestBatch tuples.
  constexpr size_t kIngestBatch = 64;
  int64_t day = 1;
  size_t sym = 0;
  std::vector<Tuple> batch;
  CounterDelta decisions("tcq.eddy.decisions");
  CounterDelta cache_hits("tcq.eddy.cache_hits");
  while (state.KeepRunningBatch(kIngestBatch)) {
    batch.reserve(kIngestBatch);
    for (size_t i = 0; i < kIngestBatch; ++i) {
      batch.push_back(Stock(day, StockTickerSource::SymbolName(sym), 50.0));
      if (++sym == 16) {
        sym = 0;
        ++day;
      }
    }
    benchmark::DoNotOptimize(
        server.PushBatch("ClosingStockPrices", std::move(batch)));
    batch.clear();
  }
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  // Batch-amortized routing: decisions-per-tuple well below 1 is the
  // decision cache working (tcq.* registry deltas over the timed region).
  state.counters["eddy_decisions_per_tuple"] =
      decisions.value() / static_cast<double>(state.iterations());
  state.counters["eddy_cache_hits_per_tuple"] =
      cache_hits.value() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PushThroughputFilters)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_PushThroughputWindowed(benchmark::State& state) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  Server server;
  benchmark::DoNotOptimize(server.DefineStream(
      "ClosingStockPrices", StockTickerSource::MakeSchema(), 0));
  for (size_t i = 0; i < num_queries; ++i) {
    auto q = server.Submit(
        "SELECT AVG(closingPrice) FROM ClosingStockPrices "
        "WHERE stockSymbol = '" +
        StockTickerSource::SymbolName(i % 16) +
        "' for (t = ST; true; t += 10) { "
        "WindowIs(ClosingStockPrices, t - 9, t); }");
    benchmark::DoNotOptimize(q);
    benchmark::DoNotOptimize(
        server.SetCallback(*q, [](const ResultSet&) {}));
  }
  constexpr size_t kIngestBatch = 64;
  int64_t day = 1;
  size_t sym = 0;
  std::vector<Tuple> batch;
  while (state.KeepRunningBatch(kIngestBatch)) {
    batch.reserve(kIngestBatch);
    for (size_t i = 0; i < kIngestBatch; ++i) {
      batch.push_back(Stock(day, StockTickerSource::SymbolName(sym), 50.0));
      if (++sym == 16) {
        sym = 0;
        ++day;
      }
    }
    benchmark::DoNotOptimize(
        server.PushBatch("ClosingStockPrices", std::move(batch)));
    batch.clear();
  }
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PushThroughputWindowed)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Sharded ingest sweep. Arg(1) is the inline single-threaded
// configuration (what cacq_shards=1 runs today: the whole eddy executes
// on the pushing thread); Arg(2..8) hash-partition on stockSymbol into
// per-shard engines on their own threads. tuples_per_sec keeps the repo
// convention (a rate counter: iterations per CPU-second of the pushing
// thread), which prices exactly what sharding offloads — with shards the
// producer pays hash+scatter instead of eddy execution, and blocking on
// exchange backpressure burns no CPU. The real_time column shows the
// end-to-end drain rate and only beats Arg(1) when the host actually has
// spare cores; the bounded exchange keeps the producer from outrunning
// the shards indefinitely either way.
void BM_ShardedPushThroughput(benchmark::State& state) {
  Server::Options opts;
  opts.cacq_shards = static_cast<size_t>(state.range(0));
  Server server(opts);
  // timestamp_field=0, so the partition column defaults to stockSymbol.
  benchmark::DoNotOptimize(server.DefineStream(
      "ClosingStockPrices", StockTickerSource::MakeSchema(), 0));
  constexpr size_t kQueries = 64;
  for (size_t i = 0; i < kQueries; ++i) {
    auto q = server.Submit(
        "SELECT closingPrice FROM ClosingStockPrices WHERE stockSymbol = '" +
        StockTickerSource::SymbolName(i % 16) + "' AND closingPrice > " +
        std::to_string(30 + (i % 40)));
    benchmark::DoNotOptimize(q);
    benchmark::DoNotOptimize(
        server.SetCallback(*q, [](const ResultSet&) {}));
  }
  constexpr size_t kIngestBatch = 64;
  int64_t day = 1;
  size_t sym = 0;
  std::vector<Tuple> batch;
  CounterDelta decisions("tcq.eddy.decisions");
  while (state.KeepRunningBatch(kIngestBatch)) {
    batch.reserve(kIngestBatch);
    for (size_t i = 0; i < kIngestBatch; ++i) {
      batch.push_back(Stock(day, StockTickerSource::SymbolName(sym), 50.0));
      if (++sym == 16) {
        sym = 0;
        ++day;
      }
    }
    benchmark::DoNotOptimize(
        server.PushBatch("ClosingStockPrices", std::move(batch)));
    batch.clear();
  }
  // Outside the timed region: drain in-flight shard work so every pushed
  // tuple was genuinely executed, not parked in an exchange queue.
  server.Quiesce();
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["eddy_decisions_per_tuple"] =
      decisions.value() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ShardedPushThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// Skewed sharded ingest: zipfian partition keys (s=1.2 over 512 keys)
// pile most tuples onto a handful of hash buckets, so a static
// round-robin bucket->shard mapping leaves one shard the bottleneck
// while the others idle. Arg(0) runs that static mapping; Arg(1) turns
// on the RebalanceController, which migrates hot buckets off the loaded
// shard mid-run. tuples_per_sec keeps the repo convention (producer CPU
// rate); the end-to-end effect shows in wall_tuples_per_sec, measured by
// hand around the full run *including* the final drain, so it prices
// every pushed tuple's execution — the number rebalancing improves.
void BM_ShardedSkewedThroughput(benchmark::State& state) {
  Server::Options opts;
  opts.cacq_shards = 4;
  opts.auto_rebalance = state.range(0) == 1;
  opts.rebalance.poll_interval_ms = 1;
  opts.rebalance.imbalance_threshold = 1.5;
  opts.rebalance.min_backlog = 64;
  Server server(opts);
  benchmark::DoNotOptimize(server.DefineStream(
      "S",
      Schema::Make(
          {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}}),
      /*timestamp_field=*/-1, /*partition_field=*/0));
  constexpr size_t kQueries = 48;
  for (size_t i = 0; i < kQueries; ++i) {
    auto q = server.Submit("SELECT k FROM S WHERE v = " + std::to_string(i));
    benchmark::DoNotOptimize(q);
    benchmark::DoNotOptimize(server.SetCallback(*q, [](const ResultSet&) {}));
  }
  constexpr size_t kIngestBatch = 64;
  Rng rng(1234);
  std::vector<Tuple> batch;
  CounterDelta migrations("tcq.rebalance.migrations");
  const auto wall_start = std::chrono::steady_clock::now();
  while (state.KeepRunningBatch(kIngestBatch)) {
    batch.reserve(kIngestBatch);
    for (size_t i = 0; i < kIngestBatch; ++i) {
      batch.push_back(Tuple::Make(
          {Value::Int64(static_cast<int64_t>(rng.NextZipf(512, 1.2))),
           Value::Int64(static_cast<int64_t>(rng.NextBounded(1 << 20)))},
          0));
    }
    benchmark::DoNotOptimize(server.PushBatch("S", std::move(batch)));
    batch.clear();
  }
  server.Quiesce();  // Inside the wall clock: count real execution.
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["wall_tuples_per_sec"] =
      static_cast<double>(state.iterations()) / wall_secs;
  state.counters["migrations"] = migrations.value();
}
BENCHMARK(BM_ShardedSkewedThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// Process-pair HA: what replication costs when nothing fails, and what a
// failure costs when it does. Arg(0) is the bare 4-shard exchange,
// Arg(1) adds the standby path (every batch tees into the changelog;
// cadence checkpoints copy SteM state), Arg(2) additionally kills and
// promotes a rotating shard every 256 batches. Uses the ShardedEngine
// directly — kill/promote is not a Server API. tuples_per_sec keeps the
// producer-rate convention; wall_tuples_per_sec includes the final drain
// and (for Arg 2) every recovery stall; recovery_ms_mean is the
// kill-to-promoted latency of one cycle.
void BM_ShardedFailover(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  ShardedEngine::Options opts;
  opts.num_shards = 4;
  opts.num_replicas = mode == 0 ? 0 : 1;
  ShardedEngine engine(opts);
  benchmark::DoNotOptimize(engine.AddStream(
      "S",
      Schema::Make(
          {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}}),
      /*partition_column=*/0));
  engine.SetSink([](std::vector<ShardedEngine::Emission>&& batch) {
    benchmark::DoNotOptimize(batch.size());
  });
  engine.Start();
  constexpr size_t kQueries = 48;
  for (size_t i = 0; i < kQueries; ++i) {
    CacqQuerySpec spec;
    spec.sources = {"S"};
    spec.where = Expr::Binary(BinaryOp::kEq, Expr::Column("v"),
                              Expr::Literal(Value::Int64(static_cast<int64_t>(i))));
    benchmark::DoNotOptimize(engine.AddQuery(spec));
  }
  constexpr size_t kIngestBatch = 64;
  constexpr size_t kKillEvery = 256;  // Batches between kill/promote cycles.
  Rng rng(1234);
  std::vector<Tuple> batch;
  size_t batches = 0;
  size_t failovers = 0;
  double recovery_secs = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  while (state.KeepRunningBatch(kIngestBatch)) {
    batch.reserve(kIngestBatch);
    for (size_t i = 0; i < kIngestBatch; ++i) {
      batch.push_back(Tuple::Make(
          {Value::Int64(static_cast<int64_t>(rng.NextBounded(512))),
           Value::Int64(static_cast<int64_t>(rng.NextBounded(1 << 20)))},
          0));
    }
    benchmark::DoNotOptimize(engine.PushBatch("S", std::move(batch)));
    batch.clear();
    if (mode == 2 && ++batches % kKillEvery == 0) {
      const size_t victim = failovers % opts.num_shards;
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.KillShard(victim));
      while (engine.shard_alive(victim)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      benchmark::DoNotOptimize(engine.FailoverShard(victim));
      recovery_secs +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      ++failovers;
    }
  }
  benchmark::DoNotOptimize(engine.Quiesce());  // Inside the wall clock.
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  engine.Stop();
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["wall_tuples_per_sec"] =
      static_cast<double>(state.iterations()) / wall_secs;
  state.counters["failovers"] = static_cast<double>(failovers);
  state.counters["recovery_ms_mean"] =
      failovers == 0 ? 0.0
                     : 1e3 * recovery_secs / static_cast<double>(failovers);
}
BENCHMARK(BM_ShardedFailover)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_SubmitAndCancelLatency(benchmark::State& state) {
  Server server;
  benchmark::DoNotOptimize(server.DefineStream(
      "ClosingStockPrices", StockTickerSource::MakeSchema(), 0));
  // A live background population.
  for (int i = 0; i < 64; ++i) {
    auto q = server.Submit(
        "SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > " +
        std::to_string(i));
    benchmark::DoNotOptimize(
        server.SetCallback(*q, [](const ResultSet&) {}));
  }
  int64_t day = 1;
  for (auto _ : state) {
    auto q = server.Submit(
        "SELECT closingPrice, timestamp FROM ClosingStockPrices "
        "WHERE stockSymbol = 'MSFT' AND closingPrice > 42");
    benchmark::DoNotOptimize(
        server.Push("ClosingStockPrices", Stock(day++, "MSFT", 50.0)));
    benchmark::DoNotOptimize(server.Cancel(*q));
  }
  state.counters["submit_push_cancel_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SubmitAndCancelLatency)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tcq
