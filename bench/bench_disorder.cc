// Disorder-tolerant ingress (DESIGN.md §15): what bounded-disorder
// buffering costs on the server ingest path, swept over disorder rate ×
// reorder bound, plus the two expensive relatives — speculative delivery
// that must revise fired windows, and the kIngestLate backfill path for
// beyond-bound stragglers.
//
// Experiments:
//
//  1. delayed_ingest — a disordered feed (jitter_rate% of tuples
//     displaced up to `bound`) through a server with the matching reorder
//     bound, driving one CACQ filter and one sliding-window aggregate in
//     delayed-but-correct mode. {0,0} is the classic in-order ingress the
//     reorder buffer must not tax.
//
//  2. speculative_ingest — the same feed and window, but the aggregate is
//     submitted speculative: windows fire at the raw watermark and every
//     in-bound late arrival re-executes the touched fired windows,
//     emitting retraction-signed diffs. The gap to delayed_ingest at the
//     same {bound, rate} is the price of early answers.
//
//  3. ingest_late_backfill — violation_rate% of the feed arrives beyond
//     the bound; LatePolicy::kIngestLate routes the stragglers through
//     the archive-backfill path instead of rejecting them.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/server.h"
#include "telemetry/metrics.h"
#include "testing/disorder.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

/// Snapshots one registry counter so a benchmark can report the delta it
/// caused — disorder telemetry rides along in BENCH_<sha>.json baselines.
class CounterDelta {
 public:
  explicit CounterDelta(const char* name)
#ifndef TCQ_METRICS_DISABLED
      : counter_(MetricRegistry::Global().GetCounter(name)),
        start_(counter_->value())
#endif
  {
    (void)name;
  }
  double value() const {
#ifndef TCQ_METRICS_DISABLED
    return static_cast<double>(counter_->value() - start_);
#else
    return 0.0;
#endif
  }

 private:
#ifndef TCQ_METRICS_DISABLED
  Counter* counter_;
  uint64_t start_;
#endif
};

/// Rolling disordered feed: regenerates a pre-disordered chunk whenever
/// the replay cursor drains, with timestamps continuing monotonically so
/// disorder crosses PushBatch boundaries the way a real feed's does (the
/// interesting path — batch-local reordering alone never exercises the
/// buffer across the batch frontier).
class DisorderedFeed {
 public:
  explicit DisorderedFeed(const DisorderOptions& options)
      : options_(options) {}

  void Refill() {
    constexpr size_t kChunk = 4096;
    std::vector<Tuple> in_order;
    in_order.reserve(kChunk);
    for (size_t i = 0; i < kChunk; ++i) {
      ++ts_;
      in_order.push_back(
          Tuple::Make({Value::Int64(ts_), Value::Int64(ts_ % 97)}, ts_));
    }
    DisorderOptions o = options_;
    o.seed = options_.seed + static_cast<uint64_t>(ts_);
    chunk_ = InjectDisorder(std::move(in_order), o);
    at_ = 0;
  }

  void Fill(std::vector<Tuple>* batch, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (at_ == chunk_.size()) Refill();
      batch->push_back(chunk_[at_++]);
    }
  }

  Timestamp max_ts() const { return ts_; }

 private:
  DisorderOptions options_;
  Timestamp ts_ = 0;
  std::vector<Tuple> chunk_;
  size_t at_ = 0;
};

void RunIngest(benchmark::State& state, const DisorderOptions& dopts,
               LatePolicy policy, Consistency consistency) {
  Server::Options o;
  o.max_disorder = dopts.max_disorder;
  o.late_policy = policy;
  Server server(o);
  benchmark::DoNotOptimize(
      server.DefineStream("S", KV(), /*timestamp_field=*/0));
  Server::SubmitOptions sopts;
  sopts.consistency = consistency;
  auto filter = server.Submit("SELECT v FROM S WHERE v > 48", sopts);
  benchmark::DoNotOptimize(
      server.SetCallback(*filter, [](const ResultSet&) {}));
  auto window = server.Submit(
      "SELECT SUM(v) FROM S for (t = ST; true; t += 16) { "
      "WindowIs(S, t - 15, t); }",
      sopts);
  benchmark::DoNotOptimize(
      server.SetCallback(*window, [](const ResultSet&) {}));

  constexpr size_t kIngestBatch = 64;
  DisorderedFeed feed(dopts);
  std::vector<Tuple> batch;
  CounterDelta late("tcq.disorder.late_within_bound");
  CounterDelta beyond("tcq.disorder.beyond_bound");
  CounterDelta delivered("tcq.server.delivered_rows");
  while (state.KeepRunningBatch(kIngestBatch)) {
    batch.reserve(kIngestBatch);
    feed.Fill(&batch, kIngestBatch);
    benchmark::DoNotOptimize(server.PushBatch("S", std::move(batch)));
    batch.clear();
  }
  // Outside the timed region: closing punctuation flushes the reorder
  // buffer so every pushed tuple was genuinely released and executed.
  benchmark::DoNotOptimize(
      server.Heartbeat("S", feed.max_ts() + dopts.max_disorder + 1));
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  const double per_tuple = 1.0 / static_cast<double>(state.iterations());
  state.counters["late_within_bound_per_tuple"] = late.value() * per_tuple;
  state.counters["beyond_bound_per_tuple"] = beyond.value() * per_tuple;
  // Delivered rows per tuple: for speculative runs the excess over the
  // delayed run at the same args is the retraction/revision traffic.
  state.counters["delivered_rows_per_tuple"] = delivered.value() * per_tuple;
}

void BM_DelayedIngest(benchmark::State& state) {
  DisorderOptions dopts;
  dopts.max_disorder = state.range(0);
  dopts.jitter_rate = static_cast<double>(state.range(1)) / 100.0;
  RunIngest(state, dopts, LatePolicy::kReject, Consistency::kDelayed);
}
BENCHMARK(BM_DelayedIngest)
    ->Args({0, 0})     // Classic in-order ingress: the no-tax baseline.
    ->Args({4, 25})
    ->Args({4, 100})
    ->Args({16, 100})
    ->Args({64, 100})
    ->Unit(benchmark::kMicrosecond);

void BM_SpeculativeIngest(benchmark::State& state) {
  DisorderOptions dopts;
  dopts.max_disorder = state.range(0);
  dopts.jitter_rate = static_cast<double>(state.range(1)) / 100.0;
  RunIngest(state, dopts, LatePolicy::kReject, Consistency::kSpeculative);
}
BENCHMARK(BM_SpeculativeIngest)
    ->Args({4, 25})
    ->Args({4, 100})
    ->Args({16, 100})
    ->Args({64, 100})
    ->Unit(benchmark::kMicrosecond);

void BM_IngestLateBackfill(benchmark::State& state) {
  DisorderOptions dopts;
  dopts.max_disorder = 8;
  dopts.jitter_rate = 1.0;
  dopts.violation_rate = static_cast<double>(state.range(0)) / 100.0;
  dopts.violation_extra = 8;
  RunIngest(state, dopts, LatePolicy::kIngestLate, Consistency::kDelayed);
}
BENCHMARK(BM_IngestLateBackfill)
    ->Arg(1)
    ->Arg(5)
    ->Arg(20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tcq
