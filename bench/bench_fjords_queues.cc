// E4 — Fjords queue semantics (§2.3, [MF02]).
//
// Workload: a union over two sources, one of which stalls periodically
// (a disconnected sensor / slow web page). The consumer wants the live
// source's tuples promptly.
//
//   blocking_pull — the consumer does a blocking Dequeue per input in
//                   turn (iterator/Exchange style): a stalled input
//                   blocks it even though the other input has data;
//   fjords_push   — non-blocking push queues under the non-preemptive
//                   scheduler: the stalled source yields, the live
//                   source's tuples flow.
//
// Reported: wall time to deliver the live source's kLiveTuples tuples
// while the slow source stalls kStallMicros at a time. Expected shape:
// blocking pays ~(#stalls × stall), Fjords stays near flat.
//
// A second pair measures raw queue throughput for the three queue
// flavors (pull / push / Exchange) under one producer + one consumer.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "fjords/queue.h"
#include "fjords/scheduler.h"
#include "modules/relational.h"

namespace tcq {
namespace {

constexpr int kLiveTuples = 1000;
constexpr int kSlowPrefix = 10;     // Slow source emits these, then stalls.
constexpr int kStallMillis = 30;    // One long stall (a hung web fetch).

Tuple Row(int64_t v) { return Tuple::Make({Value::Int64(v)}, v); }

/// Slow source: a brief prefix, then one long stall, then close. Models a
/// remote page / sensor that goes quiet mid-query.
void SlowProducer(TupleQueue* q) {
  for (int64_t i = 0; i < kSlowPrefix; ++i) {
    if (!q->Enqueue(Row(i))) break;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(kStallMillis));
  q->Close();
}

/// Live tuples carry values offset by kLiveTag so consumers can count
/// them apart from the slow source's output.
constexpr int64_t kLiveTag = 1000000000;

/// Live source: emits its tuples immediately.
void LiveProducer(TupleQueue* q) {
  for (int64_t i = 0; i < kLiveTuples; ++i) {
    while (!q->Enqueue(Row(kLiveTag + i))) {
      if (q->closed()) return;
      std::this_thread::yield();
    }
  }
  q->Close();
}

// Blocking-iterator union: strict alternation of blocking Dequeues. The
// slow source's stall blocks delivery of the live source's data — the
// failure mode Fjords exists to avoid (§2.3).
void BM_BlockingPullUnion(benchmark::State& state) {
  for (auto _ : state) {
    FjordQueue<Tuple> slow(PullQueueOptions(1024));
    FjordQueue<Tuple> live(PullQueueOptions(1024));
    std::thread t_slow(SlowProducer, &slow);
    std::thread t_live(LiveProducer, &live);

    int live_seen = 0;
    bool slow_done = false, live_done = false;
    while (live_seen < kLiveTuples && !live_done) {
      if (!slow_done) {
        auto a = slow.Dequeue();  // Blocks through the stall.
        if (!a.has_value()) slow_done = true;
        benchmark::DoNotOptimize(a);
      }
      auto b = live.Dequeue();
      if (b.has_value()) {
        ++live_seen;
      } else if (live.Exhausted()) {
        live_done = true;
      }
    }
    t_slow.join();
    t_live.join();
  }
  state.counters["live_latency_ms_floor"] = kStallMillis;
}
BENCHMARK(BM_BlockingPullUnion)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// Fjords union: non-blocking push queues — dry inputs yield control, the
// live source's tuples flow during the stall.
void BM_FjordsPushUnion(benchmark::State& state) {
  for (auto _ : state) {
    auto slow = std::make_shared<TupleQueue>(PushQueueOptions(1024));
    auto live = std::make_shared<TupleQueue>(PushQueueOptions(1024));
    auto out = std::make_shared<TupleQueue>(PushQueueOptions(1 << 16));
    std::thread t_slow(SlowProducer, slow.get());
    std::thread t_live(LiveProducer, live.get());

    UnionModule u("union", {slow, live}, out);
    int live_seen = 0;
    while (live_seen < kLiveTuples) {
      const auto r = u.Step(256);
      while (auto t = out->Dequeue()) {
        if (t->cell(0).int64_value() >= kLiveTag) ++live_seen;
        benchmark::DoNotOptimize(*t);
      }
      if (r == FjordModule::StepResult::kIdle) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
    // All live tuples delivered; the slow source is still mid-stall.
    // Joining means waiting out the stall — exclude it from the timing.
    state.PauseTiming();
    t_slow.join();
    t_live.join();
    state.ResumeTiming();
  }
  state.counters["live_latency_ms_floor"] = 0;
}
BENCHMARK(BM_FjordsPushUnion)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// --- Raw queue flavor throughput -------------------------------------------

void RunQueueThroughput(benchmark::State& state, QueueOptions opts) {
  constexpr int kN = 100000;
  for (auto _ : state) {
    FjordQueue<Tuple> q(opts);
    std::thread producer([&] {
      for (int64_t i = 0; i < kN; ++i) {
        while (!q.Enqueue(Row(i))) {
          std::this_thread::yield();
        }
      }
      q.Close();
    });
    int64_t n = 0;
    while (n < kN) {
      auto t = q.Dequeue();
      if (t.has_value()) {
        ++n;
      } else if (q.Exhausted()) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
    producer.join();
  }
  state.counters["tuples_per_sec"] = benchmark::Counter(
      100000.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_PullQueueThroughput(benchmark::State& state) {
  RunQueueThroughput(state, PullQueueOptions(1024));
}
void BM_PushQueueThroughput(benchmark::State& state) {
  RunQueueThroughput(state, PushQueueOptions(1024));
}
void BM_ExchangeQueueThroughput(benchmark::State& state) {
  RunQueueThroughput(state, ExchangeQueueOptions(1024));
}
BENCHMARK(BM_PullQueueThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PushQueueThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExchangeQueueThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
