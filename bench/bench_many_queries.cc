// E12 — the many-query fast path (§3.1, [MSHR02]; ROADMAP "10k-CQ
// CACQ scale-up").
//
// CACQ's headline claim is marginal cost per *added* query, but E5
// (bench_cacq_sharing) stops at 256 queries. This benchmark pushes the
// query-count axis to 10 000 live CQs and measures what production
// actually pays per extra standing query, in the measurement discipline
// of the C-SPARQL/CQELS comparison papers: sweep query count over a
// fixed stream, report absolute throughput per configuration, and read
// the *marginal* cost per query off consecutive sweep points
// ((T_hi - T_lo) / (N_hi - N_lo), tracked in EXPERIMENTS.md E12).
//
// Workloads (all over one stock stream, overlapping predicate pools so
// the grouped filter actually shares work):
//   BM_ManyQueries        — the E5 selection mix (symbol equality +
//                           one-sided price bound), inline engine;
//   BM_ManyQueriesRange   — two-sided price windows (10 < x AND x < 20
//                           shapes): the interval-stabbing stress case;
//   BM_ManyQueriesEq      — pure equality predicates: the hash-bucket
//                           fast path, no range work at all;
//   BM_ManyQueriesSharded — the selection mix behind the 4-shard
//                           exchange (PushBatch ingest), since
//                           "thousands of CQs per shard" is the
//                           production shape.
//
// Expected shape after the interval-bitmap index: per-tuple cost is
// O(log #bounds + #queries/64) words of bitset work, so throughput at
// 10k CQs stays within a small factor of the 1k point instead of
// collapsing linearly, and registration is O(1) amortized per
// predicate (no sorted-array insert).

#include <benchmark/benchmark.h>

#include <vector>

#include "cacq/engine.h"
#include "cacq/sharded_engine.h"
#include "common/rng.h"
#include "ingress/sources.h"

namespace tcq {
namespace {

constexpr int64_t kDays = 400;
constexpr size_t kSymbols = 16;
constexpr size_t kShards = 4;
constexpr size_t kPushBatch = 256;

TupleVector MakeStream() {
  StockTickerSource::Options opts;
  opts.num_symbols = kSymbols;
  opts.num_days = kDays;
  opts.seed = 2003;
  StockTickerSource src(opts);
  TupleVector out;
  while (auto t = src.Next()) out.push_back(std::move(*t));
  return out;
}

/// The E5 selection mix — query i: stockSymbol = S_i AND closingPrice >
/// c_i, constants drawn from an overlapping pool.
ExprPtr SelectionPredicate(size_t i, Rng* rng) {
  ExprPtr sym = Expr::Binary(
      BinaryOp::kEq, Expr::Column("stockSymbol"),
      Expr::Literal(
          Value::String(StockTickerSource::SymbolName(i % kSymbols))));
  ExprPtr price = Expr::Binary(
      BinaryOp::kGt, Expr::Column("closingPrice"),
      Expr::Literal(Value::Double(30.0 + static_cast<double>(
                                             rng->NextBounded(40)))));
  return Expr::Binary(BinaryOp::kAnd, sym, price);
}

/// Range mix — query i: lo_i < closingPrice AND closingPrice < lo_i + 4,
/// a sliding window over the price domain (~5% selective). Every range
/// CQ overlaps ~its neighbors, the worst case for the old sorted-array
/// prefix walk (half the bounds "pass" for a mid-domain price).
ExprPtr RangePredicate(size_t i, Rng* rng) {
  const double lo = 20.0 + static_cast<double>((i * 7 + rng->NextBounded(5)) %
                                               76);
  ExprPtr above = Expr::Binary(BinaryOp::kGt, Expr::Column("closingPrice"),
                               Expr::Literal(Value::Double(lo)));
  ExprPtr below = Expr::Binary(BinaryOp::kLt, Expr::Column("closingPrice"),
                               Expr::Literal(Value::Double(lo + 4.0)));
  return Expr::Binary(BinaryOp::kAnd, above, below);
}

/// Equality-only mix — query i: stockSymbol = S_i.
ExprPtr EqPredicate(size_t i, Rng* rng) {
  (void)rng;
  return Expr::Binary(
      BinaryOp::kEq, Expr::Column("stockSymbol"),
      Expr::Literal(
          Value::String(StockTickerSource::SymbolName(i % kSymbols))));
}

using PredicateFn = ExprPtr (*)(size_t, Rng*);

void RunInline(benchmark::State& state, PredicateFn make_pred) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  const TupleVector stream = MakeStream();
  uint64_t deliveries = 0;
  for (auto _ : state) {
    Rng rng(7);
    CacqEngine engine;
    benchmark::DoNotOptimize(
        engine.AddStream("Stocks", StockTickerSource::MakeSchema()));
    engine.SetSink([&](QueryId, const Tuple&) { ++deliveries; });
    for (size_t i = 0; i < num_queries; ++i) {
      CacqQuerySpec spec;
      spec.sources = {"Stocks"};
      spec.where = make_pred(i, &rng);
      benchmark::DoNotOptimize(engine.AddQuery(spec));
    }
    for (const Tuple& t : stream) {
      benchmark::DoNotOptimize(engine.Inject("Stocks", t));
    }
  }
  state.counters["deliveries"] = static_cast<double>(deliveries) /
                                 static_cast<double>(state.iterations());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(stream.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_ManyQueries(benchmark::State& state) {
  RunInline(state, SelectionPredicate);
}
BENCHMARK(BM_ManyQueries)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_ManyQueriesRange(benchmark::State& state) {
  RunInline(state, RangePredicate);
}
BENCHMARK(BM_ManyQueriesRange)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_ManyQueriesEq(benchmark::State& state) {
  RunInline(state, EqPredicate);
}
BENCHMARK(BM_ManyQueriesEq)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// Registration cost alone: AddQuery for N CQs on a fresh engine. The old
/// grouped filter paid an O(n) sorted insert per range factor (O(n^2) to
/// register the lot); the rebuild-on-demand index makes this O(1)
/// amortized per predicate.
void BM_ManyQueriesRegistration(benchmark::State& state) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    CacqEngine engine;
    benchmark::DoNotOptimize(
        engine.AddStream("Stocks", StockTickerSource::MakeSchema()));
    engine.SetSink([](QueryId, const Tuple&) {});
    for (size_t i = 0; i < num_queries; ++i) {
      CacqQuerySpec spec;
      spec.sources = {"Stocks"};
      spec.where = SelectionPredicate(i, &rng);
      benchmark::DoNotOptimize(engine.AddQuery(spec));
    }
    // One inject pays any deferred index build, so the measured cost is
    // registration + first-tuple readiness, not just list appends.
    benchmark::DoNotOptimize(engine.Inject("Stocks", Tuple::Make({
        Value::String("SYM0"), Value::Double(50.0), Value::Int64(0)}, 0)));
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(num_queries) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ManyQueriesRegistration)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_ManyQueriesSharded(benchmark::State& state) {
  const size_t num_queries = static_cast<size_t>(state.range(0));
  const TupleVector stream = MakeStream();
  uint64_t deliveries = 0;
  for (auto _ : state) {
    Rng rng(7);
    ShardedEngine::Options opts;
    opts.num_shards = kShards;
    ShardedEngine engine(opts);
    benchmark::DoNotOptimize(
        engine.AddStream("Stocks", StockTickerSource::MakeSchema()));
    std::atomic<uint64_t> delivered{0};
    engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
      delivered.fetch_add(batch.size(), std::memory_order_relaxed);
    });
    for (size_t i = 0; i < num_queries; ++i) {
      CacqQuerySpec spec;
      spec.sources = {"Stocks"};
      spec.where = SelectionPredicate(i, &rng);
      benchmark::DoNotOptimize(engine.AddQuery(spec));
    }
    engine.Start();
    for (size_t off = 0; off < stream.size(); off += kPushBatch) {
      const size_t end = std::min(stream.size(), off + kPushBatch);
      std::vector<Tuple> batch(stream.begin() + off, stream.begin() + end);
      benchmark::DoNotOptimize(engine.PushBatch("Stocks", std::move(batch)));
    }
    engine.Stop();
    deliveries += delivered.load();
  }
  state.counters["deliveries"] = static_cast<double>(deliveries) /
                                 static_cast<double>(state.iterations());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(stream.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ManyQueriesSharded)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
