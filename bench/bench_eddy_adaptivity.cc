// E1 — Eddy adaptivity under selectivity drift (§2.2, [AH00]).
//
// Workload: one stream routed through two commutative filters whose
// selectivities SWAP at the stream midpoint:
//   phase 1: f_a passes 10%, f_b passes 90%   (a-first is optimal)
//   phase 2: f_a passes 90%, f_b passes 10%   (b-first is optimal)
//
// Plans compared (identical output in all cases):
//   static_a_first — classic fixed plan, optimal for phase 1 only;
//   static_b_first — fixed plan, optimal for phase 2 only;
//   eddy_lottery   — per-tuple adaptive routing with ticket decay;
//   eddy_random    — adaptivity floor (no learning).
//
// Reported: visits_per_tuple (operator evaluations per input tuple — the
// work metric; the oracle is 1.1, the pessimum 1.9) and wall time.
// Expected shape: lottery tracks near-oracle through BOTH phases; each
// static plan wins one phase and loses the other; random sits at ~1.5.

#include <benchmark/benchmark.h>

#include "eddy/eddy.h"
#include "eddy/operators.h"

namespace tcq {
namespace {

constexpr int64_t kTuples = 40000;

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

std::unique_ptr<RoutingPolicy> PolicyByName(const std::string& name) {
  if (name == "static_a_first") {
    return std::make_unique<FixedPolicy>(std::vector<size_t>{0, 1});
  }
  if (name == "static_b_first") {
    return std::make_unique<FixedPolicy>(std::vector<size_t>{1, 0});
  }
  return MakePolicy(name, 42);
}

void RunDriftWorkload(benchmark::State& state, const std::string& policy) {
  uint64_t visits = 0;
  uint64_t tuples = 0;
  uint64_t emitted = 0;
  for (auto _ : state) {
    SourceLayout layout;
    const size_t s = layout.AddSource("s", KV());
    SmallBitset req(1);
    req.Set(s);

    // Selectivities swap at the stream midpoint. Drift is keyed to the
    // GLOBAL stream position (shared by both filters), so the optimal
    // order genuinely flips at the midpoint for every plan.
    auto pos = std::make_shared<uint64_t>(0);
    auto sel_a = [pos](uint64_t) {
      return *pos < static_cast<uint64_t>(kTuples) / 2 ? 0.1 : 0.9;
    };
    auto sel_b = [pos](uint64_t) {
      return *pos < static_cast<uint64_t>(kTuples) / 2 ? 0.9 : 0.1;
    };
    Eddy eddy(&layout, PolicyByName(policy));
    eddy.AddOperator(std::make_shared<SyntheticFilterOp>("f_a", req, sel_a,
                                                         1.0, 7));
    eddy.AddOperator(std::make_shared<SyntheticFilterOp>("f_b", req, sel_b,
                                                         1.0, 8));
    eddy.SetSink([&](RoutedTuple&&) { ++emitted; });

    for (int64_t i = 0; i < kTuples; ++i) {
      *pos = static_cast<uint64_t>(i);
      eddy.Inject(s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
      eddy.Drain();  // Route immediately so drift applies at arrival time.
    }
    visits += eddy.visits();
    tuples += kTuples;
  }
  state.counters["visits_per_tuple"] =
      static_cast<double>(visits) / static_cast<double>(tuples);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_Drift_StaticAFirst(benchmark::State& state) {
  RunDriftWorkload(state, "static_a_first");
}
void BM_Drift_StaticBFirst(benchmark::State& state) {
  RunDriftWorkload(state, "static_b_first");
}
void BM_Drift_EddyLottery(benchmark::State& state) {
  RunDriftWorkload(state, "lottery");
}
void BM_Drift_EddyRandom(benchmark::State& state) {
  RunDriftWorkload(state, "random");
}

BENCHMARK(BM_Drift_StaticAFirst)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Drift_StaticBFirst)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Drift_EddyLottery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Drift_EddyRandom)->Unit(benchmark::kMillisecond);

// Steady-state control: no drift. Static-optimal is the oracle; the
// lottery's remaining gap is the price of adaptivity (exploration).
void RunSteadyWorkload(benchmark::State& state, const std::string& policy) {
  uint64_t visits = 0;
  uint64_t tuples = 0;
  for (auto _ : state) {
    SourceLayout layout;
    const size_t s = layout.AddSource("s", KV());
    SmallBitset req(1);
    req.Set(s);
    Eddy eddy(&layout, PolicyByName(policy));
    eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
        "f_a", req, [](uint64_t) { return 0.1; }, 1.0, 7));
    eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
        "f_b", req, [](uint64_t) { return 0.9; }, 1.0, 8));
    for (int64_t i = 0; i < kTuples; ++i) {
      eddy.Inject(s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
      if (i % 64 == 0) eddy.Drain();
    }
    eddy.Drain();
    visits += eddy.visits();
    tuples += kTuples;
  }
  state.counters["visits_per_tuple"] =
      static_cast<double>(visits) / static_cast<double>(tuples);
}

void BM_Steady_StaticOracle(benchmark::State& state) {
  RunSteadyWorkload(state, "static_a_first");
}
void BM_Steady_EddyLottery(benchmark::State& state) {
  RunSteadyWorkload(state, "lottery");
}

BENCHMARK(BM_Steady_StaticOracle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Steady_EddyLottery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq
