// Flux on the simulated shared-nothing cluster (§2.4): a partitioned
// streaming aggregate suffers (a) a badly balanced initial partitioning
// and (b) a machine failure. Online repartitioning rebalances the load;
// process-pair replication makes the failure lossless.
//
//   $ ./build/examples/cluster_flux

#include <cstdio>

#include "common/rng.h"
#include "flux/flux.h"

namespace {

tcq::TupleVector MakeBatch(size_t n, tcq::Rng* rng) {
  tcq::TupleVector batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(tcq::Tuple::Make(
        {tcq::Value::Int64(static_cast<int64_t>(rng->NextBounded(64))),
         tcq::Value::Double(1.0)},
        0));
  }
  return batch;
}

void PrintNodes(const tcq::FluxCluster& cluster, const char* when) {
  std::printf("%s\n", when);
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    const auto s = cluster.node_stats(n);
    std::printf("  node %zu: %s, %zu partitions, backlog %zu, "
                "processed %llu\n",
                n, s.alive ? "alive" : "DEAD", s.partitions_owned, s.backlog,
                static_cast<unsigned long long>(s.processed));
  }
}

}  // namespace

int main() {
  tcq::FluxCluster::Options opts;
  opts.num_nodes = 4;
  opts.capacity_per_tick = 64;
  opts.enable_repartitioning = true;
  opts.enable_replication = true;
  opts.min_backlog_for_move = 32;
  opts.move_cooldown_ticks = 2;
  // Deliberately terrible initial partitioning: everything on node 0.
  opts.initial_owner.assign(opts.num_partitions, 0);

  tcq::FluxCluster cluster(opts);
  tcq::Rng rng(42);

  PrintNodes(cluster, "initial state (all partitions on node 0):");

  // Phase 1: stream load; the controller repartitions online.
  for (int step = 0; step < 60; ++step) {
    cluster.Feed(MakeBatch(200, &rng));
    cluster.Tick();
  }
  cluster.Run();
  PrintNodes(cluster, "\nafter 12000 tuples with online repartitioning:");
  std::printf("  moves=%llu moved_entries=%llu\n",
              static_cast<unsigned long long>(cluster.moves()),
              static_cast<unsigned long long>(cluster.moved_entries()));

  // Phase 2: kill a node mid-stream.
  cluster.Feed(MakeBatch(4000, &rng));
  cluster.Tick();
  std::printf("\n*** node 1 fails ***\n");
  tcq::Status st = cluster.KillNode(1);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  cluster.Feed(MakeBatch(4000, &rng));
  cluster.Run();
  PrintNodes(cluster, "\nafter failover and drain:");
  std::printf("  replayed in-flight tuples: %llu\n",
              static_cast<unsigned long long>(cluster.replayed()));
  std::printf("  lost updates: %llu (process pairs: should be 0)\n",
              static_cast<unsigned long long>(cluster.lost_updates()));

  // Verify the aggregate survived intact.
  int64_t total = 0;
  for (const auto& [key, ks] : cluster.Snapshot()) total += ks.count;
  std::printf("  aggregate total count: %lld (fed: %d)\n",
              static_cast<long long>(total), 12000 + 4000 + 4000);
  return 0;
}
