// Quickstart: declare a stream, submit one continuous query, feed data,
// and consume the result sets.
//
//   $ ./build/examples/quickstart
//
// The query is the paper's sliding-average example (§4.1.1, example 3):
// every 5th trading day, the average MSFT closing price over the five
// most recent days.

#include <cstdio>

#include "core/server.h"
#include "ingress/sources.h"

int main() {
  tcq::Server server;

  // 1. Declare the stream: schema + which column carries the timestamp.
  tcq::Status st = server.DefineStream(
      "ClosingStockPrices", tcq::StockTickerSource::MakeSchema(),
      /*timestamp_field=*/0);
  if (!st.ok()) {
    std::fprintf(stderr, "DefineStream: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Submit a continuous query — SQL plus the for-loop window clause.
  auto query = server.Submit(
      "SELECT AVG(closingPrice) "
      "FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (t = ST; t < ST + 50; t += 5) { "
      "  WindowIs(ClosingStockPrices, t - 4, t); "
      "}");
  if (!query.ok()) {
    std::fprintf(stderr, "Submit: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // 3. Feed the stream (here: a synthetic ticker; any Push() works).
  tcq::StockTickerSource::Options opts;
  opts.num_symbols = 4;
  opts.num_days = 60;
  tcq::StockTickerSource source(opts);
  st = server.PushAll("ClosingStockPrices", &source);
  if (!st.ok()) {
    std::fprintf(stderr, "Push: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Pull the result sets — one per window, as windows complete.
  std::printf("window_t  avg_closing_price\n");
  for (const tcq::ResultSet& rs : server.PollAll(*query)) {
    for (const tcq::Tuple& row : rs.rows) {
      std::printf("%8lld  %.4f\n", static_cast<long long>(rs.t),
                  row.cell(0).double_value());
    }
  }

  // 5. The engine observes itself: one JSON document covering the metric
  // registry plus per-stream, per-query and per-eddy state (DESIGN.md
  // §10). Continuous queries can also be run over the `tcq.metrics`
  // stream — see the README's telemetry section.
  std::printf("\ntelemetry snapshot:\n%s\n",
              server.SnapshotMetrics().c_str());
  return 0;
}
