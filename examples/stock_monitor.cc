// The paper's four worked example queries (§4.1.1), run end to end over
// one synthetic ClosingStockPrices stream:
//
//   1. snapshot  — MSFT's closing prices on the first five trading days;
//   2. landmark  — days after day 10 where MSFT closed above $50
//                  (scaled down from the paper's day 100 / $50 / 1000);
//   3. sliding   — every 5th day, MSFT's 5-day average closing price;
//   4. band join — stocks that closed higher than MSFT the same day.
//
//   $ ./build/examples/stock_monitor

#include <cstdio>

#include "core/server.h"
#include "ingress/sources.h"

namespace {

void PrintResults(tcq::Server* server, tcq::QueryId q, const char* title,
                  size_t max_sets = 4) {
  std::printf("\n== %s ==\n", title);
  auto sets = server->PollAll(q);
  std::printf("   %zu result set(s)\n", sets.size());
  size_t shown = 0;
  for (const tcq::ResultSet& rs : sets) {
    if (shown++ >= max_sets) {
      std::printf("   ... (%zu more sets)\n", sets.size() - max_sets);
      break;
    }
    std::printf("   t=%lld:", static_cast<long long>(rs.t));
    size_t cells_shown = 0;
    for (const tcq::Tuple& row : rs.rows) {
      if (cells_shown++ >= 4) {
        std::printf("  ...(%zu rows)", rs.rows.size());
        break;
      }
      std::printf("  [");
      for (size_t c = 0; c < row.arity(); ++c) {
        std::printf("%s%s", c ? ", " : "", row.cell(c).ToString().c_str());
      }
      std::printf("]");
    }
    if (rs.rows.empty()) std::printf("  (empty)");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  tcq::Server server;
  auto check = [](const tcq::Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };
  check(server.DefineStream("ClosingStockPrices",
                            tcq::StockTickerSource::MakeSchema(), 0));

  // --- The four paper queries -------------------------------------------
  auto q_snapshot = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  check(q_snapshot.status());

  auto q_landmark = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 "
      "for (t = 10; t <= 40; t++) { "
      "  WindowIs(ClosingStockPrices, 10, t); }");
  check(q_landmark.status());

  auto q_sliding = server.Submit(
      "Select AVG(closingPrice) From ClosingStockPrices "
      "Where stockSymbol = 'MSFT' "
      "for (t = ST; t < ST + 50; t += 5) { "
      "  WindowIs(ClosingStockPrices, t - 4, t); }");
  check(q_sliding.status());

  auto q_band = server.Submit(
      "Select c2.* "
      "FROM ClosingStockPrices as c1, ClosingStockPrices as c2 "
      "WHERE c1.stockSymbol = 'MSFT' and c2.stockSymbol != 'MSFT' and "
      "      c2.closingPrice > c1.closingPrice and "
      "      c2.timestamp = c1.timestamp "
      "for (t = ST; t < ST + 20; t++) { "
      "  WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }");
  check(q_band.status());

  // --- Feed 60 trading days of 8 symbols ---------------------------------
  tcq::StockTickerSource::Options opts;
  opts.num_symbols = 8;
  opts.num_days = 60;
  opts.seed = 2003;
  tcq::StockTickerSource source(opts);
  check(server.PushAll("ClosingStockPrices", &source));

  PrintResults(&server, *q_snapshot,
               "1. Snapshot: MSFT, first five trading days");
  PrintResults(&server, *q_landmark,
               "2. Landmark: MSFT above $50 after day 10");
  PrintResults(&server, *q_sliding,
               "3. Sliding: 5-day average MSFT price, every 5 days");
  PrintResults(&server, *q_band,
               "4. Band join: stocks closing above MSFT, same day");
  return 0;
}
