// Shared continuous-query processing (CACQ, §3.1): many standing filter
// queries over one packet stream share a single adaptive eddy, with
// grouped filters indexing all their predicates. Queries are added AND
// removed while data flows — the dynamic fold-in of §4.2.2.
//
//   $ ./build/examples/network_monitor

#include <cstdio>
#include <map>

#include "core/server.h"
#include "ingress/sources.h"

int main() {
  tcq::Server server;
  auto check = [](const tcq::Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };
  check(server.DefineStream("Packets", tcq::PacketSource::MakeSchema(),
                            /*timestamp_field=*/0));

  // A fleet of standing monitor queries. All share one eddy: each packet
  // is routed once, its query lineage narrowed by grouped filters.
  std::map<tcq::QueryId, std::string> monitors;
  auto submit = [&](const std::string& label, const std::string& sql) {
    auto q = server.Submit(sql);
    check(q.status());
    monitors[*q] = label;
    return *q;
  };

  submit("talker_0      ", "SELECT bytes FROM Packets WHERE srcAddr = 0");
  submit("talker_1      ", "SELECT bytes FROM Packets WHERE srcAddr = 1");
  submit("big_packets   ", "SELECT srcAddr FROM Packets WHERE bytes > 1200");
  submit("ssh_to_host_3 ",
         "SELECT srcAddr FROM Packets WHERE dstPort = 22 AND dstAddr = 3");
  submit("small_or_port0",
         "SELECT srcAddr FROM Packets WHERE bytes < 64 OR dstPort = 0");
  const tcq::QueryId victim =
      submit("short_lived   ", "SELECT bytes FROM Packets WHERE bytes > 0");

  std::map<tcq::QueryId, uint64_t> hits;
  for (auto& [q, label] : monitors) {
    check(server.SetCallback(
        q, [&hits, q = q](const tcq::ResultSet& rs) {
          hits[q] += rs.rows.size();
        }));
  }

  // Stream packets; cancel one query mid-flight.
  tcq::PacketSource::Options opts;
  opts.num_packets = 20000;
  opts.host_skew = 1.1;
  tcq::PacketSource source(opts);
  int64_t n = 0;
  while (auto packet = source.Next()) {
    check(server.Push("Packets", *packet));
    if (++n == 10000) {
      std::printf("-- cancelling '%s' after %lld packets --\n",
                  monitors[victim].c_str(), static_cast<long long>(n));
      check(server.Cancel(victim));
    }
  }

  std::printf("%lld packets through %zu shared standing queries\n\n",
              static_cast<long long>(n), monitors.size());
  std::printf("monitor           matches\n");
  for (auto& [q, label] : monitors) {
    std::printf("%s  %8llu%s\n", label.c_str(),
                static_cast<unsigned long long>(hits[q]),
                q == victim ? "  (cancelled at 10000)" : "");
  }
  return 0;
}
