// PSoup-style disconnected operation (§3.2): clients register standing
// queries over a sensor stream, disconnect, and later reconnect to pull
// the materialized answers — including a query registered *after* the
// data it asks about arrived (new query over old data).
//
//   $ ./build/examples/sensor_psoup

#include <cstdio>

#include "ingress/sources.h"
#include "psoup/psoup.h"

using tcq::AggKind;
using tcq::BinaryOp;
using tcq::Expr;
using tcq::Value;

int main() {
  tcq::PSoup psoup(tcq::SensorSource::MakeSchema());

  // Client A registers before any data: hot readings from sensor 2.
  auto hot = psoup.Register(
      Expr::Binary(
          BinaryOp::kAnd,
          Expr::Binary(BinaryOp::kEq, Expr::Column("sensorId"),
                       Expr::Literal(Value::Int64(2))),
          Expr::Binary(BinaryOp::kGt, Expr::Column("temperature"),
                       Expr::Literal(Value::Double(5.0)))),
      /*window_width=*/500);
  if (!hot.ok()) {
    std::fprintf(stderr, "%s\n", hot.status().ToString().c_str());
    return 1;
  }
  std::printf("client A registered (sensor 2, temp > 5.0), disconnects\n");

  // The stream keeps flowing while nobody is connected; PSoup keeps
  // materializing results.
  tcq::SensorSource::Options opts;
  opts.num_sensors = 8;
  opts.num_readings = 3000;
  opts.dropout = 0.05;
  tcq::SensorSource source(opts);
  tcq::Timestamp now = 0;
  while (auto reading = source.Next()) {
    now = reading->timestamp();
    psoup.OnData(*reading);
  }
  std::printf("stream ran to t=%lld while clients were away "
              "(history %zu tuples, %zu materialized results)\n",
              static_cast<long long>(now), psoup.history_size(),
              psoup.materialized_results());

  // Client B connects late and asks about the PAST: low-voltage readings.
  // PSoup joins the new query against the retained Data SteM.
  auto low_volt = psoup.Register(
      Expr::Binary(BinaryOp::kLt, Expr::Column("voltage"),
                   Expr::Literal(Value::Double(2.5))),
      /*window_width=*/1000);
  if (!low_volt.ok()) {
    std::fprintf(stderr, "%s\n", low_volt.status().ToString().c_str());
    return 1;
  }

  // Client A reconnects: its window [now-499, now] is imposed on the
  // Results Structure — a lookup, not a recomputation.
  auto a_results = psoup.Invoke(*hot, now);
  std::printf("\nclient A reconnects at t=%lld: %zu hot readings in its "
              "window, e.g.\n",
              static_cast<long long>(now), a_results->size());
  size_t shown = 0;
  for (const tcq::Tuple& t : *a_results) {
    if (shown++ >= 3) break;
    std::printf("  t=%lld sensor=%lld temp=%.2f\n",
                static_cast<long long>(t.timestamp()),
                static_cast<long long>(t.cell(1).int64_value()),
                t.cell(2).double_value());
  }

  auto b_results = psoup.Invoke(*low_volt, now);
  std::printf("\nclient B (registered after the fact): %zu low-voltage "
              "readings from history\n",
              b_results->size());

  // A client can also replay an earlier instant: the window slides to it.
  auto a_earlier = psoup.Invoke(*hot, now / 2);
  std::printf("\nclient A asks about t=%lld instead: %zu readings\n",
              static_cast<long long>(now / 2), a_earlier->size());
  return 0;
}
