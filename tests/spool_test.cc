// Spool subsystem unit + crash-safety coverage (DESIGN.md §16): record
// codec, segment rotation, buffer-manager LRU/pinning/read-ahead, sparse
// index probes, late-run merge and tombstone masking equivalence against
// the in-memory Archive, torn-tail truncation, CRC-mismatch rejection,
// and seeded reopen-after-kill round-trips.

#include "spool/spool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ingress/wrapper.h"
#include "spool/buffer_manager.h"
#include "spool/index.h"
#include "spool/segment.h"
#include "tuple/tuple.h"

namespace tcq {
namespace {

/// Self-cleaning unique temp directory (tcq-spool-* prefix: CI sweeps any
/// leftovers from crashed runs).
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "tcq-spool-XXXXXX")
                           .string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Tuple Row(int64_t ts, int64_t v, int64_t seq = 0) {
  Tuple t = Tuple::Make({Value::Int64(v)}, ts);
  t.set_seq(seq);
  return t;
}

std::string Fingerprint(const std::vector<Tuple>& rows) {
  std::string fp;
  for (const Tuple& t : rows) {
    fp += t.ToString();
    fp += "@" + std::to_string(t.timestamp());
    fp += "#" + std::to_string(t.seq());
    fp += ";";
  }
  return fp;
}

std::vector<Tuple> ScanAll(const Spool& spool, const std::string& key,
                           Timestamp lo = kMinTimestamp,
                           Timestamp hi = kMaxTimestamp) {
  std::vector<Tuple> out;
  EXPECT_TRUE(spool
                  .Scan(key, lo, hi,
                        [&](const Tuple& t) {
                          out.push_back(t);
                          return true;
                        })
                  .ok());
  return out;
}

Spool::Options SmallOptions(const std::string& dir) {
  Spool::Options o;
  o.dir = dir;
  o.cache_pages = 8;
  o.read_ahead_pages = 2;
  o.segment_bytes = 8 * 1024;  // Tiny segments: force rotation in tests.
  return o;
}

TEST(SpoolCodec, RoundTripsEveryValueType) {
  Tuple t = Tuple::Make({Value::Null(), Value::Bool(true), Value::Int64(-42),
                         Value::Double(3.25), Value::String("hello\0x"),
                         Value::String(std::string(10000, 'z'))},
                        77);
  t.set_seq(991);
  t.set_retraction(true);
  std::string buf;
  spool::EncodeRecord(spool::RecordKind::kLate, t, &buf);
  spool::RecordKind kind;
  Tuple back;
  ASSERT_TRUE(spool::DecodeRecord(
                  reinterpret_cast<const uint8_t*>(buf.data()), buf.size(),
                  &kind, &back)
                  .ok());
  EXPECT_EQ(kind, spool::RecordKind::kLate);
  EXPECT_EQ(back.timestamp(), 77);
  EXPECT_EQ(back.seq(), 991);
  EXPECT_TRUE(back.retraction());
  ASSERT_EQ(back.arity(), t.arity());
  for (size_t i = 0; i < t.arity(); ++i) {
    EXPECT_EQ(back.cell(i), t.cell(i)) << "cell " << i;
  }
  // Truncated payloads are rejected, never mis-parsed.
  for (size_t cut : {size_t{1}, size_t{10}, buf.size() - 1}) {
    EXPECT_FALSE(spool::DecodeRecord(
                     reinterpret_cast<const uint8_t*>(buf.data()), cut, &kind,
                     &back)
                     .ok());
  }
}

TEST(SpoolSegments, AppendScanRotationAndRanges) {
  TempDir dir;
  auto spool_or = Spool::Open(SmallOptions(dir.path()));
  ASSERT_TRUE(spool_or.ok()) << spool_or.status();
  Spool& spool = **spool_or;
  constexpr int kN = 2000;  // Several segments at 8 KiB per segment.
  for (int i = 1; i <= kN; ++i) {
    ASSERT_TRUE(spool.Append("s", Row(i, i * 3, i)).ok());
  }
  EXPECT_GT(spool.segments(), 3u);
  EXPECT_EQ(spool.records("s"), static_cast<size_t>(kN));
  EXPECT_EQ(spool.min_timestamp("s"), 1);
  EXPECT_EQ(spool.main_frontier("s"), kN);

  std::vector<Tuple> all = ScanAll(spool, "s");
  ASSERT_EQ(all.size(), static_cast<size_t>(kN));
  for (int i = 1; i <= kN; ++i) {
    EXPECT_EQ(all[i - 1].timestamp(), i);
    EXPECT_EQ(all[i - 1].seq(), i);
    EXPECT_EQ(all[i - 1].cell(0).int64_value(), i * 3);
  }
  // Range probes land exactly.
  std::vector<Tuple> mid = ScanAll(spool, "s", 500, 700);
  ASSERT_EQ(mid.size(), 201u);
  EXPECT_EQ(mid.front().timestamp(), 500);
  EXPECT_EQ(mid.back().timestamp(), 700);
  EXPECT_TRUE(ScanAll(spool, "s", kN + 1, kN + 100).empty());
  // Early stop works.
  int seen = 0;
  ASSERT_TRUE(spool
                  .Scan("s", 1, kN,
                        [&](const Tuple&) { return ++seen < 10; })
                  .ok());
  EXPECT_EQ(seen, 10);
}

TEST(SpoolSegments, MultiPageRecordsChainAcrossPages) {
  TempDir dir;
  auto spool_or = Spool::Open(SmallOptions(dir.path()));
  ASSERT_TRUE(spool_or.ok());
  Spool& spool = **spool_or;
  // Each record spans multiple 4 KiB pages.
  for (int i = 1; i <= 20; ++i) {
    Tuple t = Tuple::Make(
        {Value::Int64(i), Value::String(std::string(9000 + i, 'a' + i % 20))},
        i);
    ASSERT_TRUE(spool.Append("big", t).ok());
  }
  std::vector<Tuple> all = ScanAll(spool, "big");
  ASSERT_EQ(all.size(), 20u);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(all[i - 1].cell(1).string_value().size(),
              static_cast<size_t>(9000 + i));
  }
}

/// Late-run merge and cancellation must reproduce the in-memory Archive
/// byte for byte — that equivalence is what makes the spool transparent
/// behind it.
TEST(SpoolSemantics, LateMergeAndCancelMatchArchive) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    TempDir dir;
    auto spool_or = Spool::Open(SmallOptions(dir.path()));
    ASSERT_TRUE(spool_or.ok());
    Spool& spool = **spool_or;
    Archive archive;
    Rng rng(seed);
    Timestamp frontier = 0;
    for (int i = 0; i < 600; ++i) {
      const int pick = static_cast<int>(rng.NextBounded(100));
      if (pick < 70 || frontier < 5) {
        // In-order append (duplicate timestamps now and then).
        frontier += rng.NextBounded(3);
        const Tuple t = Row(frontier, static_cast<int64_t>(rng.NextBounded(8)),
                            i);
        archive.Append(t);
        ASSERT_TRUE(spool.Append("k", t).ok());
      } else if (pick < 90) {
        // Straggler below the frontier.
        const Timestamp ts =
            1 + static_cast<Timestamp>(rng.NextBounded(
                    static_cast<uint64_t>(frontier)));
        const Tuple t = Row(ts, static_cast<int64_t>(rng.NextBounded(8)), i);
        archive.InsertOrdered(t);
        ASSERT_TRUE(spool.Append("k", t).ok());
      } else {
        // Retract a payload that may or may not exist.
        const Timestamp ts =
            1 + static_cast<Timestamp>(
                    rng.NextBounded(static_cast<uint64_t>(frontier)));
        const Tuple probe = Row(ts, static_cast<int64_t>(rng.NextBounded(8)));
        const bool mem = archive.CancelMatching(probe);
        auto disk = spool.Cancel("k", probe);
        ASSERT_TRUE(disk.ok()) << disk.status();
        EXPECT_EQ(mem, *disk) << "seed " << seed << " step " << i;
      }
    }
    EXPECT_EQ(Fingerprint(archive.Scan(kMinTimestamp, kMaxTimestamp)),
              Fingerprint(ScanAll(spool, "k")))
        << "seed " << seed;
    EXPECT_EQ(archive.size(), spool.records("k"));
    // Sub-range scans agree too.
    EXPECT_EQ(Fingerprint(archive.Scan(frontier / 3, 2 * frontier / 3)),
              Fingerprint(
                  ScanAll(spool, "k", frontier / 3, 2 * frontier / 3)));
  }
}

TEST(SpoolSemantics, ScanChunkNeverSplitsEqualTimestamps) {
  TempDir dir;
  auto spool_or = Spool::Open(SmallOptions(dir.path()));
  ASSERT_TRUE(spool_or.ok());
  Spool& spool = **spool_or;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(spool.Append("c", Row(i / 3, i)).ok());  // Triplets per ts.
  }
  std::vector<Tuple> all;
  Timestamp lo = kMinTimestamp;
  int chunks = 0;
  while (lo != kMaxTimestamp) {
    TupleVector chunk;
    auto next = spool.ScanChunk("c", lo, kMaxTimestamp, 7, &chunk);
    ASSERT_TRUE(next.ok());
    if (!chunk.empty()) {
      // A timestamp never straddles a chunk boundary.
      if (!all.empty()) EXPECT_NE(all.back().timestamp(),
                                  chunk.front().timestamp());
      all.insert(all.end(), chunk.begin(), chunk.end());
    }
    if (*next == lo) break;  // Defensive: no progress.
    lo = *next;
    ++chunks;
  }
  EXPECT_EQ(all.size(), 300u);
  EXPECT_GT(chunks, 10);
  EXPECT_EQ(Fingerprint(all), Fingerprint(ScanAll(spool, "c")));
}

TEST(SpoolBufferManager, LruEvictionAndWarmRescans) {
  TempDir dir;
  Spool::Options o = SmallOptions(dir.path());
  o.cache_pages = 4;  // Far below the history's page count.
  o.read_ahead_pages = 2;
  auto spool_or = Spool::Open(o);
  ASSERT_TRUE(spool_or.ok());
  Spool& spool = **spool_or;
  for (int i = 1; i <= 4000; ++i) {
    ASSERT_TRUE(spool.Append("s", Row(i, i)).ok());
  }
  ASSERT_EQ(ScanAll(spool, "s").size(), 4000u);
  const auto cold = spool.cache_stats();
  EXPECT_GT(cold.misses, 10u);
  EXPECT_GT(cold.evictions, 0u);
  EXPECT_LE(spool.cache_pages(), o.cache_pages);

  // A narrow range that fits in cache turns warm on rescan.
  (void)ScanAll(spool, "s", 10, 20);
  const auto after_first = spool.cache_stats();
  (void)ScanAll(spool, "s", 10, 20);
  const auto after_second = spool.cache_stats();
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.readahead, 0u);
}

TEST(SpoolRetention, EvictBeforeDropsWholeSegmentsAndIndexEntries) {
  TempDir dir;
  auto spool_or = Spool::Open(SmallOptions(dir.path()));
  ASSERT_TRUE(spool_or.ok());
  Spool& spool = **spool_or;
  for (int i = 1; i <= 2000; ++i) {
    ASSERT_TRUE(spool.Append("s", Row(i, i)).ok());
  }
  const size_t before_segments = spool.segments();
  const uint64_t before_bytes = spool.bytes();
  ASSERT_TRUE(spool.EvictBefore("s", 1000).ok());
  EXPECT_LT(spool.segments(), before_segments);
  EXPECT_LT(spool.bytes(), before_bytes);
  EXPECT_LT(spool.records("s"), 2000u);
  // Everything at or above the cutoff survives (drop is segment-granular,
  // so some older records may survive too — never the other way around).
  std::vector<Tuple> rest = ScanAll(spool, "s");
  EXPECT_GE(rest.size(), 1001u);
  EXPECT_EQ(rest.back().timestamp(), 2000);
  for (size_t i = 1; i < rest.size(); ++i) {
    EXPECT_EQ(rest[i].timestamp(), rest[i - 1].timestamp() + 1);
  }
}

TEST(SpoolRetention, ByteCapDropsOldestSegments) {
  TempDir dir;
  Spool::Options o = SmallOptions(dir.path());
  o.retention_bytes = 40 * 1024;
  auto spool_or = Spool::Open(o);
  ASSERT_TRUE(spool_or.ok());
  Spool& spool = **spool_or;
  for (int i = 1; i <= 20000; ++i) {
    ASSERT_TRUE(spool.Append("s", Row(i, i)).ok());
  }
  EXPECT_LE(spool.bytes(), 2 * o.retention_bytes);
  EXPECT_LT(spool.records("s"), 20000u);
  std::vector<Tuple> rest = ScanAll(spool, "s");
  EXPECT_EQ(rest.back().timestamp(), 20000);
  EXPECT_GT(rest.front().timestamp(), 1);
}

TEST(SpoolReopen, RebuildsIndexLateRunsAndTombstones) {
  TempDir dir;
  std::string expect;
  {
    auto spool_or = Spool::Open(SmallOptions(dir.path()));
    ASSERT_TRUE(spool_or.ok());
    Spool& spool = **spool_or;
    for (int i = 1; i <= 500; ++i) {
      ASSERT_TRUE(spool.Append("s", Row(i * 2, i)).ok());
    }
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(spool.Append("s", Row(3 + i * 7, 1000 + i)).ok());  // Late.
    }
    auto c1 = spool.Cancel("s", Row(10, 5));
    ASSERT_TRUE(c1.ok());
    EXPECT_TRUE(*c1);
    auto c2 = spool.Cancel("s", Row(24, 1003));  // A late record (3 + 3*7).
    ASSERT_TRUE(c2.ok());
    EXPECT_TRUE(*c2);
    expect = Fingerprint(ScanAll(spool, "s"));
  }  // Clean close: destructor flushes.
  auto reopened_or = Spool::Open(SmallOptions(dir.path()));
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
  Spool& reopened = **reopened_or;
  EXPECT_TRUE(reopened.HasKey("s"));
  EXPECT_EQ(Fingerprint(ScanAll(reopened, "s")), expect);
  EXPECT_EQ(reopened.records("s"), 538u);  // 540 appended - 2 cancelled.
}

TEST(SpoolCrash, TornTailTruncatesToLastDurableRecord) {
  TempDir dir;
  Spool::Options o = SmallOptions(dir.path());
  o.sync_each_append = true;
  std::string expect;
  {
    auto spool_or = Spool::Open(o);
    ASSERT_TRUE(spool_or.ok());
    Spool& spool = **spool_or;
    std::vector<Tuple> durable;
    for (int i = 1; i <= 50; ++i) {
      const Tuple t = Row(i, i);
      ASSERT_TRUE(spool.Append("s", t).ok());
      durable.push_back(t);
    }
    // The next page write only lands half, then the "machine dies".
    spool.SetTornWriteForTest("s", 1);
    EXPECT_FALSE(spool.Append("s", Row(51, 51)).ok());
    expect = Fingerprint(durable);
  }
  auto reopened_or = Spool::Open(o);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
  // Every append that was acknowledged (synced) survives; the torn one is
  // truncated away.
  EXPECT_EQ(Fingerprint(ScanAll(**reopened_or, "s")), expect);
}

TEST(SpoolCrash, CrcMismatchRejectsCorruptedBytes) {
  TempDir dir;
  Spool::Options o = SmallOptions(dir.path());
  {
    auto spool_or = Spool::Open(o);
    ASSERT_TRUE(spool_or.ok());
    for (int i = 1; i <= 3000; ++i) {
      ASSERT_TRUE((*spool_or)->Append("s", Row(i, i)).ok());
    }
  }
  // Flip payload bytes in the middle of the FIRST sealed segment.
  std::vector<std::string> segs;
  for (const auto& e : std::filesystem::recursive_directory_iterator(
           dir.path())) {
    if (e.path().extension() == ".spool") segs.push_back(e.path().string());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_GE(segs.size(), 3u);
  {
    std::FILE* f = std::fopen(segs[0].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 2 * 4096 + 100, SEEK_SET);
    const char junk[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    std::fwrite(junk, 1, 4, f);
    std::fclose(f);
  }
  auto reopened_or = Spool::Open(o);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
  std::vector<Tuple> rows = ScanAll(**reopened_or, "s");
  // Records before the corruption survive; the segment's suffix is gone;
  // later segments are intact (scan continuity across the hole).
  ASSERT_FALSE(rows.empty());
  EXPECT_LT(rows.size(), 3000u);
  EXPECT_EQ(rows.front().timestamp(), 1);
  EXPECT_EQ(rows.back().timestamp(), 3000);
}

/// Reopen-after-kill round trip across seeds: a FaultInjector-style
/// seeded schedule decides batch sizes, payload shapes and the kill
/// point; everything acknowledged before the kill must read back, in
/// order, after reopen.
TEST(SpoolCrash, SeededReopenAfterKillRoundTrip) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    TempDir dir;
    Spool::Options o = SmallOptions(dir.path());
    o.sync_each_append = true;
    std::vector<Tuple> durable;
    {
      auto spool_or = Spool::Open(o);
      ASSERT_TRUE(spool_or.ok());
      Spool& spool = **spool_or;
      Rng rng(seed);
      const int appends = 30 + static_cast<int>(rng.NextBounded(120));
      const int kill_after = 5 + static_cast<int>(
                                     rng.NextBounded(
                                         static_cast<uint64_t>(appends)));
      for (int i = 1; i <= appends; ++i) {
        Tuple t = Tuple::Make(
            {Value::Int64(i),
             Value::String(std::string(rng.NextBounded(600), 'x'))},
            i);
        if (i == kill_after) {
          spool.SetTornWriteForTest(
              "s", 1 + static_cast<int>(rng.NextBounded(2)));
        }
        if (spool.Append("s", t).ok()) {
          durable.push_back(std::move(t));
        } else {
          break;  // Store is dead after the injected crash.
        }
      }
    }
    auto reopened_or = Spool::Open(o);
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
    EXPECT_EQ(Fingerprint(ScanAll(**reopened_or, "s")),
              Fingerprint(durable))
        << "seed " << seed;
  }
}

/// The split archive (tiny resident tail + spool) must behave byte for
/// byte like the unsplit in-memory archive under every mutation the
/// server performs: ordered appends, late inserts, retractions and
/// demotion-style eviction.
TEST(SpoolArchive, SplitArchiveMatchesInMemoryArchive) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    TempDir dir;
    auto spool_or = Spool::Open(SmallOptions(dir.path()));
    ASSERT_TRUE(spool_or.ok());
    Archive reference;
    Archive split;
    split.AttachSpool(spool_or->get(), "stream.s", /*resident_limit=*/8);
    Rng rng(seed);
    Timestamp frontier = 0;
    for (int i = 0; i < 500; ++i) {
      const int pick = static_cast<int>(rng.NextBounded(100));
      if (pick < 60 || frontier < 5) {
        frontier += rng.NextBounded(3);
        const Tuple t = Row(frontier, static_cast<int64_t>(rng.NextBounded(6)),
                            i);
        reference.Append(t);
        split.Append(t);
      } else if (pick < 80) {
        const Timestamp ts =
            1 + static_cast<Timestamp>(
                    rng.NextBounded(static_cast<uint64_t>(frontier)));
        const Tuple t = Row(ts, static_cast<int64_t>(rng.NextBounded(6)), i);
        reference.InsertOrdered(t);
        split.InsertOrdered(t);
      } else if (pick < 95) {
        const Timestamp ts =
            1 + static_cast<Timestamp>(
                    rng.NextBounded(static_cast<uint64_t>(frontier)));
        const Tuple probe = Row(ts, static_cast<int64_t>(rng.NextBounded(6)));
        EXPECT_EQ(reference.CancelMatching(probe),
                  split.CancelMatching(probe))
            << "seed " << seed << " step " << i;
      } else {
        // EvictBefore demotes on the split archive but FREES on the
        // reference, so drive both from a third unsplit copy instead:
        // here just exercise the split one and check size bookkeeping.
        const size_t before = split.size();
        split.EvictBefore(frontier / 2);
        EXPECT_EQ(split.size(), before);  // Demoted, not freed.
      }
    }
    EXPECT_EQ(Fingerprint(reference.Scan(kMinTimestamp, kMaxTimestamp)),
              Fingerprint(split.Scan(kMinTimestamp, kMaxTimestamp)))
        << "seed " << seed;
    EXPECT_EQ(reference.size(), split.size());
    EXPECT_EQ(reference.min_timestamp(), split.min_timestamp());
    EXPECT_EQ(reference.max_timestamp(), split.max_timestamp());
    EXPECT_LE(split.resident_size(), 8u);
    EXPECT_EQ(Fingerprint(reference.Scan(frontier / 4, 3 * frontier / 4)),
              Fingerprint(split.Scan(frontier / 4, 3 * frontier / 4)));
    // Chunked scan reassembles to the same bytes and never splits an
    // equal-timestamp run.
    std::vector<Tuple> chunked;
    Timestamp lo = kMinTimestamp;
    while (true) {
      TupleVector chunk;
      const Timestamp next = split.ScanChunk(lo, kMaxTimestamp, 5, &chunk);
      if (!chunk.empty()) {
        if (!chunked.empty()) {
          EXPECT_NE(chunked.back().timestamp(), chunk.front().timestamp());
        }
        chunked.insert(chunked.end(), chunk.begin(), chunk.end());
      }
      if (next == kMaxTimestamp) break;
      lo = next;
    }
    EXPECT_EQ(Fingerprint(chunked),
              Fingerprint(reference.Scan(kMinTimestamp, kMaxTimestamp)))
        << "seed " << seed;
  }
}

/// A finite retention span on a split archive: the logical floor stays
/// exact even though physical segment drops are coarse.
TEST(SpoolArchive, RetentionSpanKeepsExactLogicalFloor) {
  TempDir dir;
  auto spool_or = Spool::Open(SmallOptions(dir.path()));
  ASSERT_TRUE(spool_or.ok());
  Archive reference(/*retention_span=*/100);
  Archive split(/*retention_span=*/100);
  split.AttachSpool(spool_or->get(), "stream.s", /*resident_limit=*/4);
  for (int i = 1; i <= 1000; ++i) {
    const Tuple t = Row(i, i);
    reference.Append(t);
    split.Append(t);
  }
  EXPECT_EQ(Fingerprint(reference.Scan(kMinTimestamp, kMaxTimestamp)),
            Fingerprint(split.Scan(kMinTimestamp, kMaxTimestamp)));
  // size() may over-count on the split side (whole segments below the
  // floor age out lazily) but what scans SERVE is exact — and bounded.
  EXPECT_GE(split.size(), reference.size());
  EXPECT_EQ(split.min_timestamp(), reference.min_timestamp());
  // Stragglers below the span floor vanish on both sides: scans stay
  // identical and the straggler is not served.
  reference.InsertOrdered(Row(100, 7));
  split.InsertOrdered(Row(100, 7));
  EXPECT_EQ(Fingerprint(reference.Scan(kMinTimestamp, kMaxTimestamp)),
            Fingerprint(split.Scan(kMinTimestamp, kMaxTimestamp)));
}

TEST(SpoolIndex, SeekMainProbesAndMaskCounts) {
  spool::StreamIndex idx;
  EXPECT_FALSE(idx.SeekMain(5).has_value());
  idx.NoteMain({1, 1, 0}, 10);
  idx.NoteMain({1, 1, 100}, 20);  // Same page: no new entry.
  idx.NoteMain({1, 2, 0}, 30);
  idx.NoteMain({2, 1, 0}, 40);
  EXPECT_EQ(idx.records(), 4u);
  auto pos = idx.SeekMain(5);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(pos->segment, 1u);
  EXPECT_EQ(pos->page, 1u);
  pos = idx.SeekMain(30);  // Equal first_ts must land one entry earlier.
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(pos->page, 1u);
  pos = idx.SeekMain(45);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(pos->segment, 2u);
  idx.NoteLate({2, 2, 0}, 15);
  EXPECT_EQ(idx.min_ts(), 10);
  idx.AddMask({1, 1, 100});
  EXPECT_EQ(idx.records(), 4u);  // 5 noted - 1 masked.
  EXPECT_TRUE(idx.IsMasked({1, 1, 100}));
  idx.DropSegment(1);
  EXPECT_EQ(idx.records(), 2u);  // Segment 2: one main + one late.
  EXPECT_EQ(idx.min_ts(), 15);
}

}  // namespace
}  // namespace tcq
