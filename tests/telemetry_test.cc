// Telemetry contract tests (DESIGN.md §10): registry semantics, histogram
// bucketing/quantiles, deterministic sampled tracing (including end-to-end
// through an Eddy under a VirtualClock), and rate-limited logging.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "eddy/eddy.h"
#include "eddy/operators.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tcq {
namespace {

// The registry is process-global and this binary runs many tests, so each
// test uses names under its own prefix and never assumes registry size.

TEST(MetricsTest, CounterGaugeBasics) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter* c = reg.GetCounter("test.basics.counter");
  Gauge* g = reg.GetGauge("test.basics.gauge");

  c->Add(3);
  ++*c;
  *c += 6;
  EXPECT_EQ(c->value(), 10u);
  EXPECT_EQ(static_cast<uint64_t>(*c), 10u);

  g->Set(-5);
  g->Add(7);
  EXPECT_EQ(g->value(), 2);
}

TEST(MetricsTest, SameNameSharesMetricAcrossCallers) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter* a = reg.GetCounter("test.shared.counter");
  Counter* b = reg.GetCounter("test.shared.counter");
  EXPECT_EQ(a, b);
  a->Add(1);
  b->Add(1);
  EXPECT_EQ(a->value(), 2u);
}

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  Histogram h;
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketBound(2), 3u);

  for (int i = 0; i < 90; ++i) h.Record(1);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u + 10u * 1000u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 1u);
  // p99 lands in 1000's bucket: its inclusive upper bound.
  EXPECT_GE(h.ApproxQuantile(0.99), 1000u);
  EXPECT_LE(h.ApproxQuantile(0.99), 2047u);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, SnapshotAndJsonCoverRegisteredNames) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("test.json.counter")->Add(42);
  reg.GetGauge("test.json.gauge")->Set(-3);
  reg.GetHistogram("test.json.histo")->Record(5);

  bool saw_counter = false, saw_gauge = false, saw_histo = false;
  for (const MetricSample& s : reg.Snapshot()) {
    if (s.name == "test.json.counter") {
      saw_counter = true;
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      EXPECT_DOUBLE_EQ(s.value, 42.0);
    } else if (s.name == "test.json.gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(s.value, -3.0);
    } else if (s.name == "test.json.histo") {
      saw_histo = true;
      EXPECT_EQ(s.kind, MetricKind::kHistogram);
      EXPECT_DOUBLE_EQ(s.value, 1.0);  // Count.
      EXPECT_DOUBLE_EQ(s.sum, 5.0);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_histo);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"test.json.counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.histo\":{"), std::string::npos);
}

TEST(MetricsTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().SetClock(nullptr);
    Tracer::Global().ResetForTest();
  }
};

TEST_F(TracerTest, DisabledSamplesNothing) {
  Tracer& tr = Tracer::Global();
  tr.ResetForTest();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tr.MaybeStartTrace(), 0u);
  EXPECT_EQ(tr.sampled(), 0u);
}

TEST_F(TracerTest, SamplingIsCounterBasedAndDeterministic) {
  Tracer& tr = Tracer::Global();
  tr.Enable(/*sample_every=*/3);
  tr.ResetForTest();

  std::vector<size_t> sampled_arrivals;
  for (size_t i = 0; i < 12; ++i) {
    if (tr.MaybeStartTrace() != 0) sampled_arrivals.push_back(i);
  }
  // Arrivals 0, 3, 6, 9 — a pure function of arrival order.
  EXPECT_EQ(sampled_arrivals, (std::vector<size_t>{0, 3, 6, 9}));
  EXPECT_EQ(tr.sampled(), 4u);

  // Re-running the same arrival sequence reproduces the same choice.
  tr.ResetForTest();
  std::vector<size_t> again;
  for (size_t i = 0; i < 12; ++i) {
    if (tr.MaybeStartTrace() != 0) again.push_back(i);
  }
  EXPECT_EQ(again, sampled_arrivals);
}

TEST_F(TracerTest, RingEvictsOldestAtCapacity) {
  Tracer& tr = Tracer::Global();
  tr.Enable(/*sample_every=*/1, /*capacity=*/2);
  tr.ResetForTest();
  for (uint64_t i = 1; i <= 5; ++i) {
    TraceEvent ev;
    ev.trace_id = i;
    tr.Record(ev);
  }
  std::vector<TraceEvent> events = tr.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 4u);
  EXPECT_EQ(events[1].trace_id, 5u);
  EXPECT_EQ(tr.evicted(), 3u);
}

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts = 0) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

/// Runs 8 tuples through a one-filter eddy at 1-in-4 sampling and returns
/// the drained trace.
std::vector<TraceEvent> TraceEddyRun(const VirtualClock* clock) {
  Tracer& tr = Tracer::Global();
  tr.Enable(/*sample_every=*/4);
  tr.SetClock(clock);
  tr.ResetForTest();

  SourceLayout layout;
  const size_t s = layout.AddSource("s", KV());
  SmallBitset sources(layout.num_sources());
  sources.Set(s);
  Eddy eddy(&layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  ExprPtr pred = Expr::Binary(BinaryOp::kGe, Expr::Column("k"),
                              Expr::Literal(Value::Int64(4)));
  auto bound = pred->Bind(*layout.full_schema());
  EXPECT_TRUE(bound.ok()) << bound.status();
  eddy.AddOperator(std::make_shared<FilterOp>("k>=4", *bound, sources));
  eddy.SetSink([](RoutedTuple&&) {});
  for (int64_t k = 0; k < 8; ++k) eddy.Inject(s, KVTuple(k, k));
  eddy.Drain();
  return tr.Drain();
}

#ifndef TCQ_METRICS_DISABLED
TEST_F(TracerTest, EddyHopsAreRecordedDeterministically) {
  VirtualClock clock;
  clock.AdvanceTo(77);
  std::vector<TraceEvent> events = TraceEddyRun(&clock);

  // 1-in-4 over 8 injected tuples: arrivals 0 (k=0, filtered out) and
  // 4 (k=4, emitted) are traced. Each shows a filter hop; the pass gets
  // an [emit] marker, the drop a [discard] marker.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].trace_id, 1u);
  EXPECT_EQ(events[0].op, "k>=4");
  EXPECT_EQ(events[0].decision, TraceDecision::kPolicy);
  EXPECT_FALSE(events[0].passed);
  EXPECT_EQ(events[1].op, "[discard]");
  EXPECT_EQ(events[1].trace_id, 1u);
  EXPECT_EQ(events[2].trace_id, 2u);
  EXPECT_EQ(events[2].op, "k>=4");
  EXPECT_TRUE(events[2].passed);
  EXPECT_EQ(events[3].op, "[emit]");
  for (const TraceEvent& ev : events) EXPECT_EQ(ev.at, 77);

  // Determinism: the identical run yields the identical trace.
  std::vector<TraceEvent> rerun = TraceEddyRun(&clock);
  ASSERT_EQ(rerun.size(), events.size());
  for (size_t i = 0; i < rerun.size(); ++i) {
    EXPECT_EQ(rerun[i].trace_id, events[i].trace_id);
    EXPECT_EQ(rerun[i].op, events[i].op);
    EXPECT_EQ(rerun[i].decision, events[i].decision);
    EXPECT_EQ(rerun[i].passed, events[i].passed);
  }
}

TEST_F(TracerTest, UntracedTuplesRecordNothing) {
  Tracer& tr = Tracer::Global();
  tr.Disable();
  tr.ResetForTest();

  SourceLayout layout;
  const size_t s = layout.AddSource("s", KV());
  SmallBitset sources(layout.num_sources());
  sources.Set(s);
  Eddy eddy(&layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  eddy.AddOperator(std::make_shared<FilterOp>(
      "t", Expr::Literal(Value::Bool(true)), sources));
  eddy.SetSink([](RoutedTuple&&) {});
  for (int64_t k = 0; k < 16; ++k) eddy.Inject(s, KVTuple(k, k));
  eddy.Drain();
  EXPECT_TRUE(tr.Drain().empty());
  EXPECT_EQ(tr.sampled(), 0u);
}
#endif  // TCQ_METRICS_DISABLED

class LogEveryNTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Logger::SetSinkForTest(nullptr);
    Logger::set_threshold(LogLevel::kWarn);
  }
};

TEST_F(LogEveryNTest, EmitsFirstOfEveryN) {
  std::vector<std::string> lines;
  Logger::SetSinkForTest(
      [&lines](LogLevel, const std::string& msg) { lines.push_back(msg); });
  Logger::set_threshold(LogLevel::kInfo);

  for (int i = 0; i < 10; ++i) {
    TCQ_LOG_EVERY_N(Info, 4) << "occurrence " << i;
  }
  // Occurrences 0, 4 and 8 of this site emit.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("occurrence 0"), std::string::npos);
  EXPECT_NE(lines[1].find("occurrence 4"), std::string::npos);
  EXPECT_NE(lines[2].find("occurrence 8"), std::string::npos);
}

TEST_F(LogEveryNTest, DisabledSeverityDoesNotCount) {
  std::vector<std::string> lines;
  Logger::SetSinkForTest(
      [&lines](LogLevel, const std::string& msg) { lines.push_back(msg); });

  Logger::set_threshold(LogLevel::kError);
  for (int i = 0; i < 7; ++i) {
    TCQ_LOG_EVERY_N(Warn, 2) << "suppressed " << i;
  }
  EXPECT_TRUE(lines.empty());

  // Enabling later starts the site fresh: its next occurrence emits.
  Logger::set_threshold(LogLevel::kWarn);
  TCQ_LOG_EVERY_N(Warn, 2) << "first enabled";
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("first enabled"), std::string::npos);
}

TEST_F(LogEveryNTest, UsableAsUnbracedIfArm) {
  std::vector<std::string> lines;
  Logger::SetSinkForTest(
      [&lines](LogLevel, const std::string& msg) { lines.push_back(msg); });
  Logger::set_threshold(LogLevel::kInfo);

  // Compiles and binds correctly as a single statement.
  for (int i = 0; i < 4; ++i)
    if (i % 2 == 0)
      TCQ_LOG_EVERY_N(Info, 1) << "even " << i;
    else
      TCQ_LOG_EVERY_N(Info, 1) << "odd " << i;
  ASSERT_EQ(lines.size(), 4u);
}

}  // namespace
}  // namespace tcq
