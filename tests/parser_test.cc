#include "parser/parser.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

TEST(LexParserTest, SimpleSelect) {
  auto q = ParseQuery("SELECT closingPrice FROM ClosingStockPrices");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].expr->column_name(), "closingPrice");
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].name, "ClosingStockPrices");
  EXPECT_EQ(q->where, nullptr);
  EXPECT_FALSE(q->window.has_value());
}

TEST(LexParserTest, StarAndQualifiedStar) {
  auto q1 = ParseQuery("SELECT * FROM S");
  ASSERT_TRUE(q1.ok());
  EXPECT_TRUE(q1->select[0].star);
  EXPECT_TRUE(q1->select[0].star_qualifier.empty());

  auto q2 = ParseQuery("SELECT c2.* FROM S as c2");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->select[0].star);
  EXPECT_EQ(q2->select[0].star_qualifier, "c2");
}

TEST(LexParserTest, WhereWithAndOrPrecedence) {
  auto q = ParseQuery(
      "SELECT a FROM S WHERE a > 1 AND b < 2 OR c = 'x'");
  ASSERT_TRUE(q.ok());
  // OR binds loosest: ((a>1 AND b<2) OR c='x').
  EXPECT_EQ(q->where->binary_op(), BinaryOp::kOr);
  EXPECT_EQ(q->where->left()->binary_op(), BinaryOp::kAnd);
}

TEST(LexParserTest, ArithmeticPrecedence) {
  auto q = ParseQuery("SELECT a + b * 2 FROM S");
  ASSERT_TRUE(q.ok());
  const ExprPtr& e = q->select[0].expr;
  EXPECT_EQ(e->binary_op(), BinaryOp::kAdd);
  EXPECT_EQ(e->right()->binary_op(), BinaryOp::kMul);
}

TEST(LexParserTest, PaperSnapshotQuery) {
  // §4.1.1 example 1, verbatim modulo whitespace.
  auto q = ParseQuery(
      "SELECT closingPrice, timestamp "
      "FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { "
      "  WindowIs(ClosingStockPrices, 1, 5); "
      "}");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->window.has_value());
  const ForLoopSpec& w = *q->window;
  EXPECT_EQ(w.init, nullptr);
  ASSERT_EQ(w.windows.size(), 1u);
  EXPECT_EQ(w.windows[0].stream, "ClosingStockPrices");
  WindowSequence seq(&w, 0);
  auto step = seq.Next();
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->bounds[0].left, 1);
  EXPECT_EQ(step->bounds[0].right, 5);
  EXPECT_FALSE(seq.Next().has_value());
}

TEST(LexParserTest, PaperLandmarkQuery) {
  auto q = ParseQuery(
      "SELECT closingPrice, timestamp "
      "FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 "
      "for (t = 101; t <= 1000; t++) { "
      "  WindowIs(ClosingStockPrices, 101, t); "
      "}");
  ASSERT_TRUE(q.ok()) << q.status();
  WindowSequence seq(&*q->window, 0);
  auto first = seq.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->t, 101);
  EXPECT_EQ(first->bounds[0].left, 101);
  EXPECT_EQ(first->bounds[0].right, 101);
}

TEST(LexParserTest, PaperSlidingQuery) {
  auto q = ParseQuery(
      "Select AVG(closingPrice) "
      "From ClosingStockPrices "
      "Where stockSymbol = 'MSFT' "
      "for (t = ST; t < ST + 50; t += 5) { "
      "  WindowIs(ClosingStockPrices, t - 4, t); "
      "}");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].expr->kind(), ExprKind::kAggregate);
  EXPECT_EQ(q->select[0].expr->agg_kind(), AggKind::kAvg);
  WindowSequence seq(&*q->window, /*st=*/100);
  auto s1 = seq.Next();
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->bounds[0].left, 96);
  EXPECT_EQ(s1->bounds[0].right, 100);
  auto s2 = seq.Next();
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->t, 105);
}

TEST(LexParserTest, PaperBandJoinQuery) {
  auto q = ParseQuery(
      "Select c2.* "
      "FROM ClosingStockPrices as c1, ClosingStockPrices as c2 "
      "WHERE c1.stockSymbol = 'MSFT' and "
      "      c2.stockSymbol != 'MSFT' and "
      "      c2.closingPrice > c1.closingPrice and "
      "      c2.timestamp = c1.timestamp "
      "for (t = ST; t < ST + 20; t++) { "
      "  WindowIs(c1, t - 4, t); "
      "  WindowIs(c2, t - 4, t); "
      "}");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].alias, "c1");
  EXPECT_EQ(q->from[1].alias, "c2");
  ASSERT_EQ(q->window->windows.size(), 2u);
  EXPECT_EQ(q->window->windows[0].stream, "c1");
  EXPECT_EQ(q->window->windows[1].stream, "c2");
  auto conjuncts = ExtractConjuncts(q->where);
  EXPECT_EQ(conjuncts.size(), 4u);
}

TEST(LexParserTest, GroupBy) {
  auto q = ParseQuery(
      "SELECT srcAddr, COUNT(*) FROM Packets GROUP BY srcAddr "
      "for (t = 1; true; t += 10) { WindowIs(Packets, t, t + 9); }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0]->column_name(), "srcAddr");
  EXPECT_EQ(q->select[1].expr->agg_kind(), AggKind::kCount);
  EXPECT_EQ(q->select[1].expr->agg_arg(), nullptr);  // COUNT(*).
}

TEST(LexParserTest, AggregateFunctions) {
  auto q = ParseQuery(
      "SELECT MIN(a), MAX(a), SUM(b), COUNT(b), AVG(b) FROM S "
      "for (; t == 0; t = -1) { WindowIs(S, 1, 10); }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select[0].expr->agg_kind(), AggKind::kMin);
  EXPECT_EQ(q->select[1].expr->agg_kind(), AggKind::kMax);
  EXPECT_EQ(q->select[2].expr->agg_kind(), AggKind::kSum);
  EXPECT_EQ(q->select[3].expr->agg_kind(), AggKind::kCount);
  EXPECT_EQ(q->select[4].expr->agg_kind(), AggKind::kAvg);
}

TEST(LexParserTest, AliasForms) {
  auto q = ParseQuery("SELECT p.bytes AS sz FROM Packets p");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from[0].alias, "p");
  EXPECT_EQ(q->select[0].alias, "sz");
  EXPECT_EQ(q->select[0].expr->column_name(), "p.bytes");
}

TEST(LexParserTest, MinusEqualsStepAndReverseWindow) {
  auto q = ParseQuery(
      "SELECT a FROM S for (t = ST; t > 0; t -= 10) "
      "{ WindowIs(S, t - 9, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  WindowSequence seq(&*q->window, 100);
  auto s1 = seq.Next();
  auto s2 = seq.Next();
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s1->bounds[0].right, 100);
  EXPECT_EQ(s2->bounds[0].right, 90);
}

TEST(LexParserTest, CaseInsensitiveKeywordsAndComments) {
  auto q = ParseQuery(
      "select a from S -- trailing comment\nwhere a >= 3");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where->binary_op(), BinaryOp::kGe);
}

TEST(LexParserTest, StringEscapes) {
  auto q = ParseQuery("SELECT a FROM S WHERE a = 'it''s'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->right()->literal().string_value(), "it's");
}

TEST(LexParserTest, NotAndBooleans) {
  auto q = ParseQuery("SELECT a FROM S WHERE NOT (a = 1) AND true");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where->binary_op(), BinaryOp::kAnd);
  EXPECT_EQ(q->where->left()->kind(), ExprKind::kUnary);
}

TEST(LexParserTest, ErrorCases) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROM S").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S extra junk here").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S WHERE a = 'unterminated").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT a FROM S for (t = 1; true) { }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT a FROM S for (t = 1; true; t++) { bogus; }").ok());
  EXPECT_FALSE(ParseQuery("SELECT MIN(*) FROM S").ok());
}

TEST(LexParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseQuery("SELECT a FROM S;").ok());
}

TEST(LexParserTest, ToStringRoundTripParses) {
  auto q = ParseQuery(
      "SELECT a, b AS bee FROM S AS x, T WHERE x.a = T.a AND b > 2");
  ASSERT_TRUE(q.ok());
  const std::string printed = q->ToString();
  EXPECT_NE(printed.find("SELECT"), std::string::npos);
  EXPECT_NE(printed.find("AS bee"), std::string::npos);
}

}  // namespace
}  // namespace tcq
