#include <gtest/gtest.h>

#include <map>
#include <string>

#include "flux/flux.h"
#include "testing/fault_injector.h"

namespace tcq {
namespace {

Tuple KV(int64_t key, double value) {
  return Tuple::Make({Value::Int64(key), Value::Double(value)});
}

/// Deterministic workload: `per_tick` tuples per tick over `keys` keys
/// (zipf-skewed so repartitioning moves are provoked), value == 1.0 so the
/// reference aggregate is a per-key count.
std::function<TupleVector(uint64_t)> MakeFeeder(uint64_t seed, size_t per_tick,
                                                uint64_t keys,
                                                std::map<int64_t, int64_t>* fed,
                                                uint64_t horizon) {
  auto rng = std::make_shared<Rng>(seed);
  return [rng, per_tick, keys, fed, horizon](uint64_t tick) {
    TupleVector batch;
    if (tick > horizon) return batch;  // Feed only inside the horizon.
    batch.reserve(per_tick);
    for (size_t i = 0; i < per_tick; ++i) {
      const int64_t key = static_cast<int64_t>(rng->NextZipf(keys, 0.8));
      batch.push_back(KV(key, 1.0));
      ++(*fed)[key];
    }
    return batch;
  };
}

std::string SnapshotFingerprint(const FluxCluster& cluster) {
  std::string fp;
  for (const auto& [key, ks] : cluster.Snapshot()) {
    fp += key.ToString() + ":" + std::to_string(ks.count) + ";";
  }
  return fp;
}

// -- Tentpole: failover mid-stream loses no acked tuples ------------------

TEST(StressFluxTest, ReplicatedFailoverLosesNoAckedTuplesAcross3Kills) {
  // Acceptance: >= 3 scripted node kills mid-stream with process-pair
  // replication on; every tuple the cluster accepted must survive into
  // the final merged aggregate — acked state fails over, queued tuples
  // replay, nothing is lost and nothing is double-applied.
  constexpr uint64_t kHorizon = 60;
  FluxCluster::Options opts;
  opts.num_nodes = 6;
  opts.num_partitions = 48;
  opts.capacity_per_tick = 8;  // Deliberately tight: backlogs persist, so
                               // kills always catch in-flight tuples.
  opts.enable_replication = true;
  opts.enable_repartitioning = true;
  opts.min_backlog_for_move = 32;

  FaultInjector injector(2026);
  const auto script = injector.MakeKillSchedule(3, opts.num_nodes, kHorizon);
  ASSERT_EQ(script.size(), 3u);

  FluxCluster cluster(opts);
  std::map<int64_t, int64_t> fed;
  RunScriptedFaults(&cluster, script,
                    MakeFeeder(555, 96, 40, &fed, kHorizon), kHorizon);

  EXPECT_EQ(cluster.lost_updates(), 0u) << "acked state was lost";
  EXPECT_EQ(cluster.dropped_no_owner(), 0u)
      << "tuples were dropped though live owners existed";
  EXPECT_EQ(cluster.total_backlog(), 0u);

  const auto snapshot = cluster.Snapshot();
  int64_t fed_total = 0, snap_total = 0;
  for (const auto& [key, count] : fed) {
    fed_total += count;
    const auto it = snapshot.find(Value::Int64(key));
    ASSERT_NE(it, snapshot.end()) << "key " << key << " vanished entirely";
    EXPECT_EQ(it->second.count, count) << "key " << key;
    EXPECT_DOUBLE_EQ(it->second.sum, static_cast<double>(count));
    snap_total += it->second.count;
  }
  EXPECT_EQ(snap_total, fed_total);
  EXPECT_GT(cluster.replayed(), 0u);  // Kills really hit live queues.
}

TEST(StressFluxTest, FaultScheduleAndOutcomeReproducible) {
  // Acceptance: same seed -> identical fault schedule AND identical final
  // state, run-to-run.
  auto run = [] {
    FluxCluster::Options opts;
    opts.num_nodes = 5;
    opts.num_partitions = 32;
    opts.capacity_per_tick = 48;
    opts.enable_replication = true;
    FaultInjector injector(91);
    const auto script = injector.MakeKillSchedule(3, opts.num_nodes, 40);
    FluxCluster cluster(opts);
    std::map<int64_t, int64_t> fed;
    RunScriptedFaults(&cluster, script, MakeFeeder(7, 64, 24, &fed, 40), 40);
    return SnapshotFingerprint(cluster) +
           "|lost=" + std::to_string(cluster.lost_updates()) +
           "|replayed=" + std::to_string(cluster.replayed()) +
           "|moves=" + std::to_string(cluster.moves()) +
           "|ticks=" + std::to_string(cluster.ticks());
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("lost=0"), std::string::npos);
}

TEST(StressFluxTest, UnreplicatedKillsSatisfyConservationIdentity) {
  // Without replication a kill legitimately loses the dead node's acked
  // state — but the books must still balance exactly:
  //   fed == surviving + lost_updates + dropped_no_owner.
  FluxCluster::Options opts;
  opts.num_nodes = 4;
  opts.num_partitions = 16;
  opts.capacity_per_tick = 32;
  opts.enable_replication = false;

  FaultInjector injector(31337);
  const auto script = injector.MakeKillSchedule(2, opts.num_nodes, 30);
  FluxCluster cluster(opts);
  std::map<int64_t, int64_t> fed;
  RunScriptedFaults(&cluster, script, MakeFeeder(3, 48, 16, &fed, 30), 30);

  int64_t fed_total = 0, snap_total = 0;
  for (const auto& [key, count] : fed) fed_total += count;
  for (const auto& [key, ks] : cluster.Snapshot()) snap_total += ks.count;
  EXPECT_GT(cluster.lost_updates(), 0u);  // The kill really cost state.
  EXPECT_EQ(static_cast<uint64_t>(fed_total),
            static_cast<uint64_t>(snap_total) + cluster.lost_updates() +
                cluster.dropped_no_owner());
}

// -- Satellite: dropped_no_owner_ accounting ------------------------------

TEST(StressFluxTest, TupleForDeadUnreplicatedPartitionCountsExactlyOnce) {
  // With every node dead there is no failover target: each arriving tuple
  // increments dropped_no_owner exactly once and is never applied.
  FluxCluster::Options opts;
  opts.num_nodes = 2;
  opts.num_partitions = 8;
  opts.enable_replication = false;
  FluxCluster cluster(opts);

  ASSERT_TRUE(cluster.KillNode(0).ok());
  ASSERT_TRUE(cluster.KillNode(1).ok());
  EXPECT_FALSE(cluster.KillNode(1).ok());  // Already dead: rejected.

  constexpr size_t kTuples = 37;
  TupleVector batch;
  for (size_t i = 0; i < kTuples; ++i) {
    batch.push_back(KV(static_cast<int64_t>(i), 1.0));
  }
  cluster.Feed(batch);
  EXPECT_EQ(cluster.dropped_no_owner(), kTuples);  // Once per tuple...
  cluster.Run(8);
  EXPECT_EQ(cluster.dropped_no_owner(), kTuples);  // ...and never again.
  EXPECT_TRUE(cluster.Snapshot().empty());
  EXPECT_EQ(cluster.total_backlog(), 0u);
}

TEST(StressFluxTest, DroppedTuplesNotCountedWhileOwnersLive) {
  FluxCluster::Options opts;
  opts.num_nodes = 3;
  opts.num_partitions = 12;
  opts.enable_replication = false;
  FluxCluster cluster(opts);
  ASSERT_TRUE(cluster.KillNode(1).ok());  // Failover to live nodes.
  TupleVector batch;
  for (int64_t i = 0; i < 50; ++i) batch.push_back(KV(i, 1.0));
  cluster.Feed(batch);
  cluster.Run();
  // Live owners absorbed everything: the no-owner counter stays zero.
  EXPECT_EQ(cluster.dropped_no_owner(), 0u);
  int64_t total = 0;
  for (const auto& [key, ks] : cluster.Snapshot()) total += ks.count;
  EXPECT_EQ(total, 50);
}

}  // namespace
}  // namespace tcq
