#include "stem/stem.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

SteM::Options Indexed() {
  SteM::Options o;
  o.key_field = 0;
  return o;
}

TEST(SteMTest, InsertAndSize) {
  SteM stem("s", KV(), Indexed());
  EXPECT_TRUE(stem.empty());
  stem.Insert(KVTuple(1, 10, 1));
  stem.Insert(KVTuple(2, 20, 2));
  EXPECT_EQ(stem.size(), 2u);
  EXPECT_EQ(stem.stats().inserts, 2u);
}

TEST(SteMTest, IndexedProbeFindsMatches) {
  SteM stem("s", KV(), Indexed());
  stem.Insert(KVTuple(1, 10, 1));
  stem.Insert(KVTuple(1, 11, 2));
  stem.Insert(KVTuple(2, 20, 3));
  const Tuple probe = KVTuple(1, 99, 5);
  TupleVector matches = stem.Probe(probe, /*probe_key_field=*/0,
                                   /*probe_on_left=*/true, nullptr);
  ASSERT_EQ(matches.size(), 2u);
  for (const Tuple& m : matches) {
    EXPECT_EQ(m.arity(), 4u);
    EXPECT_EQ(m.cell(0).int64_value(), 1);   // Probe side.
    EXPECT_EQ(m.cell(2).int64_value(), 1);   // Stored side key.
  }
  EXPECT_EQ(stem.stats().matches, 2u);
}

TEST(SteMTest, ProbeOnRightConcatsStoredFirst) {
  SteM stem("s", KV(), Indexed());
  stem.Insert(KVTuple(7, 70, 1));
  const Tuple probe = KVTuple(7, 99, 5);
  TupleVector matches =
      stem.Probe(probe, 0, /*probe_on_left=*/false, nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].cell(1).int64_value(), 70);  // Stored v first.
  EXPECT_EQ(matches[0].cell(3).int64_value(), 99);  // Probe v second.
}

TEST(SteMTest, ResidualPredicateFilters) {
  SteM stem("s", KV(), Indexed());
  stem.Insert(KVTuple(1, 10, 1));
  stem.Insert(KVTuple(1, 30, 2));
  // Concat schema: probe(k,v) ++ stored(k,v); filter stored.v > 20.
  SchemaPtr concat = Schema::Concat(*KV()->WithQualifier("p"),
                                    *KV()->WithQualifier("s"));
  auto residual = Expr::Binary(BinaryOp::kGt, Expr::Column("s.v"),
                               Expr::Literal(Value::Int64(20)))
                      ->Bind(*concat);
  ASSERT_TRUE(residual.ok());
  TupleVector matches = stem.Probe(KVTuple(1, 0, 9), 0, true, *residual);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].cell(3).int64_value(), 30);
}

TEST(SteMTest, UnindexedProbeScans) {
  SteM::Options o;  // No key field.
  SteM stem("s", KV(), o);
  stem.Insert(KVTuple(1, 10, 1));
  stem.Insert(KVTuple(2, 20, 2));
  TupleVector matches = stem.Probe(KVTuple(9, 9, 9), -1, true, nullptr);
  EXPECT_EQ(matches.size(), 2u);  // No residual: everything matches.
  EXPECT_EQ(stem.stats().scanned, 2u);
}

TEST(SteMTest, ProbeWindowRestrictsByTimestamp) {
  SteM stem("s", KV(), Indexed());
  for (int64_t ts = 1; ts <= 10; ++ts) stem.Insert(KVTuple(1, ts, ts));
  TupleVector matches =
      stem.ProbeWindow(KVTuple(1, 0, 0), 0, true, nullptr, 3, 7);
  EXPECT_EQ(matches.size(), 5u);
  for (const Tuple& m : matches) {
    EXPECT_GE(m.cell(3).int64_value(), 3);
    EXPECT_LE(m.cell(3).int64_value(), 7);
  }
}

TEST(SteMTest, EvictBeforeRemovesOldState) {
  SteM stem("s", KV(), Indexed());
  for (int64_t ts = 1; ts <= 10; ++ts) stem.Insert(KVTuple(1, ts, ts));
  EXPECT_EQ(stem.EvictBefore(6), 5u);
  EXPECT_EQ(stem.size(), 5u);
  TupleVector matches = stem.Probe(KVTuple(1, 0, 0), 0, true, nullptr);
  EXPECT_EQ(matches.size(), 5u);
  for (const Tuple& m : matches) EXPECT_GE(m.cell(3).int64_value(), 6);
}

TEST(SteMTest, EvictOutsideKeepsWindowOnly) {
  SteM stem("s", KV(), Indexed());
  for (int64_t ts = 1; ts <= 10; ++ts) stem.Insert(KVTuple(ts, ts, ts));
  EXPECT_EQ(stem.EvictOutside(4, 6), 7u);
  EXPECT_EQ(stem.size(), 3u);
}

TEST(SteMTest, CapacityBoundEvictsFifo) {
  SteM::Options o = Indexed();
  o.max_tuples = 3;
  SteM stem("s", KV(), o);
  for (int64_t i = 1; i <= 5; ++i) stem.Insert(KVTuple(i, i, i));
  EXPECT_EQ(stem.size(), 3u);
  // 1 and 2 evicted; 3..5 remain.
  EXPECT_TRUE(stem.Probe(KVTuple(1, 0, 0), 0, true, nullptr).empty());
  EXPECT_EQ(stem.Probe(KVTuple(3, 0, 0), 0, true, nullptr).size(), 1u);
  EXPECT_EQ(stem.Probe(KVTuple(5, 0, 0), 0, true, nullptr).size(), 1u);
}

TEST(SteMTest, ClearResets) {
  SteM stem("s", KV(), Indexed());
  stem.Insert(KVTuple(1, 1, 1));
  stem.Clear();
  EXPECT_TRUE(stem.empty());
  EXPECT_TRUE(stem.Probe(KVTuple(1, 0, 0), 0, true, nullptr).empty());
  stem.Insert(KVTuple(1, 2, 2));
  EXPECT_EQ(stem.Probe(KVTuple(1, 0, 0), 0, true, nullptr).size(), 1u);
}

TEST(SteMTest, ForEachVisitsLiveInArrivalOrder) {
  SteM stem("s", KV(), Indexed());
  for (int64_t i = 1; i <= 4; ++i) stem.Insert(KVTuple(i, i, i));
  stem.EvictBefore(2);  // Kill tuple ts=1.
  std::vector<int64_t> seen;
  stem.ForEach([&](const Tuple& t) { seen.push_back(t.cell(0).int64_value()); });
  EXPECT_EQ(seen, (std::vector<int64_t>{2, 3, 4}));
}

TEST(SteMTest, ProbeCollectWithNullKeyScans) {
  SteM stem("s", KV(), Indexed());
  stem.Insert(KVTuple(1, 1, 1));
  stem.Insert(KVTuple(2, 2, 2));
  int n = 0;
  stem.ProbeCollect(nullptr, kMinTimestamp, kMaxTimestamp,
                    [&](const Tuple&) { ++n; });
  EXPECT_EQ(n, 2);
}

// Property: symmetric-hash join via two SteMs == reference nested loops.
class SteMJoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SteMJoinPropertyTest, SymmetricHashJoinMatchesNestedLoops) {
  Rng rng(GetParam());
  const int n = 200;
  const int64_t key_space = 20;

  SteM stem_s("S", KV(), Indexed());
  SteM stem_t("T", KV(), Indexed());
  TupleVector s_tuples, t_tuples;

  size_t joined = 0;
  for (int i = 0; i < n; ++i) {
    const bool from_s = rng.NextBool(0.5);
    Tuple t = KVTuple(static_cast<int64_t>(rng.NextBounded(key_space)),
                      i, i);
    if (from_s) {
      // Build into own SteM, then probe the other side.
      stem_s.Insert(t);
      s_tuples.push_back(t);
      joined += stem_t.Probe(t, 0, true, nullptr).size();
    } else {
      stem_t.Insert(t);
      t_tuples.push_back(t);
      joined += stem_s.Probe(t, 0, false, nullptr).size();
    }
  }

  size_t expected = 0;
  for (const Tuple& s : s_tuples) {
    for (const Tuple& t : t_tuples) {
      if (s.cell(0) == t.cell(0)) ++expected;
    }
  }
  EXPECT_EQ(joined, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteMJoinPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 42));

}  // namespace
}  // namespace tcq
