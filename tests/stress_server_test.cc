#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "core/server.h"
#include "psoup/psoup.h"
#include "testing/fault_injector.h"
#include "testing/stress_runner.h"

namespace tcq {
namespace {

SchemaPtr StreamSchema() {
  return Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kDouble, ""}});
}

Tuple Reading(int64_t ts, double v) {
  return Tuple::Make({Value::Int64(ts), Value::Double(v)}, ts);
}

ExprPtr VGt(double bound) {
  return Expr::Binary(BinaryOp::kGt, Expr::Column("v"),
                      Expr::Literal(Value::Double(bound)));
}

// -- PSoup under an at-least-once, out-of-order source --------------------

/// Brute-force reference: the timestamps (with multiplicity — duplicates
/// materialize) of every delivered tuple matching `v > bound` inside the
/// invocation window [now - width + 1, now], sorted.
std::vector<Timestamp> ReferenceAnswer(const TupleVector& delivered,
                                       double bound, Timestamp width,
                                       Timestamp now) {
  std::vector<Timestamp> expect;
  for (const Tuple& t : delivered) {
    if (t.cell(1).double_value() > bound && t.timestamp() > now - width &&
        t.timestamp() <= now) {
      expect.push_back(t.timestamp());
    }
  }
  std::sort(expect.begin(), expect.end());
  return expect;
}

TEST(StressServerTest, PSoupInvokeCorrectUnderDuplicatedAndLateInput) {
  // Acceptance: PSoup Poll/Invoke correctness with duplicated and late
  // input. The injector perturbs a clean stream (dups, late timestamps,
  // adjacent swaps); Invoke at many window positions must equal a
  // brute-force evaluation over the *delivered* multiset.
  TupleVector clean;
  for (int64_t ts = 1; ts <= 300; ++ts) {
    clean.push_back(Reading(ts, static_cast<double>(ts % 50)));
  }
  FaultInjector injector(424242);
  FaultInjector::StreamFaultProfile profile;
  profile.duplicate = 0.08;
  profile.late = 0.12;
  profile.swap = 0.08;
  profile.late_by = 7;
  const TupleVector delivered = injector.Perturb(clean, profile, /*ts_field=*/0);
  ASSERT_GT(delivered.size(), clean.size());  // Duplicates really fired.

  constexpr double kBound = 25.0;
  constexpr Timestamp kWidth = 40;
  PSoup psoup(StreamSchema());
  auto q = psoup.Register(VGt(kBound), kWidth);
  ASSERT_TRUE(q.ok());
  for (const Tuple& t : delivered) psoup.OnData(t);

  for (Timestamp now = 10; now <= 320; now += 13) {
    const auto got = psoup.Invoke(*q, now);
    ASSERT_TRUE(got.ok());
    const auto expect = ReferenceAnswer(delivered, kBound, kWidth, now);
    ASSERT_EQ(got->size(), expect.size()) << "now=" << now;
    for (size_t i = 0; i < expect.size(); ++i) {
      // Invoke returns the window in timestamp order.
      EXPECT_EQ((*got)[i].timestamp(), expect[i]) << "now=" << now;
    }
  }
}

TEST(StressServerTest, PerturbedPSoupOutcomeReproducible) {
  // Same seed -> same perturbation -> identical materialized answers.
  auto run = [] {
    TupleVector clean;
    for (int64_t ts = 1; ts <= 200; ++ts) {
      clean.push_back(Reading(ts, static_cast<double>(ts % 20)));
    }
    FaultInjector injector(7);
    FaultInjector::StreamFaultProfile profile{0.1, 0.1, 0.1, 5};
    const TupleVector delivered = injector.Perturb(clean, profile, 0);
    PSoup psoup(StreamSchema());
    auto q = psoup.Register(VGt(9.0), 50);
    EXPECT_TRUE(q.ok());
    for (const Tuple& t : delivered) psoup.OnData(t);
    std::string fp;
    for (Timestamp now = 25; now <= 200; now += 25) {
      const auto r = psoup.Invoke(*q, now);
      EXPECT_TRUE(r.ok());
      fp += std::to_string(r->size()) + ":";
      for (const Tuple& t : *r) fp += std::to_string(t.timestamp()) + ",";
      fp += ";";
    }
    return fp;
  };
  EXPECT_EQ(run(), run());
}

// -- Server ingress under faults ------------------------------------------

TEST(StressServerTest, OutOfOrderPushRejectedWithoutCorruptingState) {
  Server server;
  ASSERT_TRUE(
      server.DefineStream("S", StreamSchema(), /*timestamp_field=*/0).ok());
  auto q = server.Submit("SELECT v FROM S WHERE v > 10");
  ASSERT_TRUE(q.ok()) << q.status();

  ASSERT_TRUE(server.Push("S", Reading(5, 20)).ok());
  const Status late = server.Push("S", Reading(3, 30));  // Out of order.
  EXPECT_FALSE(late.ok());
  EXPECT_NE(late.message().find("out-of-order"), std::string::npos);

  // The rejection left the stream usable: in-order pushes still flow and
  // the rejected tuple contributed nothing.
  ASSERT_TRUE(server.Push("S", Reading(6, 4)).ok());    // No match.
  ASSERT_TRUE(server.Push("S", Reading(7, 11)).ok());   // Match.
  const auto sets = server.PollAll(*q);
  size_t rows = 0;
  for (const auto& rs : sets) rows += rs.rows.size();
  EXPECT_EQ(rows, 2u);  // ts=5 and ts=7 only; ts=3 never materialized.
}

TEST(StressServerTest, ConcurrentPushPollSubmitCancel) {
  // Real multi-threaded interleavings against one Server: each thread owns
  // a stream (per-stream timestamps stay monotonic) and its own standing
  // CACQ filter; thread 0 additionally churns Submit/Cancel to race query
  // (de)registration against ingress. Every accepted tuple must surface
  // exactly once through its owner's Poll.
  constexpr size_t kThreads = 4;
  Server server;
  std::vector<QueryId> queries(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    const std::string stream = "S" + std::to_string(i);
    ASSERT_TRUE(server.DefineStream(stream, StreamSchema(), 0).ok());
    auto q = server.Submit("SELECT v FROM " + stream + " WHERE v > -1");
    ASSERT_TRUE(q.ok()) << q.status();
    queries[i] = *q;
  }

  std::vector<int64_t> pushed(kThreads, 0);
  std::vector<std::atomic<uint64_t>> polled(kThreads);
  StressRunner runner({/*num_threads=*/kThreads,
                       /*budget=*/std::chrono::milliseconds(200),
                       /*seed=*/11});
  runner.Run([&](size_t thread, Rng& rng) {
    const std::string stream = "S" + std::to_string(thread);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        const int64_t ts = ++pushed[thread];
        ASSERT_TRUE(
            server.Push(stream, Reading(ts, static_cast<double>(thread)))
                .ok());
        break;
      }
      case 2: {
        if (auto rs = server.Poll(queries[thread])) {
          polled[thread].fetch_add(rs->rows.size());
        }
        break;
      }
      default: {
        if (thread == 0) {
          // Race registration against everyone else's ingress.
          auto q = server.Submit("SELECT v FROM S1 WHERE v > 100");
          ASSERT_TRUE(q.ok());
          ASSERT_TRUE(server.Cancel(*q).ok());
        } else {
          server.num_active_queries();
        }
        break;
      }
    }
  });

  for (size_t i = 0; i < kThreads; ++i) {
    uint64_t rows = polled[i].load();
    for (const auto& rs : server.PollAll(queries[i])) rows += rs.rows.size();
    EXPECT_EQ(rows, static_cast<uint64_t>(pushed[i]))
        << "thread " << i << ": accepted pushes and delivered results differ";
  }
}

TEST(StressServerTest, ConcurrentPushersOnDistinctStreamsConserveResults) {
  // Pure ingress bandwidth race: no polling until the end.
  constexpr size_t kThreads = 4;
  constexpr int64_t kPerThread = 400;
  Server server;
  std::vector<QueryId> queries(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    const std::string stream = "T" + std::to_string(i);
    ASSERT_TRUE(server.DefineStream(stream, StreamSchema(), 0).ok());
    auto q = server.Submit("SELECT ts FROM " + stream + " WHERE v > 0.5");
    ASSERT_TRUE(q.ok()) << q.status();
    queries[i] = *q;
  }
  StressRunner runner({kThreads, std::chrono::milliseconds(0), /*seed=*/3});
  runner.RunOnce([&](size_t thread, Rng&) {
    const std::string stream = "T" + std::to_string(thread);
    for (int64_t ts = 1; ts <= kPerThread; ++ts) {
      // Odd timestamps carry v=1 (match), even carry v=0 (no match).
      ASSERT_TRUE(
          server.Push(stream, Reading(ts, static_cast<double>(ts % 2))).ok());
    }
  });
  for (size_t i = 0; i < kThreads; ++i) {
    uint64_t rows = 0;
    for (const auto& rs : server.PollAll(queries[i])) rows += rs.rows.size();
    EXPECT_EQ(rows, static_cast<uint64_t>(kPerThread / 2));
  }
}

}  // namespace
}  // namespace tcq
