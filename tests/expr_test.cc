#include "expr/ast.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

SchemaPtr StockSchema() {
  return Schema::Make({{"timestamp", ValueType::kInt64, ""},
                       {"stockSymbol", ValueType::kString, ""},
                       {"closingPrice", ValueType::kDouble, ""}});
}

Tuple StockTuple(int64_t ts, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(ts), Value::String(sym), Value::Double(price)}, ts);
}

TEST(ExprTest, LiteralEval) {
  ExprPtr e = Expr::Literal(Value::Int64(7));
  EXPECT_EQ(e->Eval(Tuple()).int64_value(), 7);
  EXPECT_EQ(e->result_type(), ValueType::kInt64);
}

TEST(ExprTest, ColumnBindingResolvesIndexAndType) {
  SchemaPtr schema = StockSchema();
  auto bound = Expr::Column("closingPrice")->Bind(*schema);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->column_index(), 2);
  EXPECT_EQ((*bound)->result_type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ((*bound)->Eval(StockTuple(1, "MSFT", 55.0)).double_value(),
                   55.0);
}

TEST(ExprTest, UnknownColumnFailsBind) {
  auto bound = Expr::Column("volume")->Bind(*StockSchema());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(ExprTest, ComparisonPredicate) {
  // closingPrice > 50.0
  ExprPtr pred = Expr::Binary(BinaryOp::kGt, Expr::Column("closingPrice"),
                              Expr::Literal(Value::Double(50.0)));
  auto bound = pred->Bind(*StockSchema());
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->result_type(), ValueType::kBool);
  EXPECT_TRUE((*bound)->Eval(StockTuple(1, "MSFT", 55.0)).bool_value());
  EXPECT_FALSE((*bound)->Eval(StockTuple(1, "MSFT", 45.0)).bool_value());
}

TEST(ExprTest, StringEquality) {
  ExprPtr pred = Expr::Binary(BinaryOp::kEq, Expr::Column("stockSymbol"),
                              Expr::Literal(Value::String("MSFT")));
  auto bound = pred->Bind(*StockSchema());
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE((*bound)->Eval(StockTuple(1, "MSFT", 1.0)).bool_value());
  EXPECT_FALSE((*bound)->Eval(StockTuple(1, "IBM", 1.0)).bool_value());
}

TEST(ExprTest, AndOrShortCircuit) {
  ExprPtr lhs = Expr::Binary(BinaryOp::kEq, Expr::Column("stockSymbol"),
                             Expr::Literal(Value::String("MSFT")));
  ExprPtr rhs = Expr::Binary(BinaryOp::kGt, Expr::Column("closingPrice"),
                             Expr::Literal(Value::Double(50.0)));
  auto both = Expr::Binary(BinaryOp::kAnd, lhs, rhs)->Bind(*StockSchema());
  auto either = Expr::Binary(BinaryOp::kOr, lhs, rhs)->Bind(*StockSchema());
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(either.ok());
  EXPECT_TRUE((*both)->Eval(StockTuple(1, "MSFT", 51.0)).bool_value());
  EXPECT_FALSE((*both)->Eval(StockTuple(1, "MSFT", 49.0)).bool_value());
  EXPECT_TRUE((*either)->Eval(StockTuple(1, "MSFT", 49.0)).bool_value());
  EXPECT_FALSE((*either)->Eval(StockTuple(1, "IBM", 49.0)).bool_value());
}

TEST(ExprTest, ArithmeticIntAndDouble) {
  // timestamp + 1 stays integer; closingPrice * 2 is double.
  auto int_expr = Expr::Binary(BinaryOp::kAdd, Expr::Column("timestamp"),
                               Expr::Literal(Value::Int64(1)))
                      ->Bind(*StockSchema());
  ASSERT_TRUE(int_expr.ok());
  EXPECT_EQ((*int_expr)->result_type(), ValueType::kInt64);
  EXPECT_EQ((*int_expr)->Eval(StockTuple(9, "A", 0.0)).int64_value(), 10);

  auto dbl_expr = Expr::Binary(BinaryOp::kMul, Expr::Column("closingPrice"),
                               Expr::Literal(Value::Int64(2)))
                      ->Bind(*StockSchema());
  ASSERT_TRUE(dbl_expr.ok());
  EXPECT_EQ((*dbl_expr)->result_type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ((*dbl_expr)->Eval(StockTuple(1, "A", 3.5)).double_value(),
                   7.0);
}

TEST(ExprTest, DivisionByZeroYieldsNull) {
  auto e = Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value::Int64(1)),
                        Expr::Literal(Value::Int64(0)));
  EXPECT_TRUE(e->Eval(Tuple()).is_null());
}

TEST(ExprTest, ModRequiresIntegers) {
  auto bad = Expr::Binary(BinaryOp::kMod, Expr::Column("closingPrice"),
                          Expr::Literal(Value::Int64(2)))
                 ->Bind(*StockSchema());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(ExprTest, TypeErrorOnStringNumberComparison) {
  auto bad = Expr::Binary(BinaryOp::kLt, Expr::Column("stockSymbol"),
                          Expr::Literal(Value::Int64(5)))
                 ->Bind(*StockSchema());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(ExprTest, NotRequiresBool) {
  auto bad = Expr::Unary(UnaryOp::kNot, Expr::Column("closingPrice"))
                 ->Bind(*StockSchema());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
  auto good =
      Expr::Unary(UnaryOp::kNot,
                  Expr::Binary(BinaryOp::kGt, Expr::Column("closingPrice"),
                               Expr::Literal(Value::Double(50))))
          ->Bind(*StockSchema());
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE((*good)->Eval(StockTuple(1, "A", 40.0)).bool_value());
}

TEST(ExprTest, NegationOfNumeric) {
  auto e = Expr::Unary(UnaryOp::kNeg, Expr::Column("timestamp"))
               ->Bind(*StockSchema());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->Eval(StockTuple(5, "A", 0.0)).int64_value(), -5);
}

TEST(ExprTest, NullComparisonIsFalse) {
  auto e = Expr::Binary(BinaryOp::kEq, Expr::Literal(Value::Null()),
                        Expr::Literal(Value::Null()));
  EXPECT_FALSE(e->Eval(Tuple()).bool_value());
}

TEST(ExprTest, VariablesEvaluateAgainstEnv) {
  // t - 4 with t = 10 (a window bound expression).
  ExprPtr e = Expr::Binary(BinaryOp::kSub, Expr::Variable("t"),
                           Expr::Literal(Value::Int64(4)));
  VarEnv env{{"t", Value::Int64(10)}};
  EXPECT_EQ(e->EvalConst(env).int64_value(), 6);
}

TEST(ExprTest, CollectColumnsAndVariables) {
  ExprPtr e = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kGt, Expr::Column("closingPrice"),
                   Expr::Literal(Value::Double(1))),
      Expr::Binary(BinaryOp::kLe, Expr::Column("timestamp"),
                   Expr::Variable("t")));
  std::vector<std::string> cols, vars;
  e->CollectColumns(&cols);
  e->CollectVariables(&vars);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "closingPrice");
  EXPECT_EQ(cols[1], "timestamp");
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "t");
}

TEST(ExprTest, ContainsAggregate) {
  ExprPtr agg = Expr::Aggregate(AggKind::kAvg, Expr::Column("closingPrice"));
  EXPECT_TRUE(agg->ContainsAggregate());
  ExprPtr wrapped = Expr::Binary(BinaryOp::kGt, agg,
                                 Expr::Literal(Value::Double(10)));
  EXPECT_TRUE(wrapped->ContainsAggregate());
  EXPECT_FALSE(Expr::Column("x")->ContainsAggregate());
}

TEST(ExprTest, AggregateRejectedByBind) {
  ExprPtr agg = Expr::Aggregate(AggKind::kMax, Expr::Column("closingPrice"));
  EXPECT_FALSE(agg->Bind(*StockSchema()).ok());
}

TEST(ExprTest, ExtractConjunctsFlattensAndTree) {
  ExprPtr a = Expr::Binary(BinaryOp::kGt, Expr::Column("a"),
                           Expr::Literal(Value::Int64(1)));
  ExprPtr b = Expr::Binary(BinaryOp::kLt, Expr::Column("b"),
                           Expr::Literal(Value::Int64(2)));
  ExprPtr c = Expr::Binary(BinaryOp::kEq, Expr::Column("c"),
                           Expr::Literal(Value::Int64(3)));
  ExprPtr tree =
      Expr::Binary(BinaryOp::kAnd, Expr::Binary(BinaryOp::kAnd, a, b), c);
  auto conjuncts = ExtractConjuncts(tree);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->ToString(), a->ToString());
  EXPECT_EQ(conjuncts[2]->ToString(), c->ToString());
}

TEST(ExprTest, ConjunctsDoNotCrossOr) {
  ExprPtr a = Expr::Binary(BinaryOp::kGt, Expr::Column("a"),
                           Expr::Literal(Value::Int64(1)));
  ExprPtr b = Expr::Binary(BinaryOp::kLt, Expr::Column("b"),
                           Expr::Literal(Value::Int64(2)));
  ExprPtr tree = Expr::Binary(BinaryOp::kOr, a, b);
  EXPECT_EQ(ExtractConjuncts(tree).size(), 1u);
}

TEST(ExprTest, MakeConjunctionRoundTrip) {
  ExprPtr a = Expr::Binary(BinaryOp::kGt, Expr::Column("a"),
                           Expr::Literal(Value::Int64(1)));
  ExprPtr b = Expr::Binary(BinaryOp::kLt, Expr::Column("a"),
                           Expr::Literal(Value::Int64(10)));
  ExprPtr conj = MakeConjunction({a, b});
  EXPECT_EQ(ExtractConjuncts(conj).size(), 2u);
  // Empty conjunction is TRUE.
  EXPECT_TRUE(MakeConjunction({})->Eval(Tuple()).bool_value());
}

TEST(ExprTest, ToStringReadable) {
  ExprPtr e = Expr::Binary(BinaryOp::kGt, Expr::Column("closingPrice"),
                           Expr::Literal(Value::Double(50)));
  EXPECT_EQ(e->ToString(), "(closingPrice > 50)");
}

}  // namespace
}  // namespace tcq
