// Sharded-vs-single equivalence: the Flux-style exchange may hash tuples
// across any number of shard eddies, but the §2.2 routing-invariance
// obligation extends across the exchange — the emitted RESULT SET must be
// exactly what one inline CacqEngine produces, whatever the shard count,
// batch boundary, policy seed or query registration order. ScheduleExplorer
// drives those dimensions over the same 12 seeds as the batch-equivalence
// suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cacq/sharded_engine.h"
#include "core/server.h"
#include "ingress/sources.h"
#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

/// One labelled emission: the label is the query's position in the
/// workload (stable across registration orders), not its engine QueryId.
using Labelled = std::pair<size_t, std::string>;

std::string Fingerprint(std::vector<Labelled> rows) {
  std::sort(rows.begin(), rows.end());
  std::ostringstream fp;
  for (const Labelled& r : rows) fp << "q" << r.first << "|" << r.second
                                    << "\n";
  return fp.str();
}

struct Workload {
  /// (name, schema, partition column), declaration order fixed.
  std::vector<std::tuple<std::string, SchemaPtr, size_t>> streams;
  std::vector<CacqQuerySpec> queries;
  /// Producer feed: same-stream batches, in push order.
  std::vector<std::pair<std::string, std::vector<Tuple>>> feed;
};

/// Reference: the whole workload through one inline CacqEngine.
std::string RunInline(const Workload& w) {
  CacqEngine engine;
  for (const auto& [name, schema, col] : w.streams) {
    EXPECT_TRUE(engine.AddStream(name, schema).ok());
  }
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  engine.SetSink([&](QueryId q, const Tuple& t) {
    rows.emplace_back(label.at(q), t.ToString());
  });
  for (size_t i = 0; i < w.queries.size(); ++i) {
    auto q = engine.AddQuery(w.queries[i]);
    EXPECT_TRUE(q.ok()) << q.status();
    label[*q] = i;
  }
  for (const auto& [stream, batch] : w.feed) {
    EXPECT_TRUE(engine.InjectBatch(stream, batch).ok());
  }
  return Fingerprint(std::move(rows));
}

/// The same workload through a ShardedEngine: `num_shards` worker threads,
/// queries registered in `order`, batches re-sliced to `chunk` tuples.
std::string RunSharded(const Workload& w, size_t num_shards, uint64_t seed,
                       const std::vector<size_t>& order, size_t chunk) {
  ShardedEngine::Options opts;
  opts.num_shards = num_shards;
  opts.seed = seed;
  ShardedEngine engine(opts);
  for (const auto& [name, schema, col] : w.streams) {
    EXPECT_TRUE(engine.AddStream(name, schema, col).ok());
  }
  std::mutex mu;
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [q, t] : batch) {
      rows.emplace_back(label.at(q), t.ToString());
    }
  });
  engine.Start();
  for (size_t i : order) {
    auto q = engine.AddQuery(w.queries[i]);
    EXPECT_TRUE(q.ok()) << q.status();
    std::lock_guard<std::mutex> lock(mu);
    label[*q] = i;
  }
  for (const auto& [stream, batch] : w.feed) {
    for (size_t at = 0; at < batch.size(); at += chunk) {
      const size_t n = std::min(chunk, batch.size() - at);
      std::vector<Tuple> slice(batch.begin() + static_cast<ptrdiff_t>(at),
                               batch.begin() + static_cast<ptrdiff_t>(at + n));
      EXPECT_TRUE(engine.PushBatch(stream, std::move(slice)).ok());
    }
  }
  engine.Quiesce();
  engine.Stop();
  std::lock_guard<std::mutex> lock(mu);
  return Fingerprint(std::move(rows));
}

Workload FilterWorkload() {
  Workload w;
  w.streams.emplace_back("S", KV(), /*partition col=*/0);
  auto filter = [](ExprPtr e) {
    CacqQuerySpec q;
    q.sources = {"S"};
    q.where = std::move(e);
    return q;
  };
  w.queries.push_back(filter(Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                                          Expr::Literal(Value::Int64(10)))));
  w.queries.push_back(filter(Expr::Binary(BinaryOp::kLt, Expr::Column("k"),
                                          Expr::Literal(Value::Int64(40)))));
  w.queries.push_back(filter(Expr::Binary(
      BinaryOp::kEq,
      Expr::Binary(BinaryOp::kMod, Expr::Column("v"),
                   Expr::Literal(Value::Int64(3))),
      Expr::Literal(Value::Int64(0)))));
  std::vector<Tuple> batch;
  for (int64_t k = 0; k < 60; ++k) batch.push_back(KVTuple(k, k * 7, k + 1));
  w.feed.emplace_back("S", std::move(batch));
  return w;
}

Workload JoinWorkload() {
  Workload w;
  // Both streams partitioned on their join column k.
  w.streams.emplace_back("A", KV(), 0);
  w.streams.emplace_back("B", KV(), 0);
  auto join = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                           Expr::Column("B.k"));
  CacqQuerySpec q0;
  q0.sources = {"A", "B"};
  q0.where = join;
  CacqQuerySpec q1;
  q1.sources = {"A", "B"};
  q1.where = Expr::Binary(
      BinaryOp::kAnd, join,
      Expr::Binary(BinaryOp::kGt, Expr::Column("A.v"),
                   Expr::Literal(Value::Int64(10))));
  w.queries.push_back(std::move(q0));
  w.queries.push_back(std::move(q1));
  // Interleaved A/B batches over a small key domain, so SteM state built
  // by early batches joins against arrivals many batches later.
  Timestamp ts = 1;
  for (int round = 0; round < 8; ++round) {
    std::vector<Tuple> a, b;
    for (int i = 0; i < 10; ++i) {
      a.push_back(KVTuple((round * 3 + i) % 17, round * 10 + i, ts++));
      b.push_back(KVTuple((round * 5 + i * 2) % 17, i, ts++));
    }
    w.feed.emplace_back("A", std::move(a));
    w.feed.emplace_back("B", std::move(b));
  }
  return w;
}

TEST(ShardedEquivalenceTest, FiltersMatchInlineAcrossSchedules) {
  const Workload w = FilterWorkload();
  const std::string expected = RunInline(w);
  EXPECT_FALSE(expected.empty());

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        w.queries.size(), [&](const ScheduleExplorer::Schedule& schedule) {
          // Explorer dimensions: registration order, batch boundary (the
          // quantum), per-trial policy seed — plus the shard count.
          const size_t shards = 1 + schedule.trial_seed % 4;  // 1..4.
          const std::string got =
              RunSharded(w, shards, schedule.trial_seed + 1, schedule.order,
                         schedule.quantum);
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", shards " << shards << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(ShardedEquivalenceTest, PartitionedJoinsMatchInlineAcrossSchedules) {
  const Workload w = JoinWorkload();
  const std::string expected = RunInline(w);
  EXPECT_FALSE(expected.empty());

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        w.queries.size(), [&](const ScheduleExplorer::Schedule& schedule) {
          const size_t shards = 2 + schedule.trial_seed % 3;  // 2..4.
          const std::string got =
              RunSharded(w, shards, schedule.trial_seed + 1, schedule.order,
                         schedule.quantum);
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", shards " << shards << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(ShardedEquivalenceTest, DynamicFoldInMatchesInline) {
  // A query registered mid-stream sees exactly the tuples pushed after
  // AddQuery returns — on every shard, exactly like the inline engine.
  Workload w = FilterWorkload();
  const auto late_query = w.queries.back();
  w.queries.pop_back();

  auto run = [&](auto&& push_engine, auto&& add_query) {
    const auto& batch = w.feed[0].second;
    const size_t half = batch.size() / 2;
    push_engine(std::vector<Tuple>(batch.begin(),
                                   batch.begin() + static_cast<ptrdiff_t>(half)));
    add_query();
    push_engine(std::vector<Tuple>(batch.begin() + static_cast<ptrdiff_t>(half),
                                   batch.end()));
  };

  // Inline reference.
  std::vector<Labelled> inline_rows;
  std::map<QueryId, size_t> inline_label;
  CacqEngine inline_engine;
  ASSERT_TRUE(inline_engine.AddStream("S", KV()).ok());
  inline_engine.SetSink([&](QueryId q, const Tuple& t) {
    inline_rows.emplace_back(inline_label.at(q), t.ToString());
  });
  for (size_t i = 0; i < w.queries.size(); ++i) {
    inline_label[*inline_engine.AddQuery(w.queries[i])] = i;
  }
  run([&](std::vector<Tuple> b) {
        ASSERT_TRUE(inline_engine.InjectBatch("S", b).ok());
      },
      [&] { inline_label[*inline_engine.AddQuery(late_query)] = 99; });
  const std::string expected = Fingerprint(std::move(inline_rows));

  // Sharded, 4 workers.
  ShardedEngine::Options opts;
  opts.num_shards = 4;
  ShardedEngine sharded(opts);
  ASSERT_TRUE(sharded.AddStream("S", KV(), 0).ok());
  std::mutex mu;
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  sharded.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [q, t] : batch) rows.emplace_back(label.at(q),
                                                       t.ToString());
  });
  sharded.Start();
  for (size_t i = 0; i < w.queries.size(); ++i) {
    auto q = sharded.AddQuery(w.queries[i]);
    ASSERT_TRUE(q.ok());
    std::lock_guard<std::mutex> lock(mu);
    label[*q] = i;
  }
  run(
      [&](std::vector<Tuple> b) {
        ASSERT_TRUE(sharded.PushBatch("S", std::move(b)).ok());
      },
      [&] {
        auto q = sharded.AddQuery(late_query);
        ASSERT_TRUE(q.ok());
        std::lock_guard<std::mutex> lock(mu);
        label[*q] = 99;
      });
  sharded.Quiesce();
  sharded.Stop();
  EXPECT_EQ(Fingerprint(std::move(rows)), expected);
}

TEST(ShardedEquivalenceTest, RejectsJoinOffThePartitionColumns) {
  ShardedEngine::Options opts;
  opts.num_shards = 2;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("A", KV(), /*partition col=*/0).ok());
  ASSERT_TRUE(engine.AddStream("B", KV(), /*partition col=*/0).ok());
  CacqQuerySpec bad;  // Joins on v while the exchange hashes on k.
  bad.sources = {"A", "B"};
  bad.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.v"),
                           Expr::Column("B.v"));
  EXPECT_EQ(engine.AddQuery(bad).status().code(),
            StatusCode::kInvalidArgument);
  // The matching join is accepted.
  CacqQuerySpec good;
  good.sources = {"A", "B"};
  good.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  EXPECT_TRUE(engine.AddQuery(good).ok());
}

TEST(ShardedEquivalenceTest, ShardStatsAccountForEveryTuple) {
  const Workload w = FilterWorkload();
  ShardedEngine::Options opts;
  opts.num_shards = 4;
  ShardedEngine engine(opts);
  for (const auto& [name, schema, col] : w.streams) {
    ASSERT_TRUE(engine.AddStream(name, schema, col).ok());
  }
  engine.Start();
  for (const auto& q : w.queries) ASSERT_TRUE(engine.AddQuery(q).ok());
  size_t total = 0;
  for (const auto& [stream, batch] : w.feed) {
    total += batch.size();
    ASSERT_TRUE(engine.PushBatch(stream, std::vector<Tuple>(batch)).ok());
  }
  engine.Quiesce();
  uint64_t routed = 0, processed = 0;
  size_t populated = 0;
  for (const ShardedEngine::ShardStats& s : engine.shard_stats()) {
    routed += s.routed;
    processed += s.processed;
    EXPECT_EQ(s.queue_depth, 0u);  // Quiesced: nothing in flight.
    if (s.routed > 0) ++populated;
  }
  EXPECT_EQ(routed, total);
  EXPECT_EQ(processed, total);
  // 60 distinct keys over 4 shards: the hash must actually spread them.
  EXPECT_GT(populated, 1u);
  engine.Stop();
}

// --- Server-level equivalence ----------------------------------------------

Tuple Stock(int64_t day, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(day), Value::String(sym), Value::Double(price)}, day);
}

TEST(ShardedEquivalenceTest, ServerShardedMatchesInlineServer) {
  // The full facade: standing CACQ filters + a windowed aggregate on a
  // server with cacq_shards=4 must answer exactly like the default
  // inline server. (The windowed path is shard-oblivious by design.)
  auto build = [](size_t shards) {
    Server::Options o;
    o.cacq_shards = shards;
    return o;
  };
  auto run = [&](Server& server) {
    EXPECT_TRUE(server
                    .DefineStream("ClosingStockPrices",
                                  StockTickerSource::MakeSchema(),
                                  /*timestamp_field=*/0,
                                  /*partition_field=*/1)  // stockSymbol.
                    .ok());
    std::vector<QueryId> qs;
    auto add = [&](const std::string& sql) {
      auto q = server.Submit(sql);
      EXPECT_TRUE(q.ok()) << q.status();
      qs.push_back(*q);
    };
    add("SELECT closingPrice FROM ClosingStockPrices "
        "WHERE stockSymbol = 'MSFT' AND closingPrice > 45");
    add("SELECT timestamp FROM ClosingStockPrices WHERE closingPrice < 44");
    add("SELECT AVG(closingPrice) FROM ClosingStockPrices "
        "for (t = ST; true; t += 5) { "
        "WindowIs(ClosingStockPrices, t - 4, t); }");

    const char* symbols[] = {"MSFT", "IBM", "ORCL"};
    for (int64_t d = 1; d <= 30; ++d) {
      std::vector<Tuple> batch;
      for (const char* sym : symbols) {
        batch.push_back(Stock(d, sym, 40.0 + ((d * 3 + sym[0]) % 10)));
      }
      EXPECT_TRUE(
          server.PushBatch("ClosingStockPrices", std::move(batch)).ok());
    }
    server.Quiesce();

    // Per-query sorted multiset: sharded delivery order is not defined.
    std::ostringstream fp;
    for (QueryId q : qs) {
      std::vector<std::string> rows;
      for (const ResultSet& rs : server.PollAll(q)) {
        for (const Tuple& row : rs.rows) rows.push_back(row.ToString());
      }
      std::sort(rows.begin(), rows.end());
      fp << "q" << q << ":";
      for (const std::string& r : rows) fp << r << ";";
      fp << "\n";
    }
    return fp.str();
  };

  Server inline_server(build(1));
  Server sharded_server(build(4));
  const std::string expected = run(inline_server);
  EXPECT_NE(expected.find("q0:"), std::string::npos);
  EXPECT_EQ(run(sharded_server), expected);
}

TEST(ShardedEquivalenceTest, ServerShardedCancelStopsDelivery) {
  Server::Options o;
  o.cacq_shards = 4;
  Server server(o);
  ASSERT_TRUE(server
                  .DefineStream("ClosingStockPrices",
                                StockTickerSource::MakeSchema(), 0, 1)
                  .ok());
  auto q = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 0");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> batch;
  for (int64_t d = 1; d <= 16; ++d) batch.push_back(Stock(d, "MSFT", 50.0));
  ASSERT_TRUE(server.PushBatch("ClosingStockPrices", std::move(batch)).ok());
  server.Quiesce();
  EXPECT_EQ(server.PollAll(*q).size(), 16u);

  ASSERT_TRUE(server.Cancel(*q).ok());
  std::vector<Tuple> more;
  for (int64_t d = 17; d <= 24; ++d) more.push_back(Stock(d, "MSFT", 50.0));
  ASSERT_TRUE(server.PushBatch("ClosingStockPrices", std::move(more)).ok());
  server.Quiesce();
  EXPECT_TRUE(server.PollAll(*q).empty());
}

}  // namespace
}  // namespace tcq
