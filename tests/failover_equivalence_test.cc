// Failover equivalence: the process-pair engine may lose any primary at
// any feed slice and promote its standby, but the §2.2 routing-invariance
// obligation extends across promotions — the emitted RESULT SET must stay
// byte-identical to one inline CacqEngine, with zero lost and zero
// duplicated rows. This suite mirrors sharded_equivalence_test.cc (same
// 12 explorer seeds, same workloads) and additionally kills a rotating
// shard after every third feed slice.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cacq/sharded_engine.h"
#include "testing/crash_injector.h"
#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

using Labelled = std::pair<size_t, std::string>;

std::string Fingerprint(std::vector<Labelled> rows) {
  std::sort(rows.begin(), rows.end());
  std::ostringstream fp;
  for (const Labelled& r : rows) fp << "q" << r.first << "|" << r.second
                                    << "\n";
  return fp.str();
}

struct Workload {
  std::vector<std::tuple<std::string, SchemaPtr, size_t>> streams;
  std::vector<CacqQuerySpec> queries;
  std::vector<std::pair<std::string, std::vector<Tuple>>> feed;
};

std::string RunInline(const Workload& w) {
  CacqEngine engine;
  for (const auto& [name, schema, col] : w.streams) {
    (void)col;
    EXPECT_TRUE(engine.AddStream(name, schema).ok());
  }
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  engine.SetSink([&](QueryId q, const Tuple& t) {
    rows.emplace_back(label.at(q), t.ToString());
  });
  for (size_t i = 0; i < w.queries.size(); ++i) {
    auto q = engine.AddQuery(w.queries[i]);
    EXPECT_TRUE(q.ok()) << q.status();
    label[*q] = i;
  }
  for (const auto& [stream, batch] : w.feed) {
    EXPECT_TRUE(engine.InjectBatch(stream, batch).ok());
  }
  return Fingerprint(std::move(rows));
}

/// RunSharded from the base suite, plus replication and a crash after
/// every third feed slice: kill a rotating shard, wait for the worker to
/// die, promote the standby, keep feeding. The checkpoint cadence is
/// varied per trial so some recoveries replay long changelog tails and
/// some restore fresh snapshots.
std::string RunShardedWithCrashes(const Workload& w, size_t num_shards,
                                  uint64_t seed,
                                  const std::vector<size_t>& order,
                                  size_t chunk) {
  ShardedEngine::Options opts;
  opts.num_shards = num_shards;
  opts.seed = seed;
  opts.num_replicas = 1;
  opts.checkpoint_interval = 1 + seed % 7;
  ShardedEngine engine(opts);
  for (const auto& [name, schema, col] : w.streams) {
    EXPECT_TRUE(engine.AddStream(name, schema, col).ok());
  }
  std::mutex mu;
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [q, t] : batch) {
      rows.emplace_back(label.at(q), t.ToString());
    }
  });
  engine.Start();
  // tcq.ha.* counters are process-global (telemetry registry), so trials
  // in one process see each other's failovers: assert on the delta.
  const uint64_t failovers_before = engine.ha_stats().failovers;
  // All queries are registered before the first kill: standby promotion
  // rebuilds registrations from the engine's query history, which assumes
  // no AddQuery races a dead primary (see DESIGN.md §13 limitations).
  for (size_t i : order) {
    auto q = engine.AddQuery(w.queries[i]);
    EXPECT_TRUE(q.ok()) << q.status();
    std::lock_guard<std::mutex> lock(mu);
    label[*q] = i;
  }
  size_t slice = 0;
  size_t crashes = 0;
  for (const auto& [stream, batch] : w.feed) {
    for (size_t at = 0; at < batch.size(); at += chunk) {
      const size_t n = std::min(chunk, batch.size() - at);
      std::vector<Tuple> slab(batch.begin() + static_cast<ptrdiff_t>(at),
                              batch.begin() + static_cast<ptrdiff_t>(at + n));
      EXPECT_TRUE(engine.PushBatch(stream, std::move(slab)).ok());
      if (++slice % 3 == 0) {
        CrashInjector::CrashAndRecover(&engine,
                                       (crashes + seed) % num_shards);
        ++crashes;
      }
    }
  }
  EXPECT_TRUE(engine.Quiesce().ok());
  EXPECT_EQ(engine.ha_stats().failovers - failovers_before, crashes);
  engine.Stop();
  std::lock_guard<std::mutex> lock(mu);
  return Fingerprint(std::move(rows));
}

Workload FilterWorkload() {
  Workload w;
  w.streams.emplace_back("S", KV(), /*partition col=*/0);
  auto filter = [](ExprPtr e) {
    CacqQuerySpec q;
    q.sources = {"S"};
    q.where = std::move(e);
    return q;
  };
  w.queries.push_back(filter(Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                                          Expr::Literal(Value::Int64(10)))));
  w.queries.push_back(filter(Expr::Binary(BinaryOp::kLt, Expr::Column("k"),
                                          Expr::Literal(Value::Int64(40)))));
  w.queries.push_back(filter(Expr::Binary(
      BinaryOp::kEq,
      Expr::Binary(BinaryOp::kMod, Expr::Column("v"),
                   Expr::Literal(Value::Int64(3))),
      Expr::Literal(Value::Int64(0)))));
  std::vector<Tuple> batch;
  for (int64_t k = 0; k < 60; ++k) batch.push_back(KVTuple(k, k * 7, k + 1));
  w.feed.emplace_back("S", std::move(batch));
  return w;
}

Workload JoinWorkload() {
  Workload w;
  w.streams.emplace_back("A", KV(), 0);
  w.streams.emplace_back("B", KV(), 0);
  auto join = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                           Expr::Column("B.k"));
  CacqQuerySpec q0;
  q0.sources = {"A", "B"};
  q0.where = join;
  CacqQuerySpec q1;
  q1.sources = {"A", "B"};
  q1.where = Expr::Binary(
      BinaryOp::kAnd, join,
      Expr::Binary(BinaryOp::kGt, Expr::Column("A.v"),
                   Expr::Literal(Value::Int64(10))));
  w.queries.push_back(std::move(q0));
  w.queries.push_back(std::move(q1));
  // Interleaved A/B batches over a small key domain: SteM state built
  // well before a crash must survive into the promoted standby to join
  // against arrivals fed well after it.
  Timestamp ts = 1;
  for (int round = 0; round < 8; ++round) {
    std::vector<Tuple> a, b;
    for (int i = 0; i < 10; ++i) {
      a.push_back(KVTuple((round * 3 + i) % 17, round * 10 + i, ts++));
      b.push_back(KVTuple((round * 5 + i * 2) % 17, i, ts++));
    }
    w.feed.emplace_back("A", std::move(a));
    w.feed.emplace_back("B", std::move(b));
  }
  return w;
}

/// Fewer trials per seed than the base suite: every trial here performs
/// up to feed/3 full kill/promote cycles, so six schedules per seed keeps
/// the suite inside the unit-test budget while still crossing every
/// quantum (including 1) and both shard-count ranges.
ScheduleExplorer::Options ExplorerOptions() {
  ScheduleExplorer::Options o;
  o.trials = 6;
  return o;
}

TEST(FailoverEquivalenceTest, FiltersSurviveRotatingShardCrashes) {
  const Workload w = FilterWorkload();
  const std::string expected = RunInline(w);
  EXPECT_FALSE(expected.empty());

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed, ExplorerOptions());
    auto common = explorer.Explore(
        w.queries.size(), [&](const ScheduleExplorer::Schedule& schedule) {
          const size_t shards = 1 + schedule.trial_seed % 4;  // 1..4.
          const std::string got =
              RunShardedWithCrashes(w, shards, schedule.trial_seed + 1,
                                    schedule.order, schedule.quantum);
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", shards " << shards << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(FailoverEquivalenceTest, PartitionedJoinsSurviveRotatingShardCrashes) {
  const Workload w = JoinWorkload();
  const std::string expected = RunInline(w);
  EXPECT_FALSE(expected.empty());

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed, ExplorerOptions());
    auto common = explorer.Explore(
        w.queries.size(), [&](const ScheduleExplorer::Schedule& schedule) {
          const size_t shards = 2 + schedule.trial_seed % 3;  // 2..4.
          const std::string got =
              RunShardedWithCrashes(w, shards, schedule.trial_seed + 1,
                                    schedule.order, schedule.quantum);
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", shards " << shards << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

}  // namespace
}  // namespace tcq
