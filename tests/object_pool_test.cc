#include "common/object_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <new>
#include <thread>
#include <vector>

#include "cacq/engine.h"
#include "common/bitset.h"
#include "tuple/tuple.h"

// This binary replaces the global allocation functions with counting
// wrappers, so the steady-state zero-allocation contract of DESIGN.md §14
// can be asserted directly: after warmup, Inject at 10k registered
// selection CQs must perform ZERO operator-new calls — every block the
// hot path touches (tuple cells, lineage bitset overflow, eddy queue
// chunks) is recycled through BlockPool.
namespace {
std::atomic<uint64_t> g_new_calls{0};
}  // namespace

void* operator new(size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(size_t n, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void* operator new[](size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace tcq {
namespace {

TEST(BlockPoolTest, RecyclesSameSizeClass) {
  BlockPool::DrainLocalForTest();
  const BlockPool::Stats before = BlockPool::LocalStats();

  void* a = BlockPool::Alloc(100);  // Class for 100 -> 128-byte block.
  BlockPool::Free(a, 100);
  void* b = BlockPool::Alloc(70);  // Same 128-byte class (65..128).
  EXPECT_EQ(b, a);
  BlockPool::Free(b, 70);

  const BlockPool::Stats after = BlockPool::LocalStats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.returns - before.returns, 2u);
}

TEST(BlockPoolTest, DistinctClassesDoNotShareBlocks) {
  BlockPool::DrainLocalForTest();
  void* a = BlockPool::Alloc(64);
  BlockPool::Free(a, 64);
  void* b = BlockPool::Alloc(65);  // Next class up; must not reuse a.
  EXPECT_NE(b, a);
  BlockPool::Free(b, 65);
  BlockPool::DrainLocalForTest();
}

TEST(BlockPoolTest, OversizeBypassesPool) {
  const BlockPool::Stats before = BlockPool::LocalStats();
  void* p = BlockPool::Alloc(BlockPool::kMaxBytes + 1);
  ASSERT_NE(p, nullptr);
  BlockPool::Free(p, BlockPool::kMaxBytes + 1);
  const BlockPool::Stats after = BlockPool::LocalStats();
  EXPECT_EQ(after.oversize - before.oversize, 1u);
  EXPECT_EQ(after.returns - before.returns, 0u);
}

TEST(BlockPoolTest, RetentionIsBounded) {
  BlockPool::DrainLocalForTest();
  const size_t n = BlockPool::kMaxFreePerClass + 10;
  std::vector<void*> blocks;
  for (size_t i = 0; i < n; ++i) blocks.push_back(BlockPool::Alloc(64));
  const BlockPool::Stats before = BlockPool::LocalStats();
  for (void* p : blocks) BlockPool::Free(p, 64);
  const BlockPool::Stats after = BlockPool::LocalStats();
  EXPECT_EQ(after.returns - before.returns, BlockPool::kMaxFreePerClass);
  EXPECT_EQ(after.drops - before.drops, 10u);
  BlockPool::DrainLocalForTest();
}

TEST(BlockPoolTest, CrossThreadFreeIsSafe) {
  // Allocate here, free on another thread (the sharded exchange moves
  // tuples between shard threads all the time).
  void* p = BlockPool::Alloc(256);
  std::thread t([p] { BlockPool::Free(p, 256); });
  t.join();
  // And the reverse: a block born on a worker dies here.
  void* q = nullptr;
  std::thread t2([&q] { q = BlockPool::Alloc(256); });
  t2.join();
  BlockPool::Free(q, 256);
}

TEST(BlockPoolTest, GlobalStatsAggregateAcrossThreads) {
  const BlockPool::Stats before = BlockPool::GlobalStats();
  std::thread t([] {
    for (int i = 0; i < 8; ++i) {
      void* p = BlockPool::Alloc(64);
      BlockPool::Free(p, 64);
    }
    // Thread exit drains the pool and flushes this thread's tallies.
  });
  t.join();
  const BlockPool::Stats after = BlockPool::GlobalStats();
  EXPECT_GE(after.misses - before.misses, 1u);
  EXPECT_GE(after.hits - before.hits, 7u);
}

TEST(PoolAllocatorTest, VectorRoundTrip) {
  std::vector<uint64_t, PoolAllocator<uint64_t>> v;
  for (uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
}

TEST(PoolAllocatorTest, BitsetOverflowComesFromPool) {
  // Prime the overflow-word size class with a couple of live-at-once
  // spilled bitsets (also grows the freelist's own capacity), then
  // measure a construct+copy cycle in isolation.
  {
    SmallBitset warm1(10000), warm2(10000);
    warm1.Set(9999);
    warm2.Set(1);
  }
  const BlockPool::Stats before = BlockPool::LocalStats();
  const uint64_t news_before = g_new_calls.load(std::memory_order_relaxed);
  {
    SmallBitset b(10000);
    b.Set(137);
    SmallBitset copy = b;  // Copy construction reuses the pooled class.
    ASSERT_TRUE(copy.Test(137));
  }
  const uint64_t news_after = g_new_calls.load(std::memory_order_relaxed);
  const BlockPool::Stats after = BlockPool::LocalStats();
  EXPECT_EQ(news_after - news_before, 0u);
  EXPECT_GE(after.hits - before.hits, 2u);
  EXPECT_EQ(after.misses - before.misses, 0u);
}

TEST(PoolAllocatorTest, TupleCellsComeFromPool) {
  // Build is the hot-path factory (Concat/Project/Widen); Make takes a
  // std::vector<Value> whose own buffer is a caller-side allocation.
  auto build = [] {
    return Tuple::Build(2, /*ts=*/0, [](Value* cells) {
      cells[0] = Value::Int64(3);
      cells[1] = Value::Int64(4);
    });
  };
  {
    Tuple warm1 = build(), warm2 = build();
  }
  const BlockPool::Stats before = BlockPool::LocalStats();
  const uint64_t news_before = g_new_calls.load(std::memory_order_relaxed);
  {
    Tuple t = build();
    ASSERT_EQ(t.arity(), 2u);
  }
  const uint64_t news_after = g_new_calls.load(std::memory_order_relaxed);
  const BlockPool::Stats after = BlockPool::LocalStats();
  EXPECT_EQ(news_after - news_before, 0u);
  EXPECT_GE(after.hits - before.hits, 1u);
  EXPECT_EQ(after.misses - before.misses, 0u);
}

// The acceptance gate: at 10 000 registered selection CQs, a steady-state
// Inject makes zero trips to the system allocator — every tuple build,
// lineage bitset spill (3 per RoutedTuple at 10k queries = 157 words
// each), filter application, routing decision, and delivery runs off
// pooled or preallocated memory.
TEST(ZeroAllocSteadyStateTest, InjectAt10kSelectionQueries) {
  constexpr size_t kQueries = 10000;
  CacqEngine engine;
  ASSERT_TRUE(engine
                  .AddStream("S", Schema::Make(
                                      {{"price", ValueType::kInt64, ""},
                                       {"id", ValueType::kInt64, ""}}))
                  .ok());
  uint64_t hits = 0;
  engine.SetSink([&hits](QueryId, const Tuple&) { ++hits; });
  for (size_t i = 0; i < kQueries; ++i) {
    CacqQuerySpec spec;
    spec.sources = {"S"};
    spec.where = Expr::Binary(
        BinaryOp::kGt, Expr::Column("price"),
        Expr::Literal(Value::Int64(static_cast<int64_t>(i % 100))));
    ASSERT_TRUE(engine.AddQuery(spec).ok());
  }

  const Tuple probe =
      Tuple::Make({Value::Int64(50), Value::Int64(7)}, /*ts=*/1);
  // Warmup: pays the lazy index compile, fills the pool's size classes,
  // grows every scratch vector/hash table to its steady-state footprint.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(engine.Inject("S", probe).ok());
  }

  const uint64_t hits_before = hits;
  const uint64_t news_before = g_new_calls.load(std::memory_order_relaxed);
  const BlockPool::Stats pool_before = BlockPool::LocalStats();
  constexpr int kSteadyInjects = 256;
  for (int i = 0; i < kSteadyInjects; ++i) {
    engine.Inject("S", probe);
  }
  const uint64_t news_after = g_new_calls.load(std::memory_order_relaxed);
  const BlockPool::Stats pool_after = BlockPool::LocalStats();

  // The work actually happened: 50 of the 100 distinct constants pass
  // price=50, each constant owning 100 queries.
  EXPECT_EQ(hits - hits_before, uint64_t{kSteadyInjects} * 50 * 100);
  // And it happened without a single system allocation or pool miss.
  EXPECT_EQ(news_after - news_before, 0u);
  EXPECT_EQ(pool_after.misses - pool_before.misses, 0u);
  EXPECT_EQ(pool_after.oversize - pool_before.oversize, 0u);
  // The pool did serve the per-tuple lineage spills.
  EXPECT_GT(pool_after.hits - pool_before.hits, 0u);
}

}  // namespace
}  // namespace tcq
