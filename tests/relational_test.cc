#include "modules/relational.h"

#include <gtest/gtest.h>

#include "fjords/scheduler.h"
#include "modules/juggle.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple Row(int64_t k, int64_t v, Timestamp ts = 0) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

TupleQueuePtr Q(size_t cap = 4096) {
  return std::make_shared<TupleQueue>(PushQueueOptions(cap));
}

/// Feeds rows then closes.
void Feed(const TupleQueuePtr& q, const TupleVector& rows) {
  for (const Tuple& t : rows) ASSERT_TRUE(q->Enqueue(t));
  q->Close();
}

TupleVector DrainAll(const TupleQueuePtr& q) {
  TupleVector out;
  while (auto t = q->Dequeue()) out.push_back(std::move(*t));
  return out;
}

void RunModule(FjordModule* m) {
  while (m->Step(64) != FjordModule::StepResult::kDone) {
  }
}

TEST(RelationalTest, FilterModulePasses) {
  auto in = Q(), out = Q();
  auto pred = Expr::Binary(BinaryOp::kGt, Expr::Column("v"),
                           Expr::Literal(Value::Int64(5)))
                  ->Bind(*KV());
  ASSERT_TRUE(pred.ok());
  FilterModule filter("f", in, out, *pred);
  Feed(in, {Row(1, 3), Row(2, 7), Row(3, 9), Row(4, 1)});
  RunModule(&filter);
  TupleVector result = DrainAll(out);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(filter.in_count(), 4u);
  EXPECT_EQ(filter.out_count(), 2u);
  EXPECT_TRUE(out->closed());
}

TEST(RelationalTest, ProjectModuleReorders) {
  auto in = Q(), out = Q();
  ProjectModule proj("p", in, out, {1, 0});
  Feed(in, {Row(1, 10)});
  RunModule(&proj);
  TupleVector result = DrainAll(out);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].cell(0).int64_value(), 10);
  EXPECT_EQ(result[0].cell(1).int64_value(), 1);
}

TEST(RelationalTest, UnionMergesAllInputs) {
  auto in1 = Q(), in2 = Q(), in3 = Q(), out = Q();
  UnionModule u("u", {in1, in2, in3}, out);
  Feed(in1, {Row(1, 1), Row(2, 2)});
  Feed(in2, {Row(3, 3)});
  Feed(in3, {});
  RunModule(&u);
  EXPECT_EQ(DrainAll(out).size(), 3u);
  EXPECT_EQ(u.forwarded(), 3u);
}

TEST(RelationalTest, UnionSurvivesStalledInput) {
  // One input never closes but the union must still forward the other's
  // tuples (non-blocking discipline).
  auto live = Q(), stalled = Q(), out = Q();
  UnionModule u("u", {stalled, live}, out);
  ASSERT_TRUE(live->Enqueue(Row(1, 1)));
  EXPECT_EQ(u.Step(64), FjordModule::StepResult::kDidWork);
  EXPECT_EQ(out->Size(), 1u);
  // Stalled and empty: idle, not done, not blocked.
  EXPECT_EQ(u.Step(64), FjordModule::StepResult::kIdle);
  live->Close();
  stalled->Close();
  EXPECT_EQ(u.Step(64), FjordModule::StepResult::kDone);
}

TEST(RelationalTest, DupElim) {
  auto in = Q(), out = Q();
  DupElimModule d("d", in, out);
  Feed(in, {Row(1, 1, 10), Row(1, 1, 20), Row(2, 2, 30), Row(1, 1, 40)});
  RunModule(&d);
  // Duplicates by cell values (timestamps differ but don't count).
  EXPECT_EQ(DrainAll(out).size(), 2u);
  EXPECT_EQ(d.distinct_count(), 2u);
}

TEST(RelationalTest, PipelineUnderScheduler) {
  auto q1 = Q(), q2 = Q(16), q3 = Q();
  auto pred = Expr::Binary(BinaryOp::kEq,
                           Expr::Binary(BinaryOp::kMod, Expr::Column("k"),
                                        Expr::Literal(Value::Int64(2))),
                           Expr::Literal(Value::Int64(0)))
                  ->Bind(*KV());
  ASSERT_TRUE(pred.ok());

  for (int64_t i = 0; i < 500; ++i) ASSERT_TRUE(q1->Enqueue(Row(i, i)));
  q1->Close();

  ExecutionObject eo("pipe");
  eo.AddModule(std::make_shared<FilterModule>("f", q1, q2, *pred));
  eo.AddModule(std::make_shared<ProjectModule>("p", q2, q3,
                                               std::vector<size_t>{0}));
  eo.RunToCompletion();
  EXPECT_EQ(DrainAll(q3).size(), 250u);
}

TEST(JuggleTest, ReordersByPriority) {
  auto in = Q(), out = Q();
  JuggleModule j("j", in, out,
                 [](const Tuple& t) {
                   return static_cast<double>(t.cell(1).int64_value());
                 },
                 /*buffer_capacity=*/100);
  Feed(in, {Row(1, 5), Row(2, 50), Row(3, 1), Row(4, 99)});
  RunModule(&j);
  TupleVector result = DrainAll(out);
  ASSERT_EQ(result.size(), 4u);
  // All buffered before input closed: emitted best-first.
  EXPECT_EQ(result[0].cell(1).int64_value(), 99);
  EXPECT_EQ(result[1].cell(1).int64_value(), 50);
  EXPECT_EQ(result[2].cell(1).int64_value(), 5);
  EXPECT_EQ(result[3].cell(1).int64_value(), 1);
}

TEST(JuggleTest, BoundedBufferNeverDrops) {
  auto in = Q(), out = Q();
  JuggleModule j("j", in, out,
                 [](const Tuple& t) {
                   return static_cast<double>(t.cell(1).int64_value());
                 },
                 /*buffer_capacity=*/4);
  TupleVector rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back(Row(i, i * 7919 % 101));
  Feed(in, rows);
  RunModule(&j);
  EXPECT_EQ(DrainAll(out).size(), 100u);  // Best-effort ordering, lossless.
}

}  // namespace
}  // namespace tcq
