// Many-query concurrency stress: ~1k standing CQs per run with a churn
// thread racing AddQuery/RemoveQuery (grouped-filter index recompiles,
// query-slot reuse) against multi-producer sharded ingest. Run under
// -DTCQ_SANITIZE=thread in CI via the stress label; the oracles are the
// shared conservation laws (tests/conservation.h) plus exact counts for
// the stable query population — both hold whatever the interleaving,
// because control ops ride the shard task queues (actor model) and each
// shard's filter index is only ever touched from its own thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cacq/sharded_engine.h"
#include "common/object_pool.h"
#include "conservation.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

TEST(StressManyQueriesTest, ThousandQueriesRacingChurnAndIngest) {
  constexpr size_t kShards = 4;
  constexpr size_t kStableQueries = 1000;
  constexpr size_t kProducers = 3;
  constexpr size_t kBatches = 40;
  constexpr size_t kBatchSize = 32;
  constexpr int kChurnRounds = 30;

  ShardedEngine::Options opts;
  opts.num_shards = kShards;
  opts.input_capacity = 16;  // Small: force backpressure interleavings.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("S", KV(), 0).ok());

  EmissionLedger ledger;
  engine.SetSink(ledger.MakeSink());

  // A stable population of 1k range CQs over overlapping windows of v
  // (v in [0,100): query i wants lo <= v < lo+10, lo = i % 91), plus one
  // see-all query as the conservation witness. All registered before any
  // data, so their counts are exact.
  CacqQuerySpec see_all;
  see_all.sources = {"S"};
  auto all_q = engine.AddQuery(see_all);
  ASSERT_TRUE(all_q.ok());
  for (size_t i = 0; i < kStableQueries; ++i) {
    const auto lo = static_cast<int64_t>(i % 91);
    CacqQuerySpec spec;
    spec.sources = {"S"};
    spec.where = Expr::Binary(
        BinaryOp::kAnd,
        Expr::Binary(BinaryOp::kGe, Expr::Column("v"),
                     Expr::Literal(Value::Int64(lo))),
        Expr::Binary(BinaryOp::kLt, Expr::Column("v"),
                     Expr::Literal(Value::Int64(lo + 10))));
    ASSERT_TRUE(engine.AddQuery(spec).ok());
  }
  engine.Start();

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Tuple> batch;
        batch.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          const auto n = static_cast<int64_t>(b * kBatchSize + i);
          batch.push_back(Tuple::Make(
              {Value::Int64(n % 23), Value::Int64((n * 7 + p) % 100)},
              n + 1));
        }
        ASSERT_TRUE(engine.PushBatch("S", std::move(batch)).ok());
      }
    });
  }

  // Churn thread, serialized per the AddQuery/RemoveQuery contract: each
  // round registers a burst of short-lived range CQs (every filter
  // recompiles on next tuple), quiesces occasionally, then removes them —
  // freeing slots the next round's AddQuery re-registers.
  std::thread churner([&engine] {
    for (int round = 0; round < kChurnRounds; ++round) {
      std::vector<QueryId> burst;
      for (int j = 0; j < 8; ++j) {
        const auto lo = static_cast<int64_t>((round * 13 + j * 5) % 90);
        CacqQuerySpec spec;
        spec.sources = {"S"};
        spec.where = Expr::Binary(
            BinaryOp::kAnd,
            Expr::Binary(BinaryOp::kGt, Expr::Column("v"),
                         Expr::Literal(Value::Int64(lo))),
            Expr::Binary(BinaryOp::kLe, Expr::Column("v"),
                         Expr::Literal(Value::Int64(lo + 5))));
        auto cq = engine.AddQuery(spec);
        ASSERT_TRUE(cq.ok());
        burst.push_back(*cq);
      }
      if (round % 7 == 0) engine.Quiesce();
      for (QueryId cq : burst) {
        ASSERT_TRUE(engine.RemoveQuery(cq).ok());
      }
    }
  });

  for (auto& t : producers) t.join();
  churner.join();
  engine.Quiesce();

  const uint64_t total = kProducers * kBatches * kBatchSize;
  // See-all query saw every tuple exactly once despite 1k+ live CQs and
  // index recompiles racing ingest.
  EXPECT_EQ(ledger.hits(*all_q), total);
  ExpectExchangeConservation(engine, total);

  // Stable range CQs: each tuple lands in exactly 10 of the 91 distinct
  // lo-windows, and each window is owned by ceil/floor(1000/91) queries.
  // Cheaper and interleaving-proof: recompute the expected count per
  // query from the deterministic feed.
  uint64_t expected_range_hits = 0;
  for (size_t p = 0; p < kProducers; ++p) {
    for (size_t n = 0; n < kBatches * kBatchSize; ++n) {
      const int64_t v = static_cast<int64_t>((n * 7 + p) % 100);
      // Query i passes iff lo <= v < lo+10 with lo = i % 91.
      for (int64_t lo = std::max<int64_t>(0, v - 9);
           lo <= std::min<int64_t>(90, v); ++lo) {
        expected_range_hits += 1000 / 91 + (static_cast<size_t>(lo) <
                                                    1000 % 91
                                                ? 1
                                                : 0);
      }
    }
  }
  uint64_t actual_range_hits = 0;
  for (QueryId q = *all_q + 1;
       q <= *all_q + static_cast<QueryId>(kStableQueries); ++q) {
    actual_range_hits += ledger.hits(q);
  }
  EXPECT_EQ(actual_range_hits, expected_range_hits);

  engine.Stop();

  // The pools did real work across the shard threads; global totals are
  // flushed as those threads exit in Stop().
  const BlockPool::Stats pool = BlockPool::GlobalStats();
  EXPECT_GT(pool.hits + pool.misses, 0u);
}

}  // namespace
}  // namespace tcq
