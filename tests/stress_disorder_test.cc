// Concurrency stress for the disorder-tolerant ingress path: disordered
// producer feeds against 4 shard threads plus the egress thread, with
// punctuation, retractions and telemetry traffic riding along. Run under
// -DTCQ_SANITIZE=thread in CI; the assertions are conservation laws that
// hold whatever the interleaving — every within-bound tuple reaches both
// consistency lanes exactly once, and every retraction that matched an
// archived assertion is delivered signed exactly once.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/server.h"
#include "testing/disorder.h"
#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t ts, int64_t v) {
  return Tuple::Make({Value::Int64(ts), Value::Int64(v)}, ts);
}

TEST(StressDisorderTest, DisorderedFeedsThroughShardedLanes) {
  constexpr int64_t kTuples = 600;
  constexpr Timestamp kBound = 8;

  ScheduleExplorer::Options eopts;
  eopts.trials = 4;
  ScheduleExplorer explorer(11, eopts);
  auto common = explorer.Explore(2, [&](const ScheduleExplorer::Schedule&
                                            schedule) {
    Server::Options o;
    o.cacq_shards = 4;
    o.max_disorder = kBound;
    Server server(o);
    EXPECT_TRUE(server.DefineStream("A", KV(), 0, 1).ok());
    EXPECT_TRUE(server.DefineStream("B", KV(), 0, 1).ok());

    std::atomic<uint64_t> delayed_rows{0};
    std::atomic<uint64_t> spec_rows{0};
    std::atomic<uint64_t> b_rows{0};
    auto count_into = [&](std::atomic<uint64_t>* into) {
      return [into](const ResultSet& rs) {
        into->fetch_add(rs.rows.size(), std::memory_order_relaxed);
      };
    };
    auto dq = server.Submit("SELECT v FROM A WHERE v >= 0");
    EXPECT_TRUE(dq.ok()) << dq.status();
    EXPECT_TRUE(server.SetCallback(*dq, count_into(&delayed_rows)).ok());
    Server::SubmitOptions sopts;
    sopts.consistency = Consistency::kSpeculative;
    auto sq = server.Submit("SELECT v FROM A WHERE v >= 0", sopts);
    EXPECT_TRUE(sq.ok()) << sq.status();
    EXPECT_TRUE(server.SetCallback(*sq, count_into(&spec_rows)).ok());
    auto bq = server.Submit("SELECT v FROM B WHERE v >= 0");
    EXPECT_TRUE(bq.ok()) << bq.status();
    EXPECT_TRUE(server.SetCallback(*bq, count_into(&b_rows)).ok());

    // One disordered producer per stream (a stream's timestamps must come
    // from one clock; two streams give two racing ingest paths).
    DisorderOptions dopts;
    dopts.max_disorder = kBound;
    dopts.seed = schedule.trial_seed + 1;
    const size_t chunk = schedule.quantum;
    auto producer = [&](const std::string& stream, uint64_t salt) {
      std::vector<Tuple> feed;
      for (int64_t ts = 1; ts <= kTuples; ++ts) {
        feed.push_back(KVTuple(ts, (ts + static_cast<int64_t>(salt)) % 97));
      }
      DisorderOptions mine = dopts;
      mine.seed += salt;
      feed = InjectDisorder(std::move(feed), mine);
      for (size_t at = 0; at < feed.size(); at += chunk) {
        const size_t n = std::min(chunk, feed.size() - at);
        std::vector<Tuple> slice(
            feed.begin() + static_cast<ptrdiff_t>(at),
            feed.begin() + static_cast<ptrdiff_t>(at + n));
        ASSERT_TRUE(server.PushBatch(stream, std::move(slice)).ok());
      }
    };
    std::vector<std::thread> threads;
    threads.emplace_back(producer, "A", 0);
    threads.emplace_back(producer, "B", 1000);
    // Telemetry + query churn race the producers and the egress thread.
    threads.emplace_back([&server] {
      for (int round = 0; round < 10; ++round) {
        const std::string snap = server.SnapshotMetrics();
        EXPECT_NE(snap.find("\"disorder\""), std::string::npos);
        server.PumpMetrics();
        server.PumpHeartbeats();  // Disabled (0ms) — must stay a no-op.
        auto extra = server.Submit("SELECT ts FROM A WHERE v = 1");
        ASSERT_TRUE(extra.ok()) << extra.status();
        (void)server.PollAll(*extra);
        ASSERT_TRUE(server.Cancel(*extra).ok());
      }
    });
    for (auto& t : threads) t.join();

    // Closing punctuation flushes both reorder buffers; after the barrier
    // every lane has seen every tuple exactly once.
    EXPECT_TRUE(server.Heartbeat("A", kTuples + kBound + 1).ok());
    EXPECT_TRUE(server.Heartbeat("B", kTuples + kBound + 1).ok());
    server.Quiesce();
    EXPECT_EQ(delayed_rows.load(), static_cast<uint64_t>(kTuples));
    EXPECT_EQ(spec_rows.load(), static_cast<uint64_t>(kTuples));
    EXPECT_EQ(b_rows.load(), static_cast<uint64_t>(kTuples));
    return std::to_string(delayed_rows.load()) + "/" +
           std::to_string(spec_rows.load()) + "/" +
           std::to_string(b_rows.load());
  });
  ASSERT_TRUE(common.ok()) << common.status();
}

TEST(StressDisorderTest, RetractionsRaceTheProducer) {
  constexpr int64_t kTuples = 500;

  Server::Options o;
  o.cacq_shards = 4;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), 0, 1).ok());

  std::atomic<uint64_t> asserts{0};
  std::atomic<uint64_t> retracts{0};
  auto q = server.Submit("SELECT v FROM S WHERE v >= 0");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(server
                  .SetCallback(*q,
                               [&](const ResultSet& rs) {
                                 for (const Tuple& row : rs.rows) {
                                   (row.retraction() ? retracts : asserts)
                                       .fetch_add(1,
                                                  std::memory_order_relaxed);
                                 }
                               })
                  .ok());

  // The producer publishes its in-order progress; the retractor only ever
  // retracts tuples at or below it, so every retraction finds its
  // archived assertion — whatever the thread interleaving.
  std::atomic<int64_t> progress{0};
  std::thread producer([&] {
    for (int64_t ts = 1; ts <= kTuples; ts += 10) {
      std::vector<Tuple> batch;
      for (int64_t i = ts; i < ts + 10 && i <= kTuples; ++i) {
        batch.push_back(KVTuple(i, i % 83));
      }
      ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());
      progress.store(std::min<int64_t>(ts + 9, kTuples),
                     std::memory_order_release);
    }
  });
  std::thread retractor([&] {
    int64_t next = 10;  // Retract every 10th assertion, each exactly once.
    while (next <= kTuples) {
      if (progress.load(std::memory_order_acquire) < next) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_TRUE(server.Retract("S", KVTuple(next, next % 83)).ok());
      next += 10;
    }
  });
  producer.join();
  retractor.join();
  server.Quiesce();

  EXPECT_EQ(asserts.load(), static_cast<uint64_t>(kTuples));
  EXPECT_EQ(retracts.load(), static_cast<uint64_t>(kTuples / 10));
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"unmatched_retractions\":0"), std::string::npos)
      << snap;
}

}  // namespace
}  // namespace tcq
