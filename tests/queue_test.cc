#include "fjords/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {
namespace {

TEST(FjordQueueTest, FifoOrder) {
  FjordQueue<int> q(PullQueueOptions(16));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Enqueue(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(FjordQueueTest, PushQueueNonBlockingDequeueOnEmpty) {
  FjordQueue<int> q(PushQueueOptions(4));
  EXPECT_FALSE(q.Dequeue().has_value());  // Returns control immediately.
}

TEST(FjordQueueTest, PushQueueNonBlockingEnqueueOnFull) {
  FjordQueue<int> q(PushQueueOptions(2));
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_TRUE(q.Enqueue(2));
  EXPECT_FALSE(q.Enqueue(3));  // Full, non-blocking: rejected.
  EXPECT_EQ(q.Size(), 2u);
}

TEST(FjordQueueTest, DropOldestPolicy) {
  QueueOptions opts = PushQueueOptions(2);
  opts.drop_oldest_when_full = true;
  FjordQueue<int> q(opts);
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_TRUE(q.Enqueue(2));
  EXPECT_TRUE(q.Enqueue(3));  // Drops 1.
  EXPECT_EQ(q.DroppedCount(), 1u);
  EXPECT_EQ(*q.Dequeue(), 2);
  EXPECT_EQ(*q.Dequeue(), 3);
}

TEST(FjordQueueTest, CloseWakesBlockedConsumer) {
  FjordQueue<int> q(PullQueueOptions(4));
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    auto v = q.Dequeue();  // Blocks until close.
    EXPECT_FALSE(v.has_value());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(FjordQueueTest, CloseDrainsRemainingItems) {
  FjordQueue<int> q(PullQueueOptions(4));
  q.Enqueue(1);
  q.Enqueue(2);
  q.Close();
  EXPECT_FALSE(q.Enqueue(3));  // No enqueue after close.
  EXPECT_EQ(*q.Dequeue(), 1);
  EXPECT_EQ(*q.Dequeue(), 2);
  EXPECT_FALSE(q.Dequeue().has_value());
  EXPECT_TRUE(q.Exhausted());
}

TEST(FjordQueueTest, BlockingEnqueueWaitsForSpace) {
  FjordQueue<int> q(PullQueueOptions(1));
  ASSERT_TRUE(q.Enqueue(1));
  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Enqueue(2));  // Blocks until space.
    enqueued.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(enqueued.load());
  EXPECT_EQ(*q.Dequeue(), 1);
  producer.join();
  EXPECT_TRUE(enqueued.load());
  EXPECT_EQ(*q.Dequeue(), 2);
}

TEST(FjordQueueTest, ExchangeSemantics) {
  // Exchange [Graf93]: producer never blocks (non-blocking enqueue),
  // consumer blocks for data.
  FjordQueue<int> q(ExchangeQueueOptions(2));
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_TRUE(q.Enqueue(2));
  EXPECT_FALSE(q.Enqueue(3));  // Full: rejected, not blocked.
  EXPECT_EQ(*q.Dequeue(), 1);
}

TEST(FjordQueueTest, ConcurrentProducersConsumersDeliverAll) {
  FjordQueue<int> q(PullQueueOptions(64));
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;

  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Enqueue(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Dequeue()) {
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), int64_t{total} * (total - 1) / 2);
}

TEST(FjordQueueTest, EnqueueBatchPreservesFifoOrder) {
  FjordQueue<int> q(PullQueueOptions(16));
  std::vector<int> batch = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 5u);
  EXPECT_TRUE(batch.empty());  // All accepted elements consumed.
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(*q.Dequeue(), i);
}

TEST(FjordQueueTest, EnqueueBatchNonBlockingAcceptsPrefix) {
  FjordQueue<int> q(PushQueueOptions(3));
  std::vector<int> batch = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 3u);
  // The rejected suffix stays with the producer, in order, for retry.
  EXPECT_EQ(batch, (std::vector<int>{4, 5}));
  EXPECT_EQ(*q.Dequeue(), 1);
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 1u);
  EXPECT_EQ(batch, (std::vector<int>{5}));
}

TEST(FjordQueueTest, EnqueueBatchOnClosedQueueAcceptsNothing) {
  FjordQueue<int> q(PullQueueOptions(8));
  q.Close();
  std::vector<int> batch = {1, 2};
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 0u);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(FjordQueueTest, DequeueUpToTakesAtMostWhatIsPresent) {
  FjordQueue<int> q(PushQueueOptions(16));
  for (int i = 0; i < 5; ++i) q.Enqueue(i);
  std::vector<int> out;
  EXPECT_EQ(q.DequeueUpTo(3, &out), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.DequeueUpTo(10, &out), 2u);  // Appends; never waits to fill.
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.DequeueUpTo(1, &out), 0u);  // Empty, non-blocking.
}

TEST(FjordQueueTest, DequeueUpToOnClosedQueueDrainsThenReportsEos) {
  FjordQueue<int> q(PullQueueOptions(8));
  q.Enqueue(1);
  q.Enqueue(2);
  q.Close();
  std::vector<int> out;
  EXPECT_EQ(q.DequeueUpTo(8, &out), 2u);
  EXPECT_EQ(q.DequeueUpTo(8, &out), 0u);  // Closed and drained: no wait.
  EXPECT_TRUE(q.Exhausted());
}

TEST(FjordQueueTest, BlockingDequeueUpToWaitsForFirstElement) {
  FjordQueue<int> q(PullQueueOptions(8));
  std::vector<int> out;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.DequeueUpTo(4, &out), 2u);  // Takes what's there on wake.
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  std::vector<int> batch = {7, 8};
  q.EnqueueBatch(std::move(batch));
  consumer.join();
  EXPECT_EQ(out, (std::vector<int>{7, 8}));
}

TEST(FjordQueueTest, BlockingEnqueueBatchWaitsPerElementAndCloseUnblocks) {
  FjordQueue<int> q(PullQueueOptions(2));
  std::atomic<size_t> accepted{SIZE_MAX};
  std::thread producer([&] {
    std::vector<int> batch = {1, 2, 3, 4};
    accepted.store(q.EnqueueBatch(std::move(batch)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(accepted.load(), SIZE_MAX);  // Blocked on the third element.
  EXPECT_EQ(*q.Dequeue(), 1);            // Batch prefix is visible pre-wait.
  q.Close();                             // Wakes the producer mid-batch.
  producer.join();
  const size_t n = accepted.load();
  EXPECT_GE(n, 2u);  // 1 and 2 were in before the close...
  EXPECT_LT(n, 4u);  // ...but the close cut the batch short.
}

TEST(FjordQueueTest, BatchFaultHooksFirePerElement) {
  // Hooks see one decision per element even when the elements arrive in a
  // single EnqueueBatch — drop the 2nd, delay the 4th for two enqueues.
  auto hooks = std::make_shared<QueueFaultHooks>();
  int enqueue_no = 0;
  hooks->on_enqueue = [&enqueue_no]() {
    ++enqueue_no;
    QueueFaultDecision d;
    if (enqueue_no == 2) d.action = QueueFaultDecision::Action::kDrop;
    if (enqueue_no == 4) {
      d.action = QueueFaultDecision::Action::kDelay;
      d.arg = 2;
    }
    return d;
  };
  QueueOptions opts = PushQueueOptions(16);
  opts.faults = hooks;
  FjordQueue<int> q(opts);
  std::vector<int> batch = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 5u);  // Drop looks accepted.
  EXPECT_EQ(enqueue_no, 5);
  EXPECT_EQ(q.FaultDrops(), 1u);
  EXPECT_EQ(q.DelayedCount(), 1u);  // 4 held back...
  EXPECT_EQ(q.Size(), 3u);          // ...so only 1, 3, 5 are visible.
  // Element 5's batch slot already aged the countdown once (2 -> 1); the
  // next enqueue operation expires it and releases 4 at the back.
  q.Enqueue(6);
  EXPECT_EQ(q.DelayedCount(), 0u);
  q.Enqueue(7);
  std::vector<int> out;
  EXPECT_EQ(q.DequeueUpTo(16, &out), 6u);
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5, 4, 6, 7}));
}

TEST(FjordQueueTest, EnqueueBatchRejectedSuffixIsNeverMovedFrom) {
  // Move-only payload: if the queue moved from an element before deciding
  // to reject it, the suffix would hold nullptrs and the retry would lose
  // data. `int` payloads cannot catch this — a moved-from int keeps its
  // value — so this is the integrity check for the retry contract.
  FjordQueue<std::unique_ptr<int>> q(PushQueueOptions(2));
  std::vector<std::unique_ptr<int>> batch;
  for (int i = 1; i <= 5; ++i) batch.push_back(std::make_unique<int>(i));
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 2u);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_NE(batch[i], nullptr);
    EXPECT_EQ(*batch[i], static_cast<int>(i + 3));
  }
  // Retry delivers the suffix intact: every element arrives exactly once.
  EXPECT_EQ(**q.Dequeue(), 1);
  EXPECT_EQ(**q.Dequeue(), 2);
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 2u);
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_NE(batch[0], nullptr);
  EXPECT_EQ(*batch[0], 5);
}

TEST(FjordQueueTest, EnqueueBatchOnClosedQueueLeavesElementsIntact) {
  FjordQueue<std::unique_ptr<int>> q(PullQueueOptions(4));
  q.Close();
  std::vector<std::unique_ptr<int>> batch;
  batch.push_back(std::make_unique<int>(1));
  batch.push_back(std::make_unique<int>(2));
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 0u);
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_NE(batch[0], nullptr);
  EXPECT_EQ(*batch[0], 1);
  ASSERT_NE(batch[1], nullptr);
  EXPECT_EQ(*batch[1], 2);
}

TEST(FjordQueueTest, EnqueueBatchTupleSuffixStaysValidForRetry) {
  // The production payload and the exact SourceModule carry_ retry path:
  // fill a non-blocking edge, batch past capacity, and require every
  // rejected tuple to still be a readable, correct tuple before retrying.
  FjordQueue<Tuple> q(PushQueueOptions(2));
  std::vector<Tuple> batch;
  for (int i = 1; i <= 5; ++i) {
    batch.push_back(Tuple::Make({Value::Int64(i)}, /*ts=*/i));
  }
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 2u);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i].arity(), 1u);
    EXPECT_EQ(batch[i].cell(0).int64_value(), static_cast<int64_t>(i + 3));
    EXPECT_EQ(batch[i].timestamp(), static_cast<Timestamp>(i + 3));
  }
  q.Dequeue();
  q.Dequeue();
  EXPECT_EQ(q.EnqueueBatch(std::move(batch)), 2u);
  EXPECT_EQ(q.Dequeue()->cell(0).int64_value(), 3);
  EXPECT_EQ(q.Dequeue()->cell(0).int64_value(), 4);
}

TEST(FjordQueueTest, SizeTracksContents) {
  FjordQueue<int> q(PullQueueOptions(8));
  EXPECT_TRUE(q.Empty());
  q.Enqueue(1);
  EXPECT_EQ(q.Size(), 1u);
  q.Dequeue();
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace tcq
