#include "fjords/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tcq {
namespace {

TEST(FjordQueueTest, FifoOrder) {
  FjordQueue<int> q(PullQueueOptions(16));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Enqueue(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(FjordQueueTest, PushQueueNonBlockingDequeueOnEmpty) {
  FjordQueue<int> q(PushQueueOptions(4));
  EXPECT_FALSE(q.Dequeue().has_value());  // Returns control immediately.
}

TEST(FjordQueueTest, PushQueueNonBlockingEnqueueOnFull) {
  FjordQueue<int> q(PushQueueOptions(2));
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_TRUE(q.Enqueue(2));
  EXPECT_FALSE(q.Enqueue(3));  // Full, non-blocking: rejected.
  EXPECT_EQ(q.Size(), 2u);
}

TEST(FjordQueueTest, DropOldestPolicy) {
  QueueOptions opts = PushQueueOptions(2);
  opts.drop_oldest_when_full = true;
  FjordQueue<int> q(opts);
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_TRUE(q.Enqueue(2));
  EXPECT_TRUE(q.Enqueue(3));  // Drops 1.
  EXPECT_EQ(q.DroppedCount(), 1u);
  EXPECT_EQ(*q.Dequeue(), 2);
  EXPECT_EQ(*q.Dequeue(), 3);
}

TEST(FjordQueueTest, CloseWakesBlockedConsumer) {
  FjordQueue<int> q(PullQueueOptions(4));
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    auto v = q.Dequeue();  // Blocks until close.
    EXPECT_FALSE(v.has_value());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(FjordQueueTest, CloseDrainsRemainingItems) {
  FjordQueue<int> q(PullQueueOptions(4));
  q.Enqueue(1);
  q.Enqueue(2);
  q.Close();
  EXPECT_FALSE(q.Enqueue(3));  // No enqueue after close.
  EXPECT_EQ(*q.Dequeue(), 1);
  EXPECT_EQ(*q.Dequeue(), 2);
  EXPECT_FALSE(q.Dequeue().has_value());
  EXPECT_TRUE(q.Exhausted());
}

TEST(FjordQueueTest, BlockingEnqueueWaitsForSpace) {
  FjordQueue<int> q(PullQueueOptions(1));
  ASSERT_TRUE(q.Enqueue(1));
  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Enqueue(2));  // Blocks until space.
    enqueued.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(enqueued.load());
  EXPECT_EQ(*q.Dequeue(), 1);
  producer.join();
  EXPECT_TRUE(enqueued.load());
  EXPECT_EQ(*q.Dequeue(), 2);
}

TEST(FjordQueueTest, ExchangeSemantics) {
  // Exchange [Graf93]: producer never blocks (non-blocking enqueue),
  // consumer blocks for data.
  FjordQueue<int> q(ExchangeQueueOptions(2));
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_TRUE(q.Enqueue(2));
  EXPECT_FALSE(q.Enqueue(3));  // Full: rejected, not blocked.
  EXPECT_EQ(*q.Dequeue(), 1);
}

TEST(FjordQueueTest, ConcurrentProducersConsumersDeliverAll) {
  FjordQueue<int> q(PullQueueOptions(64));
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;

  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Enqueue(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Dequeue()) {
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), int64_t{total} * (total - 1) / 2);
}

TEST(FjordQueueTest, SizeTracksContents) {
  FjordQueue<int> q(PullQueueOptions(8));
  EXPECT_TRUE(q.Empty());
  q.Enqueue(1);
  EXPECT_EQ(q.Size(), 1u);
  q.Dequeue();
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace tcq
