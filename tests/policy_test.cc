#include "eddy/policy.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

std::vector<EddyOpStats> MakeStats(size_t n) {
  return std::vector<EddyOpStats>(n);
}

TEST(PolicyTest, FixedPrefersLowestRank) {
  FixedPolicy policy({2, 0, 1});
  auto stats = MakeStats(3);
  std::vector<double> costs{1, 1, 1};
  EXPECT_EQ(policy.Choose({0, 1, 2}, stats, costs), 1u);
  EXPECT_EQ(policy.Choose({0, 2}, stats, costs), 2u);
  EXPECT_EQ(policy.Choose({0}, stats, costs), 0u);
}

TEST(PolicyTest, FixedWithoutPrioritiesUsesIndexOrder) {
  FixedPolicy policy({});
  auto stats = MakeStats(3);
  std::vector<double> costs{1, 1, 1};
  EXPECT_EQ(policy.Choose({2, 1}, stats, costs), 1u);
}

TEST(PolicyTest, RandomCoversAllEligible) {
  RandomPolicy policy(3);
  auto stats = MakeStats(4);
  std::vector<double> costs{1, 1, 1, 1};
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 1000; ++i) {
    ++hits[policy.Choose({0, 1, 2, 3}, stats, costs)];
  }
  for (int h : hits) EXPECT_GT(h, 150);
}

TEST(PolicyTest, ObserveAccumulatesTicketsForSelectiveOps) {
  LotteryPolicy policy(3);
  auto stats = MakeStats(2);
  // Op 0 drops everything (never passes); op 1 passes everything.
  for (int i = 0; i < 100; ++i) {
    policy.Observe(0, /*passed=*/false, &stats);
    policy.Observe(1, /*passed=*/true, &stats);
  }
  EXPECT_GT(stats[0].tickets, stats[1].tickets);
  EXPECT_GT(stats[0].tickets, 50.0);
}

TEST(PolicyTest, TicketsNeverNegative) {
  LotteryPolicy policy(3);
  auto stats = MakeStats(1);
  for (int i = 0; i < 50; ++i) policy.Observe(0, true, &stats);
  EXPECT_GE(stats[0].tickets, 0.0);
}

TEST(PolicyTest, LotteryFavorsTicketRichOps) {
  LotteryPolicy policy(11);
  auto stats = MakeStats(2);
  stats[0].tickets = 100.0;
  stats[1].tickets = 1.0;
  std::vector<double> costs{1, 1};
  int first = 0;
  for (int i = 0; i < 1000; ++i) {
    if (policy.Choose({0, 1}, stats, costs) == 0) ++first;
  }
  EXPECT_GT(first, 800);
}

TEST(PolicyTest, LotteryPenalizesExpensiveOps) {
  LotteryPolicy policy(11);
  auto stats = MakeStats(2);
  stats[0].tickets = 10.0;
  stats[1].tickets = 10.0;
  std::vector<double> costs{1.0, 100.0};
  int cheap = 0;
  for (int i = 0; i < 1000; ++i) {
    if (policy.Choose({0, 1}, stats, costs) == 0) ++cheap;
  }
  EXPECT_GT(cheap, 900);
}

TEST(PolicyTest, DecayForgetsHistory) {
  LotteryPolicy::Options opts;
  opts.decay = 0.5;
  opts.decay_interval = 10;
  LotteryPolicy policy(3, opts);
  auto stats = MakeStats(1);
  stats[0].tickets = 1000.0;
  std::vector<double> costs{1};
  // Passing tuples keep debiting while decay halves the balance every 10
  // decisions; history must fade fast.
  for (int i = 0; i < 100; ++i) {
    policy.Choose({0}, stats, costs);
    policy.Observe(0, true, &stats);
  }
  EXPECT_LT(stats[0].tickets, 10.0);
}

TEST(PolicyTest, ExplorationFloorKeepsStarvedOpAlive) {
  LotteryPolicy policy(13);
  auto stats = MakeStats(2);
  stats[0].tickets = 1000.0;
  stats[1].tickets = 0.0;  // Starved op.
  std::vector<double> costs{1, 1};
  int starved_hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (policy.Choose({0, 1}, stats, costs) == 1) ++starved_hits;
  }
  EXPECT_GT(starved_hits, 0);  // Exploration keeps sampling it.
}

TEST(PolicyTest, MakePolicyFactory) {
  EXPECT_STREQ(MakePolicy("fixed")->name(), "fixed");
  EXPECT_STREQ(MakePolicy("random")->name(), "random");
  EXPECT_STREQ(MakePolicy("lottery")->name(), "lottery");
  EXPECT_STREQ(MakePolicy("bogus")->name(), "lottery");  // Fallback.
}

}  // namespace
}  // namespace tcq
