#include "tuple/value.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int64(-5).int64_value(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Bool(false).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int64(0).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Double(0).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("").type(), ValueType::kString);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int64(1), Value::Double(1.0));
  EXPECT_LT(Value::Int64(1), Value::Double(1.5));
  EXPECT_GT(Value::Double(2.5), Value::Int64(2));
}

TEST(ValueTest, Int64ExactComparison) {
  // Large int64 values that would collide after double rounding.
  const int64_t big = (int64_t{1} << 62) + 1;
  EXPECT_LT(Value::Int64(big), Value::Int64(big + 1));
  EXPECT_EQ(Value::Int64(big), Value::Int64(big));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("MSFT"), Value::String("ORCL"));
  EXPECT_EQ(Value::String("MSFT"), Value::String("MSFT"));
}

TEST(ValueTest, NullSortsFirstAndEqualsOnlyNull) {
  EXPECT_LT(Value::Null(), Value::Int64(INT64_MIN));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int64(0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(1).Hash(), Value::Double(1.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Int64(7).Hash());
  // -0.0 and +0.0 compare equal and must hash equal.
  EXPECT_EQ(Value::Double(-0.0).Hash(), Value::Double(0.0).Hash());
}

TEST(ValueTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).AsDouble(), 3.5);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(ValueTest, BoolOrdering) {
  EXPECT_LT(Value::Bool(false), Value::Bool(true));
  EXPECT_EQ(Value::Bool(true), Value::Bool(true));
}

}  // namespace
}  // namespace tcq
