// Spool equivalence (ISSUE 10 acceptance): a server running with a
// disk-backed history spool — tiny resident tail, tiny page cache — must
// deliver BYTE-IDENTICAL results to the classic unbounded-RAM server for
// delayed-consistency queries, inline and 4-shard, across explorer
// seeds; a landmark query over history 10x larger than resident RAM must
// match the unbounded-RAM answer exactly; and a server reopened on the
// same spool directory must replay the spooled history to freshly
// registered queries.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/server.h"
#include "testing/disorder.h"
#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

/// Self-cleaning spool directory under TMPDIR.
struct TempDir {
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "tcq-spool-eq-XXXXXX")
                           .string();
    char* made = mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

SchemaPtr KV() {
  return Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

std::vector<Tuple> MakeFeed(int64_t n) {
  std::vector<Tuple> feed;
  for (int64_t ts = 1; ts <= n; ++ts) {
    feed.push_back(
        Tuple::Make({Value::Int64(ts), Value::Int64((ts * 7) % 26)}, ts));
  }
  return feed;
}

constexpr char kFilterSql[] = "SELECT v FROM S WHERE v > 8";
constexpr char kWindowSql[] =
    "SELECT SUM(v) FROM S "
    "for (t = 4; t <= 48; t += 4) { WindowIs(S, t - 3, t); }";

struct Deliveries {
  std::vector<std::string> rows[2];
};

/// Mirrors the disorder-equivalence RunFeed, parameterized over the base
/// server options so one run spools and the other keeps history in RAM.
Deliveries RunFeed(Server::Options o, const std::vector<Tuple>& feed,
                   size_t chunk, const std::vector<size_t>& order,
                   Consistency consistency) {
  Server server(std::move(o));
  EXPECT_TRUE(server
                  .DefineStream("S", KV(), /*timestamp_field=*/0,
                                /*partition_field=*/1)
                  .ok());
  Server::SubmitOptions sopts;
  sopts.consistency = consistency;
  QueryId ids[2];
  for (size_t label : order) {
    auto q = server.Submit(label == 0 ? kFilterSql : kWindowSql, sopts);
    EXPECT_TRUE(q.ok()) << q.status();
    ids[label] = *q;
  }
  for (size_t at = 0; at < feed.size(); at += chunk) {
    const size_t n = std::min(chunk, feed.size() - at);
    std::vector<Tuple> slice(feed.begin() + static_cast<ptrdiff_t>(at),
                             feed.begin() + static_cast<ptrdiff_t>(at + n));
    EXPECT_TRUE(server.PushBatch("S", std::move(slice)).ok());
  }
  EXPECT_TRUE(server.Heartbeat("S", 50).ok());
  server.Quiesce();

  Deliveries out;
  for (const ResultSet& rs : server.PollAll(ids[0])) {
    for (const Tuple& row : rs.rows) out.rows[0].push_back(row.ToString());
  }
  for (const ResultSet& rs : server.PollAll(ids[1])) {
    for (const Tuple& row : rs.rows) {
      out.rows[1].push_back("t" + std::to_string(rs.t) + "|" +
                            row.ToString());
    }
  }
  return out;
}

std::string Ordered(const Deliveries& d) {
  std::ostringstream fp;
  for (int q = 0; q < 2; ++q) {
    fp << "q" << q << ":";
    for (const std::string& r : d.rows[q]) fp << r << ";";
    fp << "\n";
  }
  return fp.str();
}

std::string Sorted(Deliveries d) {
  for (auto& rows : d.rows) std::sort(rows.begin(), rows.end());
  return Ordered(d);
}

/// Spool knobs deliberately hostile: a 3-tuple resident tail and an
/// 8-page cache force nearly every window scan through disk.
Server::Options SpoolOptions(const std::string& dir, Timestamp bound,
                             size_t shards) {
  Server::Options o;
  o.max_disorder = bound;
  o.cacq_shards = shards;
  o.spool_dir = dir;
  o.spool_cache_pages = 8;
  o.spool_resident_tuples = 3;
  o.spool_segment_bytes = 8 * 1024;  // Frequent rotation.
  return o;
}

TEST(SpoolEquivalenceTest, InlineSpoolOnMatchesSpoolOffByteForByte) {
  const std::vector<Tuple> feed = MakeFeed(48);
  Server::Options plain;
  const std::string expected =
      Ordered(RunFeed(plain, feed, 1, {0, 1}, Consistency::kDelayed));
  EXPECT_NE(expected.find(";"), std::string::npos);

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        2, [&](const ScheduleExplorer::Schedule& schedule) {
          TempDir dir;
          const std::string got = Ordered(
              RunFeed(SpoolOptions(dir.path, 0, 1), feed, schedule.quantum,
                      schedule.order, Consistency::kDelayed));
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(SpoolEquivalenceTest, InlineSpoolOnMatchesUnderDisorder) {
  // The disordered ingress path (reorder releases, late-run inserts)
  // through a spooled archive against the in-order unbounded reference.
  const std::vector<Tuple> feed = MakeFeed(48);
  Server::Options plain;
  const std::string expected =
      Ordered(RunFeed(plain, feed, 1, {0, 1}, Consistency::kDelayed));

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        2, [&](const ScheduleExplorer::Schedule& schedule) {
          DisorderOptions dopts;
          dopts.max_disorder =
              1 + static_cast<Timestamp>(schedule.trial_seed % 7);
          dopts.seed = schedule.trial_seed;
          TempDir dir;
          const std::string got =
              Ordered(RunFeed(SpoolOptions(dir.path, dopts.max_disorder, 1),
                              InjectDisorder(feed, dopts), schedule.quantum,
                              schedule.order, Consistency::kDelayed));
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", bound " << dopts.max_disorder << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(SpoolEquivalenceTest, ShardedSpoolOnMatchesSpoolOff) {
  const std::vector<Tuple> feed = MakeFeed(48);
  Server::Options plain;
  const std::string expected =
      Sorted(RunFeed(plain, feed, 1, {0, 1}, Consistency::kDelayed));

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        2, [&](const ScheduleExplorer::Schedule& schedule) {
          TempDir dir;
          const std::string got = Sorted(
              RunFeed(SpoolOptions(dir.path, 0, 4), feed, schedule.quantum,
                      schedule.order, Consistency::kDelayed));
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(SpoolEquivalenceTest, IngestLateBackfillReadsThroughSpool) {
  // A beyond-bound straggler under LatePolicy::kIngestLate lands in the
  // spool's late run (everything below the watermark is on disk with a
  // 1-tuple resident tail); windows that have not fired yet must see it
  // exactly as the unbounded-RAM archive would.
  auto run = [&](Server::Options o) {
    o.late_policy = LatePolicy::kIngestLate;
    Server server(std::move(o));
    EXPECT_TRUE(server.DefineStream("S", KV(), 0, 1).ok());
    auto q = server.Submit(
        "SELECT SUM(v) FROM S "
        "for (t = 10; t <= 40; t += 10) { WindowIs(S, 1, t); }");
    EXPECT_TRUE(q.ok()) << q.status();
    // In-order prefix 1..20, then a straggler at 7 (below the released
    // frontier -> kIngestLate backfill), then the 21..40 tail.
    for (int64_t ts = 1; ts <= 20; ++ts) {
      EXPECT_TRUE(
          server
              .Push("S", Tuple::Make({Value::Int64(ts), Value::Int64(ts)},
                                     ts))
              .ok());
    }
    EXPECT_TRUE(
        server.Push("S", Tuple::Make({Value::Int64(7), Value::Int64(100)}, 7))
            .ok());
    for (int64_t ts = 21; ts <= 40; ++ts) {
      EXPECT_TRUE(
          server
              .Push("S", Tuple::Make({Value::Int64(ts), Value::Int64(ts)},
                                     ts))
              .ok());
    }
    EXPECT_TRUE(server.Heartbeat("S", 41).ok());
    std::string got;
    for (const ResultSet& rs : server.PollAll(*q)) {
      for (const Tuple& row : rs.rows) {
        got += "t" + std::to_string(rs.t) + "|" + row.ToString() + ";";
      }
    }
    return got;
  };
  Server::Options plain;
  plain.max_disorder = 0;
  const std::string expected = run(plain);
  // Window t=30 fires after the backfill: SUM(1..30) + 100 must appear.
  EXPECT_NE(expected.find("t30|"), std::string::npos);

  TempDir dir;
  Server::Options spooled = SpoolOptions(dir.path, 0, 1);
  spooled.spool_resident_tuples = 1;
  EXPECT_EQ(run(std::move(spooled)), expected);
}

TEST(SpoolEquivalenceTest, LandmarkQueryOverTenTimesRamHistory) {
  // The headline acceptance: resident RAM bounded at 100 tuples and a
  // 64-page cache, history 2000 tuples (20x the resident tail, with a
  // 200-byte payload per tuple the spool region dwarfs the page cache
  // too), and a landmark window [1, t] re-scanning ALL of it at every
  // fire. Results must be byte-identical to the unbounded-RAM server.
  SchemaPtr schema = Schema::Make({{"ts", ValueType::kInt64, ""},
                                   {"v", ValueType::kInt64, ""},
                                   {"pad", ValueType::kString, ""}});
  const std::string pad(200, 'x');
  std::vector<Tuple> feed;
  for (int64_t ts = 1; ts <= 2000; ++ts) {
    feed.push_back(Tuple::Make(
        {Value::Int64(ts), Value::Int64((ts * 13) % 97), Value::String(pad)},
        ts));
  }
  constexpr char kLandmark[] =
      "SELECT COUNT(v), SUM(v) FROM S "
      "for (t = 200; t <= 2000; t += 200) { WindowIs(S, 1, t); }";

  auto run = [&](Server::Options o) {
    Server server(std::move(o));
    EXPECT_TRUE(server.DefineStream("S", schema, 0, 1).ok());
    auto q = server.Submit(kLandmark);
    EXPECT_TRUE(q.ok()) << q.status();
    for (size_t at = 0; at < feed.size(); at += 100) {
      std::vector<Tuple> slice(
          feed.begin() + static_cast<ptrdiff_t>(at),
          feed.begin() + static_cast<ptrdiff_t>(at + 100));
      EXPECT_TRUE(server.PushBatch("S", std::move(slice)).ok());
    }
    EXPECT_TRUE(server.Heartbeat("S", 2001).ok());
    std::string got;
    for (const ResultSet& rs : server.PollAll(*q)) {
      for (const Tuple& row : rs.rows) {
        got += "t" + std::to_string(rs.t) + "|" + row.ToString() + ";";
      }
    }
    return got;
  };

  Server::Options plain;
  const std::string expected = run(plain);
  EXPECT_NE(expected.find("t2000|"), std::string::npos);

  TempDir dir;
  Server::Options spooled;
  spooled.spool_dir = dir.path;
  spooled.spool_cache_pages = 64;
  spooled.spool_resident_tuples = 100;
  spooled.spool_segment_bytes = 64 * 1024;
  EXPECT_EQ(run(std::move(spooled)), expected);
}

TEST(SpoolEquivalenceTest, ReopenReplaysSpooledHistoryToFreshQueries) {
  // Incarnation one ingests with a 1-tuple resident tail (everything but
  // the newest record is durable on disk), then dies. Incarnation two on
  // the same directory adopts the spooled history, registers fresh
  // queries, replays, and re-pushes the lost volatile tail — ending with
  // exactly the rows a never-restarted server would have delivered.
  const std::vector<Tuple> feed = MakeFeed(48);
  TempDir dir;
  {
    Server::Options o = SpoolOptions(dir.path, 0, 1);
    o.spool_resident_tuples = 1;
    Server first(std::move(o));
    EXPECT_TRUE(first.DefineStream("S", KV(), 0, 1).ok());
    std::vector<Tuple> batch(feed.begin(), feed.end() - 1);
    EXPECT_TRUE(first.PushBatch("S", std::move(batch)).ok());
  }  // ts 1..46 spooled; ts 47 was resident-only and is lost with RAM.

  Server::Options o = SpoolOptions(dir.path, 0, 1);
  o.spool_resident_tuples = 1;
  Server second(std::move(o));
  EXPECT_TRUE(second.DefineStream("S", KV(), 0, 1).ok());
  auto filter = second.Submit(kFilterSql);
  ASSERT_TRUE(filter.ok()) << filter.status();
  auto window = second.Submit(kWindowSql);
  ASSERT_TRUE(window.ok()) << window.status();

  // Replay everything spooled, then re-push the lost tail and close.
  ASSERT_TRUE(second.ReplayStream("S", kMinTimestamp).ok());
  EXPECT_TRUE(second.Push("S", feed[46]).ok());
  EXPECT_TRUE(second.Push("S", feed[47]).ok());
  EXPECT_TRUE(second.Heartbeat("S", 50).ok());

  Deliveries got;
  for (const ResultSet& rs : second.PollAll(*filter)) {
    for (const Tuple& row : rs.rows) got.rows[0].push_back(row.ToString());
  }
  for (const ResultSet& rs : second.PollAll(*window)) {
    for (const Tuple& row : rs.rows) {
      got.rows[1].push_back("t" + std::to_string(rs.t) + "|" +
                            row.ToString());
    }
  }

  Server::Options plain;
  const Deliveries want =
      RunFeed(plain, feed, feed.size(), {0, 1}, Consistency::kDelayed);
  EXPECT_EQ(Ordered(got), Ordered(want));

  // Replay preconditions: unknown streams and open disorder windows fail.
  EXPECT_FALSE(second.ReplayStream("nope", kMinTimestamp).ok());
}

}  // namespace
}  // namespace tcq
