#include "eddy/eddy.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eddy/operators.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts = 0) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

/// Layout with a single source "s".
struct SingleSourceFixture {
  SourceLayout layout;
  size_t s;

  SingleSourceFixture() { s = layout.AddSource("s", KV()); }

  SmallBitset SourceSet() const {
    SmallBitset b(layout.num_sources());
    b.Set(s);
    return b;
  }

  ExprPtr BindOrDie(ExprPtr e) const {
    auto bound = e->Bind(*layout.full_schema());
    EXPECT_TRUE(bound.ok()) << bound.status();
    return *bound;
  }
};

TEST(EddyTest, SingleFilterPassesAndDrops) {
  SingleSourceFixture fx;
  Eddy eddy(&fx.layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  ExprPtr pred = fx.BindOrDie(Expr::Binary(
      BinaryOp::kGt, Expr::Column("k"), Expr::Literal(Value::Int64(5))));
  eddy.AddOperator(
      std::make_shared<FilterOp>("k>5", pred, fx.SourceSet()));

  TupleVector out;
  eddy.SetSink([&](RoutedTuple&& rt) { out.push_back(rt.tuple); });
  for (int64_t k = 0; k < 10; ++k) eddy.Inject(fx.s, KVTuple(k, k));
  eddy.Drain();
  ASSERT_EQ(out.size(), 4u);  // k = 6..9.
  for (const Tuple& t : out) EXPECT_GT(t.cell(0).int64_value(), 5);
}

TEST(EddyTest, TupleVisitsEveryFilterExactlyOnce) {
  SingleSourceFixture fx;
  Eddy eddy(&fx.layout, std::make_unique<RandomPolicy>(3));
  // Two always-true filters: every tuple must pass both exactly once.
  ExprPtr truth = Expr::Literal(Value::Bool(true));
  eddy.AddOperator(std::make_shared<FilterOp>("f1", truth, fx.SourceSet()));
  eddy.AddOperator(std::make_shared<FilterOp>("f2", truth, fx.SourceSet()));

  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&&) { ++emitted; });
  for (int64_t k = 0; k < 100; ++k) eddy.Inject(fx.s, KVTuple(k, k));
  eddy.Drain();
  EXPECT_EQ(emitted, 100u);
  EXPECT_EQ(eddy.op_stats()[0].routed, 100u);
  EXPECT_EQ(eddy.op_stats()[1].routed, 100u);
  EXPECT_EQ(eddy.visits(), 200u);
}

TEST(EddyTest, ConjunctionOrderInvariant) {
  // Whatever order the policy picks, output = AND of the predicates.
  for (const char* policy_name : {"fixed", "random", "lottery"}) {
    SingleSourceFixture fx;
    Eddy eddy(&fx.layout, MakePolicy(policy_name, 99));
    ExprPtr p1 = fx.BindOrDie(Expr::Binary(
        BinaryOp::kGt, Expr::Column("k"), Expr::Literal(Value::Int64(10))));
    ExprPtr p2 = fx.BindOrDie(Expr::Binary(
        BinaryOp::kLt, Expr::Column("k"), Expr::Literal(Value::Int64(20))));
    ExprPtr p3 = fx.BindOrDie(Expr::Binary(
        BinaryOp::kEq,
        Expr::Binary(BinaryOp::kMod, Expr::Column("k"),
                     Expr::Literal(Value::Int64(2))),
        Expr::Literal(Value::Int64(0))));
    eddy.AddOperator(std::make_shared<FilterOp>("p1", p1, fx.SourceSet()));
    eddy.AddOperator(std::make_shared<FilterOp>("p2", p2, fx.SourceSet()));
    eddy.AddOperator(std::make_shared<FilterOp>("p3", p3, fx.SourceSet()));

    std::vector<int64_t> out;
    eddy.SetSink(
        [&](RoutedTuple&& rt) { out.push_back(rt.tuple.cell(0).int64_value()); });
    for (int64_t k = 0; k < 50; ++k) eddy.Inject(fx.s, KVTuple(k, k));
    eddy.Drain();
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, (std::vector<int64_t>{12, 14, 16, 18})) << policy_name;
  }
}

TEST(EddyTest, LotteryLearnsSelectiveOperatorFirst) {
  // One filter drops 90%, the other 10%. After convergence the selective
  // filter should receive (nearly) every tuple while the weak filter sees
  // only survivors, so its routed count collapses toward the join rate.
  SingleSourceFixture fx;
  Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(17));
  auto selective = std::make_shared<SyntheticFilterOp>(
      "selective", fx.SourceSet(), [](uint64_t) { return 0.1; }, 1.0, 5);
  auto weak = std::make_shared<SyntheticFilterOp>(
      "weak", fx.SourceSet(), [](uint64_t) { return 0.9; }, 1.0, 6);
  const size_t weak_idx = eddy.AddOperator(weak);
  const size_t sel_idx = eddy.AddOperator(selective);

  for (int64_t k = 0; k < 5000; ++k) eddy.Inject(fx.s, KVTuple(k, k));
  eddy.Drain();

  const auto& stats = eddy.op_stats();
  // The selective op must end up routed-first for most tuples: the weak op
  // then sees only ~10% of the stream.
  EXPECT_GT(stats[sel_idx].routed, stats[weak_idx].routed);
  EXPECT_LT(static_cast<double>(stats[weak_idx].routed),
            0.6 * static_cast<double>(stats[sel_idx].routed));
}

TEST(EddyTest, BatchingReducesDecisions) {
  auto run = [](size_t batch) {
    SingleSourceFixture fx;
    Eddy::Options opts;
    opts.batch_size = batch;
    Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3), opts);
    ExprPtr truth = Expr::Literal(Value::Bool(true));
    eddy.AddOperator(std::make_shared<FilterOp>("f1", truth, fx.SourceSet()));
    eddy.AddOperator(std::make_shared<FilterOp>("f2", truth, fx.SourceSet()));
    for (int64_t k = 0; k < 1000; ++k) eddy.Inject(fx.s, KVTuple(k, k));
    eddy.Drain();
    return eddy.decisions();
  };
  const uint64_t d1 = run(1);
  const uint64_t d64 = run(64);
  EXPECT_GT(d1, d64 * 10);  // Decision count collapses with batching.
}

TEST(EddyTest, BatchSizeBudgetPersistsAcrossDrains) {
  // Retiring an injected batch at the end of Drain() must not discard the
  // remaining reuse budget of the configured batch_size knob: entries are
  // clamped back to the knob's span, not cleared, so interleaving batch
  // injections leaves the decision count where single-tuple injections
  // would have put it. (Result sets are routing-invariant either way.)
  auto run = [](bool use_batches) {
    SingleSourceFixture fx;
    Eddy::Options opts;
    opts.batch_size = 64;
    Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3), opts);
    ExprPtr truth = Expr::Literal(Value::Bool(true));
    eddy.AddOperator(std::make_shared<FilterOp>("f1", truth, fx.SourceSet()));
    eddy.AddOperator(std::make_shared<FilterOp>("f2", truth, fx.SourceSet()));
    int64_t k = 0;
    for (int chunk = 0; chunk < 100; ++chunk) {
      if (use_batches) {
        std::vector<Tuple> batch;
        for (int i = 0; i < 10; ++i, ++k) batch.push_back(KVTuple(k, k));
        eddy.InjectBatch(fx.s, batch);
      } else {
        for (int i = 0; i < 10; ++i, ++k) eddy.Inject(fx.s, KVTuple(k, k));
      }
      eddy.Drain();
    }
    EXPECT_EQ(eddy.emitted(), 1000u);
    return eddy.decisions();
  };
  const uint64_t single = run(false);
  const uint64_t batched = run(true);
  // 1000 tuples / budget 64 ≈ 16 decisions per routing stage, either way.
  // The regression being guarded against paid one fresh decision per
  // stage per Drain (~100 per stage) when batches were in play.
  EXPECT_LE(batched, single);
  EXPECT_LT(batched, 100u);
}

TEST(EddyTest, FixedSequenceReducesDecisions) {
  auto run = [](size_t seq_len) {
    SingleSourceFixture fx;
    Eddy::Options opts;
    opts.fixed_sequence_length = seq_len;
    Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3), opts);
    ExprPtr truth = Expr::Literal(Value::Bool(true));
    for (int i = 0; i < 4; ++i) {
      eddy.AddOperator(std::make_shared<FilterOp>("f" + std::to_string(i),
                                                  truth, fx.SourceSet()));
    }
    for (int64_t k = 0; k < 500; ++k) eddy.Inject(fx.s, KVTuple(k, k));
    eddy.Drain();
    EXPECT_EQ(eddy.emitted(), 500u);  // Correctness unaffected.
    return eddy.decisions();
  };
  EXPECT_GT(run(1), run(4) * 3);
}

TEST(EddyTest, DynamicOperatorAddition) {
  SingleSourceFixture fx;
  Eddy eddy(&fx.layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  ExprPtr p1 = fx.BindOrDie(Expr::Binary(
      BinaryOp::kGe, Expr::Column("k"), Expr::Literal(Value::Int64(0))));
  eddy.AddOperator(std::make_shared<FilterOp>("p1", p1, fx.SourceSet()));

  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&&) { ++emitted; });
  for (int64_t k = 0; k < 10; ++k) eddy.Inject(fx.s, KVTuple(k, k));
  eddy.Drain();
  EXPECT_EQ(emitted, 10u);

  // Fold in a second, selective filter; subsequent tuples face both.
  ExprPtr p2 = fx.BindOrDie(Expr::Binary(
      BinaryOp::kLt, Expr::Column("k"), Expr::Literal(Value::Int64(5))));
  eddy.AddOperator(std::make_shared<FilterOp>("p2", p2, fx.SourceSet()));
  emitted = 0;
  for (int64_t k = 0; k < 10; ++k) eddy.Inject(fx.s, KVTuple(k, k));
  eddy.Drain();
  EXPECT_EQ(emitted, 5u);
}

// Property: under any policy and knob setting, no tuples are lost or
// duplicated by the routing machinery itself.
struct KnobParam {
  const char* policy;
  size_t batch;
  size_t seq;
};

class EddyRoutingPropertyTest : public ::testing::TestWithParam<KnobParam> {};

TEST_P(EddyRoutingPropertyTest, NoLossNoDuplication) {
  const KnobParam param = GetParam();
  SingleSourceFixture fx;
  Eddy::Options opts;
  opts.batch_size = param.batch;
  opts.fixed_sequence_length = param.seq;
  Eddy eddy(&fx.layout, MakePolicy(param.policy, 12345), opts);
  ExprPtr truth = Expr::Literal(Value::Bool(true));
  for (int i = 0; i < 5; ++i) {
    eddy.AddOperator(std::make_shared<FilterOp>("f" + std::to_string(i),
                                                truth, fx.SourceSet()));
  }
  std::vector<int64_t> seen;
  eddy.SetSink(
      [&](RoutedTuple&& rt) { seen.push_back(rt.tuple.cell(0).int64_value()); });
  const int64_t n = 777;
  for (int64_t k = 0; k < n; ++k) eddy.Inject(fx.s, KVTuple(k, k));
  eddy.Drain();
  ASSERT_EQ(seen.size(), static_cast<size_t>(n));
  std::sort(seen.begin(), seen.end());
  for (int64_t k = 0; k < n; ++k) EXPECT_EQ(seen[static_cast<size_t>(k)], k);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyKnobMatrix, EddyRoutingPropertyTest,
    ::testing::Values(KnobParam{"fixed", 1, 1}, KnobParam{"random", 1, 1},
                      KnobParam{"lottery", 1, 1}, KnobParam{"lottery", 16, 1},
                      KnobParam{"lottery", 1, 3}, KnobParam{"lottery", 16, 3},
                      KnobParam{"random", 8, 2}, KnobParam{"fixed", 4, 5}));

}  // namespace
}  // namespace tcq
