#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eddy/eddy.h"
#include "eddy/operators.h"
#include "fjords/module.h"
#include "fjords/scheduler.h"
#include "testing/schedule_explorer.h"
#include "testing/stress_runner.h"

namespace tcq {
namespace {

// -- Shared toy modules ---------------------------------------------------

/// Produces [lo, hi) as Int64 tuples, then closes its output.
class ProducerModule : public FjordModule {
 public:
  ProducerModule(std::string name, TupleQueuePtr out, int64_t lo, int64_t hi)
      : FjordModule(std::move(name)), out_(std::move(out)), next_(lo),
        hi_(hi) {}

  StepResult Step(size_t max_tuples) override {
    if (next_ >= hi_) {
      out_->Close();
      return StepResult::kDone;
    }
    size_t produced = 0;
    while (next_ < hi_ && produced < max_tuples) {
      if (!out_->Enqueue(Tuple::Make({Value::Int64(next_)}, next_))) {
        return produced > 0 ? StepResult::kDidWork : StepResult::kIdle;
      }
      ++next_;
      ++produced;
    }
    return StepResult::kDidWork;
  }

 private:
  TupleQueuePtr out_;
  int64_t next_;
  int64_t hi_;
};

/// Passes tuples whose cell 0 is even; closes downstream on exhaustion.
class EvenFilterModule : public FjordModule {
 public:
  EvenFilterModule(std::string name, TupleQueuePtr in, TupleQueuePtr out)
      : FjordModule(std::move(name)), in_(std::move(in)),
        out_(std::move(out)) {}

  StepResult Step(size_t max_tuples) override {
    size_t moved = 0;
    while (moved < max_tuples) {
      // Flush the tuple a full downstream queue made us hold back; never
      // spin inside a quantum (the consumer needs this thread to run).
      if (pending_.has_value()) {
        if (!out_->Enqueue(*pending_)) {
          return moved > 0 ? StepResult::kDidWork : StepResult::kIdle;
        }
        pending_.reset();
        ++moved;
        continue;
      }
      auto t = in_->Dequeue();
      if (!t.has_value()) {
        if (in_->Exhausted()) {
          out_->Close();
          return StepResult::kDone;
        }
        return moved > 0 ? StepResult::kDidWork : StepResult::kIdle;
      }
      ++moved;
      if (t->cell(0).int64_value() % 2 == 0 && !out_->Enqueue(*t)) {
        pending_ = *t;
      }
    }
    return StepResult::kDidWork;
  }

 private:
  TupleQueuePtr in_;
  TupleQueuePtr out_;
  std::optional<Tuple> pending_;
};

/// Sums cell 0 into an external accumulator.
class SummerModule : public FjordModule {
 public:
  SummerModule(std::string name, TupleQueuePtr in, std::atomic<int64_t>* sum,
               std::atomic<int64_t>* count)
      : FjordModule(std::move(name)), in_(std::move(in)), sum_(sum),
        count_(count) {}

  StepResult Step(size_t max_tuples) override {
    size_t consumed = 0;
    while (consumed < max_tuples) {
      auto t = in_->Dequeue();
      if (!t.has_value()) {
        if (consumed > 0) return StepResult::kDidWork;
        return in_->Exhausted() ? StepResult::kDone : StepResult::kIdle;
      }
      sum_->fetch_add(t->cell(0).int64_value());
      count_->fetch_add(1);
      ++consumed;
    }
    return StepResult::kDidWork;
  }

 private:
  TupleQueuePtr in_;
  std::atomic<int64_t>* sum_;
  std::atomic<int64_t>* count_;
};

// -- Result invariance across schedules (§4.2.2) --------------------------

TEST(StressSchedulerTest, PipelineResultInvariantAcrossSchedules) {
  // producer -> evenfilter -> summer, rebuilt per trial with the module
  // registration order permuted and the quantum varied. The answer (sum
  // and count of even numbers in [0, 500)) must never move.
  ScheduleExplorer explorer(101);
  auto trial = [](const ScheduleExplorer::Schedule& s) {
    auto q1 = std::make_shared<TupleQueue>(PushQueueOptions(8));
    auto q2 = std::make_shared<TupleQueue>(PushQueueOptions(8));
    std::atomic<int64_t> sum{0}, count{0};
    std::vector<FjordModulePtr> modules = {
        std::make_shared<ProducerModule>("prod", q1, 0, 500),
        std::make_shared<EvenFilterModule>("filter", q1, q2),
        std::make_shared<SummerModule>("sum", q2, &sum, &count),
    };
    ExecutionObject::Options opts;
    opts.quantum = s.quantum;
    opts.idle_sleep_micros = 0;
    ExecutionObject eo("trial-eo", opts);
    for (size_t idx : s.order) eo.AddModule(modules[idx]);
    eo.RunToCompletion();
    return "sum=" + std::to_string(sum.load()) +
           ",count=" + std::to_string(count.load());
  };
  auto result = explorer.Explore(3, trial);
  ASSERT_TRUE(result.ok()) << result.status();
  // 0+2+...+498 = 250*498/2... = 62250; 250 evens.
  EXPECT_EQ(*result, "sum=62250,count=250");
}

TEST(StressSchedulerTest, ThreadedPipelineMatchesSingleThreadedResult) {
  // The same dataflow under Start()/Join() (real scheduler thread) agrees
  // with RunToCompletion.
  for (int round = 0; round < 5; ++round) {
    auto q1 = std::make_shared<TupleQueue>(PushQueueOptions(4));
    auto q2 = std::make_shared<TupleQueue>(PushQueueOptions(4));
    std::atomic<int64_t> sum{0}, count{0};
    ExecutionObject eo("threaded-eo");
    eo.AddModule(std::make_shared<ProducerModule>("prod", q1, 0, 500));
    eo.AddModule(std::make_shared<EvenFilterModule>("filter", q1, q2));
    eo.AddModule(std::make_shared<SummerModule>("sum", q2, &sum, &count));
    eo.Start();
    eo.Join();
    EXPECT_EQ(sum.load(), 62250);
    EXPECT_EQ(count.load(), 250);
  }
}

// -- Eddy routing invariance (§2.2/§4.3) ----------------------------------

TEST(StressSchedulerTest, EddyResultsInvariantAcrossRoutingSchedules) {
  // The eddy may route adaptively (lottery, any seed), register operators
  // in any order, and batch decisions per the §4.3 knobs — the emitted
  // result set must be exactly the conjunction's answer every time.
  SchemaPtr schema = Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});

  ScheduleExplorer::Options eopts;
  eopts.trials = 16;
  eopts.quanta = {1, 2, 8, 32};  // Reused as the eddy batch-size knob.
  ScheduleExplorer explorer(77, eopts);

  auto trial = [&](const ScheduleExplorer::Schedule& s) {
    SourceLayout layout;
    const size_t src = layout.AddSource("s", schema);
    SmallBitset sources(layout.num_sources());
    sources.Set(src);

    auto bind = [&](ExprPtr e) {
      auto bound = e->Bind(*layout.full_schema());
      EXPECT_TRUE(bound.ok()) << bound.status();
      return *bound;
    };
    std::vector<ExprPtr> predicates = {
        bind(Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                          Expr::Literal(Value::Int64(10)))),
        bind(Expr::Binary(BinaryOp::kLe, Expr::Column("k"),
                          Expr::Literal(Value::Int64(180)))),
        bind(Expr::Binary(BinaryOp::kGe, Expr::Column("v"),
                          Expr::Literal(Value::Int64(40)))),
    };

    Eddy::Options opts;
    opts.batch_size = s.quantum;
    opts.fixed_sequence_length = 1 + s.quantum % 3;
    Eddy eddy(&layout, std::make_unique<LotteryPolicy>(s.trial_seed), opts);
    for (size_t idx : s.order) {
      eddy.AddOperator(std::make_shared<FilterOp>(
          "f" + std::to_string(idx), predicates[idx], sources));
    }

    std::vector<int64_t> emitted;
    eddy.SetSink(
        [&](RoutedTuple&& rt) { emitted.push_back(rt.tuple.cell(0).int64_value()); });
    for (int64_t k = 0; k < 200; ++k) {
      eddy.Inject(src, Tuple::Make({Value::Int64(k), Value::Int64(2 * k)}, k));
    }
    eddy.Drain();
    std::sort(emitted.begin(), emitted.end());
    std::string fp;
    for (int64_t k : emitted) fp += std::to_string(k) + ",";
    return fp;
  };

  auto result = explorer.Explore(3, trial);
  ASSERT_TRUE(result.ok()) << result.status();
  // Conjunction: 10 < k <= 180 && 2k >= 40  ->  k in [20, 180].
  std::string expect;
  for (int64_t k = 20; k <= 180; ++k) expect += std::to_string(k) + ",";
  EXPECT_EQ(*result, expect);
}

// -- Real multi-threaded lifecycle interleavings --------------------------

TEST(StressSchedulerTest, ConcurrentAddModuleWhileRunning) {
  ExecutionObject eo("dynamic-eo");
  eo.Start();

  constexpr size_t kAdders = 3;
  constexpr int kPipesPerAdder = 8;
  std::atomic<int64_t> sum{0}, count{0};
  StressRunner runner({kAdders, std::chrono::milliseconds(0), 11});
  runner.RunOnce([&](size_t thread, Rng&) {
    for (int p = 0; p < kPipesPerAdder; ++p) {
      auto q = std::make_shared<TupleQueue>(PushQueueOptions(16));
      const int64_t base = static_cast<int64_t>(thread) * 100000 + p * 1000;
      eo.AddModule(
          std::make_shared<ProducerModule>("prod", q, base, base + 100));
      eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum, &count));
    }
  });
  eo.Join();
  EXPECT_EQ(count.load(), static_cast<int64_t>(kAdders * kPipesPerAdder) * 100);

  int64_t expected = 0;
  for (size_t thread = 0; thread < kAdders; ++thread) {
    for (int p = 0; p < kPipesPerAdder; ++p) {
      const int64_t base = static_cast<int64_t>(thread) * 100000 + p * 1000;
      expected += 100 * base + 99 * 100 / 2;
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(StressSchedulerTest, ConcurrentStopCallsAreSafe) {
  for (uint64_t round = 0; round < 10; ++round) {
    auto q = std::make_shared<TupleQueue>(PushQueueOptions(8));
    std::atomic<int64_t> sum{0}, count{0};
    ExecutionObject eo("stop-eo");
    eo.AddModule(std::make_shared<ProducerModule>("prod", q, 0, 1 << 20));
    eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum, &count));
    eo.Start();
    StressRunner runner({3, std::chrono::milliseconds(0), round});
    runner.RunOnce([&](size_t, Rng& rng) {
      for (uint64_t spin = rng.NextBounded(20000); spin > 0; --spin) {
      }
      eo.Stop();  // All three threads race the shutdown path.
    });
    EXPECT_FALSE(eo.running());
    eo.Stop();  // And once more for idempotence.
  }
}

TEST(StressSchedulerTest, RacingStartAgainstStopNeverWedges) {
  // Regression: Stop() used to store stop_requested_ BEFORE acquiring
  // lifecycle_mu_. A Start() racing in between reset the flag and launched
  // a thread whose stop request was lost — Stop() then joined it forever.
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(8));
  std::atomic<int64_t> sum{0}, count{0};
  ExecutionObject eo("race-eo");
  eo.AddModule(std::make_shared<ProducerModule>("prod", q, 0, 1 << 20));
  eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum, &count));
  for (int round = 0; round < 200; ++round) {
    std::thread starter([&] { eo.Start(); });
    std::thread stopper([&] { eo.Stop(); });
    starter.join();
    stopper.join();
    eo.Stop();  // Whichever side won the race, leave the round stopped.
    ASSERT_FALSE(eo.running());
  }
}

TEST(StressSchedulerTest, StartStopCyclesWithTraffic) {
  // Repeated cold starts and shutdowns of the same EO with live modules:
  // the lifecycle must neither deadlock nor double-start.
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(8));
  std::atomic<int64_t> sum{0}, count{0};
  ExecutionObject eo("cycle-eo");
  eo.AddModule(std::make_shared<ProducerModule>("prod", q, 0, 200000));
  eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum, &count));
  for (int cycle = 0; cycle < 25; ++cycle) {
    eo.Start();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    eo.Stop();
  }
  eo.Start();
  eo.Join();  // Let it finish for a final, exact answer.
  EXPECT_EQ(count.load(), 200000);
}

}  // namespace
}  // namespace tcq
