#include "modules/aggregate.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kString, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple Row(const std::string& k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::String(k), Value::Int64(v)}, ts);
}

std::vector<AggregateSpec> Specs(std::initializer_list<AggKind> kinds) {
  SchemaPtr schema = KV();
  std::vector<AggregateSpec> specs;
  for (AggKind kind : kinds) {
    AggregateSpec s;
    s.kind = kind;
    if (kind != AggKind::kCount) {
      s.arg = *Expr::Column("v")->Bind(*schema);
    }
    s.output_name = AggKindToString(kind);
    specs.push_back(std::move(s));
  }
  return specs;
}

TEST(AggregateTest, UngroupedBasics) {
  auto specs = Specs({AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                      AggKind::kMin, AggKind::kMax});
  WindowAggregator agg(specs, {}, /*retain_tuples=*/false);
  agg.Add(Row("a", 10, 1));
  agg.Add(Row("b", 20, 2));
  agg.Add(Row("c", 30, 3));
  TupleVector rows = agg.Emit(3);
  ASSERT_EQ(rows.size(), 1u);
  const Tuple& r = rows[0];
  EXPECT_EQ(r.cell(0).int64_value(), 3);           // COUNT(*).
  EXPECT_EQ(r.cell(1).int64_value(), 60);          // SUM (int arg -> int).
  EXPECT_DOUBLE_EQ(r.cell(2).double_value(), 20);  // AVG.
  EXPECT_EQ(r.cell(3).int64_value(), 10);          // MIN.
  EXPECT_EQ(r.cell(4).int64_value(), 30);          // MAX.
  EXPECT_EQ(r.timestamp(), 3);
}

TEST(AggregateTest, EmptyUngroupedEmitsOneNullishRow) {
  // SQL semantics: SELECT SUM(v) over an empty set = one row, NULL.
  WindowAggregator agg(Specs({AggKind::kSum, AggKind::kCount}), {}, false);
  TupleVector rows = agg.Emit(0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].cell(0).is_null());
  EXPECT_EQ(rows[0].cell(1).int64_value(), 0);
}

TEST(AggregateTest, EmptyGroupedEmitsNothing) {
  SchemaPtr schema = KV();
  std::vector<ExprPtr> keys{*Expr::Column("k")->Bind(*schema)};
  WindowAggregator agg(Specs({AggKind::kSum}), keys, false);
  EXPECT_TRUE(agg.Emit(0).empty());
}

TEST(AggregateTest, GroupedCounts) {
  SchemaPtr schema = KV();
  std::vector<ExprPtr> keys{*Expr::Column("k")->Bind(*schema)};
  WindowAggregator agg(Specs({AggKind::kCount, AggKind::kSum}), keys, false);
  agg.Add(Row("a", 1, 1));
  agg.Add(Row("b", 2, 2));
  agg.Add(Row("a", 3, 3));
  TupleVector rows = agg.Emit(3);
  ASSERT_EQ(rows.size(), 2u);  // Sorted by key: a, b.
  EXPECT_EQ(rows[0].cell(0).string_value(), "a");
  EXPECT_EQ(rows[0].cell(1).int64_value(), 2);
  EXPECT_EQ(rows[0].cell(2).int64_value(), 4);
  EXPECT_EQ(rows[1].cell(0).string_value(), "b");
  EXPECT_EQ(rows[1].cell(1).int64_value(), 1);
}

TEST(AggregateTest, SlidingWindowSubtractablePath) {
  // COUNT/SUM/AVG retire in O(1): recomputes() stays 0.
  WindowAggregator agg(Specs({AggKind::kCount, AggKind::kSum}), {}, true);
  for (Timestamp ts = 1; ts <= 10; ++ts) agg.Add(Row("a", ts, ts));
  agg.SetWindow(6, 10);
  EXPECT_EQ(agg.recomputes(), 0u);
  TupleVector rows = agg.Emit(10);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cell(0).int64_value(), 5);       // ts 6..10.
  EXPECT_EQ(rows[0].cell(1).int64_value(), 6 + 7 + 8 + 9 + 10);
  EXPECT_EQ(agg.buffered_tuples(), 5u);
}

TEST(AggregateTest, SlidingWindowMaxRequiresRecompute) {
  // §4.1.2: sliding MAX must retain and rescan the window.
  WindowAggregator agg(Specs({AggKind::kMax}), {}, true);
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    agg.Add(Row("a", 100 - ts, ts));  // Decreasing values: max leaves first.
  }
  TupleVector before = agg.Emit(10);
  EXPECT_EQ(before[0].cell(0).int64_value(), 99);  // v of ts=1.
  agg.SetWindow(6, 10);
  EXPECT_GE(agg.recomputes(), 1u);
  TupleVector after = agg.Emit(10);
  EXPECT_EQ(after[0].cell(0).int64_value(), 94);  // v of ts=6.
}

TEST(AggregateTest, LandmarkMaxIsIncremental) {
  // Landmark windows never retire: MAX with no retained buffer.
  WindowAggregator agg(Specs({AggKind::kMax}), {}, /*retain_tuples=*/false);
  for (Timestamp ts = 1; ts <= 1000; ++ts) agg.Add(Row("a", ts, ts));
  EXPECT_EQ(agg.buffered_tuples(), 0u);  // O(1) state.
  TupleVector rows = agg.Emit(1000);
  EXPECT_EQ(rows[0].cell(0).int64_value(), 1000);
}

TEST(AggregateTest, GroupDisappearsWhenAllRetired) {
  SchemaPtr schema = KV();
  std::vector<ExprPtr> keys{*Expr::Column("k")->Bind(*schema)};
  WindowAggregator agg(Specs({AggKind::kCount}), keys, true);
  agg.Add(Row("a", 1, 1));
  agg.Add(Row("b", 2, 5));
  agg.SetWindow(4, 10);
  TupleVector rows = agg.Emit(10);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cell(0).string_value(), "b");
}

TEST(AggregateTest, NullsAreIgnored) {
  SchemaPtr schema = Schema::Make({{"v", ValueType::kInt64, ""}});
  AggregateSpec count_star;
  count_star.kind = AggKind::kCount;
  AggregateSpec avg;
  avg.kind = AggKind::kAvg;
  avg.arg = *Expr::Column("v")->Bind(*schema);
  WindowAggregator agg({count_star, avg}, {}, false);
  agg.Add(Tuple::Make({Value::Int64(10)}, 1));
  agg.Add(Tuple::Make({Value::Null()}, 2));
  TupleVector rows = agg.Emit(2);
  EXPECT_EQ(rows[0].cell(0).int64_value(), 2);          // COUNT(*) counts rows.
  EXPECT_DOUBLE_EQ(rows[0].cell(1).double_value(), 10);  // AVG skips NULL.
}

TEST(AggregateTest, ResetClearsEverything) {
  WindowAggregator agg(Specs({AggKind::kSum}), {}, true);
  agg.Add(Row("a", 5, 1));
  agg.Reset();
  // Back to the empty-ungrouped state: one NULL row, nothing buffered.
  TupleVector rows = agg.Emit(1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].cell(0).is_null());
  EXPECT_EQ(agg.buffered_tuples(), 0u);
}

// Property: sliding-window COUNT/SUM via subtraction == recompute oracle.
class SlidingAggPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlidingAggPropertyTest, SubtractionMatchesRecompute) {
  Rng rng(GetParam());
  WindowAggregator agg(Specs({AggKind::kCount, AggKind::kSum}), {}, true);
  std::vector<std::pair<Timestamp, int64_t>> data;
  Timestamp ts = 0;
  for (int i = 0; i < 300; ++i) {
    ts += 1 + static_cast<Timestamp>(rng.NextBounded(3));
    const int64_t v = rng.NextInt(-50, 50);
    data.emplace_back(ts, v);
    agg.Add(Row("x", v, ts));
    if (i % 10 == 9) {
      const Timestamp lo = ts - 20;
      agg.SetWindow(lo, ts);
      int64_t count = 0, sum = 0;
      for (auto& [dts, dv] : data) {
        if (dts >= lo && dts <= ts) {
          ++count;
          sum += dv;
        }
      }
      TupleVector rows = agg.Emit(ts);
      ASSERT_EQ(rows.size(), 1u);  // Ungrouped: always one row.
      ASSERT_EQ(rows[0].cell(0).int64_value(), count);
      if (count == 0) {
        ASSERT_TRUE(rows[0].cell(1).is_null());
      } else {
        ASSERT_EQ(rows[0].cell(1).int64_value(), sum);
      }
      // Oracle prune to keep the comparison windows aligned.
      data.erase(std::remove_if(data.begin(), data.end(),
                                [&](auto& p) { return p.first < lo; }),
                 data.end());
    }
  }
  EXPECT_EQ(agg.recomputes(), 0u);  // Subtractable all the way.
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlidingAggPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tcq
