#include "psoup/psoup.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tcq {
namespace {

SchemaPtr SensorSchema() {
  return Schema::Make({{"timestamp", ValueType::kInt64, ""},
                       {"sensorId", ValueType::kInt64, ""},
                       {"temperature", ValueType::kDouble, ""}});
}

Tuple Reading(int64_t ts, int64_t sensor, double temp) {
  return Tuple::Make(
      {Value::Int64(ts), Value::Int64(sensor), Value::Double(temp)}, ts);
}

ExprPtr SensorEq(int64_t id) {
  return Expr::Binary(BinaryOp::kEq, Expr::Column("sensorId"),
                      Expr::Literal(Value::Int64(id)));
}

ExprPtr TempGt(double t) {
  return Expr::Binary(BinaryOp::kGt, Expr::Column("temperature"),
                      Expr::Literal(Value::Double(t)));
}

TEST(PSoupTest, NewDataAppliedToOldQueries) {
  PSoup psoup(SensorSchema());
  auto q = psoup.Register(SensorEq(1), /*window_width=*/100);
  ASSERT_TRUE(q.ok());
  psoup.OnData(Reading(1, 1, 20));
  psoup.OnData(Reading(2, 2, 21));
  psoup.OnData(Reading(3, 1, 22));
  auto results = psoup.Invoke(*q, /*now=*/3);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].timestamp(), 1);
  EXPECT_EQ((*results)[1].timestamp(), 3);
}

TEST(PSoupTest, NewQueryAppliedToOldData) {
  // The PSoup signature move: register AFTER the data arrived.
  PSoup psoup(SensorSchema());
  for (int64_t ts = 1; ts <= 10; ++ts) {
    psoup.OnData(Reading(ts, ts % 3, 20.0 + ts));
  }
  auto q = psoup.Register(SensorEq(0), 100);
  ASSERT_TRUE(q.ok());
  auto results = psoup.Invoke(*q, 10);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);  // ts 3, 6, 9.
}

TEST(PSoupTest, WindowImposedAtInvocation) {
  PSoup psoup(SensorSchema());
  auto q = psoup.Register(nullptr, /*window_width=*/5);
  ASSERT_TRUE(q.ok());
  for (int64_t ts = 1; ts <= 20; ++ts) psoup.OnData(Reading(ts, 1, 20));
  // Window [16, 20].
  auto r = psoup.Invoke(*q, 20);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  EXPECT_EQ(r->front().timestamp(), 16);
  // Disconnected client invoking with an older "now" sees that window.
  r = psoup.Invoke(*q, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->front().timestamp(), 6);
  EXPECT_EQ(r->back().timestamp(), 10);
}

TEST(PSoupTest, DisconnectedOperation) {
  // Results keep materializing while no client is attached; reconnection
  // is a pure lookup.
  PSoup psoup(SensorSchema());
  auto q = psoup.Register(TempGt(25.0), 1000);
  ASSERT_TRUE(q.ok());
  for (int64_t ts = 1; ts <= 100; ++ts) {
    psoup.OnData(Reading(ts, 1, ts >= 50 ? 30.0 : 20.0));
  }
  auto r = psoup.Invoke(*q, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 51u);  // ts 50..100.
}

TEST(PSoupTest, UnregisterStopsMaterialization) {
  PSoup psoup(SensorSchema());
  auto q = psoup.Register(nullptr, 100);
  ASSERT_TRUE(q.ok());
  psoup.OnData(Reading(1, 1, 20));
  ASSERT_TRUE(psoup.Unregister(*q).ok());
  EXPECT_FALSE(psoup.Invoke(*q, 1).ok());
  EXPECT_EQ(psoup.materialized_results(), 0u);
  EXPECT_FALSE(psoup.Unregister(*q).ok());  // Idempotence check.
}

TEST(PSoupTest, MultipleQueriesMaterializeIndependently) {
  PSoup psoup(SensorSchema());
  auto q1 = psoup.Register(SensorEq(1), 100);
  auto q2 = psoup.Register(TempGt(25), 100);
  ASSERT_TRUE(q1.ok() && q2.ok());
  psoup.OnData(Reading(1, 1, 30));  // Both.
  psoup.OnData(Reading(2, 2, 30));  // q2 only.
  psoup.OnData(Reading(3, 1, 20));  // q1 only.
  EXPECT_EQ(psoup.Invoke(*q1, 3)->size(), 2u);
  EXPECT_EQ(psoup.Invoke(*q2, 3)->size(), 2u);
}

TEST(PSoupTest, BoundedHistoryLimitsNewQueryBackfill) {
  PSoup::Options opts;
  opts.history_span = 10;
  PSoup psoup(SensorSchema(), opts);
  for (int64_t ts = 1; ts <= 100; ++ts) psoup.OnData(Reading(ts, 1, 20));
  EXPECT_LE(psoup.history_size(), 10u);
  auto q = psoup.Register(nullptr, 1000);
  ASSERT_TRUE(q.ok());
  // Backfill covers only retained history (ts 91..100).
  EXPECT_EQ(psoup.Invoke(*q, 100)->size(), 10u);
}

TEST(PSoupTest, EvictBeforePrunesResults) {
  PSoup psoup(SensorSchema());
  auto q = psoup.Register(nullptr, 1000);
  ASSERT_TRUE(q.ok());
  for (int64_t ts = 1; ts <= 10; ++ts) psoup.OnData(Reading(ts, 1, 20));
  psoup.EvictBefore(6);
  EXPECT_EQ(psoup.Invoke(*q, 10)->size(), 5u);
  EXPECT_EQ(psoup.history_size(), 5u);
}

TEST(PSoupTest, InvalidWindowRejected) {
  PSoup psoup(SensorSchema());
  EXPECT_FALSE(psoup.Register(nullptr, 0).ok());
  EXPECT_FALSE(psoup.Register(nullptr, -5).ok());
}

TEST(PSoupTest, InvokeUnknownQueryFails) {
  PSoup psoup(SensorSchema());
  EXPECT_FALSE(psoup.Invoke(3, 10).ok());
}

// Property: materialized invocation == recompute-from-history oracle for
// random predicates and invocation times (within retained history).
class PSoupPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PSoupPropertyTest, InvocationMatchesRecompute) {
  Rng rng(GetParam());
  PSoup psoup(SensorSchema());
  SchemaPtr schema = SensorSchema();

  std::vector<std::pair<QueryId, ExprPtr>> queries;  // (id, bound pred).
  std::vector<Timestamp> widths;
  TupleVector all_data;
  Timestamp now = 0;

  for (int step = 0; step < 400; ++step) {
    if (queries.size() < 8 && rng.NextBool(0.05)) {
      ExprPtr pred = rng.NextBool(0.5)
                         ? SensorEq(static_cast<int64_t>(rng.NextBounded(3)))
                         : TempGt(20.0 + static_cast<double>(rng.NextBounded(10)));
      const Timestamp width = 1 + static_cast<Timestamp>(rng.NextBounded(50));
      auto q = psoup.Register(pred, width);
      ASSERT_TRUE(q.ok());
      queries.emplace_back(*q, *pred->Bind(*schema));
      widths.push_back(width);
    }
    ++now;
    Tuple t = Reading(now, static_cast<int64_t>(rng.NextBounded(3)),
                      20.0 + static_cast<double>(rng.NextBounded(10)));
    all_data.push_back(t);
    psoup.OnData(t);

    if (!queries.empty() && rng.NextBool(0.1)) {
      const size_t pick = rng.NextBounded(queries.size());
      const auto& [qid, pred] = queries[pick];
      auto got = psoup.Invoke(qid, now);
      ASSERT_TRUE(got.ok());
      // Oracle: rescan everything.
      TupleVector expect;
      const Timestamp lo = now - widths[pick] + 1;
      for (const Tuple& d : all_data) {
        if (d.timestamp() < lo || d.timestamp() > now) continue;
        const Value keep = pred->Eval(d);
        if (!keep.is_null() && keep.bool_value()) expect.push_back(d);
      }
      ASSERT_EQ(got->size(), expect.size());
      for (size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ((*got)[i].timestamp(), expect[i].timestamp());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PSoupPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace tcq
