#include "modules/sort_tc.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple Row(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

TupleQueuePtr Q(size_t cap = 65536) {
  return std::make_shared<TupleQueue>(PushQueueOptions(cap));
}

void RunModule(FjordModule* m) {
  while (m->Step(64) != FjordModule::StepResult::kDone) {
  }
}

TupleVector DrainAll(const TupleQueuePtr& q) {
  TupleVector out;
  while (auto t = q->Dequeue()) out.push_back(std::move(*t));
  return out;
}

ExprPtr KeyExpr() { return *Expr::Column("k")->Bind(*KV()); }

TEST(SortModuleTest, FullSortAtEndOfStream) {
  auto in = Q(), out = Q();
  SortModule sort("sort", in, out, KeyExpr(), kMaxTimestamp);
  for (int64_t k : {5, 1, 4, 2, 3}) ASSERT_TRUE(in->Enqueue(Row(k, k, 1)));
  in->Close();
  RunModule(&sort);
  TupleVector result = DrainAll(out);
  ASSERT_EQ(result.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result[static_cast<size_t>(i)].cell(0).int64_value(), i + 1);
  }
}

TEST(SortModuleTest, PerWindowSortPreservesWindowOrder) {
  auto in = Q(), out = Q();
  SortModule sort("sort", in, out, KeyExpr(), /*window_span=*/10);
  // Window [1,10]: keys 9, 3, 7. Window [11,20]: keys 2, 8.
  ASSERT_TRUE(in->Enqueue(Row(9, 0, 1)));
  ASSERT_TRUE(in->Enqueue(Row(3, 0, 5)));
  ASSERT_TRUE(in->Enqueue(Row(7, 0, 9)));
  ASSERT_TRUE(in->Enqueue(Row(2, 0, 11)));
  ASSERT_TRUE(in->Enqueue(Row(8, 0, 15)));
  in->Close();
  RunModule(&sort);
  TupleVector result = DrainAll(out);
  ASSERT_EQ(result.size(), 5u);
  // Sorted within windows; windows in time order.
  EXPECT_EQ(result[0].cell(0).int64_value(), 3);
  EXPECT_EQ(result[1].cell(0).int64_value(), 7);
  EXPECT_EQ(result[2].cell(0).int64_value(), 9);
  EXPECT_EQ(result[3].cell(0).int64_value(), 2);
  EXPECT_EQ(result[4].cell(0).int64_value(), 8);
}

TEST(SortModuleTest, StableForEqualKeys) {
  auto in = Q(), out = Q();
  SortModule sort("sort", in, out, KeyExpr(), kMaxTimestamp);
  ASSERT_TRUE(in->Enqueue(Row(1, 100, 1)));
  ASSERT_TRUE(in->Enqueue(Row(1, 200, 2)));
  ASSERT_TRUE(in->Enqueue(Row(0, 300, 3)));
  in->Close();
  RunModule(&sort);
  TupleVector result = DrainAll(out);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].cell(1).int64_value(), 300);
  EXPECT_EQ(result[1].cell(1).int64_value(), 100);  // Arrival order kept.
  EXPECT_EQ(result[2].cell(1).int64_value(), 200);
}

Tuple Edge(int64_t a, int64_t b, Timestamp ts = 0) {
  return Tuple::Make({Value::Int64(a), Value::Int64(b)}, ts);
}

std::set<std::pair<int64_t, int64_t>> PairsOf(const TupleVector& rows) {
  std::set<std::pair<int64_t, int64_t>> out;
  for (const Tuple& t : rows) {
    out.insert({t.cell(0).int64_value(), t.cell(1).int64_value()});
  }
  return out;
}

TEST(TransitiveClosureTest, ChainDerivesAllPairs) {
  auto in = Q(), out = Q();
  TransitiveClosureModule tc("tc", in, out);
  // 1 -> 2 -> 3 -> 4.
  for (int64_t i = 1; i < 4; ++i) ASSERT_TRUE(in->Enqueue(Edge(i, i + 1)));
  in->Close();
  RunModule(&tc);
  auto pairs = PairsOf(DrainAll(out));
  EXPECT_EQ(pairs.size(), 6u);
  EXPECT_TRUE(pairs.count({1, 4}));
  EXPECT_TRUE(pairs.count({2, 4}));
  EXPECT_TRUE(pairs.count({1, 3}));
  EXPECT_EQ(tc.closure_size(), 6u);
}

TEST(TransitiveClosureTest, IncrementalEdgeJoinsComponents) {
  auto in = Q(), out = Q();
  TransitiveClosureModule tc("tc", in, out);
  // Two components: {1->2} and {3->4}; then bridge 2->3.
  ASSERT_TRUE(in->Enqueue(Edge(1, 2)));
  ASSERT_TRUE(in->Enqueue(Edge(3, 4)));
  while (tc.Step(64) == FjordModule::StepResult::kDidWork) {
  }
  EXPECT_EQ(PairsOf(DrainAll(out)).size(), 2u);
  // The bridge derives 2->3, 2->4, 1->3, 1->4 (4 new pairs).
  ASSERT_TRUE(in->Enqueue(Edge(2, 3)));
  in->Close();
  RunModule(&tc);
  auto fresh = PairsOf(DrainAll(out));
  EXPECT_EQ(fresh.size(), 4u);
  EXPECT_TRUE(fresh.count({1, 4}));
  EXPECT_EQ(tc.closure_size(), 6u);
}

TEST(TransitiveClosureTest, DuplicateEdgesEmitNothingNew) {
  auto in = Q(), out = Q();
  TransitiveClosureModule tc("tc", in, out);
  ASSERT_TRUE(in->Enqueue(Edge(1, 2)));
  ASSERT_TRUE(in->Enqueue(Edge(1, 2)));
  ASSERT_TRUE(in->Enqueue(Edge(1, 2)));
  in->Close();
  RunModule(&tc);
  EXPECT_EQ(DrainAll(out).size(), 1u);
}

TEST(TransitiveClosureTest, CyclesTerminate) {
  auto in = Q(), out = Q();
  TransitiveClosureModule tc("tc", in, out);
  ASSERT_TRUE(in->Enqueue(Edge(1, 2)));
  ASSERT_TRUE(in->Enqueue(Edge(2, 3)));
  ASSERT_TRUE(in->Enqueue(Edge(3, 1)));  // Cycle.
  in->Close();
  RunModule(&tc);
  auto pairs = PairsOf(DrainAll(out));
  // All ordered pairs among {1,2,3} except reflexive: 6.
  EXPECT_EQ(pairs.size(), 6u);
}

// Property: closure equals Floyd-Warshall reachability on random graphs.
class TcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcPropertyTest, MatchesFloydWarshall) {
  Rng rng(GetParam());
  const int n = 12;
  bool adj[n][n] = {};
  auto in = Q(), out = Q();
  TransitiveClosureModule tc("tc", in, out);
  for (int e = 0; e < 20; ++e) {
    const int a = static_cast<int>(rng.NextBounded(n));
    const int b = static_cast<int>(rng.NextBounded(n));
    if (a == b) continue;
    adj[a][b] = true;
    ASSERT_TRUE(in->Enqueue(Edge(a, b)));
  }
  in->Close();
  RunModule(&tc);
  // Floyd-Warshall reachability oracle.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        adj[i][j] = adj[i][j] || (adj[i][k] && adj[k][j]);
      }
    }
  }
  auto pairs = PairsOf(DrainAll(out));
  size_t expected = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && adj[i][j]) {
        ++expected;
        ASSERT_TRUE(pairs.count({i, j})) << i << "->" << j;
      }
    }
  }
  ASSERT_EQ(pairs.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tcq
