#include "fjords/partitioned_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flux/partition.h"
#include "telemetry/metrics.h"
#include "tuple/tuple.h"

namespace tcq {
namespace {

QueueOptions NonBlocking(size_t capacity) {
  QueueOptions o;
  o.capacity = capacity;
  o.enqueue = QueueEnd::kNonBlocking;
  o.dequeue = QueueEnd::kNonBlocking;
  return o;
}

TEST(PartitionedQueueTest, ScatterPreservesPerPartitionOrder) {
  PartitionedQueue<int> pq(3, NonBlocking(64), "tcq.test.pqorder");
  std::vector<int> items;
  for (int i = 0; i < 30; ++i) items.push_back(i);
  EXPECT_EQ(pq.Scatter(std::move(items), [](int v) {
    return static_cast<size_t>(v) % 3;
  }),
            30u);
  EXPECT_EQ(pq.TotalSize(), 30u);

  for (size_t p = 0; p < 3; ++p) {
    std::vector<int> out;
    EXPECT_EQ(pq.partition(p).DequeueUpTo(64, &out), 10u);
    for (size_t i = 0; i < out.size(); ++i) {
      // Partition p receives p, p+3, p+6, ... in arrival order.
      EXPECT_EQ(out[i], static_cast<int>(p + 3 * i));
    }
  }
}

TEST(PartitionedQueueTest, HashPartitionerRoutesConsistentKeys) {
  // The Flux routing policy: equal keys always land on the same partition,
  // and numerically equal keys of different types agree (Value::Hash is
  // consistent with cross-type Compare).
  HashPartitioner part(4);
  for (int64_t k = 0; k < 100; ++k) {
    const size_t p = part.PartitionOf(Value::Int64(k));
    EXPECT_EQ(part.PartitionOf(Value::Int64(k)), p);
    EXPECT_EQ(part.PartitionOf(Value::Double(static_cast<double>(k))), p);
    EXPECT_LT(p, 4u);
  }
  // Tuple form keys off the given column.
  Tuple t = Tuple::Make({Value::String("MSFT"), Value::Int64(7)}, 0);
  EXPECT_EQ(part.PartitionOf(t, 1), part.PartitionOf(Value::Int64(7)));
  EXPECT_EQ(part.PartitionOf(t, 0), part.PartitionOf(Value::String("MSFT")));
}

TEST(PartitionedQueueTest, CloseAllExhaustsAfterDrain) {
  PartitionedQueue<int> pq(2, NonBlocking(8), "tcq.test.pqclose");
  EXPECT_TRUE(pq.EnqueuePartition(0, 42));
  EXPECT_FALSE(pq.AllExhausted());
  pq.CloseAll();
  EXPECT_FALSE(pq.AllExhausted());  // Partition 0 still holds the 42.
  EXPECT_FALSE(pq.EnqueuePartition(1, 43));  // Closed: rejected.
  std::vector<int> out;
  EXPECT_EQ(pq.partition(0).DequeueUpTo(8, &out), 1u);
  EXPECT_TRUE(pq.AllExhausted());
}

#ifndef TCQ_METRICS_DISABLED
TEST(PartitionedQueueTest, PublishesRoutedDepthAndImbalance) {
  MetricRegistry& reg = MetricRegistry::Global();
  PartitionedQueue<int> pq(2, NonBlocking(64), "tcq.test.pqstats");

  // Skewed scatter: 6 items to partition 0, 2 to partition 1.
  std::vector<int> items = {0, 0, 0, 0, 0, 0, 1, 1};
  EXPECT_EQ(pq.Scatter(std::move(items),
                       [](int v) { return static_cast<size_t>(v); }),
            8u);
  EXPECT_EQ(reg.GetCounter("tcq.test.pqstats", 0, "routed")->value(), 6u);
  EXPECT_EQ(reg.GetCounter("tcq.test.pqstats", 1, "routed")->value(), 2u);
  EXPECT_EQ(reg.GetGauge("tcq.test.pqstats", 0, "queue_depth")->value(), 6);
  EXPECT_EQ(reg.GetGauge("tcq.test.pqstats", 1, "queue_depth")->value(), 2);
  // max/mean = 6/4 = 150%.
  EXPECT_EQ(reg.GetGauge("tcq.test.pqstats.imbalance")->value(), 150);

  // EnqueuePartition books the caller-declared routed units (a task that
  // carries a batch of N tuples books N, not 1).
  EXPECT_TRUE(pq.EnqueuePartition(1, 9, /*routed_count=*/5));
  EXPECT_EQ(reg.GetCounter("tcq.test.pqstats", 1, "routed")->value(), 7u);

  // An idle exchange reads 0, not 100: "no backlog" must be
  // distinguishable from "loaded but perfectly balanced", or an idle
  // pipeline would feed the rebalance trigger a balanced-looking signal.
  std::vector<int> drain;
  pq.partition(0).DequeueUpTo(64, &drain);
  pq.partition(1).DequeueUpTo(64, &drain);
  pq.RefreshDepthStats();
  EXPECT_EQ(reg.GetGauge("tcq.test.pqstats.imbalance")->value(), 0);

  // And loading it again restores a live reading.
  EXPECT_TRUE(pq.EnqueuePartition(0, 1));
  EXPECT_TRUE(pq.EnqueuePartition(1, 2));
  pq.RefreshDepthStats();
  EXPECT_EQ(reg.GetGauge("tcq.test.pqstats.imbalance")->value(), 100);
}
#endif  // TCQ_METRICS_DISABLED

TEST(PartitionMapTest, RoundRobinDefaultAndDynamicOwnership) {
  PartitionMap map(8, 3);
  EXPECT_EQ(map.num_buckets(), 8u);
  EXPECT_EQ(map.num_shards(), 3u);
  for (size_t b = 0; b < 8; ++b) EXPECT_EQ(map.ShardOf(b), b % 3);
  EXPECT_EQ(map.BucketsOwnedBy(0).size(), 3u);  // 0, 3, 6.

  // Key -> bucket is the HashPartitioner policy and never changes; the
  // bucket -> shard half is what SetOwner flips.
  const Value key = Value::Int64(42);
  const size_t bucket = map.BucketOf(key);
  const size_t before = map.ShardOf(key);
  const size_t moved_to = (before + 1) % 3;
  map.SetOwner(bucket, moved_to);
  EXPECT_EQ(map.BucketOf(key), bucket);
  EXPECT_EQ(map.ShardOf(key), moved_to);
  EXPECT_EQ(map.Owners()[bucket], moved_to);

  // Tuple form keys off the given column, matching the Value form.
  Tuple t = Tuple::Make({Value::String("x"), Value::Int64(42)}, 0);
  EXPECT_EQ(map.ShardOf(t, 1), moved_to);
}

TEST(PartitionMapTest, ExplicitInitialOwners) {
  PartitionMap map(4, 2, {1, 1, 1, 0});
  EXPECT_EQ(map.BucketsOwnedBy(1).size(), 3u);
  EXPECT_EQ(map.ShardOf(3), 0u);
}

}  // namespace
}  // namespace tcq
