#ifndef TCQ_TESTS_CONSERVATION_H_
#define TCQ_TESTS_CONSERVATION_H_

// Reusable conservation-law assertions for the sharded-exchange stress
// suite (rebalance, sharded, failover). The laws hold under ANY thread
// interleaving — including mid-stream bucket migrations and process-pair
// failovers — which is what makes them usable as TSan stress oracles:
//
//   * routed == processed == tuples pushed: the exchange neither drops
//     nor duplicates work. Failover replay counts a recovered task as
//     processed exactly when the dead primary had not (the LSN floor).
//   * queue_depth == 0 after a successful Quiesce(): barriers really do
//     drain everything ahead of them.
//   * a see-all query's emission count equals tuples pushed: results are
//     conserved end-to-end through migrations and promotions (suppressed
//     replay emissions never reach the sink twice; lost ones are replayed).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "cacq/sharded_engine.h"

namespace tcq {

/// Thread-safe per-query emission tally, pluggable as the engine sink.
/// Counts survive query churn (hits for removed QueryIds stay counted).
class EmissionLedger {
 public:
  ShardedEngine::Sink MakeSink() {
    return [this](std::vector<ShardedEngine::Emission>&& batch) {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [q, t] : batch) {
        (void)t;
        ++hits_[q];
        ++total_;
      }
    };
  }

  uint64_t hits(QueryId q) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = hits_.find(q);
    return it == hits_.end() ? 0 : it->second;
  }

  uint64_t total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  mutable std::mutex mu_;
  std::map<QueryId, uint64_t> hits_;
  uint64_t total_ = 0;
};

/// Exchange-level conservation: every tuple pushed was routed to exactly
/// one shard and injected by exactly one worker (original or promoted),
/// and nothing is left in flight. Call after a successful Quiesce() with
/// producers stopped; totals are summed across shards because migrations
/// and failovers shift per-shard attribution, never the total.
inline void ExpectExchangeConservation(const ShardedEngine& engine,
                                       uint64_t expected_total) {
  uint64_t routed = 0;
  uint64_t processed = 0;
  for (const ShardedEngine::ShardStats& s : engine.shard_stats()) {
    routed += s.routed;
    processed += s.processed;
    EXPECT_EQ(s.queue_depth, 0u) << "backlog after quiesce";
  }
  EXPECT_EQ(routed, expected_total) << "exchange dropped/duplicated routing";
  EXPECT_EQ(processed, expected_total) << "workers dropped/duplicated tasks";
}

}  // namespace tcq

#endif  // TCQ_TESTS_CONSERVATION_H_
