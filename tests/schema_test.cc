#include "tuple/schema.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

SchemaPtr StockSchema(const std::string& qualifier = "") {
  return Schema::Make({{"timestamp", ValueType::kInt64, qualifier},
                       {"stockSymbol", ValueType::kString, qualifier},
                       {"closingPrice", ValueType::kDouble, qualifier}});
}

TEST(SchemaTest, BasicAccessors) {
  SchemaPtr s = StockSchema();
  EXPECT_EQ(s->num_fields(), 3u);
  EXPECT_EQ(s->field(1).name, "stockSymbol");
  EXPECT_EQ(s->field(2).type, ValueType::kDouble);
}

TEST(SchemaTest, IndexOfBareName) {
  SchemaPtr s = StockSchema();
  ASSERT_TRUE(s->IndexOf("closingPrice").ok());
  EXPECT_EQ(s->IndexOf("closingPrice").value(), 2u);
}

TEST(SchemaTest, IndexOfMissingName) {
  SchemaPtr s = StockSchema();
  EXPECT_EQ(s->IndexOf("volume").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, QualifiedLookup) {
  SchemaPtr s = StockSchema("c1");
  EXPECT_EQ(s->IndexOf("c1.closingPrice").value(), 2u);
  EXPECT_EQ(s->IndexOf("c2.closingPrice").status().code(),
            StatusCode::kNotFound);
  // Bare lookup still works when unambiguous.
  EXPECT_EQ(s->IndexOf("closingPrice").value(), 2u);
}

TEST(SchemaTest, AmbiguousBareNameRejected) {
  SchemaPtr joined = Schema::Concat(*StockSchema("c1"), *StockSchema("c2"));
  EXPECT_EQ(joined->IndexOf("closingPrice").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(joined->IndexOf("c1.closingPrice").value(), 2u);
  EXPECT_EQ(joined->IndexOf("c2.closingPrice").value(), 5u);
}

TEST(SchemaTest, ConcatPreservesOrderAndQualifiers) {
  SchemaPtr joined = Schema::Concat(*StockSchema("c1"), *StockSchema("c2"));
  EXPECT_EQ(joined->num_fields(), 6u);
  EXPECT_EQ(joined->field(0).qualifier, "c1");
  EXPECT_EQ(joined->field(3).qualifier, "c2");
  EXPECT_EQ(joined->field(3).name, "timestamp");
}

TEST(SchemaTest, WithQualifierRewritesAll) {
  SchemaPtr s = StockSchema()->WithQualifier("x");
  for (const Field& f : s->fields()) EXPECT_EQ(f.qualifier, "x");
  EXPECT_EQ(s->IndexOf("x.timestamp").value(), 0u);
}

TEST(SchemaTest, QualifiedNameFormatting) {
  Field f{"price", ValueType::kDouble, "s"};
  EXPECT_EQ(f.QualifiedName(), "s.price");
  Field bare{"price", ValueType::kDouble, ""};
  EXPECT_EQ(bare.QualifiedName(), "price");
}

TEST(SchemaTest, ToStringMentionsFieldsAndTypes) {
  const std::string str = StockSchema("q")->ToString();
  EXPECT_NE(str.find("q.stockSymbol"), std::string::npos);
  EXPECT_NE(str.find("STRING"), std::string::npos);
}

}  // namespace
}  // namespace tcq
