#include "flux/flux.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tcq {
namespace {

Tuple KV(int64_t k, double v) {
  return Tuple::Make({Value::Int64(k), Value::Double(v)}, 0);
}

/// Uniform batch over `keys` distinct keys.
TupleVector UniformBatch(size_t n, uint64_t keys, Rng* rng) {
  TupleVector batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(KV(static_cast<int64_t>(rng->NextBounded(keys)), 1.0));
  }
  return batch;
}

/// Heavily skewed batch (zipf over keys).
TupleVector SkewedBatch(size_t n, uint64_t keys, double skew, Rng* rng) {
  TupleVector batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(
        KV(static_cast<int64_t>(rng->NextZipf(keys, skew)), 1.0));
  }
  return batch;
}

std::map<Value, FluxCluster::KeyState> Reference(const TupleVector& data) {
  std::map<Value, FluxCluster::KeyState> ref;
  for (const Tuple& t : data) {
    auto& ks = ref[t.cell(0)];
    ks.count += 1;
    ks.sum += t.cell(1).AsDouble();
  }
  return ref;
}

void ExpectSnapshotEquals(const FluxCluster& cluster,
                          const std::map<Value, FluxCluster::KeyState>& ref) {
  auto snap = cluster.Snapshot();
  ASSERT_EQ(snap.size(), ref.size());
  for (const auto& [key, ks] : ref) {
    auto it = snap.find(key);
    ASSERT_NE(it, snap.end()) << key.ToString();
    EXPECT_EQ(it->second.count, ks.count) << key.ToString();
    EXPECT_DOUBLE_EQ(it->second.sum, ks.sum) << key.ToString();
  }
}

TEST(FluxTest, AggregatesMatchReferenceNoFaults) {
  Rng rng(1);
  FluxCluster::Options opts;
  opts.num_nodes = 4;
  opts.enable_repartitioning = false;
  FluxCluster cluster(opts);
  TupleVector data = UniformBatch(5000, 64, &rng);
  cluster.Feed(data);
  cluster.Run();
  EXPECT_EQ(cluster.total_backlog(), 0u);
  ExpectSnapshotEquals(cluster, Reference(data));
}

TEST(FluxTest, RepartitioningPreservesCorrectness) {
  Rng rng(2);
  FluxCluster::Options opts;
  opts.num_nodes = 4;
  opts.enable_repartitioning = true;
  opts.min_backlog_for_move = 16;
  FluxCluster cluster(opts);
  TupleVector data = SkewedBatch(20000, 128, 1.2, &rng);
  // Feed in chunks, ticking between, so imbalance develops and moves fire.
  size_t fed = 0;
  while (fed < data.size()) {
    const size_t n = std::min<size_t>(2000, data.size() - fed);
    cluster.Feed(TupleVector(data.begin() + fed, data.begin() + fed + n));
    fed += n;
    cluster.Tick();
  }
  cluster.Run();
  EXPECT_GT(cluster.moves(), 0u) << "skew should trigger repartitioning";
  ExpectSnapshotEquals(cluster, Reference(data));
}

TEST(FluxTest, RepartitioningImprovesDrainTimeUnderSkew) {
  // Start from a deliberately bad partitioning: node 0 owns everything
  // (e.g. after upstream data characteristics shifted). Online
  // repartitioning must spread the load; without it node 0 is the
  // bottleneck for the whole drain.
  auto drain_ticks = [](bool repartition) {
    Rng rng(3);
    FluxCluster::Options opts;
    opts.num_nodes = 8;
    opts.capacity_per_tick = 64;
    opts.enable_repartitioning = repartition;
    opts.min_backlog_for_move = 32;
    opts.move_cooldown_ticks = 2;
    opts.initial_owner.assign(opts.num_partitions, 0);
    FluxCluster cluster(opts);
    TupleVector data = UniformBatch(40000, 64, &rng);
    cluster.Feed(data);
    return cluster.Run();
  };
  const size_t without = drain_ticks(false);
  const size_t with = drain_ticks(true);
  EXPECT_LT(with * 2, without) << "moves should shorten the drain a lot";
}

TEST(FluxTest, FailoverWithReplicationLosesNothing) {
  Rng rng(4);
  FluxCluster::Options opts;
  opts.num_nodes = 4;
  opts.enable_replication = true;
  opts.enable_repartitioning = false;
  FluxCluster cluster(opts);
  TupleVector data = UniformBatch(8000, 64, &rng);

  // Feed half, process, kill a node, feed the rest.
  TupleVector first(data.begin(), data.begin() + 4000);
  TupleVector second(data.begin() + 4000, data.end());
  cluster.Feed(first);
  cluster.Run();
  ASSERT_TRUE(cluster.KillNode(1).ok());
  cluster.Feed(second);
  cluster.Run();

  EXPECT_EQ(cluster.lost_updates(), 0u);
  ExpectSnapshotEquals(cluster, Reference(data));
}

TEST(FluxTest, FailoverMidStreamReplaysInFlight) {
  Rng rng(5);
  FluxCluster::Options opts;
  opts.num_nodes = 4;
  opts.capacity_per_tick = 32;  // Slow: failure hits with queued work.
  opts.enable_replication = true;
  opts.enable_repartitioning = false;
  FluxCluster cluster(opts);
  TupleVector data = UniformBatch(6000, 32, &rng);
  cluster.Feed(data);
  cluster.Tick();  // Some processed, plenty still queued.
  ASSERT_TRUE(cluster.KillNode(2).ok());
  EXPECT_GT(cluster.replayed(), 0u);
  cluster.Run();
  EXPECT_EQ(cluster.lost_updates(), 0u);
  ExpectSnapshotEquals(cluster, Reference(data));
}

TEST(FluxTest, FailureWithoutReplicationLosesState) {
  Rng rng(6);
  FluxCluster::Options opts;
  opts.num_nodes = 4;
  opts.enable_replication = false;
  opts.enable_repartitioning = false;
  FluxCluster cluster(opts);
  cluster.Feed(UniformBatch(4000, 64, &rng));
  cluster.Run();
  ASSERT_TRUE(cluster.KillNode(0).ok());
  EXPECT_GT(cluster.lost_updates(), 0u);
  // The cluster keeps running for new data.
  TupleVector more = UniformBatch(100, 4, &rng);
  cluster.Feed(more);
  cluster.Run();
  EXPECT_EQ(cluster.total_backlog(), 0u);
}

TEST(FluxTest, SuccessiveFailuresDownToOneNode) {
  Rng rng(7);
  FluxCluster::Options opts;
  opts.num_nodes = 3;
  opts.enable_replication = true;
  FluxCluster cluster(opts);
  TupleVector data = UniformBatch(3000, 32, &rng);
  cluster.Feed(data);
  cluster.Run();
  ASSERT_TRUE(cluster.KillNode(0).ok());
  cluster.Run();
  ASSERT_TRUE(cluster.KillNode(1).ok());
  cluster.Run();
  // One node left; snapshot may have lost partitions whose primary AND
  // standby both died across the two failures, but the cluster survives.
  TupleVector more = UniformBatch(50, 8, &rng);
  cluster.Feed(more);
  cluster.Run();
  EXPECT_EQ(cluster.total_backlog(), 0u);
  EXPECT_FALSE(cluster.node_stats(0).alive);
  EXPECT_FALSE(cluster.node_stats(1).alive);
  EXPECT_TRUE(cluster.node_stats(2).alive);
}

TEST(FluxTest, KillValidation) {
  FluxCluster cluster;
  EXPECT_FALSE(cluster.KillNode(99).ok());
  ASSERT_TRUE(cluster.KillNode(0).ok());
  EXPECT_FALSE(cluster.KillNode(0).ok());  // Already dead.
}

TEST(FluxTest, NodeStatsReflectWork) {
  Rng rng(8);
  FluxCluster::Options opts;
  opts.num_nodes = 2;
  FluxCluster cluster(opts);
  cluster.Feed(UniformBatch(1000, 16, &rng));
  cluster.Run();
  uint64_t total = 0;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.node_stats(n).processed;
  }
  EXPECT_EQ(total, 1000u);
}

// Property: any interleaving of feeds, ticks, moves and replicated
// failures yields the reference aggregate.
class FluxPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FluxPropertyTest, ChaosWithReplicationIsExact) {
  Rng rng(GetParam());
  FluxCluster::Options opts;
  opts.num_nodes = 5;
  opts.capacity_per_tick = 64;
  opts.enable_repartitioning = true;
  opts.enable_replication = true;
  opts.min_backlog_for_move = 16;
  FluxCluster cluster(opts);

  TupleVector all;
  size_t kills = 0;
  for (int step = 0; step < 60; ++step) {
    TupleVector batch = SkewedBatch(400, 32, 1.0, &rng);
    all.insert(all.end(), batch.begin(), batch.end());
    cluster.Feed(batch);
    cluster.Tick();
    // At most one failure, never the last two nodes.
    if (kills < 1 && step == 30) {
      ASSERT_TRUE(cluster.KillNode(rng.NextBounded(3)).ok());
      ++kills;
    }
  }
  cluster.Run();
  EXPECT_EQ(cluster.lost_updates(), 0u);
  ExpectSnapshotEquals(cluster, Reference(all));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluxPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tcq
