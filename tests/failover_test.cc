// Process-pair HA unit suite (DESIGN.md §13): checkpoint/changelog
// round-trips at the CacqEngine level, torn-checkpoint rejection, the
// Quiesce-vs-dead-shard regression (a dead worker must surface a Status,
// not hang the barrier forever), and kill/failover exactness on a live
// sharded engine — including mid-migration checkpoints.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cacq/sharded_engine.h"
#include "conservation.h"
#include "testing/crash_injector.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

/// A join workload engine: streams A, B joined on k, plus a grouped
/// filter, so checkpoints carry live SteM state.
std::unique_ptr<CacqEngine> MakeJoinEngine(std::vector<std::string>* log) {
  auto engine = std::make_unique<CacqEngine>();
  EXPECT_TRUE(engine->AddStream("A", KV()).ok());
  EXPECT_TRUE(engine->AddStream("B", KV()).ok());
  if (log != nullptr) {
    engine->SetSink([log](QueryId q, const Tuple& t) {
      log->push_back("q" + std::to_string(q) + "|" + t.ToString());
    });
  }
  CacqQuerySpec join;
  join.sources = {"A", "B"};
  join.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  EXPECT_TRUE(engine->AddQuery(join).ok());
  CacqQuerySpec filter;
  filter.sources = {"A"};
  filter.where = Expr::Binary(BinaryOp::kGt, Expr::Column("A.v"),
                              Expr::Literal(Value::Int64(5)));
  EXPECT_TRUE(engine->AddQuery(filter).ok());
  return engine;
}

std::string Sorted(std::vector<std::string> rows) {
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) out += r + "\n";
  return out;
}

TEST(CheckpointTest, EmptyEngineRoundTrips) {
  auto primary = MakeJoinEngine(nullptr);
  const EngineCheckpoint ckpt = primary->CheckpointState();
  EXPECT_EQ(ckpt.tuple_count(), 0u);
  EXPECT_TRUE(ckpt.complete);

  std::vector<std::string> standby_rows;
  auto standby = MakeJoinEngine(&standby_rows);
  ASSERT_TRUE(standby->RestoreCheckpoint(ckpt).ok());
  // The restored (empty) standby behaves like a fresh engine.
  ASSERT_TRUE(standby->InjectBatch("A", {KVTuple(1, 10, 1)}).ok());
  ASSERT_TRUE(standby->InjectBatch("B", {KVTuple(1, 2, 2)}).ok());
  EXPECT_EQ(standby_rows.size(), 2u);  // One join match + one filter hit.
}

TEST(CheckpointTest, LiveJoinStateRoundTrips) {
  // Primary builds SteM state, checkpoints, keeps running; the standby
  // restores the checkpoint. From that point, identical probe batches must
  // produce identical result multisets on both.
  std::vector<std::string> primary_rows;
  auto primary = MakeJoinEngine(&primary_rows);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary->InjectBatch("A", {KVTuple(i % 7, i, i + 1)}).ok());
  }
  const EngineCheckpoint ckpt = primary->CheckpointState();
  EXPECT_GT(ckpt.tuple_count(), 0u);
  EXPECT_GT(ckpt.approx_bytes(), 0u);

  std::vector<std::string> standby_rows;
  auto standby = MakeJoinEngine(&standby_rows);
  ASSERT_TRUE(standby->RestoreCheckpoint(ckpt).ok());

  primary_rows.clear();
  standby_rows.clear();
  for (int64_t i = 0; i < 10; ++i) {
    const Tuple probe = KVTuple(i % 7, 100 + i, 50 + i);
    ASSERT_TRUE(primary->InjectBatch("B", {probe}).ok());
    ASSERT_TRUE(standby->InjectBatch("B", {probe}).ok());
  }
  EXPECT_FALSE(primary_rows.empty());
  EXPECT_EQ(Sorted(standby_rows), Sorted(primary_rows));
}

TEST(CheckpointTest, LiveGroupedFilterStateRoundTrips) {
  // Several single-source filters on one stream share a grouped-filter
  // module. Its predicate set is registration state (rebuilt by the
  // standby from query history), not checkpointed data — the round trip
  // must preserve behaviour, including the eddy sequence floor, with live
  // SteM entries alongside.
  auto make = [](std::vector<std::string>* log) {
    auto engine = std::make_unique<CacqEngine>();
    EXPECT_TRUE(engine->AddStream("S", KV()).ok());
    if (log != nullptr) {
      engine->SetSink([log](QueryId q, const Tuple& t) {
        log->push_back("q" + std::to_string(q) + "|" + t.ToString());
      });
    }
    for (int64_t bound : {5, 20, 35}) {
      CacqQuerySpec f;
      f.sources = {"S"};
      f.where = Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                             Expr::Literal(Value::Int64(bound)));
      EXPECT_TRUE(engine->AddQuery(f).ok());
    }
    return engine;
  };
  std::vector<std::string> primary_rows;
  auto primary = make(&primary_rows);
  for (int64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(primary->InjectBatch("S", {KVTuple(k, k, k + 1)}).ok());
  }
  const EngineCheckpoint ckpt = primary->CheckpointState();

  std::vector<std::string> standby_rows;
  auto standby = make(&standby_rows);
  ASSERT_TRUE(standby->RestoreCheckpoint(ckpt).ok());
  primary_rows.clear();
  standby_rows.clear();
  for (int64_t k = 30; k < 45; ++k) {
    const Tuple probe = KVTuple(k, k, 100 + k);
    ASSERT_TRUE(primary->InjectBatch("S", {probe}).ok());
    ASSERT_TRUE(standby->InjectBatch("S", {probe}).ok());
  }
  EXPECT_FALSE(primary_rows.empty());
  EXPECT_EQ(Sorted(standby_rows), Sorted(primary_rows));
}

TEST(CheckpointTest, RestoreReplacesExistingState) {
  // Restoring is a full replacement, not a merge: a standby polluted with
  // its own state converges to the checkpoint.
  auto primary = MakeJoinEngine(nullptr);
  ASSERT_TRUE(primary->InjectBatch("A", {KVTuple(1, 1, 1)}).ok());
  const EngineCheckpoint ckpt = primary->CheckpointState();

  std::vector<std::string> rows;
  auto standby = MakeJoinEngine(&rows);
  // Pollution: key 2 entries that are NOT in the checkpoint.
  ASSERT_TRUE(standby->InjectBatch("A", {KVTuple(2, 2, 1)}).ok());
  ASSERT_TRUE(standby->RestoreCheckpoint(ckpt).ok());
  rows.clear();
  ASSERT_TRUE(standby->InjectBatch("B", {KVTuple(2, 9, 5)}).ok());
  EXPECT_TRUE(rows.empty()) << "stale pre-restore state survived: "
                            << rows[0];
  ASSERT_TRUE(standby->InjectBatch("B", {KVTuple(1, 9, 6)}).ok());
  EXPECT_EQ(rows.size(), 1u);  // The checkpointed key joins.
}

TEST(CheckpointTest, TornCheckpointIsRejected) {
  auto primary = MakeJoinEngine(nullptr);
  ASSERT_TRUE(primary->InjectBatch("A", {KVTuple(1, 1, 1)}).ok());
  EngineCheckpoint torn = primary->CheckpointState();
  torn.complete = false;
  auto standby = MakeJoinEngine(nullptr);
  EXPECT_FALSE(standby->RestoreCheckpoint(torn).ok());
}

TEST(ChangelogTest, SnapshotTruncatesAndTornSnapshotsKeepTheLog) {
  ShardReplica<EngineCheckpoint> replica;
  EXPECT_EQ(replica.Append(0, {KVTuple(1, 1, 1)}), 1u);
  EXPECT_EQ(replica.Append(0, {KVTuple(2, 2, 2)}), 2u);
  EXPECT_EQ(replica.Append(1, {KVTuple(3, 3, 3)}), 3u);

  // A torn snapshot is rejected: previous snapshot (none) and the full
  // log survive, so recovery falls back rather than losing state.
  EXPECT_FALSE(replica.StoreSnapshot(2, EngineCheckpoint{}, /*valid=*/false));
  auto plan = replica.MakeRecoveryPlan();
  EXPECT_FALSE(plan.has_snapshot);
  ASSERT_EQ(plan.tail.size(), 3u);
  EXPECT_EQ(plan.tail[0].lsn, 1u);

  // A valid snapshot at floor 2 truncates records 1-2.
  EXPECT_TRUE(replica.StoreSnapshot(2, EngineCheckpoint{}, /*valid=*/true));
  plan = replica.MakeRecoveryPlan();
  EXPECT_TRUE(plan.has_snapshot);
  EXPECT_EQ(plan.snapshot_floor, 2u);
  ASSERT_EQ(plan.tail.size(), 1u);
  EXPECT_EQ(plan.tail[0].lsn, 3u);
  EXPECT_EQ(plan.tail[0].source, 1u);

  const auto stats = replica.stats();
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_EQ(stats.torn_rejected, 1u);
  EXPECT_EQ(stats.next_lsn, 3u);
}

/// Satellite regression: a dead shard must turn barriers into prompt
/// Unavailable errors — before this fix, Quiesce hung forever on a latch
/// nobody would ever count down.
TEST(FailoverTest, QuiesceSurfacesDeadShardInsteadOfHanging) {
  ShardedEngine::Options opts;
  opts.num_shards = 2;  // No replicas: the kill is unrecoverable.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("S", KV(), 0).ok());
  engine.SetSink([](std::vector<ShardedEngine::Emission>&&) {});
  engine.Start();
  CacqQuerySpec see_all;
  see_all.sources = {"S"};
  ASSERT_TRUE(engine.AddQuery(see_all).ok());
  std::vector<Tuple> batch;
  for (int64_t i = 0; i < 16; ++i) batch.push_back(KVTuple(i, i, i + 1));
  ASSERT_TRUE(engine.PushBatch("S", std::move(batch)).ok());

  ASSERT_TRUE(engine.KillShard(0).ok());
  while (engine.shard_alive(0)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const Status st = engine.Quiesce();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  // Failover is refused without replicas; the engine still shuts down
  // cleanly (Stop closes the dead shard's egress queue itself).
  EXPECT_EQ(engine.FailoverShard(0).code(), StatusCode::kFailedPrecondition);
  engine.EvictBefore(100);  // Logs and returns instead of hanging.
  engine.Stop();
}

TEST(FailoverTest, KillAndFailoverRecoversExactly) {
  ShardedEngine::Options opts;
  opts.num_shards = 2;
  opts.num_replicas = 1;
  opts.checkpoint_interval = 4;  // Exercise snapshot + changelog tail.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("S", KV(), 0).ok());
  EmissionLedger ledger;
  engine.SetSink(ledger.MakeSink());
  engine.Start();
  CacqQuerySpec see_all;
  see_all.sources = {"S"};
  auto q = engine.AddQuery(see_all);
  ASSERT_TRUE(q.ok());
  // tcq.ha.* counters are process-global; assert on the delta.
  const uint64_t failovers_before = engine.ha_stats().failovers;

  size_t total = 0;
  auto push = [&](int64_t base, size_t n) {
    std::vector<Tuple> batch;
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(KVTuple(base + static_cast<int64_t>(i),
                              static_cast<int64_t>(i), total + i + 1));
    }
    total += n;
    ASSERT_TRUE(engine.PushBatch("S", std::move(batch)).ok());
  };

  push(0, 40);
  CrashInjector::CrashAndRecover(&engine, 0);
  push(100, 40);
  CrashInjector::CrashAndRecover(&engine, 1);
  push(200, 40);
  ASSERT_TRUE(engine.Quiesce().ok());

  EXPECT_EQ(ledger.hits(*q), total);
  ExpectExchangeConservation(engine, total);

  const auto ha = engine.ha_stats();
  EXPECT_EQ(ha.failovers - failovers_before, 2u);
  const auto reps = engine.replica_stats();
  ASSERT_EQ(reps.size(), 2u);
  for (const auto& r : reps) {
    EXPECT_TRUE(r.alive);
    EXPECT_GE(r.logged_lsn, r.applied_lsn);
    EXPECT_GT(r.checkpoints, 0u);
  }
  engine.Stop();
}

TEST(FailoverTest, TornCheckpointsFallBackToChangelogReplay) {
  // Every cadence checkpoint is torn by fault injection, so the failover
  // must recover from the previous (absent) snapshot plus the FULL
  // changelog — the hydra fallback rule — and still lose nothing.
  ShardedEngine::Options opts;
  opts.num_shards = 2;
  opts.num_replicas = 1;
  opts.checkpoint_interval = 2;  // Many (rejected) checkpoint attempts.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("S", KV(), 0).ok());
  EmissionLedger ledger;
  engine.SetSink(ledger.MakeSink());
  engine.Start();
  engine.replication()->SetSnapshotFault(
      [](size_t, const EngineCheckpoint&) { return false; });
  CacqQuerySpec see_all;
  see_all.sources = {"S"};
  auto q = engine.AddQuery(see_all);
  ASSERT_TRUE(q.ok());

  size_t total = 0;
  for (int round = 0; round < 6; ++round) {
    std::vector<Tuple> batch;
    for (int64_t i = 0; i < 20; ++i) {
      batch.push_back(KVTuple(i, round, total + static_cast<size_t>(i) + 1));
    }
    total += 20;
    ASSERT_TRUE(engine.PushBatch("S", std::move(batch)).ok());
    if (round == 3) CrashInjector::CrashAndRecover(&engine, 0);
  }
  ASSERT_TRUE(engine.Quiesce().ok());
  EXPECT_EQ(ledger.hits(*q), total);
  ExpectExchangeConservation(engine, total);

  uint64_t torn = 0;
  for (const auto& r : engine.replica_stats()) torn += r.torn_rejected;
  EXPECT_GT(torn, 0u);
  engine.Stop();
}

TEST(FailoverTest, MidMigrationShardFailsOverConsistently) {
  // Move a bucket off shard 0, then kill shard 0: the donor's forced
  // post-extract checkpoint must keep the moved bucket out of its
  // recovery, and the recipient's post-install checkpoint must keep it in
  // — no resurrection, no loss.
  ShardedEngine::Options opts;
  opts.num_shards = 2;
  opts.num_replicas = 1;
  opts.num_buckets = 8;
  opts.checkpoint_interval = 1000;  // Force reliance on the migration
                                    // checkpoints, not the cadence.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("A", KV(), 0).ok());
  ASSERT_TRUE(engine.AddStream("B", KV(), 0).ok());
  EmissionLedger ledger;
  engine.SetSink(ledger.MakeSink());
  engine.Start();
  CacqQuerySpec join;
  join.sources = {"A", "B"};
  join.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  auto q = engine.AddQuery(join);
  ASSERT_TRUE(q.ok());

  // Build SteM state on every bucket.
  std::vector<Tuple> build;
  for (int64_t k = 0; k < 32; ++k) build.push_back(KVTuple(k, k, k + 1));
  ASSERT_TRUE(engine.PushBatch("A", std::move(build)).ok());
  ASSERT_TRUE(engine.Quiesce().ok());

  // Migrate every bucket shard 0 owns to shard 1, then crash shard 0.
  const auto owned = engine.partition_map().BucketsOwnedBy(0);
  ASSERT_FALSE(owned.empty());
  for (size_t bucket : owned) {
    ASSERT_TRUE(engine.MigrateBucket(bucket, 1).ok());
  }
  CrashInjector::CrashAndRecover(&engine, 0);

  // Probe every key: each must join exactly once — a resurrected bucket
  // on shard 0 would double keys, a lost one would drop them.
  std::vector<Tuple> probe;
  for (int64_t k = 0; k < 32; ++k) probe.push_back(KVTuple(k, 100, 100 + k));
  ASSERT_TRUE(engine.PushBatch("B", std::move(probe)).ok());
  ASSERT_TRUE(engine.Quiesce().ok());
  EXPECT_EQ(ledger.hits(*q), 32u);
  engine.Stop();
}

TEST(FailoverTest, CrashInjectorScheduleIsDeterministic) {
  CrashInjector::Options copts;
  copts.kills = 3;
  copts.horizon = 10;
  CrashInjector a(42, 4, copts);
  CrashInjector b(42, 4, copts);
  ASSERT_EQ(a.schedule().size(), 3u);
  for (size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].tick, b.schedule()[i].tick);
    EXPECT_EQ(a.schedule()[i].node, b.schedule()[i].node);
  }
}

}  // namespace
}  // namespace tcq
