// Disorder equivalence (ISSUE 9 acceptance): a disorder-injected feed
// through a server with the matching reorder bound must, under
// delayed-but-correct consistency, deliver BYTE-IDENTICAL results to the
// same feed replayed in timestamp order through a classic in-order
// server — across every ScheduleExplorer seed, inline and 4-shard — and
// a speculative query over the same disordered feed must converge to the
// same net results once its retractions are applied.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/server.h"
#include "testing/disorder.h"
#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

// Unique timestamps: ties release in arrival order, and the two runs
// disagree on arrival order by construction.
std::vector<Tuple> MakeFeed() {
  std::vector<Tuple> feed;
  for (int64_t ts = 1; ts <= 48; ++ts) {
    feed.push_back(
        Tuple::Make({Value::Int64(ts), Value::Int64((ts * 7) % 26)}, ts));
  }
  return feed;
}

constexpr char kFilterSql[] = "SELECT v FROM S WHERE v > 8";
constexpr char kWindowSql[] =
    "SELECT SUM(v) FROM S "
    "for (t = 4; t <= 48; t += 4) { WindowIs(S, t - 3, t); }";

/// Deliveries of the two standing queries, flattened in delivery order:
/// [0] = the CACQ filter's rows, [1] = the windowed aggregate's rows
/// labelled with their window t.
struct Deliveries {
  std::vector<std::string> rows[2];
};

Deliveries RunFeed(const std::vector<Tuple>& feed, Timestamp bound, size_t shards,
               size_t chunk, const std::vector<size_t>& order,
               Consistency consistency) {
  Server::Options o;
  o.max_disorder = bound;
  o.cacq_shards = shards;
  Server server(o);
  EXPECT_TRUE(server
                  .DefineStream("S", KV(), /*timestamp_field=*/0,
                                /*partition_field=*/1)
                  .ok());
  Server::SubmitOptions sopts;
  sopts.consistency = consistency;
  QueryId ids[2];
  for (size_t label : order) {
    auto q = server.Submit(label == 0 ? kFilterSql : kWindowSql, sopts);
    EXPECT_TRUE(q.ok()) << q.status();
    ids[label] = *q;
  }
  for (size_t at = 0; at < feed.size(); at += chunk) {
    const size_t n = std::min(chunk, feed.size() - at);
    std::vector<Tuple> slice(feed.begin() + static_cast<ptrdiff_t>(at),
                             feed.begin() + static_cast<ptrdiff_t>(at + n));
    EXPECT_TRUE(server.PushBatch("S", std::move(slice)).ok());
  }
  // The source closes with punctuation: flush the reorder buffer and
  // prove every window final, so both runs end at the same frontier.
  EXPECT_TRUE(server.Heartbeat("S", 50).ok());
  server.Quiesce();

  Deliveries out;
  for (const ResultSet& rs : server.PollAll(ids[0])) {
    for (const Tuple& row : rs.rows) out.rows[0].push_back(row.ToString());
  }
  for (const ResultSet& rs : server.PollAll(ids[1])) {
    for (const Tuple& row : rs.rows) {
      out.rows[1].push_back("t" + std::to_string(rs.t) + "|" + row.ToString());
    }
  }
  return out;
}

std::string Ordered(const Deliveries& d) {
  std::ostringstream fp;
  for (int q = 0; q < 2; ++q) {
    fp << "q" << q << ":";
    for (const std::string& r : d.rows[q]) fp << r << ";";
    fp << "\n";
  }
  return fp.str();
}

std::string Sorted(Deliveries d) {
  for (auto& rows : d.rows) std::sort(rows.begin(), rows.end());
  return Ordered(d);
}

/// Applies retraction-signed deliveries: a signed row erases one matching
/// assertion; the remainder is the query's net (converged) answer.
std::multiset<std::string> Net(const std::vector<std::string>& rows) {
  std::multiset<std::string> net;
  for (const std::string& r : rows) {
    // Tuple::ToString leads a retraction with '-' (after any "t<N>|"
    // window label); strip the sign and cancel the matching assertion.
    const size_t bar = r.find('|');
    const size_t body = bar == std::string::npos ? 0 : bar + 1;
    if (body < r.size() && r[body] == '-') {
      const std::string asserted = r.substr(0, body) + r.substr(body + 1);
      const auto it = net.find(asserted);
      if (it == net.end()) {
        ADD_FAILURE() << "retraction without a prior assertion: " << r;
        continue;
      }
      net.erase(it);
      continue;
    }
    net.insert(r);
  }
  return net;
}

TEST(DisorderEquivalenceTest, DelayedInlineMatchesInOrderByteForByte) {
  const std::vector<Tuple> feed = MakeFeed();
  // Reference: the feed in timestamp order through a classic strictly
  // in-order server (bound 0).
  const std::string expected =
      Ordered(RunFeed(feed, 0, 1, 1, {0, 1}, Consistency::kDelayed));
  EXPECT_NE(expected.find(";"), std::string::npos);

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        2, [&](const ScheduleExplorer::Schedule& schedule) {
          DisorderOptions dopts;
          dopts.max_disorder = 1 + static_cast<Timestamp>(
                                       schedule.trial_seed % 7);
          dopts.seed = schedule.trial_seed;
          const std::string got = Ordered(
              RunFeed(InjectDisorder(feed, dopts), dopts.max_disorder, 1,
                  schedule.quantum, schedule.order, Consistency::kDelayed));
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", bound " << dopts.max_disorder << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(DisorderEquivalenceTest, DelayedShardedMatchesInOrder) {
  const std::vector<Tuple> feed = MakeFeed();
  // Shard egress interleaving is not defined, so the sharded comparison
  // is the sorted multiset per query (same contract as the sharded
  // equivalence suite); the windowed rows stay fully ordered regardless.
  const std::string expected =
      Sorted(RunFeed(feed, 0, 1, 1, {0, 1}, Consistency::kDelayed));

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        2, [&](const ScheduleExplorer::Schedule& schedule) {
          DisorderOptions dopts;
          dopts.max_disorder = 1 + static_cast<Timestamp>(
                                       schedule.trial_seed % 7);
          dopts.seed = schedule.trial_seed;
          const std::string got = Sorted(
              RunFeed(InjectDisorder(feed, dopts), dopts.max_disorder, 4,
                  schedule.quantum, schedule.order, Consistency::kDelayed));
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", bound " << dopts.max_disorder << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(DisorderEquivalenceTest, SpeculativeConvergesToDelayedNet) {
  const std::vector<Tuple> feed = MakeFeed();
  const Deliveries delayed = RunFeed(feed, 0, 1, 1, {0, 1}, Consistency::kDelayed);
  const std::multiset<std::string> want_filter(delayed.rows[0].begin(),
                                               delayed.rows[0].end());
  const std::multiset<std::string> want_window(delayed.rows[1].begin(),
                                               delayed.rows[1].end());

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        2, [&](const ScheduleExplorer::Schedule& schedule) {
          DisorderOptions dopts;
          dopts.max_disorder = 1 + static_cast<Timestamp>(
                                       schedule.trial_seed % 7);
          dopts.seed = schedule.trial_seed;
          const Deliveries spec = RunFeed(
              InjectDisorder(feed, dopts), dopts.max_disorder, 1,
              schedule.quantum, schedule.order, Consistency::kSpeculative);
          // The speculative run may have delivered early wrong answers —
          // but every one of them must have been retracted, and the net
          // must equal the delayed-but-correct answer exactly.
          const std::multiset<std::string> net_filter = Net(spec.rows[0]);
          const std::multiset<std::string> net_window = Net(spec.rows[1]);
          EXPECT_EQ(net_filter, want_filter)
              << "seed " << seed << ", "
              << ScheduleExplorer::Describe(schedule);
          EXPECT_EQ(net_window, want_window)
              << "seed " << seed << ", "
              << ScheduleExplorer::Describe(schedule);
          // The Explore fingerprint is the NET answer — the raw delivery
          // transcript legitimately differs per schedule (different early
          // fires, different retractions), the converged answer must not.
          std::ostringstream fp;
          for (const std::string& r : net_filter) fp << r << ";";
          fp << "\n";
          for (const std::string& r : net_window) fp << r << ";";
          return fp.str();
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

}  // namespace
}  // namespace tcq
