#include "core/analyzer.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StreamDef stocks;
    stocks.name = "ClosingStockPrices";
    stocks.schema = Schema::Make({{"timestamp", ValueType::kInt64, ""},
                                  {"stockSymbol", ValueType::kString, ""},
                                  {"closingPrice", ValueType::kDouble, ""}});
    stocks.timestamp_field = 0;
    ASSERT_TRUE(catalog_.RegisterStream(stocks).ok());

    StreamDef companies;
    companies.name = "Companies";
    companies.schema = Schema::Make({{"symbol", ValueType::kString, ""},
                                     {"sector", ValueType::kString, ""}});
    ASSERT_TRUE(catalog_.RegisterTable(companies, {}).ok());
  }

  Catalog catalog_;
};

TEST_F(AnalyzerTest, SimpleWindowedSelect) {
  auto aq = AnalyzeSql(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }",
      catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status();
  EXPECT_EQ(aq->layout->num_sources(), 1u);
  EXPECT_EQ(aq->filters.size(), 1u);
  EXPECT_TRUE(aq->joins.empty());
  EXPECT_FALSE(aq->has_aggregates);
  EXPECT_FALSE(aq->cacq_eligible);
  ASSERT_EQ(aq->projections.size(), 1u);
  EXPECT_EQ(aq->output_schema->num_fields(), 1u);
  EXPECT_EQ(aq->output_schema->field(0).name, "closingPrice");
}

TEST_F(AnalyzerTest, UnknownStreamFails) {
  EXPECT_FALSE(AnalyzeSql("SELECT a FROM Nope", catalog_).ok());
}

TEST_F(AnalyzerTest, UnknownColumnFails) {
  auto r = AnalyzeSql(
      "SELECT volume FROM ClosingStockPrices "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }",
      catalog_);
  EXPECT_FALSE(r.ok());
}

TEST_F(AnalyzerTest, StreamWithoutWindowMustBeStandingFilter) {
  // OK: single-stream filter (CACQ-eligible).
  auto ok = AnalyzeSql(
      "SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 50",
      catalog_);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->cacq_eligible);

  // Not OK: aggregate over an unwindowed stream.
  EXPECT_FALSE(
      AnalyzeSql("SELECT AVG(closingPrice) FROM ClosingStockPrices",
                 catalog_)
          .ok());
}

TEST_F(AnalyzerTest, TableOnlySnapshot) {
  auto aq = AnalyzeSql("SELECT symbol FROM Companies", catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status();
  EXPECT_TRUE(aq->tables_only);
  EXPECT_FALSE(aq->cacq_eligible);
  EXPECT_FALSE(aq->window.has_value());
}

TEST_F(AnalyzerTest, SelfJoinWithAliases) {
  auto aq = AnalyzeSql(
      "SELECT c2.* FROM ClosingStockPrices as c1, ClosingStockPrices as c2 "
      "WHERE c1.stockSymbol = 'MSFT' and c2.stockSymbol != 'MSFT' and "
      "c2.closingPrice > c1.closingPrice and c2.timestamp = c1.timestamp "
      "for (t = ST; t < ST + 20; t++) { "
      "WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }",
      catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status();
  EXPECT_EQ(aq->layout->num_sources(), 2u);
  ASSERT_EQ(aq->joins.size(), 1u);  // The timestamp equality.
  EXPECT_EQ(aq->filters.size(), 3u);
  // c2.* expands to c2's three columns only.
  EXPECT_EQ(aq->projections.size(), 3u);
  EXPECT_EQ(aq->window_clause_of_source[0], 0);
  EXPECT_EQ(aq->window_clause_of_source[1], 1);
}

TEST_F(AnalyzerTest, DuplicateAliasRejected) {
  EXPECT_FALSE(
      AnalyzeSql("SELECT * FROM ClosingStockPrices as c, Companies as c",
                 catalog_)
          .ok());
}

TEST_F(AnalyzerTest, AggregatesWithGroupBy) {
  auto aq = AnalyzeSql(
      "SELECT stockSymbol, AVG(closingPrice), COUNT(*) "
      "FROM ClosingStockPrices GROUP BY stockSymbol "
      "for (t = 1; true; t += 5) { WindowIs(ClosingStockPrices, t, t+4); }",
      catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status();
  EXPECT_TRUE(aq->has_aggregates);
  ASSERT_EQ(aq->aggregates.size(), 2u);
  EXPECT_EQ(aq->aggregates[0].kind, AggKind::kAvg);
  EXPECT_EQ(aq->aggregates[1].kind, AggKind::kCount);
  ASSERT_EQ(aq->group_by.size(), 1u);
  EXPECT_EQ(aq->output_schema->num_fields(), 3u);
  EXPECT_EQ(aq->output_schema->field(1).type, ValueType::kDouble);
  EXPECT_EQ(aq->output_schema->field(2).type, ValueType::kInt64);
}

TEST_F(AnalyzerTest, ImplicitGroupByFromSelectList) {
  auto aq = AnalyzeSql(
      "SELECT stockSymbol, MAX(closingPrice) FROM ClosingStockPrices "
      "for (t = 1; true; t++) { WindowIs(ClosingStockPrices, 1, t); }",
      catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status();
  ASSERT_EQ(aq->group_by.size(), 1u);
}

TEST_F(AnalyzerTest, AggregateAfterKeyRequired) {
  EXPECT_FALSE(AnalyzeSql(
                   "SELECT AVG(closingPrice), stockSymbol "
                   "FROM ClosingStockPrices "
                   "for (t=1; true; t++) { WindowIs(ClosingStockPrices,1,t); }",
                   catalog_)
                   .ok());
}

TEST_F(AnalyzerTest, NonKeyPlainSelectRejected) {
  EXPECT_FALSE(
      AnalyzeSql("SELECT closingPrice, MAX(closingPrice) "
                 "FROM ClosingStockPrices GROUP BY stockSymbol "
                 "for (t=1; true; t++) { WindowIs(ClosingStockPrices,1,t); }",
                 catalog_)
          .ok());
}

TEST_F(AnalyzerTest, WindowOnUnknownSourceFails) {
  EXPECT_FALSE(AnalyzeSql(
                   "SELECT closingPrice FROM ClosingStockPrices "
                   "for (; t == 0; t = -1) { WindowIs(Bogus, 1, 5); }",
                   catalog_)
                   .ok());
}

TEST_F(AnalyzerTest, StreamMissingWindowClauseFails) {
  // Two streams, only one WindowIs.
  EXPECT_FALSE(AnalyzeSql(
                   "SELECT * FROM ClosingStockPrices as a, "
                   "ClosingStockPrices as b WHERE a.timestamp = b.timestamp "
                   "for (; t == 0; t = -1) { WindowIs(a, 1, 5); }",
                   catalog_)
                   .ok());
}

TEST_F(AnalyzerTest, StreamJoinTableMixes) {
  auto aq = AnalyzeSql(
      "SELECT s.closingPrice, c.sector "
      "FROM ClosingStockPrices as s, Companies as c "
      "WHERE s.stockSymbol = c.symbol "
      "for (t = 1; t <= 10; t++) { WindowIs(s, t, t); }",
      catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status();
  ASSERT_EQ(aq->joins.size(), 1u);
  EXPECT_TRUE(aq->defs[1].is_table);
  EXPECT_EQ(aq->window_clause_of_source[1], -1);  // Table: no window.
}

TEST_F(AnalyzerTest, NonBooleanWhereRejected) {
  EXPECT_FALSE(
      AnalyzeSql("SELECT closingPrice FROM ClosingStockPrices "
                 "WHERE closingPrice + 1 "
                 "for (; t==0; t=-1) { WindowIs(ClosingStockPrices,1,5); }",
                 catalog_)
          .ok());
}

}  // namespace
}  // namespace tcq
