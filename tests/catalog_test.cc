#include "tuple/catalog.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

StreamDef StockStream() {
  StreamDef def;
  def.name = "ClosingStockPrices";
  def.schema = Schema::Make({{"timestamp", ValueType::kInt64, ""},
                             {"stockSymbol", ValueType::kString, ""},
                             {"closingPrice", ValueType::kDouble, ""}});
  def.timestamp_field = 0;
  return def;
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterStream(StockStream()).ok());
  auto def = catalog.GetStream("ClosingStockPrices");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->schema->num_fields(), 3u);
  EXPECT_FALSE(def->is_table);
  EXPECT_TRUE(catalog.Exists("ClosingStockPrices"));
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterStream(StockStream()).ok());
  EXPECT_EQ(catalog.RegisterStream(StockStream()).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MissingLookupFails) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetStream("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.Exists("nope"));
}

TEST(CatalogTest, NullSchemaRejected) {
  Catalog catalog;
  StreamDef def;
  def.name = "bad";
  EXPECT_EQ(catalog.RegisterStream(def).code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, TimestampFieldRangeChecked) {
  Catalog catalog;
  StreamDef def = StockStream();
  def.timestamp_field = 7;
  EXPECT_EQ(catalog.RegisterStream(def).code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, TablesCarryRows) {
  Catalog catalog;
  StreamDef def = StockStream();
  def.name = "HistoricalPrices";
  TupleVector rows;
  rows.push_back(Tuple::Make(
      {Value::Int64(1), Value::String("MSFT"), Value::Double(50.0)}, 1));
  ASSERT_TRUE(catalog.RegisterTable(def, rows).ok());

  auto fetched = catalog.GetTableRows("HistoricalPrices");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->size(), 1u);
  EXPECT_TRUE(catalog.GetStream("HistoricalPrices")->is_table);
}

TEST(CatalogTest, StreamHasNoTableRows) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterStream(StockStream()).ok());
  EXPECT_EQ(catalog.GetTableRows("ClosingStockPrices").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ListSourcesSorted) {
  Catalog catalog;
  StreamDef a = StockStream();
  a.name = "b_stream";
  StreamDef b = StockStream();
  b.name = "a_stream";
  ASSERT_TRUE(catalog.RegisterStream(a).ok());
  ASSERT_TRUE(catalog.RegisterStream(b).ok());
  const auto names = catalog.ListSources();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a_stream");
  EXPECT_EQ(names[1], "b_stream");
}

}  // namespace
}  // namespace tcq
