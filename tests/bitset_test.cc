#include "common/bitset.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace tcq {
namespace {

TEST(SmallBitsetTest, StartsAllZero) {
  SmallBitset b(70);
  EXPECT_EQ(b.size_bits(), 70u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  for (size_t i = 0; i < 70; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(SmallBitsetTest, SetClearTest) {
  SmallBitset b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(SmallBitsetTest, HeapOverflowBeyond128Bits) {
  SmallBitset b(500);
  for (size_t i = 0; i < 500; i += 7) b.Set(i);
  size_t expected = 0;
  for (size_t i = 0; i < 500; i += 7) ++expected;
  EXPECT_EQ(b.Count(), expected);
  EXPECT_TRUE(b.Test(497));
  EXPECT_FALSE(b.Test(498));
}

TEST(SmallBitsetTest, SetAllRespectsSize) {
  SmallBitset b(67);
  b.SetAll();
  EXPECT_EQ(b.Count(), 67u);
  EXPECT_TRUE(b.All());
  b.ClearAll();
  EXPECT_TRUE(b.None());
}

TEST(SmallBitsetTest, ContainsAndIntersects) {
  SmallBitset a(80), b(80);
  a.Set(3);
  a.Set(70);
  b.Set(3);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Intersects(b));
  SmallBitset c(80);
  c.Set(5);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(SmallBitset(80)));  // Empty set always contained.
}

TEST(SmallBitsetTest, BitwiseOps) {
  SmallBitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  SmallBitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3u);
  SmallBitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
  SmallBitset d = a;
  d -= b;
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(SmallBitsetTest, Equality) {
  SmallBitset a(9), b(9);
  EXPECT_TRUE(a == b);
  a.Set(8);
  EXPECT_FALSE(a == b);
  b.Set(8);
  EXPECT_TRUE(a == b);
}

TEST(SmallBitsetTest, FirstAndNextSet) {
  SmallBitset b(200);
  EXPECT_EQ(b.FirstSet(), 200u);
  b.Set(5);
  b.Set(64);
  b.Set(190);
  EXPECT_EQ(b.FirstSet(), 5u);
  EXPECT_EQ(b.NextSet(6), 64u);
  EXPECT_EQ(b.NextSet(65), 190u);
  EXPECT_EQ(b.NextSet(191), 200u);
}

TEST(SmallBitsetTest, ForEachSetVisitsAscending) {
  SmallBitset b(150);
  std::vector<size_t> expected = {0, 17, 63, 64, 65, 127, 128, 149};
  for (size_t i : expected) b.Set(i);
  std::vector<size_t> seen;
  b.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(SmallBitsetTest, ResizeGrowPreservesAndZeroExtends) {
  SmallBitset b(10);
  b.Set(9);
  b.Resize(300);
  EXPECT_TRUE(b.Test(9));
  EXPECT_EQ(b.Count(), 1u);
  b.Set(299);
  EXPECT_EQ(b.Count(), 2u);
}

TEST(SmallBitsetTest, ResizeShrinkDropsTail) {
  SmallBitset b(100);
  b.Set(5);
  b.Set(99);
  b.Resize(50);
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_TRUE(b.Test(5));
}

// None()/All() early-exit word walks must agree with Count() exactly at
// the inline/overflow word boundaries: 127 (tail bit of the last inline
// word), 128 (both inline words exactly full, no tail mask), 129 (first
// overflow word holds one tail bit).
TEST(SmallBitsetTest, NoneAllAtWordBoundaries) {
  for (const size_t nbits : {127u, 128u, 129u}) {
    SCOPED_TRACE(nbits);
    SmallBitset b(nbits);
    EXPECT_TRUE(b.None());
    EXPECT_FALSE(b.All());

    b.SetAll();
    EXPECT_FALSE(b.None());
    EXPECT_TRUE(b.All());
    EXPECT_EQ(b.Count(), nbits);

    // One hole anywhere breaks All; the probe order covers first word,
    // word boundary, and final bit.
    for (const size_t hole : {size_t{0}, size_t{63}, size_t{64}, nbits - 1}) {
      b.Clear(hole);
      EXPECT_FALSE(b.All()) << "hole at " << hole;
      EXPECT_FALSE(b.None());
      b.Set(hole);
      EXPECT_TRUE(b.All());
    }

    // A single bit in the last word breaks None (the early exit must not
    // stop scanning before the tail word).
    b.ClearAll();
    b.Set(nbits - 1);
    EXPECT_FALSE(b.None());
    EXPECT_FALSE(b.All());
  }
}

TEST(SmallBitsetTest, AllOnEmptySetIsFalse) {
  SmallBitset b(0);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.All());
}

TEST(SmallBitsetTest, SubtractPrefixNarrowerOperand) {
  SmallBitset wide(300);
  for (size_t i = 0; i < 300; i += 3) wide.Set(i);
  SmallBitset narrow(130);  // Overflow word with a partial tail.
  for (size_t i = 0; i < 130; i += 6) narrow.Set(i);

  SmallBitset expect = wide;
  wide.SubtractPrefix(narrow);

  for (size_t i = 0; i < 300; ++i) {
    const bool want =
        expect.Test(i) && !(i < narrow.size_bits() && narrow.Test(i));
    ASSERT_EQ(wide.Test(i), want) << i;
  }
  // Bits past the narrow operand's width are untouched.
  EXPECT_TRUE(wide.Test(297));
}

TEST(SmallBitsetTest, SubtractPrefixEqualWidthMatchesOperatorMinus) {
  Rng rng(11);
  SmallBitset a(150), b(150);
  for (int i = 0; i < 60; ++i) a.Set(rng.NextBounded(150));
  for (int i = 0; i < 60; ++i) b.Set(rng.NextBounded(150));
  SmallBitset via_op = a;
  via_op -= b;
  SmallBitset via_prefix = a;
  via_prefix.SubtractPrefix(b);
  EXPECT_TRUE(via_op == via_prefix);
}

// Property test: random operations agree with std::set<size_t> oracle.
class BitsetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitsetPropertyTest, MatchesSetOracle) {
  Rng rng(GetParam());
  const size_t nbits = 1 + rng.NextBounded(400);
  SmallBitset b(nbits);
  std::set<size_t> oracle;
  for (int step = 0; step < 500; ++step) {
    const size_t i = rng.NextBounded(nbits);
    if (rng.NextBool(0.5)) {
      b.Set(i);
      oracle.insert(i);
    } else {
      b.Clear(i);
      oracle.erase(i);
    }
    ASSERT_EQ(b.Count(), oracle.size());
    ASSERT_EQ(b.Test(i), oracle.count(i) != 0);
    ASSERT_EQ(b.FirstSet(), oracle.empty() ? nbits : *oracle.begin());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tcq
