#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "eddy/eddy.h"
#include "eddy/operators.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts = 0) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

/// Two-source fixture wiring a symmetric hash join: S.k = T.k through two
/// SteMs, exactly as Figure 2 of the paper.
struct JoinFixture {
  SourceLayout layout;
  size_t s, t;
  SteMPtr stem_s, stem_t;

  JoinFixture() {
    s = layout.AddSource("S", KV());
    t = layout.AddSource("T", KV());
    SteM::Options so;
    so.key_field = static_cast<int>(layout.offset(s));  // S.k
    stem_s = std::make_shared<SteM>("SteM_S", layout.full_schema(), so);
    SteM::Options to;
    to.key_field = static_cast<int>(layout.offset(t));  // T.k
    stem_t = std::make_shared<SteM>("SteM_T", layout.full_schema(), to);
  }

  SmallBitset Only(size_t src) const {
    SmallBitset b(layout.num_sources());
    b.Set(src);
    return b;
  }

  void WireSymmetricHashJoin(Eddy* eddy) {
    eddy->AddOperator(std::make_shared<StemBuildOp>("build_S", s, stem_s));
    eddy->AddOperator(std::make_shared<StemBuildOp>("build_T", t, stem_t));
    eddy->AddOperator(std::make_shared<StemProbeOp>(
        "probe_T", &layout, t, stem_t, Only(s),
        static_cast<int>(layout.offset(s)), nullptr));
    eddy->AddOperator(std::make_shared<StemProbeOp>(
        "probe_S", &layout, s, stem_s, Only(t),
        static_cast<int>(layout.offset(t)), nullptr));
  }
};

size_t ReferenceJoinCount(const TupleVector& s_rows, const TupleVector& t_rows) {
  size_t n = 0;
  for (const Tuple& a : s_rows) {
    for (const Tuple& b : t_rows) {
      if (a.cell(0) == b.cell(0)) ++n;
    }
  }
  return n;
}

TEST(EddyJoinTest, SymmetricHashJoinSmall) {
  JoinFixture fx;
  Eddy eddy(&fx.layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  fx.WireSymmetricHashJoin(&eddy);

  TupleVector out;
  eddy.SetSink([&](RoutedTuple&& rt) { out.push_back(rt.tuple); });

  eddy.Inject(fx.s, KVTuple(1, 100));
  eddy.Inject(fx.t, KVTuple(1, 200));
  eddy.Inject(fx.t, KVTuple(2, 300));
  eddy.Inject(fx.s, KVTuple(2, 400));
  eddy.Inject(fx.s, KVTuple(3, 500));
  eddy.Drain();

  ASSERT_EQ(out.size(), 2u);  // Keys 1 and 2 match once each.
  for (const Tuple& m : out) {
    EXPECT_EQ(m.arity(), 4u);
    EXPECT_EQ(m.cell(0), m.cell(2));  // S.k == T.k.
    EXPECT_FALSE(m.cell(1).is_null());
    EXPECT_FALSE(m.cell(3).is_null());
  }
}

// Property: interleaved arrival orders and all policies produce exactly the
// reference join, with no duplicates.
class EddyJoinPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(EddyJoinPropertyTest, MatchesReferenceJoin) {
  const auto [policy, seed] = GetParam();
  JoinFixture fx;
  Eddy eddy(&fx.layout, MakePolicy(policy, seed));
  fx.WireSymmetricHashJoin(&eddy);

  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&& rt) {
    // Every output spans both sources.
    EXPECT_EQ(rt.sources.Count(), 2u);
    ++emitted;
  });

  Rng rng(seed);
  TupleVector s_rows, t_rows;
  for (int i = 0; i < 300; ++i) {
    Tuple row = KVTuple(static_cast<int64_t>(rng.NextBounded(25)), i, i);
    if (rng.NextBool(0.5)) {
      s_rows.push_back(row);
      eddy.Inject(fx.s, row);
    } else {
      t_rows.push_back(row);
      eddy.Inject(fx.t, row);
    }
    if (rng.NextBool(0.3)) eddy.Drain();  // Interleave routing with arrival.
  }
  eddy.Drain();
  EXPECT_EQ(emitted, ReferenceJoinCount(s_rows, t_rows));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EddyJoinPropertyTest,
    ::testing::Combine(::testing::Values("fixed", "random", "lottery"),
                       ::testing::Values(1u, 7u, 99u)));

TEST(EddyJoinTest, ResidualPredicateBandJoin) {
  // S.k = T.k AND T.v > S.v — equality key plus residual band predicate.
  JoinFixture fx;
  Eddy eddy(&fx.layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  auto residual_expr = Expr::Binary(BinaryOp::kGt, Expr::Column("T.v"),
                                    Expr::Column("S.v"));
  auto residual = residual_expr->Bind(*fx.layout.full_schema());
  ASSERT_TRUE(residual.ok()) << residual.status();

  eddy.AddOperator(std::make_shared<StemBuildOp>("build_S", fx.s, fx.stem_s));
  eddy.AddOperator(std::make_shared<StemBuildOp>("build_T", fx.t, fx.stem_t));
  eddy.AddOperator(std::make_shared<StemProbeOp>(
      "probe_T", &fx.layout, fx.t, fx.stem_t, fx.Only(fx.s),
      static_cast<int>(fx.layout.offset(fx.s)), *residual));
  eddy.AddOperator(std::make_shared<StemProbeOp>(
      "probe_S", &fx.layout, fx.s, fx.stem_s, fx.Only(fx.t),
      static_cast<int>(fx.layout.offset(fx.t)), *residual));

  TupleVector out;
  eddy.SetSink([&](RoutedTuple&& rt) { out.push_back(rt.tuple); });

  eddy.Inject(fx.s, KVTuple(1, 10));
  eddy.Inject(fx.t, KVTuple(1, 20));  // T.v 20 > S.v 10: match.
  eddy.Inject(fx.t, KVTuple(1, 5));   // 5 < 10: filtered by residual.
  eddy.Drain();

  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cell(3).int64_value(), 20);
}

TEST(EddyJoinTest, WindowedProbeRespectsHandle) {
  JoinFixture fx;
  auto window = std::make_shared<WindowHandle>();
  Eddy eddy(&fx.layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  eddy.AddOperator(std::make_shared<StemBuildOp>("build_T", fx.t, fx.stem_t));
  eddy.AddOperator(std::make_shared<StemProbeOp>(
      "probe_T", &fx.layout, fx.t, fx.stem_t, fx.Only(fx.s),
      static_cast<int>(fx.layout.offset(fx.s)), nullptr, window));

  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&&) { ++emitted; });

  for (int64_t ts = 1; ts <= 10; ++ts) eddy.Inject(fx.t, KVTuple(1, ts, ts));
  eddy.Drain();

  window->Set(3, 7);  // Probe sees only T tuples with ts in [3,7].
  eddy.Inject(fx.s, KVTuple(1, 0, 11));
  eddy.Drain();
  EXPECT_EQ(emitted, 5u);
}

TEST(EddyJoinTest, ThreeWayJoinMatchesReference) {
  // R(k) ⋈ S(k) ⋈ T(k) on a shared key, wired as three build/probe pairs.
  SourceLayout layout;
  const size_t r = layout.AddSource("R", KV());
  const size_t s = layout.AddSource("S", KV());
  const size_t t = layout.AddSource("T", KV());

  auto make_stem = [&](size_t src, const char* name) {
    SteM::Options o;
    o.key_field = static_cast<int>(layout.offset(src));
    return std::make_shared<SteM>(name, layout.full_schema(), o);
  };
  auto stem_r = make_stem(r, "SteM_R");
  auto stem_s = make_stem(s, "SteM_S");
  auto stem_t = make_stem(t, "SteM_T");

  Eddy eddy(&layout, std::make_unique<LotteryPolicy>(5));
  eddy.AddOperator(std::make_shared<StemBuildOp>("build_R", r, stem_r));
  eddy.AddOperator(std::make_shared<StemBuildOp>("build_S", s, stem_s));
  eddy.AddOperator(std::make_shared<StemBuildOp>("build_T", t, stem_t));

  auto contains = [&](std::initializer_list<size_t> srcs) {
    SmallBitset b(layout.num_sources());
    for (size_t x : srcs) b.Set(x);
    return b;
  };
  // Probe into each target keyed by whichever source the probing tuple
  // carries. Probes into the same target form one operator group, so a
  // composite holding both R and S probes T through exactly one of them.
  auto add_probe = [&](const char* name, size_t target,
                       const SteMPtr& stem, size_t key_src) {
    eddy.AddOperator(
        std::make_shared<StemProbeOp>(
            name, &layout, target, stem, contains({key_src}),
            static_cast<int>(layout.offset(key_src)), nullptr),
        /*group=*/static_cast<int>(target));
  };
  add_probe("probe_S_by_R", s, stem_s, r);
  add_probe("probe_T_by_R", t, stem_t, r);
  add_probe("probe_R_by_S", r, stem_r, s);
  add_probe("probe_T_by_S", t, stem_t, s);
  add_probe("probe_R_by_T", r, stem_r, t);
  add_probe("probe_S_by_T", s, stem_s, t);

  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&& rt) {
    EXPECT_EQ(rt.sources.Count(), 3u);
    ++emitted;
  });

  Rng rng(31);
  TupleVector rows[3];
  for (int i = 0; i < 120; ++i) {
    const size_t src = rng.NextBounded(3);
    Tuple row = KVTuple(static_cast<int64_t>(rng.NextBounded(8)), i, i);
    rows[src].push_back(row);
    eddy.Inject(src == 0 ? r : (src == 1 ? s : t), row);
  }
  eddy.Drain();

  size_t expected = 0;
  for (const Tuple& a : rows[0]) {
    for (const Tuple& b : rows[1]) {
      if (!(a.cell(0) == b.cell(0))) continue;
      for (const Tuple& c : rows[2]) {
        if (b.cell(0) == c.cell(0)) ++expected;
      }
    }
  }
  EXPECT_EQ(emitted, expected);
}

TEST(EddyJoinTest, RemoteIndexHybridCachesLookups) {
  SourceLayout layout;
  const size_t s = layout.AddSource("S", KV());
  const size_t t = layout.AddSource("T", KV());

  // Remote T index with 5 rows over keys 0..4.
  TupleVector t_rows;
  for (int64_t k = 0; k < 5; ++k) t_rows.push_back(KVTuple(k, k * 10, k));
  RemoteIndex::Options ro;
  ro.latency_cost = 100;
  auto index = std::make_shared<RemoteIndex>("T_idx", KV(), 0, t_rows, ro);

  SteM::Options co;
  co.key_field = static_cast<int>(layout.offset(t));
  auto cache = std::make_shared<SteM>("T_cache", layout.full_schema(), co);

  SmallBitset only_s(layout.num_sources());
  only_s.Set(s);
  Eddy eddy(&layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  auto probe = std::make_shared<RemoteIndexProbeOp>(
      "idx_probe", &layout, t, index, only_s,
      static_cast<int>(layout.offset(s)), nullptr, cache);
  eddy.AddOperator(probe);

  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&&) { ++emitted; });

  // 100 probes over only 5 distinct keys: the cache bounds remote lookups.
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    eddy.Inject(s, KVTuple(static_cast<int64_t>(rng.NextBounded(5)), i, i));
  }
  eddy.Drain();

  EXPECT_EQ(emitted, 100u);          // Every S row matches its T row.
  EXPECT_EQ(index->lookups(), 5u);   // One remote fetch per distinct key.
  EXPECT_EQ(probe->cache_misses(), 5u);
  EXPECT_EQ(probe->cache_hits(), 95u);
}

TEST(EddyJoinTest, SelfJoinViaTwoAliases) {
  // The paper's temporal band join uses one stream under two aliases; each
  // arriving tuple is injected once per alias.
  SourceLayout layout;
  const size_t c1 = layout.AddSource("c1", KV());
  const size_t c2 = layout.AddSource("c2", KV());
  auto make_stem = [&](size_t src, const char* name) {
    SteM::Options o;
    o.key_field = static_cast<int>(layout.offset(src));
    return std::make_shared<SteM>(name, layout.full_schema(), o);
  };
  auto stem1 = make_stem(c1, "SteM_c1");
  auto stem2 = make_stem(c2, "SteM_c2");

  auto only = [&](size_t src) {
    SmallBitset b(layout.num_sources());
    b.Set(src);
    return b;
  };

  // Residual: c2.v > c1.v (strict, so no self-pairing).
  auto residual = Expr::Binary(BinaryOp::kGt, Expr::Column("c2.v"),
                               Expr::Column("c1.v"))
                      ->Bind(*layout.full_schema());
  ASSERT_TRUE(residual.ok());

  Eddy eddy(&layout, std::make_unique<FixedPolicy>(std::vector<size_t>{}));
  eddy.AddOperator(std::make_shared<StemBuildOp>("build1", c1, stem1));
  eddy.AddOperator(std::make_shared<StemBuildOp>("build2", c2, stem2));
  eddy.AddOperator(std::make_shared<StemProbeOp>(
      "probe2", &layout, c2, stem2, only(c1),
      static_cast<int>(layout.offset(c1)), *residual));
  eddy.AddOperator(std::make_shared<StemProbeOp>(
      "probe1", &layout, c1, stem1, only(c2),
      static_cast<int>(layout.offset(c2)), *residual));

  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&&) { ++emitted; });

  // Rows (k=day, v=price): day 1 has prices 10, 20, 30.
  for (int64_t v : {10, 20, 30}) {
    Tuple row = KVTuple(1, v, v);
    eddy.Inject(c1, row);
    eddy.Inject(c2, row);
  }
  eddy.Drain();
  // Pairs with c2.v > c1.v among {10,20,30}: (10,20),(10,30),(20,30).
  EXPECT_EQ(emitted, 3u);
}

}  // namespace
}  // namespace tcq
