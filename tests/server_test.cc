#include "core/server.h"

#include <gtest/gtest.h>

#include "ingress/sources.h"

namespace tcq {
namespace {

SchemaPtr StockSchema() { return StockTickerSource::MakeSchema(); }

Tuple Stock(int64_t day, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(day), Value::String(sym), Value::Double(price)}, day);
}

/// A deterministic price series for MSFT: price(day) = 40 + day.
/// Day d has closing price 40 + d, so price > 50 from day 11 on.
void FeedMsft(Server* server, int64_t days) {
  for (int64_t d = 1; d <= days; ++d) {
    ASSERT_TRUE(server->Push("ClosingStockPrices",
                             Stock(d, "MSFT", 40.0 + d))
                    .ok());
  }
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_
                    .DefineStream("ClosingStockPrices", StockSchema(),
                                  /*timestamp_field=*/0)
                    .ok());
  }
  Server server_;
};

// ---- The four §4.1.1 example queries, end to end. -------------------------

TEST_F(ServerTest, PaperExample1SnapshotQuery) {
  // "closing prices for MSFT on the first five days of trading".
  auto q = server_.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(q.ok()) << q.status();
  FeedMsft(&server_, 10);
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);  // Snapshot: exactly one result set.
  ASSERT_EQ(sets[0].rows.size(), 5u);
  for (int64_t d = 1; d <= 5; ++d) {
    EXPECT_DOUBLE_EQ(sets[0].rows[static_cast<size_t>(d - 1)]
                         .cell(0)
                         .double_value(),
                     40.0 + d);
    EXPECT_EQ(sets[0].rows[static_cast<size_t>(d - 1)].cell(1).int64_value(),
              d);
  }
  // No further sets ever.
  FeedMsft(&server_, 0);
  EXPECT_FALSE(server_.Poll(*q).has_value());
}

TEST_F(ServerTest, PaperExample2LandmarkQuery) {
  // "all days after the hundredth trading day with price > 50, standing
  //  for 1000 days" — scaled down: after day 10, standing to day 30.
  auto q = server_.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 "
      "for (t = 10; t <= 30; t++) { WindowIs(ClosingStockPrices, 10, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  FeedMsft(&server_, 31);  // One day past the last window (punctuation).
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 21u);  // One per t in [10, 30].
  // Window [10, 10]: price 50 is not > 50 — empty.
  EXPECT_TRUE(sets[0].rows.empty());
  // Window [10, 30]: days 11..30 qualify.
  EXPECT_EQ(sets[20].rows.size(), 20u);
  // The landmark keeps *all* qualifying days, not a sliding suffix.
  EXPECT_EQ(sets[20].rows.front().cell(1).int64_value(), 11);
}

TEST_F(ServerTest, PaperExample3SlidingAvg) {
  // "every fifth day, average closing price of the five most recent days".
  auto q = server_.Submit(
      "Select AVG(closingPrice) From ClosingStockPrices "
      "Where stockSymbol = 'MSFT' "
      "for (t = ST; t < ST + 50; t += 5) { "
      "WindowIs(ClosingStockPrices, t - 4, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  // ST resolves to 1 (no data yet when submitted).
  FeedMsft(&server_, 55);
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 10u);
  // First window [ -3, 1 ] holds only day 1: avg = 41.
  ASSERT_EQ(sets[0].rows.size(), 1u);
  EXPECT_DOUBLE_EQ(sets[0].rows[0].cell(0).double_value(), 41.0);
  // Second window [2, 6]: prices 42..46, avg 44.
  EXPECT_DOUBLE_EQ(sets[1].rows[0].cell(0).double_value(), 44.0);
  // Last window [42, 46]: avg 84+...: prices 82..86 -> 84.
  EXPECT_DOUBLE_EQ(sets[9].rows[0].cell(0).double_value(), 84.0);
}

TEST_F(ServerTest, PaperExample4TemporalBandJoin) {
  // "stocks that closed higher than MSFT on the same day".
  auto q = server_.Submit(
      "Select c2.* FROM ClosingStockPrices as c1, "
      "ClosingStockPrices as c2 "
      "WHERE c1.stockSymbol = 'MSFT' and c2.stockSymbol != 'MSFT' and "
      "c2.closingPrice > c1.closingPrice and "
      "c2.timestamp = c1.timestamp "
      "for (t = ST; t < ST + 5; t++) { "
      "WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  // Each day: MSFT at 50, IBM above at 60, ORCL below at 40. Day 6 is
  // fed as punctuation so the t=5 window (right end 5) can fire.
  for (int64_t d = 1; d <= 6; ++d) {
    ASSERT_TRUE(
        server_.Push("ClosingStockPrices", Stock(d, "MSFT", 50)).ok());
    ASSERT_TRUE(
        server_.Push("ClosingStockPrices", Stock(d, "IBM", 60)).ok());
    ASSERT_TRUE(
        server_.Push("ClosingStockPrices", Stock(d, "ORCL", 40)).ok());
  }
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 5u);
  // Window t covers days [t-4, t]: t days exist, IBM beats MSFT each day.
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i].rows.size(), i + 1) << "window t=" << sets[i].t;
    for (const Tuple& row : sets[i].rows) {
      EXPECT_EQ(row.cell(1).string_value(), "IBM");
      EXPECT_DOUBLE_EQ(row.cell(2).double_value(), 60.0);
    }
  }
}

// ---- Other server behaviours. ------------------------------------------------

TEST_F(ServerTest, StandingFilterUsesCacqPath) {
  auto q1 = server_.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT'");
  auto q2 = server_.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE closingPrice > 45");
  ASSERT_TRUE(q1.ok() && q2.ok());
  FeedMsft(&server_, 10);  // Prices 41..50.
  EXPECT_EQ(server_.PollAll(*q1).size(), 10u);  // All MSFT.
  EXPECT_EQ(server_.PollAll(*q2).size(), 5u);   // 46..50.
}

TEST_F(ServerTest, CallbackDelivery) {
  auto q = server_.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE closingPrice > 45");
  ASSERT_TRUE(q.ok());
  int called = 0;
  ASSERT_TRUE(server_
                  .SetCallback(*q,
                               [&](const ResultSet& rs) {
                                 called += static_cast<int>(rs.rows.size());
                               })
                  .ok());
  FeedMsft(&server_, 10);
  EXPECT_EQ(called, 5);
  EXPECT_FALSE(server_.Poll(*q).has_value());  // Callback consumed them.
}

TEST_F(ServerTest, CancelStopsDelivery) {
  auto q = server_.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE closingPrice > 0");
  ASSERT_TRUE(q.ok());
  FeedMsft(&server_, 3);
  ASSERT_TRUE(server_.Cancel(*q).ok());
  FeedMsft(&server_, 0);
  ASSERT_TRUE(
      server_.Push("ClosingStockPrices", Stock(4, "MSFT", 44)).ok());
  EXPECT_TRUE(server_.PollAll(*q).empty());
  EXPECT_EQ(server_.num_active_queries(), 0u);
  EXPECT_FALSE(server_.Cancel(*q).ok());
}

TEST_F(ServerTest, LateQuerySeesOnlyNewData) {
  FeedMsft(&server_, 10);
  auto q = server_.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE closingPrice > 0");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(
      server_.Push("ClosingStockPrices", Stock(11, "MSFT", 51)).ok());
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);  // Only the post-registration tuple.
}

TEST_F(ServerTest, WindowedQueryStartsAtSubmissionTime) {
  FeedMsft(&server_, 10);
  // ST should resolve to 11 (watermark + 1).
  auto q = server_.Submit(
      "SELECT AVG(closingPrice) FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (t = ST; t < ST + 2; t++) { "
      "WindowIs(ClosingStockPrices, t, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  for (int64_t d = 11; d <= 13; ++d) {  // Day 13 punctuates window [12,12].
    ASSERT_TRUE(server_.Push("ClosingStockPrices",
                             Stock(d, "MSFT", 40.0 + d))
                    .ok());
  }
  auto sets = server_.PollAll(*q);
  // Windows [11,11] and [12,12]: prices 51, 52.
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_DOUBLE_EQ(sets[0].rows[0].cell(0).double_value(), 51.0);
  EXPECT_DOUBLE_EQ(sets[1].rows[0].cell(0).double_value(), 52.0);
}

TEST_F(ServerTest, TableSnapshotAnswersImmediately) {
  SchemaPtr cschema = Schema::Make({{"symbol", ValueType::kString, ""},
                                    {"sector", ValueType::kString, ""}});
  TupleVector rows;
  rows.push_back(
      Tuple::Make({Value::String("MSFT"), Value::String("tech")}, 0));
  rows.push_back(
      Tuple::Make({Value::String("XOM"), Value::String("energy")}, 0));
  ASSERT_TRUE(server_.DefineTable("Companies", cschema, rows).ok());
  auto q = server_.Submit(
      "SELECT symbol FROM Companies WHERE sector = 'tech'");
  ASSERT_TRUE(q.ok()) << q.status();
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  ASSERT_EQ(sets[0].rows.size(), 1u);
  EXPECT_EQ(sets[0].rows[0].cell(0).string_value(), "MSFT");
}

TEST_F(ServerTest, StreamTableJoin) {
  SchemaPtr cschema = Schema::Make({{"symbol", ValueType::kString, ""},
                                    {"sector", ValueType::kString, ""}});
  TupleVector rows;
  rows.push_back(
      Tuple::Make({Value::String("MSFT"), Value::String("tech")}, 0));
  ASSERT_TRUE(server_.DefineTable("Companies", cschema, rows).ok());
  auto q = server_.Submit(
      "SELECT s.closingPrice, c.sector "
      "FROM ClosingStockPrices as s, Companies as c "
      "WHERE s.stockSymbol = c.symbol "
      "for (t = 1; t <= 3; t++) { WindowIs(s, t, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  for (int64_t d = 1; d <= 4; ++d) {  // Day 4 punctuates window [3,3].
    ASSERT_TRUE(
        server_.Push("ClosingStockPrices", Stock(d, "MSFT", 50 + d)).ok());
    ASSERT_TRUE(
        server_.Push("ClosingStockPrices", Stock(d, "XOM", 80)).ok());
  }
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 3u);
  for (const auto& rs : sets) {
    ASSERT_EQ(rs.rows.size(), 1u);  // Only MSFT joins Companies.
    EXPECT_EQ(rs.rows[0].cell(1).string_value(), "tech");
  }
}

TEST_F(ServerTest, GroupByAggregateOverWindows) {
  auto q = server_.Submit(
      "SELECT stockSymbol, COUNT(*) FROM ClosingStockPrices "
      "GROUP BY stockSymbol "
      "for (t = 1; t <= 9; t += 3) { "
      "WindowIs(ClosingStockPrices, t, t + 2); }");
  ASSERT_TRUE(q.ok()) << q.status();
  for (int64_t d = 1; d <= 10; ++d) {  // Day 10 punctuates window [7,9].
    ASSERT_TRUE(
        server_.Push("ClosingStockPrices", Stock(d, "MSFT", 50)).ok());
    if (d % 3 == 0) {
      ASSERT_TRUE(
          server_.Push("ClosingStockPrices", Stock(d, "IBM", 90)).ok());
    }
  }
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 3u);
  for (const auto& rs : sets) {
    ASSERT_EQ(rs.rows.size(), 2u);
    EXPECT_EQ(rs.rows[0].cell(0).string_value(), "IBM");
    EXPECT_EQ(rs.rows[0].cell(1).int64_value(), 1);
    EXPECT_EQ(rs.rows[1].cell(0).string_value(), "MSFT");
    EXPECT_EQ(rs.rows[1].cell(1).int64_value(), 3);
  }
}

TEST_F(ServerTest, ErrorPaths) {
  EXPECT_FALSE(server_.Push("NoSuchStream", Stock(1, "A", 1)).ok());
  EXPECT_FALSE(server_.Submit("SELECT FROM").ok());
  EXPECT_FALSE(server_.Submit("SELECT x FROM NoSuchStream").ok());
  // Arity mismatch.
  EXPECT_FALSE(
      server_.Push("ClosingStockPrices", Tuple::Make({Value::Int64(1)}, 1))
          .ok());
  // Out-of-order timestamps rejected.
  ASSERT_TRUE(
      server_.Push("ClosingStockPrices", Stock(5, "MSFT", 1)).ok());
  EXPECT_FALSE(
      server_.Push("ClosingStockPrices", Stock(3, "MSFT", 1)).ok());
  // Poll on bogus id.
  EXPECT_FALSE(server_.Poll(42).has_value());
}

TEST_F(ServerTest, PushAllFromGenerator) {
  auto q = server_.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT'");
  ASSERT_TRUE(q.ok());
  StockTickerSource::Options opts;
  opts.num_symbols = 4;
  opts.num_days = 25;
  StockTickerSource src(opts);
  ASSERT_TRUE(server_.PushAll("ClosingStockPrices", &src).ok());
  EXPECT_EQ(server_.PollAll(*q).size(), 25u);  // One MSFT row per day.
}

TEST_F(ServerTest, OutputSchemaReflectsSelectList) {
  auto q = server_.Submit(
      "SELECT closingPrice AS px FROM ClosingStockPrices "
      "WHERE closingPrice > 0");
  ASSERT_TRUE(q.ok());
  auto schema = server_.OutputSchema(*q);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->field(0).name, "px");
  EXPECT_EQ((*schema)->field(0).type, ValueType::kDouble);
}

}  // namespace
}  // namespace tcq
