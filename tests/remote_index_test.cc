#include "stem/remote_index.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

RemoteIndex MakeIndex(uint64_t latency = 100) {
  TupleVector rows;
  rows.push_back(Tuple::Make({Value::Int64(1), Value::Int64(10)}, 1));
  rows.push_back(Tuple::Make({Value::Int64(1), Value::Int64(11)}, 2));
  rows.push_back(Tuple::Make({Value::Int64(2), Value::Int64(20)}, 3));
  RemoteIndex::Options opts;
  opts.latency_cost = latency;
  return RemoteIndex("idx", KV(), /*key_field=*/0, std::move(rows), opts);
}

TEST(RemoteIndexTest, LookupReturnsMatchingRows) {
  RemoteIndex idx = MakeIndex();
  TupleVector rows = idx.Lookup(Value::Int64(1));
  EXPECT_EQ(rows.size(), 2u);
  for (const Tuple& t : rows) EXPECT_EQ(t.cell(0).int64_value(), 1);
}

TEST(RemoteIndexTest, MissingKeyReturnsEmpty) {
  RemoteIndex idx = MakeIndex();
  EXPECT_TRUE(idx.Lookup(Value::Int64(99)).empty());
}

TEST(RemoteIndexTest, ChargesLatencyPerLookup) {
  RemoteIndex idx = MakeIndex(250);
  idx.Lookup(Value::Int64(1));
  idx.Lookup(Value::Int64(2));
  idx.Lookup(Value::Int64(99));  // Misses also cost.
  EXPECT_EQ(idx.lookups(), 3u);
  EXPECT_EQ(idx.total_cost(), 750u);
}

}  // namespace
}  // namespace tcq
