#include "core/egress.h"

#include <gtest/gtest.h>

#include "fjords/scheduler.h"
#include "ingress/sources.h"
#include "ingress/wrapper.h"

namespace tcq {
namespace {

Tuple Stock(int64_t day, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(day), Value::String(sym), Value::Double(price)}, day);
}

class EgressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_
                    .DefineStream("ClosingStockPrices",
                                  StockTickerSource::MakeSchema(), 0)
                    .ok());
    auto q = server_.Submit(
        "SELECT closingPrice FROM ClosingStockPrices "
        "WHERE stockSymbol = 'MSFT'");
    ASSERT_TRUE(q.ok());
    query_ = *q;
  }

  void Feed(int64_t from, int64_t to) {
    for (int64_t d = from; d <= to; ++d) {
      ASSERT_TRUE(
          server_.Push("ClosingStockPrices", Stock(d, "MSFT", 40.0 + d))
              .ok());
    }
  }

  Server server_;
  QueryId query_ = 0;
};

TEST_F(EgressTest, PullModeSpoolsWhileDisconnected) {
  auto egress = EgressOperator::Attach(&server_, query_);
  ASSERT_TRUE(egress.ok());
  Feed(1, 10);
  EXPECT_EQ((*egress)->spooled(), 10u);
  auto sets = (*egress)->Fetch();
  EXPECT_EQ(sets.size(), 10u);
  EXPECT_EQ((*egress)->spooled(), 0u);
  EXPECT_EQ((*egress)->delivered(), 10u);
}

TEST_F(EgressTest, FetchInBatches) {
  auto egress = EgressOperator::Attach(&server_, query_);
  ASSERT_TRUE(egress.ok());
  Feed(1, 10);
  EXPECT_EQ((*egress)->Fetch(3).size(), 3u);
  EXPECT_EQ((*egress)->Fetch(3).size(), 3u);
  EXPECT_EQ((*egress)->Fetch(100).size(), 4u);
  EXPECT_TRUE((*egress)->Fetch().empty());
}

TEST_F(EgressTest, ConnectFlushesSpoolThenStreamsLive) {
  auto egress = EgressOperator::Attach(&server_, query_);
  ASSERT_TRUE(egress.ok());
  Feed(1, 5);  // Spooled while disconnected.
  std::vector<Timestamp> seen;
  (*egress)->Connect(
      [&](const ResultSet& rs) { seen.push_back(rs.t); });
  EXPECT_EQ(seen.size(), 5u);  // Backlog flushed in order.
  Feed(6, 8);                  // Live streaming.
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ((*egress)->spooled(), 0u);
}

TEST_F(EgressTest, DisconnectResumesSpooling) {
  auto egress = EgressOperator::Attach(&server_, query_);
  ASSERT_TRUE(egress.ok());
  int live = 0;
  (*egress)->Connect([&](const ResultSet&) { ++live; });
  Feed(1, 3);
  EXPECT_EQ(live, 3);
  (*egress)->Disconnect();
  Feed(4, 6);
  EXPECT_EQ(live, 3);
  EXPECT_EQ((*egress)->spooled(), 3u);
}

TEST_F(EgressTest, SpoolBoundShedsOldest) {
  EgressOperator::Options opts;
  opts.spool_capacity = 5;
  auto egress = EgressOperator::Attach(&server_, query_, opts);
  ASSERT_TRUE(egress.ok());
  Feed(1, 12);
  EXPECT_EQ((*egress)->spooled(), 5u);
  EXPECT_EQ((*egress)->shed(), 7u);
  // The freshest results survive (days 8..12).
  auto sets = (*egress)->Fetch();
  ASSERT_EQ(sets.size(), 5u);
  EXPECT_EQ(sets.front().t, 8);
  EXPECT_EQ(sets.back().t, 12);
}

TEST_F(EgressTest, AttachToUnknownQueryFails) {
  EXPECT_FALSE(EgressOperator::Attach(&server_, 999).ok());
}

TEST_F(EgressTest, StreamPumpDrainsQueueIntoServer) {
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(1024));
  StreamPumpModule pump("pump", &server_, "ClosingStockPrices", q);
  for (int64_t d = 1; d <= 20; ++d) {
    ASSERT_TRUE(q->Enqueue(Stock(d, "MSFT", 50.0)));
  }
  q->Close();
  while (pump.Step(8) != FjordModule::StepResult::kDone) {
  }
  EXPECT_EQ(pump.pumped(), 20u);
  EXPECT_EQ(pump.rejected(), 0u);
  EXPECT_EQ(server_.PollAll(query_).size(), 20u);
}

TEST_F(EgressTest, StreamPumpCountsRejects) {
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(16));
  StreamPumpModule pump("pump", &server_, "ClosingStockPrices", q);
  ASSERT_TRUE(q->Enqueue(Stock(5, "MSFT", 50.0)));
  ASSERT_TRUE(q->Enqueue(Stock(3, "MSFT", 50.0)));  // Out of order.
  ASSERT_TRUE(q->Enqueue(Stock(6, "MSFT", 50.0)));
  q->Close();
  while (pump.Step(8) != FjordModule::StepResult::kDone) {
  }
  EXPECT_EQ(pump.pumped(), 2u);
  EXPECT_EQ(pump.rejected(), 1u);
}

TEST_F(EgressTest, EndToEndWrapperPipelineUnderScheduler) {
  // SourceModule -> queue -> StreamPump -> Server -> EgressOperator:
  // the full Figure-5 path (Wrapper process -> Executor -> client).
  auto egress = EgressOperator::Attach(&server_, query_);
  ASSERT_TRUE(egress.ok());

  StockTickerSource::Options sopts;
  sopts.num_symbols = 2;  // MSFT + one other.
  sopts.num_days = 50;
  auto wire = std::make_shared<TupleQueue>(PushQueueOptions(64));

  ExecutionObject eo("wrapper");
  eo.AddModule(std::make_shared<SourceModule>(
      "ticker", std::make_unique<StockTickerSource>(sopts), wire));
  eo.AddModule(std::make_shared<StreamPumpModule>(
      "pump", &server_, "ClosingStockPrices", wire));
  eo.Start();
  eo.Join();

  auto sets = (*egress)->Fetch();
  EXPECT_EQ(sets.size(), 50u);  // One MSFT row per day.
}

}  // namespace
}  // namespace tcq
