// Concurrency stress for the sharded CACQ exchange: real producer threads
// against 4+ shard threads plus the egress thread, with control traffic
// (query churn, eviction, quiesce barriers) riding the same queues. Run
// under -DTCQ_SANITIZE=thread in CI; the assertions here are conservation
// laws that hold whatever the interleaving.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cacq/sharded_engine.h"
#include "conservation.h"
#include "core/server.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

TEST(StressShardedTest, ConcurrentProducersAgainstControlTraffic) {
  constexpr size_t kShards = 4;
  constexpr size_t kProducers = 3;
  constexpr size_t kBatches = 60;
  constexpr size_t kBatchSize = 32;

  ShardedEngine::Options opts;
  opts.num_shards = kShards;
  opts.input_capacity = 16;  // Small: force backpressure interleavings.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("S", KV(), 0).ok());

  std::atomic<uint64_t> all_hits{0};
  std::atomic<uint64_t> churn_hits{0};
  QueryId all_query = 0;
  std::atomic<QueryId> churn_query{0};
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    for (const auto& [q, t] : batch) {
      if (q == all_query) {
        all_hits.fetch_add(1, std::memory_order_relaxed);
      } else if (q == churn_query.load(std::memory_order_relaxed)) {
        churn_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  engine.Start();

  // Registered before any data: must see every tuple exactly once.
  CacqQuerySpec see_all;
  see_all.sources = {"S"};
  auto q = engine.AddQuery(see_all);
  ASSERT_TRUE(q.ok());
  all_query = *q;

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Tuple> batch;
        batch.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          const auto n = static_cast<int64_t>(b * kBatchSize + i);
          batch.push_back(
              KVTuple(n % 23, static_cast<int64_t>(p), n + 1));
        }
        ASSERT_TRUE(engine.PushBatch("S", std::move(batch)).ok());
      }
    });
  }

  // Control churn, serialized on this one thread (the AddQuery contract):
  // register/unregister a filter, evict, quiesce — all while data flows.
  std::thread controller([&] {
    CacqQuerySpec filter;
    filter.sources = {"S"};
    filter.where = Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                                Expr::Literal(Value::Int64(11)));
    for (int round = 0; round < 20; ++round) {
      auto cq = engine.AddQuery(filter);
      ASSERT_TRUE(cq.ok());
      churn_query.store(*cq, std::memory_order_relaxed);
      engine.EvictBefore(static_cast<Timestamp>(round));
      if (round % 5 == 0) engine.Quiesce();
      ASSERT_TRUE(engine.RemoveQuery(*cq).ok());
    }
  });

  for (auto& t : producers) t.join();
  controller.join();
  engine.Quiesce();

  const uint64_t total = kProducers * kBatches * kBatchSize;
  EXPECT_EQ(all_hits.load(), total);

  ExpectExchangeConservation(engine, total);
  engine.Stop();
  // Stop after a full drain is idempotent and loses nothing.
  engine.Stop();
  EXPECT_EQ(all_hits.load(), total);
}

TEST(StressShardedTest, ServerShardedUnderConcurrentClients) {
  Server::Options opts;
  opts.cacq_shards = 4;
  Server server(opts);
  // Arrival-order timestamps: concurrent producers cannot reject each
  // other with out-of-order stamps. Partitioned on k.
  ASSERT_TRUE(server
                  .DefineStream("S", KV(), /*timestamp_field=*/-1,
                                /*partition_field=*/0)
                  .ok());

  std::atomic<uint64_t> delivered{0};
  auto q = server.Submit("SELECT v FROM S WHERE k >= 0");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(server
                  .SetCallback(*q,
                               [&](const ResultSet& rs) {
                                 delivered.fetch_add(
                                     rs.rows.size(),
                                     std::memory_order_relaxed);
                               })
                  .ok());

  constexpr size_t kProducers = 3;
  constexpr size_t kBatches = 40;
  constexpr size_t kBatchSize = 25;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&server, p] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Tuple> batch;
        for (size_t i = 0; i < kBatchSize; ++i) {
          batch.push_back(KVTuple(static_cast<int64_t>(i % 13),
                                  static_cast<int64_t>(p), 0));
        }
        ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());
      }
    });
  }
  // Query churn + introspection race the producers and the egress thread.
  threads.emplace_back([&server] {
    for (int round = 0; round < 15; ++round) {
      auto extra = server.Submit("SELECT k FROM S WHERE v = 1");
      ASSERT_TRUE(extra.ok()) << extra.status();
      (void)server.PollAll(*extra);
      ASSERT_TRUE(server.Cancel(*extra).ok());
    }
  });
  threads.emplace_back([&server] {
    for (int round = 0; round < 15; ++round) {
      const std::string snap = server.SnapshotMetrics();
      EXPECT_NE(snap.find("\"shards\""), std::string::npos);
      server.PumpMetrics();
      server.Quiesce();
    }
  });
  for (auto& t : threads) t.join();

  server.Quiesce();
  EXPECT_EQ(delivered.load(), kProducers * kBatches * kBatchSize);
}

}  // namespace
}  // namespace tcq
