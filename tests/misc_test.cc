// Coverage for the small common utilities: clocks, logging plumbing, and
// the lexer's token-level behaviour.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "parser/lexer.h"

namespace tcq {
namespace {

TEST(ClockTest, LogicalClockMonotonicAndConsecutive) {
  LogicalClock clock(1);
  EXPECT_EQ(clock.Tick(), 1);
  EXPECT_EQ(clock.Tick(), 2);
  EXPECT_EQ(clock.Peek(), 3);
  EXPECT_EQ(clock.Tick(), 3);
}

TEST(ClockTest, LogicalClockThreadSafe) {
  LogicalClock clock(1);
  std::vector<std::thread> threads;
  std::vector<std::vector<Timestamp>> seen(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock, &seen, t] {
      for (int i = 0; i < 1000; ++i) seen[t].push_back(clock.Tick());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<Timestamp> all;
  for (auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], static_cast<Timestamp>(i + 1));  // No dup, no gap.
  }
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceBy(5);
  EXPECT_EQ(clock.Now(), 105);
}

TEST(ClockTest, PhysicalNowIsMonotonic) {
  const Timestamp a = PhysicalNowMicros();
  const Timestamp b = PhysicalNowMicros();
  EXPECT_LE(a, b);
}

TEST(LoggingTest, ThresholdGatesLevels) {
  const LogLevel old = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  EXPECT_FALSE(Logger::Enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::Enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::Enabled(LogLevel::kError));
  EXPECT_TRUE(Logger::Enabled(LogLevel::kFatal));
  Logger::set_threshold(old);
}

TEST(LoggingTest, DisabledLogIsCheap) {
  const LogLevel old = Logger::threshold();
  Logger::set_threshold(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "costly";
  };
  TCQ_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);  // Streamed expression not evaluated.
  Logger::set_threshold(old);
}

TEST(LoggingTest, CheckPassesQuietly) {
  TCQ_CHECK(1 + 1 == 2) << "never shown";
  TCQ_DCHECK(true);
  SUCCEED();
}

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("select x1, 42 3.5 'str' ( ) { } ; . * + - / %");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdent);
  EXPECT_EQ((*tokens)[1].text, "x1");
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[4].float_value, 3.5);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[5].text, "str");
  EXPECT_EQ(kinds.back(), TokenKind::kEnd);
}

TEST(LexerTest, CompoundOperators) {
  auto tokens = Lex("== != <> <= >= += -= ++ = < >");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> expected = {
      TokenKind::kEq,     TokenKind::kNe,       TokenKind::kNe,
      TokenKind::kLe,     TokenKind::kGe,       TokenKind::kPlusEq,
      TokenKind::kMinusEq, TokenKind::kPlusPlus, TokenKind::kEq,
      TokenKind::kLt,     TokenKind::kGt,       TokenKind::kEnd};
  ASSERT_EQ(tokens->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*tokens)[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("SeLeCt");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_FALSE((*tokens)[0].IsKeyword("SELECTX"));
  EXPECT_FALSE((*tokens)[0].IsKeyword("SELEC"));
}

TEST(LexerTest, CommentsSkippedToEol) {
  auto tokens = Lex("a -- comment with symbols != { ;\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, end.
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, EscapedQuoteInString) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("a # b").ok());
}

TEST(LexerTest, OffsetsPointIntoInput) {
  const std::string input = "ab  cd";
  auto tokens = Lex(input);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 4u);
}

}  // namespace
}  // namespace tcq
