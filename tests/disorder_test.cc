// Out-of-order ingress end to end (DESIGN.md §15): the reorder buffer's
// bounded-disorder release rule, heartbeat punctuation (explicit and
// idle-timeout), the LatePolicy matrix for beyond-bound stragglers, and
// retraction-capable delivery through the runner, the inline CACQ engine,
// the sharded exchange and the HA changelog — plus the satellite
// regressions for PSoup/SteM straggler eviction and the PushBatch
// skip-and-count contract over mixed in/out-of-order batches.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cacq/sharded_engine.h"
#include "cacq/shared_stem.h"
#include "core/server.h"
#include "ingress/wrapper.h"
#include "psoup/psoup.h"
#include "stem/stem.h"
#include "telemetry/metrics.h"
#include "testing/crash_injector.h"
#include "testing/disorder.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t ts, int64_t v) {
  return Tuple::Make({Value::Int64(ts), Value::Int64(v)}, ts);
}

std::vector<Timestamp> Stamps(const std::vector<Tuple>& ts) {
  std::vector<Timestamp> out;
  for (const Tuple& t : ts) out.push_back(t.timestamp());
  return out;
}

// CACQ deliveries arrive grouped into result sets by batch; tests care
// about the rows.
std::vector<Tuple> FlattenRows(std::vector<ResultSet> sets) {
  std::vector<Tuple> rows;
  for (ResultSet& s : sets) {
    for (Tuple& r : s.rows) rows.push_back(std::move(r));
  }
  return rows;
}

// --- ReorderBuffer unit --------------------------------------------------

TEST(ReorderBufferTest, ZeroBoundReleasesImmediately) {
  ReorderBuffer buf;  // max_disorder defaults to 0.
  std::vector<Tuple> released;
  buf.Offer(KVTuple(5, 0), &released);
  buf.Offer(KVTuple(7, 0), &released);
  EXPECT_EQ(Stamps(released), (std::vector<Timestamp>{5, 7}));
  EXPECT_EQ(buf.buffered(), 0u);
  EXPECT_EQ(buf.raw_watermark(), 7);
}

TEST(ReorderBufferTest, ReleasesInTimestampOrderWithinBound) {
  ReorderBuffer buf;
  buf.set_max_disorder(3);
  std::vector<Tuple> released;
  // 10 arrives first, then stragglers 8 and 9 — all within bound 3.
  buf.Offer(KVTuple(10, 0), &released);
  buf.Offer(KVTuple(8, 0), &released);
  buf.Offer(KVTuple(9, 0), &released);
  // Nothing releases until the raw mark clears ts + 3.
  EXPECT_TRUE(released.empty());
  buf.Offer(KVTuple(11, 0), &released);
  EXPECT_EQ(Stamps(released), (std::vector<Timestamp>{8}));  // 8 <= 11-3.
  buf.Offer(KVTuple(13, 0), &released);
  // Raw 13 releases everything <= 10, in timestamp order.
  EXPECT_EQ(Stamps(released), (std::vector<Timestamp>{8, 9, 10}));
  EXPECT_EQ(buf.buffered(), 2u);  // 11 and 13 still held.
  buf.Flush(&released);
  EXPECT_EQ(Stamps(released), (std::vector<Timestamp>{8, 9, 10, 11, 13}));
}

TEST(ReorderBufferTest, TiesReleaseInArrivalOrder) {
  ReorderBuffer buf;
  buf.set_max_disorder(2);
  std::vector<Tuple> released;
  buf.Offer(KVTuple(5, 1), &released);
  buf.Offer(KVTuple(5, 2), &released);
  buf.Offer(KVTuple(4, 3), &released);
  buf.Punctuate(10, &released);
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0].timestamp(), 4);
  EXPECT_EQ(released[1].cell(1).int64_value(), 1);  // Stable: arrival order.
  EXPECT_EQ(released[2].cell(1).int64_value(), 2);
  EXPECT_EQ(buf.raw_watermark(), 10);  // Punctuation advances the raw mark.
}

TEST(ReorderBufferTest, PunctuateFlushesOnlyThroughTs) {
  ReorderBuffer buf;
  buf.set_max_disorder(100);
  std::vector<Tuple> released;
  buf.Offer(KVTuple(3, 0), &released);
  buf.Offer(KVTuple(8, 0), &released);
  EXPECT_TRUE(released.empty());
  buf.Punctuate(5, &released);
  EXPECT_EQ(Stamps(released), (std::vector<Timestamp>{3}));
  EXPECT_EQ(buf.buffered(), 1u);
}

// --- Disorder injector ---------------------------------------------------

TEST(DisorderInjectorTest, RespectsTheBoundAndIsDeterministic) {
  std::vector<Tuple> in;
  for (int64_t t = 1; t <= 200; ++t) in.push_back(KVTuple(t, t));
  DisorderOptions opts;
  opts.max_disorder = 7;
  opts.seed = 3;
  const std::vector<Tuple> out = InjectDisorder(in, opts);
  ASSERT_EQ(out.size(), in.size());
  // Same multiset, genuinely disordered, and every tuple within bound:
  // no earlier arrival's timestamp exceeds ts + max_disorder.
  bool any_disorder = false;
  Timestamp max_seen = kMinTimestamp;
  for (const Tuple& t : out) {
    if (t.timestamp() < max_seen) any_disorder = true;
    EXPECT_GE(t.timestamp() + opts.max_disorder, max_seen);
    max_seen = std::max(max_seen, t.timestamp());
  }
  EXPECT_TRUE(any_disorder);
  EXPECT_EQ(Stamps(InjectDisorder(in, opts)), Stamps(out));  // Deterministic.
}

// --- Server: bounded disorder, delayed-but-correct -----------------------

TEST(DisorderServerTest, ReordersWithinBoundBeforeDelayedQueries) {
  Server::Options o;
  o.max_disorder = 3;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), /*timestamp_field=*/0).ok());
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 2; t <= 8; t += 2) { WindowIs(S, t - 1, t); }");
  ASSERT_TRUE(q.ok()) << q.status();

  // Disordered feed, displacement <= 3.
  for (int64_t ts : {2, 1, 4, 3, 6, 5, 8, 7, 9}) {
    ASSERT_TRUE(server.Push("S", KVTuple(ts, ts * 10)).ok());
  }
  ASSERT_TRUE(server.Heartbeat("S", 9).ok());  // Flush the tail.

  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 4u);
  for (size_t i = 0; i < sets.size(); ++i) {
    const int64_t t = 2 * (static_cast<int64_t>(i) + 1);
    EXPECT_EQ(sets[i].t, t);
    ASSERT_EQ(sets[i].rows.size(), 1u);
    // SUM(v) over [t-1, t] = 10(t-1) + 10t — every window complete and
    // final despite the disordered arrival order.
    EXPECT_EQ(sets[i].rows[0].cell(0).int64_value(), 10 * (2 * t - 1));
  }

  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"late_within_bound\":4"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"heartbeats\":1"), std::string::npos) << snap;
}

TEST(DisorderServerTest, DefaultBoundKeepsClassicRejectContract) {
  Server server;  // max_disorder = 0, LatePolicy::kReject.
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  ASSERT_TRUE(server.Push("S", KVTuple(5, 0)).ok());
  const Status st = server.Push("S", KVTuple(3, 0));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("out-of-order timestamp"), std::string::npos);
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"beyond_bound\":1"), std::string::npos) << snap;
}

TEST(DisorderServerTest, SetDisorderBoundValidatesAndOverrides) {
  Server server;
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  ASSERT_TRUE(server.DefineStream("Seq", KV(), /*timestamp_field=*/-1).ok());
  EXPECT_EQ(server.SetDisorderBound("nope", 3).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.SetDisorderBound("Seq", 3).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.SetDisorderBound("S", -1).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(server.SetDisorderBound("S", 2).ok());
  // 4 then 3: within the per-stream bound now, re-sorted, not rejected.
  ASSERT_TRUE(server.Push("S", KVTuple(4, 0)).ok());
  ASSERT_TRUE(server.Push("S", KVTuple(3, 0)).ok());
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"late_within_bound\":1"), std::string::npos) << snap;
}

TEST(DisorderServerTest, LatePolicyDropDiscardsAndCounts) {
  Server::Options o;
  o.late_policy = LatePolicy::kDrop;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  auto q = server.Submit("SELECT v FROM S WHERE v >= 0");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(server.Push("S", KVTuple(5, 50)).ok());
  ASSERT_TRUE(server.Push("S", KVTuple(3, 30)).ok());  // Dropped, not error.
  ASSERT_TRUE(server.Push("S", KVTuple(6, 60)).ok());
  auto rows = FlattenRows(server.PollAll(*q));
  ASSERT_EQ(rows.size(), 2u);  // The straggler never reached the query.
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"dropped\":1"), std::string::npos) << snap;
}

TEST(DisorderServerTest, LatePolicyIngestLateBackfillsUnfiredWindows) {
  Server::Options o;
  o.late_policy = LatePolicy::kIngestLate;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 10; t <= 20; t += 10) { WindowIs(S, t - 9, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(server.Push("S", KVTuple(12, 1)).ok());
  // Beyond-bound straggler for window [11, 20] — that window has not
  // fired, so the ordered insert backfills it.
  ASSERT_TRUE(server.Push("S", KVTuple(11, 2)).ok());
  ASSERT_TRUE(server.Push("S", KVTuple(21, 4)).ok());
  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[1].rows[0].cell(0).int64_value(), 3);  // 1 + 2.
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"ingested_late\":1"), std::string::npos) << snap;
}

// Regression: a kIngestLate straggler arriving in the SAME batch as the
// releases that outran it must not be archived ahead of them. The
// straggler lands above the archive's tail (those releases are still
// pending) but below the batch frontier — an eager ordered-insert used to
// append it, and applying the pending releases then crashed the archive's
// ordered-append invariant.
TEST(DisorderServerTest, LatePolicyIngestLateMidBatchKeepsArchiveOrdered) {
  Server::Options o;
  o.max_disorder = 2;
  o.late_policy = LatePolicy::kIngestLate;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 4; t <= 4; t += 4) { WindowIs(S, 1, 4); }");
  ASSERT_TRUE(q.ok()) << q.status();
  // Raw reaches 7, releasing 1..5 (frontier 5) within the batch; the
  // trailing 3 is beyond-bound against that in-batch frontier while the
  // archive still ends below it.
  std::vector<Tuple> batch;
  for (int64_t ts = 1; ts <= 7; ++ts) batch.push_back(KVTuple(ts, ts));
  batch.push_back(KVTuple(3, 100));
  ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());
  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  // The straggler backfilled the unfired window: 1+2+3+4 + 100.
  EXPECT_EQ(sets[0].rows[0].cell(0).int64_value(), 110);
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"ingested_late\":1"), std::string::npos) << snap;
}

// --- Heartbeats ----------------------------------------------------------

TEST(DisorderServerTest, HeartbeatUnstallsAQuietStream) {
  Server server;
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 5; t <= 5; t += 5) { WindowIs(S, 1, 5); }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(server.Push("S", KVTuple(2, 7)).ok());
  // Window [1,5] can't fire: the watermark never passed 5.
  EXPECT_TRUE(server.PollAll(*q).empty());
  ASSERT_TRUE(server.Heartbeat("S", 6).ok());
  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].rows[0].cell(0).int64_value(), 7);
  // The heartbeat is punctuation: data at or below it now follows the
  // stream's LatePolicy (default reject).
  EXPECT_EQ(server.Push("S", KVTuple(4, 0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(DisorderServerTest, HeartbeatRequiresTimestampColumn) {
  Server server;
  ASSERT_TRUE(server.DefineStream("Seq", KV(), -1).ok());
  EXPECT_EQ(server.Heartbeat("Seq", 10).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.Heartbeat("nope", 10).code(), StatusCode::kNotFound);
}

TEST(DisorderServerTest, IdleHeartbeatPunctuatesToPartnerWatermark) {
  Server::Options o;
  o.idle_heartbeat_ms = 100;
  Server server(o);
  int64_t now_ms = 0;
  server.SetClockForTesting([&now_ms] { return now_ms; });
  ASSERT_TRUE(server.DefineStream("A", KV(), 0).ok());
  ASSERT_TRUE(server.DefineStream("B", KV(), 0).ok());
  auto q = server.Submit(
      "SELECT a.v, b.v FROM A AS a, B AS b WHERE a.ts = b.ts "
      "for (t = 5; t <= 5; t += 5) { WindowIs(a, 1, 5); WindowIs(b, 1, 5); }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(server.Push("A", KVTuple(3, 9)).ok());
  ASSERT_TRUE(server.Push("A", KVTuple(8, 1)).ok());
  ASSERT_TRUE(server.Push("B", KVTuple(3, 7)).ok());
  // B stalls at watermark 3: the shared window [1,5] cannot prove itself
  // complete, even though both join inputs are in hand.
  EXPECT_TRUE(server.PollAll(*q).empty());
  EXPECT_EQ(server.PumpHeartbeats(), 0u);  // Not idle long enough.
  now_ms = 250;
  EXPECT_EQ(server.PumpHeartbeats(), 1u);  // B punctuated to A's watermark.
  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  ASSERT_EQ(sets[0].rows.size(), 1u);
  EXPECT_EQ(sets[0].rows[0].cell(0).int64_value(), 9);
  EXPECT_EQ(sets[0].rows[0].cell(1).int64_value(), 7);
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"idle_heartbeats\":1"), std::string::npos) << snap;
  // B is no longer idle (the heartbeat reset its clock), and A's only
  // partner now sits at the same watermark — nothing left to punctuate.
  EXPECT_EQ(server.PumpHeartbeats(), 0u);
}

TEST(DisorderServerTest, PumpHeartbeatsDisabledByDefault) {
  Server server;
  ASSERT_TRUE(server.DefineStream("A", KV(), 0).ok());
  EXPECT_EQ(server.PumpHeartbeats(), 0u);
}

// --- Speculative consistency and retraction ------------------------------

TEST(DisorderServerTest, SpeculativeEmitsEarlyThenRetractsOnLateData) {
  Server::Options o;
  o.max_disorder = 2;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  Server::SubmitOptions sopts;
  sopts.consistency = Consistency::kSpeculative;
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 2; t <= 2; t += 2) { WindowIs(S, 1, 2); }",
      sopts);
  ASSERT_TRUE(q.ok()) << q.status();

  ASSERT_TRUE(server.Push("S", KVTuple(1, 10)).ok());
  // Raw mark jumps to 4: the speculative window [1,2] fires NOW, with
  // ts=2 still unseen — the early (possibly wrong) answer.
  ASSERT_TRUE(server.Push("S", KVTuple(4, 40)).ok());
  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].rows[0].cell(0).int64_value(), 10);

  // The late ts=2 tuple (within bound) releases and changes the fired
  // window: one retraction-signed stale row, then the fresh assertion.
  ASSERT_TRUE(server.Push("S", KVTuple(2, 5)).ok());
  sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  ASSERT_EQ(sets[0].rows.size(), 2u);
  EXPECT_TRUE(sets[0].rows[0].retraction());
  EXPECT_EQ(sets[0].rows[0].cell(0).int64_value(), 10);
  EXPECT_FALSE(sets[0].rows[1].retraction());
  EXPECT_EQ(sets[0].rows[1].cell(0).int64_value(), 15);

  // Delayed-mode control: the same query held until the safe watermark
  // passes delivers 15 directly — what speculative mode converged to.
  Server control(o);
  ASSERT_TRUE(control.DefineStream("S", KV(), 0).ok());
  auto dq = control.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 2; t <= 2; t += 2) { WindowIs(S, 1, 2); }");
  ASSERT_TRUE(dq.ok());
  ASSERT_TRUE(control.Push("S", KVTuple(1, 10)).ok());
  ASSERT_TRUE(control.Push("S", KVTuple(4, 40)).ok());
  ASSERT_TRUE(control.Push("S", KVTuple(2, 5)).ok());
  ASSERT_TRUE(control.Heartbeat("S", 5).ok());  // Prove the window final.
  auto dsets = control.PollAll(*dq);
  ASSERT_EQ(dsets.size(), 1u);
  ASSERT_EQ(dsets[0].rows.size(), 1u);
  EXPECT_EQ(dsets[0].rows[0].cell(0).int64_value(), 15);
}

TEST(DisorderServerTest, RetractionFlowsThroughInlineCacq) {
  Server server;
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  auto q = server.Submit("SELECT v FROM S WHERE v > 10");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(server.Push("S", KVTuple(1, 50)).ok());
  ASSERT_TRUE(server.Push("S", KVTuple(2, 5)).ok());
  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);  // Only v=50 passed the filter.

  // Retract the v=50 assertion: the signed tuple flows the same filter
  // and the client receives a retraction-signed result row.
  ASSERT_TRUE(server.Retract("S", KVTuple(1, 50)).ok());
  sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  ASSERT_EQ(sets[0].rows.size(), 1u);
  EXPECT_TRUE(sets[0].rows[0].retraction());
  EXPECT_EQ(sets[0].rows[0].cell(0).int64_value(), 50);

  // Unmatched retraction: dropped, counted, no delivery.
  ASSERT_TRUE(server.Retract("S", KVTuple(1, 999)).ok());
  EXPECT_TRUE(server.PollAll(*q).empty());
  const std::string snap = server.SnapshotMetrics();
  EXPECT_NE(snap.find("\"retractions\":1"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"unmatched_retractions\":1"), std::string::npos)
      << snap;
}

TEST(DisorderServerTest, RetractionRemovesArchivedRowFromUnfiredWindows) {
  Server server;
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 10; t <= 10; t += 10) { WindowIs(S, 1, 10); }");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(server.Push("S", KVTuple(2, 100)).ok());
  ASSERT_TRUE(server.Push("S", KVTuple(3, 7)).ok());
  ASSERT_TRUE(server.Retract("S", KVTuple(2, 100)).ok());
  ASSERT_TRUE(server.Push("S", KVTuple(11, 0)).ok());  // Fires the window.
  auto sets = server.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].rows[0].cell(0).int64_value(), 7);  // 100 gone.
}

TEST(DisorderServerTest, RetractionFlowsThroughShardedEngine) {
  Server::Options o;
  o.cacq_shards = 4;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), 0, /*partition_field=*/1).ok());
  auto q = server.Submit("SELECT v FROM S WHERE v > 10");
  ASSERT_TRUE(q.ok());
  std::vector<Tuple> batch;
  for (int64_t i = 1; i <= 8; ++i) batch.push_back(KVTuple(i, i * 10));
  ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());
  server.Quiesce();
  EXPECT_EQ(FlattenRows(server.PollAll(*q)).size(), 7u);  // v=10 fails v>10.

  ASSERT_TRUE(server.Retract("S", KVTuple(3, 30)).ok());
  server.Quiesce();
  auto rows = FlattenRows(server.PollAll(*q));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].retraction());
  EXPECT_EQ(rows[0].cell(0).int64_value(), 30);
}

TEST(DisorderShardedTest, LanesAndRetractionsSurviveFailover) {
  // The changelog records each batch's ingress lane; a promoted standby
  // must replay delayed/speculative feeds to exactly the queries that saw
  // them, and replayed retractions must keep canceling SteM state.
  ShardedEngine::Options opts;
  opts.num_shards = 2;
  opts.num_replicas = 1;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("S", KV(), /*partition col=*/1).ok());
  std::mutex mu;
  std::vector<std::pair<QueryId, std::string>> rows;
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [q, t] : batch) rows.emplace_back(q, t.ToString());
  });
  engine.Start();
  CacqQuerySpec delayed;
  delayed.sources = {"S"};
  delayed.where = Expr::Binary(BinaryOp::kGt, Expr::Column("v"),
                               Expr::Literal(Value::Int64(0)));
  CacqQuerySpec spec = delayed;
  spec.speculative = true;
  auto dq = engine.AddQuery(delayed);
  auto sq = engine.AddQuery(spec);
  ASSERT_TRUE(dq.ok());
  ASSERT_TRUE(sq.ok());

  ASSERT_TRUE(engine
                  .PushBatch("S", {KVTuple(1, 11), KVTuple(2, 12)},
                             IngressLane::kDelayed)
                  .ok());
  ASSERT_TRUE(engine
                  .PushBatch("S", {KVTuple(1, 21), KVTuple(2, 22)},
                             IngressLane::kSpeculative)
                  .ok());
  ASSERT_TRUE(engine.Quiesce().ok());
  // Kill and promote both shards: the standbys rebuild purely from the
  // changelog, lanes included.
  CrashInjector::CrashAndRecover(&engine, 0);
  CrashInjector::CrashAndRecover(&engine, 1);
  ASSERT_TRUE(engine
                  .PushBatch("S", {KVTuple(3, 13)}, IngressLane::kDelayed)
                  .ok());
  Tuple retract = KVTuple(1, 11);
  retract.set_retraction(true);
  ASSERT_TRUE(engine.Push("S", retract).ok());  // kAll: both queries.
  ASSERT_TRUE(engine.Quiesce().ok());
  engine.Stop();

  std::lock_guard<std::mutex> lock(mu);
  std::vector<std::string> d_rows, s_rows;
  for (const auto& [q, r] : rows) {
    (q == *dq ? d_rows : s_rows).push_back(r);
  }
  std::sort(d_rows.begin(), d_rows.end());
  std::sort(s_rows.begin(), s_rows.end());
  // Delayed query: its lane's rows, the post-failover row, and the signed
  // retraction. Speculative query: its lane plus the retraction.
  EXPECT_EQ(d_rows.size(), 4u) << d_rows.size();
  EXPECT_EQ(s_rows.size(), 3u) << s_rows.size();
  EXPECT_EQ(std::count_if(d_rows.begin(), d_rows.end(),
                          [](const std::string& r) { return r[0] == '-'; }),
            1);
  EXPECT_EQ(std::count_if(s_rows.begin(), s_rows.end(),
                          [](const std::string& r) { return r[0] == '-'; }),
            1);
}

// --- Satellite regressions ----------------------------------------------

TEST(DisorderSatelliteTest, PushBatchMixedOrderSkipsAndCounts) {
  Server server;
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  auto q = server.Submit("SELECT v FROM S WHERE v >= 0");
  ASSERT_TRUE(q.ok());
  // Counting mode: the two stragglers are skipped, the rest flows, OK.
  size_t rejected = 0;
  ASSERT_TRUE(server
                  .PushBatch("S",
                             {KVTuple(5, 1), KVTuple(3, 2), KVTuple(6, 3),
                              KVTuple(2, 4), KVTuple(7, 5)},
                             &rejected)
                  .ok());
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(FlattenRows(server.PollAll(*q)).size(), 3u);

  // Error mode (null rejected): the valid prefix ingests, the first
  // straggler stops the batch and is reported.
  const Status st =
      server.PushBatch("S", {KVTuple(8, 6), KVTuple(4, 7), KVTuple(9, 8)});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  auto rows = FlattenRows(server.PollAll(*q));
  ASSERT_EQ(rows.size(), 1u);  // ts=8 only; ts=9 never ingested.
  EXPECT_EQ(rows[0].cell(0).int64_value(), 6);
}

TEST(DisorderSatelliteTest, StartClampIsObservable) {
#ifndef TCQ_METRICS_DISABLED
  Counter* clamped =
      MetricRegistry::Global().GetCounter("tcq.server.start_clamped");
  const uint64_t before = clamped->value();
  Server server;
  ASSERT_TRUE(server.DefineStream("S", KV(), 0).ok());
  for (int64_t ts = 1; ts <= 10; ++ts) {
    ASSERT_TRUE(server.Push("S", KVTuple(ts, ts)).ok());
  }
  // ST defaults to 1 but the watermark is already 10: the for-loop start
  // is clamped to 11 — and now observably so.
  auto q = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = ST; t <= 12; t += 1) { WindowIs(S, t, t); }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(clamped->value(), before + 1);
  // A submit on a fresh stream does not clamp.
  Server fresh;
  ASSERT_TRUE(fresh.DefineStream("S", KV(), 0).ok());
  auto q2 = fresh.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = ST; t <= 2; t += 1) { WindowIs(S, t, t); }");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(clamped->value(), before + 1);
#else
  GTEST_SKIP() << "metrics disabled";
#endif
}

TEST(DisorderSatelliteTest, PSoupEvictBeforeReclaimsLateArrivals) {
  // Regression for the reported leak: a late tuple inserted below already
  // -arrived history must still be evicted by the prefix pop (it is —
  // InsertByTimestamp keeps history in timestamp order).
  PSoup psoup(KV());
  auto q = psoup.Register(/*predicate=*/nullptr, /*window_width=*/100);
  ASSERT_TRUE(q.ok());
  psoup.OnData(KVTuple(10, 1));
  psoup.OnData(KVTuple(20, 2));
  psoup.OnData(KVTuple(5, 3));  // Late: slots in below 10 and 20.
  EXPECT_EQ(psoup.history_size(), 3u);
  psoup.EvictBefore(15);
  // No leak: the late ts=5 tuple is gone along with ts=10.
  EXPECT_EQ(psoup.history_size(), 1u);
  EXPECT_EQ(psoup.materialized_results(), 1u);
  auto rows = psoup.Invoke(*q, 100);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].timestamp(), 20);
}

TEST(DisorderSatelliteTest, SteMEvictBeforeSweepsStragglers) {
  SteM stem("s", KV(), SteM::Options{});
  stem.Insert(KVTuple(10, 1));
  stem.Insert(KVTuple(3, 2));  // Straggler stored behind a newer tuple.
  stem.Insert(KVTuple(20, 3));
  EXPECT_EQ(stem.EvictBefore(15), 2u);  // Full sweep: 10 AND the 3.
  EXPECT_EQ(stem.size(), 1u);
  stem.ForEach([](const Tuple& t) { EXPECT_EQ(t.timestamp(), 20); });
}

TEST(DisorderSatelliteTest, SharedSteMEvictSweepsStragglersAcrossMigration) {
  SharedSteM from("a", KV(), /*key_field=*/1);
  SharedSteM to("b", KV(), /*key_field=*/1);
  SmallBitset lineage(2);
  lineage.Set(0);
  from.Insert(KVTuple(10, 1), lineage);
  from.Insert(KVTuple(3, 1), lineage);  // Straggler.
  from.Insert(KVTuple(20, 1), lineage);
  // Migrate the whole key's state (the MigrateBucket extract/install
  // path) — storage order, straggler included.
  auto moved = from.ExtractIf([](const Value& v) {
    return v.int64_value() == 1;
  });
  ASSERT_EQ(moved.size(), 3u);
  for (const auto& e : moved) to.Install(e);
  EXPECT_EQ(from.size(), 0u);
  EXPECT_EQ(to.size(), 3u);
  // Eviction on the recipient is a full sweep too.
  EXPECT_EQ(to.EvictBefore(15), 2u);
  EXPECT_EQ(to.size(), 1u);
  size_t seen = 0;
  to.ProbeCollect(nullptr, kMinTimestamp, kMaxTimestamp,
                  [&](const Tuple& t, const SmallBitset&) {
                    ++seen;
                    EXPECT_EQ(t.timestamp(), 20);
                  });
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace tcq
