#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fjords/scheduler.h"
#include "ingress/sources.h"
#include "ingress/wrapper.h"

namespace tcq {
namespace {

TEST(SourcesTest, StockTickerShapeAndDeterminism) {
  StockTickerSource::Options opts;
  opts.num_symbols = 4;
  opts.num_days = 3;
  StockTickerSource a(opts), b(opts);
  size_t n = 0;
  while (auto ta = a.Next()) {
    auto tb = b.Next();
    ASSERT_TRUE(tb.has_value());
    EXPECT_EQ(*ta, *tb);  // Same seed, same stream.
    EXPECT_EQ(ta->arity(), 3u);
    EXPECT_GT(ta->cell(2).double_value(), 0.0);
    ++n;
  }
  EXPECT_EQ(n, 12u);  // 4 symbols x 3 days.
  EXPECT_FALSE(b.Next().has_value());
}

TEST(SourcesTest, StockTickerTimestampsAreDays) {
  StockTickerSource::Options opts;
  opts.num_symbols = 2;
  opts.num_days = 2;
  StockTickerSource src(opts);
  std::vector<Timestamp> ts;
  while (auto t = src.Next()) ts.push_back(t->timestamp());
  EXPECT_EQ(ts, (std::vector<Timestamp>{1, 1, 2, 2}));
}

TEST(SourcesTest, SymbolNames) {
  EXPECT_EQ(StockTickerSource::SymbolName(0), "MSFT");
  EXPECT_EQ(StockTickerSource::SymbolName(7), "S007");
}

TEST(SourcesTest, PacketSourceSkew) {
  PacketSource::Options opts;
  opts.num_hosts = 100;
  opts.host_skew = 1.3;
  opts.num_packets = 20000;
  PacketSource src(opts);
  std::map<int64_t, int> counts;
  while (auto t = src.Next()) {
    ASSERT_EQ(t->arity(), 5u);
    ++counts[t->cell(1).int64_value()];
  }
  EXPECT_GT(counts[0], 2000);  // Head host dominates under skew.
}

TEST(SourcesTest, SensorDropoutSkipsTimestamps) {
  SensorSource::Options opts;
  opts.num_readings = 1000;
  opts.dropout = 0.2;
  SensorSource src(opts);
  size_t produced = 0;
  while (src.Next()) ++produced;
  EXPECT_LT(produced, 1000u);  // Some readings dropped.
  EXPECT_GT(produced, 600u);
}

TEST(SourcesTest, CsvRoundTrip) {
  const char* path = "/tmp/tcq_csv_test.csv";
  {
    std::ofstream out(path);
    out << "1,MSFT,51.5\n2,IBM,99.25\n";
  }
  SchemaPtr schema = StockTickerSource::MakeSchema();
  auto src = CsvFileSource::Create(path, schema, /*timestamp_field=*/0);
  ASSERT_TRUE(src.ok()) << src.status();
  auto t1 = (*src)->Next();
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->cell(1).string_value(), "MSFT");
  EXPECT_DOUBLE_EQ(t1->cell(2).double_value(), 51.5);
  EXPECT_EQ(t1->timestamp(), 1);
  auto t2 = (*src)->Next();
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->timestamp(), 2);
  EXPECT_FALSE((*src)->Next().has_value());
  std::remove(path);
}

TEST(SourcesTest, CsvErrors) {
  SchemaPtr schema = StockTickerSource::MakeSchema();
  EXPECT_FALSE(CsvFileSource::Create("/nonexistent.csv", schema).ok());
  const char* path = "/tmp/tcq_csv_bad.csv";
  {
    std::ofstream out(path);
    out << "1,MSFT\n";  // Too few columns.
  }
  EXPECT_EQ(CsvFileSource::Create(path, schema).status().code(),
            StatusCode::kParseError);
  std::remove(path);
}

TEST(SourceModuleTest, ProducesIntoQueueAndCloses) {
  StockTickerSource::Options sopts;
  sopts.num_symbols = 2;
  sopts.num_days = 50;
  auto out = std::make_shared<TupleQueue>(PushQueueOptions(4096));
  SourceModule mod("src", std::make_unique<StockTickerSource>(sopts), out);
  while (mod.Step(64) != FjordModule::StepResult::kDone) {
  }
  EXPECT_EQ(mod.produced(), 100u);
  EXPECT_TRUE(out->closed());
  size_t n = 0;
  while (out->Dequeue()) ++n;
  EXPECT_EQ(n, 100u);
}

TEST(SourceModuleTest, StallingSourceGoesIdle) {
  SourceModule::Options mopts;
  mopts.tuples_per_step = 10;
  mopts.stall_every = 1;
  mopts.stall_for = 3;
  StockTickerSource::Options sopts;
  sopts.num_symbols = 1;
  sopts.num_days = 100;
  auto out = std::make_shared<TupleQueue>(PushQueueOptions(4096));
  SourceModule mod("src", std::make_unique<StockTickerSource>(sopts), out,
                   mopts);
  EXPECT_EQ(mod.Step(64), FjordModule::StepResult::kDidWork);
  // Now stalled for 3 steps.
  EXPECT_EQ(mod.Step(64), FjordModule::StepResult::kIdle);
  EXPECT_EQ(mod.Step(64), FjordModule::StepResult::kIdle);
  EXPECT_EQ(mod.Step(64), FjordModule::StepResult::kIdle);
  EXPECT_EQ(mod.Step(64), FjordModule::StepResult::kDidWork);
}

TEST(ArchiveTest, ScanWindow) {
  Archive archive;
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    archive.Append(Tuple::Make({Value::Int64(ts)}, ts));
  }
  TupleVector w = archive.Scan(3, 7);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w.front().timestamp(), 3);
  EXPECT_EQ(w.back().timestamp(), 7);
  EXPECT_TRUE(archive.Scan(11, 20).empty());
  EXPECT_EQ(archive.min_timestamp(), 1);
  EXPECT_EQ(archive.max_timestamp(), 10);
}

TEST(ArchiveTest, DuplicateTimestampsSupported) {
  Archive archive;
  archive.Append(Tuple::Make({Value::Int64(1)}, 5));
  archive.Append(Tuple::Make({Value::Int64(2)}, 5));
  archive.Append(Tuple::Make({Value::Int64(3)}, 5));
  EXPECT_EQ(archive.Scan(5, 5).size(), 3u);
}

TEST(ArchiveTest, RetentionEvictsOldHistory) {
  Archive archive(/*retention_span=*/10);
  for (Timestamp ts = 1; ts <= 100; ++ts) {
    archive.Append(Tuple::Make({Value::Int64(ts)}, ts));
  }
  EXPECT_EQ(archive.size(), 10u);
  EXPECT_EQ(archive.min_timestamp(), 91);
}

TEST(ArchiveTest, ExplicitEviction) {
  Archive archive;
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    archive.Append(Tuple::Make({Value::Int64(ts)}, ts));
  }
  archive.EvictBefore(8);
  EXPECT_EQ(archive.size(), 3u);
}

}  // namespace
}  // namespace tcq
