#include "modules/grouped_filter.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace tcq {
namespace {

SmallBitset AllOf(size_t n) {
  SmallBitset b(n);
  b.SetAll();
  return b;
}

TEST(GroupedFilterTest, EqualityPredicates) {
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kEq, Value::String("MSFT"));
  gf.AddPredicate(1, BinaryOp::kEq, Value::String("IBM"));
  gf.AddPredicate(2, BinaryOp::kEq, Value::String("MSFT"));

  SmallBitset m = gf.Matching(Value::String("MSFT"));
  EXPECT_TRUE(m.Test(0));
  EXPECT_FALSE(m.Test(1));
  EXPECT_TRUE(m.Test(2));

  m = gf.Matching(Value::String("ORCL"));
  EXPECT_TRUE(m.None());
}

TEST(GroupedFilterTest, RangePredicates) {
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kGt, Value::Double(50.0));
  gf.AddPredicate(1, BinaryOp::kGe, Value::Double(60.0));
  gf.AddPredicate(2, BinaryOp::kLt, Value::Double(55.0));
  gf.AddPredicate(3, BinaryOp::kLe, Value::Double(60.0));

  SmallBitset m = gf.Matching(Value::Double(60.0));
  EXPECT_TRUE(m.Test(0));   // 60 > 50.
  EXPECT_TRUE(m.Test(1));   // 60 >= 60.
  EXPECT_FALSE(m.Test(2));  // !(60 < 55).
  EXPECT_TRUE(m.Test(3));   // 60 <= 60.

  m = gf.Matching(Value::Double(50.0));
  EXPECT_FALSE(m.Test(0));  // Strict.
  EXPECT_FALSE(m.Test(1));
  EXPECT_TRUE(m.Test(2));
  EXPECT_TRUE(m.Test(3));
}

TEST(GroupedFilterTest, NotEqualDefaultsToPass) {
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kNe, Value::Int64(7));
  EXPECT_TRUE(gf.Matching(Value::Int64(3)).Test(0));
  EXPECT_FALSE(gf.Matching(Value::Int64(7)).Test(0));
}

TEST(GroupedFilterTest, MultiFactorRangeQuery) {
  // Query 0: 10 < x AND x < 20 (both factors on the same attribute).
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kGt, Value::Int64(10));
  gf.AddPredicate(0, BinaryOp::kLt, Value::Int64(20));
  EXPECT_FALSE(gf.Matching(Value::Int64(10)).Test(0));
  EXPECT_TRUE(gf.Matching(Value::Int64(15)).Test(0));
  EXPECT_FALSE(gf.Matching(Value::Int64(20)).Test(0));
}

TEST(GroupedFilterTest, MixedEqAndNe) {
  // Query 0: x != 5 AND x != 6; query 1: x = 5.
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kNe, Value::Int64(5));
  gf.AddPredicate(0, BinaryOp::kNe, Value::Int64(6));
  gf.AddPredicate(1, BinaryOp::kEq, Value::Int64(5));
  EXPECT_FALSE(gf.Matching(Value::Int64(5)).Test(0));
  EXPECT_FALSE(gf.Matching(Value::Int64(6)).Test(0));
  EXPECT_TRUE(gf.Matching(Value::Int64(7)).Test(0));
  EXPECT_TRUE(gf.Matching(Value::Int64(5)).Test(1));
}

TEST(GroupedFilterTest, ApplyOnlyNarrowsCandidates) {
  GroupedFilter gf;
  gf.AddPredicate(1, BinaryOp::kEq, Value::Int64(1));
  // Query 0 has no predicate here; query 1 fails. Start with only bit 0.
  SmallBitset candidates(2);
  candidates.Set(0);
  gf.Apply(Value::Int64(99), &candidates);
  EXPECT_TRUE(candidates.Test(0));   // Untouched.
  EXPECT_FALSE(candidates.Test(1));  // Was not a candidate anyway.
}

TEST(GroupedFilterTest, RemoveQuery) {
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kGt, Value::Int64(5));
  gf.AddPredicate(1, BinaryOp::kGt, Value::Int64(5));
  gf.RemoveQuery(0);
  EXPECT_EQ(gf.num_predicates(), 1u);
  SmallBitset m = gf.Matching(Value::Int64(10));
  // A removed query simply has no predicates left: the filter no longer
  // constrains it (callers gate delivery by their active-query set).
  EXPECT_TRUE(m.Test(0));
  EXPECT_TRUE(m.Test(1));
  // Its old predicate must be gone: a value it used to reject now passes.
  EXPECT_TRUE(gf.Matching(Value::Int64(0)).Test(0));
  EXPECT_FALSE(gf.Matching(Value::Int64(0)).Test(1));
}

TEST(GroupedFilterTest, EmptyFilterTouchesNothing) {
  GroupedFilter gf;
  SmallBitset candidates(4);
  candidates.SetAll();
  gf.Apply(Value::Int64(1), &candidates);
  EXPECT_EQ(candidates.Count(), 4u);
}

// Regression: Apply with a candidate bitset WIDER than the filter's
// query table (a tuple's lineage bitmap is sized to the engine's whole
// query table; this filter may only know a prefix of it). Bits past
// num_queries() must ride through untouched, and the hot path must not
// resize anything to make that work.
TEST(GroupedFilterTest, MixedWidthApplyLeavesWideBitsAlone) {
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kGt, Value::Int64(10));
  gf.AddPredicate(1, BinaryOp::kEq, Value::Int64(3));
  ASSERT_EQ(gf.num_queries(), 2u);

  // 300 bits: spills to overflow words, exercising the word loop too.
  SmallBitset candidates(300);
  candidates.SetAll();
  gf.Apply(Value::Int64(50), &candidates);
  EXPECT_TRUE(candidates.Test(0));   // 50 > 10.
  EXPECT_FALSE(candidates.Test(1));  // 50 != 3.
  for (size_t i = 2; i < 300; ++i) {
    ASSERT_TRUE(candidates.Test(i)) << i;  // Unknown queries untouched.
  }
}

// The index is compiled lazily: registrations only mark it stale, and one
// Apply after a mutation burst compiles once — not once per AddPredicate
// (that was the old O(n²) sorted-insert registration) and not once per
// tuple.
TEST(GroupedFilterTest, IndexRebuildsOncePerMutationBurst) {
  GroupedFilter gf;
  for (QueryId q = 0; q < 100; ++q) {
    gf.AddPredicate(q, BinaryOp::kGt, Value::Int64(static_cast<int64_t>(q)));
  }
  EXPECT_TRUE(gf.index_dirty());
  EXPECT_EQ(gf.rebuilds(), 0u);

  SmallBitset m = AllOf(100);
  gf.Apply(Value::Int64(50), &m);
  EXPECT_EQ(gf.rebuilds(), 1u);
  EXPECT_FALSE(gf.index_dirty());
  // 100 distinct bounds -> 201 elementary regions.
  EXPECT_EQ(gf.num_regions(), 201u);

  // Steady state: applies never recompile.
  for (int i = 0; i < 50; ++i) {
    SmallBitset n = AllOf(100);
    gf.Apply(Value::Int64(i), &n);
  }
  EXPECT_EQ(gf.rebuilds(), 1u);

  // One mutation burst -> exactly one more compile.
  gf.RemoveQuery(7);
  gf.AddPredicate(7, BinaryOp::kLt, Value::Int64(30));
  EXPECT_TRUE(gf.index_dirty());
  SmallBitset n = AllOf(100);
  gf.Apply(Value::Int64(10), &n);
  EXPECT_TRUE(n.Test(7));  // 10 < 30 under the re-registered predicate.
  EXPECT_EQ(gf.rebuilds(), 2u);
}

TEST(GroupedFilterTest, NullValueSortsBelowAllBounds) {
  // NULL orders before every constant (Value::Compare), so it satisfies
  // < / <= factors and fails > / >= — the old sorted-walk behaviour the
  // region index must reproduce (NULL stabs the leftmost region).
  GroupedFilter gf;
  gf.AddPredicate(0, BinaryOp::kLt, Value::Int64(5));
  gf.AddPredicate(1, BinaryOp::kGt, Value::Int64(5));
  gf.AddPredicate(2, BinaryOp::kEq, Value::Int64(5));
  SmallBitset m = gf.Matching(Value());
  EXPECT_TRUE(m.Test(0));
  EXPECT_FALSE(m.Test(1));
  EXPECT_FALSE(m.Test(2));
}

// Property: grouped filter == naive per-query evaluation on random
// predicate sets and probe values.
class GroupedFilterPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(GroupedFilterPropertyTest, MatchesNaiveEvaluation) {
  Rng rng(GetParam());
  const size_t num_queries = 1 + rng.NextBounded(60);
  GroupedFilter gf;

  struct Pred {
    QueryId q;
    BinaryOp op;
    int64_t c;
  };
  std::vector<Pred> preds;
  const BinaryOp ops[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                          BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  for (QueryId q = 0; q < num_queries; ++q) {
    const size_t n = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < n; ++i) {
      Pred p{q, ops[rng.NextBounded(6)], rng.NextInt(-20, 20)};
      preds.push_back(p);
      gf.AddPredicate(p.q, p.op, Value::Int64(p.c));
    }
  }

  auto naive = [&](int64_t v, QueryId q) {
    for (const Pred& p : preds) {
      if (p.q != q) continue;
      bool pass = false;
      switch (p.op) {
        case BinaryOp::kEq:
          pass = v == p.c;
          break;
        case BinaryOp::kNe:
          pass = v != p.c;
          break;
        case BinaryOp::kLt:
          pass = v < p.c;
          break;
        case BinaryOp::kLe:
          pass = v <= p.c;
          break;
        case BinaryOp::kGt:
          pass = v > p.c;
          break;
        default:
          pass = v >= p.c;
          break;
      }
      if (!pass) return false;
    }
    return true;
  };

  for (int trial = 0; trial < 200; ++trial) {
    const int64_t v = rng.NextInt(-25, 25);
    SmallBitset m = AllOf(num_queries);
    gf.Apply(Value::Int64(v), &m);
    for (QueryId q = 0; q < num_queries; ++q) {
      ASSERT_EQ(m.Test(q), naive(v, q))
          << "value " << v << " query " << q << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedFilterPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Churn property test at 1k+ queries: interleave AddPredicate bursts,
// RemoveQuery scrubs, and re-registration of freed QueryIds (the CACQ
// engine recycles slots), cross-checking Apply against naive per-query
// evaluation after every burst. Run under ASan (scripts/check.sh) this
// doubles as a lifetime check on the lazily recompiled index.
class GroupedFilterChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupedFilterChurnTest, ChurnedIndexMatchesNaiveEvaluation) {
  Rng rng(GetParam());
  constexpr size_t kMaxQueries = 1200;
  GroupedFilter gf;

  struct Pred {
    BinaryOp op;
    int64_t c;
  };
  // live[q] = the predicates query q currently owns (empty = freed slot).
  std::unordered_map<QueryId, std::vector<Pred>> live;
  std::vector<QueryId> freed;
  const BinaryOp ops[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                          BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};

  auto naive = [&live](int64_t v, QueryId q) {
    auto it = live.find(q);
    if (it == live.end()) return true;  // No factors -> unconstrained.
    for (const Pred& p : it->second) {
      bool pass = false;
      switch (p.op) {
        case BinaryOp::kEq: pass = v == p.c; break;
        case BinaryOp::kNe: pass = v != p.c; break;
        case BinaryOp::kLt: pass = v < p.c; break;
        case BinaryOp::kLe: pass = v <= p.c; break;
        case BinaryOp::kGt: pass = v > p.c; break;
        default: pass = v >= p.c; break;
      }
      if (!pass) return false;
    }
    return true;
  };

  auto register_query = [&](QueryId q) {
    auto& preds = live[q];
    preds.clear();
    const size_t n = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < n; ++i) {
      Pred p{ops[rng.NextBounded(6)], rng.NextInt(-50, 50)};
      preds.push_back(p);
      gf.AddPredicate(q, p.op, Value::Int64(p.c));
    }
  };

  // Initial population: 1200 queries, ~2 factors each.
  for (QueryId q = 0; q < kMaxQueries; ++q) register_query(q);

  for (int round = 0; round < 12; ++round) {
    // Churn burst: remove ~100 random queries, re-register ~half of the
    // freed slots with fresh predicates.
    for (int i = 0; i < 100; ++i) {
      const QueryId q = static_cast<QueryId>(rng.NextBounded(kMaxQueries));
      gf.RemoveQuery(q);
      live.erase(q);
      freed.push_back(q);
    }
    while (freed.size() > 50) {
      const QueryId q = freed.back();
      freed.pop_back();
      if (live.count(q)) continue;  // Already re-registered this round.
      register_query(q);
    }

    // Cross-check the recompiled index on probes spanning all regions.
    for (int trial = 0; trial < 20; ++trial) {
      const int64_t v = rng.NextInt(-55, 55);
      SmallBitset m = AllOf(gf.num_queries());
      gf.Apply(Value::Int64(v), &m);
      for (QueryId q = 0; q < gf.num_queries(); ++q) {
        ASSERT_EQ(m.Test(q), naive(v, q))
            << "round " << round << " value " << v << " query " << q
            << " seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedFilterChurnTest,
                         ::testing::Values(101, 102, 103, 104));

}  // namespace
}  // namespace tcq
