#include "common/status.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing stream");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing stream");
  EXPECT_EQ(s.ToString(), "NotFound: missing stream");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Cancelled("").code(), StatusCode::kCancelled);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueOrPrefersValue) {
  EXPECT_EQ(ParsePositive(5).value_or(0), 10);
}

Result<int> Chain(int x) {
  TCQ_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Chain(3).value(), 7);
  EXPECT_EQ(Chain(-3).status().code(), StatusCode::kInvalidArgument);
}

Status Validate(int x) {
  TCQ_RETURN_NOT_OK(ParsePositive(x).status());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Validate(1).ok());
  EXPECT_FALSE(Validate(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

}  // namespace
}  // namespace tcq
