#include "window/window.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

// --- The four worked examples of §4.1.1 ------------------------------------

TEST(WindowTest, PaperSnapshotQueryWindow) {
  // "first five days of trading": WindowIs(S, 1, 5), executed once.
  ForLoopSpec spec = MakeSnapshotWindow("ClosingStockPrices", 1, 5);
  WindowSequence seq(&spec, /*st=*/100);
  auto step = seq.Next();
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->bounds[0].left, 1);
  EXPECT_EQ(step->bounds[0].right, 5);
  EXPECT_FALSE(seq.Next().has_value());  // Exactly one iteration.
}

TEST(WindowTest, PaperLandmarkQueryWindow) {
  // for (t = 101; t <= 1000; t++) WindowIs(S, 101, t).
  ForLoopSpec spec = MakeLandmarkWindow("S", 101, 101, 1000);
  WindowSequence seq(&spec, 0);
  auto first = seq.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->t, 101);
  EXPECT_EQ(first->bounds[0].left, 101);
  EXPECT_EQ(first->bounds[0].right, 101);
  size_t count = 1;
  Timestamp last_right = first->bounds[0].right;
  while (auto s = seq.Next()) {
    EXPECT_EQ(s->bounds[0].left, 101);  // Fixed landmark.
    EXPECT_EQ(s->bounds[0].right, last_right + 1);
    last_right = s->bounds[0].right;
    ++count;
  }
  EXPECT_EQ(count, 900u);
  EXPECT_EQ(last_right, 1000);
}

TEST(WindowTest, PaperSlidingQueryWindow) {
  // for (t = ST; t < ST + 50; t += 5) WindowIs(S, t - 4, t).
  const Timestamp st = 200;
  ForLoopSpec spec = MakeSlidingWindow("S", /*width=*/5, /*hop=*/5, st,
                                       st + 50);
  WindowSequence seq(&spec, st);
  size_t count = 0;
  Timestamp expected_t = st;
  while (auto s = seq.Next()) {
    EXPECT_EQ(s->t, expected_t);
    EXPECT_EQ(s->bounds[0].left, expected_t - 4);
    EXPECT_EQ(s->bounds[0].right, expected_t);
    EXPECT_EQ(s->bounds[0].Width(), 5);
    expected_t += 5;
    ++count;
  }
  EXPECT_EQ(count, 10u);
}

TEST(WindowTest, PaperBandJoinWindows) {
  // for (t = ST; t < ST + 20; t++) { WindowIs(c1, t-4, t); WindowIs(c2, t-4, t); }
  ForLoopSpec spec;
  spec.init = Expr::Variable("ST");
  spec.condition = Expr::Binary(
      BinaryOp::kLt, Expr::Variable("t"),
      Expr::Binary(BinaryOp::kAdd, Expr::Variable("ST"),
                   Expr::Literal(Value::Int64(20))));
  spec.step = Expr::Binary(BinaryOp::kAdd, Expr::Variable("t"),
                           Expr::Literal(Value::Int64(1)));
  auto left = Expr::Binary(BinaryOp::kSub, Expr::Variable("t"),
                           Expr::Literal(Value::Int64(4)));
  spec.windows.push_back({"c1", left, Expr::Variable("t")});
  spec.windows.push_back({"c2", left, Expr::Variable("t")});

  WindowSequence seq(&spec, /*st=*/50);
  size_t count = 0;
  while (auto s = seq.Next()) {
    ASSERT_EQ(s->bounds.size(), 2u);
    EXPECT_EQ(s->bounds[0].left, s->bounds[1].left);
    EXPECT_EQ(s->bounds[0].right, s->bounds[1].right);
    ++count;
  }
  EXPECT_EQ(count, 20u);
}

// --- Window mechanics --------------------------------------------------------

TEST(WindowTest, ReverseWindowMovesBackward) {
  // Browsing history backwards: for (t = ST; t > ST - 30; t -= 10).
  ForLoopSpec spec;
  spec.init = Expr::Variable("ST");
  spec.condition = Expr::Binary(
      BinaryOp::kGt, Expr::Variable("t"),
      Expr::Binary(BinaryOp::kSub, Expr::Variable("ST"),
                   Expr::Literal(Value::Int64(30))));
  spec.step = Expr::Binary(BinaryOp::kSub, Expr::Variable("t"),
                           Expr::Literal(Value::Int64(10)));
  spec.windows.push_back(
      {"S",
       Expr::Binary(BinaryOp::kSub, Expr::Variable("t"),
                    Expr::Literal(Value::Int64(9))),
       Expr::Variable("t")});
  WindowSequence seq(&spec, 100);
  std::vector<Timestamp> rights;
  while (auto s = seq.Next()) rights.push_back(s->bounds[0].right);
  ASSERT_EQ(rights.size(), 3u);
  EXPECT_EQ(rights[0], 100);
  EXPECT_EQ(rights[1], 90);
  EXPECT_EQ(rights[2], 80);
}

TEST(WindowTest, WindowBoundsHelpers) {
  WindowBounds b{"S", 10, 14};
  EXPECT_TRUE(b.Contains(10));
  EXPECT_TRUE(b.Contains(14));
  EXPECT_FALSE(b.Contains(9));
  EXPECT_FALSE(b.Contains(15));
  EXPECT_EQ(b.Width(), 5);
  WindowBounds empty{"S", 5, 4};
  EXPECT_EQ(empty.Width(), 0);
}

TEST(WindowTest, StandingQueryWithoutEndRunsOn) {
  ForLoopSpec spec = MakeSlidingWindow("S", 10, 1, 1, std::nullopt);
  WindowSequence seq(&spec, 1);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(seq.Next().has_value());
  }
  EXPECT_FALSE(seq.done());
}

// --- Classification (§4.1.2) -------------------------------------------------

TEST(WindowClassifyTest, Snapshot) {
  ForLoopSpec spec = MakeSnapshotWindow("S", 1, 5);
  auto shape = ClassifyWindow(spec, 0, 0);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->window_class, WindowClass::kSnapshot);
  EXPECT_EQ(shape->width, 5);
  EXPECT_FALSE(shape->requires_full_window_state);
}

TEST(WindowClassifyTest, Landmark) {
  ForLoopSpec spec = MakeLandmarkWindow("S", 101, 101, 1000);
  auto shape = ClassifyWindow(spec, 0, 0);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->window_class, WindowClass::kLandmark);
  // Landmark MAX is computable with O(1) state (§4.1.2).
  EXPECT_FALSE(shape->requires_full_window_state);
}

TEST(WindowClassifyTest, Sliding) {
  ForLoopSpec spec = MakeSlidingWindow("S", 5, 1, 10, 100);
  auto shape = ClassifyWindow(spec, 0, 0);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->window_class, WindowClass::kSliding);
  EXPECT_EQ(shape->hop, 1);
  EXPECT_EQ(shape->width, 5);
  // Sliding MAX needs the whole window retained (§4.1.2).
  EXPECT_TRUE(shape->requires_full_window_state);
}

TEST(WindowClassifyTest, HoppingAndSkipsData) {
  // Width 5, hop 7: some stream portions never participate (§4.1.2).
  ForLoopSpec spec = MakeSlidingWindow("S", 5, 7, 10, 100);
  auto shape = ClassifyWindow(spec, 0, 0);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->window_class, WindowClass::kHopping);
  EXPECT_EQ(shape->hop, 7);
  EXPECT_TRUE(shape->skips_data);
}

TEST(WindowClassifyTest, HoppingWithoutSkip) {
  ForLoopSpec spec = MakeSlidingWindow("S", 10, 5, 10, 100);
  auto shape = ClassifyWindow(spec, 0, 0);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->window_class, WindowClass::kHopping);
  EXPECT_FALSE(shape->skips_data);
}

TEST(WindowClassifyTest, Reverse) {
  ForLoopSpec spec;
  spec.init = Expr::Variable("ST");
  spec.condition = Expr::Binary(BinaryOp::kGt, Expr::Variable("t"),
                                Expr::Literal(Value::Int64(0)));
  spec.step = Expr::Binary(BinaryOp::kSub, Expr::Variable("t"),
                           Expr::Literal(Value::Int64(5)));
  spec.windows.push_back(
      {"S",
       Expr::Binary(BinaryOp::kSub, Expr::Variable("t"),
                    Expr::Literal(Value::Int64(4))),
       Expr::Variable("t")});
  auto shape = ClassifyWindow(spec, 0, 100);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->window_class, WindowClass::kReverse);
}

TEST(WindowClassifyTest, OutOfRangeClause) {
  ForLoopSpec spec = MakeSnapshotWindow("S", 1, 5);
  EXPECT_EQ(ClassifyWindow(spec, 3, 0).status().code(),
            StatusCode::kOutOfRange);
}

// --- Validation ---------------------------------------------------------------

TEST(WindowValidateTest, RejectsColumnsInBounds) {
  ForLoopSpec spec;
  spec.condition = Expr::Literal(Value::Bool(true));
  spec.windows.push_back(
      {"S", Expr::Column("price"), Expr::Variable("t")});
  EXPECT_EQ(ValidateForLoop(spec).code(), StatusCode::kInvalidArgument);
}

TEST(WindowValidateTest, RejectsUnknownVariables) {
  ForLoopSpec spec;
  spec.condition = Expr::Binary(BinaryOp::kLt, Expr::Variable("u"),
                                Expr::Literal(Value::Int64(5)));
  EXPECT_EQ(ValidateForLoop(spec).code(), StatusCode::kInvalidArgument);
}

TEST(WindowValidateTest, RejectsMissingEnds) {
  ForLoopSpec spec;
  spec.windows.push_back({"S", nullptr, Expr::Variable("t")});
  EXPECT_EQ(ValidateForLoop(spec).code(), StatusCode::kInvalidArgument);
}

TEST(WindowValidateTest, AcceptsPaperExamples) {
  EXPECT_TRUE(ValidateForLoop(MakeSnapshotWindow("S", 1, 5)).ok());
  EXPECT_TRUE(ValidateForLoop(MakeLandmarkWindow("S", 101, 101, 1000)).ok());
  EXPECT_TRUE(
      ValidateForLoop(MakeSlidingWindow("S", 5, 5, 0, std::nullopt)).ok());
}

TEST(WindowTest, ClassNames) {
  EXPECT_STREQ(WindowClassToString(WindowClass::kSnapshot), "snapshot");
  EXPECT_STREQ(WindowClassToString(WindowClass::kSliding), "sliding");
}

// --- Malformed bounds: NULL / non-integer expressions ------------------------
// Regression: these used to call int64_value() on the wrong variant
// alternative and crash the engine thread with std::bad_variant_access.

TEST(WindowMalformedTest, NullRightEndEndsSequenceWithStatus) {
  ForLoopSpec spec;
  spec.condition = Expr::Literal(Value::Bool(true));
  spec.windows.push_back(
      {"S", Expr::Literal(Value::Int64(1)), Expr::Literal(Value::Null())});
  WindowSequence seq(&spec, 0);
  EXPECT_FALSE(seq.Next().has_value());
  EXPECT_TRUE(seq.done());
  EXPECT_EQ(seq.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(seq.status().message().find("right end"), std::string::npos);
  EXPECT_FALSE(seq.Next().has_value());  // Stays ended.
}

TEST(WindowMalformedTest, NonIntegerLeftEndEndsSequenceWithStatus) {
  ForLoopSpec spec;
  spec.condition = Expr::Literal(Value::Bool(true));
  spec.windows.push_back(
      {"S", Expr::Literal(Value::Double(1.5)), Expr::Variable("t")});
  WindowSequence seq(&spec, 0);
  EXPECT_FALSE(seq.Next().has_value());
  EXPECT_EQ(seq.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(seq.status().message().find("left end"), std::string::npos);
}

TEST(WindowMalformedTest, NullInitEndsSequenceAtConstruction) {
  ForLoopSpec spec;
  spec.init = Expr::Literal(Value::Null());
  spec.condition = Expr::Literal(Value::Bool(true));
  spec.windows.push_back(
      {"S", Expr::Literal(Value::Int64(1)), Expr::Literal(Value::Int64(5))});
  WindowSequence seq(&spec, 0);
  EXPECT_TRUE(seq.done());
  EXPECT_FALSE(seq.Next().has_value());
  EXPECT_EQ(seq.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(seq.status().message().find("init"), std::string::npos);
}

TEST(WindowMalformedTest, NullStepYieldsCurrentWindowThenEnds) {
  // The iteration in flight is well-formed; only the advance is broken, so
  // the sequence delivers it and then cannot continue.
  ForLoopSpec spec;
  spec.init = Expr::Literal(Value::Int64(10));
  spec.condition = Expr::Literal(Value::Bool(true));
  spec.step = Expr::Binary(BinaryOp::kAdd, Expr::Variable("t"),
                           Expr::Literal(Value::Null()));
  spec.windows.push_back(
      {"S",
       Expr::Binary(BinaryOp::kSub, Expr::Variable("t"),
                    Expr::Literal(Value::Int64(4))),
       Expr::Variable("t")});
  WindowSequence seq(&spec, 0);
  auto step = seq.Next();
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->bounds[0].left, 6);
  EXPECT_EQ(step->bounds[0].right, 10);
  EXPECT_FALSE(seq.Next().has_value());
  EXPECT_EQ(seq.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(seq.status().message().find("step"), std::string::npos);
}

TEST(WindowMalformedTest, NonBooleanConditionEndsWithStatus) {
  ForLoopSpec spec;
  spec.condition = Expr::Literal(Value::Int64(1));  // Not a boolean.
  spec.windows.push_back(
      {"S", Expr::Literal(Value::Int64(1)), Expr::Literal(Value::Int64(5))});
  WindowSequence seq(&spec, 0);
  EXPECT_FALSE(seq.Next().has_value());
  EXPECT_EQ(seq.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(seq.status().message().find("condition"), std::string::npos);
}

TEST(WindowMalformedTest, NullConditionEndsCleanly) {
  // SQL three-valued logic: a NULL condition is simply "not true" — the
  // loop terminates like any other exhausted sequence, with an OK status.
  ForLoopSpec spec;
  spec.condition = Expr::Literal(Value::Null());
  spec.windows.push_back(
      {"S", Expr::Literal(Value::Int64(1)), Expr::Literal(Value::Int64(5))});
  WindowSequence seq(&spec, 0);
  EXPECT_FALSE(seq.Next().has_value());
  EXPECT_TRUE(seq.status().ok());
}

TEST(WindowMalformedTest, ClassifyWindowReportsMalformedBounds) {
  ForLoopSpec spec;
  spec.condition = Expr::Literal(Value::Bool(true));
  spec.windows.push_back(
      {"S", Expr::Literal(Value::Null()), Expr::Variable("t")});
  auto shape = ClassifyWindow(spec, 0, 0);
  EXPECT_EQ(shape.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tcq
