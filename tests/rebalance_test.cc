// Online shard rebalancing (DESIGN.md §12): the RebalanceController's pure
// planning rules, the ShardedEngine's pause/drain/move/resume bucket
// migration, and the §2.2 equivalence obligation extended across
// migrations — a mid-stream move must never lose, duplicate or reorder a
// per-key result, under every schedule the explorer drives.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cacq/sharded_engine.h"
#include "common/rng.h"
#include "core/server.h"
#include "flux/rebalance.h"
#include "telemetry/metrics.h"
#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

// --- PlanMove: pure policy, no threads ------------------------------------

using Load = RebalanceController::Load;
using Plan = RebalanceController::Plan;

RebalanceController::Options PlanOptions() {
  RebalanceController::Options o;
  o.imbalance_threshold = 1.5;
  o.min_backlog = 32;
  return o;
}

TEST(PlanMoveTest, BalancedOrIdleLoadPlansNothing) {
  const std::vector<size_t> owner = {0, 1, 2, 3};
  Load prev{{0, 0, 0, 0}, {0, 0, 0, 0}};

  // Loaded but perfectly balanced: max == mean, below threshold.
  Load balanced{{100, 100, 100, 100}, {400, 400, 400, 400}};
  EXPECT_FALSE(
      RebalanceController::PlanMove(owner, balanced, prev, PlanOptions()));

  // Skewed but idle: max backlog below min_backlog.
  Load idle{{20, 0, 0, 0}, {80, 0, 0, 0}};
  EXPECT_FALSE(RebalanceController::PlanMove(owner, idle, prev, PlanOptions()));

  // One shard is degenerate: nowhere to move.
  EXPECT_FALSE(RebalanceController::PlanMove(
      {0, 0}, Load{{500}, {400, 100}}, Load{{0}, {0, 0}}, PlanOptions()));
}

TEST(PlanMoveTest, SkewMovesLargestBucketWithinHalfTheGap) {
  // Shard 0 owns buckets 0..2, shards 1..3 one bucket each. Shard 0's
  // backlog has run away; its recent routed deltas are 600/200/50.
  const std::vector<size_t> owner = {0, 0, 0, 1, 2, 3};
  Load prev{{0, 0, 0, 0}, {0, 0, 0, 0, 0, 0}};
  Load now{{1000, 10, 10, 10}, {600, 200, 50, 0, 0, 0}};
  auto plan = RebalanceController::PlanMove(owner, now, prev, PlanOptions());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->from, 0u);
  EXPECT_EQ(plan->to, 1u);  // Min-backlog shard (first of the tie).
  // Gap target = (850 - 0) / 2 = 425: bucket 0 (600) would overshoot and
  // just relocate the hotspot; bucket 1 (200) is the largest that fits.
  EXPECT_EQ(plan->bucket, 1u);
}

TEST(PlanMoveTest, MegaHotBucketFallsBackToSmallestActive) {
  // The donor's entire recent load sits in one bucket: nothing fits half
  // the gap, so the planner sheds the smallest active bucket instead of
  // doing nothing forever.
  const std::vector<size_t> owner = {0, 0, 1, 2};
  Load prev{{0, 0, 0}, {0, 0, 0, 0}};
  Load now{{900, 5, 5}, {800, 0, 0, 0}};
  auto plan = RebalanceController::PlanMove(owner, now, prev, PlanOptions());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->bucket, 0u);
  EXPECT_EQ(plan->from, 0u);
  // Quiet bucket 1 (delta 0) is never chosen: moving it shifts no load.
}

TEST(PlanMoveTest, StaleBacklogWithoutRateSkewPlansNothing) {
  // A backlog left over from a burst that already ended: the donor's
  // recent routed delta is no larger than the recipient's, so no bucket
  // move helps — let the backlog drain where it is.
  const std::vector<size_t> owner = {0, 1};
  Load prev{{0, 0}, {500, 500}};
  Load now{{400, 0}, {510, 530}};
  EXPECT_FALSE(RebalanceController::PlanMove(owner, now, prev, PlanOptions()));
}

TEST(PlanMoveTest, MalformedObservationIsSkipped) {
  const std::vector<size_t> owner = {0, 1};
  Load prev{{0, 0}, {0, 0}};
  Load bad_now{{400, 0}, {100}};  // bucket_routed shorter than owner map.
  EXPECT_FALSE(
      RebalanceController::PlanMove(owner, bad_now, prev, PlanOptions()));
}

// --- Migration equivalence harness ----------------------------------------

using Labelled = std::pair<size_t, std::string>;

std::string Fingerprint(std::vector<Labelled> rows) {
  std::sort(rows.begin(), rows.end());
  std::ostringstream fp;
  for (const Labelled& r : rows) fp << "q" << r.first << "|" << r.second
                                    << "\n";
  return fp.str();
}

struct Workload {
  std::vector<std::tuple<std::string, SchemaPtr, size_t>> streams;
  std::vector<CacqQuerySpec> queries;
  std::vector<std::pair<std::string, std::vector<Tuple>>> feed;
};

std::string RunInline(const Workload& w) {
  CacqEngine engine;
  for (const auto& [name, schema, col] : w.streams) {
    EXPECT_TRUE(engine.AddStream(name, schema).ok());
  }
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  engine.SetSink([&](QueryId q, const Tuple& t) {
    rows.emplace_back(label.at(q), t.ToString());
  });
  for (size_t i = 0; i < w.queries.size(); ++i) {
    auto q = engine.AddQuery(w.queries[i]);
    EXPECT_TRUE(q.ok()) << q.status();
    label[*q] = i;
  }
  for (const auto& [stream, batch] : w.feed) {
    EXPECT_TRUE(engine.InjectBatch(stream, batch).ok());
  }
  return Fingerprint(std::move(rows));
}

/// The workload through a ShardedEngine with a bucket migration injected
/// between feed slices: every 3rd slice, the bucket `slice % num_buckets`
/// is moved to the next shard over, mid-stream, while SteM state from the
/// earlier slices is live. The emitted fingerprint must not notice.
std::string RunShardedMigrating(const Workload& w, size_t num_shards,
                                uint64_t seed,
                                const std::vector<size_t>& order,
                                size_t chunk, size_t num_buckets) {
  ShardedEngine::Options opts;
  opts.num_shards = num_shards;
  opts.seed = seed;
  opts.num_buckets = num_buckets;
  ShardedEngine engine(opts);
  for (const auto& [name, schema, col] : w.streams) {
    EXPECT_TRUE(engine.AddStream(name, schema, col).ok());
  }
  std::mutex mu;
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [q, t] : batch) {
      rows.emplace_back(label.at(q), t.ToString());
    }
  });
  engine.Start();
  for (size_t i : order) {
    auto q = engine.AddQuery(w.queries[i]);
    EXPECT_TRUE(q.ok()) << q.status();
    std::lock_guard<std::mutex> lock(mu);
    label[*q] = i;
  }
  size_t slice = 0;
  for (const auto& [stream, batch] : w.feed) {
    for (size_t at = 0; at < batch.size(); at += chunk, ++slice) {
      const size_t n = std::min(chunk, batch.size() - at);
      std::vector<Tuple> s(batch.begin() + static_cast<ptrdiff_t>(at),
                           batch.begin() + static_cast<ptrdiff_t>(at + n));
      EXPECT_TRUE(engine.PushBatch(stream, std::move(s)).ok());
      if (slice % 3 == 2) {
        const size_t bucket = slice % engine.partition_map().num_buckets();
        const size_t to =
            (engine.partition_map().ShardOf(bucket) + 1) % num_shards;
        EXPECT_TRUE(engine.MigrateBucket(bucket, to).ok());
      }
    }
  }
  engine.Quiesce();
  engine.Stop();
  std::lock_guard<std::mutex> lock(mu);
  return Fingerprint(std::move(rows));
}

Workload JoinWorkload() {
  Workload w;
  w.streams.emplace_back("A", KV(), 0);
  w.streams.emplace_back("B", KV(), 0);
  auto join = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                           Expr::Column("B.k"));
  CacqQuerySpec q0;
  q0.sources = {"A", "B"};
  q0.where = join;
  CacqQuerySpec q1;
  q1.sources = {"A", "B"};
  q1.where = Expr::Binary(
      BinaryOp::kAnd, join,
      Expr::Binary(BinaryOp::kGt, Expr::Column("A.v"),
                   Expr::Literal(Value::Int64(10))));
  w.queries.push_back(std::move(q0));
  w.queries.push_back(std::move(q1));
  Timestamp ts = 1;
  for (int round = 0; round < 8; ++round) {
    std::vector<Tuple> a, b;
    for (int i = 0; i < 10; ++i) {
      a.push_back(KVTuple((round * 3 + i) % 17, round * 10 + i, ts++));
      b.push_back(KVTuple((round * 5 + i * 2) % 17, i, ts++));
    }
    w.feed.emplace_back("A", std::move(a));
    w.feed.emplace_back("B", std::move(b));
  }
  return w;
}

TEST(RebalanceTest, MigrationUnderLoadPreservesJoinResults) {
  // The sharded-equivalence obligation, extended across migrations: the
  // same 12 explorer seeds as the batch-equivalence suite, with a bucket
  // move injected every third feed slice. Stored A-side state built before
  // a move must join B-side arrivals routed after it, on the new owner.
  const Workload w = JoinWorkload();
  const std::string expected = RunInline(w);
  EXPECT_FALSE(expected.empty());

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        w.queries.size(), [&](const ScheduleExplorer::Schedule& schedule) {
          const size_t shards = 2 + schedule.trial_seed % 3;  // 2..4.
          const std::string got = RunShardedMigrating(
              w, shards, schedule.trial_seed + 1, schedule.order,
              schedule.quantum, /*num_buckets=*/8);
          EXPECT_EQ(got, expected)
              << "seed " << seed << ", shards " << shards << ", "
              << ScheduleExplorer::Describe(schedule);
          return got;
        });
    ASSERT_TRUE(common.ok()) << common.status();
  }
}

TEST(RebalanceTest, MigrateMovesStoredStateExactlyOnce) {
  // Build SteM state, move every bucket, then probe it: each stored A
  // tuple must join later B arrivals exactly once, from its new shard.
  ShardedEngine::Options opts;
  opts.num_shards = 2;
  opts.num_buckets = 4;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("A", KV(), 0).ok());
  ASSERT_TRUE(engine.AddStream("B", KV(), 0).ok());
  std::mutex mu;
  std::vector<std::string> rows;
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [q, t] : batch) rows.push_back(t.ToString());
  });
  engine.Start();
  CacqQuerySpec join;
  join.sources = {"A", "B"};
  join.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  ASSERT_TRUE(engine.AddQuery(join).ok());

  std::vector<Tuple> a;
  for (int64_t k = 0; k < 20; ++k) a.push_back(KVTuple(k, k * 2, k + 1));
  ASSERT_TRUE(engine.PushBatch("A", std::move(a)).ok());

  const ShardedEngine::RebalanceStats base = engine.rebalance_stats();
  for (size_t b = 0; b < 4; ++b) {
    const size_t to = (engine.partition_map().ShardOf(b) + 1) % 2;
    ASSERT_TRUE(engine.MigrateBucket(b, to).ok());
  }
  const ShardedEngine::RebalanceStats after = engine.rebalance_stats();
  EXPECT_EQ(after.migrations - base.migrations, 4u);
  // All 20 stored A entries lived in those 4 buckets; every one moved.
  EXPECT_EQ(after.moved_tuples - base.moved_tuples, 20u);
  EXPECT_GT(after.moved_bytes - base.moved_bytes, 0u);

  std::vector<Tuple> b_side;
  for (int64_t k = 0; k < 20; ++k) b_side.push_back(KVTuple(k, 7, 100 + k));
  ASSERT_TRUE(engine.PushBatch("B", std::move(b_side)).ok());
  engine.Quiesce();
  engine.Stop();
  // One match per key, no key lost to the move, none duplicated.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(rows.size(), 20u);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(std::unique(rows.begin(), rows.end()), rows.end());
}

TEST(RebalanceTest, MigrateBucketGuards) {
  ShardedEngine::Options opts;
  opts.num_shards = 2;
  opts.num_buckets = 4;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("S", KV(), 0).ok());
  EXPECT_EQ(engine.MigrateBucket(0, 1).code(),
            StatusCode::kFailedPrecondition);  // Not started.
  engine.Start();
  EXPECT_EQ(engine.MigrateBucket(99, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(engine.MigrateBucket(0, 99).code(), StatusCode::kOutOfRange);
  // Moving a bucket to its current owner is a no-op, not a migration.
  const uint64_t migrations = engine.rebalance_stats().migrations;
  const size_t owner = engine.partition_map().ShardOf(size_t{0});
  EXPECT_TRUE(engine.MigrateBucket(0, owner).ok());
  EXPECT_EQ(engine.rebalance_stats().migrations, migrations);
  engine.Stop();
}

// --- Zipfian skew: static mapping vs a triggered rebalance -----------------

TEST(RebalanceTest, ZipfianSkewTriggersRebalanceAndSpreadsLoad) {
  constexpr size_t kShards = 4;
  constexpr size_t kBuckets = 16;
  constexpr size_t kRoundTuples = 24;

  ShardedEngine::Options opts;
  opts.num_shards = kShards;
  opts.num_buckets = kBuckets;
  opts.input_capacity = 8;  // Small: backlog (the trigger signal) builds.
  opts.auto_rebalance = true;
  // The controller thread stays dormant (one wakeup a minute); the test
  // drives PollOnce() by hand so triggering is deterministic, through
  // exactly the code path the thread runs.
  opts.rebalance.poll_interval_ms = 60000;
  opts.rebalance.imbalance_threshold = 1.5;
  opts.rebalance.min_backlog = 32;
  opts.rebalance.cooldown_polls = 0;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("A", KV(), 0).ok());
  ASSERT_TRUE(engine.AddStream("B", KV(), 0).ok());

  std::mutex mu;
  std::vector<Labelled> rows;
  std::map<QueryId, size_t> label;
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [q, t] : batch) rows.emplace_back(label.at(q),
                                                       t.ToString());
  });
  engine.Start();

  // q0 emits (the equivalence witness); q1/q2 are joins whose residuals
  // never hold (A.v=0 vs B.v=1), so they build and probe SteM state —
  // making the hot shard measurably slow — without an emission blowup.
  std::vector<CacqQuerySpec> queries(3);
  queries[0].sources = {"A"};
  queries[0].where = Expr::Binary(
      BinaryOp::kEq,
      Expr::Binary(BinaryOp::kMod, Expr::Column("A.k"),
                   Expr::Literal(Value::Int64(5))),
      Expr::Literal(Value::Int64(0)));
  auto join = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                           Expr::Column("B.k"));
  queries[1].sources = {"A", "B"};
  queries[1].where = Expr::Binary(
      BinaryOp::kAnd, join,
      Expr::Binary(BinaryOp::kGt, Expr::Column("A.v"), Expr::Column("B.v")));
  queries[2].sources = {"A", "B"};
  queries[2].where = Expr::Binary(
      BinaryOp::kAnd, join,
      Expr::Binary(BinaryOp::kLt, Expr::Column("A.v"),
                   Expr::Literal(Value::Int64(0))));
  for (size_t i = 0; i < queries.size(); ++i) {
    auto q = engine.AddQuery(queries[i]);
    ASSERT_TRUE(q.ok()) << q.status();
    std::lock_guard<std::mutex> lock(mu);
    label[*q] = i;
  }

  // Start from the worst static mapping: every bucket on shard 0 (cheap
  // while no state exists). This is the "static partitioning meets a
  // skewed workload" scenario Flux §2.4 opens with.
  for (size_t b = 0; b < kBuckets; ++b) {
    ASSERT_TRUE(engine.MigrateBucket(b, 0).ok());
  }
  ASSERT_EQ(engine.partition_map().BucketsOwnedBy(0).size(), kBuckets);
  const ShardedEngine::RebalanceStats base = engine.rebalance_stats();
  RebalanceController* ctrl = engine.rebalance_controller();
  ASSERT_NE(ctrl, nullptr);
  const uint64_t base_triggered = ctrl->triggered();

  // Zipfian feed, regenerated identically for the inline reference below.
  Workload w;
  w.streams.emplace_back("A", KV(), 0);
  w.streams.emplace_back("B", KV(), 0);
  w.queries = queries;
  Rng rng(42);
  Timestamp ts = 1;
  auto make_round = [&](int64_t v) {
    std::vector<Tuple> batch;
    for (size_t i = 0; i < kRoundTuples; ++i) {
      const auto k = static_cast<int64_t>(rng.NextZipf(120, 1.3));
      batch.push_back(KVTuple(k, v, ts++));
    }
    return batch;
  };
  for (int round = 0; round < 110; ++round) {
    w.feed.emplace_back("A", make_round(/*A.v=*/0));
    w.feed.emplace_back("B", make_round(/*B.v=*/1));
  }

  int64_t static_peak = 0;
  int64_t late_sum = 0, late_n = 0;
#ifndef TCQ_METRICS_DISABLED
  Gauge* imbalance = MetricRegistry::Global().GetGauge("tcq.shard.imbalance");
#endif
  size_t round = 0;
  for (const auto& [stream, batch] : w.feed) {
    ASSERT_TRUE(engine.PushBatch(stream, std::vector<Tuple>(batch)).ok());
#ifndef TCQ_METRICS_DISABLED
    if (round < 80) {  // Phase 1: static mapping, skew accumulates.
      static_peak = std::max(static_peak, imbalance->value());
    } else if (round >= 160) {  // Phase 3: after rebalancing.
      late_sum += imbalance->value();
      ++late_n;
    }
#endif
    // Phase 2: let the controller observe and act between rounds.
    if (round >= 80 && round < 160) ctrl->PollOnce();
    ++round;
  }
  engine.Quiesce();

  // The controller fired at least once off the imbalance signal, and the
  // moves actually changed the routing table and moved live SteM state.
  const ShardedEngine::RebalanceStats after = engine.rebalance_stats();
  EXPECT_GE(ctrl->triggered() - base_triggered, 1u);
  EXPECT_GE(after.migrations - base.migrations, 1u);
  EXPECT_GT(after.moved_tuples - base.moved_tuples, 0u);
  EXPECT_LT(engine.partition_map().BucketsOwnedBy(0).size(), kBuckets);

  // Load spread: with the static all-on-0 mapping only shard 0 processed
  // anything; after rebalancing, other shards carry real work.
  size_t busy_shards = 0;
  for (const ShardedEngine::ShardStats& s : engine.shard_stats()) {
    if (s.processed > 0) ++busy_shards;
  }
  EXPECT_GE(busy_shards, 2u);

#ifndef TCQ_METRICS_DISABLED
  // Under the static mapping the exchange reads fully skewed (all backlog
  // on one of four shards = 400); after the rebalance the time-averaged
  // reading drops below that peak.
  EXPECT_GE(static_peak, 200);
  ASSERT_GT(late_n, 0);
  EXPECT_LT(late_sum / late_n, static_peak);
#endif

  std::string got;
  {
    std::lock_guard<std::mutex> lock(mu);
    got = Fingerprint(std::move(rows));
  }
  engine.Stop();
  // Equivalence across every migration the controller performed.
  EXPECT_EQ(got, RunInline(w));
  EXPECT_FALSE(got.empty());
}

// --- Server facade ---------------------------------------------------------

TEST(RebalanceTest, ServerRebalanceApi) {
  Server::Options o;
  o.cacq_shards = 3;
  o.cacq_buckets = 12;
  Server server(o);
  ASSERT_TRUE(server
                  .DefineStream("S", KV(), /*timestamp_field=*/-1,
                                /*partition_field=*/0)
                  .ok());

  EXPECT_EQ(server.Rebalance("nope", 0, 1).code(), StatusCode::kNotFound);
  // No standing query yet: the stream has no sharded engine to rebalance.
  EXPECT_EQ(server.Rebalance("S", 0, 1).code(),
            StatusCode::kFailedPrecondition);

  auto q = server.Submit("SELECT v FROM S WHERE k >= 0");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> batch;
  for (int64_t i = 0; i < 30; ++i) batch.push_back(KVTuple(i % 7, i, 0));
  ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());

  ASSERT_TRUE(server.Rebalance("S", 5, 2).ok());
  EXPECT_EQ(server.Rebalance("S", 99, 0).code(), StatusCode::kOutOfRange);

  std::vector<Tuple> more;
  for (int64_t i = 0; i < 30; ++i) more.push_back(KVTuple(i % 7, i, 0));
  ASSERT_TRUE(server.PushBatch("S", std::move(more)).ok());
  server.Quiesce();
  size_t delivered = 0;
  for (const ResultSet& rs : server.PollAll(*q)) delivered += rs.rows.size();
  EXPECT_EQ(delivered, 60u);  // Nothing lost or duplicated by the move.
}

TEST(RebalanceTest, ServerAutoRebalanceLifecycle) {
  // Smoke: a server running the live controller thread (real cadence)
  // starts, ingests, quiesces and tears down cleanly, results intact.
  Server::Options o;
  o.cacq_shards = 2;
  o.auto_rebalance = true;
  o.rebalance.poll_interval_ms = 1;
  o.rebalance.min_backlog = 8;
  o.rebalance.cooldown_polls = 0;
  Server server(o);
  ASSERT_TRUE(server.DefineStream("S", KV(), -1, 0).ok());
  auto q = server.Submit("SELECT v FROM S WHERE k >= 0");
  ASSERT_TRUE(q.ok()) << q.status();
  size_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<Tuple> batch;
    for (int64_t i = 0; i < 20; ++i) {
      batch.push_back(KVTuple(/*k=*/round % 3, i, 0));  // Skewed keys.
    }
    total += batch.size();
    ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());
  }
  server.Quiesce();
  size_t delivered = 0;
  for (const ResultSet& rs : server.PollAll(*q)) delivered += rs.rows.size();
  EXPECT_EQ(delivered, total);
}

}  // namespace
}  // namespace tcq
