// Concurrency stress for the telemetry layer, run under the sanitizer
// matrix (scripts/check.sh): the registry's contract is that registration
// races, hot-path updates and snapshot readers are all safe to mix from
// any thread.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tcq {
namespace {

TEST(StressTelemetryTest, RegistryRacesRegistrationUpdatesAndSnapshots) {
  MetricRegistry& reg = MetricRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  constexpr int kNamesPerKind = 5;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<MetricSample> snap = reg.Snapshot();
      std::string json = reg.ToJson();
      EXPECT_GE(json.size(), 2u);
      EXPECT_LE(snap.size(), reg.size() + 64);
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        // Registration itself races: all threads keep asking for the same
        // small name set and must always get the same metric back.
        const std::string idx = std::to_string(i % kNamesPerKind);
        reg.GetCounter("stress.registry.counter." + idx)->Add(1);
        reg.GetGauge("stress.registry.gauge." + idx)->Add(t % 2 == 0 ? 1 : -1);
        reg.GetHistogram("stress.registry.histo." + idx)
            ->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& th : workers) th.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  // Every relaxed add landed: the counters partition kThreads * kIters.
  uint64_t total = 0;
  for (int n = 0; n < kNamesPerKind; ++n) {
    total += reg.GetCounter("stress.registry.counter." + std::to_string(n))
                 ->value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIters);
  for (int n = 0; n < kNamesPerKind; ++n) {
    Histogram* h =
        reg.GetHistogram("stress.registry.histo." + std::to_string(n));
    EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kIters /
                              kNamesPerKind);
  }
}

TEST(StressTelemetryTest, TracerRacesSamplingRecordingAndDraining) {
  Tracer& tr = Tracer::Global();
  tr.Enable(/*sample_every=*/7, /*capacity=*/256);
  tr.ResetForTest();

  constexpr int kThreads = 6;
  constexpr int kArrivalsPerThread = 30000;
  std::atomic<uint64_t> ids_issued{0};
  std::atomic<bool> stop{false};

  std::thread drainer([&] {
    uint64_t drained = 0;
    while (!stop.load(std::memory_order_acquire)) {
      drained += tr.Drain().size();
    }
    drained += tr.Drain().size();
    // Conservation: every recorded event was drained or evicted.
    EXPECT_EQ(drained + tr.evicted(), ids_issued.load());
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kArrivalsPerThread; ++i) {
        const uint64_t id = tr.MaybeStartTrace();
        if (id != 0) {
          ids_issued.fetch_add(1, std::memory_order_relaxed);
          TraceEvent ev;
          ev.trace_id = id;
          ev.op = "stress";
          tr.Record(ev);
        }
      }
    });
  }
  for (std::thread& th : workers) th.join();
  stop.store(true, std::memory_order_release);
  drainer.join();

  // Counter-based sampling across threads: arrivals 0, 7, 14, ... sample,
  // so the count is ceil(total / 7) regardless of interleaving.
  const uint64_t total_arrivals =
      static_cast<uint64_t>(kThreads) * kArrivalsPerThread;
  EXPECT_EQ(tr.sampled(), (total_arrivals + 6) / 7);
  EXPECT_EQ(tr.sampled(), ids_issued.load());

  tr.Disable();
  tr.ResetForTest();
}

}  // namespace
}  // namespace tcq
