// Cross-module integration: multiple streams, joins between distinct
// streams, mixed standing/windowed query populations, and egress — the
// paths a downstream user exercises together.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/egress.h"
#include "core/server.h"
#include "ingress/sources.h"
#include "window/window.h"

namespace tcq {
namespace {

SchemaPtr TradeSchema() {
  return Schema::Make({{"ts", ValueType::kInt64, ""},
                       {"symbol", ValueType::kString, ""},
                       {"shares", ValueType::kInt64, ""}});
}

SchemaPtr QuoteSchema() {
  return Schema::Make({{"ts", ValueType::kInt64, ""},
                       {"symbol", ValueType::kString, ""},
                       {"price", ValueType::kDouble, ""}});
}

Tuple Trade(int64_t ts, const std::string& sym, int64_t shares) {
  return Tuple::Make(
      {Value::Int64(ts), Value::String(sym), Value::Int64(shares)}, ts);
}

Tuple Quote(int64_t ts, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(ts), Value::String(sym), Value::Double(price)}, ts);
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.DefineStream("Trades", TradeSchema(), 0).ok());
    ASSERT_TRUE(server_.DefineStream("Quotes", QuoteSchema(), 0).ok());
  }
  Server server_;
};

TEST_F(IntegrationTest, TwoStreamWindowedEquiJoin) {
  // Join trades with same-timestamp quotes for the same symbol.
  auto q = server_.Submit(
      "SELECT t.symbol, t.shares, qt.price "
      "FROM Trades AS t, Quotes AS qt "
      "WHERE t.symbol = qt.symbol AND t.ts = qt.ts "
      "for (u = 1; u <= 5; u = u + 1) { "
      "  WindowIs(t, u, u); WindowIs(qt, u, u); }");
  ASSERT_TRUE(q.ok()) << q.status();

  for (int64_t ts = 1; ts <= 6; ++ts) {
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, "MSFT", 100 * ts)).ok());
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, "IBM", 10)).ok());
    ASSERT_TRUE(
        server_.Push("Quotes", Quote(ts, "MSFT", 50.0 + ts)).ok());
    // IBM quotes only on even timestamps.
    if (ts % 2 == 0) {
      ASSERT_TRUE(server_.Push("Quotes", Quote(ts, "IBM", 90.0)).ok());
    }
  }
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 5u);
  for (size_t i = 0; i < sets.size(); ++i) {
    const int64_t ts = static_cast<int64_t>(i) + 1;
    // MSFT joins every day; IBM only on even days.
    const size_t expected = ts % 2 == 0 ? 2u : 1u;
    ASSERT_EQ(sets[i].rows.size(), expected) << "window " << ts;
    for (const Tuple& row : sets[i].rows) {
      if (row.cell(0).string_value() == "MSFT") {
        EXPECT_EQ(row.cell(1).int64_value(), 100 * ts);
        EXPECT_DOUBLE_EQ(row.cell(2).double_value(), 50.0 + ts);
      } else {
        EXPECT_DOUBLE_EQ(row.cell(2).double_value(), 90.0);
      }
    }
  }
}

TEST_F(IntegrationTest, JoinAgainstReferenceOnRandomData) {
  auto q = server_.Submit(
      "SELECT t.shares, qt.price FROM Trades AS t, Quotes AS qt "
      "WHERE t.symbol = qt.symbol "
      "for (u = 10; u <= 10; u = u + 1) { "
      "  WindowIs(t, 1, 10); WindowIs(qt, 1, 10); }");
  ASSERT_TRUE(q.ok()) << q.status();

  Rng rng(77);
  const char* symbols[] = {"A", "B", "C", "D"};
  std::map<std::string, int> trades_per_symbol, quotes_per_symbol;
  for (int64_t ts = 1; ts <= 11; ++ts) {
    const std::string tsym = symbols[rng.NextBounded(4)];
    const std::string qsym = symbols[rng.NextBounded(4)];
    if (ts <= 10) {
      ++trades_per_symbol[tsym];
      ++quotes_per_symbol[qsym];
    }
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, tsym, 1)).ok());
    ASSERT_TRUE(server_.Push("Quotes", Quote(ts, qsym, 1.0)).ok());
  }
  size_t expected = 0;
  for (const auto& [sym, n] : trades_per_symbol) {
    auto it = quotes_per_symbol.find(sym);
    if (it != quotes_per_symbol.end()) {
      expected += static_cast<size_t>(n) * static_cast<size_t>(it->second);
    }
  }
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].rows.size(), expected);
}

TEST_F(IntegrationTest, MixedPopulationOverTwoStreams) {
  // Standing filters on both streams + a windowed aggregate, all live.
  auto big_trades = server_.Submit(
      "SELECT shares FROM Trades WHERE shares >= 500");
  auto msft_quotes = server_.Submit(
      "SELECT price FROM Quotes WHERE symbol = 'MSFT'");
  auto volume = server_.Submit(
      "SELECT SUM(shares) FROM Trades "
      "for (u = 1; true; u = u + 5) { WindowIs(Trades, u, u + 4); }");
  ASSERT_TRUE(big_trades.ok() && msft_quotes.ok() && volume.ok());

  for (int64_t ts = 1; ts <= 11; ++ts) {
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, "MSFT", ts * 100)).ok());
    ASSERT_TRUE(server_.Push(
                            "Quotes",
                            Quote(ts, ts % 2 == 0 ? "MSFT" : "IBM", 50.0))
                    .ok());
  }

  // big trades: shares >= 500 means ts >= 5 -> 7 matches.
  EXPECT_EQ(server_.PollAll(*big_trades).size(), 7u);
  // MSFT quotes: even ts -> 5 matches.
  EXPECT_EQ(server_.PollAll(*msft_quotes).size(), 5u);
  // Volume windows [1,5] and [6,10] fired (11 punctuates the second).
  auto vsets = server_.PollAll(*volume);
  ASSERT_EQ(vsets.size(), 2u);
  EXPECT_EQ(vsets[0].rows[0].cell(0).int64_value(), 100 * (1 + 2 + 3 + 4 + 5));
  EXPECT_EQ(vsets[1].rows[0].cell(0).int64_value(),
            100 * (6 + 7 + 8 + 9 + 10));
}

TEST_F(IntegrationTest, HoppingWindowSkipsDataEndToEnd) {
  // §4.1.2 hopping windows through the full parse -> classify -> execute
  // path: width 5, hop 10, so half the stream never participates.
  const std::string sql =
      "SELECT MAX(price) FROM Quotes "
      "for (t = 10; t <= 40; t += 10) { WindowIs(Quotes, t - 4, t); }";

  // The parsed for-loop classifies as a data-skipping hopping window.
  Catalog catalog;
  StreamDef def;
  def.name = "Quotes";
  def.schema = QuoteSchema();
  def.timestamp_field = 0;
  ASSERT_TRUE(catalog.RegisterStream(def).ok());
  auto aq = AnalyzeSql(sql, catalog);
  ASSERT_TRUE(aq.ok()) << aq.status();
  ASSERT_TRUE(aq->window.has_value());
  auto shape = ClassifyWindow(*aq->window, 0, /*st=*/0);
  ASSERT_TRUE(shape.ok()) << shape.status();
  EXPECT_EQ(shape->window_class, WindowClass::kHopping);
  EXPECT_EQ(shape->hop, 10);
  EXPECT_EQ(shape->width, 5);
  EXPECT_TRUE(shape->skips_data);

  auto q = server_.Submit(sql);
  ASSERT_TRUE(q.ok()) << q.status();
  // price = ts, one quote per day; day 41 punctuates the last window.
  for (int64_t ts = 1; ts <= 41; ++ts) {
    ASSERT_TRUE(
        server_.Push("Quotes", Quote(ts, "MSFT", static_cast<double>(ts)))
            .ok());
  }
  // Windows [6,10] [16,20] [26,30] [36,40]: MAX = each right end. The
  // skipped days (11..15, 21..25, 31..35, 41) influence nothing.
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 4u);
  for (size_t i = 0; i < sets.size(); ++i) {
    ASSERT_EQ(sets[i].rows.size(), 1u);
    EXPECT_DOUBLE_EQ(sets[i].rows[0].cell(0).double_value(),
                     10.0 * static_cast<double>(i + 1));
  }
}

TEST_F(IntegrationTest, ReverseWindowBrowsesHistoryEndToEnd) {
  // §4.1.1 "windows that move backwards": the archive serves windows over
  // data that arrived before the query was ever submitted.
  for (int64_t ts = 1; ts <= 20; ++ts) {
    ASSERT_TRUE(
        server_.Push("Quotes", Quote(ts, "MSFT", static_cast<double>(ts)))
            .ok());
  }
  const std::string sql =
      "SELECT MAX(price), AVG(price) FROM Quotes "
      "for (t = 21; t > 6; t -= 5) { WindowIs(Quotes, t - 4, t); }";

  Catalog catalog;
  StreamDef def;
  def.name = "Quotes";
  def.schema = QuoteSchema();
  def.timestamp_field = 0;
  ASSERT_TRUE(catalog.RegisterStream(def).ok());
  auto aq = AnalyzeSql(sql, catalog);
  ASSERT_TRUE(aq.ok()) << aq.status();
  ASSERT_TRUE(aq->window.has_value());
  auto shape = ClassifyWindow(*aq->window, 0, /*st=*/0);
  ASSERT_TRUE(shape.ok()) << shape.status();
  EXPECT_EQ(shape->window_class, WindowClass::kReverse);

  auto q = server_.Submit(sql);
  ASSERT_TRUE(q.ok()) << q.status();
  // Watermark 22 punctuates the first (latest) window [17,21].
  ASSERT_TRUE(server_.Push("Quotes", Quote(21, "MSFT", 21.0)).ok());
  ASSERT_TRUE(server_.Push("Quotes", Quote(22, "MSFT", 22.0)).ok());

  // Fired in loop order, newest window first: [17,21], [12,16], [7,11].
  auto sets = server_.PollAll(*q);
  ASSERT_EQ(sets.size(), 3u);
  const double expected_max[] = {21.0, 16.0, 11.0};
  for (size_t i = 0; i < sets.size(); ++i) {
    ASSERT_EQ(sets[i].rows.size(), 1u);
    EXPECT_DOUBLE_EQ(sets[i].rows[0].cell(0).double_value(), expected_max[i]);
    EXPECT_DOUBLE_EQ(sets[i].rows[0].cell(1).double_value(),
                     expected_max[i] - 2.0);  // AVG of 5 consecutive days.
  }
}

TEST_F(IntegrationTest, EgressOverJoinQuery) {
  auto q = server_.Submit(
      "SELECT t.shares, qt.price FROM Trades AS t, Quotes AS qt "
      "WHERE t.symbol = qt.symbol AND t.ts = qt.ts "
      "for (u = 1; u <= 3; u = u + 1) { "
      "  WindowIs(t, u, u); WindowIs(qt, u, u); }");
  ASSERT_TRUE(q.ok()) << q.status();
  auto egress = EgressOperator::Attach(&server_, *q);
  ASSERT_TRUE(egress.ok());

  for (int64_t ts = 1; ts <= 4; ++ts) {
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, "MSFT", 1)).ok());
    ASSERT_TRUE(server_.Push("Quotes", Quote(ts, "MSFT", 2.0)).ok());
  }
  // Disconnected client reconnects: three windows spooled.
  auto sets = (*egress)->Fetch();
  ASSERT_EQ(sets.size(), 3u);
  for (const auto& rs : sets) EXPECT_EQ(rs.rows.size(), 1u);
}

TEST_F(IntegrationTest, ContinuousQueryOverMetricsStream) {
  // Engine telemetry is itself a stream: a standing filter over
  // tcq.metrics joins the introspection stream's shared eddy like any
  // CACQ query, and PumpMetrics publishes snapshots into it.
  auto q = server_.Submit(
      "SELECT name, value FROM tcq.metrics WHERE value >= 0");
  ASSERT_TRUE(q.ok()) << q.status();

  // Generate some engine activity, then publish a telemetry snapshot.
  for (int64_t ts = 1; ts <= 3; ++ts) {
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, "MSFT", 100)).ok());
  }
  const size_t published = server_.PumpMetrics();
  EXPECT_GT(published, 0u);

  std::vector<ResultSet> sets = server_.PollAll(*q);
  ASSERT_FALSE(sets.empty());
  bool saw_trades_arrivals = false;
  for (const ResultSet& rs : sets) {
    for (const Tuple& t : rs.rows) {
      ASSERT_EQ(t.arity(), 2u);
      const std::string& name = t.cell(0).string_value();
      EXPECT_EQ(name.rfind("tcq.", 0), 0u) << name;
      if (name == "tcq.stream.Trades.arrivals") {
        saw_trades_arrivals = true;
        EXPECT_DOUBLE_EQ(t.cell(1).double_value(), 3.0);
      }
    }
  }
  // The per-stream rows are live in every build (metrics compiled out or
  // not), so the query always observes the Trades ingest count.
  EXPECT_TRUE(saw_trades_arrivals);

  // The query is continuous: a later pump delivers fresh tuples.
  EXPECT_GT(server_.PumpMetrics(), 0u);
  EXPECT_FALSE(server_.PollAll(*q).empty());
}

TEST_F(IntegrationTest, SnapshotMetricsJsonStructure) {
  auto q = server_.Submit("SELECT symbol FROM Trades WHERE shares > 50");
  ASSERT_TRUE(q.ok()) << q.status();
  for (int64_t ts = 1; ts <= 4; ++ts) {
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, "IBM", 60 * ts)).ok());
  }
  const std::string json = server_.SnapshotMetrics();
  for (const char* key :
       {"\"metrics\":{", "\"streams\":{", "\"queries\":{", "\"eddies\":{",
        "\"Trades\"", "\"arrivals\":4", "\"kind\":\"cacq\"",
        "\"delivered_rows\":4", "\"ops\":["}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << key << " missing from " << json;
  }
}

TEST_F(IntegrationTest, WindowVariableNameOtherThanT) {
  // The for-loop variable is user-chosen ("u" above, "day" here).
  auto q = server_.Submit(
      "SELECT shares FROM Trades "
      "for (day = 1; day <= 2; day = day + 1) { "
      "  WindowIs(Trades, day, day); }");
  ASSERT_TRUE(q.ok()) << q.status();
  for (int64_t ts = 1; ts <= 3; ++ts) {
    ASSERT_TRUE(server_.Push("Trades", Trade(ts, "X", ts)).ok());
  }
  EXPECT_EQ(server_.PollAll(*q).size(), 2u);
}

}  // namespace
}  // namespace tcq
