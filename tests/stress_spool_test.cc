// Spool concurrency stress (run under -DTCQ_SANITIZE=thread): many
// threads demoting, probing and replaying against ONE spool — distinct
// keys serialize only at the shared page cache, same-key readers race
// appenders under the per-key lock — plus a sharded server pushing while
// another thread scans history. Assertions are invariants (monotone
// counts, exact per-key totals, CRC-clean reads); the sanitizer owns the
// data-race verdict.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/server.h"
#include "spool/spool.h"
#include "tuple/tuple.h"

namespace tcq {
namespace {

struct TempDir {
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "tcq-spool-stress-XXXXXX")
                           .string();
    char* made = mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

Tuple Row(int64_t ts, int64_t v) {
  return Tuple::Make({Value::Int64(ts), Value::Int64(v)}, ts);
}

TEST(StressSpoolTest, ConcurrentDemotionProbeReplayOnSharedCache) {
  TempDir dir;
  Spool::Options so;
  so.dir = dir.path;
  so.cache_pages = 8;  // Tiny: every thread contends on the cache.
  so.segment_bytes = 16 * 1024;
  auto opened = Spool::Open(std::move(so));
  ASSERT_TRUE(opened.ok()) << opened.status();
  Spool& spool = **opened;

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 3000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};

  // Writers: one key each, in-order appends with occasional stragglers.
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&spool, w] {
      const std::string key = "k" + std::to_string(w);
      for (int i = 1; i <= kPerWriter; ++i) {
        ASSERT_TRUE(spool.Append(key, Row(i, w)).ok());
        if (i % 97 == 0) {
          // A late record well below the main frontier.
          ASSERT_TRUE(spool.Append(key, Row(i / 2, 1000 + w)).ok());
        }
      }
    });
  }
  // Probers: range scans racing the appenders on every key. A scan sees
  // some CRC-clean prefix; counts never regress per key.
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&spool, &stop, &scans, p] {
      std::vector<size_t> floor(kWriters, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int w = 0; w < kWriters; ++w) {
          const std::string key = "k" + std::to_string(w);
          size_t n = 0;
          Timestamp prev = kMinTimestamp;
          const Status st = spool.Scan(
              key, kMinTimestamp, kMaxTimestamp, [&](const Tuple& t) {
                EXPECT_GE(t.timestamp(), prev);
                prev = t.timestamp();
                ++n;
                return true;
              });
          if (!st.ok()) continue;  // Key not yet created.
          EXPECT_GE(n, floor[w]) << "scan count regressed on " << key;
          floor[w] = n;
          ++scans;
        }
        if (p == 1) std::this_thread::yield();
      }
    });
  }
  // Replayer: chunked ScanChunk walks (the ReplayStream access pattern)
  // racing everything else through the same cache.
  threads.emplace_back([&spool, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int w = 0; w < kWriters; ++w) {
        const std::string key = "k" + std::to_string(w);
        Timestamp lo = kMinTimestamp;
        for (int hops = 0; hops < 50 && lo != kMaxTimestamp; ++hops) {
          TupleVector chunk;
          auto next = spool.ScanChunk(key, lo, kMaxTimestamp, 64, &chunk);
          if (!next.ok()) break;
          lo = *next;
        }
      }
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_GT(scans.load(), 0u);
  for (int w = 0; w < kWriters; ++w) {
    const std::string key = "k" + std::to_string(w);
    const size_t want =
        static_cast<size_t>(kPerWriter) + kPerWriter / 97;
    EXPECT_EQ(spool.records(key), want);
    size_t n = 0;
    ASSERT_TRUE(spool
                    .Scan(key, kMinTimestamp, kMaxTimestamp,
                          [&](const Tuple&) {
                            ++n;
                            return true;
                          })
                    .ok());
    EXPECT_EQ(n, want);
  }
}

TEST(StressSpoolTest, ShardedServerDemotesWhileHistoryIsScanned) {
  // End-to-end: a 4-shard server with a hostile spool config ingesting
  // from one thread while another hammers SnapshotMetrics (spool cache
  // stats, archive sizes) and a landmark window query forces history
  // re-scans. The producer's shard threads demote concurrently with the
  // metrics reader.
  TempDir dir;
  Server::Options o;
  o.cacq_shards = 4;
  o.spool_dir = dir.path;
  o.spool_cache_pages = 8;
  o.spool_resident_tuples = 16;
  o.spool_segment_bytes = 16 * 1024;
  Server server(std::move(o));
  SchemaPtr schema = Schema::Make(
      {{"ts", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
  ASSERT_TRUE(server.DefineStream("S", schema, 0, 1).ok());
  auto filter = server.Submit("SELECT v FROM S WHERE v > 3");
  ASSERT_TRUE(filter.ok()) << filter.status();
  auto landmark = server.Submit(
      "SELECT SUM(v) FROM S "
      "for (t = 200; t <= 4000; t += 200) { WindowIs(S, 1, t); }");
  ASSERT_TRUE(landmark.ok()) << landmark.status();

  std::atomic<bool> done{false};
  std::thread reader([&server, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string snap = server.SnapshotMetrics();
      EXPECT_NE(snap.find("\"spool\""), std::string::npos);
      std::this_thread::yield();
    }
  });

  for (int64_t ts = 1; ts <= 4000; ++ts) {
    ASSERT_TRUE(server.Push("S", Row(ts, ts % 11)).ok());
  }
  ASSERT_TRUE(server.Heartbeat("S", 4001).ok());
  server.Quiesce();
  done.store(true);
  reader.join();

  // Every landmark window fired, and the full history stayed scannable
  // with only 16 tuples resident per archive.
  size_t windows = 0;
  for (const ResultSet& rs : server.PollAll(*landmark)) {
    windows += rs.rows.size();
  }
  EXPECT_EQ(windows, 20u);
}

}  // namespace
}  // namespace tcq
