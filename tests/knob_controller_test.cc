#include "eddy/knob_controller.h"

#include <gtest/gtest.h>

#include "eddy/operators.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

struct Fixture {
  SourceLayout layout;
  size_t s;
  std::shared_ptr<uint64_t> pos = std::make_shared<uint64_t>(0);

  Fixture() { s = layout.AddSource("s", KV()); }

  SmallBitset Req() {
    SmallBitset b(1);
    b.Set(s);
    return b;
  }
};

TEST(KnobControllerTest, GrowsBatchWhenStable) {
  Fixture fx;
  Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3));
  eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
      "f", fx.Req(), [](uint64_t) { return 0.5; }, 1.0, 5));

  KnobController::Options opts;
  opts.sample_interval = 256;
  opts.max_batch = 64;
  KnobController controller(&eddy, opts);

  for (int64_t i = 0; i < 4000; ++i) {
    eddy.Inject(fx.s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
    eddy.Drain();
    controller.OnTuple();
  }
  EXPECT_EQ(controller.current_batch(), 64u);  // Saturated at max.
  EXPECT_GT(controller.grows(), 0u);
  EXPECT_EQ(controller.shrinks(), 0u);
}

TEST(KnobControllerTest, ShrinksBatchOnDrift) {
  Fixture fx;
  Eddy::Options eopts;
  eopts.batch_size = 64;
  Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3), eopts);
  // Selectivity flips every 1024 tuples: persistent drift.
  eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
      "f", fx.Req(),
      [pos = fx.pos](uint64_t) {
        return (*pos / 1024) % 2 == 0 ? 0.1 : 0.9;
      },
      1.0, 5));

  KnobController::Options opts;
  opts.sample_interval = 512;
  opts.min_batch = 1;
  opts.max_batch = 64;
  KnobController controller(&eddy, opts);

  for (int64_t i = 0; i < 8000; ++i) {
    *fx.pos = static_cast<uint64_t>(i);
    eddy.Inject(fx.s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
    eddy.Drain();
    controller.OnTuple();
  }
  EXPECT_GT(controller.shrinks(), 0u);
  EXPECT_LT(controller.current_batch(), 64u);
}

TEST(KnobControllerTest, ReactsOnlyAtSampleBoundaries) {
  Fixture fx;
  Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3));
  eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
      "f", fx.Req(), [](uint64_t) { return 0.5; }, 1.0, 5));
  KnobController::Options opts;
  opts.sample_interval = 100;
  KnobController controller(&eddy, opts);
  int adjustments = 0;
  for (int64_t i = 0; i < 99; ++i) {
    eddy.Inject(fx.s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
    eddy.Drain();
    if (controller.OnTuple()) ++adjustments;
  }
  EXPECT_EQ(adjustments, 0);  // No boundary crossed yet.
}

TEST(KnobControllerTest, RespectsBounds) {
  Fixture fx;
  Eddy::Options eopts;
  eopts.batch_size = 8;
  Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3), eopts);
  eddy.AddOperator(std::make_shared<SyntheticFilterOp>(
      "f", fx.Req(), [](uint64_t) { return 0.5; }, 1.0, 5));
  KnobController::Options opts;
  opts.sample_interval = 128;
  opts.min_batch = 4;
  opts.max_batch = 16;
  KnobController controller(&eddy, opts);
  for (int64_t i = 0; i < 4000; ++i) {
    eddy.Inject(fx.s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
    eddy.Drain();
    controller.OnTuple();
  }
  EXPECT_GE(controller.current_batch(), 4u);
  EXPECT_LE(controller.current_batch(), 16u);
}

TEST(KnobControllerTest, EddySetBatchSizeClearsCacheSafely) {
  Fixture fx;
  Eddy::Options eopts;
  eopts.batch_size = 16;
  Eddy eddy(&fx.layout, std::make_unique<LotteryPolicy>(3), eopts);
  ExprPtr truth = Expr::Literal(Value::Bool(true));
  eddy.AddOperator(std::make_shared<FilterOp>("t1", truth, fx.Req()));
  eddy.AddOperator(std::make_shared<FilterOp>("t2", truth, fx.Req()));
  size_t emitted = 0;
  eddy.SetSink([&](RoutedTuple&&) { ++emitted; });
  for (int64_t i = 0; i < 100; ++i) {
    eddy.Inject(fx.s, Tuple::Make({Value::Int64(i), Value::Int64(i)}, i));
    if (i == 50) eddy.set_batch_size(2);
    eddy.Drain();
  }
  EXPECT_EQ(emitted, 100u);  // Knob turns never lose tuples.
  EXPECT_EQ(eddy.batch_size(), 2u);
}

}  // namespace
}  // namespace tcq
