#include "cacq/engine.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace tcq {
namespace {

SchemaPtr StockSchema() {
  return Schema::Make({{"timestamp", ValueType::kInt64, ""},
                       {"stockSymbol", ValueType::kString, ""},
                       {"closingPrice", ValueType::kDouble, ""}});
}

Tuple Stock(int64_t ts, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(ts), Value::String(sym), Value::Double(price)}, ts);
}

ExprPtr SymEq(const std::string& sym) {
  return Expr::Binary(BinaryOp::kEq, Expr::Column("stockSymbol"),
                      Expr::Literal(Value::String(sym)));
}

ExprPtr PriceGt(double p) {
  return Expr::Binary(BinaryOp::kGt, Expr::Column("closingPrice"),
                      Expr::Literal(Value::Double(p)));
}

TEST(CacqEngineTest, TwoSelectionQueriesShareOneEddy) {
  CacqEngine engine;
  ASSERT_TRUE(engine.AddStream("Stocks", StockSchema()).ok());

  std::map<QueryId, int> hits;
  engine.SetSink([&](QueryId q, const Tuple&) { ++hits[q]; });

  CacqQuerySpec q0;
  q0.sources = {"Stocks"};
  q0.where = SymEq("MSFT");
  CacqQuerySpec q1;
  q1.sources = {"Stocks"};
  q1.where = Expr::Binary(BinaryOp::kAnd, SymEq("MSFT"), PriceGt(50));
  ASSERT_TRUE(engine.AddQuery(q0).ok());
  ASSERT_TRUE(engine.AddQuery(q1).ok());

  ASSERT_TRUE(engine.Inject("Stocks", Stock(1, "MSFT", 45)).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(2, "MSFT", 55)).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(3, "IBM", 60)).ok());

  EXPECT_EQ(hits[0], 2);  // Both MSFT rows.
  EXPECT_EQ(hits[1], 1);  // Only the >50 row.
}

TEST(CacqEngineTest, QueryWithNoPredicateSeesEverything) {
  CacqEngine engine;
  ASSERT_TRUE(engine.AddStream("Stocks", StockSchema()).ok());
  int hits = 0;
  engine.SetSink([&](QueryId, const Tuple&) { ++hits; });
  CacqQuerySpec q;
  q.sources = {"Stocks"};
  ASSERT_TRUE(engine.AddQuery(q).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(1, "A", 1)).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(2, "B", 2)).ok());
  EXPECT_EQ(hits, 2);
}

TEST(CacqEngineTest, NoQueriesNoWork) {
  CacqEngine engine;
  ASSERT_TRUE(engine.AddStream("Stocks", StockSchema()).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(1, "A", 1)).ok());
  EXPECT_EQ(engine.eddy().visits(), 0u);
}

TEST(CacqEngineTest, DynamicAddAndRemove) {
  CacqEngine engine;
  ASSERT_TRUE(engine.AddStream("Stocks", StockSchema()).ok());
  std::map<QueryId, int> hits;
  engine.SetSink([&](QueryId q, const Tuple&) { ++hits[q]; });

  CacqQuerySpec spec;
  spec.sources = {"Stocks"};
  spec.where = SymEq("MSFT");
  auto q0 = engine.AddQuery(spec);
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(1, "MSFT", 1)).ok());
  EXPECT_EQ(hits[*q0], 1);

  // A second query folds in mid-stream; the first keeps matching.
  spec.where = PriceGt(10);
  auto q1 = engine.AddQuery(spec);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(2, "MSFT", 20)).ok());
  EXPECT_EQ(hits[*q0], 2);
  EXPECT_EQ(hits[*q1], 1);

  // Remove the first; only the second fires afterwards.
  ASSERT_TRUE(engine.RemoveQuery(*q0).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(3, "MSFT", 30)).ok());
  EXPECT_EQ(hits[*q0], 2);
  EXPECT_EQ(hits[*q1], 2);
  EXPECT_EQ(engine.num_active_queries(), 1u);
}

TEST(CacqEngineTest, RemoveUnknownQueryFails) {
  CacqEngine engine;
  ASSERT_TRUE(engine.AddStream("S", StockSchema()).ok());
  EXPECT_FALSE(engine.RemoveQuery(5).ok());
}

TEST(CacqEngineTest, ResidualPredicates) {
  // OR predicates cannot enter grouped filters; they run as residuals.
  CacqEngine engine;
  ASSERT_TRUE(engine.AddStream("Stocks", StockSchema()).ok());
  int hits = 0;
  engine.SetSink([&](QueryId, const Tuple&) { ++hits; });
  CacqQuerySpec q;
  q.sources = {"Stocks"};
  q.where = Expr::Binary(BinaryOp::kOr, SymEq("MSFT"), SymEq("IBM"));
  ASSERT_TRUE(engine.AddQuery(q).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(1, "MSFT", 1)).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(2, "IBM", 1)).ok());
  ASSERT_TRUE(engine.Inject("Stocks", Stock(3, "ORCL", 1)).ok());
  EXPECT_EQ(hits, 2);
}

TEST(CacqEngineTest, SharedJoinAcrossQueries) {
  // Two join queries with different selections share the SteM pair.
  CacqEngine engine;
  SchemaPtr ab =
      Schema::Make({{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
  ASSERT_TRUE(engine.AddStream("A", ab).ok());
  ASSERT_TRUE(engine.AddStream("B", ab).ok());

  std::map<QueryId, int> hits;
  engine.SetSink([&](QueryId q, const Tuple&) { ++hits[q]; });

  auto join = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                           Expr::Column("B.k"));
  CacqQuerySpec q0;  // All joins.
  q0.sources = {"A", "B"};
  q0.where = join;
  CacqQuerySpec q1;  // Joins with A.v > 10.
  q1.sources = {"A", "B"};
  q1.where = Expr::Binary(
      BinaryOp::kAnd, join,
      Expr::Binary(BinaryOp::kGt, Expr::Column("A.v"),
                   Expr::Literal(Value::Int64(10))));
  ASSERT_TRUE(engine.AddQuery(q0).ok());
  ASSERT_TRUE(engine.AddQuery(q1).ok());

  auto row = [](int64_t k, int64_t v, Timestamp ts) {
    return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
  };
  ASSERT_TRUE(engine.Inject("A", row(1, 5, 1)).ok());
  ASSERT_TRUE(engine.Inject("B", row(1, 0, 2)).ok());   // Join: q0 only.
  ASSERT_TRUE(engine.Inject("A", row(2, 50, 3)).ok());
  ASSERT_TRUE(engine.Inject("B", row(2, 0, 4)).ok());   // Join: q0 and q1.

  EXPECT_EQ(hits[0], 2);
  EXPECT_EQ(hits[1], 1);
}

TEST(CacqEngineTest, SingleStreamQueriesAlongsideJoinQueries) {
  CacqEngine engine;
  SchemaPtr ab =
      Schema::Make({{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
  ASSERT_TRUE(engine.AddStream("A", ab).ok());
  ASSERT_TRUE(engine.AddStream("B", ab).ok());

  std::map<QueryId, int> hits;
  engine.SetSink([&](QueryId q, const Tuple&) { ++hits[q]; });

  CacqQuerySpec sel;  // Selection on A only.
  sel.sources = {"A"};
  sel.where = Expr::Binary(BinaryOp::kGt, Expr::Column("A.v"),
                           Expr::Literal(Value::Int64(10)));
  CacqQuerySpec join;
  join.sources = {"A", "B"};
  join.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  auto sq = engine.AddQuery(sel);
  auto jq = engine.AddQuery(join);
  ASSERT_TRUE(sq.ok() && jq.ok());

  auto row = [](int64_t k, int64_t v, Timestamp ts) {
    return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
  };
  ASSERT_TRUE(engine.Inject("A", row(1, 20, 1)).ok());  // sel hit.
  ASSERT_TRUE(engine.Inject("B", row(1, 0, 2)).ok());   // join hit.
  ASSERT_TRUE(engine.Inject("A", row(2, 5, 3)).ok());   // Neither (v<=10)...
  ASSERT_TRUE(engine.Inject("B", row(2, 0, 4)).ok());   // ...but join hits.

  EXPECT_EQ(hits[*sq], 1);
  EXPECT_EQ(hits[*jq], 2);
}

TEST(CacqEngineTest, EvictBeforeLimitsJoinState) {
  CacqEngine engine;
  SchemaPtr ab =
      Schema::Make({{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
  ASSERT_TRUE(engine.AddStream("A", ab).ok());
  ASSERT_TRUE(engine.AddStream("B", ab).ok());
  int hits = 0;
  engine.SetSink([&](QueryId, const Tuple&) { ++hits; });
  CacqQuerySpec join;
  join.sources = {"A", "B"};
  join.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  ASSERT_TRUE(engine.AddQuery(join).ok());

  auto row = [](int64_t k, Timestamp ts) {
    return Tuple::Make({Value::Int64(k), Value::Int64(0)}, ts);
  };
  ASSERT_TRUE(engine.Inject("A", row(1, 1)).ok());
  engine.EvictBefore(10);  // A's tuple leaves the window.
  ASSERT_TRUE(engine.Inject("B", row(1, 11)).ok());
  EXPECT_EQ(hits, 0);
  ASSERT_TRUE(engine.Inject("A", row(1, 12)).ok());
  ASSERT_TRUE(engine.Inject("B", row(1, 13)).ok());
  EXPECT_EQ(hits, 2);  // B(11)⋈A(12)? No: A(12) probes B-stem -> B(11),
                       // and B(13) probes A-stem -> A(12).
}

// Stable symbol names for the property test.
std::string StockTickerSourceSymbolForTest(uint64_t i) {
  const char* symbols[] = {"MSFT", "IBM", "ORCL", "AAPL"};
  return symbols[i % 4];
}

// Property: shared execution of N random selection queries produces
// exactly what N independent evaluations produce.
class CacqSharingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacqSharingPropertyTest, MatchesIndependentEvaluation) {
  Rng rng(GetParam());
  CacqEngine engine;
  ASSERT_TRUE(engine.AddStream("Stocks", StockSchema()).ok());

  const size_t num_queries = 1 + rng.NextBounded(40);
  std::vector<ExprPtr> predicates;
  std::map<QueryId, int> hits;
  engine.SetSink([&](QueryId q, const Tuple&) { ++hits[q]; });

  SchemaPtr schema = StockSchema();
  for (size_t i = 0; i < num_queries; ++i) {
    // Random conjunction of a symbol equality and/or price range.
    std::vector<ExprPtr> conj;
    if (rng.NextBool(0.6)) {
      conj.push_back(
          SymEq(StockTickerSourceSymbolForTest(rng.NextBounded(4))));
    }
    if (rng.NextBool(0.7)) {
      conj.push_back(PriceGt(static_cast<double>(rng.NextInt(20, 80))));
    }
    if (rng.NextBool(0.3)) {
      conj.push_back(Expr::Binary(BinaryOp::kLt, Expr::Column("closingPrice"),
                                  Expr::Literal(Value::Double(
                                      static_cast<double>(rng.NextInt(40, 120))))));
    }
    ExprPtr where = conj.empty() ? nullptr : MakeConjunction(conj);
    predicates.push_back(where);
    CacqQuerySpec spec;
    spec.sources = {"Stocks"};
    spec.where = where;
    ASSERT_TRUE(engine.AddQuery(spec).ok());
  }

  std::vector<int> expected(num_queries, 0);
  std::vector<ExprPtr> bound(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    if (predicates[i] != nullptr) bound[i] = *predicates[i]->Bind(*schema);
  }

  const char* symbols[] = {"MSFT", "IBM", "ORCL", "AAPL"};
  for (int i = 0; i < 500; ++i) {
    Tuple t = Stock(i + 1, symbols[rng.NextBounded(4)],
                    static_cast<double>(rng.NextInt(0, 130)));
    for (size_t q = 0; q < num_queries; ++q) {
      if (bound[q] == nullptr) {
        ++expected[q];
        continue;
      }
      const Value keep = bound[q]->Eval(t);
      if (!keep.is_null() && keep.bool_value()) ++expected[q];
    }
    ASSERT_TRUE(engine.Inject("Stocks", t).ok());
  }
  for (size_t q = 0; q < num_queries; ++q) {
    ASSERT_EQ(hits[static_cast<QueryId>(q)], expected[q]) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacqSharingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace tcq
