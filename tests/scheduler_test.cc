#include "fjords/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>

#include "fjords/module.h"

namespace tcq {
namespace {

/// Produces `count` tuples [Int64(i)] into its output queue, then closes it.
class ProducerModule : public FjordModule {
 public:
  ProducerModule(std::string name, TupleQueuePtr out, int64_t count)
      : FjordModule(std::move(name)), out_(std::move(out)), count_(count) {}

  StepResult Step(size_t max_tuples) override {
    if (next_ >= count_) {
      out_->Close();
      return StepResult::kDone;
    }
    size_t produced = 0;
    while (next_ < count_ && produced < max_tuples) {
      if (!out_->Enqueue(Tuple::Make({Value::Int64(next_)}, next_))) {
        return produced > 0 ? StepResult::kDidWork : StepResult::kIdle;
      }
      ++next_;
      ++produced;
    }
    return StepResult::kDidWork;
  }

 private:
  TupleQueuePtr out_;
  int64_t count_;
  int64_t next_ = 0;
};

/// Sums cell 0 of everything on its input queue.
class SummerModule : public FjordModule {
 public:
  SummerModule(std::string name, TupleQueuePtr in, std::atomic<int64_t>* sum)
      : FjordModule(std::move(name)), in_(std::move(in)), sum_(sum) {}

  StepResult Step(size_t max_tuples) override {
    size_t consumed = 0;
    while (consumed < max_tuples) {
      auto t = in_->Dequeue();
      if (!t.has_value()) {
        if (consumed > 0) return StepResult::kDidWork;
        return in_->Exhausted() ? StepResult::kDone : StepResult::kIdle;
      }
      sum_->fetch_add(t->cell(0).int64_value());
      ++consumed;
    }
    return StepResult::kDidWork;
  }

 private:
  TupleQueuePtr in_;
  std::atomic<int64_t>* sum_;
};

TEST(SchedulerTest, RunToCompletionPipesProducerToConsumer) {
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(16));
  std::atomic<int64_t> sum{0};
  ExecutionObject eo("test-eo");
  eo.AddModule(std::make_shared<ProducerModule>("prod", q, 100));
  eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum));
  eo.RunToCompletion();
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(SchedulerTest, SmallQueueForcesInterleaving) {
  // Capacity 2 with quantum 64: producer must yield repeatedly; the
  // round-robin scheduler has to interleave for completion.
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(2));
  std::atomic<int64_t> sum{0};
  ExecutionObject eo("test-eo");
  eo.AddModule(std::make_shared<ProducerModule>("prod", q, 1000));
  eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum));
  eo.RunToCompletion();
  EXPECT_EQ(sum.load(), int64_t{1000} * 999 / 2);
}

TEST(SchedulerTest, ThreadedStartJoin) {
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(32));
  std::atomic<int64_t> sum{0};
  ExecutionObject eo("test-eo");
  eo.AddModule(std::make_shared<ProducerModule>("prod", q, 5000));
  eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum));
  eo.Start();
  eo.Join();
  EXPECT_EQ(sum.load(), int64_t{5000} * 4999 / 2);
}

TEST(SchedulerTest, DynamicModuleAdditionWhileRunning) {
  auto q1 = std::make_shared<TupleQueue>(PushQueueOptions(32));
  auto q2 = std::make_shared<TupleQueue>(PushQueueOptions(32));
  std::atomic<int64_t> sum1{0}, sum2{0};
  ExecutionObject eo("test-eo");
  eo.AddModule(std::make_shared<ProducerModule>("prod1", q1, 1000));
  eo.AddModule(std::make_shared<SummerModule>("sum1", q1, &sum1));
  eo.Start();
  // Fold in a second dataflow mid-run (the paper's dynamic query add).
  eo.AddModule(std::make_shared<ProducerModule>("prod2", q2, 500));
  eo.AddModule(std::make_shared<SummerModule>("sum2", q2, &sum2));
  eo.Join();
  EXPECT_EQ(sum1.load(), int64_t{1000} * 999 / 2);
  EXPECT_EQ(sum2.load(), int64_t{500} * 499 / 2);
}

TEST(SchedulerTest, WorkQuantaCounted) {
  auto q = std::make_shared<TupleQueue>(PushQueueOptions(16));
  std::atomic<int64_t> sum{0};
  ExecutionObject eo("test-eo");
  eo.AddModule(std::make_shared<ProducerModule>("prod", q, 10));
  eo.AddModule(std::make_shared<SummerModule>("sum", q, &sum));
  eo.RunToCompletion();
  EXPECT_GT(eo.work_quanta(), 0u);
}

TEST(SchedulerTest, StopIsIdempotent) {
  ExecutionObject eo("test-eo");
  eo.Stop();
  eo.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace tcq
