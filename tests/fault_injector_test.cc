#include "testing/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

using QueueFaultProfile = FaultInjector::QueueFaultProfile;
using StreamFaultProfile = FaultInjector::StreamFaultProfile;

QueueFaultProfile NoFaults() { return QueueFaultProfile{}; }

TEST(FaultInjectorTest, SameSeedSameQueueDecisionTrace) {
  // Acceptance: given the same seed, the injector reproduces an identical
  // fault schedule.
  const QueueFaultProfile profile{0.2, 0.2, 0.2, 4};
  FaultInjector a(42), b(42), c(43);
  auto ha = a.MakeQueueHooks(profile, profile);
  auto hb = b.MakeQueueHooks(profile, profile);
  auto hc = c.MakeQueueHooks(profile, profile);
  for (int i = 0; i < 500; ++i) {
    ha->on_enqueue();
    hb->on_enqueue();
    hc->on_enqueue();
    ha->on_dequeue();
    hb->on_dequeue();
    hc->on_dequeue();
  }
  EXPECT_EQ(a.Trace(), b.Trace());
  EXPECT_NE(a.Trace(), c.Trace());  // Different seed, different schedule.
  EXPECT_GT(a.TraceSize(), 0u);
}

TEST(FaultInjectorTest, KillScheduleDeterministicSortedAndDistinct) {
  FaultInjector a(7), b(7);
  const auto sa = a.MakeKillSchedule(3, 6, 40);
  const auto sb = b.MakeKillSchedule(3, 6, 40);
  ASSERT_EQ(sa.size(), 3u);
  std::set<uint64_t> ticks;
  std::set<size_t> nodes;
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].tick, sb[i].tick);
    EXPECT_EQ(sa[i].node, sb[i].node);
    EXPECT_GE(sa[i].tick, 1u);
    EXPECT_LE(sa[i].tick, 40u);
    EXPECT_LT(sa[i].node, 6u);
    ticks.insert(sa[i].tick);
    nodes.insert(sa[i].node);
    if (i > 0) EXPECT_GT(sa[i].tick, sa[i - 1].tick);  // Sorted.
  }
  EXPECT_EQ(ticks.size(), 3u);  // Distinct ticks.
  EXPECT_EQ(nodes.size(), 3u);  // Distinct nodes.
}

TupleVector MakeStream(int n) {
  TupleVector v;
  for (int i = 1; i <= n; ++i) {
    v.push_back(Tuple::Make({Value::Int64(i), Value::Int64(i * 10)}, i));
  }
  return v;
}

TEST(FaultInjectorTest, PerturbDeterministicAndFaultsObservable) {
  const StreamFaultProfile profile{0.1, 0.1, 0.1, 3};
  FaultInjector a(99), b(99);
  const TupleVector in = MakeStream(400);
  const TupleVector pa = a.Perturb(in, profile, 0);
  const TupleVector pb = b.Perturb(in, profile, 0);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].timestamp(), pb[i].timestamp());
    EXPECT_EQ(pa[i].cell(0), pb[i].cell(0));
  }
  EXPECT_EQ(a.Trace(), b.Trace());

  // Each fault class actually fired on a 400-tuple stream at p=0.1.
  size_t dups = 0, lates = 0, swaps = 0;
  for (const std::string& e : a.Trace()) {
    if (e.rfind("stream:dup", 0) == 0) ++dups;
    if (e.rfind("stream:late", 0) == 0) ++lates;
    if (e.rfind("stream:swap", 0) == 0) ++swaps;
  }
  EXPECT_GT(dups, 0u);
  EXPECT_GT(lates, 0u);
  EXPECT_GT(swaps, 0u);
  EXPECT_GT(pa.size(), in.size());  // Duplicates net-grow the stream.

  // Late tuples rewrote the declared timestamp column consistently.
  for (const Tuple& t : pa) {
    EXPECT_EQ(t.cell(0).int64_value(), t.timestamp());
  }
}

// -- Queue fault semantics through a real FjordQueue ----------------------

TEST(FaultInjectorTest, QueueDropFaultCountsAndLosesElement) {
  FaultInjector fi(5);
  QueueFaultProfile drop_all;
  drop_all.drop = 1.0;
  QueueOptions opts = PushQueueOptions(16);
  opts.faults = fi.MakeQueueHooks(drop_all, NoFaults());
  FjordQueue<int> q(opts);
  EXPECT_TRUE(q.Enqueue(1));  // Caller sees success...
  EXPECT_TRUE(q.Enqueue(2));
  EXPECT_EQ(q.Size(), 0u);  // ...but nothing arrived.
  EXPECT_EQ(q.FaultDrops(), 2u);
  EXPECT_FALSE(q.Dequeue().has_value());
}

TEST(FaultInjectorTest, QueueDequeueDropSkipsToNext) {
  FaultInjector fi(5);
  QueueFaultProfile drop_all;
  drop_all.drop = 1.0;
  QueueOptions opts = PushQueueOptions(16);
  opts.faults = fi.MakeQueueHooks(NoFaults(), drop_all);
  FjordQueue<int> q(opts);
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_TRUE(q.Enqueue(2));
  // Every present element gets dropped; the consumer sees emptiness.
  EXPECT_FALSE(q.Dequeue().has_value());
  EXPECT_EQ(q.FaultDrops(), 2u);
}

TEST(FaultInjectorTest, QueueDelayHoldsThenReleasesNoLoss) {
  FaultInjector fi(11);
  QueueFaultProfile delay_all;
  delay_all.delay = 1.0;
  delay_all.max_delay = 1;  // Release after exactly one later enqueue.
  QueueOptions opts = PushQueueOptions(16);
  auto hooks = fi.MakeQueueHooks(delay_all, NoFaults());
  // Delay only the first element: swap profiles after one use by making a
  // fresh queue per phase instead — simpler: all enqueues delayed, each
  // enqueue releases the previously delayed one.
  opts.faults = hooks;
  FjordQueue<int> q(opts);
  EXPECT_TRUE(q.Enqueue(1));
  EXPECT_EQ(q.Size(), 0u);  // Held back.
  EXPECT_EQ(q.DelayedCount(), 1u);
  EXPECT_TRUE(q.Enqueue(2));  // 2 delayed; 1's countdown expires -> visible.
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(*q.Dequeue(), 1);
  q.Close();  // Close releases everything still held: delay is not loss.
  EXPECT_EQ(q.DelayedCount(), 0u);
  EXPECT_EQ(*q.Dequeue(), 2);
  EXPECT_TRUE(q.Exhausted());
}

TEST(FaultInjectorTest, QueueReorderPreservesMultiset) {
  FaultInjector fi(23);
  QueueFaultProfile reorder_all;
  reorder_all.reorder = 1.0;
  QueueOptions opts = PushQueueOptions(64);
  opts.faults = fi.MakeQueueHooks(reorder_all, reorder_all);
  FjordQueue<int> q(opts);
  std::multiset<int> sent, got;
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(q.Enqueue(i));
    sent.insert(i);
  }
  q.Close();
  while (auto v = q.Dequeue()) got.insert(*v);
  EXPECT_EQ(sent, got);  // Reordering never loses or duplicates.
  EXPECT_EQ(q.FaultDrops(), 0u);
}

// -- ScheduleExplorer determinism ----------------------------------------

TEST(ScheduleExplorerTest, SameSeedExploresIdenticalSchedules) {
  ScheduleExplorer a(17), b(17);
  auto noop = [](const ScheduleExplorer::Schedule&) {
    return std::string("x");
  };
  ASSERT_TRUE(a.Explore(5, noop).ok());
  ASSERT_TRUE(b.Explore(5, noop).ok());
  ASSERT_EQ(a.schedules().size(), b.schedules().size());
  for (size_t i = 0; i < a.schedules().size(); ++i) {
    EXPECT_EQ(ScheduleExplorer::Describe(a.schedules()[i]),
              ScheduleExplorer::Describe(b.schedules()[i]));
  }
}

TEST(ScheduleExplorerTest, FirstTrialIsIdentityOrder) {
  ScheduleExplorer e(3);
  auto noop = [](const ScheduleExplorer::Schedule&) {
    return std::string("x");
  };
  ASSERT_TRUE(e.Explore(4, noop).ok());
  const auto& first = e.schedules()[0].order;
  EXPECT_EQ(first, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ScheduleExplorerTest, DetectsScheduleDependentResults) {
  ScheduleExplorer e(17);
  // A "dataflow" whose answer depends on module order: broken by design.
  auto order_sensitive = [](const ScheduleExplorer::Schedule& s) {
    return std::to_string(s.order[0]);
  };
  const auto result = e.Explore(6, order_sensitive);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("schedule-dependent"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("order="), std::string::npos);
}

TEST(ScheduleExplorerTest, InvariantDataflowPasses) {
  ScheduleExplorer e(17);
  auto invariant = [](const ScheduleExplorer::Schedule& s) {
    // Sum over the permutation: identical for every order.
    size_t sum = 0;
    for (size_t i : s.order) sum += i;
    return std::to_string(sum);
  };
  const auto result = e.Explore(6, invariant);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "15");
}

}  // namespace
}  // namespace tcq
