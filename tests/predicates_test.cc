#include "expr/predicates.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

TEST(PredicatesTest, MatchSimpleColumnOpLiteral) {
  ExprPtr e = Expr::Binary(BinaryOp::kGt, Expr::Column("price"),
                           Expr::Literal(Value::Double(50)));
  auto m = MatchSimplePredicate(e);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->column, "price");
  EXPECT_EQ(m->op, BinaryOp::kGt);
  EXPECT_DOUBLE_EQ(m->constant.double_value(), 50.0);
}

TEST(PredicatesTest, MatchFlipsLiteralOpColumn) {
  // 50 < price  ==>  price > 50.
  ExprPtr e = Expr::Binary(BinaryOp::kLt, Expr::Literal(Value::Double(50)),
                           Expr::Column("price"));
  auto m = MatchSimplePredicate(e);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->column, "price");
  EXPECT_EQ(m->op, BinaryOp::kGt);
}

TEST(PredicatesTest, EqualityIsSymmetricUnderFlip) {
  ExprPtr e = Expr::Binary(BinaryOp::kEq, Expr::Literal(Value::String("M")),
                           Expr::Column("sym"));
  auto m = MatchSimplePredicate(e);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->op, BinaryOp::kEq);
}

TEST(PredicatesTest, RejectsNonSimpleShapes) {
  // col op col.
  EXPECT_FALSE(MatchSimplePredicate(Expr::Binary(BinaryOp::kEq,
                                                 Expr::Column("a"),
                                                 Expr::Column("b")))
                   .has_value());
  // arithmetic.
  EXPECT_FALSE(MatchSimplePredicate(Expr::Binary(BinaryOp::kAdd,
                                                 Expr::Column("a"),
                                                 Expr::Literal(Value::Int64(1))))
                   .has_value());
  // AND node.
  ExprPtr cmp = Expr::Binary(BinaryOp::kGt, Expr::Column("a"),
                             Expr::Literal(Value::Int64(1)));
  EXPECT_FALSE(
      MatchSimplePredicate(Expr::Binary(BinaryOp::kAnd, cmp, cmp)).has_value());
  // nullptr.
  EXPECT_FALSE(MatchSimplePredicate(nullptr).has_value());
}

TEST(PredicatesTest, MatchEquiJoin) {
  ExprPtr e = Expr::Binary(BinaryOp::kEq, Expr::Column("c1.timestamp"),
                           Expr::Column("c2.timestamp"));
  auto m = MatchEquiJoin(e);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->left_column, "c1.timestamp");
  EXPECT_EQ(m->right_column, "c2.timestamp");
}

TEST(PredicatesTest, EquiJoinRequiresEquality) {
  ExprPtr e = Expr::Binary(BinaryOp::kGt, Expr::Column("a"),
                           Expr::Column("b"));
  EXPECT_FALSE(MatchEquiJoin(e).has_value());
}

TEST(PredicatesTest, FlipComparisonTable) {
  EXPECT_EQ(FlipComparison(BinaryOp::kLt), BinaryOp::kGt);
  EXPECT_EQ(FlipComparison(BinaryOp::kLe), BinaryOp::kGe);
  EXPECT_EQ(FlipComparison(BinaryOp::kGt), BinaryOp::kLt);
  EXPECT_EQ(FlipComparison(BinaryOp::kGe), BinaryOp::kLe);
  EXPECT_EQ(FlipComparison(BinaryOp::kEq), BinaryOp::kEq);
  EXPECT_EQ(FlipComparison(BinaryOp::kNe), BinaryOp::kNe);
}

TEST(PredicatesTest, QualifierOf) {
  EXPECT_EQ(QualifierOf("c1.price"), "c1");
  EXPECT_EQ(QualifierOf("price"), "");
}

TEST(PredicatesTest, CollectQualifiers) {
  ExprPtr e = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kEq, Expr::Column("c1.sym"),
                   Expr::Column("c2.sym")),
      Expr::Binary(BinaryOp::kGt, Expr::Column("price"),
                   Expr::Literal(Value::Int64(0))));
  auto quals = CollectQualifiers(e);
  EXPECT_EQ(quals.size(), 3u);
  EXPECT_TRUE(quals.count("c1"));
  EXPECT_TRUE(quals.count("c2"));
  EXPECT_TRUE(quals.count(""));
}

}  // namespace
}  // namespace tcq
