#include "core/runner.h"

#include <gtest/gtest.h>

#include "ingress/sources.h"

namespace tcq {
namespace {

/// Direct QueryRunner tests (no server): window firing discipline,
/// reverse/history windows, the landmark incremental fast path, and
/// table-only snapshots.
class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StreamDef def;
    def.name = "ClosingStockPrices";
    def.schema = StockTickerSource::MakeSchema();
    def.timestamp_field = 0;
    ASSERT_TRUE(catalog_.RegisterStream(def).ok());

    // 100 days of MSFT, price = 40 + day.
    for (int64_t d = 1; d <= 100; ++d) {
      archive_.Append(Tuple::Make({Value::Int64(d), Value::String("MSFT"),
                                   Value::Double(40.0 + d)},
                                  d));
    }
  }

  QueryRunner MakeRunner(const std::string& sql, Timestamp start_time) {
    auto analyzed = AnalyzeSql(sql, catalog_);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status();
    QueryRunner::Options opts;
    opts.start_time = start_time;
    return QueryRunner(*analyzed, {&archive_}, {TupleVector{}}, opts);
  }

  Catalog catalog_;
  Archive archive_;
};

TEST_F(RunnerTest, WindowsFireOnlyWhenPunctuated) {
  QueryRunner runner = MakeRunner(
      "SELECT closingPrice FROM ClosingStockPrices "
      "for (t = 10; t <= 12; t++) { WindowIs(ClosingStockPrices, t, t); }",
      1);
  std::vector<ResultSet> out;
  // Watermark 10: window [10,10] not certain yet (ties possible).
  EXPECT_EQ(runner.Advance(10, &out), 0u);
  // Watermark 11: [10,10] fires.
  EXPECT_EQ(runner.Advance(11, &out), 1u);
  // Watermark 13: [11,11] and [12,12] fire; loop ends.
  EXPECT_EQ(runner.Advance(13, &out), 2u);
  EXPECT_TRUE(runner.done());
  EXPECT_EQ(runner.Advance(100, &out), 0u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].rows[0].cell(0).double_value(), 50.0);
}

TEST_F(RunnerTest, ReverseWindowBrowsesHistory) {
  // §4.1.1: "windows that move backwards starting from the present time".
  QueryRunner runner = MakeRunner(
      "SELECT timestamp FROM ClosingStockPrices "
      "for (t = ST; t > ST - 30; t -= 10) { "
      "WindowIs(ClosingStockPrices, t - 9, t); }",
      /*start_time=*/90);
  std::vector<ResultSet> out;
  // All three windows lie in the past relative to watermark 100.
  EXPECT_EQ(runner.Advance(100, &out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].t, 90);
  EXPECT_EQ(out[0].rows.size(), 10u);  // Days 81..90.
  EXPECT_EQ(out[1].t, 80);             // Moving backwards.
  EXPECT_EQ(out[2].t, 70);
  EXPECT_EQ(out[2].rows.front().cell(0).int64_value(), 61);
}

TEST_F(RunnerTest, LandmarkAggregateUsesIncrementalPath) {
  QueryRunner runner = MakeRunner(
      "SELECT MAX(closingPrice) FROM ClosingStockPrices "
      "for (t = 10; t <= 50; t++) { "
      "WindowIs(ClosingStockPrices, 10, t); }",
      1);
  std::vector<ResultSet> out;
  EXPECT_EQ(runner.Advance(100, &out), 41u);
  // MAX grows with the landmark window: price = 40 + day.
  EXPECT_DOUBLE_EQ(out[0].rows[0].cell(0).double_value(), 50.0);   // t=10.
  EXPECT_DOUBLE_EQ(out[40].rows[0].cell(0).double_value(), 90.0);  // t=50.
  // Incremental path: no per-window re-scan through the eddy machinery.
  EXPECT_EQ(runner.total_visits(), 0u);
}

TEST_F(RunnerTest, LandmarkPathAppliesFilters) {
  QueryRunner runner = MakeRunner(
      "SELECT COUNT(*) FROM ClosingStockPrices "
      "WHERE closingPrice > 60 "
      "for (t = 10; t <= 30; t++) { "
      "WindowIs(ClosingStockPrices, 10, t); }",
      1);
  std::vector<ResultSet> out;
  runner.Advance(100, &out);
  ASSERT_EQ(out.size(), 21u);
  // Window [10,30]: days with price > 60 are 21..30 -> 10 rows.
  EXPECT_EQ(out[20].rows[0].cell(0).int64_value(), 10);
  // Window [10,20]: price > 60 means day > 20 -> none yet.
  EXPECT_EQ(out[10].rows.size(), 1u);
  EXPECT_EQ(out[10].rows[0].cell(0).int64_value(), 0);
}

TEST_F(RunnerTest, SlidingAggregateRunsPerWindow) {
  QueryRunner runner = MakeRunner(
      "SELECT AVG(closingPrice) FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (t = 10; t <= 20; t += 5) { "
      "WindowIs(ClosingStockPrices, t - 4, t); }",
      1);
  std::vector<ResultSet> out;
  runner.Advance(100, &out);
  ASSERT_EQ(out.size(), 3u);
  // Window [6,10]: prices 46..50, avg 48; [11,15]: 53; [16,20]: 58.
  EXPECT_DOUBLE_EQ(out[0].rows[0].cell(0).double_value(), 48.0);
  EXPECT_DOUBLE_EQ(out[1].rows[0].cell(0).double_value(), 53.0);
  EXPECT_DOUBLE_EQ(out[2].rows[0].cell(0).double_value(), 58.0);
  EXPECT_GT(runner.total_visits(), 0u);  // General (eddy) path ran ops.
}

TEST_F(RunnerTest, TableOnlySnapshotRunsOnce) {
  StreamDef def;
  def.name = "Companies";
  def.schema = Schema::Make({{"symbol", ValueType::kString, ""},
                             {"sector", ValueType::kString, ""}});
  TupleVector rows;
  rows.push_back(
      Tuple::Make({Value::String("MSFT"), Value::String("tech")}, 0));
  rows.push_back(
      Tuple::Make({Value::String("XOM"), Value::String("energy")}, 0));
  ASSERT_TRUE(catalog_.RegisterTable(def, rows).ok());

  auto analyzed =
      AnalyzeSql("SELECT symbol FROM Companies WHERE sector = 'tech'",
                 catalog_);
  ASSERT_TRUE(analyzed.ok());
  static Archive empty;
  QueryRunner runner(*analyzed, {&empty}, {rows}, QueryRunner::Options{});
  std::vector<ResultSet> out;
  EXPECT_EQ(runner.Advance(0, &out), 1u);
  EXPECT_TRUE(runner.done());
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].rows.size(), 1u);
  EXPECT_EQ(out[0].rows[0].cell(0).string_value(), "MSFT");
}

TEST_F(RunnerTest, EmptyWindowsYieldEmptySets) {
  QueryRunner runner = MakeRunner(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'IBM' "  // Never present.
      "for (t = 10; t <= 12; t++) { WindowIs(ClosingStockPrices, t, t); }",
      1);
  std::vector<ResultSet> out;
  runner.Advance(100, &out);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& rs : out) EXPECT_TRUE(rs.rows.empty());
}

}  // namespace
}  // namespace tcq
