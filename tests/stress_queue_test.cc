#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fjords/queue.h"
#include "testing/fault_injector.h"
#include "testing/stress_runner.h"

namespace tcq {
namespace {

// Producer/consumer races over every queue-end combination, with the
// conservation invariant the Fjords contract promises: every element whose
// Enqueue returned true is either dequeued, still in the queue, or
// accounted to an explicit drop counter — never silently lost.

struct QueueAccounting {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> dequeued{0};
};

void DrainRemaining(FjordQueue<int>* q, QueueAccounting* acct) {
  while (auto v = q->Dequeue()) acct->dequeued.fetch_add(1);
}

void CheckConservation(const FjordQueue<int>& q, const QueueAccounting& a) {
  EXPECT_EQ(a.accepted.load(),
            a.dequeued.load() + q.DroppedCount() + q.FaultDrops())
      << "accepted elements vanished without an accounting entry";
}

TEST(StressQueueTest, BlockingEndsUnderContention) {
  FjordQueue<int> q(PullQueueOptions(8));
  QueueAccounting acct;
  constexpr int kPerProducer = 20000;
  std::vector<std::thread> producers, consumers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.Enqueue(i)) {
          acct.accepted.fetch_add(1);
        } else {
          acct.rejected.fetch_add(1);
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Dequeue()) acct.dequeued.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(acct.accepted.load(), 3u * kPerProducer);  // Blocking: all in.
  CheckConservation(q, acct);
}

TEST(StressQueueTest, NonBlockingFullQueueReportsRejectionNotLoss) {
  // Regression (per PushQueueOptions): a non-blocking enqueue on a full
  // queue must RETURN false, not silently drop. Under a saturating
  // producer/consumer race, accepted == dequeued exactly.
  FjordQueue<int> q(PushQueueOptions(4));
  QueueAccounting acct;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (q.Dequeue().has_value()) acct.dequeued.fetch_add(1);
    }
    DrainRemaining(&q, &acct);
  });
  constexpr int kAttempts = 200000;
  for (int i = 0; i < kAttempts; ++i) {
    if (q.Enqueue(i)) {
      acct.accepted.fetch_add(1);
    } else {
      acct.rejected.fetch_add(1);
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_GT(acct.rejected.load(), 0u);  // The queue really filled up.
  EXPECT_EQ(acct.accepted.load() + acct.rejected.load(),
            static_cast<uint64_t>(kAttempts));
  CheckConservation(q, acct);
}

TEST(StressQueueTest, PushRacingCloseNeverLosesAcceptedElements) {
  // Satellite: Push vs Close() race. Contract: an Enqueue returning true
  // is observable by consumers; one returning false inserted nothing.
  for (uint64_t round = 0; round < 20; ++round) {
    FjordQueue<int> q(ExchangeQueueOptions(64));
    QueueAccounting acct;
    StressRunner runner({/*num_threads=*/3,
                         /*budget=*/std::chrono::milliseconds(10),
                         /*seed=*/round + 1});
    std::atomic<bool> closed{false};
    runner.RunOnce([&](size_t thread, Rng& rng) {
      if (thread == 0) {
        // Close at a random point mid-traffic.
        for (uint64_t spin = rng.NextBounded(5000); spin > 0; --spin) {
        }
        q.Close();
        closed.store(true, std::memory_order_release);
        // After Close, every Enqueue must fail.
        EXPECT_FALSE(q.Enqueue(-1));
      } else {
        for (int i = 0; i < 5000; ++i) {
          if (q.Enqueue(i)) {
            // Accepted: must not have happened after close completed...
            acct.accepted.fetch_add(1);
          } else {
            acct.rejected.fetch_add(1);
            if (closed.load(std::memory_order_acquire)) break;
          }
        }
      }
    });
    DrainRemaining(&q, &acct);
    EXPECT_EQ(acct.accepted.load(), acct.dequeued.load())
        << "round " << round
        << ": accepted tuples silently dropped by the Close race";
  }
}

TEST(StressQueueTest, FaultedQueueUnderContentionConservesAccounting) {
  // Fault hooks fire under the queue lock while real threads race: TSan
  // checks the locking, the math checks conservation (drop is counted,
  // delay is released by Close, reorder moves but never loses).
  FaultInjector fi(1234);
  FaultInjector::QueueFaultProfile profile;
  profile.drop = 0.05;
  profile.delay = 0.05;
  profile.reorder = 0.10;
  QueueOptions opts = ExchangeQueueOptions(32);
  opts.faults = fi.MakeQueueHooks(profile, profile);
  FjordQueue<int> q(opts);
  QueueAccounting acct;

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        if (q.Enqueue(i)) {
          acct.accepted.fetch_add(1);
        } else {
          acct.rejected.fetch_add(1);
        }
      }
    });
  }
  std::thread consumer([&] {
    while (auto v = q.Dequeue()) acct.dequeued.fetch_add(1);
  });
  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();
  DrainRemaining(&q, &acct);
  EXPECT_GT(q.FaultDrops(), 0u);
  EXPECT_EQ(q.DelayedCount(), 0u);  // Close released all delays.
  CheckConservation(q, acct);
}

TEST(StressQueueTest, MixedBatchAndSingleProducersConserve) {
  // Batch and single-element operations race on both ends of one queue:
  // EnqueueBatch/DequeueUpTo must honor the same conservation contract as
  // their per-element forms, under blocking (producers) semantics.
  FjordQueue<int> q(ExchangeQueueOptions(32));
  QueueAccounting acct;
  constexpr int kPerProducer = 20000;
  std::vector<std::thread> producers, consumers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> batch;
      for (int i = 0; i < kPerProducer; ++i) {
        if ((p + i) % 3 == 0) {
          if (q.Enqueue(i)) {
            acct.accepted.fetch_add(1);
          } else {
            acct.rejected.fetch_add(1);
          }
          continue;
        }
        batch.push_back(i);
        if (batch.size() == 16) {
          // Retry the rejected suffix a bounded number of times (it stays
          // in `batch`), then count whatever never made it as rejected.
          for (int retry = 0; retry < 4 && !batch.empty(); ++retry) {
            acct.accepted.fetch_add(q.EnqueueBatch(std::move(batch)));
          }
          acct.rejected.fetch_add(batch.size());
          batch.clear();
        }
      }
      const size_t tail = batch.size();
      const size_t in = q.EnqueueBatch(std::move(batch));
      acct.accepted.fetch_add(in);
      acct.rejected.fetch_add(tail - in);
    });
  }
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&, c] {
      std::vector<int> out;
      while (true) {
        if (c == 0) {
          out.clear();
          const size_t n = q.DequeueUpTo(8, &out);
          if (n == 0) break;  // Closed and drained.
          acct.dequeued.fetch_add(n);
        } else {
          auto v = q.Dequeue();
          if (!v.has_value()) break;
          acct.dequeued.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  DrainRemaining(&q, &acct);
  CheckConservation(q, acct);
}

TEST(StressQueueTest, FaultedBatchOpsUnderContentionConserve) {
  // Fault hooks fire per ELEMENT inside batch operations while threads
  // race — the batch paths must keep the same accounting as singles.
  FaultInjector fi(99);
  FaultInjector::QueueFaultProfile profile;
  profile.drop = 0.05;
  profile.delay = 0.05;
  profile.reorder = 0.10;
  QueueOptions opts = ExchangeQueueOptions(32);
  opts.faults = fi.MakeQueueHooks(profile, profile);
  FjordQueue<int> q(opts);
  QueueAccounting acct;

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      std::vector<int> batch;
      for (int i = 0; i < 20000; ++i) {
        batch.push_back(i);
        if (batch.size() == 8) {
          acct.accepted.fetch_add(q.EnqueueBatch(std::move(batch)));
          batch.clear();  // Rejected suffix counts as rejected.
        }
      }
      acct.accepted.fetch_add(q.EnqueueBatch(std::move(batch)));
    });
  }
  std::thread consumer([&] {
    std::vector<int> out;
    while (true) {
      out.clear();
      const size_t n = q.DequeueUpTo(8, &out);
      if (n == 0) break;
      acct.dequeued.fetch_add(n);
    }
  });
  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();
  DrainRemaining(&q, &acct);
  EXPECT_GT(q.FaultDrops(), 0u);
  EXPECT_EQ(q.DelayedCount(), 0u);  // Close released all delays.
  CheckConservation(q, acct);
}

TEST(StressQueueTest, RandomizedMixedOpsInterleavings) {
  // StressRunner drives a random mix of operations against one queue from
  // several threads under a small time budget — a scattershot of
  // interleavings for the sanitizers to chew on.
  FjordQueue<int> q(PushQueueOptions(16));
  QueueAccounting acct;
  StressRunner runner(
      {/*num_threads=*/4, /*budget=*/std::chrono::milliseconds(150),
       /*seed=*/7});
  const uint64_t iterations = runner.Run([&](size_t, Rng& rng) {
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2:
        if (q.Enqueue(static_cast<int>(rng.NextBounded(1000)))) {
          acct.accepted.fetch_add(1);
        }
        break;
      case 3:
      case 4:
      case 5:
        if (q.Dequeue().has_value()) acct.dequeued.fetch_add(1);
        break;
      case 6:
        q.Size();
        q.Empty();
        break;
      default:
        q.Exhausted();
        q.DroppedCount();
        break;
    }
  });
  EXPECT_GT(iterations, 0u);
  DrainRemaining(&q, &acct);
  CheckConservation(q, acct);
}

}  // namespace
}  // namespace tcq
