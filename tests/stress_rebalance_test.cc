// Concurrency stress for online bucket migration: real producer threads
// pushing through the exchange while a controller thread migrates buckets
// back and forth, with quiesce barriers and eviction mixed in. Run under
// -DTCQ_SANITIZE=thread in CI; the assertions are conservation laws that
// hold whatever the interleaving — a migration must never lose, duplicate
// or strand a tuple, whether it was in a queue, in stored SteM state, or
// parked in the pause buffer mid-move.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cacq/sharded_engine.h"
#include "core/server.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

TEST(StressRebalanceTest, MigrationsUnderConcurrentProducers) {
  constexpr size_t kShards = 4;
  constexpr size_t kBuckets = 8;
  constexpr size_t kProducers = 3;
  constexpr size_t kBatches = 40;
  constexpr size_t kBatchSize = 32;

  ShardedEngine::Options opts;
  opts.num_shards = kShards;
  opts.num_buckets = kBuckets;
  opts.input_capacity = 16;  // Small: migrations race backpressured pushes.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("A", KV(), 0).ok());
  ASSERT_TRUE(engine.AddStream("B", KV(), 0).ok());

  std::atomic<uint64_t> a_hits{0};
  QueryId see_all_a = 0;
  engine.SetSink([&](std::vector<ShardedEngine::Emission>&& batch) {
    for (const auto& [q, t] : batch) {
      if (q == see_all_a) a_hits.fetch_add(1, std::memory_order_relaxed);
    }
  });
  engine.Start();

  // Registered before any data: must see every A tuple exactly once, no
  // matter how many migrations its bucket rode through.
  CacqQuerySpec see_all;
  see_all.sources = {"A"};
  auto q = engine.AddQuery(see_all);
  ASSERT_TRUE(q.ok());
  see_all_a = *q;
  // A stateful join, so migrations move live SteM entries while both
  // sides keep arriving (its emission count is order-dependent across
  // evictions; the race coverage is what matters here).
  CacqQuerySpec join;
  join.sources = {"A", "B"};
  join.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  ASSERT_TRUE(engine.AddQuery(join).ok());

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      const std::string stream = p == 0 ? "B" : "A";
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Tuple> batch;
        batch.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          const auto n = static_cast<int64_t>(b * kBatchSize + i);
          batch.push_back(KVTuple(n % 23, static_cast<int64_t>(p), n + 1));
        }
        ASSERT_TRUE(engine.PushBatch(stream, std::move(batch)).ok());
      }
    });
  }

  // The "controller": migrate every bucket round-robin across the shards
  // while data flows, with barriers and eviction interleaved.
  std::thread migrator([&] {
    for (int round = 0; round < 60; ++round) {
      const size_t bucket = static_cast<size_t>(round) % kBuckets;
      const size_t to =
          (engine.partition_map().ShardOf(bucket) + 1) % kShards;
      ASSERT_TRUE(engine.MigrateBucket(bucket, to).ok());
      if (round % 7 == 3) engine.EvictBefore(static_cast<Timestamp>(round));
      if (round % 10 == 5) engine.Quiesce();
    }
  });

  for (auto& t : producers) t.join();
  migrator.join();
  engine.Quiesce();

  const uint64_t per_stream = kBatches * kBatchSize;
  const uint64_t total = kProducers * per_stream;
  EXPECT_EQ(a_hits.load(), (kProducers - 1) * per_stream);

  // Conservation across the exchange: every routed tuple was processed
  // somewhere — including tuples parked in a pause buffer and replayed to
  // the bucket's new owner — and nothing is left queued after the barrier.
  uint64_t routed = 0, processed = 0;
  for (const ShardedEngine::ShardStats& s : engine.shard_stats()) {
    routed += s.routed;
    processed += s.processed;
    EXPECT_EQ(s.queue_depth, 0u);
  }
  EXPECT_EQ(routed, total);
  EXPECT_EQ(processed, total);
  engine.Stop();
  EXPECT_EQ(a_hits.load(), (kProducers - 1) * per_stream);
}

TEST(StressRebalanceTest, AutoControllerAgainstConcurrentClients) {
  // The live controller thread at a hot cadence, racing server clients:
  // producers, query churn, snapshots and manual Rebalance calls (which
  // contend for the same migration lock the controller uses).
  Server::Options opts;
  opts.cacq_shards = 4;
  opts.cacq_buckets = 8;
  opts.auto_rebalance = true;
  opts.rebalance.poll_interval_ms = 1;
  opts.rebalance.min_backlog = 8;
  opts.rebalance.cooldown_polls = 0;
  Server server(opts);
  ASSERT_TRUE(server
                  .DefineStream("S", KV(), /*timestamp_field=*/-1,
                                /*partition_field=*/0)
                  .ok());

  std::atomic<uint64_t> delivered{0};
  auto q = server.Submit("SELECT v FROM S WHERE k >= 0");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(server
                  .SetCallback(*q,
                               [&](const ResultSet& rs) {
                                 delivered.fetch_add(
                                     rs.rows.size(),
                                     std::memory_order_relaxed);
                               })
                  .ok());

  constexpr size_t kProducers = 3;
  constexpr size_t kBatches = 40;
  constexpr size_t kBatchSize = 25;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&server, p] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Tuple> batch;
        for (size_t i = 0; i < kBatchSize; ++i) {
          // Skewed keys, so the controller has something real to chase.
          batch.push_back(KVTuple(static_cast<int64_t>(i % 3),
                                  static_cast<int64_t>(p), 0));
        }
        ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());
      }
    });
  }
  threads.emplace_back([&server] {
    for (int round = 0; round < 12; ++round) {
      const Status s =
          server.Rebalance("S", static_cast<size_t>(round) % 8,
                           static_cast<size_t>(round) % 4);
      ASSERT_TRUE(s.ok()) << s;
      const std::string snap = server.SnapshotMetrics();
      EXPECT_NE(snap.find("\"shards\""), std::string::npos);
      server.Quiesce();
    }
  });
  for (auto& t : threads) t.join();

  server.Quiesce();
  EXPECT_EQ(delivered.load(), kProducers * kBatches * kBatchSize);
}

}  // namespace
}  // namespace tcq
