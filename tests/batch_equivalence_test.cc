// Batch-vs-single equivalence: the batch fast paths (Eddy::InjectBatch,
// Server::PushBatch) amortize locks, lookups and routing decisions, but the
// §2.2 routing-invariance obligation says the RESULT SET must be exactly
// what per-tuple injection produces — whatever the schedule, policy seed or
// batch boundary. ScheduleExplorer drives the schedule dimensions.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/server.h"
#include "eddy/eddy.h"
#include "eddy/operators.h"
#include "ingress/sources.h"
#include "testing/schedule_explorer.h"

namespace tcq {
namespace {

// ---- Eddy routing equivalence ---------------------------------------------

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, 0);
}

struct EddyRun {
  std::string fingerprint;
  uint64_t decisions = 0;
  uint64_t visits = 0;
  uint64_t scratch_allocs = 0;
};

/// Builds a three-filter eddy with operators registered in `order`, routes
/// 60 tuples either singly or in `chunk`-sized batches, and fingerprints
/// the emitted result set (sorted, so routing order is irrelevant).
EddyRun RunFilterEddy(const ScheduleExplorer::Schedule& schedule,
                      size_t chunk) {
  SourceLayout layout;
  const size_t s = layout.AddSource("s", KV());
  SmallBitset source_set(layout.num_sources());
  source_set.Set(s);
  Eddy eddy(&layout, MakePolicy("lottery", schedule.trial_seed + 1));

  auto bind = [&](ExprPtr e) {
    auto bound = e->Bind(*layout.full_schema());
    EXPECT_TRUE(bound.ok()) << bound.status();
    return *bound;
  };
  std::vector<EddyOperatorPtr> filters = {
      std::make_shared<FilterOp>(
          "k>10", bind(Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                                    Expr::Literal(Value::Int64(10)))),
          source_set),
      std::make_shared<FilterOp>(
          "k<40", bind(Expr::Binary(BinaryOp::kLt, Expr::Column("k"),
                                    Expr::Literal(Value::Int64(40)))),
          source_set),
      std::make_shared<FilterOp>(
          "k%3", bind(Expr::Binary(
                     BinaryOp::kEq,
                     Expr::Binary(BinaryOp::kMod, Expr::Column("k"),
                                  Expr::Literal(Value::Int64(3))),
                     Expr::Literal(Value::Int64(0)))),
          source_set)};
  for (size_t i : schedule.order) eddy.AddOperator(filters[i]);

  std::vector<std::string> out;
  eddy.SetSink([&](RoutedTuple&& rt) { out.push_back(rt.tuple.ToString()); });

  std::vector<Tuple> batch;
  for (int64_t k = 0; k < 60; ++k) {
    if (chunk <= 1) {
      eddy.Inject(s, KVTuple(k, k * 7));
      eddy.Drain();
      continue;
    }
    batch.push_back(KVTuple(k, k * 7));
    if (batch.size() == chunk) {
      eddy.InjectBatch(s, batch);
      eddy.Drain();
      batch.clear();
    }
  }
  if (!batch.empty()) {
    eddy.InjectBatch(s, batch);
    eddy.Drain();
  }

  std::sort(out.begin(), out.end());
  std::ostringstream fp;
  for (const std::string& t : out) fp << t << "\n";
  return {fp.str(), eddy.decisions(), eddy.visits(), eddy.scratch_allocs()};
}

TEST(BatchEquivalenceTest, EddyBatchRoutingMatchesSingleAcrossSchedules) {
  // >= 10 explorer seeds, each exploring several (operator order, quantum,
  // policy seed) schedules; the quantum doubles as the batch chunk size.
  uint64_t single_decisions = 0;
  uint64_t batched_decisions = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleExplorer explorer(seed);
    auto common = explorer.Explore(
        /*num_modules=*/3, [&](const ScheduleExplorer::Schedule& schedule) {
          EddyRun single = RunFilterEddy(schedule, /*chunk=*/1);
          EddyRun batched = RunFilterEddy(schedule, schedule.quantum);
          // The §2.2 obligation: identical result SETS. Routing paths (and
          // so visit counts) may legitimately differ between schedules.
          EXPECT_EQ(single.fingerprint, batched.fingerprint)
              << "seed " << seed << ", "
              << ScheduleExplorer::Describe(schedule);
          single_decisions += single.decisions;
          batched_decisions += batched.decisions;
          return batched.fingerprint;
        });
    ASSERT_TRUE(common.ok()) << common.status();
    EXPECT_FALSE(common->empty());
  }
  // Across all schedules the batch decision cache must pay for itself.
  EXPECT_LT(batched_decisions, single_decisions);
}

TEST(BatchEquivalenceTest, EddyScratchBuffersStopAllocating) {
  // Satellite: per-hop eligibility/ranking scratch is reused, so buffer
  // growth is bounded by the operator count, not the tuple count.
  ScheduleExplorer::Schedule schedule;
  schedule.order = {0, 1, 2};
  EddyRun run = RunFilterEddy(schedule, /*chunk=*/8);
  EXPECT_GT(run.visits, 60u);
  EXPECT_LE(run.scratch_allocs, 8u)
      << "per-hop scratch should reach steady state after a few hops";
}

// ---- Server ingest equivalence --------------------------------------------

Tuple Stock(int64_t day, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(day), Value::String(sym), Value::Double(price)}, day);
}

/// A server with standing CACQ filters and one windowed aggregate; the mix
/// exercises both ingest consumers (shared eddy and windowed runners).
struct ServerFixture {
  Server server;
  std::vector<QueryId> queries;

  ServerFixture() {
    EXPECT_TRUE(server
                    .DefineStream("ClosingStockPrices",
                                  StockTickerSource::MakeSchema(),
                                  /*timestamp_field=*/0)
                    .ok());
    auto add = [&](const std::string& sql) {
      auto q = server.Submit(sql);
      EXPECT_TRUE(q.ok()) << q.status();
      queries.push_back(*q);
    };
    add("SELECT closingPrice FROM ClosingStockPrices "
        "WHERE stockSymbol = 'MSFT' AND closingPrice > 45");
    add("SELECT timestamp FROM ClosingStockPrices WHERE closingPrice < 44");
    add("SELECT AVG(closingPrice) FROM ClosingStockPrices "
        "for (t = ST; true; t += 5) { "
        "WindowIs(ClosingStockPrices, t - 4, t); }");
  }

  std::string Fingerprint() {
    std::ostringstream fp;
    for (QueryId q : queries) {
      fp << "q" << q << ":";
      for (const ResultSet& rs : server.PollAll(q)) {
        for (const Tuple& row : rs.rows) fp << row.ToString() << ";";
      }
      fp << "\n";
    }
    return fp.str();
  }
};

std::vector<Tuple> MakeFeed(int64_t days) {
  std::vector<Tuple> feed;
  const char* symbols[] = {"MSFT", "IBM", "ORCL"};
  for (int64_t d = 1; d <= days; ++d) {
    for (const char* sym : symbols) {
      feed.push_back(Stock(d, sym, 40.0 + ((d * 3 + sym[0]) % 10)));
    }
  }
  return feed;
}

TEST(BatchEquivalenceTest, ServerPushBatchMatchesPushLoop) {
  const std::vector<Tuple> feed = MakeFeed(/*days=*/30);

  ServerFixture singly;
  for (const Tuple& t : feed) {
    ASSERT_TRUE(singly.server.Push("ClosingStockPrices", t).ok());
  }
  const std::string expected = singly.Fingerprint();
  EXPECT_NE(expected.find("q0:"), std::string::npos);

  for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}, size_t{64},
                       feed.size()}) {
    ServerFixture batched;
    for (size_t at = 0; at < feed.size(); at += chunk) {
      const size_t n = std::min(chunk, feed.size() - at);
      std::vector<Tuple> batch(feed.begin() + static_cast<ptrdiff_t>(at),
                               feed.begin() + static_cast<ptrdiff_t>(at + n));
      size_t rejected = 0;
      ASSERT_TRUE(batched.server
                      .PushBatch("ClosingStockPrices", std::move(batch),
                                 &rejected)
                      .ok());
      EXPECT_EQ(rejected, 0u);
    }
    EXPECT_EQ(batched.Fingerprint(), expected) << "chunk=" << chunk;
  }
}

TEST(BatchEquivalenceTest, PushBatchSkipsAndCountsInvalidTuples) {
  ServerFixture fx;
  std::vector<Tuple> batch = {
      Stock(5, "MSFT", 50.0),
      Stock(3, "MSFT", 50.0),  // Out of order: rejected, not fatal.
      Stock(6, "MSFT", 50.0),
      Tuple::Make({Value::Int64(7)}, 7),  // Arity mismatch: rejected.
      Stock(8, "MSFT", 50.0),
  };
  size_t rejected = 0;
  ASSERT_TRUE(
      fx.server.PushBatch("ClosingStockPrices", std::move(batch), &rejected)
          .ok());
  EXPECT_EQ(rejected, 2u);

  // Without the rejection sink, the valid prefix lands and the first
  // error comes back — the same contract as a Push loop that stops there.
  std::vector<Tuple> tail = {Stock(9, "MSFT", 50.0), Stock(4, "MSFT", 50.0),
                             Stock(10, "MSFT", 50.0)};
  EXPECT_FALSE(
      fx.server.PushBatch("ClosingStockPrices", std::move(tail)).ok());
  EXPECT_TRUE(
      fx.server.Push("ClosingStockPrices", Stock(11, "MSFT", 50.0)).ok());

  // Every accepted day (5,6,8,9,11) reached the CACQ filter exactly once.
  std::ostringstream days;
  for (const ResultSet& rs : fx.server.PollAll(fx.queries[0])) {
    for (size_t i = 0; i < rs.rows.size(); ++i) days << rs.t << ",";
  }
  EXPECT_EQ(days.str(), "5,6,8,9,11,");
}

TEST(BatchEquivalenceTest, PushBatchUnknownStreamFails) {
  ServerFixture fx;
  size_t rejected = 0;
  EXPECT_FALSE(
      fx.server.PushBatch("NoSuchStream", {Stock(1, "MSFT", 1.0)}, &rejected)
          .ok());
  EXPECT_EQ(rejected, 0u);
}

}  // namespace
}  // namespace tcq
