#include "cacq/shared_stem.h"

#include <gtest/gtest.h>

#include <map>

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple Row(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

SmallBitset Queries(std::initializer_list<size_t> ids, size_t n = 8) {
  SmallBitset b(n);
  for (size_t i : ids) b.Set(i);
  return b;
}

TEST(SharedSteMTest, StoresLineageWithTuples) {
  SharedSteM stem("s", KV(), /*key_field=*/0);
  stem.Insert(Row(1, 10, 1), Queries({0, 2}));
  stem.Insert(Row(1, 11, 2), Queries({1}));

  // Probe order over equal keys is unspecified: match lineage by value.
  std::map<int64_t, SmallBitset> lineages;
  Value key = Value::Int64(1);
  stem.ProbeCollect(&key, kMinTimestamp, kMaxTimestamp,
                    [&](const Tuple& t, const SmallBitset& q) {
                      lineages.emplace(t.cell(1).int64_value(), q);
                    });
  ASSERT_EQ(lineages.size(), 2u);
  EXPECT_TRUE(lineages.at(10).Test(0));
  EXPECT_TRUE(lineages.at(10).Test(2));
  EXPECT_FALSE(lineages.at(10).Test(1));
  EXPECT_TRUE(lineages.at(11).Test(1));
}

TEST(SharedSteMTest, KeyedProbeFiltersByKey) {
  SharedSteM stem("s", KV(), 0);
  stem.Insert(Row(1, 10, 1), Queries({0}));
  stem.Insert(Row(2, 20, 2), Queries({0}));
  int hits = 0;
  Value key = Value::Int64(2);
  stem.ProbeCollect(&key, kMinTimestamp, kMaxTimestamp,
                    [&](const Tuple& t, const SmallBitset&) {
                      EXPECT_EQ(t.cell(1).int64_value(), 20);
                      ++hits;
                    });
  EXPECT_EQ(hits, 1);
}

TEST(SharedSteMTest, NullKeyScansEverything) {
  SharedSteM stem("s", KV(), 0);
  stem.Insert(Row(1, 10, 1), Queries({0}));
  stem.Insert(Row(2, 20, 2), Queries({0}));
  int hits = 0;
  stem.ProbeCollect(nullptr, kMinTimestamp, kMaxTimestamp,
                    [&](const Tuple&, const SmallBitset&) { ++hits; });
  EXPECT_EQ(hits, 2);
}

TEST(SharedSteMTest, WindowRestrictsProbe) {
  SharedSteM stem("s", KV(), 0);
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    stem.Insert(Row(1, ts, ts), Queries({0}));
  }
  int hits = 0;
  Value key = Value::Int64(1);
  stem.ProbeCollect(&key, 4, 6,
                    [&](const Tuple&, const SmallBitset&) { ++hits; });
  EXPECT_EQ(hits, 3);
}

TEST(SharedSteMTest, EvictBefore) {
  SharedSteM stem("s", KV(), 0);
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    stem.Insert(Row(1, ts, ts), Queries({0}));
  }
  EXPECT_EQ(stem.EvictBefore(6), 5u);
  EXPECT_EQ(stem.size(), 5u);
  int hits = 0;
  Value key = Value::Int64(1);
  stem.ProbeCollect(&key, kMinTimestamp, kMaxTimestamp,
                    [&](const Tuple& t, const SmallBitset&) {
                      EXPECT_GE(t.timestamp(), 6);
                      ++hits;
                    });
  EXPECT_EQ(hits, 5);
}

TEST(SharedSteMTest, ScrubQueryClearsBitEverywhere) {
  SharedSteM stem("s", KV(), 0);
  stem.Insert(Row(1, 10, 1), Queries({0, 1}));
  stem.Insert(Row(2, 20, 2), Queries({1, 2}));
  stem.ScrubQuery(1);
  stem.ProbeCollect(nullptr, kMinTimestamp, kMaxTimestamp,
                    [&](const Tuple&, const SmallBitset& q) {
                      EXPECT_FALSE(q.Test(1));
                    });
}

TEST(SharedSteMTest, StatsCountProbesAndScans) {
  SharedSteM stem("s", KV(), 0);
  stem.Insert(Row(1, 1, 1), Queries({0}));
  Value key = Value::Int64(1);
  stem.ProbeCollect(&key, kMinTimestamp, kMaxTimestamp,
                    [](const Tuple&, const SmallBitset&) {});
  stem.ProbeCollect(nullptr, kMinTimestamp, kMaxTimestamp,
                    [](const Tuple&, const SmallBitset&) {});
  EXPECT_EQ(stem.probes(), 2u);
  EXPECT_EQ(stem.scanned(), 2u);
}

}  // namespace
}  // namespace tcq
