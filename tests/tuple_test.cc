#include "tuple/tuple.h"

#include <gtest/gtest.h>

#include <utility>

namespace tcq {
namespace {

Tuple StockTuple(int64_t ts, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(ts), Value::String(sym), Value::Double(price)}, ts);
}

TEST(TupleTest, EmptyTuple) {
  Tuple t;
  EXPECT_EQ(t.arity(), 0u);
  EXPECT_EQ(t.timestamp(), 0);
}

TEST(TupleTest, CellsAndTimestamp) {
  Tuple t = StockTuple(5, "MSFT", 51.5);
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t.cell(0).int64_value(), 5);
  EXPECT_EQ(t.cell(1).string_value(), "MSFT");
  EXPECT_DOUBLE_EQ(t.cell(2).double_value(), 51.5);
  EXPECT_EQ(t.timestamp(), 5);
}

TEST(TupleTest, CopiesShareCells) {
  Tuple a = StockTuple(1, "A", 1.0);
  Tuple b = a;
  EXPECT_EQ(a.cells().data(), b.cells().data());
  b.set_timestamp(99);
  EXPECT_EQ(a.timestamp(), 1);  // Timestamp is per-instance.
}

TEST(TupleTest, MovedFromTupleIsValidEmpty) {
  // Moved-from tuples must stay safe to read: arity 0, no cells — never
  // a nonzero size over a null block. Queue/vector shuffles on the hot
  // path rely on this.
  Tuple a = StockTuple(4, "A", 2.0);
  Tuple b = std::move(a);
  EXPECT_EQ(b.arity(), 3u);
  EXPECT_EQ(b.cell(1).string_value(), "A");
  EXPECT_EQ(a.arity(), 0u);  // NOLINT(bugprone-use-after-move): the contract.
  EXPECT_TRUE(a.cells().empty());

  Tuple c;
  c = std::move(b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(b.arity(), 0u);  // NOLINT(bugprone-use-after-move): the contract.
  EXPECT_TRUE(b.cells().empty());
}

TEST(TupleTest, ConcatAppendsAndTakesMaxTimestamp) {
  Tuple a = StockTuple(3, "A", 1.0);
  Tuple b = StockTuple(7, "B", 2.0);
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.arity(), 6u);
  EXPECT_EQ(c.cell(1).string_value(), "A");
  EXPECT_EQ(c.cell(4).string_value(), "B");
  EXPECT_EQ(c.timestamp(), 7);
}

TEST(TupleTest, ProjectSelectsAndReorders) {
  Tuple t = StockTuple(2, "MSFT", 60.0);
  Tuple p = t.Project({2, 0});
  EXPECT_EQ(p.arity(), 2u);
  EXPECT_DOUBLE_EQ(p.cell(0).double_value(), 60.0);
  EXPECT_EQ(p.cell(1).int64_value(), 2);
  EXPECT_EQ(p.timestamp(), 2);
}

TEST(TupleTest, EqualityComparesCellsAndTimestamp) {
  EXPECT_EQ(StockTuple(1, "A", 1.0), StockTuple(1, "A", 1.0));
  EXPECT_FALSE(StockTuple(1, "A", 1.0) == StockTuple(2, "A", 1.0));
  EXPECT_FALSE(StockTuple(1, "A", 1.0) == StockTuple(1, "B", 1.0));
}

TEST(TupleTest, ToStringShowsCellsAndTimestamp) {
  const std::string s = StockTuple(4, "IBM", 10.0).ToString();
  EXPECT_NE(s.find("'IBM'"), std::string::npos);
  EXPECT_NE(s.find("@4"), std::string::npos);
}

}  // namespace
}  // namespace tcq
