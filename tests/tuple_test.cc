#include "tuple/tuple.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

Tuple StockTuple(int64_t ts, const std::string& sym, double price) {
  return Tuple::Make(
      {Value::Int64(ts), Value::String(sym), Value::Double(price)}, ts);
}

TEST(TupleTest, EmptyTuple) {
  Tuple t;
  EXPECT_EQ(t.arity(), 0u);
  EXPECT_EQ(t.timestamp(), 0);
}

TEST(TupleTest, CellsAndTimestamp) {
  Tuple t = StockTuple(5, "MSFT", 51.5);
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t.cell(0).int64_value(), 5);
  EXPECT_EQ(t.cell(1).string_value(), "MSFT");
  EXPECT_DOUBLE_EQ(t.cell(2).double_value(), 51.5);
  EXPECT_EQ(t.timestamp(), 5);
}

TEST(TupleTest, CopiesShareCells) {
  Tuple a = StockTuple(1, "A", 1.0);
  Tuple b = a;
  EXPECT_EQ(a.cells().data(), b.cells().data());
  b.set_timestamp(99);
  EXPECT_EQ(a.timestamp(), 1);  // Timestamp is per-instance.
}

TEST(TupleTest, ConcatAppendsAndTakesMaxTimestamp) {
  Tuple a = StockTuple(3, "A", 1.0);
  Tuple b = StockTuple(7, "B", 2.0);
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.arity(), 6u);
  EXPECT_EQ(c.cell(1).string_value(), "A");
  EXPECT_EQ(c.cell(4).string_value(), "B");
  EXPECT_EQ(c.timestamp(), 7);
}

TEST(TupleTest, ProjectSelectsAndReorders) {
  Tuple t = StockTuple(2, "MSFT", 60.0);
  Tuple p = t.Project({2, 0});
  EXPECT_EQ(p.arity(), 2u);
  EXPECT_DOUBLE_EQ(p.cell(0).double_value(), 60.0);
  EXPECT_EQ(p.cell(1).int64_value(), 2);
  EXPECT_EQ(p.timestamp(), 2);
}

TEST(TupleTest, EqualityComparesCellsAndTimestamp) {
  EXPECT_EQ(StockTuple(1, "A", 1.0), StockTuple(1, "A", 1.0));
  EXPECT_FALSE(StockTuple(1, "A", 1.0) == StockTuple(2, "A", 1.0));
  EXPECT_FALSE(StockTuple(1, "A", 1.0) == StockTuple(1, "B", 1.0));
}

TEST(TupleTest, ToStringShowsCellsAndTimestamp) {
  const std::string s = StockTuple(4, "IBM", 10.0).ToString();
  EXPECT_NE(s.find("'IBM'"), std::string::npos);
  EXPECT_NE(s.find("@4"), std::string::npos);
}

}  // namespace
}  // namespace tcq
