// Concurrency stress for process-pair failover: real producer threads
// pushing through the exchange while one thread repeatedly kills and
// promotes shards and another migrates buckets, with quiesce barriers and
// eviction mixed in. Run under -DTCQ_SANITIZE=thread in CI; the
// assertions are the shared conservation laws (tests/conservation.h) that
// hold whatever the interleaving — a failover must never lose, duplicate
// or strand a tuple, whether it was queued on the dead primary, parked in
// a migration pause buffer, or only present in the changelog.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cacq/sharded_engine.h"
#include "conservation.h"
#include "core/server.h"
#include "testing/crash_injector.h"

namespace tcq {
namespace {

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64, ""}, {"v", ValueType::kInt64, ""}});
}

Tuple KVTuple(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make({Value::Int64(k), Value::Int64(v)}, ts);
}

TEST(StressFailoverTest, FailoversAgainstProducersAndMigrations) {
  constexpr size_t kShards = 4;
  constexpr size_t kBuckets = 8;
  constexpr size_t kProducers = 3;
  constexpr size_t kBatches = 40;
  constexpr size_t kBatchSize = 32;
  constexpr size_t kFailovers = 12;

  ShardedEngine::Options opts;
  opts.num_shards = kShards;
  opts.num_buckets = kBuckets;
  opts.num_replicas = 1;
  opts.checkpoint_interval = 8;  // Recoveries mix snapshots + log tails.
  opts.input_capacity = 16;      // Small: kills race backpressured pushes.
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.AddStream("A", KV(), 0).ok());
  ASSERT_TRUE(engine.AddStream("B", KV(), 0).ok());

  EmissionLedger ledger;
  engine.SetSink(ledger.MakeSink());
  engine.Start();
  // tcq.ha.* counters are process-global; assert on the delta.
  const uint64_t failovers_before = engine.ha_stats().failovers;

  // All queries are registered before the first kill: promotion rebuilds
  // registrations from query history, which assumes AddQuery never races
  // a dead primary (DESIGN.md §13 limitations).
  CacqQuerySpec see_all;
  see_all.sources = {"A"};
  auto q = engine.AddQuery(see_all);
  ASSERT_TRUE(q.ok());
  const QueryId see_all_a = *q;
  CacqQuerySpec join;
  join.sources = {"A", "B"};
  join.where = Expr::Binary(BinaryOp::kEq, Expr::Column("A.k"),
                            Expr::Column("B.k"));
  ASSERT_TRUE(engine.AddQuery(join).ok());

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      const std::string stream = p == 0 ? "B" : "A";
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Tuple> batch;
        batch.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          const auto n = static_cast<int64_t>(b * kBatchSize + i);
          batch.push_back(KVTuple(n % 23, static_cast<int64_t>(p), n + 1));
        }
        ASSERT_TRUE(engine.PushBatch(stream, std::move(batch)).ok());
      }
    });
  }

  // The killer: sequential kill/promote cycles over every shard, racing
  // the producers (who block on the dead primary's backpressure until the
  // promotion drains it) and the migrator (who contends for the same
  // migration lock).
  std::thread killer([&engine] {
    for (size_t round = 0; round < kFailovers; ++round) {
      CrashInjector::CrashAndRecover(&engine, round % kShards);
    }
  });

  // The migrator: rotating bucket moves. A move whose barrier lands on a
  // freshly-killed primary fails Unavailable and rolls back — that path
  // (pause-buffer replay onto a dead shard) is exactly what we want to
  // race here, so tolerate the status and keep going.
  std::thread migrator([&engine] {
    for (int round = 0; round < 40; ++round) {
      const size_t bucket = static_cast<size_t>(round) % kBuckets;
      const size_t to =
          (engine.partition_map().ShardOf(bucket) + 1) % kShards;
      const Status moved = engine.MigrateBucket(bucket, to);
      EXPECT_TRUE(moved.ok() || moved.code() == StatusCode::kUnavailable)
          << moved.ToString();
      if (round % 7 == 3) engine.EvictBefore(static_cast<Timestamp>(round));
      if (round % 10 == 5) {
        const Status st = engine.Quiesce();
        EXPECT_TRUE(st.ok() || st.code() == StatusCode::kUnavailable)
            << st.ToString();
      }
    }
  });

  for (auto& t : producers) t.join();
  killer.join();
  migrator.join();
  // Every shard is alive again (the killer always promotes), so the final
  // barrier must succeed outright.
  ASSERT_TRUE(engine.Quiesce().ok());

  const uint64_t per_stream = kBatches * kBatchSize;
  const uint64_t total = kProducers * per_stream;
  EXPECT_EQ(ledger.hits(see_all_a), (kProducers - 1) * per_stream);
  ExpectExchangeConservation(engine, total);

  const auto ha = engine.ha_stats();
  EXPECT_EQ(ha.failovers - failovers_before, kFailovers);
  for (const auto& r : engine.replica_stats()) {
    EXPECT_TRUE(r.alive);
    EXPECT_GE(r.logged_lsn, r.applied_lsn);
  }
  engine.Stop();
  EXPECT_EQ(ledger.hits(see_all_a), (kProducers - 1) * per_stream);
}

TEST(StressFailoverTest, ServerWithReplicationUnderConcurrentClients) {
  // The server wiring for cacq_replicas: changelog/checkpoint overhead
  // rides every push, and SnapshotMetrics serves replica rows while
  // producers and the metrics pump race it.
  Server::Options opts;
  opts.cacq_shards = 4;
  opts.cacq_replicas = 1;
  Server server(opts);
  ASSERT_TRUE(server
                  .DefineStream("S", KV(), /*timestamp_field=*/-1,
                                /*partition_field=*/0)
                  .ok());

  std::atomic<uint64_t> delivered{0};
  auto q = server.Submit("SELECT v FROM S WHERE k >= 0");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(server
                  .SetCallback(*q,
                               [&](const ResultSet& rs) {
                                 delivered.fetch_add(
                                     rs.rows.size(),
                                     std::memory_order_relaxed);
                               })
                  .ok());

  constexpr size_t kProducers = 3;
  constexpr size_t kBatches = 40;
  constexpr size_t kBatchSize = 25;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&server, p] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Tuple> batch;
        for (size_t i = 0; i < kBatchSize; ++i) {
          batch.push_back(KVTuple(static_cast<int64_t>(i % 13),
                                  static_cast<int64_t>(p), 0));
        }
        ASSERT_TRUE(server.PushBatch("S", std::move(batch)).ok());
      }
    });
  }
  threads.emplace_back([&server] {
    for (int round = 0; round < 15; ++round) {
      const std::string snap = server.SnapshotMetrics();
      EXPECT_NE(snap.find("\"replicas\""), std::string::npos);
      server.PumpMetrics();
      server.Quiesce();
    }
  });
  for (auto& t : threads) t.join();

  server.Quiesce();
  EXPECT_EQ(delivered.load(), kProducers * kBatches * kBatchSize);
}

}  // namespace
}  // namespace tcq
