#include "common/clock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace tcq {
namespace {

TEST(LogicalClockTest, ConsecutiveFromStart) {
  LogicalClock clock;  // Paper: sequence numbers start at 1.
  EXPECT_EQ(clock.Peek(), 1);
  EXPECT_EQ(clock.Tick(), 1);
  EXPECT_EQ(clock.Tick(), 2);
  EXPECT_EQ(clock.Tick(), 3);
  EXPECT_EQ(clock.Peek(), 4);
}

TEST(LogicalClockTest, CustomStart) {
  LogicalClock clock(100);
  EXPECT_EQ(clock.Tick(), 100);
  EXPECT_EQ(clock.Tick(), 101);
}

TEST(LogicalClockTest, ConcurrentTicksAreUniqueAndGapless) {
  LogicalClock clock;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<Timestamp>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&clock, &seen, i] {
      seen[i].reserve(kPerThread);
      for (int j = 0; j < kPerThread; ++j) seen[i].push_back(clock.Tick());
    });
  }
  for (auto& t : threads) t.join();

  std::vector<Timestamp> all;
  for (auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<Timestamp>(i + 1));  // Unique, no gaps.
  }
}

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  EXPECT_TRUE(clock.AdvanceTo(50));
  EXPECT_EQ(clock.Now(), 50);
  clock.AdvanceBy(25);
  EXPECT_EQ(clock.Now(), 75);
}

TEST(VirtualClockTest, BackwardsAdvanceToIsRejected) {
  VirtualClock clock;
  ASSERT_TRUE(clock.AdvanceTo(100));
  EXPECT_FALSE(clock.AdvanceTo(40));   // Behind: rejected, clock unmoved.
  EXPECT_EQ(clock.Now(), 100);
  EXPECT_FALSE(clock.AdvanceTo(100));  // Equal: no-op.
  EXPECT_EQ(clock.Now(), 100);
  EXPECT_TRUE(clock.AdvanceTo(101));
  EXPECT_EQ(clock.Now(), 101);
}

TEST(VirtualClockTest, NegativeAdvanceByIsClamped) {
  VirtualClock clock;
  clock.AdvanceBy(10);
  clock.AdvanceBy(-7);  // Monotonicity: rewinds are ignored.
  EXPECT_EQ(clock.Now(), 10);
  clock.AdvanceBy(0);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(VirtualClockTest, ConcurrentAdvanceToIsMonotonic) {
  VirtualClock clock;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&clock, i] {
      for (Timestamp t = i; t < 4000; t += kThreads) {
        clock.AdvanceTo(t);
        // An observer never sees time at least briefly reached recede.
        EXPECT_GE(clock.Now(), t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.Now(), 3999);
}

TEST(PhysicalClockTest, NonDecreasing) {
  Timestamp prev = PhysicalNowMicros();
  for (int i = 0; i < 1000; ++i) {
    const Timestamp now = PhysicalNowMicros();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace tcq
