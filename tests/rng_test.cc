#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcq {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of uniform [0,1) ~ 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewConcentratesOnLowRanks) {
  Rng rng(5);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(n, 1.2)];
  // Rank 0 must dominate the tail under heavy skew.
  EXPECT_GT(counts[0], counts[50] * 5);
  // All samples in range (counts vector indexing would have thrown).
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(5);
  const uint64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(n, 0.0)];
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i] / 20000.0, 0.1, 0.03);
  }
}

TEST(RngTest, SeedResetsStream) {
  Rng rng(9);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(9);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace tcq
