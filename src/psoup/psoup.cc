#include "psoup/psoup.h"

#include <algorithm>

#include "common/logging.h"
#include "expr/predicates.h"
#include "spool/spool.h"
#include "telemetry/metrics.h"

namespace tcq {

#ifndef TCQ_METRICS_DISABLED
namespace {

/// Process-wide PSoup telemetry (DESIGN.md §10).
struct PsoupMetrics {
  Counter* data_in;        ///< Tuples fed via OnData.
  Counter* materialized;   ///< Result-structure appends (data-side).
  Counter* registrations;  ///< Standing queries registered.
  Counter* invocations;    ///< Client Invoke calls answered.
  Gauge* resident_bytes;   ///< Data-SteM history bytes held in RAM.

  static PsoupMetrics& Get() {
    static PsoupMetrics* m = [] {
      MetricRegistry& reg = MetricRegistry::Global();
      auto* agg = new PsoupMetrics();
      agg->data_in = reg.GetCounter("tcq.psoup.data_in");
      agg->materialized = reg.GetCounter("tcq.psoup.materialized");
      agg->registrations = reg.GetCounter("tcq.psoup.registrations");
      agg->invocations = reg.GetCounter("tcq.psoup.invocations");
      agg->resident_bytes = reg.GetGauge("tcq.psoup.resident_bytes");
      return agg;
    }();
    return *m;
  }
};

}  // namespace
#endif  // TCQ_METRICS_DISABLED

PSoup::PSoup(SchemaPtr schema) : PSoup(std::move(schema), Options()) {}

PSoup::PSoup(SchemaPtr schema, Options options)
    : schema_(std::move(schema)), options_(options) {
  TCQ_CHECK(schema_ != nullptr);
}

PSoup::~PSoup() {
  TrackHistoryBytes(-resident_bytes_);  // Gauge hygiene on teardown.
}

void PSoup::TrackHistoryBytes(int64_t delta) {
  resident_bytes_ += delta;
  TCQ_METRIC(PsoupMetrics::Get().resident_bytes->Add(delta));
}

void PSoup::AttachSpool(Spool* spool, std::string key,
                        size_t resident_limit) {
  TCQ_CHECK(spool != nullptr);
  TCQ_CHECK(resident_limit > 0) << "psoup needs a resident tail";
  TCQ_CHECK(spool_ == nullptr) << "spool already attached";
  spool_ = spool;
  spool_key_ = std::move(key);
  resident_limit_ = resident_limit;
  spooled_ = spool_->records(spool_key_);
  spool_frontier_ = spool_->main_frontier(spool_key_);
  TCQ_CHECK(history_.empty() ||
            history_.front().timestamp() >= spool_frontier_)
      << "spooled history must predate resident tuples";
  DemoteOverflow();
}

void PSoup::DemoteOverflow() {
  while (history_.size() > resident_limit_) {
    const Tuple& victim = history_.front();
    TCQ_CHECK(spool_->Append(spool_key_, victim).ok())
        << "psoup history demotion failed";
    spool_frontier_ = std::max(spool_frontier_, victim.timestamp());
    ++spooled_;
    TrackHistoryBytes(-static_cast<int64_t>(victim.ApproxBytes()));
    history_.pop_front();
  }
}

Result<QueryId> PSoup::Register(const ExprPtr& predicate,
                                Timestamp window_width) {
  if (window_width <= 0) {
    return Status::InvalidArgument("window width must be positive");
  }
  const QueryId qid = static_cast<QueryId>(queries_.size());

  QueryState state;
  state.window_width = window_width;

  // Decompose the predicate into indexable factors and residual work, but
  // register nothing until everything validates (atomic registration).
  struct FilterReg {
    size_t column;
    BinaryOp op;
    Value constant;
  };
  std::vector<FilterReg> filter_regs;
  std::vector<ExprPtr> residual_factors;
  if (predicate != nullptr) {
    TCQ_ASSIGN_OR_RETURN(state.bound_predicate, predicate->Bind(*schema_));
    for (const ExprPtr& factor : ExtractConjuncts(predicate)) {
      if (auto sp = MatchSimplePredicate(factor)) {
        auto idx = schema_->IndexOf(sp->column);
        if (idx.ok()) {
          filter_regs.push_back({*idx, sp->op, std::move(sp->constant)});
          continue;
        }
      }
      TCQ_ASSIGN_OR_RETURN(ExprPtr bound, factor->Bind(*schema_));
      residual_factors.push_back(std::move(bound));
    }
  }

  for (FilterReg& r : filter_regs) {
    filter_index_[r.column].AddPredicate(qid, r.op, std::move(r.constant));
  }
  for (ExprPtr& r : residual_factors) {
    residuals_.emplace_back(qid, std::move(r));
  }

  // "New query probes old data": seed the Results Structure from history —
  // the demoted prefix first (read back through the spool's page cache in
  // timestamp-merge order), then the resident tail. Every spooled tuple
  // predates every resident one, so the results deque stays sorted.
  const auto seed = [&](const Tuple& t) {
    if (state.bound_predicate != nullptr) {
      const Value keep = state.bound_predicate->Eval(t);
      if (keep.is_null() || !keep.bool_value()) return;
    }
    state.results.push_back(t);
  };
  if (spool_ != nullptr && spooled_ > 0) {
    TCQ_CHECK(spool_
                  ->Scan(spool_key_, spool_floor_, kMaxTimestamp,
                         [&](const Tuple& t) {
                           seed(t);
                           return true;
                         })
                  .ok())
        << "psoup history seed scan failed";
  }
  for (const Tuple& t : history_) seed(t);

  state.active = true;
  queries_.push_back(std::move(state));
  active_bits_.Resize(queries_.size());
  active_bits_.Set(qid);
  ++active_;
  TCQ_METRIC(PsoupMetrics::Get().registrations->Add(1));
  return qid;
}

Status PSoup::Unregister(QueryId q) {
  if (q >= queries_.size() || !queries_[q].active) {
    return Status::NotFound("no such active query");
  }
  queries_[q].active = false;
  queries_[q].results.clear();
  active_bits_.Clear(q);
  --active_;
  for (auto& [col, gf] : filter_index_) gf.RemoveQuery(q);
  residuals_.erase(std::remove_if(residuals_.begin(), residuals_.end(),
                                  [q](const auto& r) { return r.first == q; }),
                   residuals_.end());
  return Status::OK();
}

SmallBitset PSoup::MatchQueries(const Tuple& t) const {
  SmallBitset candidates = active_bits_;
  for (const auto& [col, gf] : filter_index_) {
    if (candidates.size_bits() < gf.num_queries()) {
      candidates.Resize(gf.num_queries());
    }
    gf.Apply(t.cell(col), &candidates);
    if (candidates.None()) return candidates;
  }
  for (const auto& [q, expr] : residuals_) {
    if (q >= candidates.size_bits() || !candidates.Test(q)) continue;
    const Value keep = expr->Eval(t);
    if (keep.is_null() || !keep.bool_value()) candidates.Clear(q);
  }
  return candidates;
}

namespace {

/// Inserts `t` keeping `dq` sorted by timestamp. In-order arrivals hit the
/// O(1) push_back fast path; a late tuple pays an ordered insert so that
/// Invoke's binary search and front-eviction stay correct — duplicated and
/// out-of-order delivery must not corrupt materialized results.
void InsertByTimestamp(std::deque<Tuple>* dq, const Tuple& t) {
  if (dq->empty() || dq->back().timestamp() <= t.timestamp()) {
    dq->push_back(t);
    return;
  }
  const auto pos = std::upper_bound(
      dq->begin(), dq->end(), t.timestamp(),
      [](Timestamp ts, const Tuple& u) { return ts < u.timestamp(); });
  dq->insert(pos, t);
}

}  // namespace

void PSoup::OnData(const Tuple& tuple) {
  // Build into the Data SteM. A straggler older than every resident tuple
  // goes straight to the spool's late run (keeping the resident deque's
  // global-suffix invariant); everything else lands resident and the
  // overflow demotes from the front below.
  if (spool_ != nullptr && tuple.timestamp() < spool_frontier_) {
    if (tuple.timestamp() >= spool_floor_) {
      TCQ_CHECK(spool_->Append(spool_key_, tuple).ok())
          << "psoup straggler spool failed";
      ++spooled_;
    }
  } else {
    InsertByTimestamp(&history_, tuple);
    TrackHistoryBytes(static_cast<int64_t>(tuple.ApproxBytes()));
  }
  if (tuple.timestamp() > max_ts_) max_ts_ = tuple.timestamp();
  if (options_.history_span != kMaxTimestamp) {
    const Timestamp cutoff = max_ts_ - options_.history_span + 1;
    while (!history_.empty() && history_.front().timestamp() < cutoff) {
      TrackHistoryBytes(
          -static_cast<int64_t>(history_.front().ApproxBytes()));
      history_.pop_front();
    }
    if (spool_ != nullptr && cutoff > spool_floor_) {
      spool_floor_ = cutoff;
      if (spooled_ > 0) {
        TCQ_CHECK(spool_->EvictBefore(spool_key_, cutoff).ok());
        spooled_ = spool_->records(spool_key_);
      }
    }
  }
  if (spool_ != nullptr) DemoteOverflow();
  TCQ_METRIC(PsoupMetrics::Get().data_in->Add(1));
  // Probe the Query SteM; materialize into each match's results.
  SmallBitset matches = MatchQueries(tuple);
  matches.ForEachSet([&](size_t q) {
    if (q < queries_.size() && queries_[q].active) {
      InsertByTimestamp(&queries_[q].results, tuple);
      TCQ_METRIC(PsoupMetrics::Get().materialized->Add(1));
    }
  });
}

Result<TupleVector> PSoup::Invoke(QueryId q, Timestamp now) const {
  if (q >= queries_.size() || !queries_[q].active) {
    return Status::NotFound("no such active query");
  }
  TCQ_METRIC(PsoupMetrics::Get().invocations->Add(1));
  const QueryState& state = queries_[q];
  const Timestamp lo = now - state.window_width + 1;
  // Results are timestamp-ordered: binary-search the window.
  const auto begin = std::lower_bound(
      state.results.begin(), state.results.end(), lo,
      [](const Tuple& t, Timestamp ts) { return t.timestamp() < ts; });
  const auto end = std::upper_bound(
      begin, state.results.end(), now,
      [](Timestamp ts, const Tuple& t) { return ts < t.timestamp(); });
  return TupleVector(begin, end);
}

void PSoup::EvictBefore(Timestamp ts) {
  if (spool_ != nullptr) {
    // Demote rather than free: evicted history leaves RAM but remains on
    // disk for future Register() seeds.
    while (!history_.empty() && history_.front().timestamp() < ts) {
      const Tuple& victim = history_.front();
      TCQ_CHECK(spool_->Append(spool_key_, victim).ok())
          << "psoup history demotion failed";
      spool_frontier_ = std::max(spool_frontier_, victim.timestamp());
      ++spooled_;
      TrackHistoryBytes(-static_cast<int64_t>(victim.ApproxBytes()));
      history_.pop_front();
    }
  }
  while (!history_.empty() && history_.front().timestamp() < ts) {
    TrackHistoryBytes(-static_cast<int64_t>(history_.front().ApproxBytes()));
    history_.pop_front();
  }
  for (QueryState& state : queries_) {
    while (!state.results.empty() &&
           state.results.front().timestamp() < ts) {
      state.results.pop_front();
    }
  }
}

size_t PSoup::materialized_results() const {
  size_t n = 0;
  for (const QueryState& s : queries_) n += s.results.size();
  return n;
}

}  // namespace tcq
