#ifndef TCQ_PSOUP_PSOUP_H_
#define TCQ_PSOUP_PSOUP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "expr/ast.h"
#include "modules/grouped_filter.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

/// PSoup (§3.2, [CF02]): treats data and queries symmetrically.
///
///  * Data arrives  -> built into the Data SteM, then *probes the Query
///    SteM*: the set of standing queries it satisfies is computed (via a
///    grouped-filter index over query predicates — the paper calls the
///    Query SteM "a generalization of the notion of a grouped filter"),
///    and the tuple is appended to each matching query's Results Structure.
///  * A query arrives -> built into the Query SteM, then *probes the Data
///    SteM*: previously arrived data is evaluated against it, seeding its
///    Results Structure. This is how new queries run over history.
///
/// Results are thus continuously materialized. Clients may disconnect;
/// when one returns and *invokes* a query, its time window [now-width, now]
/// is imposed on the materialized Results Structure — an O(log n + answer)
/// retrieval instead of a recomputation.
class PSoup {
 public:
  struct Options {
    /// How much stream history the Data SteM retains, as a timestamp span;
    /// bounds both history joins of new queries and memory.
    Timestamp history_span = kMaxTimestamp;
  };

  explicit PSoup(SchemaPtr schema);
  PSoup(SchemaPtr schema, Options options);

  PSoup(const PSoup&) = delete;
  PSoup& operator=(const PSoup&) = delete;

  /// Registers a standing query: a predicate over the stream schema plus a
  /// time-based window width imposed at invocation. The query is
  /// immediately applied to retained history.
  Result<QueryId> Register(const ExprPtr& predicate, Timestamp window_width);

  Status Unregister(QueryId q);

  /// Feeds one stream tuple: stores it, matches it against all standing
  /// queries, and materializes it into their Results Structures. Late
  /// (out-of-timestamp-order) tuples are inserted in timestamp order so
  /// Invoke stays correct; duplicated delivery materializes duplicates
  /// (PSoup is at-least-once downstream of an at-least-once source).
  void OnData(const Tuple& tuple);

  /// Client invocation at time `now`: the query's window [now-width+1, now]
  /// imposed on its materialized results. Clients may have been
  /// disconnected arbitrarily long; no recomputation happens here.
  Result<TupleVector> Invoke(QueryId q, Timestamp now) const;

  /// Reclaims history and per-query results older than `ts` (results older
  /// than any invocable window are dead weight).
  void EvictBefore(Timestamp ts);

  size_t history_size() const { return history_.size(); }
  size_t num_active_queries() const { return active_; }
  /// Total materialized result entries across queries.
  size_t materialized_results() const;

 private:
  struct QueryState {
    bool active = false;
    ExprPtr bound_predicate;  ///< Null = match everything.
    Timestamp window_width = 0;
    /// Materialized matches ordered by timestamp (stream order).
    std::deque<Tuple> results;
  };

  /// Data-side probe of the Query SteM: all active queries matching t.
  SmallBitset MatchQueries(const Tuple& t) const;

  const SchemaPtr schema_;
  const Options options_;

  // Data SteM: retained history in timestamp order (InsertByTimestamp
  // re-sorts late arrivals on the way in, so EvictBefore's prefix pop
  // never strands an older tuple behind a newer one).
  std::deque<Tuple> history_;
  Timestamp max_ts_ = kMinTimestamp;

  // Query SteM: per-column grouped-filter indexes over the queries'
  // single-column factors, plus per-query residual predicates.
  std::map<size_t, GroupedFilter> filter_index_;
  std::vector<QueryState> queries_;
  std::vector<std::pair<QueryId, ExprPtr>> residuals_;
  SmallBitset active_bits_;
  size_t active_ = 0;
};

}  // namespace tcq

#endif  // TCQ_PSOUP_PSOUP_H_
