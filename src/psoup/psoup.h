#ifndef TCQ_PSOUP_PSOUP_H_
#define TCQ_PSOUP_PSOUP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "expr/ast.h"
#include "modules/grouped_filter.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

class Spool;

/// PSoup (§3.2, [CF02]): treats data and queries symmetrically.
///
///  * Data arrives  -> built into the Data SteM, then *probes the Query
///    SteM*: the set of standing queries it satisfies is computed (via a
///    grouped-filter index over query predicates — the paper calls the
///    Query SteM "a generalization of the notion of a grouped filter"),
///    and the tuple is appended to each matching query's Results Structure.
///  * A query arrives -> built into the Query SteM, then *probes the Data
///    SteM*: previously arrived data is evaluated against it, seeding its
///    Results Structure. This is how new queries run over history.
///
/// Results are thus continuously materialized. Clients may disconnect;
/// when one returns and *invokes* a query, its time window [now-width, now]
/// is imposed on the materialized Results Structure — an O(log n + answer)
/// retrieval instead of a recomputation.
class PSoup {
 public:
  struct Options {
    /// How much stream history the Data SteM retains, as a timestamp span;
    /// bounds both history joins of new queries and memory.
    Timestamp history_span = kMaxTimestamp;
  };

  explicit PSoup(SchemaPtr schema);
  PSoup(SchemaPtr schema, Options options);

  PSoup(const PSoup&) = delete;
  PSoup& operator=(const PSoup&) = delete;
  ~PSoup();

  /// Bounds the Data SteM's resident memory (DESIGN.md §16): history
  /// beyond the newest `resident_limit` tuples demotes to `spool` under
  /// `key`, and Register keeps seeding new queries from the FULL history
  /// by reading the demoted prefix back through the spool's page cache.
  /// Adopts records already spooled under the key. Caller keeps `spool`
  /// alive past this PSoup.
  void AttachSpool(Spool* spool, std::string key, size_t resident_limit);

  /// Registers a standing query: a predicate over the stream schema plus a
  /// time-based window width imposed at invocation. The query is
  /// immediately applied to retained history.
  Result<QueryId> Register(const ExprPtr& predicate, Timestamp window_width);

  Status Unregister(QueryId q);

  /// Feeds one stream tuple: stores it, matches it against all standing
  /// queries, and materializes it into their Results Structures. Late
  /// (out-of-timestamp-order) tuples are inserted in timestamp order so
  /// Invoke stays correct; duplicated delivery materializes duplicates
  /// (PSoup is at-least-once downstream of an at-least-once source).
  void OnData(const Tuple& tuple);

  /// Client invocation at time `now`: the query's window [now-width+1, now]
  /// imposed on its materialized results. Clients may have been
  /// disconnected arbitrarily long; no recomputation happens here.
  Result<TupleVector> Invoke(QueryId q, Timestamp now) const;

  /// Reclaims history and per-query results older than `ts` (results older
  /// than any invocable window are dead weight). With a spool attached the
  /// history is demoted to disk instead of freed — it leaves RAM but new
  /// queries still seed from it.
  void EvictBefore(Timestamp ts);

  /// History tuples, resident and spooled.
  size_t history_size() const { return history_.size() + spooled_; }
  size_t resident_history_size() const { return history_.size(); }
  size_t spooled_history_size() const { return spooled_; }
  size_t num_active_queries() const { return active_; }
  /// Total materialized result entries across queries.
  size_t materialized_results() const;

 private:
  struct QueryState {
    bool active = false;
    ExprPtr bound_predicate;  ///< Null = match everything.
    Timestamp window_width = 0;
    /// Materialized matches ordered by timestamp (stream order).
    std::deque<Tuple> results;
  };

  /// Data-side probe of the Query SteM: all active queries matching t.
  SmallBitset MatchQueries(const Tuple& t) const;

  /// Demotes the oldest resident history until `resident_limit_` holds.
  void DemoteOverflow();
  void TrackHistoryBytes(int64_t delta);

  const SchemaPtr schema_;
  const Options options_;

  // Spool hook (null = pure in-memory Data SteM). `frontier_` is the
  // newest demoted timestamp: every spooled tuple has ts <= frontier_,
  // every resident one ts >= it. `floor_` is the history_span cutoff
  // clamped onto spool reads.
  Spool* spool_ = nullptr;
  std::string spool_key_;
  size_t resident_limit_ = 0;
  Timestamp spool_frontier_ = kMinTimestamp;
  Timestamp spool_floor_ = kMinTimestamp;
  size_t spooled_ = 0;
  int64_t resident_bytes_ = 0;

  // Data SteM: retained history in timestamp order (InsertByTimestamp
  // re-sorts late arrivals on the way in, so EvictBefore's prefix pop
  // never strands an older tuple behind a newer one).
  std::deque<Tuple> history_;
  Timestamp max_ts_ = kMinTimestamp;

  // Query SteM: per-column grouped-filter indexes over the queries'
  // single-column factors, plus per-query residual predicates.
  std::map<size_t, GroupedFilter> filter_index_;
  std::vector<QueryState> queries_;
  std::vector<std::pair<QueryId, ExprPtr>> residuals_;
  SmallBitset active_bits_;
  size_t active_ = 0;
};

}  // namespace tcq

#endif  // TCQ_PSOUP_PSOUP_H_
