#include "spool/spool.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace tcq {

namespace {

using spool::RecordKind;
using spool::RecordLocation;

/// Process-global tcq.spool.* handles (gauges are deltas, so several live
/// spools — or a restarted server in one process — stay additive).
struct SpoolCounters {
  Counter* demotions;
  Counter* late_appends;
  Counter* tombstones;
  Counter* torn_truncations;
  Counter* crc_rejected;
  Counter* segments_dropped;
  Gauge* segments;
  Gauge* bytes;
  Gauge* records;
  Histogram* read_us;
  Histogram* write_us;

  static SpoolCounters& Get() {
    static SpoolCounters c = [] {
      MetricRegistry& reg = MetricRegistry::Global();
      SpoolCounters n;
      n.demotions = reg.GetCounter("tcq.spool.demotions");
      n.late_appends = reg.GetCounter("tcq.spool.late_appends");
      n.tombstones = reg.GetCounter("tcq.spool.tombstones");
      n.torn_truncations = reg.GetCounter("tcq.spool.torn_truncations");
      n.crc_rejected = reg.GetCounter("tcq.spool.crc_rejected");
      n.segments_dropped = reg.GetCounter("tcq.spool.segments_dropped");
      n.segments = reg.GetGauge("tcq.spool.segments");
      n.bytes = reg.GetGauge("tcq.spool.bytes");
      n.records = reg.GetGauge("tcq.spool.records");
      n.read_us = reg.GetHistogram("tcq.spool.read_us");
      n.write_us = reg.GetHistogram("tcq.spool.write_us");
      return n;
    }();
    return c;
  }
};

spool::SegmentIoStats MakeIoStats() {
#ifdef TCQ_METRICS_DISABLED
  return {};
#else
  SpoolCounters& m = SpoolCounters::Get();
  spool::SegmentIoStats s;
  s.on_read_us = [&m](uint64_t us) { m.read_us->Record(us); };
  s.on_write_us = [&m](uint64_t us) { m.write_us->Record(us); };
  s.on_torn_truncation = [&m] { m.torn_truncations->Add(1); };
  s.on_crc_rejected = [&m] { m.crc_rejected->Add(1); };
  s.on_segment_dropped = [&m] { m.segments_dropped->Add(1); };
  s.on_bytes = [&m](int64_t d) { m.bytes->Add(d); };
  s.on_segments = [&m](int64_t d) { m.segments->Add(d); };
  return s;
#endif
}

/// Iterates complete records of one stream in physical order, faulting
/// pages through the buffer manager (sequential read-ahead on). Starts at
/// `page` of segments_[seg_idx]; with `skip_partial`, fragments of a
/// record that started on an earlier page are skipped first.
class RecordCursor {
 public:
  RecordCursor(spool::BufferManager* bm, spool::PageSource* src,
               std::vector<uint64_t> segments, size_t seg_idx, uint32_t page,
               bool skip_partial)
      : bm_(bm),
        src_(src),
        segments_(std::move(segments)),
        seg_idx_(seg_idx),
        page_(page),
        skip_partial_(skip_partial) {}

  /// Advances to the next record. Returns false at end of data; a non-OK
  /// status means unreadable state (should not happen post-recovery).
  Result<bool> Next(RecordKind* kind, Tuple* t, RecordLocation* loc) {
    std::string pending;
    RecordLocation start{};
    bool in_chain = false;
    while (true) {
      if (!ref_.valid()) {
        if (seg_idx_ >= segments_.size()) return false;
        auto page_or = bm_->Get(src_, segments_[seg_idx_], page_,
                                /*sequential=*/true);
        if (!page_or.ok()) {
          if (page_or.status().code() == StatusCode::kOutOfRange) {
            // Past this segment's end: move to the next one, whose first
            // data page always begins a record.
            ++seg_idx_;
            page_ = spool::SegmentStore::kFirstDataPage;
            off_ = 0;
            skip_partial_ = false;
            if (in_chain) {
              return Status::Internal("spool: record chain torn mid-scan");
            }
            continue;
          }
          return page_or.status();
        }
        ref_ = std::move(*page_or);
      }
      spool::Fragment frag;
      const spool::FragmentStatus fs =
          ParseFragment(ref_.data(), ref_.size(), off_, &frag);
      if (fs == spool::FragmentStatus::kEndOfPage) {
        ref_ = spool::BufferManager::PageRef();
        ++page_;
        off_ = 0;
        continue;
      }
      if (fs == spool::FragmentStatus::kCorrupt) {
        return Status::Internal("spool: corrupt fragment mid-scan");
      }
      const bool starts = frag.type == spool::FragmentType::kFull ||
                          frag.type == spool::FragmentType::kFirst;
      if (skip_partial_ && !starts) {
        off_ = frag.end;
        continue;
      }
      skip_partial_ = false;
      if (starts != !in_chain) {
        return Status::Internal("spool: record chain discontinuity");
      }
      if (starts) {
        start = RecordLocation{segments_[seg_idx_], page_, off_};
      }
      pending.append(reinterpret_cast<const char*>(frag.data), frag.len);
      in_chain = frag.type == spool::FragmentType::kFirst ||
                 frag.type == spool::FragmentType::kMiddle;
      off_ = frag.end;
      if (!in_chain) {
        TCQ_RETURN_NOT_OK(spool::DecodeRecord(
            reinterpret_cast<const uint8_t*>(pending.data()), pending.size(),
            kind, t));
        *loc = start;
        return true;
      }
    }
  }

 private:
  spool::BufferManager* bm_;
  spool::PageSource* src_;
  std::vector<uint64_t> segments_;
  size_t seg_idx_;
  uint32_t page_;
  uint32_t off_ = 0;
  bool skip_partial_;
  spool::BufferManager::PageRef ref_;
};

}  // namespace

struct Spool::Stream : public spool::PageSource {
  std::string key;
  mutable std::mutex mu;
  std::unique_ptr<spool::SegmentStore> store;
  spool::StreamIndex index;

  Status ReadPage(uint64_t file, uint32_t page, uint8_t* buf, uint32_t* len,
                  bool* cacheable) override {
    return store->ReadPage(file, page, buf, len, cacheable);
  }
};

Spool::Spool(Options options)
    : options_(std::move(options)),
      cache_(spool::BufferManager::Options{options_.cache_pages,
                                           options_.read_ahead_pages}) {}

Spool::~Spool() {
  for (auto& [key, s] : streams_) {
    TCQ_METRIC(SpoolCounters::Get().records->Add(
        -static_cast<int64_t>(s->index.records())));
    // Stores flush in their destructors; drop their cached pages first so
    // the cache never outlives a source it points at.
    cache_.DropSource(s.get());
  }
}

Result<std::unique_ptr<Spool>> Spool::Open(Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("spool: dir must not be empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("spool: cannot create " + options.dir + ": " +
                            ec.message());
  }
  std::unique_ptr<Spool> spool(new Spool(std::move(options)));
  // Adopt keys already on disk (reopen after restart).
  for (const auto& entry :
       std::filesystem::directory_iterator(spool->options_.dir, ec)) {
    if (!entry.is_directory()) continue;
    TCQ_RETURN_NOT_OK(
        spool->GetOrCreate(entry.path().filename().string()).status());
  }
  if (ec) {
    return Status::Internal("spool: cannot list " + spool->options_.dir);
  }
  return spool;
}

Result<Spool::Stream*> Spool::GetOrCreate(const std::string& key) {
  if (key.empty() || key.find('/') != std::string::npos) {
    return Status::InvalidArgument("spool: bad key '" + key + "'");
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = streams_.find(key);
  if (it != streams_.end()) return it->second.get();

  auto s = std::make_unique<Stream>();
  s->key = key;
  spool::SegmentStore::Options so;
  so.segment_bytes = options_.segment_bytes;
  so.retention_bytes = options_.retention_bytes;
  so.sync_each_append = options_.sync_each_append;

  // Recovery rebuilds the index from the segment scan; tombstones replay
  // in physical order against the records recovered so far, masking
  // exactly what the live Cancel() calls masked before the restart.
  struct PendingTombstone {
    Tuple t;
    RecordLocation loc;
  };
  std::vector<PendingTombstone> tombstones;
  auto store_or = spool::SegmentStore::Open(
      options_.dir + "/" + key, so, MakeIoStats(),
      [&](spool::RecoveredRecord&& r) {
        switch (r.kind) {
          case RecordKind::kMain:
            s->index.NoteMain(r.location, r.tuple.timestamp());
            break;
          case RecordKind::kLate:
            s->index.NoteLate(r.location, r.tuple.timestamp());
            break;
          case RecordKind::kTombstone:
            tombstones.push_back({std::move(r.tuple), r.location});
            break;
        }
      });
  TCQ_RETURN_NOT_OK(store_or.status());
  s->store = std::move(*store_or);
  for (const PendingTombstone& tomb : tombstones) {
    std::optional<RecordLocation> best;
    TCQ_RETURN_NOT_OK(ScanLocked(
        *s, tomb.t.timestamp(), tomb.t.timestamp(),
        [&](const Tuple& t, RecordKind, const RecordLocation& loc) {
          if (loc < tomb.loc && t.PayloadEquals(tomb.t)) best = loc;
          return true;
        }));
    if (best.has_value()) s->index.AddMask(*best);
  }
  TCQ_METRIC(SpoolCounters::Get().records->Add(
      static_cast<int64_t>(s->index.records())));
  Stream* raw = s.get();
  streams_.emplace(key, std::move(s));
  return raw;
}

Spool::Stream* Spool::Find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = streams_.find(key);
  return it == streams_.end() ? nullptr : it->second.get();
}

Status Spool::Append(const std::string& key, const Tuple& t) {
  TCQ_ASSIGN_OR_RETURN(Stream * s, GetOrCreate(key));
  std::lock_guard<std::mutex> lock(s->mu);
  const bool late = t.timestamp() < s->index.main_frontier();
  TCQ_ASSIGN_OR_RETURN(
      RecordLocation loc,
      s->store->Append(late ? RecordKind::kLate : RecordKind::kMain, t));
  if (late) {
    s->index.NoteLate(loc, t.timestamp());
    TCQ_METRIC(SpoolCounters::Get().late_appends->Add(1));
  } else {
    s->index.NoteMain(loc, t.timestamp());
  }
  TCQ_METRIC(SpoolCounters::Get().demotions->Add(1));
  TCQ_METRIC(SpoolCounters::Get().records->Add(1));
  if (options_.retention_bytes > 0) {
    DropSegments(*s, s->store->EnforceRetention(kMinTimestamp));
  }
  return Status::OK();
}

Result<bool> Spool::Cancel(const std::string& key, const Tuple& t) {
  Stream* s = Find(key);
  if (s == nullptr) return false;
  std::lock_guard<std::mutex> lock(s->mu);
  // Newest matching record = the last one in logical (merge) order, the
  // same choice Archive::CancelMatching makes on its in-memory deque.
  std::optional<RecordLocation> best;
  TCQ_RETURN_NOT_OK(ScanLocked(
      *s, t.timestamp(), t.timestamp(),
      [&](const Tuple& rec, RecordKind, const RecordLocation& loc) {
        if (rec.PayloadEquals(t)) best = loc;
        return true;
      }));
  if (!best.has_value()) return false;
  TCQ_RETURN_NOT_OK(s->store->Append(RecordKind::kTombstone, t).status());
  s->index.AddMask(*best);
  TCQ_METRIC(SpoolCounters::Get().tombstones->Add(1));
  TCQ_METRIC(SpoolCounters::Get().records->Add(-1));
  return true;
}

Status Spool::ScanLocked(Stream& s, Timestamp lo, Timestamp hi,
                         const DetailFn& fn) const {
  if (lo > hi || s.index.records() == 0) return Status::OK();
  std::vector<spool::StreamIndex::LateEntry> lates;
  s.index.CollectLate(lo, hi, &lates);
  size_t li = 0;
  bool stopped = false;
  // Emits late entries below `bound` (exclusive); main wins ties, exactly
  // upper_bound placement.
  auto drain_late = [&](Timestamp bound) -> Status {
    while (!stopped && li < lates.size() && lates[li].ts < bound) {
      const auto& e = lates[li++];
      if (s.index.IsMasked(e.loc)) continue;
      RecordKind k;
      Tuple t;
      TCQ_RETURN_NOT_OK(ReadRecordAt(s, e.loc, &k, &t));
      if (!fn(t, k, e.loc)) stopped = true;
    }
    return Status::OK();
  };

  const auto pos = s.index.SeekMain(lo);
  if (pos.has_value()) {
    const std::vector<uint64_t> ids = s.store->SegmentIds();
    const auto seg_it =
        std::lower_bound(ids.begin(), ids.end(), pos->segment);
    if (seg_it != ids.end() && *seg_it == pos->segment) {
      RecordCursor cur(&cache_, &s, ids,
                       static_cast<size_t>(seg_it - ids.begin()), pos->page,
                       /*skip_partial=*/true);
      while (!stopped) {
        RecordKind kind;
        Tuple t;
        RecordLocation loc;
        TCQ_ASSIGN_OR_RETURN(bool more, cur.Next(&kind, &t, &loc));
        if (!more) break;
        if (kind != RecordKind::kMain) continue;  // Lates merge below.
        if (t.timestamp() < lo) continue;         // Seek overshoot.
        if (t.timestamp() > hi) break;            // Main run is ordered.
        if (s.index.IsMasked(loc)) continue;
        TCQ_RETURN_NOT_OK(drain_late(t.timestamp()));
        if (stopped) break;
        if (!fn(t, kind, loc)) stopped = true;
      }
    }
  }
  if (!stopped) {
    TCQ_RETURN_NOT_OK(drain_late(hi == kMaxTimestamp ? hi : hi + 1));
    // hi + 1 as an exclusive bound empties the remaining in-range lates.
  }
  return Status::OK();
}

Status Spool::ReadRecordAt(Stream& s, const RecordLocation& loc,
                           RecordKind* kind, Tuple* t) const {
  // Walk the record's page from its start (skipping any fragment carried
  // over from an earlier page) until the location matches — records per
  // page are few, so this stays a one-page affair plus chain tails.
  RecordCursor from_start(&cache_, &s, {loc.segment}, 0, loc.page,
                          /*skip_partial=*/true);
  while (true) {
    RecordLocation at;
    TCQ_ASSIGN_OR_RETURN(bool more, from_start.Next(kind, t, &at));
    if (!more) {
      return Status::Internal("spool: indexed record not found");
    }
    if (at == loc) return Status::OK();
    if (loc < at) {
      return Status::Internal("spool: indexed record not found");
    }
  }
}

Status Spool::Scan(const std::string& key, Timestamp lo, Timestamp hi,
                   const std::function<bool(const Tuple&)>& fn) const {
  Stream* s = Find(key);
  if (s == nullptr) return Status::OK();
  std::lock_guard<std::mutex> lock(s->mu);
  return ScanLocked(*s, lo, hi,
                    [&fn](const Tuple& t, RecordKind, const RecordLocation&) {
                      return fn(t);
                    });
}

Result<Timestamp> Spool::ScanChunk(const std::string& key, Timestamp lo,
                                   Timestamp hi, size_t max_records,
                                   TupleVector* out) const {
  Stream* s = Find(key);
  if (s == nullptr) return kMaxTimestamp;
  std::lock_guard<std::mutex> lock(s->mu);
  Timestamp next = kMaxTimestamp;
  TCQ_RETURN_NOT_OK(ScanLocked(
      *s, lo, hi,
      [&](const Tuple& t, RecordKind, const RecordLocation&) {
        if (out->size() >= max_records &&
            t.timestamp() != out->back().timestamp()) {
          next = t.timestamp();  // Never split an equal-timestamp run.
          return false;
        }
        out->push_back(t);
        return true;
      }));
  return next;
}

Status Spool::Sync(const std::string& key) {
  Stream* s = Find(key);
  if (s == nullptr) return Status::OK();
  std::lock_guard<std::mutex> lock(s->mu);
  return s->store->Sync();
}

Status Spool::EvictBefore(const std::string& key, Timestamp ts) {
  Stream* s = Find(key);
  if (s == nullptr) return Status::OK();
  std::lock_guard<std::mutex> lock(s->mu);
  DropSegments(*s, s->store->EnforceRetention(ts));
  return Status::OK();
}

void Spool::DropSegments(Stream& s, const std::vector<uint64_t>& ids) {
  for (const uint64_t id : ids) {
    cache_.DropFile(&s, id);
    const size_t before = s.index.records();
    s.index.DropSegment(id);
    TCQ_METRIC(SpoolCounters::Get().records->Add(
        -static_cast<int64_t>(before - s.index.records())));
  }
}

bool Spool::HasKey(const std::string& key) const {
  return Find(key) != nullptr;
}

std::vector<std::string> Spool::Keys() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<std::string> keys;
  keys.reserve(streams_.size());
  for (const auto& [key, s] : streams_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t Spool::records(const std::string& key) const {
  Stream* s = Find(key);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->index.records();
}

Timestamp Spool::min_timestamp(const std::string& key) const {
  Stream* s = Find(key);
  if (s == nullptr) return kMaxTimestamp;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->index.min_ts();
}

Timestamp Spool::main_frontier(const std::string& key) const {
  Stream* s = Find(key);
  if (s == nullptr) return kMinTimestamp;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->index.main_frontier();
}

uint64_t Spool::bytes() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& [key, s] : streams_) {
    std::lock_guard<std::mutex> slock(s->mu);
    total += s->store->total_bytes();
  }
  return total;
}

size_t Spool::segments() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t total = 0;
  for (const auto& [key, s] : streams_) {
    std::lock_guard<std::mutex> slock(s->mu);
    total += s->store->segment_count();
  }
  return total;
}

void Spool::SetTornWriteForTest(const std::string& key, int nth_write) {
  auto s_or = GetOrCreate(key);
  TCQ_CHECK(s_or.ok()) << s_or.status();
  Stream* s = *s_or;
  std::lock_guard<std::mutex> lock(s->mu);
  s->store->SetTornWriteForTest(nth_write);
}

}  // namespace tcq
