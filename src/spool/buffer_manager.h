#ifndef TCQ_SPOOL_BUFFER_MANAGER_H_
#define TCQ_SPOOL_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "spool/segment.h"

namespace tcq {
namespace spool {

/// Backing store the buffer manager faults pages in from. One source per
/// segment store (i.e. per spooled stream); `file` is the segment id.
class PageSource {
 public:
  virtual ~PageSource() = default;
  /// Reads page `page` of file `file` into `buf` (>= kPageSize bytes).
  /// *len = valid bytes; *cacheable = false when the page may still grow
  /// (a writer's live tail) and must not be retained.
  virtual Status ReadPage(uint64_t file, uint32_t page, uint8_t* buf,
                          uint32_t* len, bool* cacheable) = 0;
};

/// Bounded page cache over every spooled stream (DESIGN.md §16): the hard
/// resident-memory knob for reading history. Pages are pinned while a
/// scan looks at them and LRU-evicted once unpinned; sequential scans ask
/// for read-ahead so cold replay stays one disk round-trip per
/// `read_ahead_pages` instead of per page. Capacity is a soft cap under
/// pinning: a page fault never fails because every frame is pinned, it
/// just overshoots until the pins drop.
///
/// Thread-safe; faults are served under the cache lock, so two scans
/// missing at once serialize on the disk read (simple, and the per-stream
/// spool lock already serializes same-stream scans).
class BufferManager {
 public:
  struct Options {
    size_t capacity_pages = 256;
    size_t read_ahead_pages = 4;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t readahead = 0;
  };

  explicit BufferManager(Options options);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// A pinned view of one page. Valid (and the frame unevictable) until
  /// destruction. Uncacheable pages are served as a private copy.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& o) noexcept;
    PageRef& operator=(PageRef&& o) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef();

    const uint8_t* data() const { return data_; }
    uint32_t size() const { return size_; }
    bool valid() const { return data_ != nullptr; }

   private:
    friend class BufferManager;
    BufferManager* bm_ = nullptr;
    void* frame_ = nullptr;  ///< Frame* when cached, else null.
    std::unique_ptr<uint8_t[]> owned_;  ///< Private copy (uncacheable page).
    const uint8_t* data_ = nullptr;
    uint32_t size_ = 0;

    void Release();
  };

  /// Returns the page, faulting it in if needed. `sequential` marks a
  /// forward scan: subsequent pages of the same file are prefetched.
  Result<PageRef> Get(PageSource* src, uint64_t file, uint32_t page,
                      bool sequential = false);

  /// Drops every cached page of `file` (after a segment is deleted).
  void DropFile(PageSource* src, uint64_t file);
  /// Drops every cached page of `src` (stream close).
  void DropSource(PageSource* src);

  size_t resident_pages() const;
  Stats stats() const;

 private:
  struct Key {
    PageSource* src;
    uint64_t file;
    uint32_t page;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = reinterpret_cast<uintptr_t>(k.src);
      h = h * 0x9e3779b97f4a7c15ULL + k.file;
      h = h * 0x9e3779b97f4a7c15ULL + k.page;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct Frame {
    Key key;
    std::unique_ptr<uint8_t[]> data;
    uint32_t len = 0;
    uint32_t pins = 0;
    bool in_lru = false;
    std::list<Frame*>::iterator lru_pos;
  };

  /// Loads (without pinning) `key` into the cache; no-op when present or
  /// uncacheable. Called with lock held.
  void PrefetchLocked(const Key& key);
  void EvictIfNeededLocked();
  void Unpin(void* frame);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<Key, std::unique_ptr<Frame>, KeyHash> frames_;
  std::list<Frame*> lru_;  ///< Unpinned frames, least-recent first.
  Stats stats_;
};

}  // namespace spool
}  // namespace tcq

#endif  // TCQ_SPOOL_BUFFER_MANAGER_H_
