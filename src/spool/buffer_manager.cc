#include "spool/buffer_manager.h"

#include <cstring>
#include <utility>

#include "common/logging.h"

namespace tcq {
namespace spool {

BufferManager::BufferManager(Options options) : options_(options) {
  TCQ_CHECK(options_.capacity_pages > 0);
}

BufferManager::~BufferManager() {
  // Every PageRef must be gone by now; pinned frames here mean a scan
  // outlived the spool.
  for (const auto& [key, frame] : frames_) {
    TCQ_CHECK(frame->pins == 0) << "spool page still pinned at shutdown";
  }
}

BufferManager::PageRef::PageRef(PageRef&& o) noexcept
    : bm_(std::exchange(o.bm_, nullptr)),
      frame_(std::exchange(o.frame_, nullptr)),
      owned_(std::move(o.owned_)),
      data_(std::exchange(o.data_, nullptr)),
      size_(std::exchange(o.size_, 0)) {}

BufferManager::PageRef& BufferManager::PageRef::operator=(
    PageRef&& o) noexcept {
  if (this != &o) {
    Release();
    bm_ = std::exchange(o.bm_, nullptr);
    frame_ = std::exchange(o.frame_, nullptr);
    owned_ = std::move(o.owned_);
    data_ = std::exchange(o.data_, nullptr);
    size_ = std::exchange(o.size_, 0);
  }
  return *this;
}

BufferManager::PageRef::~PageRef() { Release(); }

void BufferManager::PageRef::Release() {
  if (bm_ != nullptr && frame_ != nullptr) bm_->Unpin(frame_);
  bm_ = nullptr;
  frame_ = nullptr;
  owned_.reset();
  data_ = nullptr;
  size_ = 0;
}

Result<BufferManager::PageRef> BufferManager::Get(PageSource* src,
                                                  uint64_t file,
                                                  uint32_t page,
                                                  bool sequential) {
  const Key key{src, file, page};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    Frame* f = it->second.get();
    ++stats_.hits;
    if (f->in_lru) {
      lru_.erase(f->lru_pos);
      f->in_lru = false;
    }
    ++f->pins;
    PageRef ref;
    ref.bm_ = this;
    ref.frame_ = f;
    ref.data_ = f->data.get();
    ref.size_ = f->len;
    return ref;
  }
  ++stats_.misses;
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  uint32_t len = 0;
  bool cacheable = true;
  Status st = src->ReadPage(file, page, buf.get(), &len, &cacheable);
  if (!st.ok()) return st;
  if (!cacheable) {
    // Live tail page: hand the caller its own snapshot, cache nothing.
    PageRef ref;
    ref.data_ = buf.get();
    ref.size_ = len;
    ref.owned_ = std::move(buf);
    return ref;
  }
  auto frame = std::make_unique<Frame>();
  frame->key = key;
  frame->data = std::move(buf);
  frame->len = len;
  frame->pins = 1;
  Frame* f = frame.get();
  frames_.emplace(key, std::move(frame));
  EvictIfNeededLocked();
  if (sequential) {
    for (size_t i = 1; i <= options_.read_ahead_pages; ++i) {
      PrefetchLocked(Key{src, file, page + static_cast<uint32_t>(i)});
    }
  }
  PageRef ref;
  ref.bm_ = this;
  ref.frame_ = f;
  ref.data_ = f->data.get();
  ref.size_ = f->len;
  return ref;
}

void BufferManager::PrefetchLocked(const Key& key) {
  if (frames_.size() >= options_.capacity_pages) return;  // Don't churn.
  if (frames_.contains(key)) return;
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  uint32_t len = 0;
  bool cacheable = true;
  Status st = key.src->ReadPage(key.file, key.page, buf.get(), &len,
                                &cacheable);
  if (!st.ok() || !cacheable) return;  // Past EOF or live tail: stop here.
  auto frame = std::make_unique<Frame>();
  frame->key = key;
  frame->data = std::move(buf);
  frame->len = len;
  frame->pins = 0;
  frame->in_lru = true;
  lru_.push_back(frame.get());
  frame->lru_pos = std::prev(lru_.end());
  frames_.emplace(key, std::move(frame));
  ++stats_.readahead;
}

void BufferManager::EvictIfNeededLocked() {
  while (frames_.size() > options_.capacity_pages && !lru_.empty()) {
    Frame* victim = lru_.front();
    lru_.pop_front();
    frames_.erase(victim->key);
    ++stats_.evictions;
  }
}

void BufferManager::Unpin(void* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* f = static_cast<Frame*>(frame);
  TCQ_DCHECK(f->pins > 0);
  if (--f->pins == 0) {
    f->in_lru = true;
    lru_.push_back(f);
    f->lru_pos = std::prev(lru_.end());
    EvictIfNeededLocked();
  }
}

void BufferManager::DropFile(PageSource* src, uint64_t file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame* f = it->second.get();
    if (f->key.src == src && f->key.file == file) {
      TCQ_CHECK(f->pins == 0) << "spool: dropping a pinned page";
      if (f->in_lru) lru_.erase(f->lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferManager::DropSource(PageSource* src) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame* f = it->second.get();
    if (f->key.src == src) {
      TCQ_CHECK(f->pins == 0) << "spool: dropping a pinned page";
      if (f->in_lru) lru_.erase(f->lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t BufferManager::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

BufferManager::Stats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace spool
}  // namespace tcq
