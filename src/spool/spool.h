#ifndef TCQ_SPOOL_SPOOL_H_
#define TCQ_SPOOL_SPOOL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "spool/buffer_manager.h"
#include "spool/index.h"
#include "spool/segment.h"
#include "tuple/tuple.h"

namespace tcq {

/// The spool (DESIGN.md §16): a disk-backed history store the engine
/// demotes aged stream state into instead of dropping it — the paper's
/// §4.3 "queries over history" answer. One spool serves many stream keys
/// (archives, PSoup history, SteM state), each in its own directory of
/// append-only segments, all sharing one bounded page cache so resident
/// memory is a hard knob independent of history size.
///
/// Ordering contract: per key, appends with non-decreasing timestamps
/// form the MAIN run; an append below the main frontier is a LATE record,
/// and scans stitch it back exactly where Archive::InsertOrdered would
/// have placed it (after every record with ts <= its own at insert time).
/// Cancel() persists a tombstone and masks the newest matching record, so
/// a reopened spool replays the same cancellations deterministically.
///
/// Thread-safe: per-key mutex (appends and scans on one key serialize;
/// distinct keys proceed in parallel, meeting only at the page cache).
/// Scan callbacks run under the key's lock and must not re-enter the
/// spool on the same key.
class Spool {
 public:
  struct Options {
    std::string dir;
    /// Page-cache capacity (spool::kPageSize each) shared by all keys.
    size_t cache_pages = 256;
    size_t read_ahead_pages = 4;
    uint64_t segment_bytes = 4ull << 20;
    /// Per-key on-disk cap; oldest whole segments drop past it. 0 = off.
    uint64_t retention_bytes = 0;
    /// fsync every record — crash-safety tests; ruinous for throughput.
    bool sync_each_append = false;
  };

  /// Opens the spool at options.dir, adopting any keys already on disk
  /// (indices are rebuilt from a CRC-checked segment scan; torn tails
  /// truncate to the last complete record).
  static Result<std::unique_ptr<Spool>> Open(Options options);
  ~Spool();

  Spool(const Spool&) = delete;
  Spool& operator=(const Spool&) = delete;

  /// Appends one tuple under `key` (a demotion). Routed to the main or
  /// late run by timestamp.
  Status Append(const std::string& key, const Tuple& t);

  /// Retraction over spooled history: masks the newest record under `key`
  /// whose payload matches `t`, persisting a tombstone. Returns whether a
  /// match was found.
  Result<bool> Cancel(const std::string& key, const Tuple& t);

  /// Applies `fn` to live records with ts in [lo, hi] in logical
  /// (timestamp-merge) order until it returns false. Reads fault through
  /// the shared page cache.
  Status Scan(const std::string& key, Timestamp lo, Timestamp hi,
              const std::function<bool(const Tuple&)>& fn) const;

  /// Chunked scan for replay: collects records in [lo, hi] into `out`,
  /// stopping at the first timestamp boundary once `max_records` are
  /// collected (equal-timestamp runs are never split). Returns the next
  /// lo to resume from, or kMaxTimestamp when the range is exhausted.
  Result<Timestamp> ScanChunk(const std::string& key, Timestamp lo,
                              Timestamp hi, size_t max_records,
                              TupleVector* out) const;

  /// Flushes and fsyncs `key`'s active segment.
  Status Sync(const std::string& key);

  /// Physically drops whole segments of `key` whose newest record is
  /// older than `ts`. Segment-granular: callers needing an exact floor
  /// clamp their scans (the archive does).
  Status EvictBefore(const std::string& key, Timestamp ts);

  // --- Introspection -------------------------------------------------
  bool HasKey(const std::string& key) const;
  std::vector<std::string> Keys() const;
  /// Live records under `key` (0 when absent).
  size_t records(const std::string& key) const;
  Timestamp min_timestamp(const std::string& key) const;
  /// Newest main-run timestamp under `key` (kMinTimestamp when absent).
  Timestamp main_frontier(const std::string& key) const;
  uint64_t bytes() const;
  size_t segments() const;
  spool::BufferManager::Stats cache_stats() const {
    return cache_.stats();
  }
  size_t cache_pages() const { return cache_.resident_pages(); }
  const std::string& dir() const { return options_.dir; }

  /// Test hook: forwards to SegmentStore::SetTornWriteForTest for `key`.
  void SetTornWriteForTest(const std::string& key, int nth_write);

 private:
  struct Stream;

  explicit Spool(Options options);

  /// Looks up or creates (opening the on-disk state of) `key`.
  Result<Stream*> GetOrCreate(const std::string& key);
  Stream* Find(const std::string& key) const;

  /// Scan with physical detail, masked records already filtered. Returns
  /// false if fn stopped the scan early.
  using DetailFn = std::function<bool(
      const Tuple& t, spool::RecordKind kind, const spool::RecordLocation&)>;
  Status ScanLocked(Stream& s, Timestamp lo, Timestamp hi,
                    const DetailFn& fn) const;
  Status ReadRecordAt(Stream& s, const spool::RecordLocation& loc,
                      spool::RecordKind* kind, Tuple* t) const;
  void DropSegments(Stream& s, const std::vector<uint64_t>& ids);

  Options options_;
  mutable spool::BufferManager cache_;
  mutable std::mutex registry_mu_;
  std::unordered_map<std::string, std::unique_ptr<Stream>> streams_;
};

}  // namespace tcq

#endif  // TCQ_SPOOL_SPOOL_H_
