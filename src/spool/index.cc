#include "spool/index.h"

#include <algorithm>

#include "common/logging.h"

namespace tcq {
namespace spool {

void StreamIndex::NoteMain(const RecordLocation& loc, Timestamp ts) {
  TCQ_DCHECK(ts >= main_frontier_)
      << "spool index: main run must be timestamp-ordered";
  main_frontier_ = ts;
  if (main_.empty() || main_.back().segment != loc.segment ||
      main_.back().page != loc.page) {
    main_.push_back(MainEntry{loc.segment, loc.page, ts});
  }
  ++records_total_;
  ++per_segment_[loc.segment].records;
}

void StreamIndex::NoteLate(const RecordLocation& loc, Timestamp ts) {
  // Stable upper-bound insert: a late record lands after every record
  // with ts <= its own, reproducing Archive::InsertOrdered placement.
  const auto pos = std::upper_bound(
      late_.begin(), late_.end(), ts,
      [](Timestamp v, const LateEntry& e) { return v < e.ts; });
  late_.insert(pos, LateEntry{ts, loc});
  ++records_total_;
  ++per_segment_[loc.segment].records;
}

void StreamIndex::AddMask(const RecordLocation& loc) {
  if (masked_.insert(loc).second) {
    ++masked_total_;
    ++per_segment_[loc.segment].masked;
  }
}

std::optional<StreamIndex::Pos> StreamIndex::SeekMain(Timestamp lo) const {
  if (main_.empty()) return std::nullopt;
  // Last entry with first_ts < lo; records with ts == lo may start on
  // that page even though its first record is older.
  const auto it = std::lower_bound(
      main_.begin(), main_.end(), lo,
      [](const MainEntry& e, Timestamp v) { return e.first_ts < v; });
  if (it == main_.begin()) return Pos{it->segment, it->page};
  const auto prev = std::prev(it);
  return Pos{prev->segment, prev->page};
}

void StreamIndex::CollectLate(Timestamp lo, Timestamp hi,
                              std::vector<LateEntry>* out) const {
  const auto first = std::lower_bound(
      late_.begin(), late_.end(), lo,
      [](const LateEntry& e, Timestamp v) { return e.ts < v; });
  for (auto it = first; it != late_.end() && it->ts <= hi; ++it) {
    out->push_back(*it);
  }
}

void StreamIndex::DropSegment(uint64_t segment) {
  const auto counts = per_segment_.find(segment);
  if (counts != per_segment_.end()) {
    records_total_ -= counts->second.records;
    masked_total_ -= counts->second.masked;
    per_segment_.erase(counts);
  }
  std::erase_if(main_,
                [&](const MainEntry& e) { return e.segment == segment; });
  std::erase_if(late_,
                [&](const LateEntry& e) { return e.loc.segment == segment; });
  std::erase_if(masked_, [&](const RecordLocation& l) {
    return l.segment == segment;
  });
}

Timestamp StreamIndex::min_ts() const {
  Timestamp min = kMaxTimestamp;
  if (!main_.empty()) min = main_.front().first_ts;
  if (!late_.empty()) min = std::min(min, late_.front().ts);
  return min;
}

}  // namespace spool
}  // namespace tcq
