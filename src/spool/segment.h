#ifndef TCQ_SPOOL_SEGMENT_H_
#define TCQ_SPOOL_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "tuple/tuple.h"

namespace tcq {
namespace spool {

/// On-disk format (DESIGN.md §16). A segment file is a sequence of fixed
/// 4 KiB pages: page 0 is the segment header, pages 1..N hold records.
/// Records are fragmented RocksDB-WAL style so a page is always parseable
/// on its own: each fragment is
///
///   crc32 (4B, over type+payload) | length (2B) | type (1B) | payload
///
/// with type FULL / FIRST / MIDDLE / LAST describing the fragment's place
/// in its record. A fragment never crosses a page boundary; when fewer
/// than kFragmentHeader + 1 bytes remain in a page, the remainder is
/// zero-filled (a zero header is the page trailer). Torn or corrupt tails
/// truncate to the last complete record on open.
constexpr uint32_t kPageSize = 4096;
constexpr size_t kFragmentHeader = 7;
constexpr uint64_t kSegmentMagic = 0x74637173706f6f31ULL;  // "tcqspoo1"
constexpr uint32_t kSegmentVersion = 1;

/// Software CRC-32 (IEEE polynomial, reflected).
uint32_t Crc32(const uint8_t* data, size_t n);

enum class FragmentType : uint8_t {
  kFull = 1,
  kFirst = 2,
  kMiddle = 3,
  kLast = 4,
};

/// What a record holds. Main-run records arrive in timestamp order; late
/// records are kIngestLate stragglers physically appended out of order and
/// logically merged back by the index; a tombstone cancels the newest
/// earlier record whose payload matches (retraction over demoted history).
enum class RecordKind : uint8_t {
  kMain = 1,
  kLate = 2,
  kTombstone = 3,
};

/// Physical address of a record: the page and in-page offset of its first
/// fragment. Stable for the life of the segment.
struct RecordLocation {
  uint64_t segment = 0;
  uint32_t page = 0;
  uint32_t offset = 0;

  bool operator==(const RecordLocation&) const = default;
  bool operator<(const RecordLocation& o) const {
    if (segment != o.segment) return segment < o.segment;
    if (page != o.page) return page < o.page;
    return offset < o.offset;
  }
};

struct RecordLocationHash {
  size_t operator()(const RecordLocation& l) const {
    uint64_t h = l.segment * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(l.page) << 13) + l.offset;
    h *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

/// Serializes one record (kind + tuple) to `out` (appended). The payload
/// preserves everything delivery depends on: timestamp, seq, retraction
/// sign, and typed cells.
void EncodeRecord(RecordKind kind, const Tuple& t, std::string* out);

/// Decodes a record payload produced by EncodeRecord.
Status DecodeRecord(const uint8_t* data, size_t n, RecordKind* kind,
                    Tuple* t);

/// Parsed fragment view into a page buffer.
struct Fragment {
  FragmentType type;
  const uint8_t* data;
  uint16_t len;
  uint32_t end;  ///< In-page offset one past this fragment.
};

/// Parse result for the fragment at `page[off]`.
enum class FragmentStatus : uint8_t {
  kOk = 0,       ///< *frag is valid.
  kEndOfPage,    ///< Zero trailer or no room for a header: go to next page.
  kCorrupt,      ///< CRC mismatch or malformed header: stop (torn tail).
};
FragmentStatus ParseFragment(const uint8_t* page, uint32_t page_len,
                             uint32_t off, Fragment* frag);

/// Counters the segment layer reports into (wired to tcq.spool.* by the
/// owning Spool; null members are simply not reported).
struct SegmentIoStats {
  std::function<void(uint64_t us)> on_read_us;
  std::function<void(uint64_t us)> on_write_us;
  std::function<void()> on_torn_truncation;
  std::function<void()> on_crc_rejected;
  std::function<void()> on_segment_dropped;
  std::function<void(int64_t delta)> on_bytes;     ///< Disk bytes delta.
  std::function<void(int64_t delta)> on_segments;  ///< Segment count delta.
};

/// A record recovered while opening an existing store, in physical order.
struct RecoveredRecord {
  RecordKind kind;
  Tuple tuple;
  RecordLocation location;
};

/// Append-only segment store for ONE stream key: a directory of
/// `seg-NNNNNNNN.spool` files. Appends go to a single active segment
/// through an in-memory tail page; completed pages are written
/// immediately, the partial tail only on Sync()/rotation. Rotation seals
/// the active segment (fsync) once it reaches `segment_bytes`. Retention
/// drops whole sealed segments from the front by total bytes or
/// timestamp age.
///
/// Thread safety: none here — the owning Spool serializes all calls
/// (including ReadPage issued by the buffer manager mid-scan) under its
/// per-stream mutex.
class SegmentStore {
 public:
  struct Options {
    uint64_t segment_bytes = 4ull << 20;  ///< Rotate past this much data.
    uint64_t retention_bytes = 0;         ///< 0 = unbounded.
    Timestamp retention_span = kMaxTimestamp;
    bool sync_each_append = false;  ///< fsync every record (crash tests).
  };

  /// Opens (creating if needed) the store at `dir`. Existing segments are
  /// scanned with CRC validation — the tail segment is truncated to its
  /// last complete record — and every surviving record is handed to
  /// `recover` in physical order (null = discard, used by tests).
  static Result<std::unique_ptr<SegmentStore>> Open(
      std::string dir, Options options, SegmentIoStats stats,
      const std::function<void(RecoveredRecord&&)>& recover);

  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Appends one record; returns where its first fragment landed.
  Result<RecordLocation> Append(RecordKind kind, const Tuple& t);

  /// Flushes the partial tail page and fsyncs the active segment.
  Status Sync();

  /// Reads page `page` of segment `segment` into `buf` (>= kPageSize).
  /// *len receives the valid byte count (short for a truncated tail).
  /// *cacheable is false only for the active segment's in-memory tail
  /// page, which may still grow.
  Status ReadPage(uint64_t segment, uint32_t page, uint8_t* buf,
                  uint32_t* len, bool* cacheable) const;

  /// Drops whole sealed segments from the front while (a) total bytes
  /// exceed retention_bytes or (b) a segment's newest timestamp is below
  /// `age_cutoff`. Returns the ids dropped (caller invalidates cache and
  /// index entries).
  std::vector<uint64_t> EnforceRetention(Timestamp age_cutoff);

  /// Lowest live segment id, or 0 when empty.
  uint64_t min_segment() const;
  /// Live segment ids in physical (ascending) order.
  std::vector<uint64_t> SegmentIds() const;
  size_t segment_count() const { return segments_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }
  const std::string& dir() const { return dir_; }

  /// First data page of a segment (page 0 is the header).
  static constexpr uint32_t kFirstDataPage = 1;

  /// Test hook: the next `n`-th page write (1 = the very next) is torn —
  /// only the first half of the page reaches disk, then every later write
  /// to this store fails, simulating a crash mid-write.
  void SetTornWriteForTest(int nth_write) { torn_write_at_ = nth_write; }

 private:
  struct Segment {
    uint64_t id = 0;
    std::string path;
    int fd = -1;
    uint64_t file_bytes = 0;  ///< Valid bytes on disk.
    Timestamp min_ts = kMaxTimestamp;
    Timestamp max_ts = kMinTimestamp;
    bool sealed = true;
  };

  SegmentStore(std::string dir, Options options, SegmentIoStats stats);

  Status RecoverExisting(const std::function<void(RecoveredRecord&&)>& fn);
  Status RecoverSegment(Segment* seg,
                        const std::function<void(RecoveredRecord&&)>& fn);
  Status OpenActiveSegment();
  Status FinishTailPage();  ///< Zero-fills and writes the tail, advances.
  /// Writes [data, data+len) at absolute byte offset `off`. All segment
  /// writes go through here (and through the torn-write test hook).
  Status WriteRange(Segment* seg, uint64_t off, const uint8_t* data,
                    uint32_t len);
  /// Flushes the not-yet-written suffix of the tail page. Never rewrites
  /// bytes already on disk, so a torn write can only damage data newer
  /// than the last sync.
  Status FlushTailDelta();
  Status SealActive();
  static std::string SegmentPath(const std::string& dir, uint64_t id);

  std::string dir_;
  Options options_;
  SegmentIoStats stats_;
  std::vector<Segment> segments_;  ///< Ordered by id; last may be active.
  uint64_t next_id_ = 1;
  uint64_t total_bytes_ = 0;

  // Active-segment writer state. active_ indexes segments_ (or npos).
  static constexpr size_t kNone = static_cast<size_t>(-1);
  size_t active_ = kNone;
  uint32_t tail_page_ = kFirstDataPage;
  uint32_t tail_used_ = 0;
  uint32_t tail_synced_ = 0;  ///< Tail-page bytes already on disk.
  uint8_t tail_buf_[kPageSize] = {};
  uint64_t active_data_bytes_ = 0;  ///< Record bytes, for rotation.

  int torn_write_at_ = 0;  ///< Test hook; 0 = disabled.
  bool io_failed_ = false;
};

}  // namespace spool
}  // namespace tcq

#endif  // TCQ_SPOOL_SEGMENT_H_
