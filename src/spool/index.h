#ifndef TCQ_SPOOL_INDEX_H_
#define TCQ_SPOOL_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "spool/segment.h"

namespace tcq {
namespace spool {

/// In-memory index over one stream's spooled records, rebuilt from the
/// segment scan on open and maintained on every append (DESIGN.md §16).
///
/// Main-run records (timestamp-ordered appends) get a SPARSE index: one
/// entry per (segment, page) a main record starts in, keyed by the first
/// such record's timestamp — a range probe seeks to the right page and
/// pays at most one page of overshoot. Late records (kIngestLate
/// stragglers, physically out of order) get EXACT entries so scans can
/// stitch them back into timestamp order; tombstones mask cancelled
/// records by exact location. ~24 bytes per 4 KiB page plus a few dozen
/// per straggler: memory stays a fraction of a percent of history size.
class StreamIndex {
 public:
  struct Pos {
    uint64_t segment;
    uint32_t page;
  };
  struct LateEntry {
    Timestamp ts;
    RecordLocation loc;
  };

  /// Records a main-run append/recovery at `loc` (physical order).
  void NoteMain(const RecordLocation& loc, Timestamp ts);
  /// Records a late append/recovery at `loc`.
  void NoteLate(const RecordLocation& loc, Timestamp ts);
  /// Masks the record at `loc` (a tombstone cancelled it).
  void AddMask(const RecordLocation& loc);

  bool IsMasked(const RecordLocation& loc) const {
    return masked_total_ > 0 && masked_.contains(loc);
  }

  /// Start position for a main-run scan of timestamps >= lo: the last
  /// indexed page whose first main timestamp is strictly below lo (equal
  /// timestamps may begin on an earlier page), or the first page. Empty
  /// when no main records are live.
  std::optional<Pos> SeekMain(Timestamp lo) const;

  /// Late entries with ts in [lo, hi], in merge order (stable by ts).
  void CollectLate(Timestamp lo, Timestamp hi,
                   std::vector<LateEntry>* out) const;

  /// Forgets everything in `segment` (dropped by retention).
  void DropSegment(uint64_t segment);

  /// Live record count (appended minus masked, over live segments).
  size_t records() const { return records_total_ - masked_total_; }
  bool has_late() const { return !late_.empty(); }
  size_t late_count() const { return late_.size(); }

  /// Oldest live timestamp (approximate under cancellation: a masked
  /// oldest record is still counted). kMaxTimestamp when empty.
  Timestamp min_ts() const;
  /// Newest main-run timestamp ever seen (monotone; survives retention).
  Timestamp main_frontier() const { return main_frontier_; }

 private:
  struct MainEntry {
    uint64_t segment;
    uint32_t page;
    Timestamp first_ts;
  };
  struct SegCounts {
    size_t records = 0;
    size_t masked = 0;
  };

  std::vector<MainEntry> main_;  ///< Physical order == timestamp order.
  std::vector<LateEntry> late_;  ///< Sorted by ts, stable (insert order).
  std::unordered_set<RecordLocation, RecordLocationHash> masked_;
  std::unordered_map<uint64_t, SegCounts> per_segment_;
  size_t records_total_ = 0;
  size_t masked_total_ = 0;
  Timestamp main_frontier_ = kMinTimestamp;
};

}  // namespace spool
}  // namespace tcq

#endif  // TCQ_SPOOL_INDEX_H_
