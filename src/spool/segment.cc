#include "spool/segment.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/logging.h"

namespace tcq {
namespace spool {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Bounds-checked little-endian reader over a record payload.
class Reader {
 public:
  Reader(const uint8_t* data, size_t n) : p_(data), end_(data + n) {}
  bool U8(uint8_t* v) {
    if (end_ - p_ < 1) return false;
    *v = *p_++;
    return true;
  }
  bool U16(uint16_t* v) {
    if (end_ - p_ < 2) return false;
    *v = LoadU16(p_);
    p_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (end_ - p_ < 4) return false;
    *v = LoadU32(p_);
    p_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (end_ - p_ < 8) return false;
    *v = LoadU64(p_);
    p_ += 8;
    return true;
  }
  bool Bytes(size_t n, const uint8_t** out) {
    if (static_cast<size_t>(end_ - p_) < n) return false;
    *out = p_;
    p_ += n;
    return true;
  }
  bool AtEnd() const { return p_ == end_; }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void EncodeRecord(RecordKind kind, const Tuple& t, std::string* out) {
  out->push_back(static_cast<char>(kind));
  out->push_back(t.retraction() ? 1 : 0);
  PutU64(out, static_cast<uint64_t>(t.timestamp()));
  PutU64(out, static_cast<uint64_t>(t.seq()));
  PutU16(out, static_cast<uint16_t>(t.arity()));
  for (size_t i = 0; i < t.arity(); ++i) {
    const Value& v = t.cell(i);
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        out->push_back(v.bool_value() ? 1 : 0);
        break;
      case ValueType::kInt64:
        PutU64(out, static_cast<uint64_t>(v.int64_value()));
        break;
      case ValueType::kDouble: {
        uint64_t bits;
        const double d = v.double_value();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(out, bits);
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.string_value();
        PutU32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
}

Status DecodeRecord(const uint8_t* data, size_t n, RecordKind* kind,
                    Tuple* t) {
  Reader r(data, n);
  uint8_t k = 0, flags = 0;
  uint64_t ts = 0, seq = 0;
  uint16_t arity = 0;
  if (!r.U8(&k) || !r.U8(&flags) || !r.U64(&ts) || !r.U64(&seq) ||
      !r.U16(&arity)) {
    return Status::ParseError("spool record header truncated");
  }
  if (k < 1 || k > 3) return Status::ParseError("spool record bad kind");
  std::vector<Value> cells;
  cells.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    uint8_t type = 0;
    if (!r.U8(&type)) return Status::ParseError("spool cell truncated");
    switch (static_cast<ValueType>(type)) {
      case ValueType::kNull:
        cells.push_back(Value::Null());
        break;
      case ValueType::kBool: {
        uint8_t b = 0;
        if (!r.U8(&b)) return Status::ParseError("spool cell truncated");
        cells.push_back(Value::Bool(b != 0));
        break;
      }
      case ValueType::kInt64: {
        uint64_t v = 0;
        if (!r.U64(&v)) return Status::ParseError("spool cell truncated");
        cells.push_back(Value::Int64(static_cast<int64_t>(v)));
        break;
      }
      case ValueType::kDouble: {
        uint64_t bits = 0;
        if (!r.U64(&bits)) return Status::ParseError("spool cell truncated");
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        cells.push_back(Value::Double(d));
        break;
      }
      case ValueType::kString: {
        uint32_t len = 0;
        const uint8_t* bytes = nullptr;
        if (!r.U32(&len) || !r.Bytes(len, &bytes)) {
          return Status::ParseError("spool cell truncated");
        }
        cells.push_back(
            Value::String(std::string(reinterpret_cast<const char*>(bytes),
                                      len)));
        break;
      }
      default:
        return Status::ParseError("spool cell bad type");
    }
  }
  if (!r.AtEnd()) return Status::ParseError("spool record trailing bytes");
  Tuple out(std::move(cells), static_cast<Timestamp>(ts));
  out.set_seq(static_cast<int64_t>(seq));
  out.set_retraction(flags != 0);
  *kind = static_cast<RecordKind>(k);
  *t = std::move(out);
  return Status::OK();
}

FragmentStatus ParseFragment(const uint8_t* page, uint32_t page_len,
                             uint32_t off, Fragment* frag) {
  if (off + kFragmentHeader > page_len) return FragmentStatus::kEndOfPage;
  const uint32_t crc = LoadU32(page + off);
  const uint16_t len = LoadU16(page + off + 4);
  const uint8_t type = page[off + 6];
  if (crc == 0 && len == 0 && type == 0) return FragmentStatus::kEndOfPage;
  if (type < 1 || type > 4) return FragmentStatus::kCorrupt;
  if (off + kFragmentHeader + len > page_len) return FragmentStatus::kCorrupt;
  // CRC covers the type byte plus payload — contiguous on the page.
  if (Crc32(page + off + 6, 1 + static_cast<size_t>(len)) != crc) {
    return FragmentStatus::kCorrupt;
  }
  frag->type = static_cast<FragmentType>(type);
  frag->data = page + off + kFragmentHeader;
  frag->len = len;
  frag->end = off + kFragmentHeader + len;
  return FragmentStatus::kOk;
}

// ---------------------------------------------------------------------------
// SegmentStore

SegmentStore::SegmentStore(std::string dir, Options options,
                           SegmentIoStats stats)
    : dir_(std::move(dir)), options_(options), stats_(std::move(stats)) {}

SegmentStore::~SegmentStore() {
  if (active_ != kNone) {
    // Best effort: make the tail durable on clean shutdown.
    (void)Sync();
  }
  // Give back the global gauges this store contributed to.
  if (stats_.on_bytes && total_bytes_ > 0) {
    stats_.on_bytes(-static_cast<int64_t>(total_bytes_));
  }
  if (stats_.on_segments && !segments_.empty()) {
    stats_.on_segments(-static_cast<int64_t>(segments_.size()));
  }
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

std::string SegmentStore::SegmentPath(const std::string& dir, uint64_t id) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08llu.spool",
                static_cast<unsigned long long>(id));
  return dir + "/" + name;
}

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    std::string dir, Options options, SegmentIoStats stats,
    const std::function<void(RecoveredRecord&&)>& recover) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("spool: cannot create " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<SegmentStore> store(
      new SegmentStore(std::move(dir), options, std::move(stats)));
  Status st = store->RecoverExisting(recover);
  if (!st.ok()) return st;
  return store;
}

Status SegmentStore::RecoverExisting(
    const std::function<void(RecoveredRecord&&)>& fn) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long id = 0;
    if (std::sscanf(name.c_str(), "seg-%llu.spool", &id) == 1 &&
        name.size() == std::strlen("seg-00000000.spool")) {
      found.emplace_back(id, entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("spool: cannot list " + dir_ + ": " +
                            ec.message());
  }
  std::sort(found.begin(), found.end());
  for (auto& [id, path] : found) {
    next_id_ = std::max(next_id_, id + 1);
    Segment seg;
    seg.id = id;
    seg.path = path;
    seg.fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (seg.fd < 0) {
      return Status::Internal("spool: cannot open " + path);
    }
    Status st = RecoverSegment(&seg, fn);
    if (!st.ok()) {
      // Quarantine the unreadable segment so a later reopen does not trip
      // over it again; newer segments still serve.
      ::close(seg.fd);
      std::error_code rec;
      std::filesystem::rename(path, path + ".bad", rec);
      if (stats_.on_crc_rejected) stats_.on_crc_rejected();
      TCQ_LOG(Warn) << "spool: quarantined corrupt segment " << path
                       << ": " << st.message();
      continue;
    }
    total_bytes_ += seg.file_bytes;
    segments_.push_back(std::move(seg));
  }
  if (stats_.on_bytes && total_bytes_ > 0) {
    stats_.on_bytes(static_cast<int64_t>(total_bytes_));
  }
  if (stats_.on_segments && !segments_.empty()) {
    stats_.on_segments(static_cast<int64_t>(segments_.size()));
  }
  return Status::OK();
}

Status SegmentStore::RecoverSegment(
    Segment* seg, const std::function<void(RecoveredRecord&&)>& fn) {
  struct stat sb;
  if (::fstat(seg->fd, &sb) != 0) {
    return Status::Internal("spool: fstat failed for " + seg->path);
  }
  const uint64_t file_size = static_cast<uint64_t>(sb.st_size);
  if (file_size < kPageSize) {
    // Crash between create and header write: the file holds nothing.
    ::close(seg->fd);
    seg->fd = -1;
    std::error_code ec;
    std::filesystem::remove(seg->path, ec);
    return Status::Internal("spool: segment shorter than its header");
  }
  uint8_t page[kPageSize];
  if (::pread(seg->fd, page, kPageSize, 0) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::Internal("spool: cannot read segment header");
  }
  if (LoadU64(page) != kSegmentMagic ||
      LoadU32(page + 8) != kSegmentVersion ||
      LoadU32(page + 12) != kPageSize) {
    return Status::Internal("spool: bad segment header");
  }

  // Scan data pages fragment by fragment. valid_end tracks the byte just
  // past the last COMPLETE record; anything beyond it (torn chain, CRC
  // mismatch, partial page) is truncated away.
  uint64_t valid_end = kPageSize;
  bool corrupt = false;
  std::string pending;  // Partial record across FIRST/MIDDLE fragments.
  RecordLocation pending_loc;
  bool in_chain = false;
  for (uint32_t pageno = kFirstDataPage; !corrupt; ++pageno) {
    const uint64_t off = static_cast<uint64_t>(pageno) * kPageSize;
    if (off >= file_size) break;
    const uint32_t len =
        static_cast<uint32_t>(std::min<uint64_t>(kPageSize, file_size - off));
    const ssize_t got = ::pread(seg->fd, page, len, off);
    if (got != static_cast<ssize_t>(len)) {
      corrupt = true;
      break;
    }
    uint32_t at = 0;
    bool clean_trailer = false;
    while (true) {
      Fragment frag;
      const FragmentStatus fs = ParseFragment(page, len, at, &frag);
      if (fs == FragmentStatus::kEndOfPage) {
        clean_trailer = true;
        break;
      }
      if (fs == FragmentStatus::kCorrupt) {
        corrupt = true;
        if (stats_.on_crc_rejected) stats_.on_crc_rejected();
        break;
      }
      const bool starts = frag.type == FragmentType::kFull ||
                          frag.type == FragmentType::kFirst;
      if (starts == in_chain) {
        corrupt = true;  // Chain discontinuity: truncate here.
        break;
      }
      if (starts) {
        pending.clear();
        pending_loc = RecordLocation{seg->id, pageno, at};
      }
      pending.append(reinterpret_cast<const char*>(frag.data), frag.len);
      in_chain = frag.type == FragmentType::kFirst ||
                 frag.type == FragmentType::kMiddle;
      if (!in_chain) {
        RecordKind kind;
        Tuple t;
        Status st = DecodeRecord(
            reinterpret_cast<const uint8_t*>(pending.data()), pending.size(),
            &kind, &t);
        if (!st.ok()) {
          corrupt = true;
          break;
        }
        seg->min_ts = std::min(seg->min_ts, t.timestamp());
        seg->max_ts = std::max(seg->max_ts, t.timestamp());
        valid_end = off + frag.end;
        if (fn) fn(RecoveredRecord{kind, std::move(t), pending_loc});
      }
      at = frag.end;
    }
    // Zero padding after a page's last fragment is part of the format
    // (FinishTailPage zero-fills), not a torn tail: a page that parses
    // cleanly to its trailer with an all-zero remainder is valid through
    // its end. A page ending mid-chain stays provisional — the chain must
    // complete on a later page to advance valid_end.
    if (clean_trailer && !in_chain) {
      bool zeros = true;
      for (uint32_t i = at; i < len; ++i) zeros = zeros && page[i] == 0;
      if (zeros) valid_end = std::max<uint64_t>(valid_end, off + len);
    }
  }
  if (valid_end < file_size) {
    if (::ftruncate(seg->fd, static_cast<off_t>(valid_end)) != 0) {
      return Status::Internal("spool: truncate failed for " + seg->path);
    }
    if (stats_.on_torn_truncation) stats_.on_torn_truncation();
    TCQ_LOG(Warn) << "spool: truncated torn tail of " << seg->path
                     << " from " << file_size << " to " << valid_end
                     << " bytes";
  }
  seg->file_bytes = valid_end;
  seg->sealed = true;
  return Status::OK();
}

Status SegmentStore::OpenActiveSegment() {
  Segment seg;
  seg.id = next_id_++;
  seg.path = SegmentPath(dir_, seg.id);
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (seg.fd < 0) {
    return Status::Internal("spool: cannot create " + seg.path);
  }
  seg.sealed = false;
  uint8_t header[kPageSize] = {};
  for (int i = 0; i < 8; ++i) {
    header[i] = static_cast<uint8_t>(kSegmentMagic >> (8 * i));
  }
  StoreU32(header + 8, kSegmentVersion);
  StoreU32(header + 12, kPageSize);
  segments_.push_back(std::move(seg));
  active_ = segments_.size() - 1;
  tail_page_ = kFirstDataPage;
  tail_used_ = 0;
  tail_synced_ = 0;
  active_data_bytes_ = 0;
  std::memset(tail_buf_, 0, sizeof(tail_buf_));
  Status st = WriteRange(&segments_[active_], 0, header, kPageSize);
  if (!st.ok()) return st;
  segments_[active_].file_bytes = kPageSize;
  total_bytes_ += kPageSize;
  if (stats_.on_bytes) stats_.on_bytes(kPageSize);
  if (stats_.on_segments) stats_.on_segments(1);
  return Status::OK();
}

Status SegmentStore::WriteRange(Segment* seg, uint64_t off,
                                const uint8_t* data, uint32_t len) {
  if (io_failed_) {
    return Status::Internal("spool: store failed by injected torn write");
  }
  uint32_t write_len = len;
  bool tearing = false;
  if (torn_write_at_ > 0 && --torn_write_at_ == 0) {
    write_len = len / 2;  // Simulated crash mid-write.
    tearing = true;
  }
  const uint64_t start = stats_.on_write_us ? NowUs() : 0;
  const ssize_t wrote =
      ::pwrite(seg->fd, data, write_len, static_cast<off_t>(off));
  if (stats_.on_write_us) stats_.on_write_us(NowUs() - start);
  if (wrote != static_cast<ssize_t>(write_len)) {
    return Status::Internal("spool: short write to " + seg->path);
  }
  if (tearing) {
    ::fsync(seg->fd);
    io_failed_ = true;
    return Status::Internal("spool: injected torn write");
  }
  return Status::OK();
}

Status SegmentStore::FlushTailDelta() {
  TCQ_DCHECK(active_ != kNone);
  if (tail_used_ <= tail_synced_) return Status::OK();
  Segment& seg = segments_[active_];
  const uint64_t base = static_cast<uint64_t>(tail_page_) * kPageSize;
  Status st = WriteRange(&seg, base + tail_synced_, tail_buf_ + tail_synced_,
                         tail_used_ - tail_synced_);
  if (!st.ok()) return st;
  tail_synced_ = tail_used_;
  const uint64_t new_end = base + tail_used_;
  if (new_end > seg.file_bytes) {
    const int64_t delta = static_cast<int64_t>(new_end - seg.file_bytes);
    total_bytes_ += static_cast<uint64_t>(delta);
    if (stats_.on_bytes) stats_.on_bytes(delta);
    seg.file_bytes = new_end;
  }
  return Status::OK();
}

Status SegmentStore::FinishTailPage() {
  TCQ_DCHECK(active_ != kNone);
  std::memset(tail_buf_ + tail_used_, 0, kPageSize - tail_used_);
  tail_used_ = kPageSize;
  Status st = FlushTailDelta();
  if (!st.ok()) return st;
  ++tail_page_;
  tail_used_ = 0;
  tail_synced_ = 0;
  std::memset(tail_buf_, 0, sizeof(tail_buf_));
  return Status::OK();
}

Result<RecordLocation> SegmentStore::Append(RecordKind kind, const Tuple& t) {
  if (active_ == kNone) {
    Status st = OpenActiveSegment();
    if (!st.ok()) return st;
  }
  std::string payload;
  EncodeRecord(kind, t, &payload);

  // Place the first fragment: if the tail cannot fit a header plus one
  // payload byte, close it out first.
  if (tail_used_ + kFragmentHeader + 1 > kPageSize) {
    Status st = FinishTailPage();
    if (!st.ok()) return st;
  }
  RecordLocation loc{segments_[active_].id, tail_page_, tail_used_};

  size_t at = 0;
  bool first = true;
  while (first || at < payload.size()) {
    if (tail_used_ + kFragmentHeader + 1 > kPageSize) {
      Status st = FinishTailPage();
      if (!st.ok()) return st;
    }
    const size_t room = kPageSize - tail_used_ - kFragmentHeader;
    const size_t n = std::min(room, payload.size() - at);
    const bool last = at + n == payload.size();
    const FragmentType type =
        first ? (last ? FragmentType::kFull : FragmentType::kFirst)
              : (last ? FragmentType::kLast : FragmentType::kMiddle);
    uint8_t* frag = tail_buf_ + tail_used_;
    frag[6] = static_cast<uint8_t>(type);
    std::memcpy(frag + kFragmentHeader, payload.data() + at, n);
    StoreU32(frag, Crc32(frag + 6, 1 + n));
    StoreU16(frag + 4, static_cast<uint16_t>(n));
    tail_used_ += static_cast<uint32_t>(kFragmentHeader + n);
    at += n;
    first = false;
  }
  active_data_bytes_ += payload.size();

  Segment& seg = segments_[active_];
  seg.min_ts = std::min(seg.min_ts, t.timestamp());
  seg.max_ts = std::max(seg.max_ts, t.timestamp());

  if (options_.sync_each_append) {
    Status st = Sync();
    if (!st.ok()) return st;
  }
  if (active_data_bytes_ >= options_.segment_bytes) {
    Status st = SealActive();
    if (!st.ok()) return st;
  }
  return loc;
}

Status SegmentStore::Sync() {
  if (active_ == kNone) return Status::OK();
  Status st = FlushTailDelta();
  if (!st.ok()) return st;
  if (::fsync(segments_[active_].fd) != 0) {
    return Status::Internal("spool: fsync failed for " +
                            segments_[active_].path);
  }
  return Status::OK();
}

Status SegmentStore::SealActive() {
  TCQ_DCHECK(active_ != kNone);
  if (tail_used_ > 0) {
    Status st = FinishTailPage();
    if (!st.ok()) return st;
  }
  Segment& seg = segments_[active_];
  if (::fsync(seg.fd) != 0) {
    return Status::Internal("spool: fsync failed for " + seg.path);
  }
  seg.sealed = true;
  active_ = kNone;
  return Status::OK();
}

Status SegmentStore::ReadPage(uint64_t segment, uint32_t page, uint8_t* buf,
                              uint32_t* len, bool* cacheable) const {
  *cacheable = true;
  const auto it = std::lower_bound(
      segments_.begin(), segments_.end(), segment,
      [](const Segment& s, uint64_t id) { return s.id < id; });
  if (it == segments_.end() || it->id != segment) {
    return Status::NotFound("spool: segment dropped");
  }
  const bool is_active =
      active_ != kNone && &segments_[active_] == &*it;
  if (is_active && page == tail_page_) {
    std::memcpy(buf, tail_buf_, tail_used_);
    *len = tail_used_;
    *cacheable = false;  // Still growing: never cache the live tail.
    return Status::OK();
  }
  const uint64_t disk_end =
      is_active ? static_cast<uint64_t>(tail_page_) * kPageSize
                : it->file_bytes;
  const uint64_t off = static_cast<uint64_t>(page) * kPageSize;
  if (off >= disk_end) return Status::OutOfRange("spool: page past end");
  const uint32_t n =
      static_cast<uint32_t>(std::min<uint64_t>(kPageSize, disk_end - off));
  const uint64_t start = stats_.on_read_us ? NowUs() : 0;
  const ssize_t got = ::pread(it->fd, buf, n, static_cast<off_t>(off));
  if (stats_.on_read_us) stats_.on_read_us(NowUs() - start);
  if (got != static_cast<ssize_t>(n)) {
    return Status::Internal("spool: short read from " + it->path);
  }
  *len = n;
  return Status::OK();
}

std::vector<uint64_t> SegmentStore::EnforceRetention(Timestamp age_cutoff) {
  std::vector<uint64_t> dropped;
  while (!segments_.empty()) {
    const Segment& front = segments_.front();
    if (!front.sealed) break;  // Never drop the active segment.
    const bool over_bytes =
        options_.retention_bytes > 0 && total_bytes_ > options_.retention_bytes
        // Keep at least the newest sealed segment under the byte cap so
        // retention cannot erase the entire history.
        && segments_.size() > 1;
    const bool aged_out = front.max_ts < age_cutoff;
    if (!over_bytes && !aged_out) break;
    dropped.push_back(front.id);
    total_bytes_ -= front.file_bytes;
    if (stats_.on_bytes) {
      stats_.on_bytes(-static_cast<int64_t>(front.file_bytes));
    }
    if (stats_.on_segments) stats_.on_segments(-1);
    if (stats_.on_segment_dropped) stats_.on_segment_dropped();
    if (front.fd >= 0) ::close(front.fd);
    std::error_code ec;
    std::filesystem::remove(front.path, ec);
    segments_.erase(segments_.begin());
    if (active_ != kNone) --active_;
  }
  return dropped;
}

uint64_t SegmentStore::min_segment() const {
  return segments_.empty() ? 0 : segments_.front().id;
}

std::vector<uint64_t> SegmentStore::SegmentIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(segments_.size());
  for (const Segment& s : segments_) ids.push_back(s.id);
  return ids;
}

}  // namespace spool
}  // namespace tcq
