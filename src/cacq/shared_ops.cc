#include "cacq/shared_ops.h"

#include "common/logging.h"

namespace tcq {

// ---------------------------------------------------------- GroupedFilterOp

GroupedFilterOp::GroupedFilterOp(std::string name, size_t column,
                                 SmallBitset required)
    : EddyOperator(std::move(name)),
      column_(column),
      required_(std::move(required)) {}

bool GroupedFilterOp::Eligible(const SmallBitset& sources) const {
  return sources.Contains(required_);
}

EddyOpResult GroupedFilterOp::Process(RoutedTuple& rt) {
  EddyOpResult result;
  if (rt.queries.size_bits() < filter_.num_queries()) {
    rt.queries.Resize(filter_.num_queries());
  }
  filter_.Apply(rt.tuple.cell(column_), &rt.queries);
  result.pass = !rt.queries.None();
  return result;
}

// ---------------------------------------------------------- ResidualFilterOp

ResidualFilterOp::ResidualFilterOp(std::string name, SmallBitset required)
    : EddyOperator(std::move(name)), required_(std::move(required)) {}

void ResidualFilterOp::AddResidual(QueryId q, ExprPtr bound_expr) {
  TCQ_CHECK(bound_expr != nullptr);
  residuals_.emplace_back(q, std::move(bound_expr));
}

void ResidualFilterOp::RemoveQuery(QueryId q) {
  residuals_.erase(
      std::remove_if(residuals_.begin(), residuals_.end(),
                     [q](const auto& r) { return r.first == q; }),
      residuals_.end());
}

bool ResidualFilterOp::Eligible(const SmallBitset& sources) const {
  return sources.Contains(required_);
}

EddyOpResult ResidualFilterOp::Process(RoutedTuple& rt) {
  EddyOpResult result;
  for (const auto& [q, expr] : residuals_) {
    if (q >= rt.queries.size_bits() || !rt.queries.Test(q)) continue;
    const Value keep = expr->Eval(rt.tuple);
    if (keep.is_null() || !keep.bool_value()) rt.queries.Clear(q);
  }
  result.pass = !rt.queries.None();
  return result;
}

// --------------------------------------------------------- SharedStemBuildOp

SharedStemBuildOp::SharedStemBuildOp(std::string name, size_t source,
                                     SharedSteMPtr stem)
    : EddyOperator(std::move(name)), source_(source), stem_(std::move(stem)) {
  TCQ_CHECK(stem_ != nullptr);
}

bool SharedStemBuildOp::Eligible(const SmallBitset& sources) const {
  return sources.Count() == 1 && sources.Test(source_);
}

EddyOpResult SharedStemBuildOp::Process(RoutedTuple& rt) {
  stem_->Insert(rt.tuple, rt.queries);
  EddyOpResult result;
  result.pass = true;
  return result;
}

// --------------------------------------------------------- SharedStemProbeOp

SharedStemProbeOp::SharedStemProbeOp(std::string name,
                                     const SourceLayout* layout,
                                     size_t target, SharedSteMPtr target_stem,
                                     SmallBitset probe_sources,
                                     int probe_key_index,
                                     WindowHandlePtr window)
    : EddyOperator(std::move(name)),
      layout_(layout),
      target_(target),
      stem_(std::move(target_stem)),
      probe_sources_(std::move(probe_sources)),
      probe_key_index_(probe_key_index),
      window_(std::move(window)) {
  TCQ_CHECK(layout_ != nullptr && stem_ != nullptr);
}

bool SharedStemProbeOp::Eligible(const SmallBitset& sources) const {
  return !sources.Test(target_) && sources.Contains(probe_sources_);
}

EddyOpResult SharedStemProbeOp::Process(RoutedTuple& rt) {
  EddyOpResult result;
  result.pass = true;

  const Timestamp lo =
      window_ ? window_->lo.load(std::memory_order_relaxed) : kMinTimestamp;
  const Timestamp hi =
      window_ ? window_->hi.load(std::memory_order_relaxed) : kMaxTimestamp;

  const Value* key = nullptr;
  Value key_storage;
  if (probe_key_index_ >= 0 && stem_->key_field() >= 0) {
    key_storage = rt.tuple.cell(static_cast<size_t>(probe_key_index_));
    if (key_storage.is_null()) return result;
    key = &key_storage;
  }

  stem_->ProbeCollect(
      key, lo, hi, [&](const Tuple& stored, const SmallBitset& lineage) {
        if (stored.seq() >= rt.tuple.seq()) return;  // Arrival-order dedup.
        // Lineage intersection: only queries that accepted both sides.
        SmallBitset joint = rt.queries;
        SmallBitset other = lineage;
        const size_t width =
            std::max(joint.size_bits(), other.size_bits());
        joint.Resize(width);
        other.Resize(width);
        joint &= other;
        if (joint.None()) return;

        RoutedTuple out;
        out.tuple = layout_->MergeSparse(rt.tuple, stored);
        out.sources = rt.sources;
        out.sources.Set(target_);
        out.done = rt.done;
        out.queries = std::move(joint);
        result.outputs.push_back(std::move(out));
      });
  return result;
}

}  // namespace tcq
