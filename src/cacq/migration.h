#ifndef TCQ_CACQ_MIGRATION_H_
#define TCQ_CACQ_MIGRATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cacq/shared_stem.h"
#include "tuple/tuple.h"

namespace tcq {

/// One bucket's worth of engine state, lifted out of a donor shard's
/// CacqEngine for Flux-style migration (DESIGN.md §12).
///
/// What moves: every shared SteM's live entries whose join key hashes into
/// the bucket — tuple, query-lineage bitmap, timestamp, and arrival seq all
/// travel (the tuple carries the latter two). What does NOT move: grouped
/// filters, residual predicates, and query registrations are replicated on
/// every shard already (control closures apply to all shards), so the
/// recipient rebuilds nothing; PSoup history and window runners live on the
/// single-shard ingress path and are not bucket-partitioned state.
///
/// The seq numbers are donor-relative: InstallBucketState raises the
/// recipient eddy's arrival counter past `max_seq` so the probe-side
/// `stored.seq() >= probe.seq()` dedup keeps treating installed entries as
/// "older than" every future recipient arrival. Between shards the per-key
/// orders never interleave (one bucket = one owner at a time), so this
/// relabeling preserves exactly the arrival-order semantics dedup needs.
struct BucketState {
  /// One SteM's extracted entries, addressed by the engine-invariant
  /// (target_source, stored key column) pair — identical across shards
  /// because every shard registers the same streams and queries.
  struct StemState {
    size_t target_source = 0;
    int stored_key = -1;
    std::vector<SharedSteM::ExtractedEntry> entries;
  };

  size_t bucket = 0;
  std::vector<StemState> stems;
  /// Max arrival seq across all extracted tuples (0 if none).
  int64_t max_seq = 0;

  size_t tuple_count() const {
    size_t n = 0;
    for (const StemState& s : stems) n += s.entries.size();
    return n;
  }

  /// Approximate payload size for telemetry: cells are a fixed-size Value
  /// block per tuple (DESIGN.md §9), so arity * sizeof(Value) plus the
  /// tuple header is a faithful estimate without walking string cells.
  size_t approx_bytes() const {
    size_t bytes = 0;
    for (const StemState& s : stems) {
      for (const SharedSteM::ExtractedEntry& e : s.entries) {
        bytes += sizeof(Tuple) + e.tuple.arity() * sizeof(Value);
      }
    }
    return bytes;
  }
};

/// A whole shard engine's SteM state plus its eddy arrival counter, copied
/// (not extracted) for process-pair replication (DESIGN.md §13). Unlike
/// BucketState this is non-destructive — the primary keeps executing from
/// the same state the snapshot now mirrors — and it spans every bucket the
/// shard owns, because failover promotes the whole shard, not one bucket.
///
/// `next_seq` is the primary eddy's arrival counter at the checkpoint
/// boundary. RestoreCheckpoint raises the replica's counter to it, so
/// changelog tuples replayed after the restore receive exactly the seqs
/// the primary would have assigned — the probe-side dedup then behaves
/// identically on both sides of a failover.
///
/// `complete` is the torn-checkpoint guard: a snapshot produced by a
/// crashed or fault-injected checkpointer arrives with complete == false
/// and MUST be rejected by the replica (which keeps its previous snapshot
/// and the full changelog tail instead — the hydra recovery rule).
struct EngineCheckpoint {
  std::vector<BucketState::StemState> stems;
  int64_t next_seq = 1;
  bool complete = true;

  size_t tuple_count() const {
    size_t n = 0;
    for (const BucketState::StemState& s : stems) n += s.entries.size();
    return n;
  }

  size_t approx_bytes() const {
    size_t bytes = 0;
    for (const BucketState::StemState& s : stems) {
      for (const SharedSteM::ExtractedEntry& e : s.entries) {
        bytes += sizeof(Tuple) + e.tuple.arity() * sizeof(Value);
      }
    }
    return bytes;
  }
};

}  // namespace tcq

#endif  // TCQ_CACQ_MIGRATION_H_
