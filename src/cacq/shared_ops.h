#ifndef TCQ_CACQ_SHARED_OPS_H_
#define TCQ_CACQ_SHARED_OPS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cacq/shared_stem.h"
#include "eddy/operator.h"
#include "eddy/operators.h"
#include "expr/ast.h"
#include "modules/grouped_filter.h"

namespace tcq {

/// Shared selection operator: one grouped filter indexing the predicates
/// many queries place on one column. Processing a tuple narrows its query
/// lineage; the tuple is consumed once no query remains interested.
class GroupedFilterOp : public EddyOperator {
 public:
  /// `column` = absolute cell index in the Eddy's full schema; `required`
  /// = the source owning that column.
  GroupedFilterOp(std::string name, size_t column, SmallBitset required);

  /// The underlying index, for predicate registration by the engine.
  GroupedFilter& filter() { return filter_; }
  const GroupedFilter& filter() const { return filter_; }

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;

 private:
  size_t column_;
  SmallBitset required_;
  GroupedFilter filter_;
};

/// Per-query residual predicates that do not fit the grouped-filter shape
/// (OR trees, arithmetic, multi-column within one source). Evaluated only
/// for queries still in the tuple's lineage.
class ResidualFilterOp : public EddyOperator {
 public:
  ResidualFilterOp(std::string name, SmallBitset required);

  void AddResidual(QueryId q, ExprPtr bound_expr);
  void RemoveQuery(QueryId q);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;

 private:
  SmallBitset required_;
  std::vector<std::pair<QueryId, ExprPtr>> residuals_;
};

/// Shared SteM build: stores the tuple together with its current lineage.
class SharedStemBuildOp : public EddyOperator {
 public:
  SharedStemBuildOp(std::string name, size_t source, SharedSteMPtr stem);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;

 private:
  size_t source_;
  SharedSteMPtr stem_;
};

/// Shared SteM probe: join outputs carry the intersection of both sides'
/// lineages — only queries that accepted both constituents survive.
class SharedStemProbeOp : public EddyOperator {
 public:
  SharedStemProbeOp(std::string name, const SourceLayout* layout,
                    size_t target, SharedSteMPtr target_stem,
                    SmallBitset probe_sources, int probe_key_index,
                    WindowHandlePtr window = nullptr);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;
  bool IsJoinProbe() const override { return true; }

 private:
  const SourceLayout* layout_;
  size_t target_;
  SharedSteMPtr stem_;
  SmallBitset probe_sources_;
  int probe_key_index_;
  WindowHandlePtr window_;
};

}  // namespace tcq

#endif  // TCQ_CACQ_SHARED_OPS_H_
