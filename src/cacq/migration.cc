#include "cacq/migration.h"

#include <algorithm>

#include "cacq/engine.h"
#include "common/logging.h"

namespace tcq {

BucketState CacqEngine::ExtractBucketState(
    size_t bucket, const std::function<bool(const Value&)>& in_bucket) {
  BucketState state;
  state.bucket = bucket;
  for (auto& [key, stem] : stems_) {
    BucketState::StemState ss;
    ss.target_source = key.target_source;
    ss.stored_key = key.stored_key;
    ss.entries = stem->ExtractIf(in_bucket);
    for (const SharedSteM::ExtractedEntry& e : ss.entries) {
      state.max_seq = std::max(state.max_seq, e.tuple.seq());
    }
    if (!ss.entries.empty()) state.stems.push_back(std::move(ss));
  }
  return state;
}

Status CacqEngine::InstallBucketState(const BucketState& state) {
  // Resolve every target SteM before touching any, so a mismatch cannot
  // leave the bucket half-installed.
  std::vector<SharedSteM*> targets;
  targets.reserve(state.stems.size());
  for (const BucketState::StemState& ss : state.stems) {
    auto it = stems_.find(JoinKey{ss.target_source, ss.stored_key});
    if (it == stems_.end()) {
      return Status::FailedPrecondition(
          "InstallBucketState: no SteM for (source=" +
          std::to_string(ss.target_source) +
          ", key=" + std::to_string(ss.stored_key) +
          ") — donor and recipient engines differ");
    }
    targets.push_back(it->second.get());
  }
  for (size_t i = 0; i < state.stems.size(); ++i) {
    for (const SharedSteM::ExtractedEntry& e : state.stems[i].entries) {
      targets[i]->Install(e);
    }
  }
  // Future arrivals must outrank installed entries in the arrival-order
  // join dedup, or their matches against this state would be dropped.
  eddy_->EnsureSeqAtLeast(state.max_seq);
  return Status::OK();
}

EngineCheckpoint CacqEngine::CheckpointState() const {
  EngineCheckpoint ckpt;
  for (const auto& [key, stem] : stems_) {
    BucketState::StemState ss;
    ss.target_source = key.target_source;
    ss.stored_key = key.stored_key;
    ss.entries = stem->CopyAll();
    if (!ss.entries.empty()) ckpt.stems.push_back(std::move(ss));
  }
  ckpt.next_seq = eddy_->next_seq();
  return ckpt;
}

Status CacqEngine::RestoreCheckpoint(const EngineCheckpoint& ckpt) {
  if (!ckpt.complete) {
    return Status::Internal(
        "RestoreCheckpoint: torn checkpoint (incomplete snapshot) — "
        "recover from the previous snapshot plus the full changelog");
  }
  // Same resolve-before-touch discipline as InstallBucketState: a replica
  // whose streams/queries diverged from the primary must fail whole.
  std::vector<SharedSteM*> targets;
  targets.reserve(ckpt.stems.size());
  for (const BucketState::StemState& ss : ckpt.stems) {
    auto it = stems_.find(JoinKey{ss.target_source, ss.stored_key});
    if (it == stems_.end()) {
      return Status::FailedPrecondition(
          "RestoreCheckpoint: no SteM for (source=" +
          std::to_string(ss.target_source) +
          ", key=" + std::to_string(ss.stored_key) +
          ") — primary and replica engines differ");
    }
    targets.push_back(it->second.get());
  }
  // Replace, don't merge: the checkpoint IS the replica's state. Stems the
  // checkpoint doesn't mention were empty on the primary.
  for (auto& [key, stem] : stems_) stem->ClearAll();
  for (size_t i = 0; i < ckpt.stems.size(); ++i) {
    for (const SharedSteM::ExtractedEntry& e : ckpt.stems[i].entries) {
      targets[i]->Install(e);
    }
  }
  eddy_->EnsureSeqAtLeast(ckpt.next_seq - 1);
  return Status::OK();
}

}  // namespace tcq
