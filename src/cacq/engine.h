#ifndef TCQ_CACQ_ENGINE_H_
#define TCQ_CACQ_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cacq/migration.h"
#include "cacq/shared_ops.h"
#include "cacq/shared_stem.h"
#include "eddy/eddy.h"
#include "expr/ast.h"
#include "modules/grouped_filter.h"

namespace tcq {

/// A continuous query registered with the shared engine.
struct CacqQuerySpec {
  /// Source aliases this query ranges over (its *footprint*) — a subset of
  /// the engine's streams. Single-stream selection queries name one.
  std::vector<std::string> sources;
  /// WHERE predicate with qualified (or unique bare) column names; null =
  /// no predicate. Equality factors between two sources become shared
  /// SteM joins; single-column factors enter grouped filters; everything
  /// else becomes per-query residual work.
  ExprPtr where;
  /// CEDR consistency level (DESIGN.md §15): false = delayed-but-correct
  /// (the query consumes the reorder-buffer release feed — IngressLane::
  /// kDelayed), true = speculative (it consumes raw arrivals as they come
  /// — IngressLane::kSpeculative — and may see retraction-signed tuples).
  /// Irrelevant until the server feeds the engine through both lanes.
  bool speculative = false;
};

/// CACQ (§3.1): one Eddy executing many continuous queries at once — the
/// "super-query" that is the disjunction of all registered queries. Tuple
/// lineage (a query bitmap) tracks which queries each tuple still
/// satisfies; grouped filters index shared selections; shared SteMs serve
/// every query's joins from one copy of the state.
///
/// One engine is one *query class* (§4.2.2): all join queries registered
/// here must agree on the equi-join graph (the executor opens a new class
/// for a different footprint). Selection queries over any single stream
/// mix freely. Newly added queries see only data arriving after them.
class CacqEngine {
 public:
  struct Options {
    std::string policy = "lottery";
    uint64_t seed = 7;
    Eddy::Options eddy;
    /// Non-null: window-expired SteM state demotes to this spool instead of
    /// being freed (DESIGN.md §16). Keys are spool_prefix + "stem." + the
    /// SteM's alias + "." + key column. The caller keeps the spool alive
    /// past the engine; the engine never opens or closes it.
    Spool* spool = nullptr;
    std::string spool_prefix;
  };

  CacqEngine();
  explicit CacqEngine(Options options);

  CacqEngine(const CacqEngine&) = delete;
  CacqEngine& operator=(const CacqEngine&) = delete;

  /// Declares a stream before any query references it.
  Result<size_t> AddStream(const std::string& name, SchemaPtr schema);

  /// Delivery callback: (query, full-width result tuple). For a selection
  /// query the tuple's cells outside its stream are NULL; join results
  /// carry both sides. Use layout().Narrow to project a source back out.
  using Sink = std::function<void(QueryId, const Tuple&)>;
  void SetSink(Sink sink) { sink_ = std::move(sink); }

  /// Registers a continuous query; it applies to all future tuples.
  Result<QueryId> AddQuery(const CacqQuerySpec& spec);

  /// Unregisters a query; shared state it alone used is scrubbed.
  Status RemoveQuery(QueryId q);

  /// Feeds one tuple of `stream` and routes it (plus any join matches).
  /// `lane` restricts the seeded lineage to queries of that consistency
  /// level (kAll = every interested query — the classic single-feed path).
  Status Inject(const std::string& stream, const Tuple& tuple,
                IngressLane lane = IngressLane::kAll);

  /// Feeds a whole same-stream batch through ONE stream lookup, one
  /// lineage-seed snapshot and one Drain(). The eddy amortizes one routing
  /// decision per stage over the batch; results are identical to injecting
  /// each tuple alone (routing invariance), only cheaper.
  Status InjectBatch(const std::string& stream,
                     const std::vector<Tuple>& batch,
                     IngressLane lane = IngressLane::kAll);

  /// InjectBatch by source index (layout().SourceIndexOf order). The
  /// sharded exchange resolves the stream once at scatter time and feeds
  /// every shard by index, skipping the per-task name lookup.
  Status InjectBatch(size_t source, const std::vector<Tuple>& batch,
                     IngressLane lane = IngressLane::kAll);

  /// Evicts join state older than `ts` (window maintenance).
  void EvictBefore(Timestamp ts);

  /// State-migration half of online rebalancing (cacq/migration.h,
  /// DESIGN.md §12). Both must run on the thread that owns this engine —
  /// the sharded exchange sends them as control closures.
  ///
  /// ExtractBucketState removes, from every shared SteM, the live entries
  /// whose key cell satisfies `in_bucket` (the caller closes over
  /// PartitionMap::BucketOf(key) == bucket) and packages them with their
  /// lineage and max arrival seq.
  BucketState ExtractBucketState(size_t bucket,
                                 const std::function<bool(const Value&)>&
                                     in_bucket);

  /// Installs a donor's extracted state into this engine's matching SteMs
  /// and raises the eddy's arrival-seq floor past the installed entries.
  /// Fails (without partial install) if a SteM named by the state does not
  /// exist here — shards register identical streams/queries, so a mismatch
  /// means the caller migrated across non-identical engines.
  Status InstallBucketState(const BucketState& state);

  /// Process-pair replication half (DESIGN.md §13), same thread-ownership
  /// rule as the bucket pair above.
  ///
  /// CheckpointState copies (without removing) every SteM's live entries
  /// plus the eddy's arrival counter — the snapshot a standby replica
  /// recovers from.
  EngineCheckpoint CheckpointState() const;

  /// Replaces this engine's SteM state with `ckpt` and aligns the eddy's
  /// arrival counter to the primary's, so a changelog tail replayed next
  /// stamps seqs exactly as the primary would have. Rejects torn
  /// checkpoints (ckpt.complete == false) and engine mismatches without
  /// partial installs. Grouped filters / queries are untouched: replicas
  /// register the same queries through the normal control path.
  Status RestoreCheckpoint(const EngineCheckpoint& ckpt);

  size_t num_active_queries() const { return active_queries_; }
  const Eddy& eddy() const { return *eddy_; }
  const SourceLayout& layout() const { return layout_; }

  /// Snapshot of one shared SteM's state for introspection
  /// (Server::SnapshotMetrics).
  struct StemSnapshot {
    std::string name;
    size_t size = 0;       ///< Live stored tuples.
    uint64_t probes = 0;
    uint64_t scanned = 0;
  };
  std::vector<StemSnapshot> stem_snapshots() const;

 private:
  struct JoinKey {
    size_t target_source;
    int stored_key;  ///< Absolute column index the stem indexes.
    bool operator<(const JoinKey& o) const {
      return target_source != o.target_source
                 ? target_source < o.target_source
                 : stored_key < o.stored_key;
    }
  };

  struct QueryInfo {
    SmallBitset footprint;
    bool active = false;
    bool speculative = false;  ///< CEDR consistency level (spec lane).
    /// Grouped-filter registrations: (column op const) per column op, for
    /// removal bookkeeping.
    std::vector<size_t> filter_columns;
    std::vector<std::shared_ptr<ResidualFilterOp>> residual_ops;
  };

  /// Lazily creates the grouped-filter operator for a column.
  std::shared_ptr<GroupedFilterOp> FilterOpFor(size_t column);
  /// Lazily creates the residual operator for a source set.
  std::shared_ptr<ResidualFilterOp> ResidualOpFor(const SmallBitset& req);
  /// Lazily creates build op + stem for (source, key column) and the probe
  /// ops in both directions for an equi-join pair.
  Status EnsureJoin(size_t src_a, int col_a, size_t src_b, int col_b);

  void Deliver(RoutedTuple&& rt);

  Options options_;
  SourceLayout layout_;
  std::unique_ptr<Eddy> eddy_;
  Sink sink_;

  std::vector<QueryInfo> queries_;
  size_t active_queries_ = 0;
  /// Per source: queries whose footprint contains it (lineage seed).
  std::vector<SmallBitset> interested_;
  /// Consistency lanes over engine QueryIds: a kDelayed/kSpeculative
  /// injection intersects its lineage seed with the matching lane, so
  /// delayed queries never see raw (possibly disordered) arrivals and
  /// speculative queries never see the duplicate release feed.
  SmallBitset delayed_queries_;
  SmallBitset speculative_queries_;

  std::map<size_t, std::shared_ptr<GroupedFilterOp>> filter_ops_;
  std::map<uint64_t, std::shared_ptr<ResidualFilterOp>> residual_ops_;
  std::map<JoinKey, SharedSteMPtr> stems_;
  /// Registered probe edges (target, stored key, probe key) to avoid dups.
  std::map<std::tuple<size_t, int, int>, bool> probe_edges_;
};

}  // namespace tcq

#endif  // TCQ_CACQ_ENGINE_H_
