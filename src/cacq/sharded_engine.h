#ifndef TCQ_CACQ_SHARDED_ENGINE_H_
#define TCQ_CACQ_SHARDED_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "cacq/engine.h"
#include "eddy/routed_tuple.h"
#include "fjords/partitioned_queue.h"
#include "fjords/scheduler.h"
#include "flux/changelog.h"
#include "flux/partition.h"
#include "flux/rebalance.h"

namespace tcq {

/// Sharded parallel CACQ execution (§3, Fig. 4-5): N worker shards, each
/// owning a full CacqEngine — its own eddy, grouped filters and SteM
/// partitions — on its own ExecutionObject thread, fed by a real-threads
/// exchange that hash-partitions input on each stream's partition column
/// (the Flux routing policy, flux/partition.h), with an egress stage that
/// unions shard outputs back into one delivery order.
///
/// Correctness contract (DESIGN.md §11):
///  * Every query is registered on every shard in the same order, so
///    QueryIds agree across shards and each shard runs the same plan over
///    its key partition. Grouped filters and residuals are key-oblivious,
///    so partitioning them is trivially correct; SteM joins are correct
///    because both sides of every equi-join must be partitioned on their
///    join columns (AddQuery rejects anything else), making matches
///    shard-local exactly as in Flux.
///  * Per-shard FIFO: tuples with equal partition keys traverse one shard
///    in arrival order. Cross-shard output order is NOT defined — results
///    are a multiset equal to single-shard execution, in exchange order.
///  * Control operations (AddQuery/RemoveQuery/EvictBefore/Quiesce) ride
///    the same per-shard task queues as data, executing on the shard
///    thread after everything enqueued before them (the actor model), so
///    no engine state is ever touched from two threads.
///  * Routing is dynamic: keys hash into fixed buckets and a PartitionMap
///    maps buckets to shards. MigrateBucket (manual, or driven by the
///    auto-rebalance controller) moves a bucket's SteM state between
///    shards mid-stream with a pause/drain/move/resume protocol that
///    preserves per-key FIFO and the result multiset (DESIGN.md §12).
class ShardedEngine {
 public:
  struct Options {
    size_t num_shards = 4;
    /// Routing policy + base seed for the per-shard eddies (shard i uses
    /// seed + i). Routing invariance makes results independent of this.
    std::string policy = "lottery";
    uint64_t seed = 7;
    /// Bounded exchange queues, in tasks (one task = one same-stream
    /// scatter group, up to a whole producer batch). Blocking producer
    /// ends give backpressure; consumers never block (the EO polls).
    size_t input_capacity = 256;
    size_t egress_capacity = 1024;
    /// Hash buckets in the PartitionMap (the migration granule). More
    /// buckets = finer-grained rebalancing at the cost of a larger routing
    /// table; must be >= num_shards to give every shard at least one.
    size_t num_buckets = 64;
    /// Spins a RebalanceController on Start() that watches shard backlog
    /// and migrates buckets automatically. Manual MigrateBucket() works
    /// either way.
    bool auto_rebalance = false;
    RebalanceController::Options rebalance;
    Eddy::Options eddy;
    /// Standby replicas per shard (Flux process pairs, §5 / DESIGN.md
    /// §13). 0 = no fault tolerance (a killed shard loses state); 1 gives
    /// each shard a warm standby fed by dual-routed changelog records and
    /// periodic state checkpoints, promotable with FailoverShard. Values
    /// above 1 are clamped to 1.
    size_t num_replicas = 0;
    /// Applied exchange tasks between standby checkpoints (the hydra
    /// changelog-plus-snapshot cadence). Smaller = shorter replay tails
    /// and faster failover, at more state-copy cost per task.
    uint64_t checkpoint_interval = 32;
    /// Non-null: primaries demote window-expired SteM state to this spool
    /// (keys shard-qualified as spool_prefix + "shard." + i + "." + ...).
    /// Standbys never demote — their state is a checkpoint copy of the
    /// primary's, and double-spooling would duplicate history.
    Spool* spool = nullptr;
    std::string spool_prefix;
  };

  ShardedEngine();
  explicit ShardedEngine(Options options);
  ~ShardedEngine();  // Stops and joins all shard threads.

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Declares a stream on every shard. `partition_column` is the column
  /// the exchange hashes on (the join/group key; defaults to column 0).
  /// Streams must be declared before Start() and before any query.
  Result<size_t> AddStream(const std::string& name, SchemaPtr schema,
                           size_t partition_column = 0);

  /// One emission from one shard: (query, full-width result tuple).
  using Emission = std::pair<QueryId, Tuple>;
  /// Delivery callback, invoked on the egress thread with batches of
  /// emissions in shard-output order. Must not call back into this
  /// engine (Quiesce would self-deadlock) and must be set before Start().
  using Sink = std::function<void(std::vector<Emission>&&)>;
  void SetSink(Sink sink) { sink_ = std::move(sink); }

  /// Launches shard + egress threads. Requires at least one stream.
  void Start();

  /// Closes the exchange, drains every shard and egress to completion,
  /// then joins all threads. Idempotent. Pushes after Stop() fail.
  void Stop();

  /// Full-pipeline barrier: returns OK once everything pushed before the
  /// call has been routed, executed and delivered through the sink.
  /// Returns Unavailable (instead of hanging forever on a control
  /// barrier nobody will run) when a shard's worker thread has died —
  /// fail over the shard, then barrier again. Must not race with Stop().
  Status Quiesce();

  // ---- Process-pair HA (DESIGN.md §13) ----

  /// Requests the shard's worker thread to die at its next task boundary
  /// (the crash model the recovery protocol is built for: a batch is
  /// either fully applied and its emissions flushed, or untouched).
  /// Asynchronous — the worker observes the flag at its next step; use
  /// shard_alive() or FailoverShard() to synchronize. Without standby
  /// replicas the shard's state and queued work are simply lost (barriers
  /// then surface errors; see Quiesce).
  Status KillShard(size_t shard);

  /// Detects the dead primary, promotes its standby and resumes routing:
  /// waits for the killed worker to exit, drains the dead input queue
  /// (releasing blocked producers and stale barrier closures), restores
  /// the newest valid checkpoint into the standby, replays the changelog
  /// tail — suppressing emissions for records the primary already applied
  /// (the seq-floor dedup at the egress union; zero lost, zero duplicated
  /// results) — re-checkpoints, and starts a fresh worker plus a fresh
  /// standby. Requires Options::num_replicas > 0 and a prior KillShard.
  /// Serialized with migrations/barriers; must not race with Stop().
  Status FailoverShard(size_t shard);

  /// False once the shard's worker observed a kill and exited, true again
  /// after FailoverShard promotes the standby.
  bool shard_alive(size_t shard) const {
    return shards_[shard]->alive.load(std::memory_order_acquire);
  }

  /// Registers `spec` on every shard (identical QueryId on each, returned
  /// here). Callable while running: folds in through the control path, so
  /// the query sees exactly the tuples scattered after this returns.
  /// Rejects equi-joins whose join columns are not the partition columns
  /// of their streams — such a join would need cross-shard matches.
  /// AddQuery/RemoveQuery calls must be serialized by the caller (the
  /// Server's submission lock does): two racing registrations could
  /// interleave differently per shard and diverge the QueryIds.
  Result<QueryId> AddQuery(const CacqQuerySpec& spec);

  /// Unregisters `q` on every shard.
  Status RemoveQuery(QueryId q);

  /// Scatters a same-stream batch across the shards by partition column
  /// (one exchange task per non-empty shard). Blocks for queue space
  /// (backpressure). Requires Start(). `lane` selects which consistency
  /// level's queries see the batch (kAll = every query — the classic
  /// single-feed path).
  Status PushBatch(const std::string& stream, std::vector<Tuple> batch,
                   IngressLane lane = IngressLane::kAll);
  Status Push(const std::string& stream, Tuple tuple,
              IngressLane lane = IngressLane::kAll);

  /// Evicts SteM state older than `ts` on every shard (barriered).
  void EvictBefore(Timestamp ts);

  /// Moves one bucket's state to `to_shard` while data flows (Flux §2.4;
  /// DESIGN.md §12): pause the bucket (new arrivals buffer), drain the
  /// donor behind everything already scattered, extract the bucket's SteM
  /// state on the donor thread, install it on the recipient thread, flip
  /// the PartitionMap entry, replay the buffer to the recipient, resume.
  /// Per-key FIFO and the result multiset are preserved; tuples are
  /// neither lost nor duplicated. Serialized against other migrations,
  /// Quiesce, RemoveQuery and EvictBefore; a no-op if the bucket already
  /// lives on `to_shard`. Requires Start(); must not race with Stop().
  Status MigrateBucket(size_t bucket, size_t to_shard);

  const PartitionMap& partition_map() const { return partition_map_; }
  /// Non-null iff Options::auto_rebalance (valid between Start and Stop).
  RebalanceController* rebalance_controller() { return controller_.get(); }

  /// Cross-thread-safe migration statistics (tcq.rebalance.* views).
  struct RebalanceStats {
    uint64_t migrations = 0;    ///< Completed bucket moves.
    uint64_t moved_tuples = 0;  ///< SteM entries moved across shards.
    uint64_t moved_bytes = 0;   ///< Approximate payload of those entries.
    uint64_t buffered_tuples = 0;  ///< Arrivals parked during pauses.
  };
  RebalanceStats rebalance_stats() const;

  /// Cross-thread-safe per-shard replication state (tcq.ha.* views +
  /// Server::SnapshotMetrics replica rows). Empty when replication is off.
  struct ReplicaStats {
    bool alive = true;
    uint64_t applied_lsn = 0;     ///< Last task the primary fully applied.
    uint64_t logged_lsn = 0;      ///< Last record appended to the log.
    uint64_t snapshot_floor = 0;  ///< Records <= floor live in the snapshot.
    size_t changelog_records = 0;
    size_t changelog_bytes = 0;
    uint64_t checkpoints = 0;
    uint64_t torn_rejected = 0;  ///< Snapshots rejected as torn.
  };
  std::vector<ReplicaStats> replica_stats() const;

  /// Cumulative HA event counts (tcq.ha.* counters).
  struct HaStats {
    uint64_t failovers = 0;
    uint64_t replayed_tuples = 0;        ///< Changelog tuples re-injected.
    uint64_t suppressed_emissions = 0;   ///< Deduped at the egress union.
  };
  HaStats ha_stats() const;

  bool replication_enabled() const { return replication_ != nullptr; }
  /// The changelog/snapshot store, for tests (torn-checkpoint injection
  /// via SetSnapshotFault; direct replica inspection). Null when
  /// Options::num_replicas == 0.
  ReplicationController<EngineCheckpoint>* replication() {
    return replication_.get();
  }

  size_t num_shards() const { return options_.num_shards; }
  bool started() const { return started_; }
  size_t num_active_queries() const;
  const SourceLayout& layout() const { return layout_; }

  /// Cross-thread-safe per-shard statistics (relaxed atomics throughout).
  struct ShardStats {
    uint64_t routed = 0;     ///< Tuples scattered to the shard.
    uint64_t processed = 0;  ///< Tuples the worker injected.
    size_t queue_depth = 0;  ///< Input backlog, in exchange tasks.
    uint64_t eddy_decisions = 0;
    uint64_t eddy_emitted = 0;
  };
  std::vector<ShardStats> shard_stats() const;

  /// Shard i's engine, for introspection (stem snapshots, layout). Reads
  /// of non-atomic engine state are only safe after Quiesce() with no
  /// concurrent pushes, or before Start().
  const CacqEngine& engine(size_t shard) const {
    return *shards_[shard]->engine;
  }

 private:
  /// One unit of exchange work: a same-stream tuple group bound for one
  /// shard, or a control closure to run on the shard thread.
  struct ShardTask {
    size_t source = 0;
    std::vector<Tuple> tuples;
    std::function<void()> control;
    /// Log sequence number stamped by the replication tee at enqueue time
    /// (0 for control tasks, and for everything when replication is off).
    uint64_t lsn = 0;
    /// Consistency lane the batch targets (DESIGN.md §15): the worker
    /// passes it through to CacqEngine::InjectBatch so delayed queries
    /// never see raw arrivals and vice versa.
    IngressLane lane = IngressLane::kAll;
  };
  /// One unit of egress work: an emission batch, or an egress barrier.
  struct EgressItem {
    std::vector<Emission> results;
    std::function<void()> control;
  };

  struct Shard {
    std::unique_ptr<CacqEngine> engine;
    /// Warm standby (Options::num_replicas > 0): registered with the same
    /// streams/queries as the primary but EMPTY of state until a failover
    /// restores the newest checkpoint into it and replays the changelog
    /// tail. Touched only under migrate_mu_ (registration, failover) —
    /// never by the shard thread.
    std::unique_ptr<CacqEngine> standby;
    std::unique_ptr<FjordQueue<EgressItem>> output;
    /// Emissions collected by the engine sink since the last flush into
    /// `output`. Only the shard thread touches it while running.
    std::vector<Emission> pending;
    Counter routed;
    Counter processed;
    /// Worker liveness: flips false when the worker observes `kill` and
    /// exits, true again when FailoverShard starts a replacement.
    std::atomic<bool> alive{true};
    std::atomic<bool> kill{false};
    /// LSN of the last data task fully applied AND flushed by the worker.
    /// Everything <= this floor will reach the sink; replayed records at
    /// or under it are suppressed at the egress union (exactly-once).
    std::atomic<uint64_t> applied_lsn{0};
    /// Guards the `engine` POINTER (not the engine) against the failover
    /// swap racing cross-thread introspection (shard_stats).
    mutable std::mutex engine_mu;
  };

  class WorkerModule;
  class EgressModule;

  struct SourceInfo {
    std::string name;
    size_t partition_column = 0;
    /// Kept so BuildStandby can re-register the stream after a promotion.
    SchemaPtr schema;
  };

  class ShardBarrier;

  /// Enqueues a control closure on shard `i`'s input queue without ever
  /// blocking behind a dead consumer: retries a non-blocking enqueue,
  /// giving up (false) if the shard dies or the queue closes.
  bool EnqueueControl(size_t i, std::function<void()> fn);
  /// Runs `fn(shard)` on every shard thread and waits for all of them.
  /// Returns Unavailable — with the barrier safely abandoned, so a stale
  /// closure drained later never touches the caller's frame — if any
  /// shard's worker died before running its closure.
  Status RunOnAllShards(const std::function<void(size_t)>& fn);
  /// Runs `fn` on shard `i`'s thread (behind all its queued data) and
  /// waits for it — the migration protocol's drain-then-act primitive.
  /// Same dead-shard semantics as RunOnAllShards.
  Status RunOnShard(size_t i, const std::function<void()>& fn);
  /// Shared wait half of the two above.
  Status WaitBarrier(const std::shared_ptr<ShardBarrier>& barrier,
                     const std::vector<size_t>& targets);
  /// Builds an empty engine registered with the primaries' streams and
  /// full query history — the next standby after a promotion.
  std::unique_ptr<CacqEngine> BuildStandby(size_t shard) const;
  /// Drains a dead shard's input queue from the failover thread: stale
  /// control closures run (they only count down abandoned barriers), data
  /// tasks are dropped — every one of them is in the changelog and will
  /// be replayed. Unblocks producers stuck on the full queue.
  void DrainDeadInput(size_t shard);
  /// DrainDeadInput for every shard whose worker has exited.
  void DrainDeadInputs();
  /// Acquires the exclusive route lock without blocking against stuck
  /// producers. A producer holds the shared lock while blocked on a dead
  /// primary's full input queue, and the failover that would normally
  /// drain that queue waits on migrate_mu_ — which every caller of this
  /// (MigrateBucket, ResumeBucket, FailoverShard) already holds. Draining
  /// dead inputs while spinning on try_lock breaks that cycle.
  void LockRoutesForUpdate(std::unique_lock<std::shared_mutex>& route);
  /// Snapshots shard `i`'s engine into its replica at `floor`. Must run on
  /// the thread that owns the engine (the worker, via a control closure or
  /// the checkpoint cadence; or the failover thread with the worker dead).
  void CheckpointShard(size_t shard, uint64_t floor);
  /// Unpauses the migrating bucket onto `final_owner` and replays the
  /// pause buffer to it — the common tail of success and abort paths.
  void ResumeBucket(size_t final_owner);
  /// Equi-join columns must be the partition columns of their streams.
  Status ValidatePartitioning(const CacqQuerySpec& spec) const;
  /// A Load observation for the RebalanceController: per-shard backlog in
  /// tuples (routed - processed) + cumulative per-bucket routed counts.
  RebalanceController::Load ObserveLoad() const;

  Options options_;
  /// key -> bucket -> shard; buckets are the migration granule. BucketOf
  /// is immutable; ShardOf entries flip only inside MigrateBucket.
  PartitionMap partition_map_;
  SourceLayout layout_;  ///< Mirror of every shard engine's layout.
  std::vector<SourceInfo> sources_;
  std::map<std::string, size_t> source_index_;
  Sink sink_;
  /// Full AddQuery/RemoveQuery history in registration order — replaying
  /// it into a fresh engine reproduces the primaries' QueryId assignment
  /// exactly (BuildStandby). Guarded by migrate_mu_ once started.
  struct QueryRecord {
    CacqQuerySpec spec;
    bool removed = false;
  };
  std::vector<QueryRecord> query_history_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// The exchange: per-shard bounded task queues + tcq.shard.* telemetry.
  std::unique_ptr<PartitionedQueue<ShardTask>> input_;
  std::vector<std::unique_ptr<ExecutionObject>> shard_eos_;
  std::unique_ptr<ExecutionObject> egress_eo_;
  bool started_ = false;
  bool stopped_ = false;

  // ---- Migration machinery (DESIGN.md §12) ----
  // Lock order: migrate_mu_ -> route_mu_ -> buffer_mu_. Shard threads take
  // none of these, so barriers inside the critical sections always drain.
  /// Serializes migrations against each other and against the barriered
  /// mutators (Quiesce/AddQuery/RemoveQuery/EvictBefore), so extracted
  /// state can never miss a scrub/eviction and Quiesce never runs with
  /// tuples parked in the pause buffer.
  std::mutex migrate_mu_;
  /// Producers scatter under a shared lock; MigrateBucket takes it
  /// exclusively to mark/unmark the paused bucket, guaranteeing no
  /// producer is mid-scatter across the pause edge.
  std::shared_mutex route_mu_;
  /// Bucket currently paused for migration (SIZE_MAX = none). Guarded by
  /// route_mu_.
  size_t migrating_bucket_ = SIZE_MAX;
  /// Arrivals for the paused bucket, in producer order. Guarded by
  /// buffer_mu_ (producers append under the shared route lock, so they may
  /// race each other — same as racing scatters to one queue).
  struct ParkedTuple {
    size_t source;
    Tuple tuple;
    IngressLane lane;
  };
  std::mutex buffer_mu_;
  std::vector<ParkedTuple> move_buffer_;
  /// Cumulative tuples routed per bucket (controller's planning signal).
  std::vector<Counter> bucket_routed_;

  std::unique_ptr<RebalanceController> controller_;
  // tcq.rebalance.* telemetry (registered in the constructor).
  Counter* migrations_ = nullptr;
  Counter* moved_tuples_ = nullptr;
  Counter* moved_bytes_ = nullptr;
  Counter* buffered_tuples_ = nullptr;
  Histogram* pause_us_ = nullptr;

  // ---- Replication machinery (DESIGN.md §13) ----
  /// Per-shard changelog + snapshot store; non-null iff num_replicas > 0.
  /// Records are appended by the exchange tee (in queue order), snapshots
  /// by the worker threads at the checkpoint cadence, and both are read
  /// back by FailoverShard.
  std::unique_ptr<ReplicationController<EngineCheckpoint>> replication_;
  // tcq.ha.* telemetry (registered in the constructor).
  Counter* ha_checkpoints_ = nullptr;
  Counter* ha_changelog_bytes_ = nullptr;
  Counter* ha_failovers_ = nullptr;
  Counter* ha_replayed_tuples_ = nullptr;
  Counter* ha_suppressed_ = nullptr;
  Counter* ha_torn_ = nullptr;
  Histogram* ha_recovery_us_ = nullptr;
};

}  // namespace tcq

#endif  // TCQ_CACQ_SHARDED_ENGINE_H_
