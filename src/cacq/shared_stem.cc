#include "cacq/shared_stem.h"

#include "common/logging.h"
#include "spool/spool.h"

namespace tcq {

SharedSteM::SharedSteM(std::string name, SchemaPtr schema, int key_field)
    : name_(std::move(name)), schema_(std::move(schema)),
      key_field_(key_field) {
  TCQ_CHECK(schema_ != nullptr);
  TCQ_CHECK(key_field_ < static_cast<int>(schema_->num_fields()));
}

SharedSteM::~SharedSteM() {
  stem_internal::TrackResidentBytes(-resident_bytes_);  // Gauge hygiene.
}

void SharedSteM::SetSpool(Spool* spool, std::string key) {
  TCQ_CHECK(spool != nullptr);
  spool_ = spool;
  spool_key_ = std::move(key);
}

void SharedSteM::Insert(const Tuple& tuple, const SmallBitset& queries) {
  if (tuple.retraction()) {
    // Retraction-cancel (DESIGN.md §15): tombstone the matching stored
    // assertion — whatever lineage it narrowed to — so future probes no
    // longer join against it. The retraction itself is never stored;
    // unmatched retractions fall through as no-ops (counted upstream).
    auto cancel_at = [&](size_t pos) {
      entries_[pos].dead = true;
      --live_;
      TrackBytes(-static_cast<int64_t>(entries_[pos].tuple.ApproxBytes()));
      CompactFront();
      TCQ_METRIC(stem_internal::AggregateMetrics::Get().evictions->Add(1));
    };
    if (key_field_ >= 0) {
      const Value& key = tuple.cell(static_cast<size_t>(key_field_));
      auto [b, e] = index_.equal_range(key);
      for (auto it = b; it != e; ++it) {
        const uint64_t id = it->second;
        if (id < base_id_) continue;
        const size_t pos = static_cast<size_t>(id - base_id_);
        if (pos >= entries_.size() || entries_[pos].dead) continue;
        if (entries_[pos].tuple.PayloadEquals(tuple)) {
          cancel_at(pos);
          return;
        }
      }
    } else {
      for (size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].dead && entries_[i].tuple.PayloadEquals(tuple)) {
          cancel_at(i);
          return;
        }
      }
    }
    return;
  }
  const uint64_t id = base_id_ + entries_.size();
  if (key_field_ >= 0) {
    index_.emplace(tuple.cell(static_cast<size_t>(key_field_)), id);
  }
  entries_.push_back(Entry{tuple, queries, false});
  ++live_;
  TrackBytes(static_cast<int64_t>(tuple.ApproxBytes()));
  TCQ_METRIC(stem_internal::AggregateMetrics::Get().inserts->Add(1));
}

size_t SharedSteM::EvictBefore(Timestamp ts) {
  size_t n = 0;
  for (Entry& e : entries_) {
    if (!e.dead && e.tuple.timestamp() < ts) {
      if (spool_ != nullptr) {
        // Window-expiry demotion: the bare tuple goes to disk (lineage is
        // RAM-only; replay re-derives query sets). Append routes any
        // out-of-timestamp-order demotion to the spool's late run.
        TCQ_CHECK(spool_->Append(spool_key_, e.tuple).ok())
            << name_ << ": spool demotion failed";
      }
      e.dead = true;
      --live_;
      ++n;
      TrackBytes(-static_cast<int64_t>(e.tuple.ApproxBytes()));
      TCQ_METRIC(stem_internal::AggregateMetrics::Get().evictions->Add(1));
    }
  }
  CompactFront();
  return n;
}

void SharedSteM::ScrubQuery(size_t q) {
  for (Entry& e : entries_) {
    if (!e.dead && q < e.queries.size_bits()) e.queries.Clear(q);
  }
}

void SharedSteM::CompactFront() {
  while (!entries_.empty() && entries_.front().dead) {
    if (key_field_ >= 0) {
      const Value& key =
          entries_.front().tuple.cell(static_cast<size_t>(key_field_));
      auto [b, e] = index_.equal_range(key);
      for (auto it = b; it != e;) {
        it = (it->second == base_id_) ? index_.erase(it) : std::next(it);
      }
    }
    entries_.pop_front();
    ++base_id_;
  }
}

}  // namespace tcq
