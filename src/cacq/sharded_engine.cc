#include "cacq/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/logging.h"
#include "expr/predicates.h"

namespace tcq {

namespace {

/// Minimal countdown latch (std::latch stays out so the TSan build's
/// libstdc++ coverage is irrelevant): control barriers wait on it while
/// shard threads count it down.
class Latch {
 public:
  explicit Latch(size_t n) : n_(n) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    TCQ_CHECK(n_ > 0);
    if (--n_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return n_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t n_;
};

/// Exchange edge flavors: producers block for space (backpressure toward
/// the pushing client), consumers never block (the ExecutionObject polls
/// and idles, and shutdown never has to interrupt a blocked thread).
QueueOptions ShardEdgeOptions(size_t capacity) {
  return QueueOptions{capacity, QueueEnd::kBlocking, QueueEnd::kNonBlocking,
                      false, nullptr};
}

}  // namespace

/// Drains one shard's exchange queue: data tasks are injected into the
/// shard engine (emissions buffered by the engine sink, flushed to the
/// egress queue after every task), control tasks run inline. kDone once
/// the exchange is closed and drained; the shard then closes its egress
/// queue, propagating end-of-stream downstream.
class ShardedEngine::WorkerModule : public FjordModule {
 public:
  WorkerModule(ShardedEngine* parent, size_t shard)
      : FjordModule("shard-worker-" + std::to_string(shard)),
        parent_(parent),
        shard_(shard) {}

  StepResult Step(size_t max_tasks) override {
    Shard& sh = *parent_->shards_[shard_];
    FjordQueue<ShardTask>& in = parent_->input_->partition(shard_);
    scratch_.clear();
    const size_t n = in.DequeueUpTo(max_tasks == 0 ? 1 : max_tasks,
                                    &scratch_);
    if (n == 0) {
      if (in.Exhausted()) {
        FlushEmissions(sh);
        sh.output->Close();
        return StepResult::kDone;
      }
      return StepResult::kIdle;
    }
    for (ShardTask& task : scratch_) {
      if (task.control) {
        // Emissions from earlier tasks must reach the egress queue before
        // the control runs: Quiesce's phase-2 barrier rides behind them.
        FlushEmissions(sh);
        task.control();
        continue;
      }
      const Status st = sh.engine->InjectBatch(task.source, task.tuples);
      TCQ_CHECK(st.ok()) << "shard " << shard_
                         << " inject failed: " << st.ToString();
      sh.processed += task.tuples.size();
      FlushEmissions(sh);
    }
    return StepResult::kDidWork;
  }

 private:
  void FlushEmissions(Shard& sh) {
    if (sh.pending.empty()) return;
    EgressItem item;
    item.results = std::move(sh.pending);
    sh.pending.clear();
    // Blocking enqueue: egress backpressure stalls this shard, not the
    // process (the egress thread always drains).
    sh.output->Enqueue(std::move(item));
  }

  ShardedEngine* parent_;
  const size_t shard_;
  std::vector<ShardTask> scratch_;
};

/// The merge/union half of the exchange: round-robins over every shard's
/// egress queue and hands emission batches to the engine sink in arrival
/// order. kDone once every shard closed its queue and nothing is left.
class ShardedEngine::EgressModule : public FjordModule {
 public:
  explicit EgressModule(ShardedEngine* parent)
      : FjordModule("shard-egress"), parent_(parent) {}

  StepResult Step(size_t max_items) override {
    bool any_work = false;
    bool all_exhausted = true;
    for (auto& shard : parent_->shards_) {
      scratch_.clear();
      const size_t n =
          shard->output->DequeueUpTo(max_items == 0 ? 1 : max_items,
                                     &scratch_);
      for (EgressItem& item : scratch_) {
        if (item.control) {
          item.control();
          continue;
        }
        if (parent_->sink_) parent_->sink_(std::move(item.results));
      }
      if (n > 0) any_work = true;
      if (!shard->output->Exhausted()) all_exhausted = false;
    }
    if (any_work) return StepResult::kDidWork;
    return all_exhausted ? StepResult::kDone : StepResult::kIdle;
  }

 private:
  ShardedEngine* parent_;
  std::vector<EgressItem> scratch_;
};

ShardedEngine::ShardedEngine() : ShardedEngine(Options()) {}

ShardedEngine::ShardedEngine(Options options)
    : options_(std::move(options)),
      partition_map_(std::max(options_.num_buckets, options_.num_shards),
                     options_.num_shards == 0 ? 1 : options_.num_shards) {
  TCQ_CHECK(options_.num_shards > 0);
  bucket_routed_.resize(partition_map_.num_buckets());
  MetricRegistry& r = MetricRegistry::Global();
  migrations_ = r.GetCounter("tcq.rebalance.migrations");
  moved_tuples_ = r.GetCounter("tcq.rebalance.moved_tuples");
  moved_bytes_ = r.GetCounter("tcq.rebalance.moved_bytes");
  buffered_tuples_ = r.GetCounter("tcq.rebalance.buffered_tuples");
  pause_us_ = r.GetHistogram("tcq.rebalance.pause_us");
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    CacqEngine::Options eo;
    eo.policy = options_.policy;
    eo.seed = options_.seed + i;  // Decorrelated exploration per shard.
    eo.eddy = options_.eddy;
    shard->engine = std::make_unique<CacqEngine>(eo);
    shard->output = std::make_unique<FjordQueue<EgressItem>>(
        ShardEdgeOptions(options_.egress_capacity));
    Shard* raw = shard.get();
    // Runs on the shard thread mid-InjectBatch; the worker flushes
    // `pending` into the egress queue after every task.
    shard->engine->SetSink([raw](QueryId q, const Tuple& t) {
      raw->pending.emplace_back(q, t);
    });
    shards_.push_back(std::move(shard));
  }
  input_ = std::make_unique<PartitionedQueue<ShardTask>>(
      options_.num_shards, ShardEdgeOptions(options_.input_capacity),
      "tcq.shard");
}

ShardedEngine::~ShardedEngine() { Stop(); }

Result<size_t> ShardedEngine::AddStream(const std::string& name,
                                        SchemaPtr schema,
                                        size_t partition_column) {
  if (started_ || stopped_) {
    return Status::FailedPrecondition(
        "streams must be declared before Start()");
  }
  if (partition_column >= schema->num_fields()) {
    return Status::OutOfRange("partition column out of range for " + name);
  }
  if (source_index_.count(name) != 0) {
    return Status::AlreadyExists("stream already declared: " + name);
  }
  size_t index = 0;
  for (auto& shard : shards_) {
    TCQ_ASSIGN_OR_RETURN(index, shard->engine->AddStream(name, schema));
  }
  const size_t mirror = layout_.AddSource(name, schema);
  TCQ_CHECK(mirror == index);
  source_index_[name] = index;
  if (sources_.size() <= index) sources_.resize(index + 1);
  sources_[index] = SourceInfo{name, partition_column};
  return index;
}

void ShardedEngine::Start() {
  TCQ_CHECK(!started_ && !stopped_) << "ShardedEngine starts exactly once";
  TCQ_CHECK(!sources_.empty()) << "declare streams before Start()";
  started_ = true;
  shard_eos_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto eo = std::make_unique<ExecutionObject>("shard-" + std::to_string(i));
    eo->AddModule(std::make_shared<WorkerModule>(this, i));
    eo->Start();
    shard_eos_.push_back(std::move(eo));
  }
  egress_eo_ = std::make_unique<ExecutionObject>("shard-egress");
  egress_eo_->AddModule(std::make_shared<EgressModule>(this));
  egress_eo_->Start();
  if (options_.auto_rebalance) {
    controller_ = std::make_unique<RebalanceController>(
        &partition_map_, [this] { return ObserveLoad(); },
        [this](size_t bucket, size_t to) { return MigrateBucket(bucket, to); },
        options_.rebalance);
    controller_->Start();
  }
}

void ShardedEngine::Stop() {
  if (!started_ || stopped_) return;
  // The controller must stop before the exchange closes: a migration in
  // flight against closing queues would trip the control-enqueue checks.
  if (controller_ != nullptr) controller_->Stop();
  stopped_ = true;
  // Close the exchange; each worker drains its queue, flushes emissions,
  // closes its egress queue and reports done. Join() waits for that
  // before stopping the thread — nothing in flight is dropped.
  input_->CloseAll();
  for (auto& eo : shard_eos_) eo->Join();
  egress_eo_->Join();
}

void ShardedEngine::EnqueueControl(size_t i, std::function<void()> fn) {
  ShardTask task;
  task.control = std::move(fn);
  const bool ok = input_->EnqueuePartition(i, std::move(task), 0);
  TCQ_CHECK(ok) << "control task enqueued on a stopped engine";
}

void ShardedEngine::RunOnAllShards(const std::function<void(size_t)>& fn) {
  if (!started_ || stopped_) {
    for (size_t i = 0; i < shards_.size(); ++i) fn(i);
    return;
  }
  Latch latch(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    EnqueueControl(i, [&fn, &latch, i] {
      fn(i);
      latch.CountDown();
    });
  }
  latch.Wait();
}

void ShardedEngine::RunOnShard(size_t i, const std::function<void()>& fn) {
  if (!started_ || stopped_) {
    fn();
    return;
  }
  Latch latch(1);
  EnqueueControl(i, [&fn, &latch] {
    fn();
    latch.CountDown();
  });
  latch.Wait();
}

Status ShardedEngine::ValidatePartitioning(const CacqQuerySpec& spec) const {
  if (spec.where == nullptr || layout_.num_sources() == 0) {
    return Status::OK();  // Nothing to join on; CacqEngine validates.
  }
  const SchemaPtr& schema = layout_.full_schema();
  for (const ExprPtr& factor : ExtractConjuncts(spec.where)) {
    if (factor == nullptr) continue;
    auto ej = MatchEquiJoin(factor);
    if (!ej.has_value()) continue;
    auto ca = schema->IndexOf(ej->left_column);
    auto cb = schema->IndexOf(ej->right_column);
    if (!ca.ok() || !cb.ok()) continue;  // CacqEngine reports the error.
    const size_t sa = layout_.SourceIndexOf(schema->field(*ca).qualifier);
    const size_t sb = layout_.SourceIndexOf(schema->field(*cb).qualifier);
    if (sa == sb) continue;  // Same-source equality: residual work.
    const size_t col_a = *ca - layout_.offset(sa);
    const size_t col_b = *cb - layout_.offset(sb);
    if (col_a != sources_[sa].partition_column ||
        col_b != sources_[sb].partition_column) {
      return Status::InvalidArgument(
          "equi-join " + factor->ToString() +
          " does not match the shard partition columns of its streams; "
          "matches would span shards (declare the streams partitioned on "
          "their join columns)");
    }
  }
  return Status::OK();
}

Result<QueryId> ShardedEngine::AddQuery(const CacqQuerySpec& spec) {
  TCQ_RETURN_NOT_OK(ValidatePartitioning(spec));
  std::vector<std::optional<Result<QueryId>>> results(shards_.size());
  RunOnAllShards([this, &spec, &results](size_t i) {
    results[i] = shards_[i]->engine->AddQuery(spec);
  });
  TCQ_CHECK(results[0].has_value());
  if (!results[0]->ok()) return results[0]->status();
  const QueryId id = **results[0];
  for (size_t i = 1; i < results.size(); ++i) {
    if (!results[i]->ok()) return results[i]->status();
    TCQ_CHECK(**results[i] == id)
        << "shard " << i << " assigned a divergent QueryId";
  }
  return id;
}

Status ShardedEngine::RemoveQuery(QueryId q) {
  // Removal scrubs the query's bit from every stored lineage; serialized
  // with migrations so extracted-but-not-yet-installed state can't skip
  // the scrub and resurrect the query's results on the recipient.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  std::vector<Status> statuses(shards_.size());
  RunOnAllShards([this, q, &statuses](size_t i) {
    statuses[i] = shards_[i]->engine->RemoveQuery(q);
  });
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status ShardedEngine::PushBatch(const std::string& stream,
                                std::vector<Tuple> batch) {
  if (!started_) {
    return Status::FailedPrecondition("Start() the engine before pushing");
  }
  if (stopped_) return Status::Unavailable("engine stopped");
  const auto it = source_index_.find(stream);
  if (it == source_index_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  if (batch.empty()) return Status::OK();
  const size_t source = it->second;
  const size_t key_column = sources_[source].partition_column;
  // Scatter: group by bucket -> shard so each shard receives ONE exchange
  // task per producer batch (amortizing queue costs), in producer order —
  // per-key FIFO holds because one key always maps to one bucket and a
  // bucket has exactly one owner at a time. The shared route lock spans
  // the whole scatter: MigrateBucket's exclusive acquisition therefore
  // proves no producer straddles a pause edge (a scatter sees the bucket
  // either entirely before the pause or entirely paused).
  std::shared_lock<std::shared_mutex> route(route_mu_);
  std::vector<std::vector<Tuple>> groups(shards_.size());
  for (Tuple& t : batch) {
    const size_t bucket = partition_map_.BucketOf(t, key_column);
    // Live in every build (not TCQ_METRIC): the rebalance controller
    // plans from these, so they are adaptivity state, not observation.
    bucket_routed_[bucket].Add(1);
    if (bucket == migrating_bucket_) {
      // Paused for migration: park in producer order; MigrateBucket
      // replays the buffer to the new owner before unpausing.
      std::lock_guard<std::mutex> lock(buffer_mu_);
      move_buffer_.emplace_back(source, std::move(t));
      TCQ_METRIC(buffered_tuples_->Add(1));
      continue;
    }
    groups[partition_map_.ShardOf(bucket)].push_back(std::move(t));
  }
  for (size_t p = 0; p < groups.size(); ++p) {
    if (groups[p].empty()) continue;
    ShardTask task;
    task.source = source;
    task.tuples = std::move(groups[p]);
    const size_t count = task.tuples.size();
    if (!input_->EnqueuePartition(p, std::move(task), count)) {
      return Status::Unavailable("engine stopped mid-scatter");
    }
    shards_[p]->routed += count;
  }
  TCQ_METRIC(input_->RefreshDepthStats());
  return Status::OK();
}

Status ShardedEngine::Push(const std::string& stream, Tuple tuple) {
  std::vector<Tuple> one;
  one.push_back(std::move(tuple));
  return PushBatch(stream, std::move(one));
}

void ShardedEngine::Quiesce() {
  if (!started_ || stopped_) return;
  // Serialize against migrations first: a migration in flight may hold
  // tuples in the pause buffer, which the barriers below cannot see. Once
  // migrate_mu_ is ours the buffer is empty and everything is in queues.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  // Phase 1: a control barrier behind all data on every shard queue —
  // when it fires, every prior tuple has been executed and its emissions
  // flushed into the egress queues.
  RunOnAllShards([](size_t) {});
  // Phase 2: a barrier behind those emissions on every egress queue —
  // when it fires, the sink has seen everything.
  Latch latch(shards_.size());
  for (auto& shard : shards_) {
    EgressItem item;
    item.control = [&latch] { latch.CountDown(); };
    const bool ok = shard->output->Enqueue(std::move(item));
    TCQ_CHECK(ok) << "egress barrier on a stopped engine";
  }
  latch.Wait();
}

void ShardedEngine::EvictBefore(Timestamp ts) {
  // Serialized with migrations so in-transit extracted state (which an
  // all-shards eviction barrier would never visit) can't dodge a window
  // eviction and get installed stale on the recipient.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  RunOnAllShards(
      [this, ts](size_t i) { shards_[i]->engine->EvictBefore(ts); });
}

Status ShardedEngine::MigrateBucket(size_t bucket, size_t to_shard) {
  if (!started_) {
    return Status::FailedPrecondition("Start() the engine before migrating");
  }
  if (stopped_) return Status::Unavailable("engine stopped");
  if (bucket >= partition_map_.num_buckets()) {
    return Status::OutOfRange("bucket out of range");
  }
  if (to_shard >= shards_.size()) {
    return Status::OutOfRange("shard out of range");
  }
  std::lock_guard<std::mutex> mig(migrate_mu_);
  const size_t from = partition_map_.ShardOf(bucket);
  if (from == to_shard) return Status::OK();

  const auto pause_start = std::chrono::steady_clock::now();
  // 1. Pause: mark the bucket under the exclusive route lock. From here no
  // producer can scatter the bucket's tuples to any shard queue — new
  // arrivals park in move_buffer_ instead.
  {
    std::unique_lock<std::shared_mutex> route(route_mu_);
    migrating_bucket_ = bucket;
  }
  // 2. Drain + extract: the closure rides the donor's queue behind every
  // task scattered before the pause, so when it runs, all of the bucket's
  // in-flight tuples have been injected. It then lifts the bucket's SteM
  // state off the donor, on the donor's own thread.
  BucketState state;
  RunOnShard(from, [&] {
    state = shards_[from]->engine->ExtractBucketState(
        bucket, [this, bucket](const Value& key) {
          return partition_map_.BucketOf(key) == bucket;
        });
  });
  // 3. Install on the recipient's thread. Installation failure means the
  // shard engines diverged (can't happen through this class's API); the
  // state is put back on the donor so nothing is lost either way.
  Status install;
  RunOnShard(to_shard, [&] {
    install = shards_[to_shard]->engine->InstallBucketState(state);
  });
  if (!install.ok()) {
    RunOnShard(from, [&] {
      const Status undo = shards_[from]->engine->InstallBucketState(state);
      TCQ_CHECK(undo.ok()) << "rollback reinstall failed: " << undo.ToString();
    });
  }
  const size_t final_owner = install.ok() ? to_shard : from;
  // 4. Flip + resume: still under the exclusive route lock, retarget the
  // bucket and replay the paused arrivals to the final owner IN ORDER —
  // producers stay blocked until the replay is enqueued, so no fresh
  // scatter can overtake the buffer (per-key FIFO holds across the move).
  {
    std::unique_lock<std::shared_mutex> route(route_mu_);
    partition_map_.SetOwner(bucket, final_owner);
    migrating_bucket_ = SIZE_MAX;
    std::vector<std::pair<size_t, Tuple>> buffered;
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      buffered.swap(move_buffer_);
    }
    // Group contiguous same-source runs into tasks (source order between
    // producers is whatever the race produced, same as live scatter).
    size_t i = 0;
    while (i < buffered.size()) {
      ShardTask task;
      task.source = buffered[i].first;
      while (i < buffered.size() && buffered[i].first == task.source) {
        task.tuples.push_back(std::move(buffered[i].second));
        ++i;
      }
      const size_t count = task.tuples.size();
      if (!input_->EnqueuePartition(final_owner, std::move(task), count)) {
        return Status::Unavailable("engine stopped mid-migration");
      }
      shards_[final_owner]->routed += count;
    }
  }
  const auto pause_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - pause_start)
                            .count();
  TCQ_METRIC(pause_us_->Record(static_cast<uint64_t>(pause_us)));
  if (!install.ok()) return install;
  migrations_->Add(1);
  moved_tuples_->Add(state.tuple_count());
  moved_bytes_->Add(state.approx_bytes());
  return Status::OK();
}

RebalanceController::Load ShardedEngine::ObserveLoad() const {
  RebalanceController::Load load;
  load.shard_backlog.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Backlog in tuples: scattered minus injected. Counter reads are
    // relaxed, so a torn view can transiently "underflow" — clamp to 0.
    const uint64_t routed = shards_[i]->routed;
    const uint64_t processed = shards_[i]->processed;
    load.shard_backlog[i] =
        routed > processed ? static_cast<size_t>(routed - processed) : 0;
  }
  load.bucket_routed.resize(bucket_routed_.size());
  for (size_t b = 0; b < bucket_routed_.size(); ++b) {
    load.bucket_routed[b] = bucket_routed_[b].value();
  }
  return load;
}

ShardedEngine::RebalanceStats ShardedEngine::rebalance_stats() const {
  RebalanceStats s;
  s.migrations = migrations_->value();
  s.moved_tuples = moved_tuples_->value();
  s.moved_bytes = moved_bytes_->value();
  s.buffered_tuples = buffered_tuples_->value();
  return s;
}

size_t ShardedEngine::num_active_queries() const {
  // Identical registrations everywhere: shard 0 speaks for all. Safe
  // cross-thread only in the quiesced/unstarted states the accessor's
  // callers hold (Server reads it under its own submission lock).
  return shards_[0]->engine->num_active_queries();
}

std::vector<ShardedEngine::ShardStats> ShardedEngine::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardStats s;
    s.routed = shards_[i]->routed;
    s.processed = shards_[i]->processed;
    s.queue_depth = input_->partition(i).Size();
    s.eddy_decisions = shards_[i]->engine->eddy().decisions();
    s.eddy_emitted = shards_[i]->engine->eddy().emitted();
    out.push_back(s);
  }
  return out;
}

}  // namespace tcq
