#include "cacq/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "expr/predicates.h"

namespace tcq {

namespace {

/// Minimal countdown latch (std::latch stays out so the TSan build's
/// libstdc++ coverage is irrelevant): the egress barrier waits on it while
/// the egress thread counts it down. Only used where the counting thread
/// provably cannot die (the egress stage); shard barriers use the
/// abandonable ShardBarrier below instead.
class Latch {
 public:
  explicit Latch(size_t n) : n_(n) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    TCQ_CHECK(n_ > 0);
    if (--n_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return n_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t n_;
};

/// Exchange edge flavors: producers block for space (backpressure toward
/// the pushing client), consumers never block (the ExecutionObject polls
/// and idles, and shutdown never has to interrupt a blocked thread).
QueueOptions ShardEdgeOptions(size_t capacity) {
  return QueueOptions{capacity, QueueEnd::kBlocking, QueueEnd::kNonBlocking,
                      false, nullptr};
}

}  // namespace

/// A control barrier that survives the death of the threads it waits on.
/// The closure lives INSIDE the barrier (kept alive by the shared_ptr each
/// enqueued wrapper holds), so a waiter can abandon the barrier and return
/// an error while stale wrappers are still queued on a dead shard: when the
/// failover drain later runs them, they see `abandoned_`, skip the closure
/// (whose captures may reference the long-gone caller frame) and just count
/// down. Abandon() synchronizes with in-flight closures — it waits until
/// nothing is executing — so the caller's frame is never touched after an
/// error return.
class ShardedEngine::ShardBarrier {
 public:
  ShardBarrier(std::function<void(size_t)> fn, size_t num_shards)
      : fn_(std::move(fn)), done_(num_shards, 0) {}

  /// Runs on the shard thread (or the failover drain): executes the
  /// closure unless the waiter gave up, then counts down.
  void Run(size_t shard) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!abandoned_) {
      ++executing_;
      lock.unlock();
      fn_(shard);
      lock.lock();
      --executing_;
    }
    done_[shard] = 1;
    ++completed_;
    cv_.notify_all();
  }

 private:
  friend class ShardedEngine;
  std::function<void(size_t)> fn_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> done_;  ///< Indexed by shard id.
  size_t completed_ = 0;    ///< Wrappers that ran (executed or abandoned).
  size_t executing_ = 0;    ///< Wrappers currently inside the closure.
  bool abandoned_ = false;
};

/// Drains one shard's exchange queue: data tasks are injected into the
/// shard engine (emissions buffered by the engine sink, flushed to the
/// egress queue after every task), control tasks run inline. kDone once
/// the exchange is closed and drained; the shard then closes its egress
/// queue, propagating end-of-stream downstream.
///
/// Crash model (DESIGN.md §13): a KillShard request is observed at task
/// boundaries only, so the worker dies with every prior batch fully
/// applied AND flushed and every later batch untouched — the granularity
/// the LSN/suppression recovery protocol depends on.
class ShardedEngine::WorkerModule : public FjordModule {
 public:
  WorkerModule(ShardedEngine* parent, size_t shard)
      : FjordModule("shard-worker-" + std::to_string(shard)),
        parent_(parent),
        shard_(shard) {}

  StepResult Step(size_t max_tasks) override {
    Shard& sh = *parent_->shards_[shard_];
    if (sh.kill.load(std::memory_order_acquire)) return Die(sh);
    FjordQueue<ShardTask>& in = parent_->input_->partition(shard_);
    scratch_.clear();
    const size_t n = in.DequeueUpTo(max_tasks == 0 ? 1 : max_tasks,
                                    &scratch_);
    if (n == 0) {
      if (in.Exhausted()) {
        FlushEmissions(sh);
        sh.output->Close();
        return StepResult::kDone;
      }
      return StepResult::kIdle;
    }
    for (ShardTask& task : scratch_) {
      if (task.control) {
        // Emissions from earlier tasks must reach the egress queue before
        // the control runs: Quiesce's phase-2 barrier rides behind them.
        FlushEmissions(sh);
        task.control();
        continue;
      }
      if (sh.kill.load(std::memory_order_acquire)) {
        // Killed mid-scratch: this batch and the rest are dropped whole —
        // each is in the changelog, above the applied floor, and will be
        // replayed (and counted) by the failover.
        return Die(sh);
      }
      const Status st =
          sh.engine->InjectBatch(task.source, task.tuples, task.lane);
      TCQ_CHECK(st.ok()) << "shard " << shard_
                         << " inject failed: " << st.ToString();
      sh.processed += task.tuples.size();
      FlushEmissions(sh);
      if (task.lsn != 0) {
        // The floor advances only after the flush: everything at or under
        // it is IN the egress queue and will reach the sink, so replay can
        // suppress those records' emissions without losing results.
        sh.applied_lsn.store(task.lsn, std::memory_order_release);
        MaybeCheckpoint(sh);
      }
    }
    return StepResult::kDidWork;
  }

 private:
  /// Cooperative crash at a task boundary. The egress queue stays OPEN: a
  /// failover feeds recovered emissions into it, and Stop() closes it for
  /// shards nobody recovers. `alive` flips last — barrier waiters and the
  /// failover poll it.
  StepResult Die(Shard& sh) {
    FlushEmissions(sh);
    sh.alive.store(false, std::memory_order_release);
    return StepResult::kDone;
  }

  void MaybeCheckpoint(Shard& sh) {
    ReplicationController<EngineCheckpoint>* rep = parent_->replication_.get();
    if (rep == nullptr) return;
    const uint64_t floor = sh.applied_lsn.load(std::memory_order_relaxed);
    if (!rep->ShouldCheckpoint(shard_, floor)) return;
    parent_->CheckpointShard(shard_, floor);
  }

  void FlushEmissions(Shard& sh) {
    if (sh.pending.empty()) return;
    EgressItem item;
    item.results = std::move(sh.pending);
    sh.pending.clear();
    // Blocking enqueue: egress backpressure stalls this shard, not the
    // process (the egress thread always drains).
    sh.output->Enqueue(std::move(item));
  }

  ShardedEngine* parent_;
  const size_t shard_;
  std::vector<ShardTask> scratch_;
};

/// The merge/union half of the exchange: round-robins over every shard's
/// egress queue and hands emission batches to the engine sink in arrival
/// order. kDone once every shard closed its queue and nothing is left.
class ShardedEngine::EgressModule : public FjordModule {
 public:
  explicit EgressModule(ShardedEngine* parent)
      : FjordModule("shard-egress"), parent_(parent) {}

  StepResult Step(size_t max_items) override {
    bool any_work = false;
    bool all_exhausted = true;
    for (auto& shard : parent_->shards_) {
      scratch_.clear();
      const size_t n =
          shard->output->DequeueUpTo(max_items == 0 ? 1 : max_items,
                                     &scratch_);
      for (EgressItem& item : scratch_) {
        if (item.control) {
          item.control();
          continue;
        }
        if (parent_->sink_) parent_->sink_(std::move(item.results));
      }
      if (n > 0) any_work = true;
      if (!shard->output->Exhausted()) all_exhausted = false;
    }
    if (any_work) return StepResult::kDidWork;
    return all_exhausted ? StepResult::kDone : StepResult::kIdle;
  }

 private:
  ShardedEngine* parent_;
  std::vector<EgressItem> scratch_;
};

ShardedEngine::ShardedEngine() : ShardedEngine(Options()) {}

ShardedEngine::ShardedEngine(Options options)
    : options_(std::move(options)),
      partition_map_(std::max(options_.num_buckets, options_.num_shards),
                     options_.num_shards == 0 ? 1 : options_.num_shards) {
  TCQ_CHECK(options_.num_shards > 0);
  options_.num_replicas = std::min<size_t>(options_.num_replicas, 1);
  bucket_routed_.resize(partition_map_.num_buckets());
  MetricRegistry& r = MetricRegistry::Global();
  migrations_ = r.GetCounter("tcq.rebalance.migrations");
  moved_tuples_ = r.GetCounter("tcq.rebalance.moved_tuples");
  moved_bytes_ = r.GetCounter("tcq.rebalance.moved_bytes");
  buffered_tuples_ = r.GetCounter("tcq.rebalance.buffered_tuples");
  pause_us_ = r.GetHistogram("tcq.rebalance.pause_us");
  ha_checkpoints_ = r.GetCounter("tcq.ha.checkpoints");
  ha_changelog_bytes_ = r.GetCounter("tcq.ha.changelog_bytes");
  ha_failovers_ = r.GetCounter("tcq.ha.failovers");
  ha_replayed_tuples_ = r.GetCounter("tcq.ha.replayed_tuples");
  ha_suppressed_ = r.GetCounter("tcq.ha.suppressed_emissions");
  ha_torn_ = r.GetCounter("tcq.ha.torn_snapshots");
  ha_recovery_us_ = r.GetHistogram("tcq.ha.recovery_us");
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    CacqEngine::Options eo;
    eo.policy = options_.policy;
    eo.seed = options_.seed + i;  // Decorrelated exploration per shard.
    eo.eddy = options_.eddy;
    if (options_.spool != nullptr) {
      eo.spool = options_.spool;
      eo.spool_prefix =
          options_.spool_prefix + "shard." + std::to_string(i) + ".";
    }
    shard->engine = std::make_unique<CacqEngine>(eo);
    if (options_.num_replicas > 0) {
      // The warm standby: identical construction (same seed — routing
      // invariance makes replayed results match the primary's multiset),
      // minus the spool: standby state is a checkpoint copy of the
      // primary's, and double-spooling would duplicate history.
      eo.spool = nullptr;
      eo.spool_prefix.clear();
      shard->standby = std::make_unique<CacqEngine>(eo);
    }
    shard->output = std::make_unique<FjordQueue<EgressItem>>(
        ShardEdgeOptions(options_.egress_capacity));
    Shard* raw = shard.get();
    // Runs on the shard thread mid-InjectBatch; the worker flushes
    // `pending` into the egress queue after every task.
    shard->engine->SetSink([raw](QueryId q, const Tuple& t) {
      raw->pending.emplace_back(q, t);
    });
    shards_.push_back(std::move(shard));
  }
  input_ = std::make_unique<PartitionedQueue<ShardTask>>(
      options_.num_shards, ShardEdgeOptions(options_.input_capacity),
      "tcq.shard");
  if (options_.num_replicas > 0) {
    ReplicationController<EngineCheckpoint>::Options ro;
    ro.checkpoint_interval = options_.checkpoint_interval;
    replication_ = std::make_unique<ReplicationController<EngineCheckpoint>>(
        options_.num_shards, ro);
    // Dual-routing: every data task is logged to the shard's changelog at
    // enqueue time, under the exchange's per-partition tee lock, so log
    // order IS queue order. The record gets the LSN stamped back onto the
    // task; the worker advances the applied floor as it processes them.
    input_->SetTee([this](size_t p, ShardTask& task, size_t) {
      if (task.control) return;  // Only the data path is logged.
      task.lsn = replication_->replica(p).Append(
          task.source, std::vector<Tuple>(task.tuples), task.lane);
      size_t bytes = 0;
      for (const Tuple& t : task.tuples) {
        bytes += sizeof(Tuple) + t.arity() * sizeof(Value);
      }
      ha_changelog_bytes_->Add(bytes);
    });
  }
}

ShardedEngine::~ShardedEngine() { Stop(); }

Result<size_t> ShardedEngine::AddStream(const std::string& name,
                                        SchemaPtr schema,
                                        size_t partition_column) {
  if (started_ || stopped_) {
    return Status::FailedPrecondition(
        "streams must be declared before Start()");
  }
  if (partition_column >= schema->num_fields()) {
    return Status::OutOfRange("partition column out of range for " + name);
  }
  if (source_index_.count(name) != 0) {
    return Status::AlreadyExists("stream already declared: " + name);
  }
  size_t index = 0;
  for (auto& shard : shards_) {
    TCQ_ASSIGN_OR_RETURN(index, shard->engine->AddStream(name, schema));
    if (shard->standby != nullptr) {
      TCQ_ASSIGN_OR_RETURN(const size_t mirror,
                           shard->standby->AddStream(name, schema));
      TCQ_CHECK(mirror == index);
    }
  }
  const size_t mirror = layout_.AddSource(name, schema);
  TCQ_CHECK(mirror == index);
  source_index_[name] = index;
  if (sources_.size() <= index) sources_.resize(index + 1);
  sources_[index] = SourceInfo{name, partition_column, schema};
  return index;
}

void ShardedEngine::Start() {
  TCQ_CHECK(!started_ && !stopped_) << "ShardedEngine starts exactly once";
  TCQ_CHECK(!sources_.empty()) << "declare streams before Start()";
  started_ = true;
  shard_eos_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto eo = std::make_unique<ExecutionObject>("shard-" + std::to_string(i));
    eo->AddModule(std::make_shared<WorkerModule>(this, i));
    eo->Start();
    shard_eos_.push_back(std::move(eo));
  }
  egress_eo_ = std::make_unique<ExecutionObject>("shard-egress");
  egress_eo_->AddModule(std::make_shared<EgressModule>(this));
  egress_eo_->Start();
  if (options_.auto_rebalance) {
    controller_ = std::make_unique<RebalanceController>(
        &partition_map_, [this] { return ObserveLoad(); },
        [this](size_t bucket, size_t to) { return MigrateBucket(bucket, to); },
        options_.rebalance);
    controller_->Start();
  }
}

void ShardedEngine::Stop() {
  if (!started_ || stopped_) return;
  // The controller must stop before the exchange closes: a migration in
  // flight against closing queues would trip the control-enqueue checks.
  if (controller_ != nullptr) controller_->Stop();
  stopped_ = true;
  // Close the exchange; each live worker drains its queue, flushes
  // emissions, closes its egress queue and reports done. Join() waits for
  // that before stopping the thread — nothing in flight is dropped.
  input_->CloseAll();
  for (auto& eo : shard_eos_) {
    if (eo != nullptr) eo->Join();
  }
  // A worker that died via KillShard never closed its egress queue (a
  // failover would have fed recovered results into it). Close those now or
  // the egress module never sees end-of-stream.
  for (auto& shard : shards_) {
    if (!shard->alive.load(std::memory_order_acquire)) shard->output->Close();
  }
  egress_eo_->Join();
}

bool ShardedEngine::EnqueueControl(size_t i, std::function<void()> fn) {
  ShardTask task;
  task.control = std::move(fn);
  FjordQueue<ShardTask>& q = input_->partition(i);
  for (;;) {
    switch (q.TryEnqueue(task)) {
      case FjordQueue<ShardTask>::TryResult::kAccepted:
        return true;
      case FjordQueue<ShardTask>::TryResult::kClosed:
        return false;
      case FjordQueue<ShardTask>::TryResult::kFull:
        // A full queue with a live consumer drains; behind a dead one it
        // never would — give up (the caller abandons its barrier).
        if (!shards_[i]->alive.load(std::memory_order_acquire)) return false;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        break;
    }
  }
}

Status ShardedEngine::WaitBarrier(
    const std::shared_ptr<ShardBarrier>& barrier,
    const std::vector<size_t>& targets) {
  std::unique_lock<std::mutex> lock(barrier->mu_);
  for (;;) {
    if (barrier->completed_ == targets.size()) return Status::OK();
    size_t dead = SIZE_MAX;
    for (size_t t : targets) {
      if (!barrier->done_[t] &&
          !shards_[t]->alive.load(std::memory_order_acquire)) {
        dead = t;
        break;
      }
    }
    if (dead != SIZE_MAX) {
      // The shard died with our closure still queued. Abandon the barrier
      // (late wrappers become no-ops) and wait out any closure mid-flight
      // on a live shard, so nothing touches the caller's frame after the
      // error return.
      barrier->abandoned_ = true;
      barrier->cv_.wait(lock, [&] { return barrier->executing_ == 0; });
      return Status::Unavailable(
          "shard " + std::to_string(dead) +
          "'s worker died before the control barrier; fail over the shard "
          "and retry");
    }
    // Poll: a kill can flip `alive` without ever waking this cv.
    barrier->cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

Status ShardedEngine::RunOnAllShards(const std::function<void(size_t)>& fn) {
  if (!started_ || stopped_) {
    for (size_t i = 0; i < shards_.size(); ++i) fn(i);
    return Status::OK();
  }
  auto barrier = std::make_shared<ShardBarrier>(fn, shards_.size());
  std::vector<size_t> targets;
  targets.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!EnqueueControl(i, [barrier, i] { barrier->Run(i); })) {
      std::unique_lock<std::mutex> lock(barrier->mu_);
      barrier->abandoned_ = true;
      barrier->cv_.wait(lock, [&] { return barrier->executing_ == 0; });
      return Status::Unavailable(
          "shard " + std::to_string(i) +
          " is dead (or the engine stopped); fail over the shard and retry");
    }
    targets.push_back(i);
  }
  return WaitBarrier(barrier, targets);
}

Status ShardedEngine::RunOnShard(size_t i, const std::function<void()>& fn) {
  if (!started_ || stopped_) {
    fn();
    return Status::OK();
  }
  auto barrier = std::make_shared<ShardBarrier>([&fn](size_t) { fn(); },
                                                shards_.size());
  if (!EnqueueControl(i, [barrier, i] { barrier->Run(i); })) {
    return Status::Unavailable(
        "shard " + std::to_string(i) +
        " is dead (or the engine stopped); fail over the shard and retry");
  }
  return WaitBarrier(barrier, {i});
}

Status ShardedEngine::ValidatePartitioning(const CacqQuerySpec& spec) const {
  if (spec.where == nullptr || layout_.num_sources() == 0) {
    return Status::OK();  // Nothing to join on; CacqEngine validates.
  }
  const SchemaPtr& schema = layout_.full_schema();
  for (const ExprPtr& factor : ExtractConjuncts(spec.where)) {
    if (factor == nullptr) continue;
    auto ej = MatchEquiJoin(factor);
    if (!ej.has_value()) continue;
    auto ca = schema->IndexOf(ej->left_column);
    auto cb = schema->IndexOf(ej->right_column);
    if (!ca.ok() || !cb.ok()) continue;  // CacqEngine reports the error.
    const size_t sa = layout_.SourceIndexOf(schema->field(*ca).qualifier);
    const size_t sb = layout_.SourceIndexOf(schema->field(*cb).qualifier);
    if (sa == sb) continue;  // Same-source equality: residual work.
    const size_t col_a = *ca - layout_.offset(sa);
    const size_t col_b = *cb - layout_.offset(sb);
    if (col_a != sources_[sa].partition_column ||
        col_b != sources_[sb].partition_column) {
      return Status::InvalidArgument(
          "equi-join " + factor->ToString() +
          " does not match the shard partition columns of its streams; "
          "matches would span shards (declare the streams partitioned on "
          "their join columns)");
    }
  }
  return Status::OK();
}

Result<QueryId> ShardedEngine::AddQuery(const CacqQuerySpec& spec) {
  TCQ_RETURN_NOT_OK(ValidatePartitioning(spec));
  // Serialized with migrations AND failovers: a registration interleaved
  // with a standby promotion would leave the replica set divergent.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  std::vector<std::optional<Result<QueryId>>> results(shards_.size());
  TCQ_RETURN_NOT_OK(RunOnAllShards([this, &spec, &results](size_t i) {
    results[i] = shards_[i]->engine->AddQuery(spec);
  }));
  TCQ_CHECK(results[0].has_value());
  if (!results[0]->ok()) return results[0]->status();
  const QueryId id = **results[0];
  for (size_t i = 1; i < results.size(); ++i) {
    if (!results[i]->ok()) return results[i]->status();
    TCQ_CHECK(**results[i] == id)
        << "shard " << i << " assigned a divergent QueryId";
  }
  // Mirror onto the standbys (from this thread — a standby has no thread
  // of its own) and into the history the next standby is rebuilt from.
  for (auto& shard : shards_) {
    if (shard->standby == nullptr) continue;
    auto sq = shard->standby->AddQuery(spec);
    if (!sq.ok()) return sq.status();
    TCQ_CHECK(*sq == id) << "standby assigned a divergent QueryId";
  }
  query_history_.push_back(QueryRecord{spec, false});
  return id;
}

Status ShardedEngine::RemoveQuery(QueryId q) {
  // Removal scrubs the query's bit from every stored lineage; serialized
  // with migrations so extracted-but-not-yet-installed state can't skip
  // the scrub and resurrect the query's results on the recipient.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  std::vector<Status> statuses(shards_.size());
  TCQ_RETURN_NOT_OK(RunOnAllShards([this, q, &statuses](size_t i) {
    statuses[i] = shards_[i]->engine->RemoveQuery(q);
    // The scrub changed state outside the logged data path: re-snapshot so
    // a failover can't replay pre-removal lineage.
    if (statuses[i].ok() && replication_ != nullptr) {
      CheckpointShard(i,
                      shards_[i]->applied_lsn.load(std::memory_order_relaxed));
    }
  }));
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  for (auto& shard : shards_) {
    if (shard->standby == nullptr) continue;
    TCQ_RETURN_NOT_OK(shard->standby->RemoveQuery(q));
  }
  // QueryIds are registration indices (identical across every engine), so
  // the history record for `q` is simply entry q.
  if (static_cast<size_t>(q) < query_history_.size()) {
    query_history_[static_cast<size_t>(q)].removed = true;
  }
  return Status::OK();
}

Status ShardedEngine::PushBatch(const std::string& stream,
                                std::vector<Tuple> batch, IngressLane lane) {
  if (!started_) {
    return Status::FailedPrecondition("Start() the engine before pushing");
  }
  if (stopped_) return Status::Unavailable("engine stopped");
  const auto it = source_index_.find(stream);
  if (it == source_index_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  if (batch.empty()) return Status::OK();
  const size_t source = it->second;
  const size_t key_column = sources_[source].partition_column;
  // Scatter: group by bucket -> shard so each shard receives ONE exchange
  // task per producer batch (amortizing queue costs), in producer order —
  // per-key FIFO holds because one key always maps to one bucket and a
  // bucket has exactly one owner at a time. The shared route lock spans
  // the whole scatter: MigrateBucket's exclusive acquisition therefore
  // proves no producer straddles a pause edge (a scatter sees the bucket
  // either entirely before the pause or entirely paused).
  std::shared_lock<std::shared_mutex> route(route_mu_);
  std::vector<std::vector<Tuple>> groups(shards_.size());
  for (Tuple& t : batch) {
    const size_t bucket = partition_map_.BucketOf(t, key_column);
    // Live in every build (not TCQ_METRIC): the rebalance controller
    // plans from these, so they are adaptivity state, not observation.
    bucket_routed_[bucket].Add(1);
    if (bucket == migrating_bucket_) {
      // Paused for migration: park in producer order; MigrateBucket
      // replays the buffer to the new owner before unpausing.
      std::lock_guard<std::mutex> lock(buffer_mu_);
      move_buffer_.push_back(ParkedTuple{source, std::move(t), lane});
      TCQ_METRIC(buffered_tuples_->Add(1));
      continue;
    }
    groups[partition_map_.ShardOf(bucket)].push_back(std::move(t));
  }
  for (size_t p = 0; p < groups.size(); ++p) {
    if (groups[p].empty()) continue;
    ShardTask task;
    task.source = source;
    task.tuples = std::move(groups[p]);
    task.lane = lane;
    const size_t count = task.tuples.size();
    if (!input_->EnqueuePartition(p, std::move(task), count)) {
      return Status::Unavailable("engine stopped mid-scatter");
    }
    shards_[p]->routed += count;
  }
  TCQ_METRIC(input_->RefreshDepthStats());
  return Status::OK();
}

Status ShardedEngine::Push(const std::string& stream, Tuple tuple,
                           IngressLane lane) {
  std::vector<Tuple> one;
  one.push_back(std::move(tuple));
  return PushBatch(stream, std::move(one), lane);
}

Status ShardedEngine::Quiesce() {
  if (!started_ || stopped_) return Status::OK();
  // Serialize against migrations first: a migration in flight may hold
  // tuples in the pause buffer, which the barriers below cannot see. Once
  // migrate_mu_ is ours the buffer is empty and everything is in queues.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  // Phase 1: a control barrier behind all data on every shard queue —
  // when it fires, every prior tuple has been executed and its emissions
  // flushed into the egress queues. Surfaces Unavailable instead of
  // hanging when a shard's worker has died (fail over, then retry).
  TCQ_RETURN_NOT_OK(RunOnAllShards([](size_t) {}));
  // Phase 2: a barrier behind those emissions on every egress queue —
  // when it fires, the sink has seen everything. The egress thread cannot
  // die, so the plain latch is safe here.
  Latch latch(shards_.size());
  for (auto& shard : shards_) {
    EgressItem item;
    item.control = [&latch] { latch.CountDown(); };
    const bool ok = shard->output->Enqueue(std::move(item));
    TCQ_CHECK(ok) << "egress barrier on a stopped engine";
  }
  latch.Wait();
  return Status::OK();
}

void ShardedEngine::EvictBefore(Timestamp ts) {
  // Serialized with migrations so in-transit extracted state (which an
  // all-shards eviction barrier would never visit) can't dodge a window
  // eviction and get installed stale on the recipient.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  const Status st = RunOnAllShards([this, ts](size_t i) {
    shards_[i]->engine->EvictBefore(ts);
    // Eviction changed state outside the logged data path: re-snapshot so
    // a failover can't resurrect evicted entries from an older checkpoint
    // plus the changelog.
    if (replication_ != nullptr) {
      CheckpointShard(i,
                      shards_[i]->applied_lsn.load(std::memory_order_relaxed));
    }
  });
  if (!st.ok()) {
    TCQ_LOG(Warn) << "EvictBefore skipped a dead shard: " << st.ToString();
  }
}

Status ShardedEngine::KillShard(size_t shard) {
  if (!started_) {
    return Status::FailedPrecondition("Start() the engine before killing");
  }
  if (stopped_) return Status::Unavailable("engine stopped");
  if (shard >= shards_.size()) return Status::OutOfRange("shard out of range");
  shards_[shard]->kill.store(true, std::memory_order_release);
  return Status::OK();
}

void ShardedEngine::DrainDeadInput(size_t shard) {
  FjordQueue<ShardTask>& q = input_->partition(shard);
  std::vector<ShardTask> tasks;
  for (;;) {
    tasks.clear();
    if (q.DequeueUpTo(64, &tasks) == 0) return;
    for (ShardTask& t : tasks) {
      // Stale barrier wrappers only count down their (abandoned) barriers:
      // every barrier op holds migrate_mu_, the failover holds it now, so
      // none of them can still have a live waiter. Data tasks are dropped —
      // each is in the changelog and will be replayed.
      if (t.control) t.control();
    }
  }
}

void ShardedEngine::DrainDeadInputs() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Only queues whose worker has EXITED: a killed-but-live worker may
    // still be applying tasks and advancing the floor, and a concurrent
    // drain could drop records under it — records whose emissions the
    // floor then falsely claims are in the egress queue. Death is at most
    // one Step away once the kill flag is up, so waiting for it keeps the
    // acquisition loops live.
    if (!shards_[i]->alive.load(std::memory_order_acquire)) {
      DrainDeadInput(i);
    }
  }
}

void ShardedEngine::LockRoutesForUpdate(
    std::unique_lock<std::shared_mutex>& route) {
  for (;;) {
    DrainDeadInputs();
    if (route.try_lock()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void ShardedEngine::CheckpointShard(size_t shard, uint64_t floor) {
  EngineCheckpoint ckpt = shards_[shard]->engine->CheckpointState();
  if (replication_->StoreSnapshot(shard, floor, std::move(ckpt))) {
    ha_checkpoints_->Add(1);
  } else {
    ha_torn_->Add(1);
  }
}

Status ShardedEngine::FailoverShard(size_t shard) {
  if (!started_) {
    return Status::FailedPrecondition("Start() the engine before failover");
  }
  if (stopped_) return Status::Unavailable("engine stopped");
  if (shard >= shards_.size()) return Status::OutOfRange("shard out of range");
  if (replication_ == nullptr) {
    return Status::FailedPrecondition(
        "no standby replicas (set Options::num_replicas)");
  }
  Shard& sh = *shards_[shard];
  if (!sh.kill.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "primary still alive (KillShard first)");
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Serialized with migrations, registrations and barriers: nobody may
  // mutate routing or engine state mid-promotion.
  std::lock_guard<std::mutex> mig(migrate_mu_);
  // 1. Wait for the worker to observe the kill at its next task boundary
  // and exit (it polls the flag every step, even when idle), then reap it.
  while (sh.alive.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  shard_eos_[shard]->Join();
  shard_eos_[shard].reset();
  // 2. Take the route lock exclusively while keeping the dead queue
  // drained. A producer holding the shared lock can only be blocked on the
  // full queue this drain empties, so alternating try-lock with drain
  // always terminates; after the final drain under the exclusive lock the
  // partition is quiescent and the changelog is the complete record of
  // every unapplied task.
  std::unique_lock<std::shared_mutex> route(route_mu_, std::defer_lock);
  LockRoutesForUpdate(route);
  DrainDeadInput(shard);
  // 3. Recover the standby: newest valid snapshot, then the changelog
  // tail. Records at or under the primary's applied floor rebuild SteM
  // state but their emissions are SUPPRESSED — the primary flushed those
  // results into the egress queue before advancing the floor, and the
  // egress queue always drains, so they reach the sink exactly once.
  // Records above the floor are the lost work: their emissions flow and
  // they count as processed.
  auto plan = replication_->replica(shard).MakeRecoveryPlan();
  CacqEngine* standby = sh.standby.get();
  TCQ_CHECK(standby != nullptr);
  if (plan.has_snapshot) {
    const Status restored = standby->RestoreCheckpoint(plan.snapshot);
    TCQ_CHECK(restored.ok()) << "standby restore failed: "
                             << restored.ToString();
  }
  const uint64_t applied = sh.applied_lsn.load(std::memory_order_acquire);
  std::vector<Emission> recovered;
  std::vector<Emission> scratch;
  standby->SetSink([&scratch](QueryId q, const Tuple& t) {
    scratch.emplace_back(q, t);
  });
  uint64_t replayed = 0;
  uint64_t suppressed = 0;
  uint64_t tail_lsn = plan.snapshot_floor;
  for (const auto& rec : plan.tail) {
    scratch.clear();
    const Status st = standby->InjectBatch(rec.source, rec.tuples, rec.lane);
    TCQ_CHECK(st.ok()) << "changelog replay failed: " << st.ToString();
    replayed += rec.tuples.size();
    tail_lsn = rec.lsn;
    if (rec.lsn > applied) {
      sh.processed += rec.tuples.size();
      recovered.insert(recovered.end(),
                       std::make_move_iterator(scratch.begin()),
                       std::make_move_iterator(scratch.end()));
    } else {
      suppressed += scratch.size();
    }
  }
  if (!recovered.empty()) {
    EgressItem item;
    item.results = std::move(recovered);
    const bool ok = sh.output->Enqueue(std::move(item));
    TCQ_CHECK(ok) << "egress enqueue during failover";
  }
  // 4. Promote: the standby becomes the primary (pointer swap guarded
  // against cross-thread introspection), a fresh empty standby takes its
  // place, and the replica store is reseeded from the promoted state so a
  // second failure recovers from here, not from the dead engine's history.
  {
    std::lock_guard<std::mutex> elock(sh.engine_mu);
    sh.engine = std::move(sh.standby);
  }
  Shard* raw = &sh;
  sh.engine->SetSink([raw](QueryId q, const Tuple& t) {
    raw->pending.emplace_back(q, t);
  });
  sh.standby = BuildStandby(shard);
  sh.applied_lsn.store(tail_lsn, std::memory_order_release);
  // Direct store, bypassing the torn-fault hook: this snapshot is
  // load-bearing for the next failover, not a cadence checkpoint.
  replication_->replica(shard).StoreSnapshot(
      tail_lsn, sh.engine->CheckpointState(), /*valid=*/true);
  ha_checkpoints_->Add(1);
  // 5. Resume: a fresh worker on the (drained) input queue. Producers
  // unblock as soon as the route lock releases.
  sh.kill.store(false, std::memory_order_release);
  sh.alive.store(true, std::memory_order_release);
  auto eo = std::make_unique<ExecutionObject>("shard-" + std::to_string(shard));
  eo->AddModule(std::make_shared<WorkerModule>(this, shard));
  eo->Start();
  shard_eos_[shard] = std::move(eo);
  route.unlock();
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ha_failovers_->Add(1);
  ha_replayed_tuples_->Add(replayed);
  ha_suppressed_->Add(suppressed);
  ha_recovery_us_->Record(static_cast<uint64_t>(elapsed));
  return Status::OK();
}

std::unique_ptr<CacqEngine> ShardedEngine::BuildStandby(size_t shard) const {
  CacqEngine::Options eo;
  eo.policy = options_.policy;
  eo.seed = options_.seed + shard;
  eo.eddy = options_.eddy;
  auto engine = std::make_unique<CacqEngine>(eo);
  for (const SourceInfo& src : sources_) {
    const auto added = engine->AddStream(src.name, src.schema);
    TCQ_CHECK(added.ok()) << added.status().ToString();
  }
  // Replay the full registration history: QueryIds are assigned by order,
  // so the rebuilt standby agrees with every primary — including ids of
  // since-removed queries.
  for (const QueryRecord& qr : query_history_) {
    const auto q = engine->AddQuery(qr.spec);
    TCQ_CHECK(q.ok()) << q.status().ToString();
    if (qr.removed) {
      const Status removed = engine->RemoveQuery(*q);
      TCQ_CHECK(removed.ok()) << removed.ToString();
    }
  }
  return engine;
}

void ShardedEngine::ResumeBucket(size_t final_owner) {
  std::unique_lock<std::shared_mutex> route(route_mu_, std::defer_lock);
  LockRoutesForUpdate(route);
  partition_map_.SetOwner(migrating_bucket_, final_owner);
  migrating_bucket_ = SIZE_MAX;
  std::vector<ParkedTuple> buffered;
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    buffered.swap(move_buffer_);
  }
  // Group contiguous same-(source, lane) runs into tasks (source order
  // between producers is whatever the race produced, same as live scatter).
  size_t i = 0;
  while (i < buffered.size()) {
    ShardTask task;
    task.source = buffered[i].source;
    task.lane = buffered[i].lane;
    while (i < buffered.size() && buffered[i].source == task.source &&
           buffered[i].lane == task.lane) {
      task.tuples.push_back(std::move(buffered[i].tuple));
      ++i;
    }
    const size_t count = task.tuples.size();
    // The replay must NEVER block: we hold migrate_mu_, which FailoverShard
    // needs before it can drain a dead shard's full queue — a blocking
    // enqueue here could deadlock the recovery path. We are the only
    // enqueuer on this partition (exclusive route lock + migrate_mu_), so
    // logging once here and retrying a raw non-blocking enqueue preserves
    // changelog-order == queue-order.
    if (replication_ != nullptr) {
      task.lsn = replication_->replica(final_owner)
                     .Append(task.source, std::vector<Tuple>(task.tuples),
                             task.lane);
    }
    shards_[final_owner]->routed += count;
    FjordQueue<ShardTask>& q = input_->partition(final_owner);
    for (bool queued = false; !queued;) {
      switch (q.TryEnqueue(task)) {
        case FjordQueue<ShardTask>::TryResult::kAccepted:
          queued = true;
          break;
        case FjordQueue<ShardTask>::TryResult::kClosed:
          TCQ_LOG(Warn) << "pause-buffer replay hit a closed queue; " << count
                        << " tuples dropped mid-shutdown";
          return;
        case FjordQueue<ShardTask>::TryResult::kFull:
          if (!shards_[final_owner]->alive.load(std::memory_order_acquire)) {
            // Dead owner, full queue. With replication the record is in
            // the changelog above the applied floor — the failover replays
            // it. Without replication it is lost, like everything else on
            // a killed shard.
            if (replication_ == nullptr) {
              TCQ_LOG(Warn) << "pause-buffer replay dropped " << count
                            << " tuples on dead shard " << final_owner;
            }
            queued = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          break;
      }
    }
  }
}

Status ShardedEngine::MigrateBucket(size_t bucket, size_t to_shard) {
  if (!started_) {
    return Status::FailedPrecondition("Start() the engine before migrating");
  }
  if (stopped_) return Status::Unavailable("engine stopped");
  if (bucket >= partition_map_.num_buckets()) {
    return Status::OutOfRange("bucket out of range");
  }
  if (to_shard >= shards_.size()) {
    return Status::OutOfRange("shard out of range");
  }
  std::lock_guard<std::mutex> mig(migrate_mu_);
  const size_t from = partition_map_.ShardOf(bucket);
  if (from == to_shard) return Status::OK();

  const auto pause_start = std::chrono::steady_clock::now();
  // 1. Pause: mark the bucket under the exclusive route lock. From here no
  // producer can scatter the bucket's tuples to any shard queue — new
  // arrivals park in move_buffer_ instead.
  {
    std::unique_lock<std::shared_mutex> route(route_mu_, std::defer_lock);
    LockRoutesForUpdate(route);
    migrating_bucket_ = bucket;
  }
  // 2. Drain + extract: the closure rides the donor's queue behind every
  // task scattered before the pause, so when it runs, all of the bucket's
  // in-flight tuples have been injected. It then lifts the bucket's SteM
  // state off the donor, on the donor's own thread. A dead donor aborts
  // the migration with the bucket still owned by it (its state — and this
  // bucket's share of it — recovers through the failover path instead).
  BucketState state;
  const Status drained = RunOnShard(from, [&] {
    state = shards_[from]->engine->ExtractBucketState(
        bucket, [this, bucket](const Value& key) {
          return partition_map_.BucketOf(key) == bucket;
        });
    // The donor shrank outside the logged data path: re-snapshot so a
    // donor failover can't resurrect the extracted bucket.
    if (replication_ != nullptr) {
      CheckpointShard(from,
                      shards_[from]->applied_lsn.load(
                          std::memory_order_relaxed));
    }
  });
  if (!drained.ok()) {
    ResumeBucket(from);
    return drained;
  }
  // 3. Install on the recipient's thread. Installation failure means the
  // shard engines diverged (can't happen through this class's API); a dead
  // recipient aborts the move. Either way the state is put back on the
  // donor so nothing is lost.
  Status install;
  const Status install_barrier = RunOnShard(to_shard, [&] {
    install = shards_[to_shard]->engine->InstallBucketState(state);
    if (install.ok() && replication_ != nullptr) {
      CheckpointShard(to_shard,
                      shards_[to_shard]->applied_lsn.load(
                          std::memory_order_relaxed));
    }
  });
  if (!install_barrier.ok()) install = install_barrier;
  if (!install.ok()) {
    const Status undo = RunOnShard(from, [&] {
      const Status u = shards_[from]->engine->InstallBucketState(state);
      TCQ_CHECK(u.ok()) << "rollback reinstall failed: " << u.ToString();
      if (replication_ != nullptr) {
        CheckpointShard(from,
                        shards_[from]->applied_lsn.load(
                            std::memory_order_relaxed));
      }
    });
    if (!undo.ok()) {
      // Double fault: the donor died too, between the extract and the
      // rollback. The extracted entries miss both engines' checkpoints —
      // this is the process-pair model's documented blind spot (both
      // members of the pair failing inside one protocol step).
      TCQ_LOG(Error) << "bucket " << bucket
                     << " rollback hit a dead donor; extracted state ("
                     << state.tuple_count() << " tuples) lost: "
                     << undo.ToString();
    }
  }
  const size_t final_owner = install.ok() ? to_shard : from;
  // 4. Flip + resume: still under the exclusive route lock, retarget the
  // bucket and replay the paused arrivals to the final owner IN ORDER —
  // producers stay blocked until the replay is enqueued, so no fresh
  // scatter can overtake the buffer (per-key FIFO holds across the move).
  ResumeBucket(final_owner);
  const auto pause_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - pause_start)
                            .count();
  TCQ_METRIC(pause_us_->Record(static_cast<uint64_t>(pause_us)));
  if (!install.ok()) return install;
  migrations_->Add(1);
  moved_tuples_->Add(state.tuple_count());
  moved_bytes_->Add(state.approx_bytes());
  return Status::OK();
}

RebalanceController::Load ShardedEngine::ObserveLoad() const {
  RebalanceController::Load load;
  load.shard_backlog.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Backlog in tuples: scattered minus injected. Counter reads are
    // relaxed, so a torn view can transiently "underflow" — clamp to 0.
    const uint64_t routed = shards_[i]->routed;
    const uint64_t processed = shards_[i]->processed;
    load.shard_backlog[i] =
        routed > processed ? static_cast<size_t>(routed - processed) : 0;
  }
  load.bucket_routed.resize(bucket_routed_.size());
  for (size_t b = 0; b < bucket_routed_.size(); ++b) {
    load.bucket_routed[b] = bucket_routed_[b].value();
  }
  return load;
}

ShardedEngine::RebalanceStats ShardedEngine::rebalance_stats() const {
  RebalanceStats s;
  s.migrations = migrations_->value();
  s.moved_tuples = moved_tuples_->value();
  s.moved_bytes = moved_bytes_->value();
  s.buffered_tuples = buffered_tuples_->value();
  return s;
}

std::vector<ShardedEngine::ReplicaStats> ShardedEngine::replica_stats() const {
  std::vector<ReplicaStats> out;
  if (replication_ == nullptr) return out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const auto s = replication_->replica(i).stats();
    ReplicaStats r;
    r.alive = shards_[i]->alive.load(std::memory_order_acquire);
    r.applied_lsn = shards_[i]->applied_lsn.load(std::memory_order_acquire);
    r.logged_lsn = s.next_lsn;
    r.snapshot_floor = s.snapshot_floor;
    r.changelog_records = s.log_records;
    r.changelog_bytes = s.log_bytes;
    r.checkpoints = s.checkpoints;
    r.torn_rejected = s.torn_rejected;
    out.push_back(r);
  }
  return out;
}

ShardedEngine::HaStats ShardedEngine::ha_stats() const {
  HaStats s;
  s.failovers = ha_failovers_->value();
  s.replayed_tuples = ha_replayed_tuples_->value();
  s.suppressed_emissions = ha_suppressed_->value();
  return s;
}

size_t ShardedEngine::num_active_queries() const {
  // Identical registrations everywhere: shard 0 speaks for all. Safe
  // cross-thread only in the quiesced/unstarted states the accessor's
  // callers hold (Server reads it under its own submission lock).
  std::lock_guard<std::mutex> elock(shards_[0]->engine_mu);
  return shards_[0]->engine->num_active_queries();
}

std::vector<ShardedEngine::ShardStats> ShardedEngine::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardStats s;
    s.routed = shards_[i]->routed;
    s.processed = shards_[i]->processed;
    s.queue_depth = input_->partition(i).Size();
    // The engine pointer swaps during a failover promotion; the eddy
    // counters themselves are relaxed atomics.
    std::lock_guard<std::mutex> elock(shards_[i]->engine_mu);
    s.eddy_decisions = shards_[i]->engine->eddy().decisions();
    s.eddy_emitted = shards_[i]->engine->eddy().emitted();
    out.push_back(s);
  }
  return out;
}

}  // namespace tcq
