#include "cacq/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "expr/predicates.h"

namespace tcq {

namespace {
uint64_t FoldBits(const SmallBitset& bits) {
  uint64_t key = 0;
  bits.ForEachSet([&](size_t i) { key |= uint64_t{1} << (i % 64); });
  return key;
}
}  // namespace

CacqEngine::CacqEngine() : CacqEngine(Options()) {}

CacqEngine::CacqEngine(Options options) : options_(std::move(options)) {
  eddy_ = std::make_unique<Eddy>(
      &layout_, MakePolicy(options_.policy, options_.seed), options_.eddy);
  eddy_->SetPartialSink([this](RoutedTuple&& rt) { Deliver(std::move(rt)); });
}

Result<size_t> CacqEngine::AddStream(const std::string& name,
                                     SchemaPtr schema) {
  if (!queries_.empty()) {
    return Status::FailedPrecondition(
        "streams must be declared before queries");
  }
  if (layout_.SourceIndexOf(name) != layout_.num_sources()) {
    return Status::AlreadyExists("stream already declared: " + name);
  }
  const size_t idx = layout_.AddSource(name, std::move(schema));
  interested_.emplace_back();
  return idx;
}

std::shared_ptr<GroupedFilterOp> CacqEngine::FilterOpFor(size_t column) {
  auto it = filter_ops_.find(column);
  if (it != filter_ops_.end()) return it->second;
  // Which source owns this absolute column?
  size_t owner = layout_.num_sources();
  for (size_t s = 0; s < layout_.num_sources(); ++s) {
    if (column >= layout_.offset(s) &&
        column < layout_.offset(s) + layout_.arity(s)) {
      owner = s;
      break;
    }
  }
  TCQ_CHECK(owner < layout_.num_sources());
  SmallBitset required(layout_.num_sources());
  required.Set(owner);
  auto op = std::make_shared<GroupedFilterOp>(
      "gf[" + layout_.full_schema()->field(column).QualifiedName() + "]",
      column, std::move(required));
  eddy_->AddOperator(op);
  filter_ops_.emplace(column, op);
  return op;
}

std::shared_ptr<ResidualFilterOp> CacqEngine::ResidualOpFor(
    const SmallBitset& req) {
  const uint64_t key = FoldBits(req);
  auto it = residual_ops_.find(key);
  if (it != residual_ops_.end()) return it->second;
  auto op = std::make_shared<ResidualFilterOp>("residual", req);
  eddy_->AddOperator(op);
  residual_ops_.emplace(key, op);
  return op;
}

Status CacqEngine::EnsureJoin(size_t src_a, int col_a, size_t src_b,
                              int col_b) {
  auto ensure_stem = [&](size_t src, int key) -> SharedSteMPtr {
    JoinKey jk{src, key};
    auto it = stems_.find(jk);
    if (it != stems_.end()) return it->second;
    auto stem = std::make_shared<SharedSteM>(
        "stem[" + layout_.alias(src) + "]", layout_.full_schema(), key);
    if (options_.spool != nullptr) {
      stem->SetSpool(options_.spool,
                     options_.spool_prefix + "stem." + layout_.alias(src) +
                         "." + std::to_string(key));
    }
    stems_.emplace(jk, stem);
    eddy_->AddOperator(std::make_shared<SharedStemBuildOp>(
        "build[" + layout_.alias(src) + "]", src, stem));
    return stem;
  };
  SharedSteMPtr stem_a = ensure_stem(src_a, col_a);
  SharedSteMPtr stem_b = ensure_stem(src_b, col_b);

  auto ensure_probe = [&](size_t target, const SharedSteMPtr& stem,
                          int stored_key, size_t probe_src, int probe_key) {
    const auto edge = std::make_tuple(target, stored_key, probe_key);
    if (probe_edges_.count(edge) != 0) return;
    probe_edges_.emplace(edge, true);
    SmallBitset probe_sources(layout_.num_sources());
    probe_sources.Set(probe_src);
    eddy_->AddOperator(
        std::make_shared<SharedStemProbeOp>(
            "probe[" + layout_.alias(target) + "<-" +
                layout_.alias(probe_src) + "]",
            &layout_, target, stem, std::move(probe_sources), probe_key),
        /*group=*/static_cast<int>(target));
  };
  ensure_probe(src_b, stem_b, col_b, src_a, col_a);
  ensure_probe(src_a, stem_a, col_a, src_b, col_b);
  return Status::OK();
}

Result<QueryId> CacqEngine::AddQuery(const CacqQuerySpec& spec) {
  if (spec.sources.empty()) {
    return Status::InvalidArgument("query needs at least one source");
  }
  const QueryId qid = static_cast<QueryId>(queries_.size());
  QueryInfo info;
  info.footprint.Resize(layout_.num_sources());
  for (const std::string& name : spec.sources) {
    const size_t s = layout_.SourceIndexOf(name);
    if (s == layout_.num_sources()) {
      return Status::NotFound("query references unknown stream: " + name);
    }
    info.footprint.Set(s);
  }

  const SchemaPtr& schema = layout_.full_schema();
  std::vector<std::pair<std::shared_ptr<ResidualFilterOp>, ExprPtr>>
      residual_registrations;
  struct FilterRegistration {
    size_t column;
    BinaryOp op;
    Value constant;
  };
  std::vector<FilterRegistration> filter_registrations;

  // Classify each boolean factor of the WHERE clause.
  for (const ExprPtr& factor : ExtractConjuncts(spec.where)) {
    if (factor == nullptr) continue;
    // Equi-join between two sources -> shared SteM machinery.
    if (auto ej = MatchEquiJoin(factor)) {
      TCQ_ASSIGN_OR_RETURN(size_t ca, schema->IndexOf(ej->left_column));
      TCQ_ASSIGN_OR_RETURN(size_t cb, schema->IndexOf(ej->right_column));
      const std::string qa = schema->field(ca).qualifier;
      const std::string qb = schema->field(cb).qualifier;
      const size_t sa = layout_.SourceIndexOf(qa);
      const size_t sb = layout_.SourceIndexOf(qb);
      if (sa == sb) {
        // Same-source equality: treat as residual work below.
      } else {
        if (!info.footprint.Test(sa) || !info.footprint.Test(sb)) {
          return Status::InvalidArgument(
              "join predicate references sources outside the footprint: " +
              factor->ToString());
        }
        TCQ_RETURN_NOT_OK(EnsureJoin(sa, static_cast<int>(ca), sb,
                                     static_cast<int>(cb)));
        continue;
      }
    }
    // Single-column comparison against a constant -> grouped filter.
    if (auto sp = MatchSimplePredicate(factor)) {
      auto idx = schema->IndexOf(sp->column);
      if (idx.ok()) {
        filter_registrations.push_back(
            {*idx, sp->op, std::move(sp->constant)});
        continue;
      }
    }
    // Everything else -> per-query residual on the referenced sources.
    TCQ_ASSIGN_OR_RETURN(ExprPtr bound, factor->Bind(*schema));
    std::vector<std::string> cols;
    factor->CollectColumns(&cols);
    SmallBitset req(layout_.num_sources());
    for (const std::string& c : cols) {
      TCQ_ASSIGN_OR_RETURN(size_t idx, schema->IndexOf(c));
      const std::string qual = schema->field(idx).qualifier;
      const size_t s = layout_.SourceIndexOf(qual);
      TCQ_CHECK(s < layout_.num_sources());
      req.Set(s);
    }
    if (req.None()) req = info.footprint;  // Constant predicate.
    residual_registrations.emplace_back(ResidualOpFor(req), std::move(bound));
  }

  // All checks passed: commit the registration.
  for (FilterRegistration& r : filter_registrations) {
    FilterOpFor(r.column)->filter().AddPredicate(qid, r.op,
                                                 std::move(r.constant));
    info.filter_columns.push_back(r.column);
  }
  for (auto& [op, bound] : residual_registrations) {
    op->AddResidual(qid, std::move(bound));
    info.residual_ops.push_back(op);
  }
  info.active = true;
  info.speculative = spec.speculative;
  info.footprint.ForEachSet([&](size_t s) {
    if (interested_[s].size_bits() <= qid) interested_[s].Resize(qid + 1);
    interested_[s].Set(qid);
  });
  if (delayed_queries_.size_bits() <= qid) {
    delayed_queries_.Resize(qid + 1);
    speculative_queries_.Resize(qid + 1);
  }
  (spec.speculative ? speculative_queries_ : delayed_queries_).Set(qid);
  queries_.push_back(std::move(info));
  ++active_queries_;
  return qid;
}

Status CacqEngine::RemoveQuery(QueryId q) {
  if (q >= queries_.size() || !queries_[q].active) {
    return Status::NotFound("no such active query");
  }
  QueryInfo& info = queries_[q];
  info.active = false;
  --active_queries_;
  for (size_t column : info.filter_columns) {
    filter_ops_[column]->filter().RemoveQuery(q);
  }
  for (auto& op : info.residual_ops) op->RemoveQuery(q);
  for (auto& [jk, stem] : stems_) stem->ScrubQuery(q);
  for (SmallBitset& bits : interested_) {
    if (q < bits.size_bits()) bits.Clear(q);
  }
  if (q < delayed_queries_.size_bits()) delayed_queries_.Clear(q);
  if (q < speculative_queries_.size_bits()) speculative_queries_.Clear(q);
  return Status::OK();
}

Status CacqEngine::Inject(const std::string& stream, const Tuple& tuple,
                          IngressLane lane) {
  const size_t s = layout_.SourceIndexOf(stream);
  if (s == layout_.num_sources()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  RoutedTuple rt;
  rt.tuple = layout_.Widen(s, tuple);
  rt.sources.Resize(layout_.num_sources());
  rt.sources.Set(s);
  rt.queries = interested_[s];
  rt.queries.Resize(queries_.size());
  if (lane != IngressLane::kAll) {
    SmallBitset lane_set = lane == IngressLane::kSpeculative
                               ? speculative_queries_
                               : delayed_queries_;
    lane_set.Resize(queries_.size());
    rt.queries &= lane_set;
  }
  if (rt.queries.None()) return Status::OK();  // Nobody is listening.
  eddy_->InjectRouted(std::move(rt));
  eddy_->Drain();
  return Status::OK();
}

Status CacqEngine::InjectBatch(const std::string& stream,
                               const std::vector<Tuple>& batch,
                               IngressLane lane) {
  const size_t s = layout_.SourceIndexOf(stream);
  if (s == layout_.num_sources()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  return InjectBatch(s, batch, lane);
}

Status CacqEngine::InjectBatch(size_t s, const std::vector<Tuple>& batch,
                               IngressLane lane) {
  if (s >= layout_.num_sources()) {
    return Status::OutOfRange("source index out of range");
  }
  SmallBitset interested = interested_[s];
  interested.Resize(queries_.size());
  if (lane != IngressLane::kAll) {
    SmallBitset lane_set = lane == IngressLane::kSpeculative
                               ? speculative_queries_
                               : delayed_queries_;
    lane_set.Resize(queries_.size());
    interested &= lane_set;
  }
  if (interested.None() || batch.empty()) return Status::OK();
  std::vector<RoutedTuple> rts;
  rts.reserve(batch.size());
  for (const Tuple& tuple : batch) {
    RoutedTuple rt;
    rt.tuple = layout_.Widen(s, tuple);
    rt.sources.Resize(layout_.num_sources());
    rt.sources.Set(s);
    rt.queries = interested;
    rts.push_back(std::move(rt));
  }
  eddy_->InjectRoutedBatch(std::move(rts));
  eddy_->Drain();
  return Status::OK();
}

void CacqEngine::EvictBefore(Timestamp ts) {
  for (auto& [jk, stem] : stems_) stem->EvictBefore(ts);
}

std::vector<CacqEngine::StemSnapshot> CacqEngine::stem_snapshots() const {
  std::vector<StemSnapshot> out;
  out.reserve(stems_.size());
  for (const auto& [jk, stem] : stems_) {
    out.push_back(StemSnapshot{stem->name(), stem->size(), stem->probes(),
                               stem->scanned()});
  }
  return out;
}

void CacqEngine::Deliver(RoutedTuple&& rt) {
  if (!sink_ || rt.queries.None()) return;
  rt.queries.ForEachSet([&](size_t q) {
    if (q >= queries_.size() || !queries_[q].active) return;
    // Deliver when the tuple's composition is exactly the query footprint.
    if (queries_[q].footprint == rt.sources) {
      sink_(static_cast<QueryId>(q), rt.tuple);
    }
  });
}

}  // namespace tcq
