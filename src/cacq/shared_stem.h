#ifndef TCQ_CACQ_SHARED_STEM_H_
#define TCQ_CACQ_SHARED_STEM_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/clock.h"
#include "stem/stem.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

/// A SteM variant for shared (CACQ) processing: every stored tuple carries
/// its query lineage — the set of queries it still satisfied when it was
/// built. Probes intersect lineages, so one physical SteM serves the joins
/// of many queries at once (§3.1). Newly added queries see only tuples
/// stored after their arrival (CACQ semantics: no history; PSoup adds it).
class SharedSteM {
 public:
  SharedSteM(std::string name, SchemaPtr schema, int key_field);
  ~SharedSteM();

  SharedSteM(const SharedSteM&) = delete;
  SharedSteM& operator=(const SharedSteM&) = delete;

  /// Window-expired state demotes to `spool` under `key` instead of being
  /// freed (DESIGN.md §16). Lineage stays in RAM's domain: the spooled
  /// record is the bare tuple (replay re-derives query sets). Retraction
  /// cancellations, migration extraction and replica resets never demote.
  void SetSpool(Spool* spool, std::string key);

  const std::string& name() const { return name_; }
  int key_field() const { return key_field_; }

  void Insert(const Tuple& tuple, const SmallBitset& queries);

  /// Applies `fn(stored_tuple, stored_lineage)` to every live stored tuple
  /// matching `key` (nullptr = scan) with timestamp within [lo, hi].
  template <typename Fn>
  void ProbeCollect(const Value* key, Timestamp lo, Timestamp hi,
                    Fn&& fn) const {
    ++probes_;
    TCQ_METRIC(stem_internal::AggregateMetrics::Get().probes->Add(1));
    auto consider = [&](size_t pos) {
      const Entry& e = entries_[pos];
      if (e.dead) return;
      ++scanned_;
      TCQ_METRIC(stem_internal::AggregateMetrics::Get().scanned->Add(1));
      const Timestamp ts = e.tuple.timestamp();
      if (ts < lo || ts > hi) return;
      fn(e.tuple, e.queries);
    };
    if (key != nullptr && key_field_ >= 0) {
      auto [b, e] = index_.equal_range(*key);
      for (auto it = b; it != e; ++it) {
        const uint64_t id = it->second;
        if (id < base_id_) continue;
        const size_t pos = static_cast<size_t>(id - base_id_);
        if (pos >= entries_.size()) continue;
        if (entries_[pos].tuple.cell(static_cast<size_t>(key_field_)) !=
            *key) {
          continue;
        }
        consider(pos);
      }
    } else {
      for (size_t i = 0; i < entries_.size(); ++i) consider(i);
    }
  }

  /// Evicts tuples with timestamp < ts; returns the count evicted.
  size_t EvictBefore(Timestamp ts);

  /// A stored tuple lifted out of a SteM for state migration: the tuple
  /// (which carries its timestamp and arrival seq) plus its query lineage.
  struct ExtractedEntry {
    Tuple tuple;
    SmallBitset queries;
  };

  /// Removes every live entry whose key satisfies `pred` and returns them
  /// in storage (arrival) order. Dead entries are skipped; removed entries
  /// are tombstoned (tuple left intact — CompactFront still reads a dead
  /// front entry's key to clean the index) and the front compacted, exactly
  /// like eviction, so indexes stay consistent. With key_field < 0
  /// (scan-only SteM) `pred` sees the tuple's first cell — callers
  /// partitioning by key never build such SteMs (the exchange requires a
  /// partition column), but the fallback keeps extraction total.
  template <typename Pred>
  std::vector<ExtractedEntry> ExtractIf(Pred&& pred) {
    std::vector<ExtractedEntry> out;
    const size_t key =
        key_field_ >= 0 ? static_cast<size_t>(key_field_) : size_t{0};
    for (Entry& e : entries_) {
      if (e.dead) continue;
      if (!pred(e.tuple.cell(key))) continue;
      out.push_back(ExtractedEntry{e.tuple, e.queries});
      e.dead = true;
      --live_;
      TrackBytes(-static_cast<int64_t>(e.tuple.ApproxBytes()));
    }
    CompactFront();
    return out;
  }

  /// Re-inserts an extracted entry on the recipient, preserving lineage,
  /// timestamp, and seq (Insert copies all three from the tuple).
  void Install(const ExtractedEntry& entry) {
    Insert(entry.tuple, entry.queries);
  }

  /// Copies every live entry in storage (arrival) order WITHOUT removing
  /// it — the checkpoint flavor of ExtractIf. The primary keeps serving
  /// probes from the same state the replica snapshot now holds.
  std::vector<ExtractedEntry> CopyAll() const {
    std::vector<ExtractedEntry> out;
    out.reserve(live_);
    for (const Entry& e : entries_) {
      if (e.dead) continue;
      out.push_back(ExtractedEntry{e.tuple, e.queries});
    }
    return out;
  }

  /// Drops every live entry (a replica discarding its previous snapshot
  /// before installing a new one). Indexes stay consistent via the same
  /// tombstone + front-compaction path eviction uses.
  void ClearAll() {
    for (Entry& e : entries_) {
      if (e.dead) continue;
      e.dead = true;
      --live_;
      TrackBytes(-static_cast<int64_t>(e.tuple.ApproxBytes()));
    }
    CompactFront();
  }

  /// Clears query q's bit from every stored lineage (query removed).
  void ScrubQuery(size_t q);

  size_t size() const { return live_; }
  uint64_t probes() const { return probes_; }
  uint64_t scanned() const { return scanned_; }

 private:
  struct Entry {
    Tuple tuple;
    SmallBitset queries;
    bool dead = false;
  };

  void CompactFront();
  void TrackBytes(int64_t delta) {
    resident_bytes_ += delta;
    stem_internal::TrackResidentBytes(delta);
  }

  const std::string name_;
  const SchemaPtr schema_;
  const int key_field_;

  // Spool hook (null = window expiry frees memory, the legacy behavior).
  Spool* spool_ = nullptr;
  std::string spool_key_;
  int64_t resident_bytes_ = 0;

  std::deque<Entry> entries_;
  uint64_t base_id_ = 0;
  size_t live_ = 0;
  std::unordered_multimap<Value, uint64_t, ValueHash> index_;
  // Telemetry counters (relaxed atomics): the probes()/scanned() accessors
  // are thin views, and the process-wide tcq.stem.* aggregates see every
  // shared probe too.
  mutable Counter probes_;
  mutable Counter scanned_;
};

using SharedSteMPtr = std::shared_ptr<SharedSteM>;

}  // namespace tcq

#endif  // TCQ_CACQ_SHARED_STEM_H_
