#include "expr/predicates.h"

namespace tcq {

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and != are symmetric.
  }
}

std::optional<SimplePredicate> MatchSimplePredicate(const ExprPtr& expr) {
  if (!expr || expr->kind() != ExprKind::kBinary) return std::nullopt;
  const BinaryOp op = expr->binary_op();
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return std::nullopt;
  }
  const ExprPtr& l = expr->left();
  const ExprPtr& r = expr->right();
  if (l->kind() == ExprKind::kColumn && r->kind() == ExprKind::kLiteral) {
    return SimplePredicate{l->column_name(), op, r->literal()};
  }
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumn) {
    return SimplePredicate{r->column_name(), FlipComparison(op), l->literal()};
  }
  return std::nullopt;
}

std::optional<EquiJoinPredicate> MatchEquiJoin(const ExprPtr& expr) {
  if (!expr || expr->kind() != ExprKind::kBinary ||
      expr->binary_op() != BinaryOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = expr->left();
  const ExprPtr& r = expr->right();
  if (l->kind() == ExprKind::kColumn && r->kind() == ExprKind::kColumn) {
    return EquiJoinPredicate{l->column_name(), r->column_name()};
  }
  return std::nullopt;
}

std::string QualifierOf(const std::string& column_name) {
  const size_t dot = column_name.find('.');
  return dot == std::string::npos ? "" : column_name.substr(0, dot);
}

std::set<std::string> CollectQualifiers(const ExprPtr& expr) {
  std::set<std::string> out;
  std::vector<std::string> columns;
  expr->CollectColumns(&columns);
  for (const auto& c : columns) out.insert(QualifierOf(c));
  return out;
}

}  // namespace tcq
