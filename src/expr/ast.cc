#include "expr/ast.h"

#include <sstream>

#include "common/logging.h"

namespace tcq {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggKindToString(AggKind k) {
  switch (k) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->result_type_ = v.type();
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Variable(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kVariable;
  e->name_ = std::move(name);
  e->result_type_ = ValueType::kInt64;
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->unary_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->binary_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Aggregate(AggKind kind, ExprPtr arg) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAggregate;
  e->agg_kind_ = kind;
  e->left_ = std::move(arg);
  return e;
}

ExprPtr Expr::CountStar() { return Aggregate(AggKind::kCount, nullptr); }

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<ExprPtr> Expr::Bind(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kLiteral:
    case ExprKind::kVariable:
      // Already self-contained; share the node.
      return ExprPtr(new Expr(*this));
    case ExprKind::kColumn: {
      TCQ_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name_));
      auto e = std::shared_ptr<Expr>(new Expr(*this));
      e->column_index_ = static_cast<int>(idx);
      e->result_type_ = schema.field(idx).type;
      return ExprPtr(e);
    }
    case ExprKind::kUnary: {
      TCQ_ASSIGN_OR_RETURN(ExprPtr operand, left_->Bind(schema));
      auto e = std::shared_ptr<Expr>(new Expr(*this));
      e->left_ = operand;
      if (unary_op_ == UnaryOp::kNot) {
        if (operand->result_type_ != ValueType::kBool) {
          return Status::TypeError("NOT requires a boolean operand, got " +
                                   operand->ToString());
        }
        e->result_type_ = ValueType::kBool;
      } else {  // kNeg
        if (!IsNumeric(operand->result_type_)) {
          return Status::TypeError("unary - requires a numeric operand");
        }
        e->result_type_ = operand->result_type_;
      }
      return ExprPtr(e);
    }
    case ExprKind::kBinary: {
      TCQ_ASSIGN_OR_RETURN(ExprPtr l, left_->Bind(schema));
      TCQ_ASSIGN_OR_RETURN(ExprPtr r, right_->Bind(schema));
      auto e = std::shared_ptr<Expr>(new Expr(*this));
      e->left_ = l;
      e->right_ = r;
      const ValueType lt = l->result_type_;
      const ValueType rt = r->result_type_;
      if (IsArithmetic(binary_op_)) {
        if (!IsNumeric(lt) || !IsNumeric(rt)) {
          return Status::TypeError("arithmetic on non-numeric operands in " +
                                   ToString());
        }
        if (binary_op_ == BinaryOp::kMod &&
            (lt != ValueType::kInt64 || rt != ValueType::kInt64)) {
          return Status::TypeError("% requires integer operands");
        }
        e->result_type_ = (lt == ValueType::kDouble || rt == ValueType::kDouble)
                              ? ValueType::kDouble
                              : ValueType::kInt64;
      } else if (IsComparison(binary_op_)) {
        const bool both_numeric = IsNumeric(lt) && IsNumeric(rt);
        if (!both_numeric && lt != rt) {
          return Status::TypeError("cannot compare " +
                                   std::string(ValueTypeToString(lt)) +
                                   " with " + ValueTypeToString(rt) + " in " +
                                   ToString());
        }
        e->result_type_ = ValueType::kBool;
      } else {  // AND / OR
        if (lt != ValueType::kBool || rt != ValueType::kBool) {
          return Status::TypeError("AND/OR require boolean operands in " +
                                   ToString());
        }
        e->result_type_ = ValueType::kBool;
      }
      return ExprPtr(e);
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate expression cannot be bound as a row expression: " +
          ToString());
  }
  return Status::Internal("unreachable expr kind");
}

Value Expr::EvalInternal(const Tuple* tuple, const VarEnv* env) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kColumn:
      TCQ_DCHECK(column_index_ >= 0) << "unbound column " << name_;
      TCQ_DCHECK(tuple != nullptr);
      return tuple->cell(static_cast<size_t>(column_index_));
    case ExprKind::kVariable: {
      TCQ_DCHECK(env != nullptr) << "variable " << name_ << " without env";
      auto it = env->find(name_);
      TCQ_DCHECK(it != env->end()) << "unbound variable " << name_;
      return it->second;
    }
    case ExprKind::kUnary: {
      const Value v = left_->EvalInternal(tuple, env);
      if (v.is_null()) return Value::Null();
      if (unary_op_ == UnaryOp::kNot) return Value::Bool(!v.bool_value());
      if (v.type() == ValueType::kInt64) return Value::Int64(-v.int64_value());
      return Value::Double(-v.double_value());
    }
    case ExprKind::kBinary: {
      // Short-circuit logical ops.
      if (binary_op_ == BinaryOp::kAnd || binary_op_ == BinaryOp::kOr) {
        const Value l = left_->EvalInternal(tuple, env);
        const bool lb = !l.is_null() && l.bool_value();
        if (binary_op_ == BinaryOp::kAnd && !lb) return Value::Bool(false);
        if (binary_op_ == BinaryOp::kOr && lb) return Value::Bool(true);
        const Value r = right_->EvalInternal(tuple, env);
        return Value::Bool(!r.is_null() && r.bool_value());
      }
      const Value l = left_->EvalInternal(tuple, env);
      const Value r = right_->EvalInternal(tuple, env);
      if (IsComparison(binary_op_)) {
        if (l.is_null() || r.is_null()) return Value::Bool(false);
        const int c = l.Compare(r);
        switch (binary_op_) {
          case BinaryOp::kEq:
            return Value::Bool(c == 0);
          case BinaryOp::kNe:
            return Value::Bool(c != 0);
          case BinaryOp::kLt:
            return Value::Bool(c < 0);
          case BinaryOp::kLe:
            return Value::Bool(c <= 0);
          case BinaryOp::kGt:
            return Value::Bool(c > 0);
          default:
            return Value::Bool(c >= 0);
        }
      }
      // Arithmetic.
      if (l.is_null() || r.is_null()) return Value::Null();
      const bool int_math =
          l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64;
      switch (binary_op_) {
        case BinaryOp::kAdd:
          return int_math ? Value::Int64(l.int64_value() + r.int64_value())
                          : Value::Double(l.AsDouble() + r.AsDouble());
        case BinaryOp::kSub:
          return int_math ? Value::Int64(l.int64_value() - r.int64_value())
                          : Value::Double(l.AsDouble() - r.AsDouble());
        case BinaryOp::kMul:
          return int_math ? Value::Int64(l.int64_value() * r.int64_value())
                          : Value::Double(l.AsDouble() * r.AsDouble());
        case BinaryOp::kDiv:
          if (int_math) {
            if (r.int64_value() == 0) return Value::Null();
            return Value::Int64(l.int64_value() / r.int64_value());
          }
          if (r.AsDouble() == 0.0) return Value::Null();
          return Value::Double(l.AsDouble() / r.AsDouble());
        case BinaryOp::kMod:
          if (r.int64_value() == 0) return Value::Null();
          return Value::Int64(l.int64_value() % r.int64_value());
        default:
          break;
      }
      return Value::Null();
    }
    case ExprKind::kAggregate:
      TCQ_CHECK(false) << "aggregate evaluated as row expression";
  }
  return Value::Null();
}

Value Expr::Eval(const Tuple& tuple, const VarEnv* env) const {
  return EvalInternal(&tuple, env);
}

Value Expr::EvalConst(const VarEnv& env) const {
  return EvalInternal(nullptr, &env);
}

bool Expr::ContainsAggregate() const {
  if (kind_ == ExprKind::kAggregate) return true;
  if (left_ && left_->ContainsAggregate()) return true;
  if (right_ && right_->ContainsAggregate()) return true;
  return false;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumn) out->push_back(name_);
  if (left_) left_->CollectColumns(out);
  if (right_) right_->CollectColumns(out);
}

void Expr::CollectVariables(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kVariable) out->push_back(name_);
  if (left_) left_->CollectVariables(out);
  if (right_) right_->CollectVariables(out);
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kColumn:
      return name_;
    case ExprKind::kVariable:
      return "$" + name_;
    case ExprKind::kUnary:
      return unary_op_ == UnaryOp::kNot ? "NOT (" + left_->ToString() + ")"
                                        : "-(" + left_->ToString() + ")";
    case ExprKind::kBinary: {
      std::ostringstream os;
      os << "(" << left_->ToString() << " " << BinaryOpToString(binary_op_)
         << " " << right_->ToString() << ")";
      return os.str();
    }
    case ExprKind::kAggregate: {
      std::ostringstream os;
      os << AggKindToString(agg_kind_) << "("
         << (left_ ? left_->ToString() : "*") << ")";
      return os.str();
    }
  }
  return "?";
}

std::vector<ExprPtr> ExtractConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind() == ExprKind::kBinary &&
      expr->binary_op() == BinaryOp::kAnd) {
    auto l = ExtractConjuncts(expr->left());
    auto r = ExtractConjuncts(expr->right());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return Expr::Literal(Value::Bool(true));
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::Binary(BinaryOp::kAnd, acc, conjuncts[i]);
  }
  return acc;
}

}  // namespace tcq
