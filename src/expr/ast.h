#ifndef TCQ_EXPR_AST_H_
#define TCQ_EXPR_AST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

enum class ExprKind : uint8_t {
  kLiteral,
  kColumn,
  kVariable,  ///< For-loop variables ("t", "ST") in window bound expressions.
  kUnary,
  kBinary,
  kAggregate,
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t {
  kNot,
  kNeg,
};

enum class AggKind : uint8_t {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

const char* BinaryOpToString(BinaryOp op);
const char* AggKindToString(AggKind k);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Variable bindings for window-bound expressions (t, ST, ...).
using VarEnv = std::map<std::string, Value>;

/// An expression tree node. Nodes are immutable and shared; Bind() produces
/// a new tree with column references resolved against a schema, and the
/// bound tree evaluates against tuples without further lookups.
///
/// Expressions are used in three roles:
///  * WHERE predicates and SELECT items over stream tuples,
///  * window bound expressions over the for-loop variable `t` (kVariable),
///  * aggregate calls (kAggregate) — evaluated incrementally by the
///    Aggregate module, never by Eval() directly.
class Expr {
 public:
  // -- Factories ------------------------------------------------------------
  static ExprPtr Literal(Value v);
  static ExprPtr Column(std::string name);
  static ExprPtr Variable(std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Aggregate(AggKind kind, ExprPtr arg);
  /// COUNT(*) — aggregate with no argument.
  static ExprPtr CountStar();

  // -- Inspectors -----------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& column_name() const { return name_; }
  const std::string& variable_name() const { return name_; }
  /// Resolved field index after Bind(); -1 when unbound.
  int column_index() const { return column_index_; }
  BinaryOp binary_op() const { return binary_op_; }
  UnaryOp unary_op() const { return unary_op_; }
  AggKind agg_kind() const { return agg_kind_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  /// Aggregate argument; nullptr for COUNT(*).
  const ExprPtr& agg_arg() const { return left_; }

  /// Result type; valid after a successful Bind (or for variable-free trees).
  ValueType result_type() const { return result_type_; }

  // -- Binding & evaluation ---------------------------------------------
  /// Resolves column references against `schema` and type-checks the tree.
  /// Aggregates are rejected here — they must be lifted out by the analyzer
  /// before predicate/projection binding.
  Result<ExprPtr> Bind(const Schema& schema) const;

  /// Evaluates a bound tree on a tuple. Variables are looked up in `env`
  /// (pass nullptr when the tree has none). Type errors are caught at bind
  /// time, so this never fails; NULL propagates through operators and makes
  /// comparisons false (SQL-ish two-valued logic is sufficient here).
  Value Eval(const Tuple& tuple, const VarEnv* env = nullptr) const;

  /// Evaluates a tuple-free tree (window bounds) against variables only.
  Value EvalConst(const VarEnv& env) const;

  // -- Analysis helpers ------------------------------------------------------
  /// True if any node in the tree is an aggregate call.
  bool ContainsAggregate() const;

  /// Appends the (unbound) column names referenced anywhere in the tree.
  void CollectColumns(std::vector<std::string>* out) const;

  /// Appends the variable names referenced anywhere in the tree.
  void CollectVariables(std::vector<std::string>* out) const;

  std::string ToString() const;

 private:
  Expr() = default;

  Value EvalInternal(const Tuple* tuple, const VarEnv* env) const;

  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  std::string name_;
  int column_index_ = -1;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  UnaryOp unary_op_ = UnaryOp::kNot;
  AggKind agg_kind_ = AggKind::kCount;
  ExprPtr left_;
  ExprPtr right_;
  ValueType result_type_ = ValueType::kNull;
};

/// Splits a predicate into its top-level AND conjuncts ("boolean factors"
/// in the paper's CACQ terminology).
std::vector<ExprPtr> ExtractConjuncts(const ExprPtr& expr);

/// Rebuilds a conjunction from factors; returns TRUE literal when empty.
ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts);

}  // namespace tcq

#endif  // TCQ_EXPR_AST_H_
