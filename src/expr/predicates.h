#ifndef TCQ_EXPR_PREDICATES_H_
#define TCQ_EXPR_PREDICATES_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "expr/ast.h"

namespace tcq {

/// A single-variable boolean factor in canonical `column op constant` form —
/// the shape CACQ indexes in grouped filters (§3.1).
struct SimplePredicate {
  std::string column;  ///< Possibly qualified column name.
  BinaryOp op;         ///< One of the six comparisons.
  Value constant;
};

/// An equi-join boolean factor `left_column = right_column` spanning two
/// sources — the shape SteMs index (§2.2).
struct EquiJoinPredicate {
  std::string left_column;
  std::string right_column;
};

/// Canonicalizes `expr` as a SimplePredicate if it is a comparison between
/// one column and one literal (either orientation; `5 < x` flips to
/// `x > 5`). Returns nullopt otherwise.
std::optional<SimplePredicate> MatchSimplePredicate(const ExprPtr& expr);

/// Matches `colA = colB` (equality only, both sides bare columns).
std::optional<EquiJoinPredicate> MatchEquiJoin(const ExprPtr& expr);

/// Mirrors a comparison across `=` (applies when operands are swapped):
/// < becomes >, <= becomes >=, =/!= unchanged.
BinaryOp FlipComparison(BinaryOp op);

/// The qualifier ("c1" in "c1.price") or "" when the name is bare.
std::string QualifierOf(const std::string& column_name);

/// The set of qualifiers referenced by the expression's columns. Bare
/// columns (no qualifier) contribute "" — the analyzer resolves those to a
/// unique source before classification.
std::set<std::string> CollectQualifiers(const ExprPtr& expr);

}  // namespace tcq

#endif  // TCQ_EXPR_PREDICATES_H_
