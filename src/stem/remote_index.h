#ifndef TCQ_STEM_REMOTE_INDEX_H_
#define TCQ_STEM_REMOTE_INDEX_H_

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

/// A simulated remote index access method — the paper's "web lookup form
/// wrapped by TeSS" (§2.2). Lookups are expensive: each one charges an
/// abstract latency cost (deterministic, for tests and cost-model benches)
/// and optionally sleeps (for wall-clock benches). An Eddy that caches
/// lookup results in a SteM implements [HN96]-style caching, and combined
/// with build SteMs yields the paper's hybrid join.
class RemoteIndex {
 public:
  struct Options {
    /// Abstract work units charged per Lookup (compared against the ~1 unit
    /// a SteM hash probe costs).
    uint64_t latency_cost = 1000;
    /// Optional real latency per lookup, for wall-clock benchmarks.
    std::chrono::microseconds sleep{0};
  };

  RemoteIndex(std::string name, SchemaPtr schema, int key_field,
              TupleVector data, Options options);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  int key_field() const { return key_field_; }

  /// Fetches all rows whose key equals `key`. Charges latency.
  TupleVector Lookup(const Value& key) const;

  uint64_t lookups() const { return lookups_.load(); }
  uint64_t total_cost() const { return cost_.load(); }

 private:
  const std::string name_;
  const SchemaPtr schema_;
  const int key_field_;
  const Options options_;
  std::unordered_multimap<Value, Tuple, ValueHash> rows_;
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> cost_{0};
};

}  // namespace tcq

#endif  // TCQ_STEM_REMOTE_INDEX_H_
