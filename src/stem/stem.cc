#include "stem/stem.h"

#include "common/logging.h"
#include "spool/spool.h"

namespace tcq {

namespace stem_internal {

AggregateMetrics& AggregateMetrics::Get() {
  static AggregateMetrics* m = [] {
    MetricRegistry& reg = MetricRegistry::Global();
    auto* agg = new AggregateMetrics();
    agg->inserts = reg.GetCounter("tcq.stem.inserts");
    agg->probes = reg.GetCounter("tcq.stem.probes");
    agg->matches = reg.GetCounter("tcq.stem.matches");
    agg->evictions = reg.GetCounter("tcq.stem.evictions");
    agg->scanned = reg.GetCounter("tcq.stem.scanned");
    agg->resident_bytes = reg.GetGauge("tcq.stem.resident_bytes");
    return agg;
  }();
  return *m;
}

void TrackResidentBytes(int64_t delta) {
  TCQ_METRIC(AggregateMetrics::Get().resident_bytes->Add(delta));
  (void)delta;
}

}  // namespace stem_internal

SteM::SteM(std::string name, SchemaPtr schema, Options options)
    : name_(std::move(name)), schema_(std::move(schema)), options_(options) {
  TCQ_CHECK(schema_ != nullptr);
  TCQ_CHECK(options_.key_field < static_cast<int>(schema_->num_fields()));
  TCQ_CHECK(options_.max_tuples > 0);
}

SteM::~SteM() {
  stem_internal::TrackResidentBytes(-resident_bytes_);  // Gauge hygiene.
}

void SteM::SetSpool(Spool* spool, std::string key) {
  TCQ_CHECK(spool != nullptr);
  spool_ = spool;
  spool_key_ = std::move(key);
}

void SteM::DemoteAt(size_t pos) {
  if (dead_[pos]) return;
  if (spool_ != nullptr) {
    // Demote rather than free: expired join state stays replayable. The
    // spool routes out-of-timestamp-order demotions to its late run, so
    // the arrival-order sweep here needs no sorting.
    TCQ_CHECK(spool_->Append(spool_key_, tuples_[pos]).ok())
        << name_ << ": spool demotion failed";
  }
  EvictAt(pos);
}

void SteM::Insert(const Tuple& tuple) {
  TCQ_DCHECK(tuple.arity() == schema_->num_fields())
      << name_ << ": arity mismatch";
  if (tuple.retraction()) {
    // A retraction cancels the matching stored assertion instead of being
    // stored: future probes must no longer see the retracted build side.
    // Unmatched retractions (assertion never stored, already evicted, or
    // already cancelled) are dropped — counted by the ingress layer.
    auto cancel_at = [&](size_t pos) {
      EvictAt(pos);
      CompactFront();
    };
    if (options_.key_field >= 0) {
      const Value& key = tuple.cell(static_cast<size_t>(options_.key_field));
      auto [lo, hi] = index_.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        const uint64_t id = it->second;
        if (id < base_id_) continue;
        const size_t pos = static_cast<size_t>(id - base_id_);
        if (pos >= tuples_.size() || dead_[pos]) continue;
        if (!tuples_[pos].retraction() && tuples_[pos].PayloadEquals(tuple)) {
          cancel_at(pos);
          return;
        }
      }
    } else {
      for (size_t i = 0; i < tuples_.size(); ++i) {
        if (!dead_[i] && !tuples_[i].retraction() &&
            tuples_[i].PayloadEquals(tuple)) {
          cancel_at(i);
          return;
        }
      }
    }
    return;
  }
  if (live_count_ >= options_.max_tuples) {
    // FIFO capacity eviction: drop the oldest live tuple (demoting it to
    // the spool when one is attached).
    for (size_t i = 0; i < dead_.size(); ++i) {
      if (!dead_[i]) {
        DemoteAt(i);
        break;
      }
    }
    CompactFront();
  }
  const uint64_t id = base_id_ + tuples_.size();
  tuples_.push_back(tuple);
  dead_.push_back(false);
  ++live_count_;
  const int64_t bytes = static_cast<int64_t>(tuple.ApproxBytes());
  resident_bytes_ += bytes;
  stem_internal::TrackResidentBytes(bytes);
  if (options_.key_field >= 0) {
    index_.emplace(tuple.cell(static_cast<size_t>(options_.key_field)), id);
  }
  ++stats_.inserts;
  TCQ_METRIC(stem_internal::AggregateMetrics::Get().inserts->Add(1));
}

TupleVector SteM::Probe(const Tuple& probe, int probe_key_field,
                        bool probe_on_left, const ExprPtr& residual) const {
  return ProbeImpl(probe, probe_key_field, probe_on_left, residual,
                   kMinTimestamp, kMaxTimestamp);
}

TupleVector SteM::ProbeWindow(const Tuple& probe, int probe_key_field,
                              bool probe_on_left, const ExprPtr& residual,
                              Timestamp window_lo,
                              Timestamp window_hi) const {
  return ProbeImpl(probe, probe_key_field, probe_on_left, residual, window_lo,
                   window_hi);
}

TupleVector SteM::ProbeImpl(const Tuple& probe, int probe_key_field,
                            bool probe_on_left, const ExprPtr& residual,
                            Timestamp window_lo, Timestamp window_hi) const {
  ++stats_.probes;
  TCQ_METRIC(stem_internal::AggregateMetrics::Get().probes->Add(1));
  TupleVector out;

  auto consider = [&](const Tuple& stored) {
    ++stats_.scanned;
    TCQ_METRIC(stem_internal::AggregateMetrics::Get().scanned->Add(1));
    if (stored.timestamp() < window_lo || stored.timestamp() > window_hi) {
      return;
    }
    Tuple joined = probe_on_left ? Tuple::Concat(probe, stored)
                                 : Tuple::Concat(stored, probe);
    if (residual != nullptr) {
      const Value keep = residual->Eval(joined);
      if (keep.is_null() || !keep.bool_value()) return;
    }
    ++stats_.matches;
    TCQ_METRIC(stem_internal::AggregateMetrics::Get().matches->Add(1));
    out.push_back(std::move(joined));
  };

  const bool indexed = options_.key_field >= 0 && probe_key_field >= 0;
  if (indexed) {
    const Value& key = probe.cell(static_cast<size_t>(probe_key_field));
    auto [lo, hi] = index_.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      const uint64_t id = it->second;
      if (id < base_id_) continue;  // Compacted away.
      const size_t pos = static_cast<size_t>(id - base_id_);
      if (pos >= tuples_.size() || dead_[pos]) continue;
      // equal_range is hash-based: confirm true key equality.
      if (tuples_[pos].cell(static_cast<size_t>(options_.key_field)) != key) {
        continue;
      }
      consider(tuples_[pos]);
    }
  } else {
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (!dead_[i]) consider(tuples_[i]);
    }
  }
  return out;
}

void SteM::EvictAt(size_t pos) {
  if (dead_[pos]) return;
  dead_[pos] = true;
  --live_count_;
  const int64_t bytes = static_cast<int64_t>(tuples_[pos].ApproxBytes());
  resident_bytes_ -= bytes;
  stem_internal::TrackResidentBytes(-bytes);
  ++stats_.evictions;
  TCQ_METRIC(stem_internal::AggregateMetrics::Get().evictions->Add(1));
}

void SteM::CompactFront() {
  while (!dead_.empty() && dead_.front()) {
    // Remove the matching index entries for the departing id.
    if (options_.key_field >= 0) {
      const Value& key =
          tuples_.front().cell(static_cast<size_t>(options_.key_field));
      auto [lo, hi] = index_.equal_range(key);
      for (auto it = lo; it != hi;) {
        it = (it->second == base_id_) ? index_.erase(it) : std::next(it);
      }
    }
    tuples_.pop_front();
    dead_.pop_front();
    ++base_id_;
  }
}

size_t SteM::EvictBefore(Timestamp ts) {
  size_t n = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (!dead_[i] && tuples_[i].timestamp() < ts) {
      DemoteAt(i);
      ++n;
    }
  }
  CompactFront();
  return n;
}

size_t SteM::EvictOutside(Timestamp lo, Timestamp hi) {
  size_t n = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (dead_[i]) continue;
    const Timestamp ts = tuples_[i].timestamp();
    if (ts < lo || ts > hi) {
      DemoteAt(i);
      ++n;
    }
  }
  CompactFront();
  return n;
}

void SteM::Clear() {
  // Wholesale reset (tests, shutdown): no demotion, plain release.
  tuples_.clear();
  dead_.clear();
  index_.clear();
  base_id_ = 0;
  live_count_ = 0;
  stem_internal::TrackResidentBytes(-resident_bytes_);
  resident_bytes_ = 0;
}

}  // namespace tcq
