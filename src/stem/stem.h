#ifndef TCQ_STEM_STEM_H_
#define TCQ_STEM_STEM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "expr/ast.h"
#include "telemetry/metrics.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

class Spool;

namespace stem_internal {
/// Process-wide SteM telemetry aggregated across all state modules
/// (DESIGN.md §10); per-instance detail remains on SteM::stats().
struct AggregateMetrics {
  Counter* inserts;
  Counter* probes;
  Counter* matches;
  Counter* evictions;
  Counter* scanned;
  Gauge* resident_bytes;  ///< Stored-tuple bytes in RAM (SteM+SharedSteM).
  static AggregateMetrics& Get();
};

/// Adjusts tcq.stem.resident_bytes (no-op under disabled metrics).
void TrackResidentBytes(int64_t delta);
}  // namespace stem_internal

/// A State Module (§2.2, [RDH02]): a temporary repository of homogeneous
/// tuples — "half of a traditional join operator". Supports insert (build),
/// search (probe) and delete (evict). Probes return the concatenations of
/// the probe tuple with every stored match; with a hash index on the join
/// attribute, an Eddy routing build+probe tuples through two SteMs yields a
/// symmetric hash join, and richer routings yield hybrid join plans.
///
/// Eviction: window queries expire tuples by timestamp; a capacity bound
/// evicts FIFO (the oldest state) when exceeded, which also serves as the
/// out-of-core pressure-relief valve for this in-memory reproduction.
class SteM {
 public:
  struct Options {
    /// Field index (into this SteM's schema) carrying the join key that the
    /// hash index is built on; -1 disables the index (probes scan).
    int key_field = -1;
    /// FIFO capacity bound; inserting beyond it evicts the oldest tuple.
    size_t max_tuples = SIZE_MAX;
  };

  SteM(std::string name, SchemaPtr schema, Options options);
  ~SteM();

  SteM(const SteM&) = delete;
  SteM& operator=(const SteM&) = delete;

  /// Evicted tuples (window expiry, capacity FIFO) demote to `spool`
  /// under `key` instead of being freed (DESIGN.md §16); retraction
  /// cancellations still delete. Caller keeps `spool` alive past this
  /// SteM.
  void SetSpool(Spool* spool, std::string key);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  int key_field() const { return options_.key_field; }

  /// Adds a build tuple. Evicts FIFO when at capacity.
  void Insert(const Tuple& tuple);

  /// Probes with tuple `probe` whose join-key is cell `probe_key_field`.
  /// Every stored tuple s with matching key yields a concatenation —
  /// probe-then-stored when `probe_on_left`, else stored-then-probe —
  /// filtered by the optional `residual` predicate, which must be bound
  /// against the corresponding concatenated schema. With key_field == -1
  /// (or probe_key_field == -1) the probe scans all stored tuples and
  /// relies entirely on `residual`.
  TupleVector Probe(const Tuple& probe, int probe_key_field,
                    bool probe_on_left, const ExprPtr& residual) const;

  /// Restricts a probe to stored tuples whose timestamp lies in
  /// [window_lo, window_hi] — used by windowed joins (band joins, §4.1).
  TupleVector ProbeWindow(const Tuple& probe, int probe_key_field,
                          bool probe_on_left, const ExprPtr& residual,
                          Timestamp window_lo, Timestamp window_hi) const;

  /// Evicts stored tuples with timestamp < ts (assumes mostly-ordered
  /// arrival; out-of-order stragglers are caught by a full sweep).
  /// Returns the number evicted.
  size_t EvictBefore(Timestamp ts);

  /// Evicts everything outside [lo, hi].
  size_t EvictOutside(Timestamp lo, Timestamp hi);

  void Clear();

  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Applies `fn` to every live tuple in arrival order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (!dead_[i]) fn(tuples_[i]);
    }
  }

  /// Low-level probe: applies `fn(const Tuple&)` to every live stored tuple
  /// matching `key` (or to all live tuples when key == nullptr) whose
  /// timestamp lies in [window_lo, window_hi]. The caller combines tuples
  /// itself — the Eddy uses this to merge sparse full-width tuples rather
  /// than concatenating narrow ones.
  template <typename Fn>
  void ProbeCollect(const Value* key, Timestamp window_lo,
                    Timestamp window_hi, Fn&& fn) const {
    ++stats_.probes;
    TCQ_METRIC(stem_internal::AggregateMetrics::Get().probes->Add(1));
    auto consider = [&](const Tuple& stored) {
      ++stats_.scanned;
      TCQ_METRIC(stem_internal::AggregateMetrics::Get().scanned->Add(1));
      if (stored.timestamp() < window_lo || stored.timestamp() > window_hi) {
        return;
      }
      fn(stored);
    };
    if (key != nullptr && options_.key_field >= 0) {
      auto [lo, hi] = index_.equal_range(*key);
      for (auto it = lo; it != hi; ++it) {
        const uint64_t id = it->second;
        if (id < base_id_) continue;
        const size_t pos = static_cast<size_t>(id - base_id_);
        if (pos >= tuples_.size() || dead_[pos]) continue;
        if (tuples_[pos].cell(static_cast<size_t>(options_.key_field)) !=
            *key) {
          continue;
        }
        consider(tuples_[pos]);
      }
    } else {
      for (size_t i = 0; i < tuples_.size(); ++i) {
        if (!dead_[i]) consider(tuples_[i]);
      }
    }
  }

  // -- Statistics -------------------------------------------------------
  // Internally the SteM counts with telemetry counters (relaxed atomics,
  // also mirrored into the process-wide `tcq.stem.*` aggregates); this
  // plain struct is the snapshot view those counters are read through.
  struct Stats {
    uint64_t inserts = 0;
    uint64_t probes = 0;
    uint64_t matches = 0;
    uint64_t evictions = 0;
    uint64_t scanned = 0;  ///< Stored tuples examined across all probes.
  };
  /// Thin view over the live counters (consistent enough for monitoring;
  /// each field is read atomically).
  Stats stats() const {
    return Stats{stats_.inserts.value(), stats_.probes.value(),
                 stats_.matches.value(), stats_.evictions.value(),
                 stats_.scanned.value()};
  }

 private:
  void EvictAt(size_t pos);
  /// EvictAt plus spool demotion — the window-expiry / capacity path
  /// (cancellations bypass this and truly delete).
  void DemoteAt(size_t pos);
  void CompactFront();
  TupleVector ProbeImpl(const Tuple& probe, int probe_key_field,
                        bool probe_on_left, const ExprPtr& residual,
                        Timestamp window_lo, Timestamp window_hi) const;

  const std::string name_;
  const SchemaPtr schema_;
  const Options options_;

  // Spool hook (null = evictions free memory, the legacy behavior).
  Spool* spool_ = nullptr;
  std::string spool_key_;
  int64_t resident_bytes_ = 0;

  // Storage: append-only deque addressed by global id = base_id_ + offset.
  // dead_ marks evicted positions; the front compacts when fully dead.
  std::deque<Tuple> tuples_;
  std::deque<bool> dead_;
  uint64_t base_id_ = 0;
  size_t live_count_ = 0;

  // Hash index: key value -> global ids (may contain stale/dead ids that
  // probes filter lazily).
  std::unordered_multimap<Value, uint64_t, ValueHash> index_;

  /// Live per-instance statistics (field names mirror the Stats view).
  struct StatCounters {
    Counter inserts;
    Counter probes;
    Counter matches;
    Counter evictions;
    Counter scanned;
  };
  mutable StatCounters stats_;
};

using SteMPtr = std::shared_ptr<SteM>;

}  // namespace tcq

#endif  // TCQ_STEM_STEM_H_
