#include "stem/remote_index.h"

#include "common/logging.h"

namespace tcq {

RemoteIndex::RemoteIndex(std::string name, SchemaPtr schema, int key_field,
                         TupleVector data, Options options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      key_field_(key_field),
      options_(options) {
  TCQ_CHECK(schema_ != nullptr);
  TCQ_CHECK(key_field_ >= 0 &&
            key_field_ < static_cast<int>(schema_->num_fields()));
  for (Tuple& t : data) {
    Value key = t.cell(static_cast<size_t>(key_field_));
    rows_.emplace(std::move(key), std::move(t));
  }
}

TupleVector RemoteIndex::Lookup(const Value& key) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  cost_.fetch_add(options_.latency_cost, std::memory_order_relaxed);
  if (options_.sleep.count() > 0) {
    std::this_thread::sleep_for(options_.sleep);
  }
  TupleVector out;
  auto [lo, hi] = rows_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->first == key) out.push_back(it->second);
  }
  return out;
}

}  // namespace tcq
