#include "core/server.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "fjords/queue.h"
#include "spool/spool.h"
#include "stem/stem.h"
#include "telemetry/metrics.h"
#include "telemetry/pool_metrics.h"

namespace tcq {

namespace {

#ifndef TCQ_METRICS_DISABLED
/// Process-wide ingest/egress aggregates (DESIGN.md §10); the per-stream
/// and per-query detail lives on Server state and is composed by
/// SnapshotMetrics / PumpMetrics.
struct ServerMetrics {
  Counter* ingested;
  Counter* rejected;
  Counter* delivered_rows;
  Counter* start_clamped;  ///< Submits whose start time the watermark raised.
  // Disorder-path aggregates (DESIGN.md §15); per-stream detail lives on
  // StreamState::dis.
  Counter* dis_released;
  Counter* dis_late_within_bound;
  Counter* dis_beyond_bound;
  Counter* dis_dropped;
  Counter* dis_ingested_late;
  Counter* dis_heartbeats;
  Counter* dis_idle_heartbeats;
  Counter* dis_retractions;
  Counter* dis_unmatched_retractions;
  Counter* spool_replayed;  ///< Records re-delivered by ReplayStream.

  static ServerMetrics& Get() {
    static ServerMetrics* m = [] {
      MetricRegistry& reg = MetricRegistry::Global();
      auto* agg = new ServerMetrics();
      agg->ingested = reg.GetCounter("tcq.server.ingested");
      agg->rejected = reg.GetCounter("tcq.server.rejected");
      agg->delivered_rows = reg.GetCounter("tcq.server.delivered_rows");
      agg->start_clamped = reg.GetCounter("tcq.server.start_clamped");
      agg->dis_released = reg.GetCounter("tcq.disorder.released");
      agg->dis_late_within_bound =
          reg.GetCounter("tcq.disorder.late_within_bound");
      agg->dis_beyond_bound = reg.GetCounter("tcq.disorder.beyond_bound");
      agg->dis_dropped = reg.GetCounter("tcq.disorder.dropped");
      agg->dis_ingested_late = reg.GetCounter("tcq.disorder.ingested_late");
      agg->dis_heartbeats = reg.GetCounter("tcq.disorder.heartbeats");
      agg->dis_idle_heartbeats =
          reg.GetCounter("tcq.disorder.idle_heartbeats");
      agg->dis_retractions = reg.GetCounter("tcq.disorder.retractions");
      agg->dis_unmatched_retractions =
          reg.GetCounter("tcq.disorder.unmatched_retractions");
      agg->spool_replayed = reg.GetCounter("tcq.spool.replayed");
      return agg;
    }();
    return *m;
  }
};
#endif  // TCQ_METRICS_DISABLED

/// Rewrites every column reference to its bare (unqualified) name. Used on
/// the CACQ path: the shared engine's layout qualifies columns by stream
/// name while queries may use private aliases; with a single source the
/// bare names are unambiguous.
ExprPtr StripQualifiers(const ExprPtr& e) {
  if (e == nullptr) return nullptr;
  switch (e->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kVariable:
      return e;
    case ExprKind::kColumn: {
      const std::string& name = e->column_name();
      const size_t dot = name.find('.');
      return dot == std::string::npos ? e
                                      : Expr::Column(name.substr(dot + 1));
    }
    case ExprKind::kUnary:
      return Expr::Unary(e->unary_op(), StripQualifiers(e->left()));
    case ExprKind::kBinary:
      return Expr::Binary(e->binary_op(), StripQualifiers(e->left()),
                          StripQualifiers(e->right()));
    case ExprKind::kAggregate:
      return Expr::Aggregate(e->agg_kind(), StripQualifiers(e->agg_arg()));
  }
  return e;
}

}  // namespace

Server::Server() : Server(Options()) {}

Server::Server(Options options) : options_(std::move(options)) {
  clock_ms_ = [] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  if (!options_.spool_dir.empty()) {
    // The shared history spool opens (or adopts) before any stream is
    // defined, so every archive — the metrics stream's included — can
    // attach at definition time. A server that cannot open its history
    // store must not come up half-blind: fail loudly.
    Spool::Options so;
    so.dir = options_.spool_dir;
    so.cache_pages = std::max<size_t>(1, options_.spool_cache_pages);
    so.segment_bytes = options_.spool_segment_bytes;
    so.sync_each_append = options_.spool_sync_each_append;
    auto opened = Spool::Open(std::move(so));
    TCQ_CHECK(opened.ok()) << opened.status();
    spool_ = std::move(*opened);
  }
  // Reserved introspection stream: continuous queries over engine
  // telemetry (PumpMetrics publishes snapshots into it).
  SchemaPtr schema = Schema::Make({{"name", ValueType::kString, ""},
                                   {"kind", ValueType::kString, ""},
                                   {"value", ValueType::kDouble, ""}});
  Status st = DefineStream(kMetricsStream, std::move(schema));
  TCQ_CHECK(st.ok()) << st;
#ifndef TCQ_METRICS_DISABLED
  // Pre-register the spine's metric families (they otherwise appear on
  // first use), so snapshots and the introspection stream have a stable
  // name set from the first pump — zero-valued until the path is hit.
  ServerMetrics::Get();
  queue_internal::EdgeMetrics::Get();
  stem_internal::AggregateMetrics::Get();
#endif
}

Server::~Server() {
  // Stop shard/egress threads while queries_ and streams_ are still
  // alive: member destruction order would otherwise tear down queries_
  // under a still-delivering egress thread.
  std::vector<ShardedEngine*> engines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, ss] : streams_) {
      if (ss.sharded != nullptr) engines.push_back(ss.sharded.get());
    }
  }
  for (ShardedEngine* e : engines) e->Stop();
}

void Server::Quiesce() {
  // Collect under mu_, wait unlocked: a quiesce must not stall ingest on
  // other streams, and the engines live until ~Server.
  std::vector<ShardedEngine*> engines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, ss] : streams_) {
      if (ss.sharded != nullptr) engines.push_back(ss.sharded.get());
    }
  }
  for (ShardedEngine* e : engines) {
    const Status st = e->Quiesce();
    if (!st.ok()) {
      // A dead (un-failed-over) shard can't be barriered; the server-level
      // quiesce stays best-effort rather than wedging every stream.
      TCQ_LOG(Warn) << "Quiesce skipped a dead shard: " << st.ToString();
    }
  }
}

Status Server::Rebalance(const std::string& stream, size_t bucket,
                         size_t to_shard) {
  // Same discipline as Quiesce: resolve the engine under mu_, migrate
  // unlocked — a migration blocks on shard barriers and must not stall
  // ingest on other streams (the engine lives until ~Server).
  ShardedEngine* engine = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(stream);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + stream);
    }
    if (it->second.sharded == nullptr) {
      return Status::FailedPrecondition(
          "stream is not running sharded (need cacq_shards > 1 and a "
          "standing query): " +
          stream);
    }
    engine = it->second.sharded.get();
  }
  return engine->MigrateBucket(bucket, to_shard);
}

Status Server::DefineStream(const std::string& name, SchemaPtr schema,
                            int timestamp_field, int partition_field) {
  std::lock_guard<std::mutex> lock(mu_);
  StreamDef def;
  def.name = name;
  def.schema = std::move(schema);
  def.timestamp_field = timestamp_field;
  if (partition_field >= 0 &&
      static_cast<size_t>(partition_field) >= def.schema->num_fields()) {
    return Status::OutOfRange("partition field out of range for " + name);
  }
  TCQ_RETURN_NOT_OK(catalog_.RegisterStream(def));
  StreamState state;
  state.def = def;
  state.archive = std::make_unique<Archive>(options_.retention_span);
  if (spool_ != nullptr) {
    // Bounded-RAM history: the archive keeps a resident tail and demotes
    // the rest to the shared spool. Reopening a server on the same
    // spool_dir adopts the stream's spooled history here.
    state.archive->AttachSpool(
        spool_.get(), "stream." + name,
        std::max<size_t>(1, options_.spool_resident_tuples));
  }
  if (def.timestamp_field >= 0) {
    // Disorder is only possible with an application timestamp column;
    // arrival-sequence streams are in order by construction.
    state.reorder.set_max_disorder(std::max<Timestamp>(0,
                                                       options_.max_disorder));
    state.late_policy = options_.late_policy;
  }
  state.last_arrival_ms = clock_ms_();
  if (partition_field >= 0) {
    state.partition_column = static_cast<size_t>(partition_field);
  } else {
    // Default exchange key: the first non-timestamp column (timestamps
    // increase monotonically — hashing them would serialize each batch
    // onto one shard).
    state.partition_column =
        (def.timestamp_field == 0 && def.schema->num_fields() > 1) ? 1 : 0;
  }
  streams_.emplace(name, std::move(state));
  return Status::OK();
}

Status Server::DefineTable(const std::string& name, SchemaPtr schema,
                           TupleVector rows) {
  std::lock_guard<std::mutex> lock(mu_);
  StreamDef def;
  def.name = name;
  def.schema = std::move(schema);
  return catalog_.RegisterTable(std::move(def), std::move(rows));
}

Result<QueryId> Server::Submit(const std::string& sql) {
  return Submit(sql, SubmitOptions());
}

Result<QueryId> Server::Submit(const std::string& sql,
                               const SubmitOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  TCQ_ASSIGN_OR_RETURN(AnalyzedQuery analyzed, AnalyzeSql(sql, catalog_));

  const QueryId qid = static_cast<QueryId>(queries_.size());
  auto qs = std::make_unique<QueryState>();
  qs->consistency = opts.consistency;
  qs->analyzed = std::move(analyzed);
  const AnalyzedQuery& aq = qs->analyzed;
  const bool speculative = opts.consistency == Consistency::kSpeculative;

  if (aq.cacq_eligible && options_.cacq_shards > 1) {
    // Standing single-stream filter, sharded mode: fold into the
    // stream's shard fleet (created on first use, like the inline eddy).
    const std::string& stream = aq.defs[0].name;
    StreamState& ss = streams_.at(stream);
    if (ss.sharded == nullptr) {
      ShardedEngine::Options sopts;
      sopts.num_shards = options_.cacq_shards;
      sopts.policy = options_.policy;
      sopts.seed = options_.seed;
      sopts.num_buckets = options_.cacq_buckets;
      sopts.auto_rebalance = options_.auto_rebalance;
      sopts.rebalance = options_.rebalance;
      sopts.num_replicas = options_.cacq_replicas;
      if (spool_ != nullptr) {
        sopts.spool = spool_.get();
        sopts.spool_prefix = "cacq." + stream + ".";
      }
      auto sharded = std::make_unique<ShardedEngine>(std::move(sopts));
      auto added =
          sharded->AddStream(stream, ss.def.schema, ss.partition_column);
      TCQ_CHECK(added.ok()) << added.status();
      // The sink runs on the egress thread; it captures the StreamState
      // node (map nodes are address-stable) and takes results_mu_ only.
      StreamState* node = &ss;
      sharded->SetSink(
          [this, node](std::vector<ShardedEngine::Emission>&& batch) {
            DeliverShardEmissions(node, std::move(batch));
          });
      sharded->Start();
      ss.sharded = std::move(sharded);
    }
    CacqQuerySpec spec;
    spec.sources = {stream};
    spec.where = StripQualifiers(aq.parsed.where);
    spec.speculative = speculative;
    TCQ_ASSIGN_OR_RETURN(QueryId engine_q, ss.sharded->AddQuery(spec));
    {
      std::lock_guard<std::mutex> rlock(results_mu_);
      ss.cacq_to_server[engine_q] = qid;
    }
    ++(speculative ? ss.cacq_speculative : ss.cacq_delayed);
    qs->is_cacq = true;
    qs->cacq_stream = stream;
    qs->cacq_id = engine_q;
  } else if (aq.cacq_eligible) {
    // Standing single-stream filter: fold into the stream's shared eddy.
    const std::string& stream = aq.defs[0].name;
    StreamState& ss = streams_.at(stream);
    if (ss.cacq == nullptr) {
      CacqEngine::Options copts;
      copts.policy = options_.policy;
      copts.seed = options_.seed;
      if (spool_ != nullptr) {
        copts.spool = spool_.get();
        copts.spool_prefix = "cacq." + stream + ".";
      }
      ss.cacq = std::make_unique<CacqEngine>(std::move(copts));
      auto added = ss.cacq->AddStream(stream, ss.def.schema);
      TCQ_CHECK(added.ok()) << added.status();
      ss.cacq->SetSink([this, stream](QueryId engine_q, const Tuple& t) {
        // mu_ is held by Push when this fires.
        StreamState& s = streams_.at(stream);
        auto it = s.cacq_to_server.find(engine_q);
        if (it == s.cacq_to_server.end()) return;
        QueryState* owner = queries_[it->second].get();
        // Project per the query's select list.
        std::vector<Value> cells;
        cells.reserve(owner->analyzed.projections.size());
        for (const ExprPtr& e : owner->analyzed.projections) {
          cells.push_back(e->Eval(t));
        }
        ResultSet rs;
        rs.t = t.timestamp();
        Tuple row = Tuple::Make(std::move(cells), t.timestamp());
        row.set_retraction(t.retraction());
        rs.rows.push_back(std::move(row));
        std::vector<ResultSet> sets;
        sets.push_back(std::move(rs));
        DeliverResults(owner, std::move(sets));
      });
    }
    CacqQuerySpec spec;
    spec.sources = {stream};
    spec.where = StripQualifiers(aq.parsed.where);
    spec.speculative = speculative;
    TCQ_ASSIGN_OR_RETURN(QueryId engine_q, ss.cacq->AddQuery(spec));
    {
      std::lock_guard<std::mutex> rlock(results_mu_);
      ss.cacq_to_server[engine_q] = qid;
    }
    ++(speculative ? ss.cacq_speculative : ss.cacq_delayed);
    qs->is_cacq = true;
    qs->cacq_stream = stream;
    qs->cacq_id = engine_q;
  } else {
    // Windowed / snapshot path: a QueryRunner over the archives.
    std::vector<const Archive*> archives;
    std::vector<TupleVector> table_rows;
    Timestamp start_time = 1;
    for (const StreamDef& def : aq.defs) {
      if (def.is_table) {
        archives.push_back(nullptr);
        TCQ_ASSIGN_OR_RETURN(TupleVector rows,
                             catalog_.GetTableRows(def.name));
        table_rows.push_back(std::move(rows));
        continue;
      }
      StreamState& ss = streams_.at(def.name);
      archives.push_back(ss.archive.get());
      table_rows.emplace_back();
      if (ss.watermark + 1 > start_time) {
        // The for-loop start is clamped past data the stream has already
        // delivered (the query cannot fire windows over history whose
        // watermark has passed). Observable, not silent.
        start_time = ss.watermark + 1;
        TCQ_METRIC(ServerMetrics::Get().start_clamped->Add(1));
      }
    }
    // Degenerate: table-only runners need a non-null archive slot.
    static const Archive* const kEmptyArchive = new Archive();
    for (auto& a : archives) {
      if (a == nullptr) a = kEmptyArchive;
    }
    QueryRunner::Options ropts;
    ropts.policy = options_.policy;
    ropts.seed = options_.seed;
    ropts.start_time = start_time;
    ropts.speculative = speculative;
    qs->runner = std::make_unique<QueryRunner>(aq, std::move(archives),
                                               std::move(table_rows), ropts);
    // Table-only snapshots and past-window queries may already be
    // executable: fire them now.
    Timestamp hwm = kMaxTimestamp;
    for (const StreamDef& def : aq.defs) {
      if (!def.is_table) {
        const StreamState& src = streams_.at(def.name);
        hwm = std::min(hwm, speculative
                                ? std::max(src.watermark,
                                           src.reorder.raw_watermark())
                                : src.watermark);
      }
    }
    std::vector<ResultSet> sets;
    qs->runner->Advance(hwm == kMaxTimestamp ? 0 : hwm, &sets);
    DeliverResults(qs.get(), std::move(sets));
  }

  qs->active = true;
  if (qs->consistency == Consistency::kSpeculative) ++num_speculative_;
  {
    // The egress thread indexes queries_ under results_mu_; push_back may
    // reallocate the vector's storage.
    std::lock_guard<std::mutex> rlock(results_mu_);
    queries_.push_back(std::move(qs));
  }
  return qid;
}

Status Server::SetCallback(QueryId q, Callback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  if (q >= queries_.size() || !queries_[q]->active) {
    return Status::NotFound("no such active query");
  }
  QueryState* qs = queries_[q].get();
  std::lock_guard<std::mutex> rlock(results_mu_);
  qs->callback = std::move(cb);
  // Flush anything already queued.
  while (!qs->results.empty()) {
    qs->callback(qs->results.front());
    qs->results.pop_front();
  }
  return Status::OK();
}

Status Server::Cancel(QueryId q) {
  std::lock_guard<std::mutex> lock(mu_);
  if (q >= queries_.size() || !queries_[q]->active) {
    return Status::NotFound("no such active query");
  }
  QueryState* qs = queries_[q].get();
  qs->active = false;
  if (qs->consistency == Consistency::kSpeculative && num_speculative_ > 0) {
    --num_speculative_;
  }
  if (qs->is_cacq) {
    StreamState& ss = streams_.at(qs->cacq_stream);
    size_t& lane = qs->consistency == Consistency::kSpeculative
                       ? ss.cacq_speculative
                       : ss.cacq_delayed;
    if (lane > 0) --lane;
    if (ss.sharded != nullptr) {
      // Unmap first so the egress thread drops emissions still in flight,
      // then barrier the removal through the shard control path.
      {
        std::lock_guard<std::mutex> rlock(results_mu_);
        ss.cacq_to_server.erase(qs->cacq_id);
      }
      TCQ_RETURN_NOT_OK(ss.sharded->RemoveQuery(qs->cacq_id));
    } else {
      TCQ_RETURN_NOT_OK(ss.cacq->RemoveQuery(qs->cacq_id));
      std::lock_guard<std::mutex> rlock(results_mu_);
      ss.cacq_to_server.erase(qs->cacq_id);
    }
  }
  qs->runner.reset();
  {
    std::lock_guard<std::mutex> rlock(results_mu_);
    qs->results.clear();
  }
  return Status::OK();
}

Result<SchemaPtr> Server::OutputSchema(QueryId q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (q >= queries_.size()) return Status::NotFound("no such query");
  return queries_[q]->analyzed.output_schema;
}

Status Server::Push(const std::string& stream, const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  return PushLocked(stream, tuple);
}

Status Server::StampLocked(StreamState* ss, Tuple* tuple) {
  if (tuple->arity() != ss->def.schema->num_fields()) {
    return Status::InvalidArgument("tuple arity mismatch for " +
                                   ss->def.name);
  }
  // Stamp the engine timestamp: declared column or arrival order.
  ++ss->arrivals;
  Timestamp ts;
  if (ss->def.timestamp_field >= 0) {
    const Value& v =
        tuple->cell(static_cast<size_t>(ss->def.timestamp_field));
    if (v.type() != ValueType::kInt64) {
      return Status::TypeError("timestamp column must be INT64");
    }
    ts = v.int64_value();
  } else {
    ts = ss->arrivals;
  }
  tuple->set_timestamp(ts);
  return Status::OK();
}

void Server::AdvanceQueriesLocked(const std::string& stream) {
  // Advance every windowed query whose footprint includes this stream —
  // delayed queries to the min safe watermark of their footprint,
  // speculative ones to the min raw watermark (floored at safe: a raw
  // mark never trails what has already been released).
  for (auto& qptr : queries_) {
    QueryState* qs = qptr.get();
    if (!qs->active || qs->runner == nullptr || qs->runner->done()) continue;
    const bool speculative = qs->consistency == Consistency::kSpeculative;
    bool touches = false;
    Timestamp hwm = kMaxTimestamp;
    for (const StreamDef& def : qs->analyzed.defs) {
      if (def.is_table) continue;
      if (def.name == stream) touches = true;
      const StreamState& src = streams_.at(def.name);
      hwm = std::min(hwm, speculative
                              ? std::max(src.watermark,
                                         src.reorder.raw_watermark())
                              : src.watermark);
    }
    if (!touches || hwm == kMaxTimestamp) continue;
    std::vector<ResultSet> sets;
    qs->runner->Advance(hwm, &sets);
    if (!sets.empty()) DeliverResults(qs, std::move(sets));
  }
}

void Server::ReviseQueriesLocked(const std::string& stream,
                                 Timestamp late_ts) {
  if (num_speculative_ == 0) return;  // Per-batch call; skip the sweep.
  for (auto& qptr : queries_) {
    QueryState* qs = qptr.get();
    if (!qs->active || qs->runner == nullptr) continue;
    if (qs->consistency != Consistency::kSpeculative) continue;
    bool touches = false;
    for (const StreamDef& def : qs->analyzed.defs) {
      if (!def.is_table && def.name == stream) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    std::vector<ResultSet> sets;
    qs->runner->Revise(late_ts, &sets);
    if (!sets.empty()) DeliverResults(qs, std::move(sets));
  }
}

Status Server::ApplyReleasedLocked(const std::string& stream,
                                   StreamState* sp,
                                   std::vector<Tuple> released) {
  StreamState& ss = *sp;
  if (released.empty()) return Status::OK();
  ss.dis.released += static_cast<int64_t>(released.size());
  TCQ_METRIC(ServerMetrics::Get().dis_released->Add(released.size()));
  // Releases arrive in timestamp order and never regress below earlier
  // releases, so plain Append keeps the archive sorted; the safe
  // watermark is the released frontier.
  for (const Tuple& t : released) {
    ss.archive->Append(t);
    if (t.timestamp() > ss.watermark) ss.watermark = t.timestamp();
  }
  // Delayed-lane injection: standing delayed queries consume the released
  // (timestamp-ordered) feed, never raw arrivals.
  if (ss.sharded != nullptr) {
    if (ss.cacq_delayed > 0 && !ss.cacq_to_server.empty()) {
      TCQ_RETURN_NOT_OK(ss.sharded->PushBatch(stream, std::move(released),
                                              IngressLane::kDelayed));
    }
  } else if (ss.cacq != nullptr && ss.cacq->num_active_queries() > 0 &&
             ss.cacq_delayed > 0) {
    TCQ_RETURN_NOT_OK(
        ss.cacq->InjectBatch(stream, released, IngressLane::kDelayed));
  }
  return Status::OK();
}

Status Server::PushLocked(const std::string& stream, const Tuple& tuple) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  std::vector<Tuple> one;
  one.push_back(tuple);
  return IngestBatchLocked(stream, &it->second, std::move(one), nullptr);
}

Status Server::PushBatch(const std::string& stream, std::vector<Tuple> batch,
                         size_t* rejected) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rejected != nullptr) *rejected = 0;
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  return IngestBatchLocked(stream, &it->second, std::move(batch), rejected);
}

Status Server::IngestBatchLocked(const std::string& stream, StreamState* sp,
                                 std::vector<Tuple> batch, size_t* rejected) {
  StreamState& ss = *sp;
  if (!batch.empty()) ss.last_arrival_ms = clock_ms_();

  // Stamp, classify and route the whole batch in one pass. Accepted
  // arrivals feed two lanes: `raw` (arrival order — the speculative lane)
  // and the reorder buffer, whose releases (timestamp order — the delayed
  // lane) are applied below. With max_disorder == 0 the buffer releases
  // every tuple immediately, so both lanes carry the same sequence and
  // the classic in-order behavior is preserved byte for byte.
  Status first_error = Status::OK();
  // The raw (arrival-order) lane is only materialized when someone
  // listens to it: with no speculative CACQ queries the per-tuple copy
  // into `raw` is pure overhead on the hot ingest path.
  const bool want_spec =
      (ss.sharded != nullptr)
          ? (ss.cacq_speculative > 0 && !ss.cacq_to_server.empty())
          : (ss.cacq != nullptr && ss.cacq->num_active_queries() > 0 &&
             ss.cacq_speculative > 0);
  std::vector<Tuple> raw;
  if (want_spec) raw.reserve(batch.size());
  size_t accepted = 0;
  int64_t within_bound = 0;
  std::vector<Tuple> released;
  released.reserve(batch.size());
  // kIngestLate stragglers, archived only after this batch's releases:
  // an InsertOrdered mid-loop could land ABOVE releases still pending in
  // `released`, and their later Append would then violate the archive's
  // ordered-append invariant. Nothing reads the archive until the window
  // advance below, so deferring is observationally identical.
  std::vector<Tuple> late_inserts;
  Timestamp min_revise = kMaxTimestamp;
  // The released frontier as of the previous tuple: ss.watermark only
  // advances when the releases are applied below, so earlier tuples of
  // THIS batch must raise the straggler bar too (a release sequence must
  // never regress).
  Timestamp frontier = ss.watermark;
  for (Tuple& tuple : batch) {
    Status st = StampLocked(&ss, &tuple);
    if (!st.ok()) {
      ++ss.rejected;
      TCQ_METRIC(ServerMetrics::Get().rejected->Add(1));
      if (rejected == nullptr) {
        first_error = std::move(st);
        break;  // Ingest the valid prefix, then report, like a Push loop.
      }
      ++*rejected;
      continue;
    }
    const Timestamp ts = tuple.timestamp();
    if (ts < frontier) {
      // Beyond-bound straggler: below the released frontier, later than
      // the declared disorder bound.
      ++ss.dis.beyond_bound;
      TCQ_METRIC(ServerMetrics::Get().dis_beyond_bound->Add(1));
      if (ss.late_policy == LatePolicy::kDrop) {
        ++ss.dis.dropped;
        TCQ_METRIC(ServerMetrics::Get().dis_dropped->Add(1));
        continue;
      }
      if (ss.late_policy == LatePolicy::kIngestLate) {
        ++ss.dis.ingested_late;
        TCQ_METRIC(ServerMetrics::Get().dis_ingested_late->Add(1));
        TCQ_METRIC(ServerMetrics::Get().ingested->Add(1));
        late_inserts.push_back(tuple);
        min_revise = std::min(min_revise, ts);
        ++accepted;
        // Standing speculative queries still see it (they tolerate
        // out-of-order input); delayed queries only via unfired windows.
        if (want_spec) raw.push_back(std::move(tuple));
        continue;
      }
      // LatePolicy::kReject: the classic hard-reject contract, with the
      // classic message, under the batch skip-and-count rules.
      ++ss.rejected;
      TCQ_METRIC(ServerMetrics::Get().rejected->Add(1));
      Status late = Status::InvalidArgument(
          "out-of-order timestamp on " + ss.def.name + ": " +
          std::to_string(ts) + " < watermark " + std::to_string(frontier));
      if (rejected == nullptr) {
        first_error = std::move(late);
        break;
      }
      ++*rejected;
      continue;
    }
    // Within bound (or in order): through the reorder buffer.
    ++within_bound;
    if (ts < ss.reorder.raw_watermark()) {
      ++ss.dis.late_within_bound;
      TCQ_METRIC(ServerMetrics::Get().dis_late_within_bound->Add(1));
    }
    ++accepted;
    if (want_spec) raw.push_back(tuple);
    ss.reorder.Offer(std::move(tuple), &released);
    if (!released.empty()) {
      frontier = std::max(frontier, released.back().timestamp());
    }
  }

  TCQ_METRIC(
      ServerMetrics::Get().ingested->Add(static_cast<uint64_t>(within_bound)));
  (void)within_bound;  // Metric-only under TCQ_DISABLE_METRICS.

  // Releases with timestamps at or below an already-fired speculative
  // window require revision (the archive changed under it) — as do
  // kIngestLate ordered inserts. Releases are timestamp-ordered, so the
  // front carries the minimum.
  Timestamp revise_ts = min_revise;
  if (!released.empty()) {
    revise_ts = std::min(revise_ts, released.front().timestamp());
  }
  TCQ_RETURN_NOT_OK(ApplyReleasedLocked(stream, &ss, std::move(released)));
  for (const Tuple& t : late_inserts) ss.archive->InsertOrdered(t);

  if (accepted > 0) {
    AdvanceQueriesLocked(stream);
    // Speculative-lane injection: raw arrivals, in arrival order.
    if (want_spec && !raw.empty()) {
      if (ss.sharded != nullptr) {
        TCQ_RETURN_NOT_OK(ss.sharded->PushBatch(
            stream, std::move(raw), IngressLane::kSpeculative));
      } else {
        TCQ_RETURN_NOT_OK(
            ss.cacq->InjectBatch(stream, raw, IngressLane::kSpeculative));
      }
    }
  }
  if (revise_ts != kMaxTimestamp) ReviseQueriesLocked(stream, revise_ts);
  return first_error;
}

Status Server::PushAll(const std::string& stream, TupleSource* source) {
  std::lock_guard<std::mutex> lock(mu_);
  while (auto t = source->Next()) {
    TCQ_RETURN_NOT_OK(PushLocked(stream, *t));
  }
  return Status::OK();
}

Status Server::SetDisorderBound(const std::string& stream,
                                Timestamp max_disorder, LatePolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  StreamState& ss = it->second;
  if (ss.def.timestamp_field < 0) {
    return Status::FailedPrecondition(
        "disorder bound needs a timestamp column on " + stream);
  }
  if (max_disorder < 0) {
    return Status::InvalidArgument("negative disorder bound");
  }
  ss.reorder.set_max_disorder(max_disorder);
  ss.late_policy = policy;
  // A tightened bound can make buffered tuples releasable right now.
  if (ss.reorder.buffered() > 0 &&
      ss.reorder.raw_watermark() >= kMinTimestamp + max_disorder) {
    std::vector<Tuple> released;
    ss.reorder.Punctuate(ss.reorder.raw_watermark() - max_disorder,
                         &released);
    const Timestamp min_released =
        released.empty() ? kMaxTimestamp : released.front().timestamp();
    TCQ_RETURN_NOT_OK(ApplyReleasedLocked(stream, &ss, std::move(released)));
    AdvanceQueriesLocked(stream);
    if (min_released != kMaxTimestamp) {
      ReviseQueriesLocked(stream, min_released);
    }
  }
  return Status::OK();
}

Status Server::Heartbeat(const std::string& stream, Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  if (it->second.def.timestamp_field < 0) {
    return Status::FailedPrecondition(
        "heartbeats need a timestamp column on " + stream);
  }
  return HeartbeatLocked(stream, &it->second, ts, /*idle=*/false);
}

Status Server::HeartbeatLocked(const std::string& stream, StreamState* sp,
                               Timestamp ts, bool idle) {
  StreamState& ss = *sp;
  ++(idle ? ss.dis.idle_heartbeats : ss.dis.heartbeats);
  TCQ_METRIC((idle ? ServerMetrics::Get().dis_idle_heartbeats
                   : ServerMetrics::Get().dis_heartbeats)
                 ->Add(1));
  // The source asserts no future arrival has timestamp <= ts: flush the
  // buffer through ts and advance the safe watermark to at least ts.
  // Arrivals at or below it afterwards follow the stream's LatePolicy.
  std::vector<Tuple> released;
  ss.reorder.Punctuate(ts, &released);
  const Timestamp min_released =
      released.empty() ? kMaxTimestamp : released.front().timestamp();
  TCQ_RETURN_NOT_OK(ApplyReleasedLocked(stream, &ss, std::move(released)));
  if (ts > ss.watermark) ss.watermark = ts;
  AdvanceQueriesLocked(stream);
  if (min_released != kMaxTimestamp) {
    ReviseQueriesLocked(stream, min_released);
  }
  return Status::OK();
}

Status Server::Retract(const std::string& stream, const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  StreamState& ss = it->second;
  if (ss.def.timestamp_field < 0) {
    return Status::FailedPrecondition(
        "retractions need a timestamp column on " + stream);
  }
  if (tuple.arity() != ss.def.schema->num_fields()) {
    return Status::InvalidArgument("tuple arity mismatch for " +
                                   ss.def.name);
  }
  const Value& v =
      tuple.cell(static_cast<size_t>(ss.def.timestamp_field));
  if (v.type() != ValueType::kInt64) {
    return Status::TypeError("timestamp column must be INT64");
  }
  Tuple r = tuple;
  r.set_timestamp(v.int64_value());
  r.set_retraction(true);
  // A retraction is not an arrival: it never advances watermarks or the
  // arrival count. The archived assertion must exist — a retraction of a
  // tuple still waiting in the reorder buffer (or never asserted) is
  // dropped and counted.
  if (!ss.archive->CancelMatching(r)) {
    ++ss.dis.unmatched_retractions;
    TCQ_METRIC(ServerMetrics::Get().dis_unmatched_retractions->Add(1));
    return Status::OK();
  }
  ++ss.dis.retractions;
  TCQ_METRIC(ServerMetrics::Get().dis_retractions->Add(1));
  // Both CACQ lanes saw the assertion, so the signed tuple flows to all
  // standing queries (kAll); it cancels SteM state and emits signed rows.
  if (ss.sharded != nullptr) {
    if (!ss.cacq_to_server.empty()) {
      TCQ_RETURN_NOT_OK(ss.sharded->Push(stream, r));
    }
  } else if (ss.cacq != nullptr && ss.cacq->num_active_queries() > 0) {
    TCQ_RETURN_NOT_OK(ss.cacq->Inject(stream, r));
  }
  // Fired speculative windows covering the timestamp must be revised;
  // delayed windows that already fired keep the stale row (documented).
  ReviseQueriesLocked(stream, r.timestamp());
  return Status::OK();
}

size_t Server::PumpHeartbeats() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.idle_heartbeat_ms <= 0) return 0;
  const int64_t now = clock_ms_();
  size_t punctuated = 0;
  for (auto& [name, ss] : streams_) {
    if (ss.def.timestamp_field < 0) continue;  // Arrival seq: never idle.
    if (now - ss.last_arrival_ms < options_.idle_heartbeat_ms) continue;
    // Punctuate up to the highest safe watermark among streams this one
    // shares a multi-stream windowed query with — the partners whose
    // windows it is stalling, and (by the shared-clock assumption) the
    // same timestamp domain. Single-stream queries never stall on a
    // partner, so a stream with no multi-stream footprint is left alone.
    Timestamp target = kMinTimestamp;
    for (const auto& qptr : queries_) {
      const QueryState* qs = qptr.get();
      if (!qs->active || qs->runner == nullptr) continue;
      bool touches = false;
      size_t stream_defs = 0;
      for (const StreamDef& def : qs->analyzed.defs) {
        if (def.is_table) continue;
        ++stream_defs;
        if (def.name == name) touches = true;
      }
      if (!touches || stream_defs < 2) continue;
      for (const StreamDef& def : qs->analyzed.defs) {
        if (def.is_table || def.name == name) continue;
        target = std::max(target, streams_.at(def.name).watermark);
      }
    }
    if (target <= ss.watermark) continue;  // Nothing to unblock.
    const Status st = HeartbeatLocked(name, &ss, target, /*idle=*/true);
    TCQ_CHECK(st.ok()) << st;
    ss.last_arrival_ms = now;
    ++punctuated;
  }
  return punctuated;
}

void Server::SetClockForTesting(std::function<int64_t()> now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ms_ = std::move(now_ms);
}

Status Server::ReplayStream(const std::string& stream, Timestamp from_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  StreamState& ss = it->second;
  if (ss.reorder.buffered() > 0) {
    return Status::FailedPrecondition(
        "replay on " + stream +
        " with disordered arrivals still buffered; heartbeat first");
  }
  // Chunked re-delivery through the standing-query lanes. The archive
  // serves each chunk (spool region first, then the resident tail) with
  // equal-timestamp runs never split, so replayed batches respect the
  // same timestamp-run boundaries standard ingress releases do. Replayed
  // records are history — final by definition — so both consistency
  // lanes see them once (IngressLane::kAll); they are NOT re-archived.
  Timestamp lo = from_ts;
  Timestamp max_ts = kMinTimestamp;
  size_t replayed = 0;
  for (;;) {
    TupleVector chunk;
    const Timestamp next =
        ss.archive->ScanChunk(lo, kMaxTimestamp, 1024, &chunk);
    if (!chunk.empty()) {
      max_ts = std::max(max_ts, chunk.back().timestamp());
      replayed += chunk.size();
      if (ss.sharded != nullptr) {
        if (!ss.cacq_to_server.empty()) {
          TCQ_RETURN_NOT_OK(ss.sharded->PushBatch(stream, std::move(chunk),
                                                  IngressLane::kAll));
        }
      } else if (ss.cacq != nullptr && ss.cacq->num_active_queries() > 0) {
        TCQ_RETURN_NOT_OK(
            ss.cacq->InjectBatch(stream, chunk, IngressLane::kAll));
      }
    }
    if (next == kMaxTimestamp) break;
    lo = next;
  }
  if (replayed > 0) {
    TCQ_METRIC(ServerMetrics::Get().spool_replayed->Add(replayed));
    // Replayed history is released history: punctuate the (empty)
    // reorder buffer so the raw watermark covers it, advance the safe
    // watermark, and let windowed queries re-advance over the range. A
    // fresh server reopened on a spool directory starts at kMinTimestamp
    // and lands exactly where the previous incarnation left off.
    std::vector<Tuple> released;
    ss.reorder.Punctuate(max_ts, &released);
    TCQ_CHECK(released.empty());
    if (max_ts > ss.watermark) ss.watermark = max_ts;
    AdvanceQueriesLocked(stream);
  }
  return Status::OK();
}

void Server::DeliverResults(QueryState* qs, std::vector<ResultSet>&& sets) {
  std::lock_guard<std::mutex> rlock(results_mu_);
  for (ResultSet& rs : sets) {
    qs->rows_delivered += rs.rows.size();
    TCQ_METRIC(ServerMetrics::Get().delivered_rows->Add(rs.rows.size()));
    if (qs->callback) {
      qs->callback(rs);
    } else {
      qs->results.push_back(std::move(rs));
    }
  }
}

void Server::DeliverShardEmissions(
    StreamState* ss, std::vector<ShardedEngine::Emission>&& batch) {
  // Egress thread: results_mu_ only. mu_ may be held by a producer
  // blocked on a full exchange queue — taking it here would deadlock.
  std::lock_guard<std::mutex> rlock(results_mu_);
  for (auto& [engine_q, t] : batch) {
    auto it = ss->cacq_to_server.find(engine_q);
    if (it == ss->cacq_to_server.end()) continue;  // Canceled mid-flight.
    QueryState* owner = queries_[it->second].get();
    // Project per the query's select list (immutable after Submit).
    std::vector<Value> cells;
    cells.reserve(owner->analyzed.projections.size());
    for (const ExprPtr& e : owner->analyzed.projections) {
      cells.push_back(e->Eval(t));
    }
    ResultSet rs;
    rs.t = t.timestamp();
    Tuple row = Tuple::Make(std::move(cells), t.timestamp());
    row.set_retraction(t.retraction());
    rs.rows.push_back(std::move(row));
    owner->rows_delivered += 1;
    TCQ_METRIC(ServerMetrics::Get().delivered_rows->Add(1));
    if (owner->callback) {
      owner->callback(rs);
    } else {
      owner->results.push_back(std::move(rs));
    }
  }
}

std::optional<ResultSet> Server::Poll(QueryId q) {
  std::lock_guard<std::mutex> lock(mu_);
  std::lock_guard<std::mutex> rlock(results_mu_);
  if (q >= queries_.size() || queries_[q]->results.empty()) {
    return std::nullopt;
  }
  ResultSet rs = std::move(queries_[q]->results.front());
  queries_[q]->results.pop_front();
  return rs;
}

std::vector<ResultSet> Server::PollAll(QueryId q) {
  std::lock_guard<std::mutex> lock(mu_);
  std::lock_guard<std::mutex> rlock(results_mu_);
  std::vector<ResultSet> out;
  if (q >= queries_.size()) return out;
  auto& dq = queries_[q]->results;
  out.assign(std::make_move_iterator(dq.begin()),
             std::make_move_iterator(dq.end()));
  dq.clear();
  return out;
}

size_t Server::num_active_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& q : queries_) {
    if (q->active) ++n;
  }
  return n;
}

size_t Server::PumpMetrics() {
  PublishPoolMetrics();  // Pull allocator-pool totals into the registry.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(kMetricsStream);
  TCQ_CHECK(it != streams_.end()) << "introspection stream missing";

  std::vector<Tuple> rows;
  auto add = [&rows](const std::string& name, const char* kind,
                     double value) {
    rows.push_back(Tuple::Make({Value::String(name), Value::String(kind),
                                Value::Double(value)}));
  };

  // The global registry (empty under -DTCQ_DISABLE_METRICS).
  for (const MetricSample& s : MetricRegistry::Global().Snapshot()) {
    switch (s.kind) {
      case MetricKind::kCounter:
        add(s.name, "counter", s.value);
        break;
      case MetricKind::kGauge:
        add(s.name, "gauge", s.value);
        break;
      case MetricKind::kHistogram:
        add(s.name + ".count", "histogram", s.value);
        add(s.name + ".sum", "histogram", s.sum);
        add(s.name + ".p50", "histogram", s.p50);
        add(s.name + ".p99", "histogram", s.p99);
        break;
    }
  }

  // Per-stream / per-query detail only the server knows. These stay live
  // in every build, so queries over tcq.metrics always see tuples.
  for (const auto& [name, ss] : streams_) {
    if (name == kMetricsStream) continue;  // No self-feedback rows.
    const std::string prefix = "tcq.stream." + name + ".";
    add(prefix + "arrivals", "counter", static_cast<double>(ss.arrivals));
    add(prefix + "rejected", "counter", static_cast<double>(ss.rejected));
    add(prefix + "watermark", "gauge",
        ss.watermark == kMinTimestamp ? 0.0
                                      : static_cast<double>(ss.watermark));
    add(prefix + "raw_watermark", "gauge",
        ss.reorder.raw_watermark() == kMinTimestamp
            ? 0.0
            : static_cast<double>(ss.reorder.raw_watermark()));
    add(prefix + "buffered", "gauge",
        static_cast<double>(ss.reorder.buffered()));
    add(prefix + "disorder.released", "counter",
        static_cast<double>(ss.dis.released));
    add(prefix + "disorder.late_within_bound", "counter",
        static_cast<double>(ss.dis.late_within_bound));
    add(prefix + "disorder.beyond_bound", "counter",
        static_cast<double>(ss.dis.beyond_bound));
    add(prefix + "disorder.dropped", "counter",
        static_cast<double>(ss.dis.dropped));
    add(prefix + "disorder.ingested_late", "counter",
        static_cast<double>(ss.dis.ingested_late));
    add(prefix + "disorder.heartbeats", "counter",
        static_cast<double>(ss.dis.heartbeats));
    add(prefix + "disorder.idle_heartbeats", "counter",
        static_cast<double>(ss.dis.idle_heartbeats));
    add(prefix + "disorder.retractions", "counter",
        static_cast<double>(ss.dis.retractions));
    add(prefix + "disorder.unmatched_retractions", "counter",
        static_cast<double>(ss.dis.unmatched_retractions));
  }
  size_t active = 0;
  uint64_t delivered = 0;
  {
    std::lock_guard<std::mutex> rlock(results_mu_);
    for (const auto& q : queries_) {
      if (q->active) ++active;
      delivered += q->rows_delivered;
    }
  }
  add("tcq.server.active_queries", "gauge", static_cast<double>(active));
  add("tcq.server.query_delivered_rows", "counter",
      static_cast<double>(delivered));

  const size_t n = rows.size();
  Status st =
      IngestBatchLocked(kMetricsStream, &it->second, std::move(rows), nullptr);
  TCQ_CHECK(st.ok()) << st;
  return n;
}

namespace {

void AppendKey(const std::string& key, std::string* out) {
  out->push_back('"');
  *out += JsonEscape(key);
  *out += "\":";
}

}  // namespace

std::string Server::SnapshotMetrics() const {
  PublishPoolMetrics();  // Pull allocator-pool totals into the registry.
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":{";
  bool first = true;
  for (const MetricSample& s : MetricRegistry::Global().Snapshot()) {
    if (!first) out += ",";
    first = false;
    AppendSampleJson(s, &out);
  }

  out += "},\"streams\":{";
  first = true;
  for (const auto& [name, ss] : streams_) {
    if (!first) out += ",";
    first = false;
    AppendKey(name, &out);
    out += "{\"arrivals\":" + std::to_string(ss.arrivals) +
           ",\"rejected\":" + std::to_string(ss.rejected) + ",\"watermark\":" +
           std::to_string(ss.watermark == kMinTimestamp ? 0 : ss.watermark) +
           ",\"raw_watermark\":" +
           std::to_string(ss.reorder.raw_watermark() == kMinTimestamp
                              ? 0
                              : ss.reorder.raw_watermark()) +
           ",\"buffered\":" + std::to_string(ss.reorder.buffered()) +
           ",\"cacq_queries\":" +
           std::to_string(ss.sharded != nullptr
                              ? ss.cacq_to_server.size()
                              : (ss.cacq != nullptr
                                     ? ss.cacq->num_active_queries()
                                     : 0)) +
           ",\"disorder\":{\"released\":" + std::to_string(ss.dis.released) +
           ",\"late_within_bound\":" +
           std::to_string(ss.dis.late_within_bound) +
           ",\"beyond_bound\":" + std::to_string(ss.dis.beyond_bound) +
           ",\"dropped\":" + std::to_string(ss.dis.dropped) +
           ",\"ingested_late\":" + std::to_string(ss.dis.ingested_late) +
           ",\"heartbeats\":" + std::to_string(ss.dis.heartbeats) +
           ",\"idle_heartbeats\":" + std::to_string(ss.dis.idle_heartbeats) +
           ",\"retractions\":" + std::to_string(ss.dis.retractions) +
           ",\"unmatched_retractions\":" +
           std::to_string(ss.dis.unmatched_retractions) + "}" +
           ",\"history\":{\"resident\":" +
           std::to_string(ss.archive->resident_size()) +
           ",\"spooled\":" + std::to_string(ss.archive->spooled_size()) +
           "}}";
  }

  if (spool_ != nullptr) {
    // The shared-spool view: on-disk footprint plus the page-cache
    // behavior that decides cold-scan latency (tcq.spool.* counters in
    // the registry section carry the append/recovery detail).
    const spool::BufferManager::Stats cs = spool_->cache_stats();
    out += "},\"spool\":{\"bytes\":" + std::to_string(spool_->bytes()) +
           ",\"segments\":" + std::to_string(spool_->segments()) +
           ",\"keys\":" + std::to_string(spool_->Keys().size()) +
           ",\"cache_pages\":" + std::to_string(spool_->cache_pages()) +
           ",\"cache\":{\"hits\":" + std::to_string(cs.hits) +
           ",\"misses\":" + std::to_string(cs.misses) +
           ",\"evictions\":" + std::to_string(cs.evictions) +
           ",\"readahead\":" + std::to_string(cs.readahead) + "}";
  }

  out += "},\"queries\":{";
  first = true;
  {
    std::lock_guard<std::mutex> rlock(results_mu_);
    for (size_t q = 0; q < queries_.size(); ++q) {
      const QueryState& qs = *queries_[q];
      if (!first) out += ",";
      first = false;
      AppendKey(std::to_string(q), &out);
      out += std::string("{\"active\":") + (qs.active ? "true" : "false") +
             ",\"kind\":\"" + (qs.is_cacq ? "cacq" : "windowed") +
             "\",\"delivered_rows\":" + std::to_string(qs.rows_delivered) +
             ",\"pending_sets\":" + std::to_string(qs.results.size()) + "}";
    }
  }

  // Shared-eddy detail per stream that has one: routing counters, per-op
  // stats (thin views over the telemetry counters) and SteM snapshots.
  out += "},\"eddies\":{";
  first = true;
  for (const auto& [name, ss] : streams_) {
    if (ss.cacq == nullptr) continue;
    if (!first) out += ",";
    first = false;
    const Eddy& eddy = ss.cacq->eddy();
    AppendKey(name, &out);
    out += "{\"decisions\":" + std::to_string(eddy.decisions()) +
           ",\"visits\":" + std::to_string(eddy.visits()) +
           ",\"emitted\":" + std::to_string(eddy.emitted()) +
           ",\"cache_hits\":" + std::to_string(eddy.decision_cache_hits()) +
           ",\"cache_misses\":" +
           std::to_string(eddy.decision_cache_misses()) + ",\"ops\":[";
    const std::vector<EddyOpStats>& stats = eddy.op_stats();
    for (size_t i = 0; i < stats.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"name\":\"" + JsonEscape(eddy.op(i)->name()) +
             "\",\"routed\":" + std::to_string(stats[i].routed.value()) +
             ",\"passed\":" + std::to_string(stats[i].passed.value()) +
             ",\"produced\":" + std::to_string(stats[i].produced.value()) +
             "}";
    }
    out += "],\"stems\":[";
    const auto stems = ss.cacq->stem_snapshots();
    for (size_t i = 0; i < stems.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"name\":\"" + JsonEscape(stems[i].name) +
             "\",\"size\":" + std::to_string(stems[i].size) +
             ",\"probes\":" + std::to_string(stems[i].probes) +
             ",\"scanned\":" + std::to_string(stems[i].scanned) + "}";
    }
    out += "]}";
  }

  // Shard-fleet detail per sharded stream (atomics-only ShardStats — the
  // one engine view that is safe to read while shard threads run).
  out += "},\"shards\":{";
  first = true;
  for (const auto& [name, ss] : streams_) {
    if (ss.sharded == nullptr) continue;
    if (!first) out += ",";
    first = false;
    AppendKey(name, &out);
    out += "[";
    const std::vector<ShardedEngine::ShardStats> stats =
        ss.sharded->shard_stats();
    for (size_t i = 0; i < stats.size(); ++i) {
      if (i != 0) out += ",";
      // Buckets owned comes from the live PartitionMap (atomic reads):
      // rebalancing shifts these while the fleet runs.
      out += "{\"routed\":" + std::to_string(stats[i].routed) +
             ",\"processed\":" + std::to_string(stats[i].processed) +
             ",\"queue_depth\":" + std::to_string(stats[i].queue_depth) +
             ",\"eddy_decisions\":" + std::to_string(stats[i].eddy_decisions) +
             ",\"eddy_emitted\":" + std::to_string(stats[i].eddy_emitted) +
             ",\"buckets\":" +
             std::to_string(
                 ss.sharded->partition_map().BucketsOwnedBy(i).size()) +
             "}";
    }
    out += "]";
  }
  // Replication detail per sharded stream with process-pair HA enabled
  // (atomics + replica-store counters — safe while shard threads run).
  out += "},\"replicas\":{";
  first = true;
  for (const auto& [name, ss] : streams_) {
    if (ss.sharded == nullptr || !ss.sharded->replication_enabled()) continue;
    if (!first) out += ",";
    first = false;
    AppendKey(name, &out);
    out += "[";
    const std::vector<ShardedEngine::ReplicaStats> reps =
        ss.sharded->replica_stats();
    for (size_t i = 0; i < reps.size(); ++i) {
      if (i != 0) out += ",";
      out += std::string("{\"alive\":") + (reps[i].alive ? "true" : "false") +
             ",\"applied_lsn\":" + std::to_string(reps[i].applied_lsn) +
             ",\"logged_lsn\":" + std::to_string(reps[i].logged_lsn) +
             ",\"snapshot_floor\":" + std::to_string(reps[i].snapshot_floor) +
             ",\"changelog_records\":" +
             std::to_string(reps[i].changelog_records) +
             ",\"changelog_bytes\":" + std::to_string(reps[i].changelog_bytes) +
             ",\"checkpoints\":" + std::to_string(reps[i].checkpoints) +
             ",\"torn_rejected\":" + std::to_string(reps[i].torn_rejected) +
             "}";
    }
    out += "]";
  }
  out += "}}";
  return out;
}

}  // namespace tcq
