#include "core/runner.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace tcq {

namespace {
/// A for-loop that executes exactly once (table-only snapshot queries).
ForLoopSpec OnceSpec() {
  ForLoopSpec spec;
  spec.condition =
      Expr::Binary(BinaryOp::kEq, Expr::Variable("t"),
                   Expr::Literal(Value::Int64(0)));
  spec.step = Expr::Literal(Value::Int64(-1));
  return spec;
}
}  // namespace

QueryRunner::QueryRunner(AnalyzedQuery analyzed,
                         std::vector<const Archive*> archives,
                         std::vector<TupleVector> table_rows, Options options)
    : analyzed_(std::move(analyzed)),
      archives_(std::move(archives)),
      table_rows_(std::move(table_rows)),
      options_(options),
      sequence_(analyzed_.window.has_value() ? &*analyzed_.window
                                             : nullptr,
                options.start_time) {
  TCQ_CHECK(archives_.size() == analyzed_.layout->num_sources());
  TCQ_CHECK(table_rows_.size() == analyzed_.layout->num_sources());
  if (!analyzed_.window.has_value()) {
    // Table-only snapshot: run once over everything.
    static const ForLoopSpec* const kOnce = new ForLoopSpec(OnceSpec());
    sequence_ = WindowSequence(kOnce, options.start_time);
  }

  // Landmark fast path (§4.1.2): single windowed stream + aggregates over
  // a landmark window never retire tuples — keep running accumulators.
  // Disabled for speculative queries: Revise() re-executes fired windows,
  // which the incremental accumulators cannot rewind.
  if (!options_.speculative && analyzed_.has_aggregates &&
      analyzed_.window.has_value() &&
      analyzed_.window->windows.size() == 1 &&
      analyzed_.layout->num_sources() == 1) {
    auto shape = ClassifyWindow(*analyzed_.window, 0, options_.start_time);
    if (shape.ok() && (shape->window_class == WindowClass::kLandmark ||
                       shape->window_class == WindowClass::kSnapshot)) {
      use_landmark_path_ = true;
      landmark_clause_ = 0;
      landmark_agg_ = std::make_unique<WindowAggregator>(
          analyzed_.aggregates, analyzed_.group_by, /*retain_tuples=*/false);
    }
  }
}

size_t QueryRunner::Advance(Timestamp high_watermark,
                            std::vector<ResultSet>* out) {
  size_t fired = 0;
  while (!done_) {
    if (!pending_step_.has_value()) {
      pending_step_ = sequence_.Next();
      if (!pending_step_.has_value()) {
        done_ = true;
        break;
      }
    }
    // A window is executable once every stream it reads has delivered all
    // data up to the window's right end. Because several tuples can share
    // one timestamp, that is only certain when a strictly *later*
    // timestamp has been seen (punctuation-by-progress).
    bool ready = true;
    for (size_t s = 0; s < analyzed_.layout->num_sources(); ++s) {
      const int clause = analyzed_.window_clause_of_source[s];
      if (clause < 0) continue;  // Static table: always ready.
      if (pending_step_->bounds[static_cast<size_t>(clause)].right >=
          high_watermark) {
        ready = false;
        break;
      }
    }
    if (!ready) break;
    out->push_back(ExecuteWindow(*pending_step_));
    if (options_.speculative) {
      // Retain the fired window for revision; bounded history.
      fired_.push_back(FiredWindow{*pending_step_, out->back().rows});
      if (fired_.size() > kMaxFiredHistory) fired_.pop_front();
    }
    pending_step_.reset();
    ++fired;
  }
  return fired;
}

size_t QueryRunner::Revise(Timestamp late_ts, std::vector<ResultSet>* out) {
  if (!options_.speculative) return 0;
  size_t revised = 0;
  for (FiredWindow& fw : fired_) {
    // `late_ts` is the FLOOR of the changed range — one release batch can
    // carry several late timestamps, so any window reaching at or past the
    // floor may have changed. Re-execution is pure and the diff below is
    // empty for untouched windows, so over-selection only costs work.
    bool affected = false;
    for (size_t s = 0; s < analyzed_.layout->num_sources(); ++s) {
      const int clause = analyzed_.window_clause_of_source[s];
      if (clause < 0) continue;
      const WindowBounds& b = fw.step.bounds[static_cast<size_t>(clause)];
      if (late_ts <= b.right) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    // Re-execute against the current archives (pure: the landmark path is
    // off in speculative mode) and diff the result multisets.
    ResultSet fresh = ExecuteWindow(fw.step);
    std::map<std::string, int> delta;  // Row key -> new count - old count.
    auto key_of = [](const Tuple& row) {
      return row.ToString() + "@" + std::to_string(row.timestamp());
    };
    for (const Tuple& row : fresh.rows) ++delta[key_of(row)];
    for (const Tuple& row : fw.rows) --delta[key_of(row)];
    ResultSet diff;
    diff.t = fw.step.t;
    // Retractions first (stale rows, in delivered order), then the fresh
    // assertions — a client applying in order nets to the revised window.
    std::map<std::string, int> take = delta;
    for (const Tuple& row : fw.rows) {
      auto it = take.find(key_of(row));
      if (it != take.end() && it->second < 0) {
        ++it->second;
        Tuple retract = row;
        retract.set_retraction(true);
        diff.rows.push_back(std::move(retract));
      }
    }
    for (const Tuple& row : fresh.rows) {
      auto it = take.find(key_of(row));
      if (it != take.end() && it->second > 0) {
        --it->second;
        diff.rows.push_back(row);
      }
    }
    if (!diff.rows.empty()) {
      out->push_back(std::move(diff));
      ++revised;
    }
    fw.rows = std::move(fresh.rows);
  }
  return revised;
}

ResultSet QueryRunner::ExecuteWindow(const WindowSequence::Step& step) {
  ResultSet result;
  result.t = step.t;

  if (use_landmark_path_) {
    // Incremental: only the newly exposed suffix of the window is fed.
    const WindowBounds& b =
        step.bounds[static_cast<size_t>(landmark_clause_)];
    const Timestamp from =
        std::max(b.left, landmark_fed_through_ == kMinTimestamp
                             ? b.left
                             : landmark_fed_through_ + 1);
    archives_[0]->ScanApply(from, b.right, [&](const Tuple& narrow) {
      // Landmark filters still apply before aggregation.
      const Tuple wide = analyzed_.layout->Widen(0, narrow);
      for (const auto& f : analyzed_.filters) {
        const Value keep = f.expr->Eval(wide);
        if (keep.is_null() || !keep.bool_value()) return;
      }
      landmark_agg_->Add(wide);
    });
    if (b.right > landmark_fed_through_) landmark_fed_through_ = b.right;
    result.rows = landmark_agg_->Emit(step.t);
    return result;
  }

  std::vector<Tuple> wide = RunDataflow(step);

  if (analyzed_.has_aggregates) {
    WindowAggregator agg(analyzed_.aggregates, analyzed_.group_by,
                         /*retain_tuples=*/false);
    for (const Tuple& t : wide) agg.Add(t);
    result.rows = agg.Emit(step.t);
    return result;
  }

  result.rows.reserve(wide.size());
  for (const Tuple& t : wide) {
    std::vector<Value> cells;
    cells.reserve(analyzed_.projections.size());
    for (const ExprPtr& e : analyzed_.projections) cells.push_back(e->Eval(t));
    result.rows.push_back(Tuple::Make(std::move(cells), t.timestamp()));
  }
  return result;
}

std::vector<Tuple> QueryRunner::RunDataflow(const WindowSequence::Step& step) {
  const SourceLayout& layout = *analyzed_.layout;
  const size_t n = layout.num_sources();
  Eddy eddy(&layout, MakePolicy(options_.policy, options_.seed));

  // Filters.
  for (const auto& f : analyzed_.filters) {
    eddy.AddOperator(
        std::make_shared<FilterOp>(f.expr->ToString(), f.expr, f.required));
  }

  // Join machinery for multi-source queries: one SteM per (source, key)
  // plus probes along every join edge (grouped per target so alternative
  // probe paths never duplicate).
  if (n > 1) {
    // Choose a key column per source: the first join edge touching it.
    std::vector<int> key_of(n, -1);
    for (const auto& j : analyzed_.joins) {
      if (key_of[j.src_a] == -1) key_of[j.src_a] = j.col_a;
      if (key_of[j.src_b] == -1) key_of[j.src_b] = j.col_b;
    }
    std::vector<SteMPtr> stems(n);
    for (size_t s = 0; s < n; ++s) {
      SteM::Options so;
      so.key_field = key_of[s];
      stems[s] = std::make_shared<SteM>("stem[" + layout.alias(s) + "]",
                                        layout.full_schema(), so);
      eddy.AddOperator(std::make_shared<StemBuildOp>(
          "build[" + layout.alias(s) + "]", s, stems[s]));
    }
    // Probe edges: for each pair (probe source x -> target s), keyed when
    // a join edge connects them, otherwise a scan probe (cross product —
    // residual filters weed composites downstream).
    for (size_t target = 0; target < n; ++target) {
      for (size_t x = 0; x < n; ++x) {
        if (x == target) continue;
        int probe_key = -1;
        for (const auto& j : analyzed_.joins) {
          if (j.src_a == x && j.src_b == target &&
              j.col_b == key_of[target]) {
            probe_key = j.col_a;
          } else if (j.src_b == x && j.src_a == target &&
                     j.col_a == key_of[target]) {
            probe_key = j.col_b;
          }
        }
        SmallBitset probe_sources(n);
        probe_sources.Set(x);
        eddy.AddOperator(
            std::make_shared<StemProbeOp>(
                "probe[" + layout.alias(target) + "<-" + layout.alias(x) +
                    "]",
                &layout, target, stems[target], std::move(probe_sources),
                probe_key, nullptr),
            /*group=*/static_cast<int>(target));
      }
    }
  }

  std::vector<Tuple> out;
  eddy.SetSink([&](RoutedTuple&& rt) { out.push_back(std::move(rt.tuple)); });

  // Inject every source's window contents (tables inject fully).
  for (size_t s = 0; s < n; ++s) {
    if (analyzed_.defs[s].is_table) {
      for (const Tuple& t : table_rows_[s]) eddy.Inject(s, t);
      continue;
    }
    const int clause = analyzed_.window_clause_of_source[s];
    TCQ_CHECK(clause >= 0);
    const WindowBounds& b = step.bounds[static_cast<size_t>(clause)];
    archives_[s]->ScanApply(
        b.left, b.right, [&](const Tuple& t) { eddy.Inject(s, t); });
  }
  eddy.Drain();
  total_visits_ += eddy.visits();
  return out;
}

}  // namespace tcq
