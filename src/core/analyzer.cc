#include "core/analyzer.h"

#include <set>

#include "common/logging.h"
#include "expr/predicates.h"

namespace tcq {

namespace {

std::string DeriveName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind() == ExprKind::kColumn) {
    return item.expr->column_name();
  }
  if (item.expr != nullptr && item.expr->kind() == ExprKind::kAggregate) {
    std::string base = AggKindToString(item.expr->agg_kind());
    for (char& c : base) c = static_cast<char>(std::tolower(c));
    if (item.expr->agg_arg() != nullptr &&
        item.expr->agg_arg()->kind() == ExprKind::kColumn) {
      return base + "_" + item.expr->agg_arg()->column_name();
    }
    return base;
  }
  return "col" + std::to_string(index);
}

ValueType AggResultType(const AggregateSpec& spec) {
  switch (spec.kind) {
    case AggKind::kCount:
      return ValueType::kInt64;
    case AggKind::kAvg:
      return ValueType::kDouble;
    case AggKind::kSum:
      return spec.arg != nullptr ? spec.arg->result_type()
                                 : ValueType::kInt64;
    case AggKind::kMin:
    case AggKind::kMax:
      return spec.arg != nullptr ? spec.arg->result_type()
                                 : ValueType::kNull;
  }
  return ValueType::kNull;
}

}  // namespace

Result<AnalyzedQuery> Analyze(const ParsedQuery& parsed,
                              const Catalog& catalog) {
  AnalyzedQuery out;
  out.parsed = parsed;
  out.layout = std::make_shared<SourceLayout>();

  // --- FROM: resolve sources. -----------------------------------------
  std::set<std::string> aliases;
  out.tables_only = true;
  for (const TableRef& ref : parsed.from) {
    TCQ_ASSIGN_OR_RETURN(StreamDef def, catalog.GetStream(ref.name));
    const std::string& alias = ref.EffectiveAlias();
    if (!aliases.insert(alias).second) {
      return Status::InvalidArgument("duplicate source alias: " + alias);
    }
    out.layout->AddSource(alias, def.schema);
    if (!def.is_table) out.tables_only = false;
    out.defs.push_back(std::move(def));
  }
  const SchemaPtr& schema = out.layout->full_schema();

  auto source_of_column = [&](size_t column) {
    const std::string& qual = schema->field(column).qualifier;
    return out.layout->SourceIndexOf(qual);
  };

  // --- WHERE: classify boolean factors. ---------------------------------
  for (const ExprPtr& factor : ExtractConjuncts(parsed.where)) {
    if (factor == nullptr) continue;
    if (auto ej = MatchEquiJoin(factor)) {
      TCQ_ASSIGN_OR_RETURN(size_t ca, schema->IndexOf(ej->left_column));
      TCQ_ASSIGN_OR_RETURN(size_t cb, schema->IndexOf(ej->right_column));
      const size_t sa = source_of_column(ca);
      const size_t sb = source_of_column(cb);
      if (sa != sb) {
        out.joins.push_back({sa, static_cast<int>(ca), sb,
                             static_cast<int>(cb)});
        continue;
      }
    }
    AnalyzedQuery::BoundFilter filter;
    TCQ_ASSIGN_OR_RETURN(filter.expr, factor->Bind(*schema));
    if (filter.expr->result_type() != ValueType::kBool) {
      return Status::TypeError("WHERE factor is not boolean: " +
                               factor->ToString());
    }
    std::vector<std::string> cols;
    factor->CollectColumns(&cols);
    filter.required.Resize(out.layout->num_sources());
    for (const std::string& c : cols) {
      TCQ_ASSIGN_OR_RETURN(size_t idx, schema->IndexOf(c));
      filter.required.Set(source_of_column(idx));
    }
    out.filters.push_back(std::move(filter));
  }

  // --- SELECT: projections vs aggregates. ------------------------------
  std::vector<Field> output_fields;
  std::vector<ExprPtr> plain_select;  // Bound non-aggregate select items.
  for (size_t i = 0; i < parsed.select.size(); ++i) {
    const SelectItem& item = parsed.select[i];
    if (item.star) {
      for (size_t c = 0; c < schema->num_fields(); ++c) {
        const Field& f = schema->field(c);
        if (!item.star_qualifier.empty() &&
            f.qualifier != item.star_qualifier) {
          continue;
        }
        TCQ_ASSIGN_OR_RETURN(ExprPtr bound,
                             Expr::Column(f.QualifiedName())->Bind(*schema));
        plain_select.push_back(bound);
        out.projections.push_back(bound);
        out.output_names.push_back(f.name);
        output_fields.push_back({f.name, f.type, ""});
      }
      if (!item.star_qualifier.empty() &&
          out.layout->SourceIndexOf(item.star_qualifier) ==
              out.layout->num_sources()) {
        return Status::NotFound("unknown qualifier in select: " +
                                item.star_qualifier + ".*");
      }
      continue;
    }
    if (item.expr->ContainsAggregate()) {
      if (item.expr->kind() != ExprKind::kAggregate) {
        return Status::NotImplemented(
            "aggregates must be top-level select items: " +
            item.expr->ToString());
      }
      out.has_aggregates = true;
      AggregateSpec spec;
      spec.kind = item.expr->agg_kind();
      if (item.expr->agg_arg() != nullptr) {
        TCQ_ASSIGN_OR_RETURN(spec.arg, item.expr->agg_arg()->Bind(*schema));
      }
      spec.output_name = DeriveName(item, i);
      out.output_names.push_back(spec.output_name);
      output_fields.push_back({spec.output_name, AggResultType(spec), ""});
      out.aggregates.push_back(std::move(spec));
      continue;
    }
    TCQ_ASSIGN_OR_RETURN(ExprPtr bound, item.expr->Bind(*schema));
    plain_select.push_back(bound);
    out.projections.push_back(bound);
    const std::string name = DeriveName(item, i);
    out.output_names.push_back(name);
    output_fields.push_back({name, bound->result_type(), ""});
  }

  if (out.has_aggregates) {
    // Grouping keys: explicit GROUP BY, else the plain select items.
    if (!parsed.group_by.empty()) {
      for (const ExprPtr& key : parsed.group_by) {
        TCQ_ASSIGN_OR_RETURN(ExprPtr bound, key->Bind(*schema));
        out.group_by.push_back(bound);
      }
      // Plain select items must be grouping keys (checked syntactically).
      for (const ExprPtr& sel : plain_select) {
        bool found = false;
        for (const ExprPtr& key : out.group_by) {
          if (key->ToString() == sel->ToString()) found = true;
        }
        if (!found) {
          return Status::InvalidArgument(
              "non-aggregate select item is not a GROUP BY key: " +
              sel->ToString());
        }
      }
    } else {
      out.group_by = plain_select;
    }
    // Result rows come out of WindowAggregator as keys-then-aggregates:
    // require the select list in that order so output columns line up.
    for (size_t i = 0; i < parsed.select.size(); ++i) {
      const bool is_agg = !parsed.select[i].star &&
                          parsed.select[i].expr->ContainsAggregate();
      const bool in_key_zone = i < plain_select.size();
      if (in_key_zone == is_agg) {
        return Status::NotImplemented(
            "with aggregates, list grouping keys before aggregate calls");
      }
    }
  }

  // --- Window clause. -----------------------------------------------------
  out.window_clause_of_source.assign(out.layout->num_sources(), -1);
  if (parsed.window.has_value()) {
    TCQ_RETURN_NOT_OK(ValidateForLoop(*parsed.window));
    out.window = parsed.window;
    for (size_t w = 0; w < out.window->windows.size(); ++w) {
      const std::string& name = out.window->windows[w].stream;
      const size_t s = out.layout->SourceIndexOf(name);
      if (s == out.layout->num_sources()) {
        return Status::NotFound("WindowIs references unknown source: " +
                                name);
      }
      if (out.window_clause_of_source[s] != -1) {
        return Status::InvalidArgument("duplicate WindowIs for source: " +
                                       name);
      }
      out.window_clause_of_source[s] = static_cast<int>(w);
    }
    // Paper semantics: a source without a WindowIs clause is treated as a
    // static table. Reject windowless *streams* in windowed queries.
    for (size_t s = 0; s < out.layout->num_sources(); ++s) {
      if (out.window_clause_of_source[s] == -1 && !out.defs[s].is_table) {
        return Status::InvalidArgument(
            "stream " + out.layout->alias(s) +
            " needs a WindowIs clause (only tables may omit one)");
      }
    }
  } else {
    // No window: legal for table-only snapshots and for standing
    // single-stream filter queries (the CACQ case).
    const bool standing_filter = out.layout->num_sources() == 1 &&
                                 !out.defs[0].is_table &&
                                 !out.has_aggregates;
    if (!out.tables_only && !standing_filter) {
      return Status::InvalidArgument(
          "queries over streams need a for(...){WindowIs(...)} clause "
          "unless they are single-stream standing filters");
    }
    out.cacq_eligible = standing_filter;
  }

  out.output_schema = Schema::Make(std::move(output_fields));
  return out;
}

Result<AnalyzedQuery> AnalyzeSql(const std::string& sql,
                                 const Catalog& catalog) {
  TCQ_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(sql));
  return Analyze(parsed, catalog);
}

}  // namespace tcq
