#ifndef TCQ_CORE_SERVER_H_
#define TCQ_CORE_SERVER_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cacq/engine.h"
#include "core/analyzer.h"
#include "core/runner.h"
#include "ingress/wrapper.h"
#include "tuple/catalog.h"

namespace tcq {

/// The TelegraphCQ server facade: the in-process equivalent of the
/// paper's FrontEnd + Executor + Wrapper processes (§4.2, Figure 5).
///
///  * DefineStream / DefineTable populate the system catalog;
///  * Submit parses, analyzes and *dynamically folds in* a continuous
///    query — windowed queries get a QueryRunner in the query class of
///    their footprint, while standing single-stream filter queries join
///    the per-stream CACQ shared eddy;
///  * Push ingests stream data: it lands in the stream's archive (the
///    spooled history a scanner serves window scans from), advances every
///    runner whose footprint includes the stream, and routes through the
///    CACQ engine;
///  * results accumulate in per-query output queues, pulled with Poll —
///    the PSoup-style separation of computation from delivery — or pushed
///    through a callback.
///
/// Thread-safety: Push/Submit/Poll are serialized by one mutex; the
/// heavy lifting stays single-threaded per call (wrap the server in
/// ExecutionObject modules to scale across streams).
class Server {
 public:
  struct Options {
    std::string policy = "lottery";
    uint64_t seed = 7;
    /// Archive retention span per stream (how much history windows and
    /// late-registered queries can reach back into).
    Timestamp retention_span = kMaxTimestamp;
  };

  Server();
  explicit Server(Options options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // --- Catalog -----------------------------------------------------------
  /// `timestamp_field`: column carrying the application timestamp used by
  /// windows (-1 = arrival sequence numbers).
  Status DefineStream(const std::string& name, SchemaPtr schema,
                      int timestamp_field = -1);
  Status DefineTable(const std::string& name, SchemaPtr schema,
                     TupleVector rows);

  // --- Queries -------------------------------------------------------------
  /// Registers a continuous query; results accumulate until polled.
  Result<QueryId> Submit(const std::string& sql);

  /// Push-mode delivery for one query (egress operator): set before data
  /// flows; results still accumulate for Poll when no callback is set.
  using Callback = std::function<void(const ResultSet&)>;
  Status SetCallback(QueryId q, Callback cb);

  Status Cancel(QueryId q);

  /// Output schema of a submitted query.
  Result<SchemaPtr> OutputSchema(QueryId q) const;

  // --- Data ------------------------------------------------------------------
  /// Ingests one tuple. Its timestamp comes from the stream's declared
  /// timestamp column (or arrival order), and every affected query
  /// advances.
  Status Push(const std::string& stream, const Tuple& tuple);

  /// Ingests a whole batch under ONE lock acquisition, with one archive
  /// spool pass, one shared-eddy injection (one Drain) and one windowed
  /// advance for the entire batch. Results are identical to pushing each
  /// tuple individually; only per-tuple overhead is amortized.
  ///
  /// Invalid tuples (arity mismatch, bad or out-of-order timestamp) are
  /// skipped: when `rejected` is non-null their count is reported there
  /// and the valid remainder still flows (returns OK); when null, the
  /// first error is returned after the preceding valid prefix has been
  /// ingested — the same partial-ingest semantics as a Push loop.
  Status PushBatch(const std::string& stream, std::vector<Tuple> batch,
                   size_t* rejected = nullptr);

  /// Convenience: drain a pull source into a stream.
  Status PushAll(const std::string& stream, TupleSource* source);

  // --- Results -----------------------------------------------------------------
  /// Next undelivered result set of query q, if any.
  std::optional<ResultSet> Poll(QueryId q);
  /// All undelivered result sets of query q.
  std::vector<ResultSet> PollAll(QueryId q);

  size_t num_active_queries() const;

  // --- Telemetry ---------------------------------------------------------------
  /// Name of the reserved introspection stream every server defines at
  /// construction (schema: name STRING, kind STRING, value DOUBLE; arrival
  /// sequence timestamps). Continuous queries range over engine telemetry
  /// like over any stream:
  ///   SELECT name, value FROM tcq.metrics WHERE value > 1000
  static constexpr const char* kMetricsStream = "tcq.metrics";

  /// Publishes one engine-telemetry snapshot into `tcq.metrics` as a
  /// single batch of arrivals: every metric in the global registry plus
  /// the per-stream / per-query detail only the server knows (ingest,
  /// rejects, watermarks, delivered rows — live in every build, including
  /// -DTCQ_DISABLE_METRICS). Returns the number of tuples published.
  size_t PumpMetrics();

  /// JSON snapshot of engine telemetry (contract in DESIGN.md §10): the
  /// global metric registry plus per-stream, per-query and shared-eddy
  /// detail. Used by the examples and scripts/bench.sh.
  std::string SnapshotMetrics() const;

 private:
  struct QueryState {
    bool active = false;
    bool is_cacq = false;
    AnalyzedQuery analyzed;
    std::unique_ptr<QueryRunner> runner;     ///< Windowed path.
    std::string cacq_stream;                 ///< CACQ path.
    QueryId cacq_id = 0;
    std::deque<ResultSet> results;
    Callback callback;
    uint64_t rows_delivered = 0;  ///< Egress rows (queued or called back).
  };

  struct StreamState {
    StreamDef def;
    std::unique_ptr<Archive> archive;
    Timestamp watermark = kMinTimestamp;
    int64_t arrivals = 0;
    int64_t rejected = 0;  ///< Tuples refused by validation/stamping.
    std::unique_ptr<CacqEngine> cacq;  ///< Lazily created shared eddy.
    std::map<QueryId, QueryId> cacq_to_server;  ///< Engine qid -> server qid.
  };

  void DeliverResults(QueryState* qs, std::vector<ResultSet>&& sets);
  Status PushLocked(const std::string& stream, const Tuple& tuple);
  /// Validates `tuple` against `ss` and stamps its engine timestamp
  /// (declared column or arrival order), advancing the watermark.
  Status StampLocked(StreamState* ss, Tuple* tuple);
  /// Advances every windowed query whose footprint includes `stream`.
  void AdvanceQueriesLocked(const std::string& stream);
  /// PushBatch body after the stream lookup; shared with PumpMetrics.
  Status IngestBatchLocked(const std::string& stream, StreamState* ss,
                           std::vector<Tuple> batch, size_t* rejected);

  mutable std::mutex mu_;
  Options options_;
  Catalog catalog_;
  std::map<std::string, StreamState> streams_;
  std::vector<std::unique_ptr<QueryState>> queries_;
};

}  // namespace tcq

#endif  // TCQ_CORE_SERVER_H_
