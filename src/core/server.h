#ifndef TCQ_CORE_SERVER_H_
#define TCQ_CORE_SERVER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cacq/engine.h"
#include "cacq/sharded_engine.h"
#include "core/analyzer.h"
#include "core/runner.h"
#include "ingress/wrapper.h"
#include "tuple/catalog.h"

namespace tcq {

/// The TelegraphCQ server facade: the in-process equivalent of the
/// paper's FrontEnd + Executor + Wrapper processes (§4.2, Figure 5).
///
///  * DefineStream / DefineTable populate the system catalog;
///  * Submit parses, analyzes and *dynamically folds in* a continuous
///    query — windowed queries get a QueryRunner in the query class of
///    their footprint, while standing single-stream filter queries join
///    the per-stream CACQ shared eddy;
///  * Push ingests stream data: it lands in the stream's archive (the
///    spooled history a scanner serves window scans from), advances every
///    runner whose footprint includes the stream, and routes through the
///    CACQ engine;
///  * results accumulate in per-query output queues, pulled with Poll —
///    the PSoup-style separation of computation from delivery — or pushed
///    through a callback.
///
/// Thread-safety: Push/Submit/Poll are serialized by one mutex; the
/// heavy lifting stays single-threaded per call (wrap the server in
/// ExecutionObject modules to scale across streams).
class Server {
 public:
  struct Options {
    std::string policy = "lottery";
    uint64_t seed = 7;
    /// Archive retention span per stream (how much history windows and
    /// late-registered queries can reach back into).
    Timestamp retention_span = kMaxTimestamp;
    /// Worker shards per stream's shared CACQ engine. 1 (default) keeps
    /// the classic inline engine: injection runs synchronously inside
    /// Push, results are visible the moment Push returns. With N > 1
    /// each stream's standing filters/joins execute on N shard threads
    /// behind a hash exchange (DESIGN.md §11): Push only scatters, CACQ
    /// results arrive asynchronously (callbacks fire on the egress
    /// thread; call Quiesce() for a delivery barrier). Windowed queries
    /// are unaffected either way.
    size_t cacq_shards = 1;
    /// Hash buckets in each sharded stream's PartitionMap — the granule
    /// online rebalancing moves between shards (DESIGN.md §12).
    size_t cacq_buckets = 64;
    /// Runs a RebalanceController per sharded stream that watches shard
    /// backlog and migrates hot buckets automatically (Flux §2.4).
    /// Manual Rebalance() works with or without it.
    bool auto_rebalance = false;
    RebalanceController::Options rebalance;
    /// Standby replicas per shard (Flux process pairs, DESIGN.md §13):
    /// 0 = no fault tolerance; 1 dual-routes every scattered batch into a
    /// per-shard changelog and keeps a warm standby engine, so a killed
    /// shard can be failed over with zero lost or duplicated results.
    /// Only meaningful with cacq_shards > 1.
    size_t cacq_replicas = 0;
    /// Default per-stream disorder bound (DESIGN.md §15): arrivals whose
    /// timestamp may still be overtaken by earlier data are buffered in a
    /// reorder buffer and released in timestamp order once the stream's
    /// raw high-water mark has advanced past ts + max_disorder. 0 keeps
    /// the classic strictly-in-order ingress. Per-stream override:
    /// SetDisorderBound. Ignored for arrival-sequence streams (no
    /// timestamp column — disorder is impossible there).
    Timestamp max_disorder = 0;
    /// What happens to an arrival later than the disorder bound (its
    /// timestamp is already below the released watermark).
    LatePolicy late_policy = LatePolicy::kReject;
    /// Idle-stream heartbeat timeout in milliseconds (0 = disabled): a
    /// stream with a timestamp column that has been silent this long is
    /// punctuated up to its multi-stream-query partners' watermark on the
    /// next PumpHeartbeats() call, so a quiet stream stops stalling shared
    /// windowed watermarks. Assumes the streams share a timestamp clock.
    int64_t idle_heartbeat_ms = 0;
    /// Disk-backed history spool (DESIGN.md §16). Empty = off: all
    /// history stays resident, the classic unbounded-RAM archive. Set to
    /// a directory to bound resident memory — each stream's archive keeps
    /// only the newest spool_resident_tuples in RAM and demotes the rest
    /// to append-only segments under this directory; window scans and
    /// kIngestLate backfill read through the spool's page cache
    /// transparently, and a server reopened on the same directory adopts
    /// the spooled history (see ReplayStream).
    std::string spool_dir;
    /// Spool page-cache capacity in 4 KiB pages, shared by every stream —
    /// THE resident-memory knob for queries over history: cold scans
    /// fault through it, so RAM stays bounded no matter how much history
    /// the windows reach back into.
    size_t spool_cache_pages = 256;
    /// Newest tuples each archive keeps in RAM before demoting to disk.
    size_t spool_resident_tuples = 4096;
    /// Spool segment rotation size (smaller = finer retention granule).
    uint64_t spool_segment_bytes = 4ull << 20;
    /// fsync every demotion (crash-safety tests; ruinous throughput).
    bool spool_sync_each_append = false;
  };

  Server();
  explicit Server(Options options);
  ~Server();  // Stops shard/egress threads before any state they touch.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // --- Catalog -----------------------------------------------------------
  /// `timestamp_field`: column carrying the application timestamp used by
  /// windows (-1 = arrival sequence numbers). `partition_field`: column
  /// the sharded exchange hashes on when cacq_shards > 1 (-1 = the first
  /// non-timestamp column); equi-joins between sharded streams must join
  /// on their partition fields.
  Status DefineStream(const std::string& name, SchemaPtr schema,
                      int timestamp_field = -1, int partition_field = -1);
  Status DefineTable(const std::string& name, SchemaPtr schema,
                     TupleVector rows);

  // --- Queries -------------------------------------------------------------
  /// Per-query submission knobs.
  struct SubmitOptions {
    /// CEDR consistency level (DESIGN.md §15). kDelayed (default) holds
    /// results until the safe watermark proves them final; kSpeculative
    /// emits at the raw watermark and revises with retraction-signed rows
    /// when late data changes an already-delivered result.
    Consistency consistency = Consistency::kDelayed;
  };

  /// Registers a continuous query; results accumulate until polled.
  Result<QueryId> Submit(const std::string& sql);
  Result<QueryId> Submit(const std::string& sql, const SubmitOptions& opts);

  /// Push-mode delivery for one query (egress operator): set before data
  /// flows; results still accumulate for Poll when no callback is set.
  using Callback = std::function<void(const ResultSet&)>;
  Status SetCallback(QueryId q, Callback cb);

  Status Cancel(QueryId q);

  /// Output schema of a submitted query.
  Result<SchemaPtr> OutputSchema(QueryId q) const;

  // --- Data ------------------------------------------------------------------
  /// Ingests one tuple. Its timestamp comes from the stream's declared
  /// timestamp column (or arrival order), and every affected query
  /// advances.
  Status Push(const std::string& stream, const Tuple& tuple);

  /// Ingests a whole batch under ONE lock acquisition, with one archive
  /// spool pass, one shared-eddy injection (one Drain) and one windowed
  /// advance for the entire batch. Results are identical to pushing each
  /// tuple individually; only per-tuple overhead is amortized.
  ///
  /// Invalid tuples (arity mismatch, bad or out-of-order timestamp) are
  /// skipped: when `rejected` is non-null their count is reported there
  /// and the valid remainder still flows (returns OK); when null, the
  /// first error is returned after the preceding valid prefix has been
  /// ingested — the same partial-ingest semantics as a Push loop.
  Status PushBatch(const std::string& stream, std::vector<Tuple> batch,
                   size_t* rejected = nullptr);

  /// Convenience: drain a pull source into a stream.
  Status PushAll(const std::string& stream, TupleSource* source);

  // --- Disorder, punctuation and retraction (DESIGN.md §15) ---------------
  /// Sets `stream`'s disorder bound and beyond-bound policy, overriding
  /// the server-wide Options defaults. Requires a timestamp column.
  Status SetDisorderBound(const std::string& stream, Timestamp max_disorder,
                          LatePolicy policy = LatePolicy::kReject);

  /// Explicit punctuation: the source asserts no future arrival on
  /// `stream` has timestamp <= ts. Flushes the reorder buffer through ts,
  /// advances the safe watermark to at least ts, and advances every query
  /// watching the stream — the cure for a quiet stream stalling a
  /// multi-stream watermark. Requires a timestamp column.
  Status Heartbeat(const std::string& stream, Timestamp ts);

  /// Ingests a retraction: cancels the archived assertion whose payload
  /// (timestamp + cells) matches `tuple`, flows a retraction-signed tuple
  /// through the stream's standing CACQ queries (canceling SteM state and
  /// emitting signed result rows), and revises speculative windowed
  /// queries. An unmatched retraction is dropped and counted
  /// (tcq.disorder.unmatched_retractions); delayed windowed queries see
  /// the cancellation only in windows that have not fired yet. Requires a
  /// timestamp column.
  Status Retract(const std::string& stream, const Tuple& tuple);

  /// Scans every stream for idle-timeout heartbeats (Options::
  /// idle_heartbeat_ms): a silent stream is punctuated up to the highest
  /// safe watermark among streams it shares a multi-stream windowed query
  /// with. Returns the number of streams punctuated. Call it from a timer
  /// (there is no background thread).
  size_t PumpHeartbeats();

  /// Replaces the wall clock PumpHeartbeats uses to measure idleness.
  void SetClockForTesting(std::function<int64_t()> now_ms);

  /// Replays `stream`'s archived history with timestamp >= from_ts
  /// through the standing-query lanes (DESIGN.md §16): every standing
  /// CACQ query — delayed and speculative alike, the records are final —
  /// sees the replayed tuples in timestamp order, the safe watermark
  /// advances over the replayed range, and windowed queries re-advance.
  /// Records are read back through the spool's page cache when the
  /// history lives on disk and are NOT re-archived. The primary use is a
  /// server reopened on Options::spool_dir: DefineStream adopts the
  /// spooled history, then ReplayStream(stream, kMinTimestamp) feeds it
  /// to freshly registered queries. Fails if disordered arrivals are
  /// still buffered (heartbeat first — replay may not interleave with an
  /// open disorder window).
  Status ReplayStream(const std::string& stream, Timestamp from_ts);

  /// Delivery barrier for sharded execution: returns once every tuple
  /// pushed before the call has been executed and its results delivered
  /// (queued for Poll, or called back). A no-op when cacq_shards == 1 —
  /// the inline path is already synchronous. Must not be called from a
  /// result callback.
  void Quiesce();

  /// Manually migrates one hash bucket of `stream`'s sharded exchange to
  /// `to_shard` mid-stream (Flux-style state movement; no results lost or
  /// duplicated — see ShardedEngine::MigrateBucket). The stream must be
  /// running sharded (cacq_shards > 1 and at least one standing query).
  /// Must not be called from a result callback.
  Status Rebalance(const std::string& stream, size_t bucket, size_t to_shard);

  // --- Results -----------------------------------------------------------------
  /// Next undelivered result set of query q, if any.
  std::optional<ResultSet> Poll(QueryId q);
  /// All undelivered result sets of query q.
  std::vector<ResultSet> PollAll(QueryId q);

  size_t num_active_queries() const;

  // --- Telemetry ---------------------------------------------------------------
  /// Name of the reserved introspection stream every server defines at
  /// construction (schema: name STRING, kind STRING, value DOUBLE; arrival
  /// sequence timestamps). Continuous queries range over engine telemetry
  /// like over any stream:
  ///   SELECT name, value FROM tcq.metrics WHERE value > 1000
  static constexpr const char* kMetricsStream = "tcq.metrics";

  /// Publishes one engine-telemetry snapshot into `tcq.metrics` as a
  /// single batch of arrivals: every metric in the global registry plus
  /// the per-stream / per-query detail only the server knows (ingest,
  /// rejects, watermarks, delivered rows — live in every build, including
  /// -DTCQ_DISABLE_METRICS). Returns the number of tuples published.
  size_t PumpMetrics();

  /// JSON snapshot of engine telemetry (contract in DESIGN.md §10): the
  /// global metric registry plus per-stream, per-query and shared-eddy
  /// detail. Used by the examples and scripts/bench.sh.
  std::string SnapshotMetrics() const;

 private:
  struct QueryState {
    bool active = false;
    bool is_cacq = false;
    Consistency consistency = Consistency::kDelayed;
    AnalyzedQuery analyzed;
    std::unique_ptr<QueryRunner> runner;     ///< Windowed path.
    std::string cacq_stream;                 ///< CACQ path.
    QueryId cacq_id = 0;
    std::deque<ResultSet> results;
    Callback callback;
    uint64_t rows_delivered = 0;  ///< Egress rows (queued or called back).
  };

  struct StreamState {
    StreamDef def;
    std::unique_ptr<Archive> archive;
    /// SAFE watermark: the released frontier F. Every tuple at or below it
    /// has been released to the archive/delayed path, and no future
    /// release is below it. Arrivals with ts < F are beyond-bound
    /// stragglers (LatePolicy). The raw high-water mark (max stamped ts)
    /// lives on `reorder`.
    Timestamp watermark = kMinTimestamp;
    int64_t arrivals = 0;
    int64_t rejected = 0;  ///< Tuples refused by validation/stamping.
    /// Bounded-disorder ingress (DESIGN.md §15). max_disorder == 0 is the
    /// classic in-order path: arrivals release immediately, watermark
    /// semantics are exactly the pre-disorder behavior.
    ReorderBuffer reorder;
    LatePolicy late_policy = LatePolicy::kReject;
    int64_t last_arrival_ms = 0;  ///< Idle-heartbeat bookkeeping.
    /// Standing CACQ queries per consistency lane (skip scattering a lane
    /// with no listeners when sharded).
    size_t cacq_delayed = 0;
    size_t cacq_speculative = 0;
    /// Per-stream disorder counters (PumpMetrics / SnapshotMetrics rows).
    struct Disorder {
      int64_t released = 0;
      int64_t late_within_bound = 0;
      int64_t beyond_bound = 0;
      int64_t dropped = 0;
      int64_t ingested_late = 0;
      int64_t heartbeats = 0;
      int64_t idle_heartbeats = 0;
      int64_t retractions = 0;
      int64_t unmatched_retractions = 0;
    } dis;
    /// Exchange hash column when cacq_shards > 1 (resolved at definition).
    size_t partition_column = 0;
    std::unique_ptr<CacqEngine> cacq;  ///< Lazy inline eddy (1 shard).
    std::unique_ptr<ShardedEngine> sharded;  ///< Lazy shard fleet (N > 1).
    /// Engine qid -> server qid. Guarded by results_mu_ (the egress
    /// thread resolves emissions through it); writers hold mu_ too.
    std::map<QueryId, QueryId> cacq_to_server;
  };

  void DeliverResults(QueryState* qs, std::vector<ResultSet>&& sets);
  /// Egress-thread delivery for one sharded stream's emission batch.
  /// Takes results_mu_ only — never mu_ (the producer may hold it).
  void DeliverShardEmissions(StreamState* ss,
                             std::vector<ShardedEngine::Emission>&& batch);
  Status PushLocked(const std::string& stream, const Tuple& tuple);
  /// Validates `tuple` against `ss` and stamps its engine timestamp
  /// (declared column or arrival order). Watermark logic lives in
  /// IngestBatchLocked — stamping no longer touches it.
  Status StampLocked(StreamState* ss, Tuple* tuple);
  /// Advances every windowed query whose footprint includes `stream` —
  /// delayed queries to the min safe watermark over their footprint,
  /// speculative ones to the min raw watermark.
  void AdvanceQueriesLocked(const std::string& stream);
  /// Revision pass: tells every speculative windowed query watching
  /// `stream` that data at or after `late_ts` changed under fired windows.
  void ReviseQueriesLocked(const std::string& stream, Timestamp late_ts);
  /// Spools reorder-buffer releases: archive append, safe-watermark
  /// advance, delayed-lane injection. The shared tail of ingest,
  /// Heartbeat and PumpHeartbeats.
  Status ApplyReleasedLocked(const std::string& stream, StreamState* ss,
                             std::vector<Tuple> released);
  /// Punctuation body shared by Heartbeat and PumpHeartbeats.
  Status HeartbeatLocked(const std::string& stream, StreamState* ss,
                         Timestamp ts, bool idle);
  /// PushBatch body after the stream lookup; shared with PumpMetrics.
  Status IngestBatchLocked(const std::string& stream, StreamState* ss,
                           std::vector<Tuple> batch, size_t* rejected);

  /// Serializes catalog, ingest and query registration (as before).
  mutable std::mutex mu_;
  /// Guards query result state (QueryState::results/callback/
  /// rows_delivered), the queries_ vector storage, and every
  /// cacq_to_server map — the state the sharded egress thread touches.
  /// Lock order: mu_ before results_mu_; the egress thread takes
  /// results_mu_ alone, so it can never deadlock with a producer
  /// blocked on a full exchange while holding mu_.
  mutable std::mutex results_mu_;
  Options options_;
  Catalog catalog_;
  /// Shared disk spool (Options::spool_dir; null = off). Declared before
  /// streams_ so it outlives the archives and engines holding raw
  /// pointers into it.
  std::unique_ptr<Spool> spool_;
  std::map<std::string, StreamState> streams_;
  std::vector<std::unique_ptr<QueryState>> queries_;
  /// Live kSpeculative queries. ReviseQueriesLocked runs per ingest batch
  /// and sweeps `queries_`, which grows with lifetime submits — the sweep
  /// must be skippable in the common no-speculative-queries case.
  size_t num_speculative_ = 0;
  /// Millisecond clock for idle-heartbeat detection (injectable).
  std::function<int64_t()> clock_ms_;
};

}  // namespace tcq

#endif  // TCQ_CORE_SERVER_H_
