#include "core/egress.h"

#include "common/logging.h"

namespace tcq {

EgressOperator::EgressOperator(Options options) : options_(options) {
  TCQ_CHECK(options_.spool_capacity > 0);
}

Result<std::unique_ptr<EgressOperator>> EgressOperator::Attach(
    Server* server, QueryId query) {
  return Attach(server, query, Options());
}

Result<std::unique_ptr<EgressOperator>> EgressOperator::Attach(
    Server* server, QueryId query, Options options) {
  TCQ_CHECK(server != nullptr);
  auto egress =
      std::unique_ptr<EgressOperator>(new EgressOperator(options));
  EgressOperator* raw = egress.get();
  TCQ_RETURN_NOT_OK(server->SetCallback(
      query, [raw](const ResultSet& rs) { raw->OnResult(rs); }));
  return egress;
}

void EgressOperator::OnResult(const ResultSet& rs) {
  ClientSink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_) {
      sink = sink_;  // Deliver outside the lock.
      ++delivered_;
    } else {
      spool_.push_back(rs);
      while (spool_.size() > options_.spool_capacity) {
        spool_.pop_front();  // Shed the oldest: freshest results win.
        ++shed_;
      }
    }
  }
  if (sink) sink(rs);
}

void EgressOperator::Connect(ClientSink sink) {
  std::deque<ResultSet> backlog;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
    backlog.swap(spool_);
    delivered_ += backlog.size();
  }
  for (const ResultSet& rs : backlog) sink_(rs);
}

void EgressOperator::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = nullptr;
}

std::vector<ResultSet> EgressOperator::Fetch(size_t max_sets) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ResultSet> out;
  const size_t n = std::min(max_sets, spool_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(spool_.front()));
    spool_.pop_front();
  }
  delivered_ += n;
  return out;
}

size_t EgressOperator::spooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spool_.size();
}

uint64_t EgressOperator::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t EgressOperator::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

StreamPumpModule::StreamPumpModule(std::string name, Server* server,
                                   std::string stream, TupleQueuePtr in)
    : BatchInputModule(std::move(name), std::move(in)),
      server_(server),
      stream_(std::move(stream)) {
  TCQ_CHECK(server_ != nullptr && input() != nullptr);
}

bool StreamPumpModule::ProcessBatch(std::vector<Tuple>* batch, size_t* pos) {
  const size_t n = batch->size() - *pos;
  std::vector<Tuple> chunk(
      std::make_move_iterator(batch->begin() + static_cast<ptrdiff_t>(*pos)),
      std::make_move_iterator(batch->end()));
  *pos = batch->size();
  size_t rejected = 0;
  const Status st = server_->PushBatch(stream_, std::move(chunk), &rejected);
  if (!st.ok()) {
    // Unknown stream: nothing was ingested, but the tuples are consumed —
    // a misrouted wrapper must not wedge the scheduler (§4.2.3).
    rejected_ += n;
    TCQ_LOG(Debug) << name() << ": " << st;
    return true;
  }
  pumped_ += n - rejected;
  if (rejected > 0) {
    // Out-of-order or malformed input: count and continue.
    rejected_ += rejected;
    TCQ_LOG(Debug) << name() << ": rejected " << rejected << " of " << n;
  }
  return true;
}

bool StreamPumpModule::ProcessOne(Tuple& t) {
  const Status st = server_->Push(stream_, t);
  if (st.ok()) {
    ++pumped_;
  } else {
    ++rejected_;
    TCQ_LOG(Debug) << name() << ": " << st;
  }
  return true;
}

}  // namespace tcq
