#ifndef TCQ_CORE_EGRESS_H_
#define TCQ_CORE_EGRESS_H_

#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "core/server.h"
#include "fjords/module.h"

namespace tcq {

/// An egress operator (§4.3): manages result delivery for one continuous
/// query on behalf of a client that may be slow or intermittently
/// connected (mobile). Results spool into a bounded buffer:
///
///  * push mode — while a client sink is connected, spooled and live
///    result sets stream to it;
///  * pull mode — a disconnected client's results accumulate (up to
///    `spool_capacity` sets; beyond that the OLDEST sets are shed and
///    counted — the §4.3 QoS decision of what work to drop), and are
///    fetched in batches on reconnection.
class EgressOperator {
 public:
  struct Options {
    size_t spool_capacity = 4096;
  };

  /// Attaches to a submitted query (installs the server callback).
  /// One egress operator per query.
  static Result<std::unique_ptr<EgressOperator>> Attach(Server* server,
                                                        QueryId query);
  static Result<std::unique_ptr<EgressOperator>> Attach(Server* server,
                                                        QueryId query,
                                                        Options options);

  using ClientSink = std::function<void(const ResultSet&)>;

  /// Push mode on: flushes the spool to `sink`, then streams live results.
  void Connect(ClientSink sink);

  /// Back to pull mode: subsequent results spool.
  void Disconnect();

  /// Pull mode: removes and returns up to `max_sets` spooled result sets.
  std::vector<ResultSet> Fetch(size_t max_sets = SIZE_MAX);

  size_t spooled() const;
  uint64_t delivered() const;
  uint64_t shed() const;  ///< Result sets dropped to honor the spool bound.

 private:
  EgressOperator(Options options);

  void OnResult(const ResultSet& rs);

  const Options options_;
  mutable std::mutex mu_;
  std::deque<ResultSet> spool_;
  ClientSink sink_;
  uint64_t delivered_ = 0;
  uint64_t shed_ = 0;
};

/// A streamer in reverse: drains a Fjord tuple queue into a server stream.
/// Lets ingress dataflows (SourceModule pipelines, unions, juggles) feed
/// the query engine under ExecutionObject scheduling — the Wrapper-to-
/// Executor hand-off of Figure 5.
class StreamPumpModule : public BatchInputModule {
 public:
  StreamPumpModule(std::string name, Server* server, std::string stream,
                   TupleQueuePtr in);

  uint64_t pumped() const { return pumped_; }
  uint64_t rejected() const { return rejected_; }

 protected:
  /// Forwards the whole remaining batch through ONE Server::PushBatch
  /// call — one server lock, one shared-eddy drain, one windowed advance
  /// for the batch instead of per tuple.
  bool ProcessBatch(std::vector<Tuple>* batch, size_t* pos) override;
  bool ProcessOne(Tuple& t) override;

 private:
  Server* server_;
  std::string stream_;
  uint64_t pumped_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace tcq

#endif  // TCQ_CORE_EGRESS_H_
