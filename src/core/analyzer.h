#ifndef TCQ_CORE_ANALYZER_H_
#define TCQ_CORE_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "eddy/routed_tuple.h"
#include "expr/ast.h"
#include "modules/aggregate.h"
#include "parser/parser.h"
#include "tuple/catalog.h"
#include "window/window.h"

namespace tcq {

/// The semantic analysis of one query: sources resolved against the
/// catalog, predicates classified into join edges and filters bound
/// against the canonical full-width schema, the select list split into
/// projections/aggregates, and the window clause validated. This is the
/// input both to the single-query runner and to the shared (CACQ) path.
struct AnalyzedQuery {
  ParsedQuery parsed;

  /// Canonical layout: one source per FROM entry, in FROM order, aliased.
  std::shared_ptr<SourceLayout> layout;
  std::vector<StreamDef> defs;  ///< Catalog entry per source.

  /// An equi-join boolean factor `a.x = b.y` across two sources.
  struct JoinEdge {
    size_t src_a;
    int col_a;  ///< Absolute column index in the full schema.
    size_t src_b;
    int col_b;
  };
  std::vector<JoinEdge> joins;

  /// Non-join conjuncts, bound, with the set of sources each reads.
  struct BoundFilter {
    SmallBitset required;
    ExprPtr expr;
  };
  std::vector<BoundFilter> filters;

  /// Select list, bound. Aggregated and plain queries are disjoint modes:
  /// with aggregates, `group_by` keys plus `aggregates` define the output;
  /// without, `projections` do.
  std::vector<ExprPtr> projections;
  std::vector<std::string> output_names;
  std::vector<AggregateSpec> aggregates;
  std::vector<ExprPtr> group_by;
  bool has_aggregates = false;

  /// The window clause; absent for pure-table snapshots and unwindowed
  /// continuous filter queries.
  std::optional<ForLoopSpec> window;
  /// Per source: index of its WindowIs clause in window->windows, or -1
  /// (static table semantics per the paper).
  std::vector<int> window_clause_of_source;

  /// True when every source is a static table.
  bool tables_only = false;
  /// True when the query can run in CACQ shared mode: one stream, no
  /// window clause, no aggregates — a standing filter query.
  bool cacq_eligible = false;

  /// Schema of result rows.
  SchemaPtr output_schema;
};

/// Resolves and type-checks `parsed` against `catalog`.
Result<AnalyzedQuery> Analyze(const ParsedQuery& parsed,
                              const Catalog& catalog);

/// Convenience: parse + analyze.
Result<AnalyzedQuery> AnalyzeSql(const std::string& sql,
                                 const Catalog& catalog);

}  // namespace tcq

#endif  // TCQ_CORE_ANALYZER_H_
